// Web host analysis (one of the paper's §1 motivating applications,
// after [CKT10]): pick the fewest monitoring vantage hosts such that
// every client IP prefix is observed by at least one chosen host.
//
// Hosts see Zipf-skewed traffic: a few hosts observe huge slices of the
// address space, most observe narrow tails. The host->prefix incidence
// lists live in a repository far larger than RAM, so we stream them.
//
//   ./build/examples/webhost_coverage

#include <cstdio>

#include "streamcover.h"

int main() {
  using namespace streamcover;

  // Synthesize the "observed prefixes per host" incidence data: 30,000
  // client prefixes, 60,000 candidate hosts, Zipf-skewed host fan-out.
  Rng rng(2024);
  const uint32_t kPrefixes = 30000;
  const uint32_t kHosts = 60000;
  PlantedInstance data =
      GenerateZipf(kPrefixes, kHosts, /*alpha=*/1.05,
                   /*max_set_size=*/1500, rng);
  std::printf("web-host instance: %u prefixes, %u hosts, %zu incidence "
              "entries\n",
              data.system.num_elements(), data.system.num_sets(),
              data.system.total_size());

  struct Row {
    const char* name;
    size_t cover;
    uint64_t passes;
    uint64_t space;
  };
  std::vector<Row> rows;

  // Strategy 1: buffer everything, run greedy (the O(mn)-space row).
  {
    SetStream stream(&data.system);
    BaselineResult r = StoreAllGreedy(stream);
    rows.push_back({"store-all greedy", r.cover.size(), r.passes,
                    r.space_words});
  }
  // Strategy 2: one-pass threshold cover ([ER14]-style O(sqrt n)).
  {
    SetStream stream(&data.system);
    BaselineResult r = PolynomialThresholdCover(stream, 1);
    rows.push_back({"one-pass threshold [ER14]", r.cover.size(), r.passes,
                    r.space_words});
  }
  // Strategy 3: iterSetCover at delta = 1/2 (4 passes).
  {
    SetStream stream(&data.system);
    IterSetCoverOptions options;
    options.delta = 0.5;
    options.sample_constant = 0.05;
    StreamingResult r = IterSetCover(stream, options);
    if (!r.success || !IsFullCover(data.system, r.cover)) {
      std::printf("iterSetCover failed to cover!\n");
      return 1;
    }
    rows.push_back({"iterSetCover delta=1/2", r.cover.size(), r.passes,
                    r.space_words_parallel});
  }
  // Strategy 4: iterSetCover at delta = 1/4 (8 passes, less memory).
  {
    SetStream stream(&data.system);
    IterSetCoverOptions options;
    options.delta = 0.25;
    options.sample_constant = 0.05;
    StreamingResult r = IterSetCover(stream, options);
    rows.push_back({"iterSetCover delta=1/4", r.cover.size(), r.passes,
                    r.space_words_parallel});
  }

  std::printf("\n%-28s %10s %8s %14s\n", "strategy", "hosts", "passes",
              "space(words)");
  for (const auto& row : rows) {
    std::printf("%-28s %10zu %8llu %14llu\n", row.name, row.cover,
                static_cast<unsigned long long>(row.passes),
                static_cast<unsigned long long>(row.space));
  }
  std::printf(
      "\nReading: the streaming trade-off buys bounded memory at the cost "
      "of\na few extra passes and a modestly larger host set — the "
      "Figure 1.1\ntrade-off on live data.\n");
  return 0;
}
