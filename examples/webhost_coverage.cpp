// Web host analysis (one of the paper's §1 motivating applications,
// after [CKT10]): pick the fewest monitoring vantage hosts such that
// every client IP prefix is observed by at least one chosen host.
//
// Hosts see Zipf-skewed traffic: a few hosts observe huge slices of the
// address space, most observe narrow tails. The whole comparison is one
// RunPlan grid over the registered `zipf` workload — four strategies x
// one instance, executed and aggregated by the core execution surface
// instead of hand-rolled loops.
//
//   ./build/examples/webhost_coverage

#include <cstdio>
#include <iostream>

#include "streamcover.h"

int main() {
  using namespace streamcover;

  // The "observed prefixes per host" incidence data: 30,000 client
  // prefixes, 60,000 candidate hosts, Zipf-skewed host fan-out.
  RunPlan plan;
  {
    WorkloadSpec workload;
    workload.workload = "zipf";
    workload.label = "web-hosts";
    workload.params.n = 30000;
    workload.params.m = 60000;
    workload.params.alpha = 1.05;
    workload.params.max_set_size = 1500;
    plan.workloads.push_back(std::move(workload));
  }

  // Strategy 1: buffer everything, run greedy (the O(mn)-space row).
  {
    SolverSpec spec;
    spec.solver = "store_all_greedy";
    spec.label = "store-all greedy";
    plan.solvers.push_back(std::move(spec));
  }
  // Strategy 2: one-pass threshold cover ([ER14]-style O(sqrt n)).
  {
    SolverSpec spec;
    spec.solver = "threshold_greedy";
    spec.label = "one-pass threshold [ER14]";
    spec.options.threshold_passes = 1;
    plan.solvers.push_back(std::move(spec));
  }
  // Strategies 3+4: iterSetCover at delta = 1/2 (4 passes) and
  // delta = 1/4 (8 passes, less memory).
  for (double delta : {0.5, 0.25}) {
    SolverSpec spec;
    spec.solver = "iter";
    spec.label = delta == 0.5 ? "iterSetCover delta=1/2"
                              : "iterSetCover delta=1/4";
    spec.options.delta = delta;
    spec.options.sample_constant = 0.05;
    plan.solvers.push_back(std::move(spec));
  }
  plan.seeds = {2024};

  RunReport report = ExecutePlan(plan);

  std::printf("web-host sweep: %zu strategies on the zipf workload "
              "(n=30000 prefixes, m=60000 hosts)\n\n",
              plan.solvers.size());
  report.SummaryTable().Print(std::cout);

  // Never trust, always check: every strategy must have produced a
  // feasible full cover.
  for (const RunCell& cell : report.cells) {
    if (cell.runs == 0 || cell.successes != cell.runs) {
      std::printf("\n%s failed to cover!\n", cell.solver.c_str());
      return 1;
    }
  }

  std::printf(
      "\nReading: the streaming trade-off buys bounded memory at the cost "
      "of\na few extra passes and a modestly larger host set — the "
      "Figure 1.1\ntrade-off on live data. space is the per-guess peak "
      "(space_words_max_guess);\nthe parallel-guess composition adds a "
      "log n factor on top. `seq scans` >\n`passes` on the iter rows is "
      "the sequentialized parallel-guess gap the\nROADMAP's sharding "
      "item targets.\n");
  return 0;
}
