// Wireless coverage planning with the geometric algorithm (§4): choose
// the fewest base-station sites (disks of varying radii) covering all
// client locations. Candidate sites stream from a planning database;
// client positions fit in memory — exactly the Points-Shapes Set Cover
// model of Theorem 4.6.
//
// The instance comes from the WorkloadRegistry (`geom_disks`) as one
// Instance carrying both the geometric payload and its materialized
// range space, so the SAME instance drives the geometric streaming
// solver, a streaming abstract solver, and the offline yardstick —
// no RunOptions::geometry plumbing anywhere.
//
//   ./build/examples/wireless_disks

#include <cstdio>
#include <string>

#include "streamcover.h"

int main() {
  using namespace streamcover;

  WorkloadParams params;
  params.n = 4000;    // clients
  params.m = 20000;   // candidate disk sites
  params.k = 18;      // a good plan uses ~18 towers
  params.seed = 7;
  std::string error;
  std::optional<Instance> city = MakeWorkload("geom_disks", params, &error);
  if (!city.has_value()) {
    std::fprintf(stderr, "workload failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("wireless instance: %u clients, %u candidate sites, "
              "planted plan of %zu towers\n",
              city->num_elements(), city->num_sets(), city->opt_bound());

  // Stream the sites through algGeomSC (delta = 1/4: constant passes).
  // The registry pulls the points/shapes payload from the Instance.
  RunOptions options;
  options.delta = 0.25;
  options.sample_constant = 0.1;
  RunResult plan = RunSolver("geom", *city, options);
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.error.c_str());
    return 1;
  }

  std::printf("\nalgGeomSC:\n");
  std::printf("  success        : %s\n", plan.success ? "yes" : "no");
  std::printf("  towers chosen  : %zu (planted plan: %zu)\n",
              plan.cover.size(), city->opt_bound());
  std::printf("  passes         : %llu\n",
              static_cast<unsigned long long>(plan.passes));
  std::printf("  space          : %llu words for %u clients "
              "(near-linear in clients, NOT in sites)\n",
              static_cast<unsigned long long>(plan.space_words),
              city->num_elements());

  // Independent verification through the instance's materialized range
  // space.
  if (!plan.success || !city->VerifyCover(plan.cover)) {
    std::printf("plan leaves clients uncovered!\n");
    return 1;
  }

  // The same Instance also drives abstract solvers (they stream the
  // materialized range space): a store-all streaming run and the
  // offline greedy yardstick.
  RunOptions abstract_options;
  abstract_options.sample_constant = 0.1;
  RunResult streamed = RunSolver("store_all_greedy", *city,
                                 abstract_options);
  RunResult greedy = RunSolver("offline_greedy", *city, abstract_options);
  if (!streamed.ok() || !greedy.ok()) {
    std::fprintf(stderr, "comparison run failed\n");
    return 1;
  }
  std::printf("\nstore-all greedy on the range space: %zu towers, "
              "%llu words (space linear in SITES — the cost the "
              "geometric algorithm avoids)\n",
              streamed.cover.size(),
              static_cast<unsigned long long>(streamed.space_words));
  std::printf("offline greedy plan: %zu towers; streaming/offline "
              "ratio %.2f\n",
              greedy.cover.size(),
              static_cast<double>(plan.cover.size()) /
                  static_cast<double>(greedy.cover.size()));
  return 0;
}
