// Wireless coverage planning with the geometric algorithm (§4): choose
// the fewest base-station sites (disks of varying radii) covering all
// client locations. Candidate sites stream from a planning database;
// client positions fit in memory — exactly the Points-Shapes Set Cover
// model of Theorem 4.6.
//
//   ./build/examples/wireless_disks

#include <cstdio>

#include "streamcover.h"

int main() {
  using namespace streamcover;

  Rng rng(7);
  GeomPlantedOptions gen;
  gen.num_points = 4000;    // clients
  gen.num_shapes = 20000;   // candidate disk sites
  gen.cover_size = 18;      // a good plan uses ~18 towers
  gen.shape_class = ShapeClass::kDisk;
  GeomInstance city = GeneratePlantedGeom(gen, rng);
  std::printf("wireless instance: %zu clients, %zu candidate sites, "
              "planted plan of %zu towers\n",
              city.points.size(), city.shapes.size(),
              city.planted_cover.size());

  // Stream the sites through algGeomSC (delta = 1/4: constant passes).
  ShapeStream stream(&city.shapes);
  GeomSetCoverOptions options;
  options.delta = 0.25;
  options.sample_constant = 0.1;
  GeomStreamingResult plan = AlgGeomSC(stream, city.points, options);

  std::printf("\nalgGeomSC:\n");
  std::printf("  success        : %s\n", plan.success ? "yes" : "no");
  std::printf("  towers chosen  : %zu (planted plan: %zu)\n",
              plan.cover.size(), city.planted_cover.size());
  std::printf("  passes         : %llu\n",
              static_cast<unsigned long long>(plan.passes));
  std::printf("  space          : %llu words for %zu clients "
              "(near-linear in clients, NOT in sites)\n",
              static_cast<unsigned long long>(plan.space_words_max_guess),
              city.points.size());

  // Independent verification through the abstract range space.
  SetSystem ranges = BuildRangeSpace(city.points, city.shapes);
  if (!plan.success || !IsFullCover(ranges, plan.cover)) {
    std::printf("plan leaves clients uncovered!\n");
    return 1;
  }

  // Canonical-representation diagnostics: why O~(n) space is possible.
  std::printf("\nper-iteration canonical family (Lemma 4.4):\n");
  for (const auto& diag : plan.diagnostics) {
    std::printf("  iter %u: uncovered %llu -> %llu, sample %llu, "
                "canonical sets %llu (%llu words), oversize %llu\n",
                diag.iteration,
                static_cast<unsigned long long>(diag.uncovered_before),
                static_cast<unsigned long long>(diag.uncovered_after),
                static_cast<unsigned long long>(diag.sample_size),
                static_cast<unsigned long long>(diag.canonical_sets),
                static_cast<unsigned long long>(diag.canonical_words),
                static_cast<unsigned long long>(diag.oversize_ranges));
  }

  // Offline comparison: greedy over the materialized range space.
  OfflineResult greedy = GreedySolver().Solve(ranges);
  std::printf("\noffline greedy plan: %zu towers; streaming/offline "
              "ratio %.2f\n",
              greedy.cover.size(),
              static_cast<double>(plan.cover.size()) /
                  static_cast<double>(greedy.cover.size()));
  return 0;
}
