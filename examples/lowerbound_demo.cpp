// The paper's lower bounds, run as executable constructions:
//
//  1. §3  — algRecoverBit decodes all of Alice's random bits from a
//           one-way Set Disjointness transcript, so any sub-3/2-approx
//           single-pass algorithm needs Ω(mn) space (Theorem 3.8).
//  2. §5  — Intersection Set Chasing reduces to SetCover with optimum
//           (2p+1)n+1 iff the ISC answer is 1 (Theorem 5.4) — checked
//           here with the exact solver.
//
//   ./build/examples/lowerbound_demo

#include <cstdio>

#include "streamcover.h"

int main() {
  using namespace streamcover;

  // ---------------------------------------------------------------
  // Part 1: decode Alice's bits through the disjointness oracle.
  // ---------------------------------------------------------------
  std::printf("=== Part 1: single-pass bound via algRecoverBit ===\n");
  Rng rng(5);
  const uint32_t m = 8, n = 48;
  DisjointnessInstance alice = GenerateRandomDisjointness(m, n, rng);
  std::printf("Alice holds %u random subsets of [%u] (%u bits total)\n",
              m, n, m * n);

  NaiveProtocol naive;
  RecoverBitOptions rec;
  rec.seed = 11;
  rec.query_budget = 3'000'000;
  RecoverBitResult full = RunRecoverBit(alice, naive, rec);
  std::printf("full transcript  (%llu bits): recovered %.0f%% of the "
              "family in %llu oracle queries -> %s\n",
              static_cast<unsigned long long>(full.message_bits),
              full.recovered_fraction * 100,
              static_cast<unsigned long long>(full.queries_used),
              full.fully_recovered ? "DECODED" : "failed");

  TruncatedProtocol lossy(m * n / 8);
  RecoverBitResult partial = RunRecoverBit(alice, lossy, rec);
  std::printf("1/8   transcript (%llu bits): recovered %.0f%% -> %s\n",
              static_cast<unsigned long long>(partial.message_bits),
              partial.recovered_fraction * 100,
              partial.fully_recovered ? "decoded (?!)" : "CANNOT decode");
  std::printf("conclusion: the transcript must carry ~mn bits "
              "(Theorem 3.2), hence\nsingle-pass (3/2-eps)-approximation "
              "needs Omega(mn) memory (Theorem 3.8).\n");

  // ---------------------------------------------------------------
  // Part 2: the multi-pass gadget and its optimum dichotomy.
  // ---------------------------------------------------------------
  std::printf("\n=== Part 2: multi-pass bound via ISC -> SetCover ===\n");
  const uint32_t isc_n = 3, isc_p = 2;
  for (bool outcome : {true, false}) {
    Rng gen_rng(outcome ? 31 : 17);
    IscInstance isc =
        GenerateIscWithOutcome(isc_n, isc_p, 2, outcome, gen_rng);
    IscReduction red = ReduceIscToSetCover(isc);
    std::printf("\nISC(n=%u, p=%u) with answer %d:\n", isc_n, isc_p,
                outcome ? 1 : 0);
    std::printf("  reduced instance: |U|=%u, |F|=%u (both O(np))\n",
                red.system.num_elements(), red.system.num_sets());
    std::printf("  witness cover   : %zu sets (feasible: %s)\n",
                red.witness_cover.size(),
                IsFullCover(red.system, red.witness_cover) ? "yes" : "no");
    ExactSolver solver(20'000'000);
    OfflineResult opt = solver.Solve(red.system);
    std::printf("  exact optimum   : %zu  [formula (2p+1)n+%d = %llu]%s\n",
                opt.cover.size(), outcome ? 1 : 2,
                static_cast<unsigned long long>(red.expected_opt),
                opt.cover.size() == red.expected_opt ? "  MATCH" : "  ??");
  }
  std::printf(
      "\nconclusion: a streaming algorithm that solves SetCover exactly "
      "in\n(1/2delta - 1) passes would solve ISC, which needs "
      "n^{1+Omega(1/p)} bits of\ncommunication [GO13] -> Omega~(m n^delta) "
      "space (Theorem 5.4).\n");
  return 0;
}
