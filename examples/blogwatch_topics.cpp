// Multi-topic blog-watch (the [SG09] application that introduced
// streaming SetCover): subscribe to the fewest feeds so that every
// topic of interest is covered by at least one subscribed feed. Feeds
// are sparse — each covers a handful of topics — which makes this a
// natural s-Sparse Set Cover workload (§6's regime).
//
//   ./build/examples/blogwatch_topics

#include <cstdio>

#include "streamcover.h"

int main() {
  using namespace streamcover;

  Rng rng(99);
  const uint32_t kTopics = 20000;
  const uint32_t kFeeds = 80000;
  const uint32_t kTopicsPerFeed = 12;  // sparsity s
  PlantedInstance blogs =
      GenerateSparse(kTopics, kFeeds, kTopicsPerFeed, rng);
  std::printf("blog-watch instance: %u topics, %u feeds, <= %u topics "
              "per feed\n",
              blogs.system.num_elements(), blogs.system.num_sets(),
              kTopicsPerFeed);

  struct Row {
    const char* name;
    size_t feeds;
    uint64_t passes;
    uint64_t space;
  };
  std::vector<Row> rows;

  // [SG09]-style progressive greedy: log n passes, O~(n) space.
  {
    SetStream stream(&blogs.system);
    BaselineResult r = ProgressiveGreedy(stream);
    rows.push_back({"progressive greedy [SG09]", r.cover.size(), r.passes,
                    r.space_words});
  }
  // [CW16] with p = 2 and p = 3 passes.
  for (uint32_t p : {2u, 3u}) {
    SetStream stream(&blogs.system);
    BaselineResult r = PolynomialThresholdCover(stream, p);
    static char name[2][32];
    std::snprintf(name[p - 2], sizeof(name[0]), "threshold p=%u [CW16]", p);
    rows.push_back({name[p - 2], r.cover.size(), r.passes, r.space_words});
  }
  // iterSetCover.
  {
    SetStream stream(&blogs.system);
    IterSetCoverOptions options;
    options.delta = 0.5;
    options.sample_constant = 0.05;
    StreamingResult r = IterSetCover(stream, options);
    if (!r.success || !IsFullCover(blogs.system, r.cover)) {
      std::printf("iterSetCover failed!\n");
      return 1;
    }
    rows.push_back({"iterSetCover delta=1/2", r.cover.size(), r.passes,
                    r.space_words_parallel});
  }
  // Exact lower-bound anchor on sparsity: ceil(n/s) feeds are necessary.
  const size_t lower_bound =
      (kTopics + kTopicsPerFeed - 1) / kTopicsPerFeed;

  std::printf("\n%-28s %10s %8s %14s\n", "strategy", "feeds", "passes",
              "space(words)");
  for (const auto& row : rows) {
    std::printf("%-28s %10zu %8llu %14llu\n", row.name, row.feeds,
                static_cast<unsigned long long>(row.passes),
                static_cast<unsigned long long>(row.space));
  }
  std::printf("\nno subscription plan can use fewer than %zu feeds "
              "(each covers <= %u topics);\nTheorem 6.6 says exact "
              "answers on such sparse instances inherently cost\n"
              "Omega~(m*s) streaming memory — approximation is what "
              "makes the above cheap.\n",
              lower_bound, kTopicsPerFeed);
  return 0;
}
