// Quickstart: solve a streaming SetCover instance with iterSetCover
// (Theorem 2.8) and compare against what offline greedy would do with
// unlimited memory.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "streamcover.h"

int main() {
  using namespace streamcover;

  // 1. An instance: 10,000 elements, 20,000 sets, a planted cover of
  //    size 25 hidden among random noise sets.
  Rng rng(42);
  PlantedOptions gen;
  gen.num_elements = 10000;
  gen.num_sets = 20000;
  gen.cover_size = 25;
  gen.noise_max_size = 400;
  PlantedInstance instance = GeneratePlanted(gen, rng);
  std::printf("instance: n=%u elements, m=%u sets, nnz=%zu, OPT<=%zu\n",
              instance.system.num_elements(), instance.system.num_sets(),
              instance.system.total_size(), instance.planted_cover.size());

  // 2. The streaming solve: 2/delta passes, O~(m n^delta) space.
  SetStream stream(&instance.system);
  IterSetCoverOptions options;
  options.delta = 0.5;           // 4 passes
  options.sample_constant = 0.02;  // keep c*rho*polylog below n
  options.seed = 7;
  StreamingResult result = IterSetCover(stream, options);

  std::printf("\niterSetCover (delta=%.2f):\n", options.delta);
  std::printf("  success          : %s\n", result.success ? "yes" : "no");
  std::printf("  cover size       : %zu sets\n", result.cover.size());
  std::printf("  passes (parallel): %llu\n",
              static_cast<unsigned long long>(result.passes));
  std::printf("  space (parallel) : %llu words over all log(n) guesses\n",
              static_cast<unsigned long long>(result.space_words_parallel));
  std::printf("  space (per guess): %llu words (input is %zu words)\n",
              static_cast<unsigned long long>(result.space_words_max_guess),
              instance.system.total_size());
  std::printf("  winning guess k  : %llu\n",
              static_cast<unsigned long long>(result.winning_k));

  // 3. Verify the cover — never trust, always check.
  if (!IsFullCover(instance.system, result.cover)) {
    std::printf("BUG: cover is infeasible!\n");
    return 1;
  }

  // 4. Yardstick: offline greedy with the whole input in memory.
  OfflineResult greedy = GreedySolver().Solve(instance.system);
  std::printf("\noffline greedy (unlimited memory): %zu sets\n",
              greedy.cover.size());
  std::printf("streaming/offline cover ratio     : %.2f\n",
              static_cast<double>(result.cover.size()) /
                  static_cast<double>(greedy.cover.size()));

  // 5. Iteration diagnostics: watch the residual shrink (Lemma 2.6).
  std::printf("\nper-iteration residual (winning guess):\n");
  for (const auto& diag : result.diagnostics) {
    std::printf(
        "  iter %u: uncovered %llu -> %llu  (sample %llu, heavy %llu, "
        "offline %llu)\n",
        diag.iteration,
        static_cast<unsigned long long>(diag.uncovered_before),
        static_cast<unsigned long long>(diag.uncovered_after),
        static_cast<unsigned long long>(diag.sample_size),
        static_cast<unsigned long long>(diag.heavy_picked),
        static_cast<unsigned long long>(diag.offline_picked));
  }
  return 0;
}
