// streamcover_cli — command-line front end for the library.
//
// Subcommands:
//   generate --type planted|sparse|zipf --n N --m M --k K [--s S]
//            [--seed SEED] --out FILE [--format text|binary]
//       Generates in memory, then writes the instance in the text
//       format of setsystem/io.h or the binary CSR format of
//       setsystem/binary_io.h.
//   generate-disk --type planted|sparse|zipf --n N --m M --k K [--s S]
//            [--alpha A] [--seed SEED] --out FILE [--format binary|text]
//       Streams the instance to disk set by set (O(n + m) memory) via
//       setsystem/stream_generators.h — the way to produce paper-scale
//       multi-GB files. Defaults to the binary format.
//   convert  --in FILE --out FILE [--format binary|text]
//       Streams an instance file (either format, sniffed by magic)
//       into the other format in one pass without materializing it.
//   stats    --in FILE
//       Prints n, m, nnz, set-size distribution, the dense-eligible set
//       count, and the SIMD tier `--kernel auto` would dispatch to on
//       this host. Accepts both formats.
//   solve    (--in FILE | --workload NAME) --algo ALGO [--n N --m M
//            --k K] [--delta D] [--p P] [--seed SEED] [--coverage F]
//            [--budget B] [--threads N] [--kernel scalar|word|auto]
//            [--early-exit] [--from-disk]
//       ALGO: any name from `list-solvers` (plus the legacy aliases
//       store-all / iterative / progressive / threshold); --workload
//       takes any name from `list-workloads` and generates the
//       instance in-process. Unknown solver or workload names fail
//       with the full list of registered alternatives. The input
//       becomes an Instance and dispatch goes through
//       RunSolver(name, Instance&, options). --from-disk keeps the
//       repository on disk — text files are re-parsed once per
//       *physical* scan (FileSetSource); binary files are mmapped and
//       decoded in place (MmapSetSource), picked by magic sniffing;
//       --threads N fans multiplexed consumers out
//       over N workers of the shared-scan PassScheduler; --kernel
//       selects the coverage-kernel twin (word-parallel by default;
//       scalar is the reference loop; auto adds runtime SIMD dispatch
//       for the dense kernels — results are identical either way).
//   list-solvers  (also: --list_solvers)
//       Prints every registered solver with its kind and bounds.
//   list-workloads
//       Prints every registered workload family with its kind.
//   sweep    [--solvers a,b,c] [--workloads x,y,z] [--seeds S]
//            [--trials T] [--n N --m M --k K] [--delta D] [--c C]
//            [--threads N] [--kernel scalar|word|auto] [--early-exit]
//            [--json FILE]
//       Executes the (solvers × workloads × seeds × trials) grid
//       through WorkloadRegistry/RunPlan, prints the summary table
//       (passes vs sequential vs physical scans), and optionally
//       writes the RunReport JSON (schema streamcover.run_report.v4).
//   generate-geom --type disk|rect|tri|figure12 --n N --m M --k K
//            [--seed SEED] --out FILE
//       Writes a geometric instance (geometry/geom_io.h format).
//   solve-geom --in FILE [--delta D] [--seed SEED]
//       Runs algGeomSC (Theorem 4.6) on a geometric instance file.
//   selftest
//       Exercises generate -> stats -> solve -> sweep (abstract and
//       geometric) in a temp dir (used by ctest).
//
// Exit code 0 on success; 1 on usage or runtime errors.

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "streamcover.h"
#include "util/json.h"
#include "util/timer.h"

namespace streamcover {
namespace {

// -----------------------------------------------------------------------
// SIGINT/SIGTERM for the long-running commands (generate-disk, sweep):
// the handler only fires a CancelToken (one relaxed atomic store —
// async-signal-safe); the command's inner loop polls it, stops cleanly,
// and removes any partially written output instead of leaving a
// truncated file behind.

CancelToken& InterruptToken() {
  static CancelToken* token = new CancelToken();
  return *token;
}

void OnInterrupt(int /*signo*/) { InterruptToken().Cancel(); }

void InstallInterruptHandler() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = OnInterrupt;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

/// 128 + SIGINT, the conventional "killed by signal" exit code.
constexpr int kInterruptExit = 130;

struct Args {
  std::map<std::string, std::string> flags;
  /// Malformed numeric flag values, collected as the command reads its
  /// flags (atoll/atof used to swallow these silently: `--n abc` became
  /// 0 and `--n 20q0` became 20). Commands check BadFlags() after
  /// reading and before acting.
  mutable std::vector<std::string> parse_errors;

  bool Has(const std::string& key) const { return flags.count(key) > 0; }
  std::string Get(const std::string& key,
                  const std::string& fallback = "") const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  int64_t GetInt(const std::string& key, int64_t fallback) const {
    auto it = flags.find(key);
    if (it == flags.end()) return fallback;
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(it->second.c_str(), &end, 10);
    // Strict full-token parse: the whole value must be one in-range
    // integer, not just start with one.
    if (it->second.empty() || end == nullptr || *end != '\0' ||
        errno == ERANGE) {
      parse_errors.push_back("--" + key + " expects an integer, got '" +
                             it->second + "'");
      return fallback;
    }
    return v;
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = flags.find(key);
    if (it == flags.end()) return fallback;
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (it->second.empty() || end == nullptr || *end != '\0' ||
        errno == ERANGE) {
      parse_errors.push_back("--" + key + " expects a number, got '" +
                             it->second + "'");
      return fallback;
    }
    return v;
  }

  /// Prints every malformed flag seen so far to stderr; true if any.
  bool BadFlags() const {
    for (const std::string& e : parse_errors) {
      std::fprintf(stderr, "%s\n", e.c_str());
    }
    return !parse_errors.empty();
  }
};

Args ParseArgs(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      std::string key = token.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        args.flags[key] = argv[++i];
      } else {
        args.flags[key] = "1";  // boolean flag
      }
    }
  }
  return args;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  streamcover_cli generate --type planted|sparse|zipf --n N --m M "
      "--k K [--s S] [--seed SEED] --out FILE [--format text|binary]\n"
      "  streamcover_cli generate-disk --type planted|sparse|zipf --n N "
      "--m M --k K [--s S] [--alpha A] [--seed SEED] --out FILE "
      "[--format binary|text]\n"
      "  streamcover_cli convert --in FILE --out FILE "
      "[--format binary|text]\n"
      "  streamcover_cli stats --in FILE\n"
      "  streamcover_cli solve (--in FILE | --workload NAME) --algo NAME "
      "(see list-solvers / list-workloads) [--n N --m M --k K] [--delta D] "
      "[--p P] [--seed SEED] [--coverage F] [--budget B] [--threads N] "
      "[--scan-threads N] [--shards S] [--kernel scalar|word|auto] "
      "[--early-exit] [--from-disk]\n"
      "  streamcover_cli list-solvers\n"
      "  streamcover_cli list-workloads\n"
      "  streamcover_cli sweep [--solvers a,b,c] [--workloads x,y,z] "
      "[--seeds S] [--trials T] [--n N --m M --k K] [--delta D] [--c C] "
      "[--threads N] [--scan-threads N] [--shards S] "
      "[--kernel scalar|word|auto] [--early-exit] [--json FILE]\n"
      "  streamcover_cli generate-geom --type disk|rect|tri|figure12 "
      "--n N --m M --k K [--seed SEED] --out FILE\n"
      "  streamcover_cli solve-geom --in FILE [--delta D] [--seed SEED]\n"
      "  streamcover_cli selftest\n");
  return 1;
}

std::vector<std::string> SplitCommaList(const std::string& list) {
  std::vector<std::string> out;
  std::stringstream ss(list);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (!token.empty()) out.push_back(token);
  }
  return out;
}

/// Resolves --kernel; unknown spellings fail with the alternatives.
bool ResolveKernel(const Args& args, KernelPolicy* kernel) {
  const std::string name = args.Get("kernel", "word");
  std::optional<KernelPolicy> parsed = ParseKernelPolicy(name);
  if (!parsed.has_value()) {
    std::fprintf(stderr,
                 "unknown --kernel '%s'; available: scalar, word, auto\n",
                 name.c_str());
    return false;
  }
  *kernel = *parsed;
  return true;
}

int CmdGenerateGeom(const Args& args) {
  const std::string type = args.Get("type", "disk");
  const uint32_t n = static_cast<uint32_t>(args.GetInt("n", 500));
  const uint32_t m = static_cast<uint32_t>(args.GetInt("m", 2000));
  const uint32_t k = static_cast<uint32_t>(args.GetInt("k", 8));
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  const std::string out = args.Get("out");
  if (args.BadFlags()) return 1;
  if (out.empty()) return Usage();

  GeomInstance instance;
  if (type == "figure12") {
    instance = GenerateFigure12(n % 2 == 0 ? n : n + 1);
  } else {
    ShapeClass cls;
    if (type == "disk") {
      cls = ShapeClass::kDisk;
    } else if (type == "rect") {
      cls = ShapeClass::kRect;
    } else if (type == "tri") {
      cls = ShapeClass::kFatTriangle;
    } else {
      std::fprintf(stderr, "unknown --type %s\n", type.c_str());
      return 1;
    }
    Rng rng(seed);
    GeomPlantedOptions options;
    options.num_points = n;
    options.num_shapes = m;
    options.cover_size = k;
    options.shape_class = cls;
    instance = GeneratePlantedGeom(options, rng);
  }
  GeomDataset dataset{instance.points, instance.shapes};
  if (!SaveGeomDatasetToFile(dataset, out)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %s: points=%zu shapes=%zu planted_cover=%zu\n",
              out.c_str(), dataset.points.size(), dataset.shapes.size(),
              instance.planted_cover.size());
  return 0;
}

int CmdSolveGeom(const Args& args) {
  const std::string in = args.Get("in");
  if (in.empty()) return Usage();
  std::string error;
  auto dataset = LoadGeomDatasetFromFile(in, &error);
  if (!dataset) {
    std::fprintf(stderr, "load failed: %s\n", error.c_str());
    return 1;
  }
  GeomInstance geom;
  geom.points = std::move(dataset->points);
  geom.shapes = std::move(dataset->shapes);
  Instance instance =
      Instance::FromGeometry(std::move(geom), {in, "file:" + in});

  RunOptions options;
  options.delta = args.GetDouble("delta", 0.25);
  options.sample_constant = args.GetDouble("c", 0.05);
  options.seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  if (args.BadFlags()) return 1;
  RunResult r = RunSolver("geom", instance, options);
  if (!r.ok()) {
    std::fprintf(stderr, "%s\n", r.error.c_str());
    return 1;
  }
  const bool feasible = instance.VerifyCover(r.cover);
  std::printf("algGeomSC success=%s cover=%zu feasible=%s passes=%llu "
              "space_words=%llu\n",
              r.success ? "yes" : "no", r.cover.size(),
              feasible ? "yes" : "no",
              static_cast<unsigned long long>(r.passes),
              static_cast<unsigned long long>(r.space_words));
  return (r.success && feasible) ? 0 : 1;
}

int CmdGenerate(const Args& args) {
  const std::string type = args.Get("type", "planted");
  const uint32_t n = static_cast<uint32_t>(args.GetInt("n", 1000));
  const uint32_t m = static_cast<uint32_t>(args.GetInt("m", 2000));
  const uint32_t k = static_cast<uint32_t>(args.GetInt("k", 10));
  const uint32_t s = static_cast<uint32_t>(args.GetInt("s", 32));
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  const std::string out = args.Get("out");
  const std::string format = args.Get("format", "text");
  if (args.BadFlags()) return 1;
  if (out.empty()) return Usage();
  if (format != "text" && format != "binary") {
    std::fprintf(stderr, "unknown --format '%s'; available: text, binary\n",
                 format.c_str());
    return 1;
  }

  Rng rng(seed);
  PlantedInstance instance;
  if (type == "planted") {
    PlantedOptions options;
    options.num_elements = n;
    options.num_sets = m;
    options.cover_size = k;
    options.noise_max_size = std::max(1u, n / 20);
    instance = GeneratePlanted(options, rng);
  } else if (type == "sparse") {
    instance = GenerateSparse(n, m, s, rng);
  } else if (type == "zipf") {
    instance = GenerateZipf(n, m, /*alpha=*/1.1, s, rng);
  } else {
    std::fprintf(stderr, "unknown --type %s\n", type.c_str());
    return 1;
  }
  std::string error;
  const bool saved =
      format == "binary"
          ? WriteBinarySetSystem(instance.system, out, &error)
          : SaveSetSystemToFile(instance.system, out);
  if (!saved) {
    std::fprintf(stderr, "cannot write %s%s%s\n", out.c_str(),
                 error.empty() ? "" : ": ", error.c_str());
    return 1;
  }
  std::printf("wrote %s: n=%u m=%u nnz=%zu planted_cover=%zu format=%s\n",
              out.c_str(), instance.system.num_elements(),
              instance.system.num_sets(), instance.system.total_size(),
              instance.planted_cover.size(), format.c_str());
  return 0;
}

/// Streams one set to a text-format file. Normalizes exactly like
/// BinarySetWriter so the two formats carry identical logical instances.
class TextSetSink {
 public:
  TextSetSink(const std::string& path, uint32_t num_elements,
              uint32_t num_sets)
      : os_(path) {
    os_ << "setcover " << num_elements << " " << num_sets << "\n";
  }

  bool Add(std::span<const uint32_t> elements) {
    scratch_.assign(elements.begin(), elements.end());
    std::sort(scratch_.begin(), scratch_.end());
    scratch_.erase(std::unique(scratch_.begin(), scratch_.end()),
                   scratch_.end());
    os_ << scratch_.size();
    for (uint32_t e : scratch_) os_ << " " << e;
    os_ << "\n";
    nnz_ += scratch_.size();
    return os_.good();
  }

  bool Finish() { return os_.flush().good(); }
  uint64_t nnz() const { return nnz_; }

 private:
  std::ofstream os_;
  std::vector<uint32_t> scratch_;
  uint64_t nnz_ = 0;
};

int CmdConvert(const Args& args) {
  const std::string in = args.Get("in");
  const std::string out = args.Get("out");
  const std::string format = args.Get("format", "binary");
  if (args.BadFlags()) return 1;
  if (in.empty() || out.empty()) return Usage();
  if (format != "text" && format != "binary") {
    std::fprintf(stderr, "unknown --format '%s'; available: text, binary\n",
                 format.c_str());
    return 1;
  }

  // One streaming pass: never materializes the instance, so a multi-GB
  // file converts in O(largest set) memory.
  std::string error;
  std::unique_ptr<SetSource> source = OpenDiskSetSource(in, &error);
  if (source == nullptr) {
    std::fprintf(stderr, "open failed: %s\n", error.c_str());
    return 1;
  }
  uint64_t nnz = 0;
  bool sink_ok = true;
  if (format == "binary") {
    auto writer = BinarySetWriter::Create(out, source->num_elements(),
                                          &error);
    if (!writer.has_value()) {
      std::fprintf(stderr, "cannot write %s: %s\n", out.c_str(),
                   error.c_str());
      return 1;
    }
    const bool scan_ok = source->Scan([&](const SetView& view) {
      if (sink_ok) sink_ok = writer->AddSet(view.elems);
    });
    if (!scan_ok) {
      std::fprintf(stderr, "scan failed: %s\n", source->error().c_str());
      return 1;
    }
    if (!sink_ok || !writer->Finish(&error)) {
      std::fprintf(stderr, "cannot write %s: %s\n", out.c_str(),
                   sink_ok ? error.c_str() : writer->error().c_str());
      return 1;
    }
    nnz = writer->nnz();
  } else {
    TextSetSink sink(out, source->num_elements(), source->num_sets());
    const bool scan_ok = source->Scan([&](const SetView& view) {
      if (sink_ok) sink_ok = sink.Add(view.elems);
    });
    if (!scan_ok) {
      std::fprintf(stderr, "scan failed: %s\n", source->error().c_str());
      return 1;
    }
    if (!sink_ok || !sink.Finish()) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    nnz = sink.nnz();
  }
  std::printf("converted %s -> %s: n=%u m=%u nnz=%llu format=%s\n",
              in.c_str(), out.c_str(), source->num_elements(),
              source->num_sets(), static_cast<unsigned long long>(nnz),
              format.c_str());
  return 0;
}

int CmdGenerateDisk(const Args& args) {
  const std::string type = args.Get("type", "planted");
  const uint32_t n = static_cast<uint32_t>(args.GetInt("n", 1000));
  const uint32_t m = static_cast<uint32_t>(args.GetInt("m", 2000));
  const uint32_t k = static_cast<uint32_t>(args.GetInt("k", 10));
  const uint32_t s = static_cast<uint32_t>(args.GetInt("s", 32));
  const double alpha = args.GetDouble("alpha", 1.1);
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  const std::string out = args.Get("out");
  const std::string format = args.Get("format", "binary");
  if (args.BadFlags()) return 1;
  if (out.empty()) return Usage();
  if (format != "text" && format != "binary") {
    std::fprintf(stderr, "unknown --format '%s'; available: text, binary\n",
                 format.c_str());
    return 1;
  }

  // Generator → sink, set by set: the instance is never materialized,
  // so paper-scale files (m in the tens of millions) stream straight to
  // disk in O(n + m) memory. Ctrl-C mid-generation aborts via the sink
  // (a multi-GB file takes minutes) and removes the partial output —
  // never leaves a truncated SCOVRB01 file behind.
  InstallInterruptHandler();
  std::string error;
  std::optional<BinarySetWriter> writer;
  std::optional<TextSetSink> text_sink;
  if (format == "binary") {
    writer = BinarySetWriter::Create(out, n, &error);
    if (!writer.has_value()) {
      std::fprintf(stderr, "cannot write %s: %s\n", out.c_str(),
                   error.c_str());
      return 1;
    }
  } else {
    text_sink.emplace(out, n, m);
  }
  SetSink sink = [&](std::span<const uint32_t> elements) {
    if (InterruptToken().cancelled()) return false;
    return writer.has_value() ? writer->AddSet(elements)
                              : text_sink->Add(elements);
  };

  std::optional<StreamGenResult> result;
  if (type == "planted") {
    PlantedOptions options;
    options.num_elements = n;
    options.num_sets = m;
    options.cover_size = k;
    options.noise_max_size = std::max(1u, n / 20);
    result = StreamPlanted(options, seed, sink, &error);
  } else if (type == "sparse") {
    result = StreamSparse(n, m, s, seed, sink, &error);
  } else if (type == "zipf") {
    result = StreamZipf(n, m, alpha, s, seed, sink, &error);
  } else {
    std::fprintf(stderr, "unknown --type %s\n", type.c_str());
    return 1;
  }
  if (!result.has_value()) {
    if (InterruptToken().cancelled()) {
      // The sink refused the next set because SIGINT/SIGTERM fired.
      // Drop the writer (closing the half-written file) and remove it:
      // a truncated SCOVRB01 file would fail validation downstream.
      writer.reset();
      text_sink.reset();
      std::remove(out.c_str());
      std::fprintf(stderr, "interrupted; removed partial %s\n",
                   out.c_str());
      return kInterruptExit;
    }
    std::fprintf(stderr, "generation aborted: %s%s%s\n", error.c_str(),
                 writer.has_value() && !writer->error().empty() ? ": " : "",
                 writer.has_value() ? writer->error().c_str() : "");
    return 1;
  }
  uint64_t nnz = 0;
  if (writer.has_value()) {
    if (!writer->Finish(&error)) {
      std::fprintf(stderr, "cannot write %s: %s\n", out.c_str(),
                   error.c_str());
      return 1;
    }
    nnz = writer->nnz();
  } else {
    if (!text_sink->Finish()) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    nnz = text_sink->nnz();
  }
  std::printf("wrote %s: n=%u m=%llu nnz=%llu planted_cover=%zu "
              "format=%s\n",
              out.c_str(), n,
              static_cast<unsigned long long>(result->num_sets),
              static_cast<unsigned long long>(nnz),
              result->planted_positions.size(), format.c_str());
  return 0;
}

int CmdStats(const Args& args) {
  const std::string in = args.Get("in");
  if (in.empty()) return Usage();
  std::string error;
  auto system = LoadAnySetSystemFromFile(in, &error);
  if (!system) {
    std::fprintf(stderr, "load failed: %s\n", error.c_str());
    return 1;
  }
  size_t min_size = SIZE_MAX, max_size = 0;
  uint32_t dense_eligible = 0;
  for (uint32_t s = 0; s < system->num_sets(); ++s) {
    min_size = std::min(min_size, system->SetSize(s));
    max_size = std::max(max_size, system->SetSize(s));
    if (ShouldStoreDense(system->SetSize(s), system->num_elements())) {
      ++dense_eligible;
    }
  }
  if (system->num_sets() == 0) min_size = 0;
  std::printf("instance %s\n", in.c_str());
  std::printf("  elements (n) : %u\n", system->num_elements());
  std::printf("  sets (m)     : %u\n", system->num_sets());
  std::printf("  nnz          : %zu\n", system->total_size());
  std::printf("  set sizes    : min %zu, mean %.1f, max %zu\n", min_size,
              system->num_sets() > 0
                  ? static_cast<double>(system->total_size()) /
                        system->num_sets()
                  : 0.0,
              max_size);
  std::printf("  dense sets   : %u (>= n/%u elements; stored as bitset "
              "rows)\n",
              dense_eligible, kDenseStorageRatio);
  std::printf("  kernel isa   : %s (what --kernel auto dispatches to "
              "here)\n",
              KernelIsaName(DetectKernelIsa()));
  std::printf("  coverable    : %s\n",
              IsCoverable(*system) ? "yes" : "NO (some element in no set)");
  // Scan-path diagnostics: which source `solve --from-disk` would draw
  // for this file, how the pipelined engine would chunk it, and a
  // measured decode rate — so scan-throughput regressions are
  // diagnosable from `stats` alone, without a bench run.
  if (IsBinarySetSystemFile(in)) {
    std::string mmap_error;
    std::optional<MmapSetSource> source =
        MmapSetSource::Open(in, &mmap_error);
    if (!source.has_value()) {
      std::fprintf(stderr, "mmap open failed: %s\n", mmap_error.c_str());
      return 1;
    }
    const std::vector<binfmt::ScanChunk> chunks =
        binfmt::BuildChunkPlan(source->layout(), kDefaultScanChunkBytes);
    const uint64_t body_bytes =
        source->layout().footer_offset - binfmt::kHeaderBytes;
    // One serial decode pass (the scan_threads=1 reference the
    // pipelined gate in bench_hotpath is measured against).
    WallTimer timer;
    uint64_t decoded = 0;
    if (!source->Scan([&decoded](const SetView& view) {
          decoded += view.size();
        })) {
      std::fprintf(stderr, "scan failed: %s\n", source->error().c_str());
      return 1;
    }
    const double seconds = timer.ElapsedSeconds();
    std::printf("  scan path    : mmap (binary; decoded in place)\n");
    std::printf("  decode chunks: %zu (target %llu KB encoded each)\n",
                chunks.size(),
                static_cast<unsigned long long>(kDefaultScanChunkBytes /
                                                1024));
    std::printf("  encoded GB/s : %.2f (serial decode, %llu body bytes, "
                "warm cache)\n",
                seconds > 0 ? static_cast<double>(body_bytes) / seconds /
                                  1e9
                            : 0.0,
                static_cast<unsigned long long>(body_bytes));
    if (decoded != source->nnz()) {
      std::fprintf(stderr, "decoded nnz %llu != header nnz %llu\n",
                   static_cast<unsigned long long>(decoded),
                   static_cast<unsigned long long>(source->nnz()));
      return 1;
    }
  } else {
    std::printf("  scan path    : text (re-parsed per pass; `convert "
                "--format binary` unlocks the mmap + pipelined scan)\n");
  }
  return 0;
}

/// Maps the pre-registry CLI spellings onto registry names.
std::string CanonicalAlgoName(const std::string& algo) {
  static const std::map<std::string, std::string> kAliases = {
      {"store-all", "store_all_greedy"},
      {"iterative", "iterative_greedy"},
      {"progressive", "progressive_greedy"},
      {"threshold", "threshold_greedy"},
  };
  auto it = kAliases.find(algo);
  return it == kAliases.end() ? algo : it->second;
}

int SolveOnInstance(Instance& instance, const Args& args) {
  const std::string algo = CanonicalAlgoName(args.Get("algo", "iter"));

  RunOptions options;
  options.delta = args.GetDouble("delta", 0.5);
  options.sample_constant = args.GetDouble("c", 0.05);
  options.seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  options.coverage_fraction = args.GetDouble("coverage", 1.0);
  options.threshold_passes = static_cast<uint32_t>(args.GetInt("p", 2));
  options.max_cover_budget = static_cast<uint32_t>(args.GetInt("budget", 0));
  options.threads = static_cast<uint32_t>(args.GetInt("threads", 1));
  const int64_t scan_threads = args.GetInt("scan-threads", 1);
  const int64_t shards = args.GetInt("shards", 1);
  options.early_exit = args.Has("early-exit");
  if (args.BadFlags()) return 1;
  if (scan_threads < 1) {
    std::fprintf(stderr, "--scan-threads must be >= 1, got %lld\n",
                 static_cast<long long>(scan_threads));
    return 1;
  }
  options.scan_threads = static_cast<uint32_t>(scan_threads);
  if (shards < 1) {
    std::fprintf(stderr, "--shards must be >= 1, got %lld\n",
                 static_cast<long long>(shards));
    return 1;
  }
  options.shards = static_cast<uint32_t>(shards);
  if (!(options.coverage_fraction > 0.0 &&
        options.coverage_fraction <= 1.0)) {
    std::fprintf(stderr, "--coverage must be in (0, 1], got %g\n",
                 options.coverage_fraction);
    return 1;
  }
  if (!ResolveKernel(args, &options.kernel)) return 1;

  RunResult r = RunSolver(algo, instance, options);
  if (!r.ok()) {
    std::fprintf(stderr, "%s\n", r.error.c_str());
    return 1;
  }

  const size_t covered = instance.CountCovered(r.cover);
  std::printf("algo=%s success=%s cover=%zu covered=%zu/%u passes=%llu "
              "seq_scans=%llu phys_scans=%llu space_words=%llu\n",
              r.solver.c_str(), r.success ? "yes" : "no", r.cover.size(),
              covered, instance.num_elements(),
              static_cast<unsigned long long>(r.passes),
              static_cast<unsigned long long>(r.sequential_scans),
              static_cast<unsigned long long>(r.physical_scans),
              static_cast<unsigned long long>(r.space_words));
  return r.success ? 0 : 1;
}

int CmdListSolvers() {
  const char* kind_names[] = {"streaming", "offline", "geometric"};
  for (const SolverRegistry::Entry* entry :
       SolverRegistry::Global().Entries()) {
    std::printf("%-20s [%s] %s\n", entry->name.c_str(),
                kind_names[static_cast<int>(entry->kind)],
                entry->description.c_str());
  }
  std::printf("%zu solvers registered\n", SolverRegistry::Global().size());
  return 0;
}

int CmdListWorkloads() {
  const char* kind_names[] = {"abstract", "geometric", "file"};
  for (const WorkloadRegistry::Entry* entry :
       WorkloadRegistry::Global().Entries()) {
    std::printf("%-18s [%s] %s\n", entry->name.c_str(),
                kind_names[static_cast<int>(entry->kind)],
                entry->description.c_str());
  }
  std::printf("%zu workloads registered\n",
              WorkloadRegistry::Global().size());
  return 0;
}

int CmdSweep(const Args& args) {
  const std::vector<std::string> solvers = SplitCommaList(
      args.Get("solvers", "iter,progressive_greedy,threshold_greedy"));
  const std::vector<std::string> workloads =
      SplitCommaList(args.Get("workloads", "planted,sparse,zipf"));
  const int64_t num_seeds = args.GetInt("seeds", 2);
  const int64_t num_trials = args.GetInt("trials", 1);
  if (solvers.empty() || workloads.empty() || num_seeds <= 0 ||
      num_trials <= 0) {
    return Usage();
  }

  KernelPolicy kernel = KernelPolicy::kWord;
  if (!ResolveKernel(args, &kernel)) return 1;
  const int64_t shards = args.GetInt("shards", 1);
  if (shards < 1 && args.parse_errors.empty()) {
    std::fprintf(stderr, "--shards must be >= 1, got %lld\n",
                 static_cast<long long>(shards));
    return 1;
  }
  const int64_t scan_threads = args.GetInt("scan-threads", 1);
  if (scan_threads < 1 && args.parse_errors.empty()) {
    std::fprintf(stderr, "--scan-threads must be >= 1, got %lld\n",
                 static_cast<long long>(scan_threads));
    return 1;
  }

  RunPlan plan;
  for (const std::string& solver : solvers) {
    SolverSpec spec;
    spec.solver = CanonicalAlgoName(solver);
    spec.options.delta = args.GetDouble("delta", 0.5);
    spec.options.sample_constant = args.GetDouble("c", 0.05);
    spec.options.threshold_passes =
        static_cast<uint32_t>(args.GetInt("p", 2));
    spec.options.coverage_fraction = args.GetDouble("coverage", 1.0);
    spec.options.threads = static_cast<uint32_t>(args.GetInt("threads", 1));
    spec.options.scan_threads = static_cast<uint32_t>(scan_threads);
    spec.options.shards = static_cast<uint32_t>(shards);
    spec.options.early_exit = args.Has("early-exit");
    spec.options.kernel = kernel;
    plan.solvers.push_back(std::move(spec));
  }
  for (const std::string& workload : workloads) {
    WorkloadSpec spec;
    spec.workload = workload;
    spec.params.n = static_cast<uint32_t>(args.GetInt("n", 500));
    spec.params.m = static_cast<uint32_t>(args.GetInt("m", 1000));
    spec.params.k = static_cast<uint32_t>(args.GetInt("k", 8));
    spec.params.max_set_size =
        static_cast<uint32_t>(args.GetInt("s", 32));
    spec.params.path = args.Get("path");
    plan.workloads.push_back(std::move(spec));
  }
  plan.seeds.clear();
  for (int64_t seed = 1; seed <= num_seeds; ++seed) {
    plan.seeds.push_back(static_cast<uint64_t>(seed));
  }
  plan.trials = static_cast<uint32_t>(num_trials);
  if (args.BadFlags()) return 1;

  // SIGINT/SIGTERM stop the grid at the next run boundary: the partial
  // table is printed but the --json report is suppressed (a half-grid
  // report would be indistinguishable from a complete one downstream).
  InstallInterruptHandler();
  RunReport report = ExecutePlan(plan, &InterruptToken());
  std::printf("sweep: %zu solvers x %zu workloads x %zu seeds x %u "
              "trials\n\n",
              plan.solvers.size(), plan.workloads.size(),
              plan.seeds.size(), plan.trials);
  report.SummaryTable().Print(std::cout);
  if (InterruptToken().cancelled()) {
    std::fprintf(stderr,
                 "\ninterrupted; partial results above, no JSON written\n");
    return kInterruptExit;
  }

  bool any_failure = false;
  for (const RunCell& cell : report.cells) {
    for (const std::string& error : cell.errors) {
      std::fprintf(stderr, "[%s x %s] %s\n", cell.solver.c_str(),
                   cell.workload.c_str(), error.c_str());
      any_failure = true;
    }
  }

  const std::string json_path = args.Get("json");
  if (!json_path.empty()) {
    std::string error;
    if (!report.WriteJsonFile(json_path, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return any_failure ? 1 : 0;
}

int CmdSolve(const Args& args) {
  const std::string in = args.Get("in");
  const std::string workload = args.Get("workload");
  if (!workload.empty() && (!in.empty() || args.Has("from-disk"))) {
    std::fprintf(stderr,
                 "--workload conflicts with --in/--from-disk; pick one "
                 "input source\n");
    return 1;
  }
  if (!workload.empty()) {
    // Solve directly on a registered workload family — no file needed.
    // Unknown names fail with the full list of registered workloads.
    WorkloadParams params;
    params.n = static_cast<uint32_t>(args.GetInt("n", 1000));
    params.m = static_cast<uint32_t>(args.GetInt("m", 2000));
    params.k = static_cast<uint32_t>(args.GetInt("k", 10));
    params.max_set_size = static_cast<uint32_t>(args.GetInt("s", 32));
    params.seed = static_cast<uint64_t>(args.GetInt("seed", 1));
    params.path = args.Get("path");
    if (args.BadFlags()) return 1;
    std::string error;
    std::optional<Instance> instance =
        MakeWorkload(workload, params, &error);
    if (!instance.has_value()) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    return SolveOnInstance(*instance, args);
  }
  if (in.empty()) return Usage();
  std::string error;
  if (args.Has("from-disk")) {
    // Keep the repository on disk, re-parsed on every pass — the
    // model's "read-only repository", literally.
    std::optional<Instance> instance = Instance::FromFile(in, &error);
    if (!instance.has_value()) {
      std::fprintf(stderr, "open failed: %s\n", error.c_str());
      return 1;
    }
    return SolveOnInstance(*instance, args);
  }
  auto system = LoadAnySetSystemFromFile(in, &error);
  if (!system) {
    std::fprintf(stderr, "load failed: %s\n", error.c_str());
    return 1;
  }
  Instance instance = Instance::FromSystem(std::move(*system),
                                           {in, "file:" + in});
  return SolveOnInstance(instance, args);
}

int CmdSelfTest() {
  const std::string dir =
      std::getenv("TMPDIR") != nullptr ? std::getenv("TMPDIR") : "/tmp";
  const std::string path = dir + "/streamcover_cli_selftest.txt";

  {
    Args gen;
    gen.flags = {{"type", "planted"}, {"n", "400"},    {"m", "900"},
                 {"k", "8"},          {"seed", "3"},   {"out", path}};
    if (CmdGenerate(gen) != 0) return 1;
  }
  {
    Args stats;
    stats.flags = {{"in", path}};
    if (CmdStats(stats) != 0) return 1;
  }
  for (const char* algo :
       {"iter", "store_all_greedy", "iterative_greedy",
        "progressive_greedy", "threshold_greedy", "streaming_max_cover",
        "offline_greedy"}) {
    Args solve;
    solve.flags = {{"in", path}, {"algo", algo}, {"delta", "0.5"}};
    if (CmdSolve(solve) != 0) {
      std::fprintf(stderr, "selftest: algo %s failed\n", algo);
      return 1;
    }
  }
  {
    // Legacy aliases must still dispatch, and unknown names must fail
    // cleanly with exit code 1 (not abort).
    Args solve;
    solve.flags = {{"in", path}, {"algo", "store-all"}};
    if (CmdSolve(solve) != 0) return 1;
    solve.flags = {{"in", path}, {"algo", "no-such-solver"}};
    if (CmdSolve(solve) != 1) return 1;
  }
  {
    // Workload-backed solve: registered names dispatch, unknown names
    // fail cleanly (listing the registered families on stderr).
    Args solve;
    solve.flags = {{"workload", "planted"}, {"algo", "iter"},
                   {"n", "300"},            {"m", "600"},
                   {"k", "6"},              {"seed", "2"}};
    if (CmdSolve(solve) != 0) return 1;
    solve.flags = {{"workload", "no-such-workload"}, {"algo", "iter"}};
    if (CmdSolve(solve) != 1) return 1;
  }
  {
    // Kernel policy: all three twins dispatch; unknown spellings
    // (including ISA names — the tier is runtime-detected, never
    // user-pinned) fail cleanly with the alternatives on stderr.
    Args solve;
    solve.flags = {{"in", path}, {"algo", "iter"}, {"kernel", "scalar"}};
    if (CmdSolve(solve) != 0) return 1;
    solve.flags = {{"in", path}, {"algo", "iter"}, {"kernel", "word"}};
    if (CmdSolve(solve) != 0) return 1;
    solve.flags = {{"in", path}, {"algo", "iter"}, {"kernel", "auto"}};
    if (CmdSolve(solve) != 0) return 1;
    solve.flags = {{"in", path}, {"algo", "iter"}, {"kernel", "simd"}};
    if (CmdSolve(solve) != 1) return 1;
    solve.flags = {{"in", path}, {"algo", "iter"}, {"kernel", "avx512"}};
    if (CmdSolve(solve) != 1) return 1;
  }
  {
    // Disk-streamed solve must agree with the in-memory one.
    Args solve;
    solve.flags = {{"in", path}, {"algo", "iter"}, {"from-disk", "1"}};
    if (CmdSolve(solve) != 0) return 1;
  }
  {
    // Malformed numeric flags must be rejected with exit code 1, not
    // silently coerced (atoll used to read `--n abc` as 0 and
    // `--n 20q0` as 20).
    Args gen;
    gen.flags = {{"type", "planted"}, {"n", "abc"}, {"m", "900"},
                 {"k", "8"},          {"out", path}};
    if (CmdGenerate(gen) != 1) return 1;
    gen.flags = {{"type", "planted"}, {"n", "20q0"}, {"m", "900"},
                 {"k", "8"},          {"out", path}};
    if (CmdGenerate(gen) != 1) return 1;
    Args solve;
    solve.flags = {{"in", path}, {"algo", "iter"}, {"delta", "0.5x"}};
    if (CmdSolve(solve) != 1) return 1;
    // Out-of-range coverage targets fail at the CLI boundary instead of
    // underflowing AllowedUncovered.
    solve.flags = {{"in", path}, {"algo", "iter"}, {"coverage", "1.5"}};
    if (CmdSolve(solve) != 1) return 1;
    solve.flags = {{"in", path}, {"algo", "iter"}, {"coverage", "0"}};
    if (CmdSolve(solve) != 1) return 1;
  }
  {
    // Binary pipeline: convert text -> binary, mmap-solve it, convert
    // back to text; stats must accept every produced file.
    const std::string bin_path = dir + "/streamcover_cli_selftest.bin";
    const std::string rt_path = dir + "/streamcover_cli_selftest_rt.txt";
    Args convert;
    convert.flags = {{"in", path}, {"out", bin_path},
                     {"format", "binary"}};
    if (CmdConvert(convert) != 0) return 1;
    Args stats;
    stats.flags = {{"in", bin_path}};
    if (CmdStats(stats) != 0) return 1;
    Args solve;
    solve.flags = {{"in", bin_path}, {"algo", "iter"}, {"from-disk", "1"}};
    if (CmdSolve(solve) != 0) return 1;
    solve.flags = {{"in", bin_path}, {"algo", "iter"}};
    if (CmdSolve(solve) != 0) return 1;
    convert.flags = {{"in", bin_path}, {"out", rt_path},
                     {"format", "text"}};
    if (CmdConvert(convert) != 0) return 1;
    stats.flags = {{"in", rt_path}};
    if (CmdStats(stats) != 0) return 1;
  }
  {
    // Streamed generation to disk, both formats, then a mmap solve.
    const std::string disk_bin = dir + "/streamcover_cli_selftest_gd.bin";
    const std::string disk_txt = dir + "/streamcover_cli_selftest_gd.txt";
    Args gen;
    gen.flags = {{"type", "planted"}, {"n", "300"},  {"m", "700"},
                 {"k", "6"},          {"seed", "5"}, {"out", disk_bin},
                 {"format", "binary"}};
    if (CmdGenerateDisk(gen) != 0) return 1;
    gen.flags = {{"type", "zipf"}, {"n", "300"},  {"m", "700"},
                 {"s", "24"},      {"seed", "5"}, {"out", disk_txt},
                 {"format", "text"}};
    if (CmdGenerateDisk(gen) != 0) return 1;
    Args solve;
    solve.flags = {{"in", disk_bin}, {"algo", "iter"}, {"from-disk", "1"}};
    if (CmdSolve(solve) != 0) return 1;
    Args stats;
    stats.flags = {{"in", disk_txt}};
    if (CmdStats(stats) != 0) return 1;
  }
  if (CmdListWorkloads() != 0) return 1;
  {
    // A tiny sweep through WorkloadRegistry/RunPlan — multiplexed over
    // 4 scheduler threads on the scalar reference kernel; its v4 JSON
    // must parse back with the physical-scans column populated, the
    // kernel policy recorded in the solver options, and the v4
    // gain-maintenance stats (gain_updates / sets_touched) present on
    // every cell.
    const std::string json_path = dir + "/streamcover_cli_selftest.json";
    Args sweep;
    sweep.flags = {{"solvers", "iter,store_all_greedy,progressive_greedy"},
                   {"workloads", "planted,sparse,adversarial"},
                   {"seeds", "2"},
                   {"n", "200"},
                   {"m", "400"},
                   {"k", "5"},
                   {"threads", "4"},
                   {"kernel", "scalar"},
                   {"json", json_path}};
    if (CmdSweep(sweep) != 0) return 1;
    std::ifstream is(json_path);
    std::stringstream buffer;
    buffer << is.rdbuf();
    std::string error;
    auto parsed = JsonValue::Parse(buffer.str(), &error);
    if (!parsed.has_value() || !parsed->is_object() ||
        parsed->At("schema").AsString() != "streamcover.run_report.v4" ||
        parsed->At("cells").size() != 9 ||
        !parsed->At("cells")[0].At("physical_scans").is_object() ||
        parsed->At("solvers")[0].At("options").At("kernel").AsString() !=
            "scalar") {
      std::fprintf(stderr, "selftest: sweep JSON invalid: %s\n",
                   error.c_str());
      return 1;
    }
    for (size_t cell = 0; cell < parsed->At("cells").size(); ++cell) {
      if (!parsed->At("cells")[cell].At("gain_updates").is_object() ||
          !parsed->At("cells")[cell].At("sets_touched").is_object()) {
        std::fprintf(stderr,
                     "selftest: cell %zu missing v4 gain stats\n", cell);
        return 1;
      }
    }
    // An unknown kernel spelling must fail cleanly, not abort.
    Args bad;
    bad.flags = {{"solvers", "iter"}, {"workloads", "planted"},
                 {"kernel", "avx512"}};
    if (CmdSweep(bad) != 1) return 1;
  }
  {
    // Sharded solve family: the unsharded reference and the sharded
    // engine dispatch; --shards is strictly parsed (malformed and
    // non-positive values exit 1, never silently coerce).
    Args solve;
    solve.flags = {{"in", path}, {"algo", "greedi"}};
    if (CmdSolve(solve) != 0) return 1;
    solve.flags = {{"in", path}, {"algo", "sharded_greedi"},
                   {"shards", "4"}, {"threads", "4"}};
    if (CmdSolve(solve) != 0) return 1;
    solve.flags = {{"in", path}, {"algo", "sharded_greedi"},
                   {"shards", "2x"}};
    if (CmdSolve(solve) != 1) return 1;
    solve.flags = {{"in", path}, {"algo", "sharded_greedi"},
                   {"shards", "0"}};
    if (CmdSolve(solve) != 1) return 1;
  }
  {
    // Pipelined scan: --scan-threads dispatches the chunked decoder on
    // the mmap path and must agree with the serial scan (same exit
    // status and a successful cover); the flag is strictly parsed —
    // malformed and non-positive values exit 1, never silently coerce.
    const std::string bin_path = dir + "/streamcover_cli_selftest.bin";
    Args solve;
    solve.flags = {{"in", bin_path}, {"algo", "iter"},
                   {"from-disk", "1"}, {"scan-threads", "4"}};
    if (CmdSolve(solve) != 0) return 1;
    solve.flags = {{"in", path}, {"algo", "iter"}, {"scan-threads", "0"}};
    if (CmdSolve(solve) != 1) return 1;
    solve.flags = {{"in", path}, {"algo", "iter"}, {"scan-threads", "4x"}};
    if (CmdSolve(solve) != 1) return 1;
    Args bad;
    bad.flags = {{"solvers", "iter"}, {"workloads", "planted"},
                 {"scan-threads", "-2"}};
    if (CmdSweep(bad) != 1) return 1;
  }
  {
    // Sharded sweep: the shards axis must land in the report's solver
    // options JSON.
    const std::string json_path = dir + "/streamcover_cli_shardsweep.json";
    Args sweep;
    sweep.flags = {{"solvers", "greedi,sharded_greedi"},
                   {"workloads", "planted"},
                   {"seeds", "1"},
                   {"n", "200"},
                   {"m", "400"},
                   {"k", "5"},
                   {"shards", "2"},
                   {"json", json_path}};
    if (CmdSweep(sweep) != 0) return 1;
    std::ifstream is(json_path);
    std::stringstream buffer;
    buffer << is.rdbuf();
    std::string error;
    auto parsed = JsonValue::Parse(buffer.str(), &error);
    if (!parsed.has_value() ||
        parsed->At("cells").size() != 2 ||
        parsed->At("solvers")[0].At("options").At("shards").AsUint64() !=
            2) {
      std::fprintf(stderr, "selftest: sharded sweep JSON invalid: %s\n",
                   error.c_str());
      return 1;
    }
    Args bad;
    bad.flags = {{"solvers", "sharded_greedi"}, {"workloads", "planted"},
                 {"shards", "0"}};
    if (CmdSweep(bad) != 1) return 1;
  }
  // Geometric pipeline.
  const std::string geom_path = dir + "/streamcover_cli_selftest_geom.txt";
  {
    Args gen;
    gen.flags = {{"type", "disk"}, {"n", "200"},  {"m", "600"},
                 {"k", "5"},       {"seed", "2"}, {"out", geom_path}};
    if (CmdGenerateGeom(gen) != 0) return 1;
  }
  {
    Args solve;
    solve.flags = {{"in", geom_path}, {"delta", "0.25"}};
    if (CmdSolveGeom(solve) != 0) return 1;
  }
  std::printf("selftest OK\n");
  return 0;
}

}  // namespace
}  // namespace streamcover

int main(int argc, char** argv) {
  using namespace streamcover;
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  Args args = ParseArgs(argc, argv, 2);
  if (cmd == "list-solvers" || cmd == "--list_solvers" ||
      cmd == "--list-solvers") {
    return CmdListSolvers();
  }
  if (cmd == "list-workloads" || cmd == "--list-workloads") {
    return CmdListWorkloads();
  }
  if (cmd == "sweep") return CmdSweep(args);
  if (cmd == "generate") return CmdGenerate(args);
  if (cmd == "generate-disk") return CmdGenerateDisk(args);
  if (cmd == "convert") return CmdConvert(args);
  if (cmd == "generate-geom") return CmdGenerateGeom(args);
  if (cmd == "stats") return CmdStats(args);
  if (cmd == "solve") return CmdSolve(args);
  if (cmd == "solve-geom") return CmdSolveGeom(args);
  if (cmd == "selftest") return CmdSelfTest();
  return Usage();
}
