// streamcover_serve — long-lived coverage service over the solver and
// workload registries.
//
// Serves the line-delimited JSON protocol (src/serve/protocol.h) on
// stdin/stdout by default, or on a TCP listen socket with --port. Both
// front ends feed the same CoverageServer core: bounded queue, worker
// pool, per-request deadlines, latency histograms. SIGINT/SIGTERM
// drain gracefully: in-flight and queued requests finish, new work is
// rejected with `shutting_down`, then the process exits 0.
//
// Examples:
//   echo '{"op":"solve","instance":"planted:n=2000,m=4000,k=20",
//          "solver":"iter","deadline_ms":5000}' | streamcover_serve
//   streamcover_serve --port 7070 --workers 8 --queue 128 \
//       --preload planted:n=2000,m=4000,k=20 &
//   printf '{"op":"stats"}\n' | nc -q1 127.0.0.1 7070

#include <arpa/inet.h>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.h"

namespace streamcover {
namespace {

// ---------------------------------------------------------------------
// Signal plumbing: handlers only write one byte into a self-pipe; the
// front-end poll loops wake on it and start the drain. Async-signal-safe
// by construction.

int g_signal_pipe[2] = {-1, -1};
std::atomic<bool> g_stop_requested{false};

void OnStopSignal(int /*signo*/) {
  g_stop_requested.store(true, std::memory_order_relaxed);
  const char byte = 1;
  [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

bool InstallSignalHandlers() {
  if (::pipe(g_signal_pipe) != 0) return false;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = OnStopSignal;
  ::sigemptyset(&sa.sa_mask);
  return ::sigaction(SIGINT, &sa, nullptr) == 0 &&
         ::sigaction(SIGTERM, &sa, nullptr) == 0;
}

// ---------------------------------------------------------------------
// Flags

struct ServeArgs {
  ServerOptions server;
  int port = -1;  // -1 = stdio mode
  std::vector<std::string> preload;
  bool ok = true;
};

void Usage(FILE* out) {
  std::fprintf(out,
               "usage: streamcover_serve [options]\n"
               "  --port N                TCP listen port on 127.0.0.1 "
               "(default: serve stdin/stdout)\n"
               "  --workers N             solver worker threads "
               "(default 4)\n"
               "  --queue N               bounded request queue capacity "
               "(default 64)\n"
               "  --cache-bytes N         instance cache byte budget "
               "(default 0 = unlimited)\n"
               "  --default-deadline-ms N deadline for requests that "
               "carry none (default 0 = none)\n"
               "  --preload NAME          load an instance before "
               "serving (repeatable)\n");
}

bool ParseInt64Flag(const char* text, int64_t* out) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0') return false;
  *out = v;
  return true;
}

ServeArgs ParseArgs(int argc, char** argv) {
  ServeArgs args;
  auto bad = [&args](const std::string& message) {
    std::fprintf(stderr, "streamcover_serve: %s\n", message.c_str());
    Usage(stderr);
    args.ok = false;
  };
  for (int i = 1; i < argc && args.ok; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        bad("flag " + flag + " needs a value");
        return nullptr;
      }
      return argv[++i];
    };
    int64_t value = 0;
    if (flag == "--help" || flag == "-h") {
      Usage(stdout);
      std::exit(0);
    } else if (flag == "--port") {
      const char* v = next();
      if (v == nullptr) break;
      if (!ParseInt64Flag(v, &value) || value < 1 || value > 65535) {
        bad("--port must be in [1, 65535]");
        break;
      }
      args.port = static_cast<int>(value);
    } else if (flag == "--workers") {
      const char* v = next();
      if (v == nullptr) break;
      if (!ParseInt64Flag(v, &value) || value < 1 || value > 256) {
        bad("--workers must be in [1, 256]");
        break;
      }
      args.server.workers = static_cast<uint32_t>(value);
    } else if (flag == "--queue") {
      const char* v = next();
      if (v == nullptr) break;
      if (!ParseInt64Flag(v, &value) || value < 1 || value > 1000000) {
        bad("--queue must be in [1, 1000000]");
        break;
      }
      args.server.queue_capacity = static_cast<size_t>(value);
    } else if (flag == "--cache-bytes") {
      const char* v = next();
      if (v == nullptr) break;
      if (!ParseInt64Flag(v, &value) || value < 0) {
        bad("--cache-bytes must be >= 0");
        break;
      }
      args.server.cache_bytes = static_cast<uint64_t>(value);
    } else if (flag == "--default-deadline-ms") {
      const char* v = next();
      if (v == nullptr) break;
      if (!ParseInt64Flag(v, &value) || value < 0) {
        bad("--default-deadline-ms must be >= 0");
        break;
      }
      args.server.default_deadline_ms = value;
    } else if (flag == "--preload") {
      const char* v = next();
      if (v == nullptr) break;
      args.preload.emplace_back(v);
    } else {
      bad("unknown flag " + flag);
    }
  }
  return args;
}

// ---------------------------------------------------------------------
// Line framing shared by both front ends: append a read chunk, peel off
// complete lines.

void DrainLines(std::string& buffer, CoverageServer& server,
                const CoverageServer::Responder& respond) {
  size_t start = 0;
  for (;;) {
    const size_t nl = buffer.find('\n', start);
    if (nl == std::string::npos) break;
    std::string line = buffer.substr(start, nl - start);
    start = nl + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    server.HandleLine(line, respond);
  }
  buffer.erase(0, start);
}

// ---------------------------------------------------------------------
// stdio front end

int ServeStdio(CoverageServer& server) {
  std::mutex write_mu;
  CoverageServer::Responder respond =
      [&write_mu](const std::string& line) {
        std::lock_guard<std::mutex> lock(write_mu);
        std::fwrite(line.data(), 1, line.size(), stdout);
        std::fputc('\n', stdout);
        std::fflush(stdout);
      };
  std::string buffer;
  char chunk[4096];
  while (!g_stop_requested.load(std::memory_order_relaxed)) {
    struct pollfd fds[2] = {{STDIN_FILENO, POLLIN, 0},
                            {g_signal_pipe[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // signal: drain below
    if (fds[0].revents == 0) continue;
    const ssize_t n = ::read(STDIN_FILENO, chunk, sizeof(chunk));
    if (n <= 0) break;  // EOF (or error): drain below
    buffer.append(chunk, static_cast<size_t>(n));
    DrainLines(buffer, server, respond);
  }
  server.Shutdown();
  return 0;
}

// ---------------------------------------------------------------------
// TCP front end: accept loop + one reader thread per connection.

struct Connection {
  int fd = -1;
  std::mutex write_mu;
};

void ServeConnection(std::shared_ptr<Connection> conn,
                     CoverageServer* server) {
  CoverageServer::Responder respond =
      [conn](const std::string& line) {
        std::lock_guard<std::mutex> lock(conn->write_mu);
        std::string framed = line + "\n";
        size_t sent = 0;
        while (sent < framed.size()) {
          const ssize_t n = ::send(conn->fd, framed.data() + sent,
                                   framed.size() - sent, MSG_NOSIGNAL);
          if (n <= 0) break;  // peer went away; nothing to report to
          sent += static_cast<size_t>(n);
        }
      };
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
    DrainLines(buffer, *server, respond);
  }
}

int ServeTcp(CoverageServer& server, int port) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::perror("streamcover_serve: socket");
    return 1;
  }
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd, 64) != 0) {
    std::perror("streamcover_serve: bind/listen");
    ::close(listen_fd);
    return 1;
  }
  std::fprintf(stderr, "streamcover_serve: listening on 127.0.0.1:%d\n",
               port);

  std::mutex conns_mu;
  std::vector<std::shared_ptr<Connection>> conns;
  std::vector<std::thread> readers;

  while (!g_stop_requested.load(std::memory_order_relaxed)) {
    struct pollfd fds[2] = {{listen_fd, POLLIN, 0},
                            {g_signal_pipe[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // signal: drain below
    if (fds[0].revents == 0) continue;
    const int conn_fd = ::accept(listen_fd, nullptr, nullptr);
    if (conn_fd < 0) continue;
    auto conn = std::make_shared<Connection>();
    conn->fd = conn_fd;
    {
      std::lock_guard<std::mutex> lock(conns_mu);
      conns.push_back(conn);
      readers.emplace_back(ServeConnection, conn, &server);
    }
  }
  ::close(listen_fd);
  // Finish admitted work, then unblock every connection reader.
  server.Shutdown();
  {
    std::lock_guard<std::mutex> lock(conns_mu);
    for (const auto& conn : conns) ::shutdown(conn->fd, SHUT_RDWR);
  }
  for (std::thread& reader : readers) reader.join();
  for (const auto& conn : conns) ::close(conn->fd);
  std::fprintf(stderr, "streamcover_serve: drained, exiting\n");
  return 0;
}

int Main(int argc, char** argv) {
  ServeArgs args = ParseArgs(argc, argv);
  if (!args.ok) return 2;
  if (!InstallSignalHandlers()) {
    std::fprintf(stderr,
                 "streamcover_serve: cannot install signal handlers\n");
    return 1;
  }
  CoverageServer server(args.server);
  for (const std::string& name : args.preload) {
    std::string error;
    if (server.Preload(name, &error)) {
      std::fprintf(stderr, "streamcover_serve: preloaded %s\n",
                   name.c_str());
    } else {
      std::fprintf(stderr,
                   "streamcover_serve: preload of %s failed: %s\n",
                   name.c_str(), error.c_str());
    }
  }
  server.Start();
  if (args.port < 0) return ServeStdio(server);
  return ServeTcp(server, args.port);
}

}  // namespace
}  // namespace streamcover

int main(int argc, char** argv) {
  return streamcover::Main(argc, argv);
}
