// Theorem 5.4 — the multi-pass Ω~(m n^delta) lower bound, made
// executable: the Intersection Set Chasing -> SetCover reduction
// (Figures 5.2–5.4). Two checks:
//  (1) the optimum dichotomy (Corollary 5.8): OPT = (2p+1)n+1 iff the
//      ISC answer is 1, else (2p+1)n+2 — verified by branch-and-bound
//      where tractable, and by witness + Lemma 5.5 bounds elsewhere;
//  (2) the instance-size accounting |U|, |F| = O(np) that converts
//      [GO13]'s n^{1+1/(2p)} communication bound into Ω~(m n^delta)
//      streaming space.

#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "commlb/chasing.h"
#include "commlb/isc_to_setcover.h"
#include "offline/exact.h"
#include "setsystem/cover.h"
#include "util/table.h"

namespace streamcover {
namespace {

void DichotomyTable() {
  benchutil::Banner(
      "Theorem 5.4 / Corollary 5.8 — optimum dichotomy of the ISC "
      "reduction (exact branch-and-bound)");
  Table table({"n", "p", "ISC", "|U|", "|F|", "formula (2p+1)n+{1,2}",
               "witness", "exact OPT", "verdict"});
  for (uint32_t p : {2u, 3u}) {
    for (uint32_t n : {2u, 3u}) {
      for (bool outcome : {true, false}) {
        Rng rng(17 * n + 3 * p + (outcome ? 1 : 0));
        IscInstance isc = GenerateIscWithOutcome(n, p, 2, outcome, rng);
        IscReduction red = ReduceIscToSetCover(isc);
        ExactSolver solver(60'000'000);
        OfflineResult opt = solver.Solve(red.system);
        std::string verdict;
        std::string opt_str;
        if (opt.proven_optimal) {
          opt_str = Table::Fmt(opt.cover.size());
          verdict = (opt.cover.size() == red.expected_opt) ? "MATCH"
                                                           : "MISMATCH";
        } else {
          opt_str = "<=" + Table::Fmt(opt.cover.size());
          verdict = "budget";
        }
        table.AddRow({Table::Fmt(n), Table::Fmt(p),
                      outcome ? "1" : "0",
                      Table::Fmt(red.system.num_elements()),
                      Table::Fmt(red.system.num_sets()),
                      Table::Fmt(red.expected_opt),
                      Table::Fmt(red.witness_cover.size()), opt_str,
                      verdict});
      }
    }
  }
  table.Print(std::cout);
}

void ScalingTable() {
  benchutil::Banner(
      "Theorem 5.4 — reduction size accounting: |U|, |F| = O(np), "
      "witness always feasible at the formula size");
  Table table({"n", "p", "ISC", "|U|", "|F|", "|U|/(np)", "|F|/(np)",
               "witness size", "witness feasible"});
  for (uint32_t p : {2u, 4u, 8u}) {
    for (uint32_t n : {16u, 64u, 256u}) {
      Rng rng(n + p);
      IscInstance isc = GenerateRandomIsc(n, p, 3, rng);
      IscReduction red = ReduceIscToSetCover(isc);
      const double np = static_cast<double>(n) * p;
      table.AddRow(
          {Table::Fmt(n), Table::Fmt(p), red.isc_value ? "1" : "0",
           Table::Fmt(red.system.num_elements()),
           Table::Fmt(red.system.num_sets()),
           Table::Fmt(red.system.num_elements() / np, 2),
           Table::Fmt(red.system.num_sets() / np, 2),
           Table::Fmt(red.witness_cover.size()),
           IsFullCover(red.system, red.witness_cover) ? "yes" : "NO"});
    }
  }
  table.Print(std::cout);
  benchutil::Note(
      "\nreading: an exact ( 1/(2 delta) - 1 )-pass streaming algorithm "
      "run on these\ninstances decides ISC; [GO13] prices ISC at "
      "n^{1+1/(2p)} / p^{O(1)} communication\nbits, so the algorithm's "
      "memory must be Omega~(m n^delta) for m = O(n) "
      "(Theorem 5.4).");
}

}  // namespace
}  // namespace streamcover

int main() {
  streamcover::DichotomyTable();
  streamcover::ScalingTable();
  return 0;
}
