// §4 — the geometric results.
//
// Part A (Figure 1.2): the two-line construction carries h^2 = (n/2)^2
// DISTINCT 2-point rectangles, so storing one projection per distinct
// shallow range is Theta(n^2); the anchored-split canonical family
// (Lemma 4.2) collapses it to O(n). We print both counts and their
// growth slopes.
//
// Part B (Theorem 4.6): algGeomSC on planted disk / rectangle /
// fat-triangle instances: O(1) passes, near-linear space in n (slope ~1
// even though m = 8n grows too), O(rho)-approximation.

#include <cmath>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "bench_util.h"
#include "geometry/canonical.h"
#include "geometry/geom_generators.h"
#include "geometry/geom_set_cover.h"
#include "geometry/range_space.h"
#include "util/stats.h"
#include "util/table.h"

namespace streamcover {
namespace {

void PartA() {
  benchutil::Banner(
      "Figure 1.2 — Theta(n^2) distinct shallow rectangles vs the "
      "canonical family (Lemma 4.2)");
  Table table({"n (points)", "distinct 2-point rects", "canonical sets",
               "canonical words", "quadratic/canonical"});
  std::vector<double> xs, raw, canon;
  for (uint32_t n : {64u, 128u, 256u, 512u}) {
    GeomInstance inst = GenerateFigure12(n);
    const uint32_t h = n / 2;
    RectSplitter splitter(inst.points);
    TraceStore store;
    std::set<std::vector<uint32_t>> distinct;
    for (uint32_t i = 0; i < h * h; ++i) {
      const Rect& rect = std::get<Rect>(inst.shapes[i]);
      distinct.insert(TraceOf(inst.shapes[i], inst.points));
      for (const auto& piece : splitter.Decompose(rect)) {
        store.Insert(piece);
      }
    }
    xs.push_back(n);
    raw.push_back(static_cast<double>(distinct.size()));
    canon.push_back(static_cast<double>(store.size()));
    table.AddRow({Table::Fmt(n), Table::Fmt(distinct.size()),
                  Table::Fmt(store.size()),
                  Table::Fmt(store.total_words()),
                  Table::Fmt(static_cast<double>(distinct.size()) /
                                 static_cast<double>(store.size()),
                             1)});
  }
  table.Print(std::cout);
  benchutil::Note("\ngrowth slope (log-log vs n): distinct traces = " +
                  Table::Fmt(LogLogSlope(xs, raw), 2) +
                  " (quadratic), canonical = " +
                  Table::Fmt(LogLogSlope(xs, canon), 2) + " (linear)");
}

const char* ClassName(ShapeClass cls) {
  switch (cls) {
    case ShapeClass::kDisk:
      return "disks";
    case ShapeClass::kRect:
      return "rects";
    case ShapeClass::kFatTriangle:
      return "fat-triangles";
  }
  return "?";
}

void PartB() {
  benchutil::Banner(
      "Theorem 4.6 — algGeomSC: O(1) passes, O~(n) space, "
      "O(rho)-approximation (m = 8n, planted OPT = 10, delta = 1/4)");
  for (ShapeClass cls : {ShapeClass::kDisk, ShapeClass::kRect,
                         ShapeClass::kFatTriangle}) {
    Table table({"n", "m", "cover/OPT", "passes", "space max-guess",
                 "space/n", "canonical sets (peak)"});
    std::vector<double> xs, ys;
    for (uint32_t n : {512u, 1024u, 2048u}) {
      RunningStats ratio, passes, space, canonical;
      for (uint64_t seed = 1; seed <= 2; ++seed) {
        Rng rng(seed);
        GeomPlantedOptions gen;
        gen.num_points = n;
        gen.num_shapes = 8 * n;
        gen.cover_size = 10;
        gen.shape_class = cls;
        GeomInstance inst = GeneratePlantedGeom(gen, rng);
        ShapeStream stream(&inst.shapes);
        GeomSetCoverOptions options;
        options.delta = 0.25;
        options.sample_constant = 0.05;
        options.seed = seed;
        GeomStreamingResult r = AlgGeomSC(stream, inst.points, options);
        if (!r.success) continue;
        ratio.Add(static_cast<double>(r.cover.size()) /
                  static_cast<double>(inst.planted_cover.size()));
        passes.Add(static_cast<double>(r.passes));
        space.Add(static_cast<double>(r.space_words_max_guess));
        uint64_t peak_canonical = 0;
        for (const auto& diag : r.diagnostics) {
          peak_canonical = std::max(peak_canonical, diag.canonical_sets);
        }
        canonical.Add(static_cast<double>(peak_canonical));
      }
      xs.push_back(n);
      ys.push_back(space.mean());
      table.AddRow({Table::Fmt(n), Table::Fmt(8 * n),
                    Table::Fmt(ratio.mean(), 2),
                    Table::Fmt(passes.mean(), 1),
                    Table::Fmt(static_cast<uint64_t>(space.mean())),
                    Table::Fmt(space.mean() / n, 2),
                    Table::Fmt(static_cast<uint64_t>(canonical.mean()))});
    }
    benchutil::Note(std::string("### ") + ClassName(cls));
    table.Print(std::cout);
    benchutil::Note("space growth slope vs n (target ~1, near-linear): " +
                    Table::Fmt(LogLogSlope(xs, ys), 2) + "\n");
  }
}

}  // namespace
}  // namespace streamcover

int main() {
  streamcover::PartA();
  streamcover::PartB();
  return 0;
}
