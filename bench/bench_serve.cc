// bench_serve — closed-loop load generator for the serving layer.
//
// Drives an in-process CoverageServer (the same core streamcover_serve
// wraps in sockets) with C concurrent closed-loop clients: each client
// issues a solve request, waits for its response, records the
// end-to-end latency, and immediately issues the next — the classic
// closed-loop harness, so offered load scales with concurrency and the
// queue never overflows by construction. Traffic is a mixed
// solver × instance matrix (three solvers with different pass/space
// profiles over two resident instances), exercising the instance
// cache, the bounded queue, and the per-request fork path under real
// contention.
//
// Reported per concurrency level (default 1, 4, 16): throughput
// (req/s), exact p50/p90/p99/max/mean latency (sorted samples, not
// histogram buckets), and error counts. `--json FILE` (default
// BENCH_serve.json) writes schema streamcover.bench_serve.v1 — the
// serving latency trajectory CI validates per PR, alongside the
// solver-side duration_ms cells the sweep reports carry.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "serve/server.h"
#include "util/json.h"
#include "util/table.h"
#include "util/timer.h"

namespace streamcover {
namespace {

struct TrafficCell {
  const char* solver;
  const char* instance;
};

// Two resident instances × three solvers with different pass/space
// profiles: the multi-pass paper algorithm, the one-pass store-all
// greedy, and the few-pass threshold sieve.
constexpr TrafficCell kTraffic[] = {
    {"iter", "planted:n=2000,m=4000,k=20"},
    {"store_all_greedy", "planted:n=2000,m=4000,k=20"},
    {"threshold_greedy", "planted:n=2000,m=4000,k=20"},
    {"iter", "sparse:n=4096,m=8192,max_set_size=64"},
    {"store_all_greedy", "sparse:n=4096,m=8192,max_set_size=64"},
    {"threshold_greedy", "sparse:n=4096,m=8192,max_set_size=64"},
};
constexpr size_t kTrafficCells = sizeof(kTraffic) / sizeof(kTraffic[0]);

/// Issues one request and blocks for its response line.
std::string CallBlocking(CoverageServer& server, const std::string& line) {
  std::promise<std::string> done;
  std::future<std::string> response = done.get_future();
  server.HandleLine(line, [&done](const std::string& text) {
    done.set_value(text);
  });
  return response.get();
}

struct LevelResult {
  uint32_t concurrency = 0;
  uint64_t requests = 0;
  uint64_t ok = 0;
  uint64_t errors = 0;
  double elapsed_s = 0;
  double throughput_rps = 0;
  double p50_ms = 0, p90_ms = 0, p99_ms = 0, max_ms = 0, mean_ms = 0;
};

std::string Fmt(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", value);
  return buf;
}

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

LevelResult RunLevel(CoverageServer& server, uint32_t concurrency,
                     uint64_t requests_per_client) {
  std::vector<std::vector<double>> latencies(concurrency);
  std::vector<uint64_t> oks(concurrency, 0);
  std::vector<std::thread> clients;
  clients.reserve(concurrency);
  WallTimer wall;
  for (uint32_t c = 0; c < concurrency; ++c) {
    clients.emplace_back([&, c] {
      latencies[c].reserve(requests_per_client);
      for (uint64_t i = 0; i < requests_per_client; ++i) {
        const TrafficCell& cell =
            kTraffic[(c + i) % kTrafficCells];
        const std::string line =
            std::string("{\"op\":\"solve\",\"instance\":\"") +
            cell.instance + "\",\"solver\":\"" + cell.solver +
            "\",\"seed\":" + std::to_string(1 + (c + i) % 5) + "}";
        WallTimer request;
        const std::string response = CallBlocking(server, line);
        latencies[c].push_back(request.ElapsedMillis());
        if (response.find("\"ok\":true") != std::string::npos) ++oks[c];
      }
    });
  }
  for (std::thread& client : clients) client.join();
  LevelResult result;
  result.concurrency = concurrency;
  result.elapsed_s = wall.ElapsedSeconds();
  std::vector<double> all;
  for (uint32_t c = 0; c < concurrency; ++c) {
    all.insert(all.end(), latencies[c].begin(), latencies[c].end());
    result.ok += oks[c];
  }
  result.requests = all.size();
  result.errors = result.requests - result.ok;
  result.throughput_rps =
      result.elapsed_s > 0
          ? static_cast<double>(result.requests) / result.elapsed_s
          : 0;
  std::sort(all.begin(), all.end());
  result.p50_ms = Percentile(all, 0.50);
  result.p90_ms = Percentile(all, 0.90);
  result.p99_ms = Percentile(all, 0.99);
  result.max_ms = all.empty() ? 0 : all.back();
  double sum = 0;
  for (double v : all) sum += v;
  result.mean_ms =
      all.empty() ? 0 : sum / static_cast<double>(all.size());
  return result;
}

int Run(const std::string& json_path, uint32_t workers,
        uint64_t requests_per_client,
        const std::vector<uint32_t>& levels) {
  benchutil::Banner(
      "bench_serve — closed-loop serving latency/throughput "
      "(mixed solver × instance traffic, " +
      std::to_string(workers) + " workers)");

  ServerOptions options;
  options.workers = workers;
  options.queue_capacity = 1024;  // closed loop never fills it
  CoverageServer server(options);
  server.Start();
  // Warm the cache outside the measured window so level 1 doesn't pay
  // the generation cost in its percentiles.
  for (const TrafficCell& cell : kTraffic) {
    std::string error;
    if (!server.Preload(cell.instance, &error)) {
      std::fprintf(stderr, "preload %s failed: %s\n", cell.instance,
                   error.c_str());
      return 1;
    }
  }

  Table table({"concurrency", "requests", "ok", "req/s", "p50 ms",
               "p90 ms", "p99 ms", "max ms"});
  std::vector<LevelResult> results;
  for (uint32_t level : levels) {
    LevelResult r = RunLevel(server, level, requests_per_client);
    table.AddRow({std::to_string(r.concurrency),
                  std::to_string(r.requests), std::to_string(r.ok),
                  Fmt(r.throughput_rps),
                  Fmt(r.p50_ms), Fmt(r.p90_ms),
                  Fmt(r.p99_ms), Fmt(r.max_ms)});
    results.push_back(r);
  }
  table.Print(std::cout);
  server.Shutdown();

  if (json_path.empty()) return 0;
  JsonValue doc = JsonValue::Object();
  doc.Set("schema", "streamcover.bench_serve.v1");
  JsonValue params = JsonValue::Object();
  params.Set("workers", static_cast<uint64_t>(workers));
  params.Set("queue_capacity",
             static_cast<uint64_t>(options.queue_capacity));
  params.Set("requests_per_client", requests_per_client);
  JsonValue traffic = JsonValue::Array();
  for (const TrafficCell& cell : kTraffic) {
    JsonValue entry = JsonValue::Object();
    entry.Set("solver", cell.solver);
    entry.Set("instance", cell.instance);
    traffic.Append(std::move(entry));
  }
  params.Set("traffic", std::move(traffic));
  doc.Set("params", std::move(params));
  JsonValue level_rows = JsonValue::Array();
  for (const LevelResult& r : results) {
    JsonValue row = JsonValue::Object();
    row.Set("concurrency", static_cast<uint64_t>(r.concurrency));
    row.Set("requests", r.requests);
    row.Set("ok", r.ok);
    row.Set("errors", r.errors);
    row.Set("elapsed_s", r.elapsed_s);
    row.Set("throughput_rps", r.throughput_rps);
    JsonValue latency = JsonValue::Object();
    latency.Set("p50_ms", r.p50_ms);
    latency.Set("p90_ms", r.p90_ms);
    latency.Set("p99_ms", r.p99_ms);
    latency.Set("max_ms", r.max_ms);
    latency.Set("mean_ms", r.mean_ms);
    row.Set("latency", std::move(latency));
    level_rows.Append(std::move(row));
  }
  doc.Set("levels", std::move(level_rows));
  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  out << doc.Dump(2) << "\n";
  std::cout << "wrote " << json_path << "\n";
  return 0;
}

}  // namespace
}  // namespace streamcover

int main(int argc, char** argv) {
  std::string json_path = "BENCH_serve.json";
  uint32_t workers = 4;
  uint64_t requests = 60;
  std::vector<uint32_t> levels = {1, 4, 16};
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (flag == "--workers" && i + 1 < argc) {
      workers = static_cast<uint32_t>(std::atoi(argv[++i]));
    } else if (flag == "--requests" && i + 1 < argc) {
      requests = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (flag == "--levels" && i + 1 < argc) {
      levels.clear();
      std::string spec = argv[++i];
      size_t pos = 0;
      while (pos < spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos) comma = spec.size();
        levels.push_back(static_cast<uint32_t>(
            std::atoi(spec.substr(pos, comma - pos).c_str())));
        pos = comma + 1;
      }
    } else {
      std::fprintf(stderr,
                   "usage: bench_serve [--json FILE] [--workers N] "
                   "[--requests N] [--levels 1,4,16]\n");
      return 2;
    }
  }
  if (levels.empty() || workers == 0 || requests == 0) {
    std::fprintf(stderr, "bench_serve: bad parameters\n");
    return 2;
  }
  return streamcover::Run(json_path, workers, requests, levels);
}
