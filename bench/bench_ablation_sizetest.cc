// Lemma 2.3 ablation — the Size Test. A set passing |r ∩ S| >= |S|/k is
// claimed (whp) to truly cover >= |U|/(ck) of the residual. Part (1)
// measures the Size Test confusion matrix directly on planted
// instances: false-heavy rate (passing sets that are actually small by
// factor 3) and the heavy-mass captured. Part (2) sweeps the threshold
// multiplier inside iterSetCover and reports the heavy/offline pick mix,
// cover quality, and space — why |S|/k is the right operating point.

#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/iter_set_cover.h"
#include "setsystem/generators.h"
#include "stream/sampling.h"
#include "util/bitset.h"
#include "util/stats.h"
#include "util/table.h"

namespace streamcover {
namespace {

void DirectConfusion() {
  benchutil::Banner(
      "Lemma 2.3 direct check — Size Test confusion matrix "
      "(n=8192, m=4096, k=16, |S| = 64*k, 5 seeds)");
  Table table({"threshold x |S|/k", "pass rate", "false-heavy (3x)",
               "missed-heavy", "true heavy sets"});
  const uint32_t n = 8192, m = 4096, k = 16;
  for (double mult : {0.5, 1.0, 2.0, 4.0}) {
    RunningStats pass_rate, false_heavy, missed_heavy, true_heavy;
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      Rng rng(seed);
      PlantedOptions gen;
      gen.num_elements = n;
      gen.num_sets = m;
      gen.cover_size = k;
      gen.noise_max_size = n / 8;  // plenty of mid-sized noise sets
      PlantedInstance inst = GeneratePlanted(gen, rng);

      DynamicBitset universe(n, true);
      const uint64_t sample_size = 64 * k;
      std::vector<uint32_t> sample =
          SampleFromBitset(universe, sample_size, rng);
      DynamicBitset in_sample(n);
      for (uint32_t e : sample) in_sample.Set(e);

      const double threshold =
          mult * static_cast<double>(sample.size()) / k;
      const double heavy_true = static_cast<double>(n) / k;
      size_t passed = 0, false_pos = 0, missed = 0, truly_heavy = 0;
      for (uint32_t s = 0; s < inst.system.num_sets(); ++s) {
        size_t proj = 0;
        for (uint32_t e : inst.system.GetSet(s)) {
          if (in_sample.Test(e)) ++proj;
        }
        const size_t size = inst.system.SetSize(s);
        const bool passes = static_cast<double>(proj) >= threshold;
        const bool is_heavy = static_cast<double>(size) >= heavy_true;
        if (is_heavy) ++truly_heavy;
        if (passes) {
          ++passed;
          // Lemma 2.3's guarantee: passing sets have size >= |U|/(ck);
          // count violations at slack c = 3.
          if (static_cast<double>(size) < heavy_true / 3.0) ++false_pos;
        } else if (is_heavy && mult <= 1.0) {
          ++missed;
        }
      }
      pass_rate.Add(static_cast<double>(passed) / m);
      false_heavy.Add(passed > 0 ? static_cast<double>(false_pos) /
                                       static_cast<double>(passed)
                                 : 0.0);
      missed_heavy.Add(truly_heavy > 0
                           ? static_cast<double>(missed) /
                                 static_cast<double>(truly_heavy)
                           : 0.0);
      true_heavy.Add(static_cast<double>(truly_heavy));
    }
    table.AddRow({Table::Fmt(mult, 1),
                  Table::Fmt(pass_rate.mean() * 100, 1) + "%",
                  Table::Fmt(false_heavy.mean() * 100, 2) + "%",
                  Table::Fmt(missed_heavy.mean() * 100, 1) + "%",
                  Table::Fmt(true_heavy.mean(), 0)});
  }
  table.Print(std::cout);
  benchutil::Note(
      "\nreading: at the paper's threshold (1.0 x |S|/k) essentially no "
      "passing set is\nsmall by factor 3 — Lemma 2.3's whp claim, "
      "observed.");
}

void InAlgorithmSweep() {
  benchutil::Banner(
      "Size-Test multiplier inside iterSetCover "
      "(n=4096, m=8192, OPT=8, delta=1/2, 3 seeds)");
  Table table({"multiplier", "heavy picks/iter", "offline picks/iter",
               "cover/OPT", "success", "space words"});
  for (double mult : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    RunningStats heavy, offline, ratio, space;
    int successes = 0, runs = 0;
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      Rng rng(seed);
      PlantedOptions gen;
      gen.num_elements = 4096;
      gen.num_sets = 8192;
      gen.cover_size = 8;
      gen.noise_max_size = 4096 / 25;
      PlantedInstance inst = GeneratePlanted(gen, rng);
      SetStream stream(&inst.system);
      IterSetCoverOptions options;
      options.delta = 0.5;
      options.sample_constant = 0.02;
      options.size_test_multiplier = mult;
      options.seed = seed;
      StreamingResult r = IterSetCover(stream, options);
      ++runs;
      if (r.success) {
        ++successes;
        ratio.Add(static_cast<double>(r.cover.size()) /
                  static_cast<double>(inst.planted_cover.size()));
      }
      for (const auto& diag : r.diagnostics) {
        heavy.Add(static_cast<double>(diag.heavy_picked));
        offline.Add(static_cast<double>(diag.offline_picked));
      }
      space.Add(static_cast<double>(r.space_words_max_guess));
    }
    table.AddRow({Table::Fmt(mult, 2), Table::Fmt(heavy.mean(), 1),
                  Table::Fmt(offline.mean(), 1),
                  ratio.count() > 0 ? Table::Fmt(ratio.mean(), 2) : "-",
                  Table::Fmt(successes) + "/" + Table::Fmt(runs),
                  Table::Fmt(static_cast<uint64_t>(space.mean()))});
  }
  table.Print(std::cout);
  benchutil::Note(
      "\nreading: lower thresholds shift work from stored projections to "
      "eager heavy\npicks (bigger covers); higher thresholds store more "
      "(bigger space). |S|/k\nbalances the two — the design point "
      "DESIGN.md calls out.");
}

}  // namespace
}  // namespace streamcover

int main() {
  streamcover::DirectConfusion();
  streamcover::InAlgorithmSweep();
  return 0;
}
