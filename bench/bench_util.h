// Shared helpers for the bench binaries: section banners, common
// instance recipes, and strict flag parsing. Every bench prints
// GitHub-markdown tables (via util/table.h) mirroring the paper
// artifact it reproduces, so bench_output.txt can be pasted into
// EXPERIMENTS.md verbatim.

#ifndef STREAMCOVER_BENCH_BENCH_UTIL_H_
#define STREAMCOVER_BENCH_BENCH_UTIL_H_

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace streamcover {
namespace benchutil {

inline void Banner(const std::string& title) {
  std::printf("\n## %s\n\n", title.c_str());
}

inline void Note(const std::string& text) {
  std::printf("%s\n", text.c_str());
}

/// Strict full-token parse of a positive integer flag value into *out.
/// False (with a diagnostic on stderr) for malformed, out-of-range, or
/// non-positive input. atoi/atoll used to swallow all three silently:
/// `--scan-m abc` became 0 and fed a zero set count into the scan
/// stage's derived sizes, and `--rounds 20q0` became 20.
inline bool ParsePositiveInt(const char* flag, const char* value,
                             uint64_t* out) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(value, &end, 10);
  if (value[0] == '\0' || end == nullptr || *end != '\0' ||
      errno == ERANGE || v <= 0) {
    std::fprintf(stderr, "%s expects a positive integer, got '%s'\n",
                 flag, value);
    return false;
  }
  *out = static_cast<uint64_t>(v);
  return true;
}

}  // namespace benchutil
}  // namespace streamcover

#endif  // STREAMCOVER_BENCH_BENCH_UTIL_H_
