// Shared helpers for the bench binaries: section banners and common
// instance recipes. Every bench prints GitHub-markdown tables (via
// util/table.h) mirroring the paper artifact it reproduces, so
// bench_output.txt can be pasted into EXPERIMENTS.md verbatim.

#ifndef STREAMCOVER_BENCH_BENCH_UTIL_H_
#define STREAMCOVER_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

namespace streamcover {
namespace benchutil {

inline void Banner(const std::string& title) {
  std::printf("\n## %s\n\n", title.c_str());
}

inline void Note(const std::string& text) {
  std::printf("%s\n", text.c_str());
}

}  // namespace benchutil
}  // namespace streamcover

#endif  // STREAMCOVER_BENCH_BENCH_UTIL_H_
