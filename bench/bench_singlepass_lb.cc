// Theorems 3.1 / 3.8 — the single-pass Ω(mn) lower bound, made
// executable: algRecoverBit (Figure 3.1) decodes Alice's entire random
// family from a full (Many vs One)-Set Disjointness transcript, and
// fails on budget-truncated transcripts. Since Ω(2^{mn}) inputs are
// distinguishable (Observation 3.5), any decodable transcript carries
// Ω(mn) bits — and a streaming algorithm's memory IS such a transcript.
//
// Expected shape: recovery rate ~100% at mn bits for every m, collapsing
// as the budget fraction drops; query counts stay polynomial.

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "commlb/recover_bit.h"
#include "commlb/set_disjointness.h"
#include "util/stats.h"
#include "util/table.h"

namespace streamcover {
namespace {

constexpr int kSeeds = 3;

void FullTranscriptSweep() {
  benchutil::Banner(
      "Theorem 3.2 — decoding Alice's mn bits from the full transcript "
      "(n = 6*ceil(log2 m) + 24, mean over 3 seeds)");
  Table table({"m", "n", "mn bits", "recovered", "fully decoded",
               "oracle queries"});
  for (uint32_t m : {4u, 8u, 16u}) {
    uint32_t logm = 0;
    while ((1u << logm) < m) ++logm;
    const uint32_t n = 6 * logm + 24;
    RunningStats recovered, decoded, queries;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      Rng rng(seed);
      DisjointnessInstance inst = GenerateRandomDisjointness(m, n, rng);
      NaiveProtocol protocol;
      RecoverBitOptions options;
      options.seed = 100 + seed;
      options.query_budget = 10'000'000;
      RecoverBitResult r = RunRecoverBit(inst, protocol, options);
      recovered.Add(r.recovered_fraction);
      decoded.Add(r.fully_recovered ? 1.0 : 0.0);
      queries.Add(static_cast<double>(r.queries_used));
    }
    table.AddRow({Table::Fmt(m), Table::Fmt(n),
                  Table::Fmt(static_cast<uint64_t>(m) * n),
                  Table::Fmt(recovered.mean() * 100, 0) + "%",
                  Table::Fmt(decoded.mean() * 100, 0) + "%",
                  Table::Fmt(static_cast<uint64_t>(queries.mean()))});
  }
  table.Print(std::cout);
}

void TruncationSweep() {
  benchutil::Banner(
      "Theorem 3.2 contrapositive — sub-linear transcripts cannot be "
      "decoded (m=8, n=48, mean over 3 seeds)");
  const uint32_t m = 8, n = 48;
  Table table({"transcript bits", "fraction of mn", "recovered",
               "fully decoded"});
  for (double fraction : {1.0, 0.5, 0.25, 0.125, 0.0}) {
    const uint64_t budget =
        static_cast<uint64_t>(fraction * m * n + 0.5);
    RunningStats recovered, decoded;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      Rng rng(10 + seed);
      DisjointnessInstance inst = GenerateRandomDisjointness(m, n, rng);
      std::unique_ptr<OneWayProtocol> protocol;
      if (fraction >= 1.0) {
        protocol = std::make_unique<NaiveProtocol>();
      } else {
        protocol = std::make_unique<TruncatedProtocol>(budget);
      }
      RecoverBitOptions options;
      options.seed = 200 + seed;
      options.query_budget = 5'000'000;
      RecoverBitResult r = RunRecoverBit(inst, *protocol, options);
      recovered.Add(r.recovered_fraction);
      decoded.Add(r.fully_recovered ? 1.0 : 0.0);
    }
    table.AddRow({Table::Fmt(budget), Table::Fmt(fraction, 3),
                  Table::Fmt(recovered.mean() * 100, 0) + "%",
                  Table::Fmt(decoded.mean() * 100, 0) + "%"});
  }
  table.Print(std::cout);
  benchutil::Note(
      "\nreading: decodability needs the full mn bits. A single-pass "
      "streaming algorithm\nthat distinguishes covers of size 2 from 3 "
      "would BE such a transcript, hence\nneeds Omega(mn) memory "
      "(Theorem 3.8).");
}

}  // namespace
}  // namespace streamcover

int main() {
  streamcover::FullTranscriptSweep();
  streamcover::TruncationSweep();
  return 0;
}
