// The rho knob of Theorem 2.8 — algOfflineSC ablation. iterSetCover's
// approximation is O(rho/delta) for whichever offline solver it embeds:
// greedy (rho = ln n, polynomial) or exact branch-and-bound (rho = 1,
// "exponential computational power"). This bench measures:
//  (1) solver quality head-to-head on instances where exact is feasible
//      (including the adversarial family where greedy provably loses);
//  (2) the effect of rho on iterSetCover's final covers;
//  (3) wall-clock microbenchmarks of both solvers (google-benchmark).

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/iter_set_cover.h"
#include "offline/exact.h"
#include "offline/greedy.h"
#include "setsystem/generators.h"
#include "util/stats.h"
#include "util/table.h"

namespace streamcover {
namespace {

void QualityTable() {
  benchutil::Banner(
      "algOfflineSC ablation (1) — greedy (rho = ln n) vs exact "
      "(rho = 1) cover sizes");
  Table table({"instance", "n", "m", "greedy", "exact", "exact proven",
               "greedy/exact"});
  // Random planted instances.
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Rng rng(seed);
    PlantedOptions options;
    options.num_elements = 120;
    options.num_sets = 90;
    options.cover_size = 6;
    options.noise_max_size = 40;
    PlantedInstance inst = GeneratePlanted(options, rng);
    OfflineResult greedy = GreedySolver().Solve(inst.system);
    OfflineResult exact = ExactSolver(20'000'000).Solve(inst.system);
    table.AddRow({"planted seed " + Table::Fmt(seed), Table::Fmt(120),
                  Table::Fmt(90), Table::Fmt(greedy.cover.size()),
                  Table::Fmt(exact.cover.size()),
                  exact.proven_optimal ? "yes" : "no",
                  Table::Fmt(static_cast<double>(greedy.cover.size()) /
                                 static_cast<double>(exact.cover.size()),
                             2)});
  }
  // The adversarial family: greedy pays the full log factor.
  for (uint32_t levels : {4u, 6u, 8u}) {
    PlantedInstance inst = GenerateGreedyAdversarial(levels);
    OfflineResult greedy = GreedySolver().Solve(inst.system);
    OfflineResult exact = ExactSolver().Solve(inst.system);
    table.AddRow({"adversarial L=" + Table::Fmt(levels),
                  Table::Fmt(inst.system.num_elements()),
                  Table::Fmt(inst.system.num_sets()),
                  Table::Fmt(greedy.cover.size()),
                  Table::Fmt(exact.cover.size()),
                  exact.proven_optimal ? "yes" : "no",
                  Table::Fmt(static_cast<double>(greedy.cover.size()) /
                                 static_cast<double>(exact.cover.size()),
                             2)});
  }
  table.Print(std::cout);
}

void RhoInIterSetCover() {
  benchutil::Banner(
      "algOfflineSC ablation (2) — iterSetCover end-to-end with rho = "
      "ln n vs rho = 1 (n=400, m=800, OPT=8, delta=1/2)");
  Table table({"seed", "cover w/ greedy", "cover w/ exact", "both feasible"});
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Rng rng(seed);
    PlantedOptions options;
    options.num_elements = 400;
    options.num_sets = 800;
    options.cover_size = 8;
    options.noise_max_size = 30;
    PlantedInstance inst = GeneratePlanted(options, rng);

    IterSetCoverOptions greedy_options;
    greedy_options.delta = 0.5;
    greedy_options.sample_constant = 0.05;
    greedy_options.seed = seed;
    SetStream s1(&inst.system);
    StreamingResult with_greedy = IterSetCover(s1, greedy_options);

    ExactSolver exact(500'000);
    IterSetCoverOptions exact_options = greedy_options;
    exact_options.offline = &exact;
    SetStream s2(&inst.system);
    StreamingResult with_exact = IterSetCover(s2, exact_options);

    table.AddRow({Table::Fmt(seed), Table::Fmt(with_greedy.cover.size()),
                  Table::Fmt(with_exact.cover.size()),
                  (with_greedy.success && with_exact.success &&
                   IsFullCover(inst.system, with_greedy.cover) &&
                   IsFullCover(inst.system, with_exact.cover))
                      ? "yes"
                      : "NO"});
  }
  table.Print(std::cout);
}

// --- google-benchmark micro timings -------------------------------

void BM_GreedySolve(benchmark::State& state) {
  Rng rng(1);
  PlantedOptions options;
  options.num_elements = static_cast<uint32_t>(state.range(0));
  options.num_sets = options.num_elements * 2;
  options.cover_size = 10;
  options.noise_max_size = options.num_elements / 20;
  PlantedInstance inst = GeneratePlanted(options, rng);
  for (auto _ : state) {
    OfflineResult r = GreedySolver().Solve(inst.system);
    benchmark::DoNotOptimize(r.cover.set_ids.data());
  }
  state.counters["cover"] = static_cast<double>(
      GreedySolver().Solve(inst.system).cover.size());
}
BENCHMARK(BM_GreedySolve)->Arg(500)->Arg(2000)->Arg(8000);

void BM_ExactSolve(benchmark::State& state) {
  Rng rng(1);
  PlantedOptions options;
  options.num_elements = static_cast<uint32_t>(state.range(0));
  options.num_sets = options.num_elements;
  options.cover_size = 5;
  options.noise_max_size = options.num_elements / 5;
  PlantedInstance inst = GeneratePlanted(options, rng);
  for (auto _ : state) {
    OfflineResult r = ExactSolver(5'000'000).Solve(inst.system);
    benchmark::DoNotOptimize(r.cover.set_ids.data());
  }
}
BENCHMARK(BM_ExactSolve)->Arg(60)->Arg(120);

void BM_IterSetCoverPass(benchmark::State& state) {
  // Wall time of the full streaming solve (all guesses, all passes).
  Rng rng(1);
  PlantedOptions options;
  options.num_elements = static_cast<uint32_t>(state.range(0));
  options.num_sets = options.num_elements * 2;
  options.cover_size = 10;
  options.noise_max_size = options.num_elements / 20;
  PlantedInstance inst = GeneratePlanted(options, rng);
  for (auto _ : state) {
    SetStream stream(&inst.system);
    IterSetCoverOptions algo;
    algo.delta = 0.5;
    algo.sample_constant = 0.05;
    StreamingResult r = IterSetCover(stream, algo);
    benchmark::DoNotOptimize(r.cover.set_ids.data());
  }
}
BENCHMARK(BM_IterSetCoverPass)->Arg(1000)->Arg(4000);

}  // namespace
}  // namespace streamcover

int main(int argc, char** argv) {
  streamcover::QualityTable();
  streamcover::RhoInIterSetCover();
  streamcover::benchutil::Banner(
      "algOfflineSC ablation (3) — wall-clock (google-benchmark)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
