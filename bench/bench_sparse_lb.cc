// Theorem 6.6 — the sparse lower bound: ORt(Equal Limited Pointer
// Chasing) overlays into an ISC instance whose §5 reduction is
// O~(t)-SPARSE (every set has <= rt+O(1) elements, r ~ log n). Exact
// algorithms on s-sparse instances therefore need Ω~(ms) space.
//
// Reported: measured max set size vs the rt bound, the overlay's
// ORt-vs-ISC agreement (Lemma 6.5's fidelity), and a dichotomy
// spot-check through the exact solver on tiny instances.

#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "commlb/isc_to_setcover.h"
#include "commlb/sparse_lb.h"
#include "offline/exact.h"
#include "util/stats.h"
#include "util/table.h"

namespace streamcover {
namespace {

void SparsityTable() {
  benchutil::Banner(
      "Theorem 6.6 — sparsity of the ORt overlay reduction "
      "(p = 2, r = ceil(log2 n)+1, mean over 3 seeds)");
  Table table({"n", "t", "r", "|F|", "max set size s", "rt+3 bound",
               "m*s (words)", "m*n (dense)"});
  for (uint32_t n : {16u, 32u, 64u}) {
    for (uint32_t t : {1u, 2u, 4u}) {
      RunningStats max_size, sets;
      uint32_t r_used = 0;
      for (uint64_t seed = 1; seed <= 3; ++seed) {
        Rng rng(seed * 7 + n + t);
        OrtOverlayInstance overlay = GenerateOrtOverlay(n, 2, t, rng);
        r_used = overlay.r;
        IscReduction red = ReduceIscToSetCover(overlay.isc);
        max_size.Add(static_cast<double>(MaxSetSize(red.system)));
        sets.Add(static_cast<double>(red.system.num_sets()));
      }
      const uint64_t m = static_cast<uint64_t>(sets.mean());
      table.AddRow(
          {Table::Fmt(n), Table::Fmt(t), Table::Fmt(r_used),
           Table::Fmt(m), Table::Fmt(max_size.mean(), 1),
           Table::Fmt(static_cast<uint64_t>(r_used) * t + 3),
           Table::Fmt(static_cast<uint64_t>(m * max_size.mean())),
           Table::Fmt(m * static_cast<uint64_t>(
                              (4 * 2 + 2) * n + 2 * 2))});
    }
  }
  table.Print(std::cout);
  benchutil::Note(
      "\nreading: the instances are genuinely sparse (s << |U|), so the "
      "Omega~(ms) bound\nbites far below the dense Omega~(mn^delta) — "
      "yet still forces Omega(log n) passes\nfor exact algorithms in "
      "o(ms) space.");
}

void FidelityTable() {
  benchutil::Banner(
      "Lemma 6.5 fidelity — ORt(EPC) answer vs overlaid ISC answer "
      "(100 seeds each)");
  Table table({"n", "p", "t", "ORt=1 implies ISC=1", "overall agreement",
               "r-non-injective runs"});
  for (uint32_t t : {1u, 2u, 3u}) {
    const uint32_t n = 32, p = 2;
    int sound = 0, total_ort = 0, agree = 0, flagged = 0;
    const int kRuns = 100;
    for (int seed = 1; seed <= kRuns; ++seed) {
      Rng rng(seed);
      OrtOverlayInstance overlay = GenerateOrtOverlay(n, p, t, rng);
      bool isc = EvaluateIsc(overlay.isc);
      if (overlay.ort_value) {
        ++total_ort;
        if (isc) ++sound;
      }
      if (isc == overlay.ort_value) ++agree;
      if (overlay.r_non_injective) ++flagged;
    }
    table.AddRow({Table::Fmt(n), Table::Fmt(p), Table::Fmt(t),
                  total_ort == 0
                      ? std::string("n/a")
                      : Table::Fmt(100.0 * sound / total_ort, 0) + "%",
                  Table::Fmt(100.0 * agree / kRuns, 0) + "%",
                  Table::Fmt(flagged)});
  }
  table.Print(std::cout);
  benchutil::Note(
      "\nthe ORt=1 -> ISC=1 direction is exact by construction; the "
      "reverse can fail via\ncross-instance collisions whose rate "
      "Lemma 6.5 bounds by t^2 p r^{p-1} / n.");
}

void DichotomySpotCheck() {
  benchutil::Banner(
      "§6 end-to-end spot check — overlay reduction keeps the §5 "
      "dichotomy (exact solver, n=3, p=2, t=2)");
  Table table({"seed", "ISC", "expected OPT", "exact OPT", "verdict"});
  int checked = 0;
  for (uint64_t seed = 1; seed <= 8 && checked < 4; ++seed) {
    Rng rng(seed);
    OrtOverlayInstance overlay = GenerateOrtOverlay(3, 2, 2, rng);
    IscReduction red = ReduceIscToSetCover(overlay.isc);
    ExactSolver solver(40'000'000);
    OfflineResult opt = solver.Solve(red.system);
    if (!opt.proven_optimal) continue;
    ++checked;
    table.AddRow({Table::Fmt(seed), red.isc_value ? "1" : "0",
                  Table::Fmt(red.expected_opt),
                  Table::Fmt(opt.cover.size()),
                  opt.cover.size() == red.expected_opt ? "MATCH"
                                                       : "MISMATCH"});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace streamcover

int main() {
  streamcover::SparsityTable();
  streamcover::FidelityTable();
  streamcover::DichotomySpotCheck();
  return 0;
}
