// Figure 1.1 — the paper's summary table, regenerated with MEASURED
// columns. Every algorithm row of the table runs on identical planted
// streams (n=2000, m=4000, OPT<=25, 3 seeds); we report the measured
// cover-size ratio against the planted optimum, the measured pass
// count, and the measured peak working memory in 64-bit words.
//
// What should hold (the paper's shape, not its constants):
//  * greedy rows: best covers; either 1 pass + input-sized space, or
//    tiny space + as many passes as sets picked;
//  * [SG09]/[ER14]/[CW16]: O~(n) space; quality degrades as passes drop;
//  * [DIMV14] vs iterSetCover at equal delta: comparable space, but
//    exponentially more passes for DIMV14;
//  * iterSetCover: 2/delta passes, intermediate space, log-factor cover.

#include <iostream>
#include <string>
#include <vector>

#include "baselines/dimv14.h"
#include "baselines/iterative_greedy.h"
#include "baselines/store_all_greedy.h"
#include "baselines/threshold_greedy.h"
#include "bench_util.h"
#include "core/iter_set_cover.h"
#include "setsystem/generators.h"
#include "util/stats.h"
#include "util/table.h"

namespace streamcover {
namespace {

struct Measured {
  RunningStats ratio;   // cover size / planted OPT
  RunningStats passes;
  RunningStats space;
};

constexpr uint32_t kN = 2000;
constexpr uint32_t kM = 4000;
constexpr uint32_t kOpt = 25;
constexpr int kSeeds = 3;

PlantedInstance MakeInstance(uint64_t seed) {
  Rng rng(seed);
  PlantedOptions options;
  options.num_elements = kN;
  options.num_sets = kM;
  options.cover_size = kOpt;
  options.noise_max_size = kN / 25;
  return GeneratePlanted(options, rng);
}

void Run() {
  benchutil::Banner(
      "Figure 1.1 — summary table with measured columns "
      "(n=2000, m=4000, planted OPT=25, mean over 3 seeds)");

  struct RowSpec {
    std::string name;
    std::string paper_bound;  // approx | passes | space from Figure 1.1
  };
  std::vector<RowSpec> specs = {
      {"greedy, store-all", "ln n | 1 | O(mn)"},
      {"greedy, pass-per-pick", "ln n | n | O(n)"},
      {"[SG09] progressive", "O(log n) | O(log n) | O~(n)"},
      {"[ER14] threshold p=1", "O(sqrt n) | 1 | O~(n)"},
      {"[CW16] threshold p=2", "O(n^{1/3}) | 2 | O~(n)"},
      {"[CW16] threshold p=3", "O(n^{1/4}) | 3 | O~(n)"},
      {"[DIMV14] delta=1/3", "O(4^{1/d} rho) | O(4^{1/d}) | O~(mn^d)"},
      {"iterSetCover delta=1/3", "O(rho/d) | 2/d | O~(mn^d)"},
      {"iterSetCover delta=1/2", "O(rho/d) | 2/d | O~(mn^d)"},
  };
  std::vector<Measured> measured(specs.size());

  for (int seed = 1; seed <= kSeeds; ++seed) {
    PlantedInstance inst = MakeInstance(seed);
    const double opt = static_cast<double>(inst.planted_cover.size());
    auto record = [&](size_t row, size_t cover, uint64_t passes,
                      uint64_t space) {
      measured[row].ratio.Add(static_cast<double>(cover) / opt);
      measured[row].passes.Add(static_cast<double>(passes));
      measured[row].space.Add(static_cast<double>(space));
    };
    {
      SetStream s(&inst.system);
      BaselineResult r = StoreAllGreedy(s);
      record(0, r.cover.size(), r.passes, r.space_words);
    }
    {
      SetStream s(&inst.system);
      BaselineResult r = IterativeGreedy(s);
      record(1, r.cover.size(), r.passes, r.space_words);
    }
    {
      SetStream s(&inst.system);
      BaselineResult r = ProgressiveGreedy(s);
      record(2, r.cover.size(), r.passes, r.space_words);
    }
    for (uint32_t p : {1u, 2u, 3u}) {
      SetStream s(&inst.system);
      BaselineResult r = PolynomialThresholdCover(s, p);
      record(2 + p, r.cover.size(), r.passes, r.space_words);
    }
    {
      SetStream s(&inst.system);
      Dimv14Options options;
      options.delta = 1.0 / 3.0;
      options.sample_constant = 0.05;
      options.seed = seed;
      BaselineResult r = Dimv14Cover(s, options);
      record(6, r.cover.size(), r.passes, r.space_words);
    }
    for (size_t i : {size_t{7}, size_t{8}}) {
      SetStream s(&inst.system);
      IterSetCoverOptions options;
      options.delta = (i == 7) ? 1.0 / 3.0 : 0.5;
      options.sample_constant = 0.05;
      options.seed = seed;
      StreamingResult r = IterSetCover(s, options);
      // Space reported for the guess k ~ OPT: at laptop scale the
      // wrong-k guesses clamp their samples to the whole residual and
      // degenerate to store-all behaviour; the k ~ OPT guess is where
      // the O~(m n^delta) bound has content (the bench_tradeoff n-sweep
      // quantifies it).
      SetStream s2(&inst.system);
      StreamingResult rk = IterSetCoverSingleGuess(s2, 32, options);
      record(i, r.cover.size(), r.passes, rk.space_words_max_guess);
    }
  }

  Table table({"algorithm", "paper: approx | passes | space",
               "cover/OPT", "passes", "space (words)"});
  for (size_t i = 0; i < specs.size(); ++i) {
    table.AddRow({specs[i].name, specs[i].paper_bound,
                  Table::Fmt(measured[i].ratio.mean(), 2),
                  Table::Fmt(measured[i].passes.mean(), 1),
                  Table::Fmt(static_cast<uint64_t>(
                      measured[i].space.mean()))});
  }
  table.Print(std::cout);
  benchutil::Note(
      "\nspace for iterSetCover is the k~OPT guess (wrong-k guesses "
      "degenerate to\nstore-all at this scale; parallel guesses add a "
      "log n factor); input size is " +
      std::to_string(MakeInstance(1).system.total_size()) + " words.");
}

}  // namespace
}  // namespace streamcover

int main() {
  streamcover::Run();
  return 0;
}
