// Figure 1.1 — the paper's summary table, regenerated with MEASURED
// columns. Every algorithm row of the table runs on identical planted
// streams (n=2000, m=4000, OPT<=25, 3 seeds); we report the measured
// cover-size ratio against the planted optimum, the measured pass
// count, and the measured peak working memory in 64-bit words.
//
// What should hold (the paper's shape, not its constants):
//  * greedy rows: best covers; either 1 pass + input-sized space, or
//    tiny space + as many passes as sets picked;
//  * [SG09]/[ER14]/[CW16]: O~(n) space; quality degrades as passes drop;
//  * [DIMV14] vs iterSetCover at equal delta: comparable space, but
//    exponentially more passes for DIMV14;
//  * iterSetCover: 2/delta passes, intermediate space, log-factor cover.

#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/iter_set_cover.h"
#include "core/solver_registry.h"
#include "setsystem/generators.h"
#include "util/stats.h"
#include "util/table.h"

namespace streamcover {
namespace {

struct Measured {
  RunningStats ratio;   // cover size / planted OPT
  RunningStats passes;
  RunningStats space;
};

constexpr uint32_t kN = 2000;
constexpr uint32_t kM = 4000;
constexpr uint32_t kOpt = 25;
constexpr int kSeeds = 3;

PlantedInstance MakeInstance(uint64_t seed) {
  Rng rng(seed);
  PlantedOptions options;
  options.num_elements = kN;
  options.num_sets = kM;
  options.cover_size = kOpt;
  options.noise_max_size = kN / 25;
  return GeneratePlanted(options, rng);
}

void Run() {
  benchutil::Banner(
      "Figure 1.1 — summary table with measured columns "
      "(n=2000, m=4000, planted OPT=25, mean over 3 seeds)");

  // Every row dispatches through SolverRegistry::RunSolver; only the
  // registry name and RunOptions differ per row.
  struct RowSpec {
    std::string name;
    std::string paper_bound;  // approx | passes | space from Figure 1.1
    std::string solver;       // SolverRegistry name
    double delta = 0.5;
    uint32_t threshold_passes = 2;
    /// iterSetCover rows re-measure space with the k ~ OPT guess: at
    /// laptop scale the wrong-k guesses clamp their samples to the whole
    /// residual and degenerate to store-all behaviour; the k ~ OPT guess
    /// is where the O~(m n^delta) bound has content (the bench_tradeoff
    /// n-sweep quantifies it).
    bool single_guess_space = false;
  };
  std::vector<RowSpec> specs = {
      {"greedy, store-all", "ln n | 1 | O(mn)", "store_all_greedy"},
      {"greedy, pass-per-pick", "ln n | n | O(n)", "iterative_greedy"},
      {"[SG09] progressive", "O(log n) | O(log n) | O~(n)",
       "progressive_greedy"},
      {"[ER14] threshold p=1", "O(sqrt n) | 1 | O~(n)", "threshold_greedy",
       0.5, 1},
      {"[CW16] threshold p=2", "O(n^{1/3}) | 2 | O~(n)", "threshold_greedy",
       0.5, 2},
      {"[CW16] threshold p=3", "O(n^{1/4}) | 3 | O~(n)", "threshold_greedy",
       0.5, 3},
      {"[DIMV14] delta=1/3", "O(4^{1/d} rho) | O(4^{1/d}) | O~(mn^d)",
       "dimv14", 1.0 / 3.0},
      {"iterSetCover delta=1/3", "O(rho/d) | 2/d | O~(mn^d)", "iter",
       1.0 / 3.0, 2, true},
      {"iterSetCover delta=1/2", "O(rho/d) | 2/d | O~(mn^d)", "iter", 0.5,
       2, true},
  };
  std::vector<Measured> measured(specs.size());

  for (int seed = 1; seed <= kSeeds; ++seed) {
    PlantedInstance inst = MakeInstance(seed);
    const double opt = static_cast<double>(inst.planted_cover.size());
    for (size_t i = 0; i < specs.size(); ++i) {
      const RowSpec& spec = specs[i];
      RunOptions options;
      options.delta = spec.delta;
      options.sample_constant = 0.05;
      options.seed = seed;
      options.threshold_passes = spec.threshold_passes;
      SetStream s(&inst.system);
      RunResult r = RunSolver(spec.solver, s, options);
      uint64_t space = r.space_words;
      if (spec.single_guess_space) {
        IterSetCoverOptions iter_options;
        iter_options.delta = spec.delta;
        iter_options.sample_constant = 0.05;
        iter_options.seed = seed;
        SetStream s2(&inst.system);
        StreamingResult rk = IterSetCoverSingleGuess(s2, 32, iter_options);
        space = rk.space_words_max_guess;
      }
      measured[i].ratio.Add(static_cast<double>(r.cover.size()) / opt);
      measured[i].passes.Add(static_cast<double>(r.passes));
      measured[i].space.Add(static_cast<double>(space));
    }
  }

  Table table({"algorithm", "paper: approx | passes | space",
               "cover/OPT", "passes", "space (words)"});
  for (size_t i = 0; i < specs.size(); ++i) {
    table.AddRow({specs[i].name, specs[i].paper_bound,
                  Table::Fmt(measured[i].ratio.mean(), 2),
                  Table::Fmt(measured[i].passes.mean(), 1),
                  Table::Fmt(static_cast<uint64_t>(
                      measured[i].space.mean()))});
  }
  table.Print(std::cout);
  benchutil::Note(
      "\nspace for iterSetCover is the k~OPT guess (wrong-k guesses "
      "degenerate to\nstore-all at this scale; parallel guesses add a "
      "log n factor); input size is " +
      std::to_string(MakeInstance(1).system.total_size()) + " words.");
}

}  // namespace
}  // namespace streamcover

int main() {
  streamcover::Run();
  return 0;
}
