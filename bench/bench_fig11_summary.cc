// Figure 1.1 — the paper's summary table, regenerated with MEASURED
// columns. Every algorithm row of the table runs on identical planted
// workloads (n=2000, m=4000, OPT<=25, 3 seeds) through one RunPlan grid;
// we report the measured cover-size ratio against the planted optimum,
// the measured pass count, and the measured peak working memory in
// 64-bit words.
//
// What should hold (the paper's shape, not its constants):
//  * greedy rows: best covers; either 1 pass + input-sized space, or
//    tiny space + as many passes as sets picked;
//  * [SG09]/[ER14]/[CW16]: O~(n) space; quality degrades as passes drop;
//  * [DIMV14] vs iterSetCover at equal delta: comparable space, but
//    exponentially more passes for DIMV14;
//  * iterSetCover: 2/delta passes, intermediate space, log-factor cover.
//
// `--json out.json` additionally writes the raw RunReport (schema
// streamcover.run_report.v4) for the perf trajectory. The "seq scans"
// vs "phys scans" columns show the shared-scan scheduler collapsing
// iterSetCover's guesses × passes sequential blow-up to one physical
// scan per round.
//
// Instances come from the registered `planted` workload
// (noise_max_size = n/20); pre-registry revisions of this bench
// generated noise up to n/25, so absolute numbers shifted slightly when
// the bench migrated. The JSON perf baseline starts at this revision.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/instance.h"
#include "core/run_plan.h"
#include "util/table.h"

namespace streamcover {
namespace {

constexpr uint32_t kN = 2000;
constexpr uint32_t kM = 4000;
constexpr uint32_t kOpt = 25;
constexpr int kSeeds = 3;
/// iterSetCover rows re-measure space with the k ~ OPT guess: at laptop
/// scale the wrong-k guesses clamp their samples to the whole residual
/// and degenerate to store-all behaviour; the k ~ OPT guess is where the
/// O~(m n^delta) bound has content (the bench_tradeoff n-sweep
/// quantifies it).
constexpr uint64_t kOptGuess = 32;

struct RowSpec {
  std::string name;
  std::string paper_bound;  // approx | passes | space from Figure 1.1
  std::string solver;       // SolverRegistry name
  double delta = 0.5;
  uint32_t threshold_passes = 2;
  bool single_guess_space = false;
};

int Run(const std::string& json_path) {
  benchutil::Banner(
      "Figure 1.1 — summary table with measured columns "
      "(n=2000, m=4000, planted OPT=25, mean over 3 seeds)");

  // Every row is a SolverSpec of one RunPlan grid over the shared
  // planted workload; only registry name and RunOptions differ per row.
  std::vector<RowSpec> specs = {
      {"greedy, store-all", "ln n | 1 | O(mn)", "store_all_greedy"},
      {"greedy, pass-per-pick", "ln n | n | O(n)", "iterative_greedy"},
      {"[SG09] progressive", "O(log n) | O(log n) | O~(n)",
       "progressive_greedy"},
      {"[ER14] threshold p=1", "O(sqrt n) | 1 | O~(n)", "threshold_greedy",
       0.5, 1},
      {"[CW16] threshold p=2", "O(n^{1/3}) | 2 | O~(n)", "threshold_greedy",
       0.5, 2},
      {"[CW16] threshold p=3", "O(n^{1/4}) | 3 | O~(n)", "threshold_greedy",
       0.5, 3},
      {"[DIMV14] delta=1/3", "O(4^{1/d} rho) | O(4^{1/d}) | O~(mn^d)",
       "dimv14", 1.0 / 3.0},
      {"iterSetCover delta=1/3", "O(rho/d) | 2/d | O~(mn^d)", "iter",
       1.0 / 3.0, 2, true},
      {"iterSetCover delta=1/2", "O(rho/d) | 2/d | O~(mn^d)", "iter", 0.5,
       2, true},
  };

  RunPlan plan;
  for (const RowSpec& spec : specs) {
    SolverSpec solver;
    solver.solver = spec.solver;
    solver.label = spec.name;
    solver.options.delta = spec.delta;
    solver.options.sample_constant = 0.05;
    solver.options.threshold_passes = spec.threshold_passes;
    plan.solvers.push_back(std::move(solver));
    if (spec.single_guess_space) {
      // Space-probe twin of the row: same options, single k~OPT guess.
      SolverSpec probe;
      probe.solver = spec.solver;
      probe.label = "probe:" + spec.name;
      probe.options = plan.solvers.back().options;
      probe.options.iter_guess = kOptGuess;
      plan.solvers.push_back(std::move(probe));
    }
  }
  {
    WorkloadSpec workload;
    workload.workload = "planted";
    workload.label = "planted";
    workload.params.n = kN;
    workload.params.m = kM;
    workload.params.k = kOpt;
    plan.workloads.push_back(std::move(workload));
  }
  plan.seeds = {1, 2, 3};
  static_assert(kSeeds == 3, "seeds list above must match kSeeds");

  RunReport report = ExecutePlan(plan);

  Table table({"algorithm", "paper: approx | passes | space",
               "cover/OPT", "passes", "seq scans", "phys scans",
               "space (words)"});
  for (const RowSpec& spec : specs) {
    const RunCell* cell = report.FindCell(spec.name, "planted");
    if (cell == nullptr || cell->runs == 0) {
      table.AddRow({spec.name, spec.paper_bound, "-", "-", "-", "-", "-"});
      continue;
    }
    double space = cell->space_words.mean();
    if (spec.single_guess_space) {
      const RunCell* probe = report.FindCell("probe:" + spec.name,
                                             "planted");
      if (probe != nullptr && probe->runs > 0) {
        space = probe->space_words.mean();
      }
    }
    table.AddRow({spec.name, spec.paper_bound,
                  Table::Fmt(cell->ratio.mean(), 2),
                  Table::Fmt(cell->passes.mean(), 1),
                  Table::Fmt(cell->sequential_scans.mean(), 1),
                  Table::Fmt(cell->physical_scans.mean(), 1),
                  Table::Fmt(static_cast<uint64_t>(space))});
  }
  table.Print(std::cout);

  WorkloadParams probe_params;
  probe_params.n = kN;
  probe_params.m = kM;
  probe_params.k = kOpt;
  probe_params.seed = 1;
  std::optional<Instance> probe = MakeWorkload("planted", probe_params);
  benchutil::Note(
      "\nspace for iterSetCover is the k~OPT guess (wrong-k guesses "
      "degenerate to\nstore-all at this scale; parallel guesses add a "
      "log n factor); input size is " +
      std::to_string(probe.has_value() && probe->materialized() != nullptr
                         ? probe->materialized()->total_size()
                         : 0) +
      " words.");

  if (!json_path.empty()) {
    std::string error;
    if (!report.WriteJsonFile(json_path, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    benchutil::Note("wrote " + json_path);
  }
  return 0;
}

}  // namespace
}  // namespace streamcover

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      // Bare --json writes the stable trajectory path, so every PR's CI
      // artifact lands under the same name.
      if (i + 1 >= argc || std::string(argv[i + 1]).rfind("--", 0) == 0) {
        json_path = "BENCH_fig11.json";
      } else {
        json_path = argv[++i];
      }
    }
  }
  return streamcover::Run(json_path);
}
