// bench_hotpath — dispatch-throughput microbenchmark for the columnar
// hot path (CSR SetViews + projection arena) against the seed
// representation (a fresh std::vector per set per consumer, projections
// stored as fresh vectors).
//
// Workload: the Figure 1.1 planted instance (n=2000, m=4000, OPT<=25,
// seed 1). Both paths run the same Size-Test-shaped work — filter each
// set against a live bitset, store light projections, drop heavy ones —
// multiplexed over `--consumers` parallel consumers on a PassScheduler,
// exactly the per-set work iterSetCover's guesses do per scan:
//
//   * vector path (pre-refactor): each consumer copies the dispatched
//     elements into a fresh std::vector, filters into another fresh
//     vector, and stores it; per-round cleanup frees every one of them.
//   * view path (this repo): consumers read the borrowed SetView span
//     in place and filter straight into a bump arena; per-round cleanup
//     is an O(1) epoch reset.
//
// A second A/B stage measures the coverage kernels themselves
// (util/cover_kernels.h): the masked-filter, masked-popcount, and
// masked-mark twins (scalar reference vs word-parallel path) stream
// every set of the instance against the live mask, checksum-verified
// to do identical work, reported as elements/sec and a word-vs-scalar
// speedup.
//
// A third stage measures the disk path end to end: a sparse instance
// (--scan-m sets, default 200k; the acceptance run uses 10^7) is
// streamed straight to disk in both formats via the streaming
// generators, then scanned through each SetSource — text re-parse
// (FileSetSource), binary mmap decode (MmapSetSource), and the
// in-memory CSR (InMemorySetSource over the loaded system) — with a
// checksum cross-check proving the three dispatch identical elements.
// Reported as GB/s of underlying bytes and sets/sec per source.
//
// A fourth stage A/Bs gain maintenance: MergeStage runs the exact
// greedy over all m planted candidates twice — kRescan (every
// unpicked candidate's gain recomputed per round) vs kTransposed (the
// element→candidates index + decremental GainTracker + lazy heap) —
// with an identical-cover check. The reported reduction in gain
// evaluations per round (sets_touched / rounds) is the
// output-sensitivity headline the CI release gate holds at >= 5x.
//
// A fifth stage A/Bs the dense representation: the dense-eligible sets
// of a zipf instance generated at max_set_size = n/2 run the sparse
// word kernels over their spans vs the fused dense kernels
// (count/mark) over their BitsetCSR rows under `auto` ISA dispatch,
// checksum-verified to do identical work. The CI release gate holds
// the dense fused count path at >= 1.5x the sparse word path.
//
// Reported: sets/sec dispatched, ns per element projected, the
// view-vs-vector / word-vs-scalar / dense-vs-word speedups and the
// transposed-vs-rescan work reduction, the scan-stage GB/s, peak RSS,
// the detected SIMD tier (`cpu` block), and a timed registry run of
// the full `iter` solver with its covers/passes/space so the perf
// trajectory carries correctness context. `--json FILE` (default
// BENCH_hotpath.json) writes schema streamcover.bench_hotpath.v5; CI
// uploads it per PR so the numbers accumulate. `--selftest` checks the
// strict flag parser (non-positive and malformed values rejected) and
// exits.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/instance.h"
#include "core/solver_registry.h"
#include "core/workload_registry.h"
#include "setsystem/binary_io.h"
#include "setsystem/generators.h"
#include "setsystem/stream_generators.h"
#include "shard/merge_stage.h"
#include "stream/mmap_set_source.h"
#include "stream/pass_scheduler.h"
#include "stream/set_source.h"
#include "util/arena.h"
#include "util/bitset.h"
#include "util/cover_kernels.h"
#include "util/json.h"
#include "util/table.h"
#include "util/timer.h"

namespace streamcover {
namespace {

constexpr uint32_t kN = 2000;
constexpr uint32_t kM = 4000;
constexpr uint32_t kOpt = 25;
constexpr uint64_t kSeed = 1;

/// Every consumer filters against the same live mask (every other
/// element "live") with a threshold that keeps most projections light —
/// the storage-heavy regime the arena exists for.
DynamicBitset MakeLiveMask(uint32_t n) {
  DynamicBitset live(n);
  for (uint32_t e = 0; e < n; e += 2) live.Set(e);
  return live;
}

/// Pre-refactor representation: per-set vector materialization, fresh
/// projection vectors, per-round frees.
class VectorPathConsumer final : public ScanConsumer {
 public:
  VectorPathConsumer(const DynamicBitset* live, size_t threshold,
                     uint64_t rounds)
      : live_(live), threshold_(threshold), remaining_(rounds) {}

  void OnSet(const SetView& set) override {
    // The copy every pre-view consumer paid: elements materialize as a
    // fresh vector before the consumer's own logic sees them.
    std::vector<uint32_t> elems(set.begin(), set.end());
    std::vector<uint32_t> proj;
    for (uint32_t e : elems) {
      if (live_->Test(e)) proj.push_back(e);
    }
    if (proj.empty() || proj.size() >= threshold_) return;
    checksum_ += proj.size();
    projections_.emplace_back(set.id, std::move(proj));
  }
  void OnPassEnd() override {
    stored_ += projections_.size();
    projections_.clear();  // frees every projection vector
    if (remaining_ > 0) --remaining_;
  }
  bool done() const override { return remaining_ == 0; }

  uint64_t stored() const { return stored_; }
  uint64_t checksum() const { return checksum_; }

 private:
  const DynamicBitset* live_;
  const size_t threshold_;
  uint64_t remaining_;
  std::vector<std::pair<uint32_t, std::vector<uint32_t>>> projections_;
  uint64_t stored_ = 0;
  uint64_t checksum_ = 0;
};

/// Columnar representation: borrowed spans in, bump-arena storage,
/// O(1) epoch reset per round.
class ViewPathConsumer final : public ScanConsumer {
 public:
  ViewPathConsumer(const DynamicBitset* live, size_t threshold,
                   uint64_t rounds)
      : live_(live), threshold_(threshold), remaining_(rounds) {}

  void OnSet(const SetView& set) override {
    const size_t mark = arena_.size();
    for (uint32_t e : set.elems) {
      if (live_->Test(e)) arena_.Push(e);
    }
    const size_t length = arena_.size() - mark;
    if (length == 0 || length >= threshold_) {
      arena_.RewindTo(mark);
      return;
    }
    checksum_ += length;
    refs_.push_back(set.id);
  }
  void OnPassEnd() override {
    stored_ += refs_.size();
    refs_.clear();
    arena_.ResetEpoch();
    if (remaining_ > 0) --remaining_;
  }
  bool done() const override { return remaining_ == 0; }

  uint64_t stored() const { return stored_; }
  uint64_t checksum() const { return checksum_; }

 private:
  const DynamicBitset* live_;
  const size_t threshold_;
  uint64_t remaining_;
  U32Arena arena_;
  std::vector<uint32_t> refs_;
  uint64_t stored_ = 0;
  uint64_t checksum_ = 0;
};

struct DispatchStats {
  double seconds = 0;
  double sets_per_sec = 0;
  double ns_per_element = 0;
  uint64_t stored = 0;
  uint64_t checksum = 0;
};

template <typename Consumer>
DispatchStats RunDispatch(Instance& instance, const DynamicBitset& live,
                          size_t threshold, uint32_t consumers,
                          uint64_t rounds, uint32_t threads) {
  SetStream stream = instance.NewStream();
  PassScheduler scheduler(stream, threads);
  std::vector<Consumer> pool;
  pool.reserve(consumers);
  for (uint32_t c = 0; c < consumers; ++c) {
    pool.emplace_back(&live, threshold, rounds);
  }
  for (Consumer& c : pool) scheduler.Register(&c);

  WallTimer timer;
  scheduler.RunToCompletion();
  DispatchStats stats;
  stats.seconds = timer.ElapsedSeconds();
  const SetSystem* system = instance.materialized();
  const double dispatched_sets = static_cast<double>(kM) *
                                 static_cast<double>(consumers) *
                                 static_cast<double>(rounds);
  const double dispatched_elems =
      static_cast<double>(system != nullptr ? system->total_size() : 0) *
      static_cast<double>(consumers) * static_cast<double>(rounds);
  stats.sets_per_sec = dispatched_sets / stats.seconds;
  stats.ns_per_element = stats.seconds * 1e9 / dispatched_elems;
  for (Consumer& c : pool) {
    stats.stored += c.stored();
    stats.checksum += c.checksum();
  }
  return stats;
}

// --- Kernel A/B stage: the masked-filter / masked-popcount /
// masked-mark twins on the same instance and live mask the dispatch
// stage uses. ----------------------------------------------------------

struct KernelStats {
  double seconds = 0;
  double melems_per_sec = 0;  ///< millions of span elements consumed/sec
  uint64_t kept = 0;          ///< elements that survived the mask
};

/// Streams every set through FilterInto against `live`, `rounds` times,
/// with an O(1) arena epoch reset per round — the Size-Test inner loop
/// in isolation.
KernelStats RunFilterStage(const SetSystem& system, const LiveMask& live,
                           uint64_t rounds, KernelPolicy policy) {
  U32Arena arena;
  KernelStats stats;
  WallTimer timer;
  for (uint64_t r = 0; r < rounds; ++r) {
    for (uint32_t s = 0; s < system.num_sets(); ++s) {
      stats.kept += FilterInto(system.GetSet(s), live.bits(), arena, policy);
    }
    arena.ResetEpoch();
  }
  stats.seconds = timer.ElapsedSeconds();
  stats.melems_per_sec = static_cast<double>(system.total_size()) *
                         static_cast<double>(rounds) / stats.seconds / 1e6;
  return stats;
}

/// Same shape for CountUncovered — the gain test every threshold
/// algorithm runs per set.
KernelStats RunCountStage(const SetSystem& system, const LiveMask& live,
                          uint64_t rounds, KernelPolicy policy) {
  KernelStats stats;
  WallTimer timer;
  for (uint64_t r = 0; r < rounds; ++r) {
    for (uint32_t s = 0; s < system.num_sets(); ++s) {
      stats.kept += CountUncovered(system.GetSet(s), live.bits(), policy);
    }
  }
  stats.seconds = timer.ElapsedSeconds();
  stats.melems_per_sec = static_cast<double>(system.total_size()) *
                         static_cast<double>(rounds) / stats.seconds / 1e6;
  return stats;
}

/// And for MarkCovered — the residual update. The mask is consumed as
/// sets clear it, so each round ends with a word-parallel OrInto
/// restore from the pristine mask (covered bits are a subset, so the
/// union is an exact reset).
KernelStats RunMarkStage(const SetSystem& system, const LiveMask& live,
                         uint64_t rounds, KernelPolicy policy) {
  DynamicBitset working = live.bits();
  KernelStats stats;
  WallTimer timer;
  for (uint64_t r = 0; r < rounds; ++r) {
    for (uint32_t s = 0; s < system.num_sets(); ++s) {
      stats.kept += MarkCovered(system.GetSet(s), working, policy);
    }
    live.bits().OrInto(working);
  }
  stats.seconds = timer.ElapsedSeconds();
  stats.melems_per_sec = static_cast<double>(system.total_size()) *
                         static_cast<double>(rounds) / stats.seconds / 1e6;
  return stats;
}

/// One untimed pass proving the twins produce identical sequences, not
/// just identical totals.
bool VerifyKernelTwins(const SetSystem& system, const LiveMask& live) {
  std::vector<uint32_t> scalar_out;
  std::vector<uint32_t> word_out;
  for (uint32_t s = 0; s < system.num_sets(); ++s) {
    scalar_out.clear();
    word_out.clear();
    FilterInto(system.GetSet(s), live.bits(), scalar_out,
               KernelPolicy::kScalar);
    FilterInto(system.GetSet(s), live.bits(), word_out, KernelPolicy::kWord);
    if (scalar_out != word_out) return false;
  }
  return true;
}

JsonValue KernelStatsJson(const KernelStats& stats) {
  JsonValue v = JsonValue::Object();
  v.Set("seconds", stats.seconds);
  v.Set("melems_per_sec", stats.melems_per_sec);
  v.Set("kept", stats.kept);
  return v;
}

JsonValue KernelAbJson(const KernelStats& scalar, const KernelStats& word) {
  JsonValue v = JsonValue::Object();
  v.Set("scalar", KernelStatsJson(scalar));
  v.Set("word", KernelStatsJson(word));
  v.Set("speedup", word.melems_per_sec / scalar.melems_per_sec);
  return v;
}

// --- Scan stage: the disk path end to end. ---------------------------

struct ScanStats {
  double seconds = 0;
  double gb_per_sec = 0;    ///< underlying bytes consumed per second
  double sets_per_sec = 0;
  uint64_t bytes = 0;       ///< bytes behind one full scan
  uint64_t sets = 0;
  uint64_t checksum = 0;    ///< sum of all dispatched element ids
};

/// One warmup scan (page cache / parse buffers), then one timed scan
/// that folds every dispatched element into a checksum. Sources with a
/// batch scan path (the pipelined mmap decode) are consumed through
/// ScanBatches — the grain PassScheduler's threaded mode actually uses
/// — so the pipelined-vs-serial gate measures the production consumer,
/// not a per-set re-wrap of it.
bool MeasureScan(SetSource& source, uint64_t bytes, ScanStats* stats) {
  auto scan_once = [&](ScanStats* out) {
    uint64_t checksum = 0, sets = 0;
    bool ok;
    if (source.SupportsBatchScan()) {
      ok = source.ScanBatches([&](std::span<const SetView> views) {
        sets += views.size();
        for (const SetView& view : views) {
          for (uint32_t e : view.elems) checksum += e;
        }
      });
    } else {
      ok = source.Scan([&](const SetView& view) {
        ++sets;
        for (uint32_t e : view.elems) checksum += e;
      });
    }
    if (out != nullptr) {
      out->checksum = checksum;
      out->sets = sets;
    }
    return ok;
  };
  if (!scan_once(nullptr)) return false;
  WallTimer timer;
  if (!scan_once(stats)) return false;
  stats->seconds = timer.ElapsedSeconds();
  stats->bytes = bytes;
  stats->gb_per_sec = static_cast<double>(bytes) / stats->seconds / 1e9;
  stats->sets_per_sec = static_cast<double>(stats->sets) / stats->seconds;
  return true;
}

/// Best of `trials` timed scans (one shared warmup inside the first
/// MeasureScan) — the measurement the pipelined-vs-serial gate runs on,
/// so a single scheduler hiccup can't fail CI.
bool MeasureScanBestOf(SetSource& source, uint64_t bytes, int trials,
                       ScanStats* stats) {
  ScanStats best;
  for (int trial = 0; trial < trials; ++trial) {
    ScanStats current;
    if (!MeasureScan(source, bytes, &current)) return false;
    if (trial == 0 || current.sets_per_sec > best.sets_per_sec) {
      best = current;
    }
  }
  *stats = best;
  return true;
}

uint64_t FileBytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  return is ? static_cast<uint64_t>(is.tellg()) : 0;
}

JsonValue ScanStatsJson(const ScanStats& stats) {
  JsonValue v = JsonValue::Object();
  v.Set("seconds", stats.seconds);
  v.Set("gb_per_sec", stats.gb_per_sec);
  v.Set("sets_per_sec", stats.sets_per_sec);
  v.Set("bytes", stats.bytes);
  return v;
}

/// Streams a sparse instance (m sets, max size 16) to disk in both
/// formats, scans it through every SetSource, cross-checks, and fills
/// *scan_json. Returns false on any failure.
bool RunScanStage(uint64_t scan_m, uint64_t seed, JsonValue* scan_json) {
  const char* tmp = std::getenv("TMPDIR");
  const std::string dir = tmp != nullptr ? tmp : "/tmp";
  const std::string bin_path = dir + "/bench_hotpath_scan.bin";
  const std::string txt_path = dir + "/bench_hotpath_scan.txt";
  const uint32_t n = static_cast<uint32_t>(
      std::max<uint64_t>(1024, scan_m / 10));
  const uint32_t max_set_size = 16;

  // One generator pass feeds both files — never materialized.
  std::string error;
  std::optional<BinarySetWriter> writer =
      BinarySetWriter::Create(bin_path, n, &error);
  if (!writer.has_value()) {
    std::fprintf(stderr, "scan stage: %s\n", error.c_str());
    return false;
  }
  std::ofstream text(txt_path);
  text << "setcover " << n << " " << scan_m << "\n";
  std::vector<uint32_t> scratch;
  SetSink sink = [&](std::span<const uint32_t> elements) {
    if (!writer->AddSet(elements)) return false;
    scratch.assign(elements.begin(), elements.end());
    std::sort(scratch.begin(), scratch.end());
    scratch.erase(std::unique(scratch.begin(), scratch.end()),
                  scratch.end());
    text << scratch.size();
    for (uint32_t e : scratch) text << " " << e;
    text << "\n";
    return text.good();
  };
  WallTimer gen_timer;
  std::optional<StreamGenResult> gen = StreamSparse(
      n, static_cast<uint32_t>(scan_m), max_set_size, seed, sink, &error);
  if (!gen.has_value() || !writer->Finish(&error) ||
      !text.flush().good()) {
    std::fprintf(stderr, "scan stage: generation failed: %s\n",
                 error.c_str());
    return false;
  }
  const double gen_seconds = gen_timer.ElapsedSeconds();
  const uint64_t nnz = writer->nnz();
  const uint64_t bin_bytes = FileBytes(bin_path);
  const uint64_t txt_bytes = FileBytes(txt_path);

  ScanStats text_stats, mmap_stats, pipelined_stats, memory_stats;
  constexpr uint32_t kPipelineThreads = 4;
  {
    std::optional<FileSetSource> source =
        FileSetSource::Open(txt_path, &error);
    if (!source.has_value() ||
        !MeasureScan(*source, txt_bytes, &text_stats)) {
      std::fprintf(stderr, "scan stage: text scan failed: %s\n",
                   source.has_value() ? source->error().c_str()
                                      : error.c_str());
      return false;
    }
  }
  {
    std::optional<MmapSetSource> source =
        MmapSetSource::Open(bin_path, &error);
    // Serial and pipelined runs share the mapping (and its page-cache
    // warmup), best-of-3 each: the 2x gate compares equal work — the
    // checksum cross-check below proves it — under equal cache state.
    if (!source.has_value() ||
        !MeasureScanBestOf(*source, bin_bytes, 3, &mmap_stats)) {
      std::fprintf(stderr, "scan stage: mmap scan failed: %s\n",
                   source.has_value() ? source->error().c_str()
                                      : error.c_str());
      return false;
    }
    source->set_scan_threads(kPipelineThreads);
    if (!MeasureScanBestOf(*source, bin_bytes, 3, &pipelined_stats)) {
      std::fprintf(stderr, "scan stage: pipelined scan failed: %s\n",
                   source->error().c_str());
      return false;
    }
  }
  std::optional<SetSystem> system =
      LoadBinarySetSystemFromFile(bin_path, &error);
  if (!system.has_value()) {
    std::fprintf(stderr, "scan stage: load failed: %s\n", error.c_str());
    return false;
  }
  {
    InMemorySetSource source(&*system);
    if (!MeasureScan(source, static_cast<uint64_t>(nnz) * sizeof(uint32_t),
                     &memory_stats)) {
      std::fprintf(stderr, "scan stage: in-memory scan failed\n");
      return false;
    }
  }
  if (text_stats.checksum != mmap_stats.checksum ||
      text_stats.checksum != memory_stats.checksum ||
      text_stats.checksum != pipelined_stats.checksum ||
      text_stats.sets != mmap_stats.sets ||
      text_stats.sets != memory_stats.sets ||
      text_stats.sets != pipelined_stats.sets) {
    std::fprintf(
        stderr,
        "scan stage: sources disagree (checksums %llu/%llu/%llu/%llu)\n",
        static_cast<unsigned long long>(text_stats.checksum),
        static_cast<unsigned long long>(mmap_stats.checksum),
        static_cast<unsigned long long>(pipelined_stats.checksum),
        static_cast<unsigned long long>(memory_stats.checksum));
    return false;
  }

  benchutil::Banner(
      "Disk path — one scan over a streamed-to-disk sparse instance "
      "(n=" + std::to_string(n) + ", m=" + std::to_string(scan_m) +
      ", nnz=" + std::to_string(nnz) + ", gen " +
      Table::Fmt(gen_seconds, 1) + "s)");
  Table table({"source", "bytes", "GB/s", "sets/sec"});
  table.AddRow({"text (FileSetSource)", Table::Fmt(txt_bytes),
                Table::Fmt(text_stats.gb_per_sec, 3),
                Table::Fmt(static_cast<uint64_t>(text_stats.sets_per_sec))});
  table.AddRow({"binary (MmapSetSource)", Table::Fmt(bin_bytes),
                Table::Fmt(mmap_stats.gb_per_sec, 3),
                Table::Fmt(static_cast<uint64_t>(mmap_stats.sets_per_sec))});
  table.AddRow(
      {"binary pipelined (x" + std::to_string(kPipelineThreads) + ")",
       Table::Fmt(bin_bytes), Table::Fmt(pipelined_stats.gb_per_sec, 3),
       Table::Fmt(static_cast<uint64_t>(pipelined_stats.sets_per_sec))});
  table.AddRow({"in-memory CSR", Table::Fmt(memory_stats.bytes),
                Table::Fmt(memory_stats.gb_per_sec, 3),
                Table::Fmt(
                    static_cast<uint64_t>(memory_stats.sets_per_sec))});
  table.Print(std::cout);
  benchutil::Note(
      "mmap vs text: " +
      Table::Fmt(mmap_stats.sets_per_sec / text_stats.sets_per_sec, 2) +
      "x sets/sec; binary file is " +
      Table::Fmt(static_cast<double>(txt_bytes) /
                     static_cast<double>(bin_bytes),
                 2) +
      "x smaller than text");
  benchutil::Note(
      "pipelined vs serial mmap: " +
      Table::Fmt(pipelined_stats.sets_per_sec / mmap_stats.sets_per_sec,
                 2) +
      "x sets/sec at " + std::to_string(kPipelineThreads) +
      " decode threads (best of 3, equal checksums)");

  *scan_json = JsonValue::Object();
  scan_json->Set("m", scan_m);
  scan_json->Set("n", static_cast<uint64_t>(n));
  scan_json->Set("nnz", nnz);
  scan_json->Set("generation_seconds", gen_seconds);
  scan_json->Set("text", ScanStatsJson(text_stats));
  scan_json->Set("mmap", ScanStatsJson(mmap_stats));
  JsonValue pipelined = ScanStatsJson(pipelined_stats);
  pipelined.Set("scan_threads", static_cast<uint64_t>(kPipelineThreads));
  pipelined.Set("speedup_vs_mmap",
                pipelined_stats.sets_per_sec / mmap_stats.sets_per_sec);
  scan_json->Set("pipelined", std::move(pipelined));
  scan_json->Set("in_memory", ScanStatsJson(memory_stats));
  std::remove(bin_path.c_str());
  std::remove(txt_path.c_str());
  return true;
}

// --- Gain-maintenance A/B: MergeStage kRescan vs kTransposed over all
// m planted candidates. Same covers byte for byte; only the work
// differs — the reduction in gain evaluations per round is the
// output-sensitivity measurement. -------------------------------------

struct GainModeStats {
  double seconds = 0;
  uint64_t rounds = 0;
  uint64_t sets_touched = 0;
  uint64_t gain_updates = 0;
  double touched_per_round = 0;
  std::vector<uint32_t> cover;
};

GainModeStats RunGainMode(const SetSystem& system, GainMaintenance mode) {
  MergeStageOptions options;
  options.kernel = KernelPolicy::kWord;
  options.gain = mode;
  MergeStage stage(system.num_elements(), system.num_sets(), options);
  for (uint32_t s = 0; s < system.num_sets(); ++s) {
    stage.AddCandidate(s, system.GetSet(s));
  }
  WallTimer timer;
  MergeOutcome outcome = stage.Merge();
  GainModeStats stats;
  stats.seconds = timer.ElapsedSeconds();
  stats.rounds = stage.counters().rounds;
  stats.sets_touched = stage.counters().sets_touched;
  stats.gain_updates = stage.counters().gain_updates;
  stats.touched_per_round =
      stats.rounds > 0 ? static_cast<double>(stats.sets_touched) /
                             static_cast<double>(stats.rounds)
                       : 0.0;
  stats.cover = std::move(outcome.cover.set_ids);
  return stats;
}

JsonValue GainModeJson(const GainModeStats& stats) {
  JsonValue v = JsonValue::Object();
  v.Set("seconds", stats.seconds);
  v.Set("rounds", stats.rounds);
  v.Set("sets_touched", stats.sets_touched);
  v.Set("gain_updates", stats.gain_updates);
  v.Set("touched_per_round", stats.touched_per_round);
  v.Set("cover", static_cast<uint64_t>(stats.cover.size()));
  return v;
}

bool RunGainStage(const SetSystem& system, JsonValue* gain_json) {
  const GainModeStats rescan =
      RunGainMode(system, GainMaintenance::kRescan);
  const GainModeStats transposed =
      RunGainMode(system, GainMaintenance::kTransposed);
  if (rescan.cover != transposed.cover) {
    std::fprintf(stderr,
                 "gain stage: rescan and transposed covers differ "
                 "(%zu vs %zu picks)\n",
                 rescan.cover.size(), transposed.cover.size());
    return false;
  }
  const double reduction =
      transposed.touched_per_round > 0
          ? rescan.touched_per_round / transposed.touched_per_round
          : 0.0;

  benchutil::Banner(
      "Gain maintenance — transposed index vs per-round rescan "
      "(MergeStage over all m=" + std::to_string(system.num_sets()) +
      " candidates, identical covers of " +
      std::to_string(transposed.cover.size()) + " picks)");
  Table table({"mode", "seconds", "rounds", "gain evals", "evals/round",
               "gain updates"});
  table.AddRow({"rescan", Table::Fmt(rescan.seconds, 3),
                Table::Fmt(rescan.rounds),
                Table::Fmt(rescan.sets_touched),
                Table::Fmt(rescan.touched_per_round, 1),
                Table::Fmt(rescan.gain_updates)});
  table.AddRow({"transposed", Table::Fmt(transposed.seconds, 3),
                Table::Fmt(transposed.rounds),
                Table::Fmt(transposed.sets_touched),
                Table::Fmt(transposed.touched_per_round, 1),
                Table::Fmt(transposed.gain_updates)});
  table.Print(std::cout);
  benchutil::Note("evals/round reduction (rescan / transposed): " +
                  Table::Fmt(reduction, 1) + "x; wall speedup " +
                  Table::Fmt(rescan.seconds / transposed.seconds, 2) +
                  "x");

  *gain_json = JsonValue::Object();
  gain_json->Set("rescan", GainModeJson(rescan));
  gain_json->Set("transposed", GainModeJson(transposed));
  gain_json->Set("covers_match", true);
  gain_json->Set("touched_per_round_reduction", reduction);
  gain_json->Set("speedup", rescan.seconds / transposed.seconds);
  return true;
}

// --- Dense-representation A/B: sparse word kernels over spans vs the
// fused dense kernels over BitsetCSR rows, on the dense-eligible sets
// of a zipf instance drawn at max_set_size = n/2. ---------------------

struct DenseStats {
  double seconds = 0;
  double melems_per_sec = 0;  ///< span elements per second (shared unit)
  uint64_t checksum = 0;
};

JsonValue DenseStatsJson(const DenseStats& stats) {
  JsonValue v = JsonValue::Object();
  v.Set("seconds", stats.seconds);
  v.Set("melems_per_sec", stats.melems_per_sec);
  v.Set("checksum", stats.checksum);
  return v;
}

JsonValue DenseAbJson(const DenseStats& word, const DenseStats& dense) {
  JsonValue v = JsonValue::Object();
  v.Set("word", DenseStatsJson(word));
  v.Set("dense_auto", DenseStatsJson(dense));
  v.Set("speedup", dense.melems_per_sec / word.melems_per_sec);
  return v;
}

bool RunDenseStage(uint64_t rounds, uint64_t seed, JsonValue* dense_json) {
  const uint32_t n = 4096;
  const uint32_t m = 2000;
  const double alpha = 1.1;
  const uint32_t max_set_size = n / 2;
  Rng rng(seed);
  PlantedInstance zipf = GenerateZipf(n, m, alpha, max_set_size, rng);
  const SetSystem& system = zipf.system;

  // The stage runs only the dense-eligible sets, in both forms: the
  // sparse span (as stored in the CSR) and a BitsetCSR row.
  BitsetCSR csr(n);
  std::vector<uint32_t> dense_ids;
  uint64_t span_elems = 0;
  for (uint32_t s = 0; s < system.num_sets(); ++s) {
    if (!ShouldStoreDense(system.SetSize(s), n)) continue;
    csr.AddRow(system.GetSet(s));
    dense_ids.push_back(s);
    span_elems += system.SetSize(s);
  }
  if (dense_ids.empty()) {
    std::fprintf(stderr, "dense stage: no dense-eligible sets\n");
    return false;
  }
  const DynamicBitset live = MakeLiveMask(n);
  const double total_elems = static_cast<double>(span_elems) *
                             static_cast<double>(rounds);

  // Fused count: popcount(row & mask) vs the span's masked popcount.
  DenseStats count_word, count_dense;
  {
    WallTimer timer;
    for (uint64_t r = 0; r < rounds; ++r) {
      for (uint32_t id : dense_ids) {
        count_word.checksum +=
            CountUncovered(system.GetSet(id), live,
                           KernelPolicy::kWord);
      }
    }
    count_word.seconds = timer.ElapsedSeconds();
    count_word.melems_per_sec = total_elems / count_word.seconds / 1e6;
  }
  {
    WallTimer timer;
    for (uint64_t r = 0; r < rounds; ++r) {
      for (uint32_t row = 0; row < csr.rows(); ++row) {
        count_dense.checksum +=
            CountUncoveredDense(csr.Row(row), live, KernelPolicy::kAuto);
      }
    }
    count_dense.seconds = timer.ElapsedSeconds();
    count_dense.melems_per_sec = total_elems / count_dense.seconds / 1e6;
  }

  // Fused mark: mask &= ~row vs the span's clear loop, restored to the
  // pristine mask per round (covered bits are a subset, so OrInto is an
  // exact reset).
  DenseStats mark_word, mark_dense;
  {
    DynamicBitset working = live;
    WallTimer timer;
    for (uint64_t r = 0; r < rounds; ++r) {
      for (uint32_t id : dense_ids) {
        mark_word.checksum += MarkCovered(system.GetSet(id), working,
                                          KernelPolicy::kWord);
      }
      live.OrInto(working);
    }
    mark_word.seconds = timer.ElapsedSeconds();
    mark_word.melems_per_sec = total_elems / mark_word.seconds / 1e6;
  }
  {
    DynamicBitset working = live;
    WallTimer timer;
    for (uint64_t r = 0; r < rounds; ++r) {
      for (uint32_t row = 0; row < csr.rows(); ++row) {
        mark_dense.checksum +=
            MarkCoveredDense(csr.Row(row), working, KernelPolicy::kAuto);
      }
      live.OrInto(working);
    }
    mark_dense.seconds = timer.ElapsedSeconds();
    mark_dense.melems_per_sec = total_elems / mark_dense.seconds / 1e6;
  }

  if (count_word.checksum != count_dense.checksum ||
      mark_word.checksum != mark_dense.checksum) {
    std::fprintf(stderr,
                 "dense stage: checksum mismatch (count %llu/%llu, mark "
                 "%llu/%llu)\n",
                 static_cast<unsigned long long>(count_word.checksum),
                 static_cast<unsigned long long>(count_dense.checksum),
                 static_cast<unsigned long long>(mark_word.checksum),
                 static_cast<unsigned long long>(mark_dense.checksum));
    return false;
  }

  benchutil::Banner(
      "Dense representation — fused bitset-row kernels (auto ISA: " +
      std::string(KernelIsaName(DetectKernelIsa())) +
      ") vs sparse word kernels on the zipf dense sets (n=" +
      std::to_string(n) + ", " + std::to_string(dense_ids.size()) +
      "/" + std::to_string(m) + " sets dense-eligible)");
  Table table({"kernel", "word Melem/s", "dense-auto Melem/s", "speedup"});
  table.AddRow({"fused count", Table::Fmt(count_word.melems_per_sec, 1),
                Table::Fmt(count_dense.melems_per_sec, 1),
                Table::Fmt(count_dense.melems_per_sec /
                               count_word.melems_per_sec,
                           2) +
                    "x"});
  table.AddRow({"fused mark", Table::Fmt(mark_word.melems_per_sec, 1),
                Table::Fmt(mark_dense.melems_per_sec, 1),
                Table::Fmt(mark_dense.melems_per_sec /
                               mark_word.melems_per_sec,
                           2) +
                    "x"});
  table.Print(std::cout);

  *dense_json = JsonValue::Object();
  dense_json->Set("n", static_cast<uint64_t>(n));
  dense_json->Set("m", static_cast<uint64_t>(m));
  dense_json->Set("alpha", alpha);
  dense_json->Set("max_set_size", static_cast<uint64_t>(max_set_size));
  dense_json->Set("dense_sets", static_cast<uint64_t>(dense_ids.size()));
  dense_json->Set("words_per_row",
                  static_cast<uint64_t>(csr.words_per_row()));
  dense_json->Set("rounds", rounds);
  dense_json->Set("count", DenseAbJson(count_word, count_dense));
  dense_json->Set("mark", DenseAbJson(mark_word, mark_dense));
  dense_json->Set("checksums_equal", true);
  return true;
}

/// VmHWM from /proc/self/status, in KiB; 0 where unavailable.
uint64_t PeakRssKb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return static_cast<uint64_t>(std::atoll(line.c_str() + 6));
    }
  }
  return 0;
}

JsonValue DispatchJson(const DispatchStats& stats) {
  JsonValue v = JsonValue::Object();
  v.Set("seconds", stats.seconds);
  v.Set("sets_per_sec", stats.sets_per_sec);
  v.Set("ns_per_element", stats.ns_per_element);
  v.Set("projections_stored", stats.stored);
  return v;
}

int Run(const std::string& json_path, uint32_t consumers, uint64_t rounds,
        uint32_t threads, uint64_t scan_m) {
  benchutil::Banner(
      "Hot path — SetView/arena dispatch vs the seed vector path "
      "(fig11 planted n=2000, m=4000, " +
      std::to_string(consumers) + " consumers x " +
      std::to_string(rounds) + " rounds, threads=" +
      std::to_string(threads) + ")");

  WorkloadParams params;
  params.n = kN;
  params.m = kM;
  params.k = kOpt;
  params.seed = kSeed;
  std::string error;
  std::optional<Instance> instance = MakeWorkload("planted", params, &error);
  if (!instance.has_value()) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  const DynamicBitset live = MakeLiveMask(kN);
  // Threshold sized like a mid-run Size Test: most projections stay
  // light and get stored.
  const size_t threshold = kN / (2 * kOpt);

  // Untimed warmup so both paths measure steady-state capacity, not
  // first-touch page faults.
  RunDispatch<ViewPathConsumer>(*instance, live, threshold, consumers,
                                /*rounds=*/2, threads);

  DispatchStats vector_stats = RunDispatch<VectorPathConsumer>(
      *instance, live, threshold, consumers, rounds, threads);
  DispatchStats view_stats = RunDispatch<ViewPathConsumer>(
      *instance, live, threshold, consumers, rounds, threads);
  if (vector_stats.checksum != view_stats.checksum ||
      vector_stats.stored != view_stats.stored) {
    std::fprintf(stderr,
                 "dispatch checksum mismatch: the two paths did not do "
                 "identical work\n");
    return 1;
  }
  const double speedup = view_stats.sets_per_sec / vector_stats.sets_per_sec;

  Table table({"path", "sets/sec", "ns/element", "stored projections"});
  table.AddRow({"vector (seed)",
                Table::Fmt(static_cast<uint64_t>(vector_stats.sets_per_sec)),
                Table::Fmt(vector_stats.ns_per_element, 2),
                Table::Fmt(vector_stats.stored)});
  table.AddRow({"view (arena)",
                Table::Fmt(static_cast<uint64_t>(view_stats.sets_per_sec)),
                Table::Fmt(view_stats.ns_per_element, 2),
                Table::Fmt(view_stats.stored)});
  table.Print(std::cout);
  benchutil::Note("speedup (view vs vector): " + Table::Fmt(speedup, 2) +
                  "x");

  // --- Kernel A/B: scalar reference vs word-parallel twins. ---
  const SetSystem* system = instance->materialized();
  if (system == nullptr) {
    std::fprintf(stderr, "planted workload unexpectedly not in memory\n");
    return 1;
  }
  LiveMask kernel_live(MakeLiveMask(kN));
  if (!VerifyKernelTwins(*system, kernel_live)) {
    std::fprintf(stderr,
                 "kernel twin mismatch: scalar and word filters disagree\n");
    return 1;
  }
  // The kernel loops are far cheaper than consumer dispatch, so give
  // them enough rounds to time stably.
  const uint64_t kernel_rounds = rounds * 10;
  // Untimed warmup, then scalar/word under identical conditions.
  RunFilterStage(*system, kernel_live, 2, KernelPolicy::kWord);
  const KernelStats filter_scalar =
      RunFilterStage(*system, kernel_live, kernel_rounds,
                     KernelPolicy::kScalar);
  const KernelStats filter_word = RunFilterStage(
      *system, kernel_live, kernel_rounds, KernelPolicy::kWord);
  const KernelStats count_scalar =
      RunCountStage(*system, kernel_live, kernel_rounds,
                    KernelPolicy::kScalar);
  const KernelStats count_word = RunCountStage(
      *system, kernel_live, kernel_rounds, KernelPolicy::kWord);
  const KernelStats mark_scalar = RunMarkStage(
      *system, kernel_live, kernel_rounds, KernelPolicy::kScalar);
  const KernelStats mark_word = RunMarkStage(
      *system, kernel_live, kernel_rounds, KernelPolicy::kWord);
  if (filter_scalar.kept != filter_word.kept ||
      count_scalar.kept != count_word.kept ||
      mark_scalar.kept != mark_word.kept) {
    std::fprintf(stderr,
                 "kernel checksum mismatch: the twins did not do identical "
                 "work\n");
    return 1;
  }
  Table kernel_table(
      {"kernel", "scalar Melem/s", "word Melem/s", "speedup"});
  kernel_table.AddRow(
      {"masked filter", Table::Fmt(filter_scalar.melems_per_sec, 1),
       Table::Fmt(filter_word.melems_per_sec, 1),
       Table::Fmt(filter_word.melems_per_sec / filter_scalar.melems_per_sec,
                  2) +
           "x"});
  kernel_table.AddRow(
      {"masked popcount", Table::Fmt(count_scalar.melems_per_sec, 1),
       Table::Fmt(count_word.melems_per_sec, 1),
       Table::Fmt(count_word.melems_per_sec / count_scalar.melems_per_sec,
                  2) +
           "x"});
  kernel_table.AddRow(
      {"masked mark", Table::Fmt(mark_scalar.melems_per_sec, 1),
       Table::Fmt(mark_word.melems_per_sec, 1),
       Table::Fmt(mark_word.melems_per_sec / mark_scalar.melems_per_sec,
                  2) +
           "x"});
  kernel_table.Print(std::cout);

  // --- Disk path: text vs binary-mmap vs in-memory scans. ---
  JsonValue scan_json;
  if (!RunScanStage(scan_m, kSeed, &scan_json)) return 1;

  // --- Gain maintenance: transposed index vs per-round rescan. ---
  JsonValue gain_json;
  if (!RunGainStage(*system, &gain_json)) return 1;

  // --- Dense representation: fused bitset-row kernels vs word spans. ---
  JsonValue dense_json;
  if (!RunDenseStage(rounds * 10, kSeed, &dense_json)) return 1;

  // One timed full solver run for correctness context in the trajectory.
  RunOptions options;
  options.sample_constant = 0.05;
  WallTimer solver_timer;
  RunResult iter = RunSolver("iter", *instance, options);
  const double solver_ms = solver_timer.ElapsedMillis();
  if (!iter.ok() || !iter.success) {
    std::fprintf(stderr, "iter run failed: %s\n", iter.error.c_str());
    return 1;
  }
  benchutil::Note(
      "iter: cover=" + std::to_string(iter.cover.size()) +
      " passes=" + std::to_string(iter.passes) +
      " phys_scans=" + std::to_string(iter.physical_scans) +
      " space_words=" + std::to_string(iter.space_words) +
      " projection_words_peak=" + std::to_string(iter.projection_words_peak) +
      " wall_ms=" + Table::Fmt(solver_ms, 1));
  const uint64_t rss_kb = PeakRssKb();
  benchutil::Note("peak RSS: " + std::to_string(rss_kb) + " KiB");

  if (!json_path.empty()) {
    JsonValue doc = JsonValue::Object();
    doc.Set("schema", "streamcover.bench_hotpath.v5");
    // What the auto dense kernels dispatch to on this host — keeps the
    // trajectory's absolute numbers interpretable across runners.
    JsonValue cpu = JsonValue::Object();
    cpu.Set("isa", KernelIsaName(DetectKernelIsa()));
    bool has_avx2 = false, has_avx512 = false;
    for (KernelIsa isa : SupportedKernelIsas()) {
      if (isa == KernelIsa::kAvx2) has_avx2 = true;
      if (isa == KernelIsa::kAvx512) has_avx512 = true;
    }
    cpu.Set("avx2", has_avx2);
    cpu.Set("avx512", has_avx512);
    // Interprets the pipelined-scan numbers: on a 1-hardware-thread
    // host the decode pool cannot overlap and the speedup reads < 1.
    cpu.Set("hardware_threads",
            static_cast<uint64_t>(std::thread::hardware_concurrency()));
    doc.Set("cpu", std::move(cpu));
    JsonValue p = JsonValue::Object();
    p.Set("workload", "planted");
    p.Set("n", static_cast<uint64_t>(kN));
    p.Set("m", static_cast<uint64_t>(kM));
    p.Set("k", static_cast<uint64_t>(kOpt));
    p.Set("seed", kSeed);
    p.Set("consumers", static_cast<uint64_t>(consumers));
    p.Set("rounds", rounds);
    p.Set("threads", static_cast<uint64_t>(threads));
    p.Set("scan_m", scan_m);
    doc.Set("params", std::move(p));
    JsonValue dispatch = JsonValue::Object();
    dispatch.Set("vector_path", DispatchJson(vector_stats));
    dispatch.Set("view_path", DispatchJson(view_stats));
    dispatch.Set("speedup", speedup);
    doc.Set("dispatch", std::move(dispatch));
    JsonValue kernels = JsonValue::Object();
    kernels.Set("rounds", kernel_rounds);
    kernels.Set("filter", KernelAbJson(filter_scalar, filter_word));
    kernels.Set("count", KernelAbJson(count_scalar, count_word));
    kernels.Set("mark", KernelAbJson(mark_scalar, mark_word));
    doc.Set("kernels", std::move(kernels));
    doc.Set("scan", std::move(scan_json));
    doc.Set("gain", std::move(gain_json));
    doc.Set("dense", std::move(dense_json));
    JsonValue solver = JsonValue::Object();
    solver.Set("solver", "iter");
    solver.Set("success", iter.success);
    solver.Set("cover", static_cast<uint64_t>(iter.cover.size()));
    solver.Set("passes", iter.passes);
    solver.Set("sequential_scans", iter.sequential_scans);
    solver.Set("physical_scans", iter.physical_scans);
    solver.Set("space_words", iter.space_words);
    solver.Set("projection_words_peak", iter.projection_words_peak);
    solver.Set("wall_ms", solver_ms);
    doc.Set("solver", std::move(solver));
    doc.Set("peak_rss_kb", rss_kb);
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << doc.Dump(2) << '\n';
    benchutil::Note("wrote " + json_path);
  }
  return 0;
}

}  // namespace
}  // namespace streamcover

namespace {

/// In-process check of the strict flag parser: every malformed or
/// non-positive spelling that atoi/atoll used to coerce must now be
/// rejected. Run by CI before the timed stages.
int SelfTest() {
  uint64_t v = 0;
  for (const char* bad : {"0", "-3", "abc", "20q0", ""}) {
    if (streamcover::benchutil::ParsePositiveInt("--scan-m", bad, &v)) {
      std::fprintf(stderr, "selftest: accepted bad value '%s'\n", bad);
      return 1;
    }
  }
  if (!streamcover::benchutil::ParsePositiveInt("--scan-m", "123", &v) ||
      v != 123) {
    std::fprintf(stderr, "selftest: rejected valid value '123'\n");
    return 1;
  }
  std::printf("bench_hotpath selftest OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Stable default path so the per-PR trajectory accumulates in one
  // place (CI uploads it as an artifact).
  std::string json_path = "BENCH_hotpath.json";
  uint64_t consumers = 12;
  uint64_t rounds = 12;
  uint64_t threads = 1;
  // Sets in the scan-stage instance; 10^7 is the paper-scale
  // acceptance run, the default keeps CI fast.
  uint64_t scan_m = 200000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--selftest") return SelfTest();
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "usage: bench_hotpath [--json FILE] [--consumers N] "
                     "[--rounds N] [--threads N] [--scan-m N] "
                     "[--selftest]  (missing value for %s)\n",
                     flag);
        std::exit(1);
      }
      return argv[++i];
    };
    // Every count flag is strictly parsed and must be positive: the
    // old atoi/atoll path read `--scan-m 0` (and any malformed value)
    // as zero and fed a zero set count into the scan stage.
    if (arg == "--json") {
      json_path = next("--json");
    } else if (arg == "--consumers") {
      if (!streamcover::benchutil::ParsePositiveInt(
              "--consumers", next("--consumers"), &consumers)) {
        return 1;
      }
    } else if (arg == "--rounds") {
      if (!streamcover::benchutil::ParsePositiveInt(
              "--rounds", next("--rounds"), &rounds)) {
        return 1;
      }
    } else if (arg == "--threads") {
      if (!streamcover::benchutil::ParsePositiveInt(
              "--threads", next("--threads"), &threads)) {
        return 1;
      }
    } else if (arg == "--scan-m") {
      if (!streamcover::benchutil::ParsePositiveInt(
              "--scan-m", next("--scan-m"), &scan_m)) {
        return 1;
      }
    } else {
      std::fprintf(stderr,
                   "usage: bench_hotpath [--json FILE] [--consumers N] "
                   "[--rounds N] [--threads N] [--scan-m N] "
                   "[--selftest]\n");
      return 1;
    }
  }
  return streamcover::Run(json_path, static_cast<uint32_t>(consumers),
                          rounds, static_cast<uint32_t>(threads), scan_m);
}
