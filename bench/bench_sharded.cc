// Sharded-solve bench: the RandGreeDI-style partition/merge engine
// (src/shard/) on a disk-resident planted instance, across a ladder of
// shard counts.
//
// For each S in --shards the instance is solved by `sharded_greedi`
// with S shards and S scheduler threads, all shards sharing ONE
// physical scan. The bench reports two speedups against the S=1 level:
//
//   * speedup_wall  = wall(S=1) / wall(S) — honest wall clock, which on
//     a single-core host stays near 1 by construction;
//   * speedup_work  = work_total(S=1) / work_max(S) — the critical-path
//     scaling a parallel host realizes: total bucket-kernel work at S=1
//     over the heaviest single shard's work at S. Hash partitioning
//     balances the substreams, so this is the near-linear curve the
//     paper's distributed model predicts, measurable on any host.
//
// Sanity pinned here (and gated in CI): the S=1 cover is byte-identical
// to the unsharded `greedi` reference, every level covers, and no
// level's cover exceeds 3x the reference.
//
// The acceptance-scale run behind the committed BENCH_sharded.json:
//   bench_sharded --n 100000 --m 10000000
// The defaults keep CI fast.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/instance.h"
#include "core/solver_registry.h"
#include "setsystem/binary_io.h"
#include "setsystem/generators.h"
#include "setsystem/stream_generators.h"
#include "util/json.h"
#include "util/table.h"
#include "util/timer.h"

namespace streamcover {
namespace {

uint64_t FileBytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  return is ? static_cast<uint64_t>(is.tellg()) : 0;
}

/// VmHWM from /proc/self/status, in KiB; 0 where unavailable.
uint64_t PeakRssKb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return static_cast<uint64_t>(std::atoll(line.c_str() + 6));
    }
  }
  return 0;
}

struct GenOutcome {
  uint64_t nnz = 0;
  double seconds = 0;
};

/// Streams a planted instance straight to the binary on-disk format —
/// never materialized, exactly the PR-6 generate-disk path.
bool GenerateToDisk(uint32_t n, uint32_t m, uint32_t k, uint32_t noise_max,
                    uint64_t seed, const std::string& path,
                    GenOutcome* out) {
  std::string error;
  std::optional<BinarySetWriter> writer =
      BinarySetWriter::Create(path, n, &error);
  if (!writer.has_value()) {
    std::fprintf(stderr, "bench_sharded: %s\n", error.c_str());
    return false;
  }
  SetSink sink = [&](std::span<const uint32_t> elements) {
    return writer->AddSet(elements);
  };
  PlantedOptions options;
  options.num_elements = n;
  options.num_sets = m;
  options.cover_size = k;
  options.noise_min_size = 1;
  options.noise_max_size = noise_max;
  WallTimer timer;
  std::optional<StreamGenResult> gen =
      StreamPlanted(options, seed, sink, &error);
  if (!gen.has_value() || !writer->Finish(&error)) {
    std::fprintf(stderr, "bench_sharded: generation failed: %s\n",
                 error.c_str());
    return false;
  }
  out->nnz = writer->nnz();
  out->seconds = timer.ElapsedSeconds();
  return true;
}

struct LevelStats {
  uint32_t shards = 0;
  double wall_ms = 0;
  uint64_t cover = 0;
  bool success = false;
  uint64_t passes = 0;
  uint64_t sequential_scans = 0;
  uint64_t physical_scans = 0;
  uint64_t space_words = 0;
  uint64_t candidates = 0;   ///< per-shard candidates, summed
  uint64_t work_total = 0;   ///< bucket-kernel elements, all shards
  uint64_t work_max = 0;     ///< heaviest single shard
  MergeStat merge;
  std::vector<uint32_t> cover_ids;  // for the S=1 parity pin
};

JsonValue LevelJson(const LevelStats& level, const LevelStats& base) {
  JsonValue v = JsonValue::Object();
  v.Set("shards", static_cast<uint64_t>(level.shards));
  v.Set("threads", static_cast<uint64_t>(level.shards));
  v.Set("wall_ms", level.wall_ms);
  v.Set("cover", level.cover);
  v.Set("success", level.success);
  v.Set("passes", level.passes);
  v.Set("sequential_scans", level.sequential_scans);
  v.Set("physical_scans", level.physical_scans);
  v.Set("space_words", level.space_words);
  v.Set("candidates", level.candidates);
  v.Set("work_total", level.work_total);
  v.Set("work_max", level.work_max);
  JsonValue merge = JsonValue::Object();
  merge.Set("candidates", level.merge.candidates);
  merge.Set("duplicates_dropped", level.merge.duplicates_dropped);
  merge.Set("picked", level.merge.picked);
  merge.Set("duration_ms", level.merge.duration_ms);
  v.Set("merge", std::move(merge));
  v.Set("speedup_wall", level.wall_ms > 0 ? base.wall_ms / level.wall_ms : 0);
  v.Set("speedup_work",
        level.work_max > 0
            ? static_cast<double>(base.work_total) /
                  static_cast<double>(level.work_max)
            : 0);
  return v;
}

int Run(const std::string& json_path, uint32_t n, uint32_t m, uint32_t k,
        uint32_t noise_max, uint64_t seed,
        const std::vector<uint32_t>& shard_levels, uint32_t scan_threads,
        std::string file, bool keep_file) {
  benchutil::Banner("Sharded solve — hash partition + bucket engines + "
                    "greedy merge (planted n=" + std::to_string(n) +
                    ", m=" + std::to_string(m) + ", k=" + std::to_string(k) +
                    ")");
  if (shard_levels.empty() || shard_levels.front() != 1) {
    std::fprintf(stderr,
                 "bench_sharded: --shards must start with 1 (the speedup "
                 "baseline)\n");
    return 1;
  }

  // --- Stage the repository on disk (or reuse --file). ---
  GenOutcome gen;
  const bool generated = file.empty();
  if (generated) {
    const char* tmp = std::getenv("TMPDIR");
    file = std::string(tmp != nullptr ? tmp : "/tmp") +
           "/bench_sharded_instance.bin";
    if (!GenerateToDisk(n, m, k, noise_max, seed, file, &gen)) return 1;
    benchutil::Note("generated " + file + ": nnz=" + std::to_string(gen.nnz) +
                    " in " + Table::Fmt(gen.seconds, 1) + "s");
  }
  const uint64_t file_bytes = FileBytes(file);

  std::string error;
  std::optional<Instance> instance = Instance::FromFile(file, &error);
  if (!instance.has_value()) {
    std::fprintf(stderr, "bench_sharded: %s\n", error.c_str());
    return 1;
  }
  benchutil::Note("repository: " + std::to_string(file_bytes) + " bytes, n=" +
                  std::to_string(instance->num_elements()) + ", m=" +
                  std::to_string(instance->num_sets()));

  RunOptions options;
  options.seed = seed;
  // Decode workers for the pipelined mmap scan feed every level the
  // same way — the axis measures shard scaling on top of whatever scan
  // throughput the host gives, not instead of it.
  options.scan_threads = scan_threads;
  if (scan_threads > 1) {
    benchutil::Note("pipelined scan: " + std::to_string(scan_threads) +
                    " decode workers");
  }

  // --- Unsharded reference: the `greedi` family with one engine. ---
  RunResult reference = RunSolver("greedi", *instance, options);
  if (!reference.ok() || !reference.success) {
    std::fprintf(stderr, "bench_sharded: greedi reference failed: %s\n",
                 reference.error.c_str());
    return 1;
  }
  benchutil::Note("greedi reference: cover=" +
                  std::to_string(reference.cover.size()) + " wall_ms=" +
                  Table::Fmt(reference.duration_ms, 1));

  // --- Shard ladder, S scheduler threads per level S. ---
  std::vector<LevelStats> levels;
  for (uint32_t shards : shard_levels) {
    options.shards = shards;
    options.threads = shards;
    RunResult result = RunSolver("sharded_greedi", *instance, options);
    if (!result.ok()) {
      std::fprintf(stderr, "bench_sharded: shards=%u failed: %s\n", shards,
                   result.error.c_str());
      return 1;
    }
    if (!result.success) {
      std::fprintf(stderr, "bench_sharded: shards=%u did not cover\n",
                   shards);
      return 1;
    }
    LevelStats level;
    level.shards = shards;
    level.wall_ms = result.duration_ms;
    level.cover = result.cover.size();
    level.success = result.success;
    level.passes = result.passes;
    level.sequential_scans = result.sequential_scans;
    level.physical_scans = result.physical_scans;
    level.space_words = result.space_words;
    for (const ShardStat& s : result.shard_stats) {
      level.candidates += s.candidates;
      level.work_total += s.work_items;
      level.work_max = std::max(level.work_max, s.work_items);
    }
    level.merge = result.merge_stats;
    level.cover_ids = result.cover.set_ids;
    levels.push_back(std::move(level));
  }

  // --- Sanity pins: S=1 parity with greedi, bounded cover ratio. ---
  if (levels.front().cover_ids != reference.cover.set_ids) {
    std::fprintf(stderr,
                 "bench_sharded: shards=1 cover differs from the greedi "
                 "reference — shard invariance broken\n");
    return 1;
  }
  for (const LevelStats& level : levels) {
    if (level.cover > 3 * reference.cover.size()) {
      std::fprintf(stderr,
                   "bench_sharded: shards=%u cover %llu exceeds 3x the "
                   "reference %zu\n",
                   level.shards,
                   static_cast<unsigned long long>(level.cover),
                   reference.cover.size());
      return 1;
    }
  }

  const LevelStats& base = levels.front();
  Table table({"shards", "wall_ms", "cover", "candidates", "work_total",
               "work_max", "speedup_wall", "speedup_work"});
  for (const LevelStats& level : levels) {
    table.AddRow(
        {Table::Fmt(level.shards), Table::Fmt(level.wall_ms, 1),
         Table::Fmt(level.cover), Table::Fmt(level.candidates),
         Table::Fmt(level.work_total), Table::Fmt(level.work_max),
         Table::Fmt(level.wall_ms > 0 ? base.wall_ms / level.wall_ms : 0, 2) +
             "x",
         Table::Fmt(level.work_max > 0
                        ? static_cast<double>(base.work_total) /
                              static_cast<double>(level.work_max)
                        : 0,
                    2) +
             "x"});
  }
  table.Print(std::cout);
  benchutil::Note("shards=1 cover is byte-identical to greedi (" +
                  std::to_string(reference.cover.size()) + " sets)");
  const uint64_t rss_kb = PeakRssKb();
  benchutil::Note("peak RSS: " + std::to_string(rss_kb) + " KiB");

  if (!json_path.empty()) {
    JsonValue doc = JsonValue::Object();
    doc.Set("schema", "streamcover.bench_sharded.v1");
    JsonValue p = JsonValue::Object();
    p.Set("workload", "planted");
    p.Set("n", static_cast<uint64_t>(n));
    p.Set("m", static_cast<uint64_t>(m));
    p.Set("k", static_cast<uint64_t>(k));
    p.Set("noise_max", static_cast<uint64_t>(noise_max));
    p.Set("seed", seed);
    JsonValue shard_list = JsonValue::Array();
    for (uint32_t shards : shard_levels) {
      shard_list.Append(static_cast<uint64_t>(shards));
    }
    p.Set("shards", std::move(shard_list));
    p.Set("scan_threads", static_cast<uint64_t>(scan_threads));
    doc.Set("params", std::move(p));
    JsonValue host = JsonValue::Object();
    host.Set("hardware_concurrency",
             static_cast<uint64_t>(std::thread::hardware_concurrency()));
    doc.Set("host", std::move(host));
    JsonValue repo = JsonValue::Object();
    repo.Set("bytes", file_bytes);
    repo.Set("generated", generated);
    if (generated) {
      repo.Set("nnz", gen.nnz);
      repo.Set("generation_seconds", gen.seconds);
    }
    doc.Set("repository", std::move(repo));
    JsonValue ref = JsonValue::Object();
    ref.Set("solver", "greedi");
    ref.Set("cover", static_cast<uint64_t>(reference.cover.size()));
    ref.Set("success", reference.success);
    ref.Set("wall_ms", reference.duration_ms);
    ref.Set("space_words", reference.space_words);
    doc.Set("reference", std::move(ref));
    JsonValue level_json = JsonValue::Array();
    for (const LevelStats& level : levels) {
      level_json.Append(LevelJson(level, base));
    }
    doc.Set("levels", std::move(level_json));
    doc.Set("shard1_matches_reference", true);
    doc.Set("peak_rss_kb", rss_kb);
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << doc.Dump(2) << '\n';
    benchutil::Note("wrote " + json_path);
  }

  if (generated && !keep_file) std::remove(file.c_str());
  return 0;
}

}  // namespace
}  // namespace streamcover

int main(int argc, char** argv) {
  // Stable default path so the committed trajectory accumulates in one
  // place (CI uploads the release run as an artifact).
  std::string json_path = "BENCH_sharded.json";
  uint32_t n = 20000;
  uint32_t m = 200000;
  uint32_t k = 50;
  uint32_t noise_max = 64;
  uint64_t seed = 1;
  std::vector<uint32_t> shard_levels = {1, 2, 4, 8};
  uint32_t scan_threads = 1;
  std::string file;
  bool keep_file = false;
  const char* usage =
      "usage: bench_sharded [--json FILE] [--n N] [--m N] [--k N] "
      "[--noise-max N] [--seed N] [--shards L1,L2,...] "
      "[--scan-threads N] [--file BIN] [--keep]\n";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s  (missing value for %s)\n", usage, flag);
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--json") {
      json_path = next("--json");
    } else if (arg == "--n") {
      n = static_cast<uint32_t>(std::atoll(next("--n")));
    } else if (arg == "--m") {
      m = static_cast<uint32_t>(std::atoll(next("--m")));
    } else if (arg == "--k") {
      k = static_cast<uint32_t>(std::atoi(next("--k")));
    } else if (arg == "--noise-max") {
      noise_max = static_cast<uint32_t>(std::atoi(next("--noise-max")));
    } else if (arg == "--seed") {
      seed = static_cast<uint64_t>(std::atoll(next("--seed")));
    } else if (arg == "--shards") {
      shard_levels.clear();
      std::string list = next("--shards");
      size_t pos = 0;
      while (pos <= list.size()) {
        const size_t comma = list.find(',', pos);
        const std::string tok =
            list.substr(pos, comma == std::string::npos ? std::string::npos
                                                        : comma - pos);
        const long value = std::atol(tok.c_str());
        if (value < 1) {
          std::fprintf(stderr, "bench_sharded: bad --shards entry '%s'\n",
                       tok.c_str());
          return 1;
        }
        shard_levels.push_back(static_cast<uint32_t>(value));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (arg == "--scan-threads") {
      const long value = std::atol(next("--scan-threads"));
      if (value < 1) {
        std::fprintf(stderr, "bench_sharded: --scan-threads must be >= 1\n");
        return 1;
      }
      scan_threads = static_cast<uint32_t>(value);
    } else if (arg == "--file") {
      file = next("--file");
    } else if (arg == "--keep") {
      keep_file = true;
    } else {
      std::fprintf(stderr, "%s", usage);
      return 1;
    }
  }
  return streamcover::Run(json_path, n, m, k, noise_max, seed, shard_levels,
                          scan_threads, file, keep_file);
}
