// Lemma 2.5/2.6 ablation — how large does the sample really need to be?
// The analysis prescribes |S| = c * rho * k * n^delta * log m * log n
// and proves that one iteration then shrinks the residual by ~n^delta.
//
// Planted-block instances hide the effect (any cover of a sample
// generalizes perfectly), so this sweep uses sparse random instances
// (sets of <= 128 uniform elements): a cover computed on a small sample
// covers little outside it, making the shrink-vs-sample-size trade
// visible. We sweep the constant c and report the realized shrink per
// iteration, success rate, cover quality, and space.

#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/iter_set_cover.h"
#include "setsystem/generators.h"
#include "util/stats.h"
#include "util/table.h"

namespace streamcover {
namespace {

void Run() {
  const uint32_t n = 8192;
  const uint32_t set_size = 128;
  const uint32_t blocks = n / set_size;  // hidden partition => OPT ~ 64
  const double delta = 1.0 / 3.0;
  benchutil::Banner(
      "Lemma 2.5/2.6 ablation — sample-size constant c sweep "
      "(sparse random: n=8192, m=4n, |set|<=128, OPT~64, delta=1/3, "
      "k-guess fixed at 64, 3 seeds)");
  Table table({"c", "sample (iter 1)", "mean shrink / iter",
               "target n^delta", "success", "cover/OPT", "space words"});
  for (double c : {0.0002, 0.001, 0.005, 0.02, 0.1}) {
    RunningStats sample, shrink, ratio, space;
    int successes = 0, runs = 0;
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      Rng rng(seed);
      PlantedInstance inst = GenerateSparse(n, 4 * n, set_size, rng);

      SetStream stream(&inst.system);
      IterSetCoverOptions options;
      options.delta = delta;
      options.sample_constant = c;
      options.seed = seed;
      StreamingResult r = IterSetCoverSingleGuess(stream, blocks, options);
      ++runs;
      if (r.success) ++successes;
      if (!r.diagnostics.empty()) {
        sample.Add(static_cast<double>(r.diagnostics[0].sample_size));
      }
      for (const auto& diag : r.diagnostics) {
        if (diag.uncovered_after > 0) {
          shrink.Add(static_cast<double>(diag.uncovered_before) /
                     static_cast<double>(diag.uncovered_after));
        }
      }
      if (r.success) {
        ratio.Add(static_cast<double>(r.cover.size()) /
                  static_cast<double>(inst.planted_cover.size()));
      }
      space.Add(static_cast<double>(r.space_words_max_guess));
    }
    table.AddRow(
        {Table::Fmt(c, 4),
         Table::Fmt(static_cast<uint64_t>(sample.mean())),
         shrink.count() > 0 ? Table::Fmt(shrink.mean(), 1) : "complete",
         Table::Fmt(std::pow(static_cast<double>(n), delta), 1),
         Table::Fmt(successes) + "/" + Table::Fmt(runs),
         ratio.count() > 0 ? Table::Fmt(ratio.mean(), 2) : "-",
         Table::Fmt(static_cast<uint64_t>(space.mean()))});
  }
  table.Print(std::cout);
  benchutil::Note(
      "\nreading: below the Lemma 2.6 threshold the per-iteration shrink "
      "falls short of\nn^delta and runs start failing inside the 1/delta "
      "iteration budget; above it,\nextra sample (and space) buys "
      "nothing. The paper's constant is conservative —\nthe knee sits "
      "well below c = 1.");
}

}  // namespace
}  // namespace streamcover

int main() {
  streamcover::Run();
  return 0;
}
