// Extension bench — epsilon-Partial Set Cover. Both [ER14] and [CW16]
// state their bounds for the partial variant (cover a (1-eps) fraction
// of U); the paper's algorithm extends to it by relaxing the residual
// target. This bench quantifies what the relaxation buys across
// algorithms: cover-size savings as the coverage requirement drops, on
// workloads with a heavy tail of hard-to-cover elements (Zipf), where
// partial covering pays the most.

#include <iostream>
#include <string>
#include <vector>

#include "baselines/threshold_greedy.h"
#include "bench_util.h"
#include "core/iter_set_cover.h"
#include "setsystem/generators.h"
#include "util/stats.h"
#include "util/table.h"

namespace streamcover {
namespace {

void Run() {
  benchutil::Banner(
      "Extension — epsilon-Partial Set Cover: cover-size savings vs "
      "coverage requirement (Zipf instances, n=8192, m=16384, mean over "
      "3 seeds; sizes relative to the full cover of each algorithm)");
  Table table({"coverage", "iterSetCover d=1/2", "[SG09] progressive",
               "[CW16] threshold p=2"});
  const uint32_t n = 8192;

  // Collect absolute sizes first, then report relative to full cover.
  std::vector<double> fractions = {1.0, 0.99, 0.95, 0.9, 0.75, 0.5};
  std::vector<RunningStats> iter_sizes(fractions.size());
  std::vector<RunningStats> prog_sizes(fractions.size());
  std::vector<RunningStats> thresh_sizes(fractions.size());

  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Rng rng(seed);
    PlantedInstance inst = GenerateZipf(n, 2 * n, /*alpha=*/1.1,
                                        /*max_set_size=*/64, rng);
    for (size_t i = 0; i < fractions.size(); ++i) {
      {
        SetStream s(&inst.system);
        IterSetCoverOptions options;
        options.delta = 0.5;
        options.sample_constant = 0.02;
        options.seed = seed;
        options.coverage_fraction = fractions[i];
        StreamingResult r = IterSetCover(s, options);
        if (r.success) {
          iter_sizes[i].Add(static_cast<double>(r.cover.size()));
        }
      }
      {
        SetStream s(&inst.system);
        BaselineResult r = ProgressiveGreedy(s, fractions[i]);
        if (r.success) {
          prog_sizes[i].Add(static_cast<double>(r.cover.size()));
        }
      }
      {
        SetStream s(&inst.system);
        BaselineResult r = PolynomialThresholdCover(s, 2, fractions[i]);
        if (r.success) {
          thresh_sizes[i].Add(static_cast<double>(r.cover.size()));
        }
      }
    }
  }

  auto rel = [](const RunningStats& s, const RunningStats& full) {
    if (s.count() == 0 || full.count() == 0 || full.mean() == 0) {
      return std::string("-");
    }
    return Table::Fmt(s.mean() / full.mean(), 2) + " (" +
           Table::Fmt(static_cast<uint64_t>(s.mean())) + ")";
  };
  for (size_t i = 0; i < fractions.size(); ++i) {
    table.AddRow({Table::Fmt(fractions[i], 2),
                  rel(iter_sizes[i], iter_sizes[0]),
                  rel(prog_sizes[i], prog_sizes[0]),
                  rel(thresh_sizes[i], thresh_sizes[0])});
  }
  table.Print(std::cout);
  benchutil::Note(
      "\nreading: on this family the savings track the relaxed coverage "
      "nearly\none-for-one across all three algorithm families — the "
      "partial variant\n([ER14]/[CW16] state their bounds for it) comes "
      "at no algorithmic overhead:\nthe same passes, less acquisition.");
}

}  // namespace
}  // namespace streamcover

int main() {
  streamcover::Run();
  return 0;
}
