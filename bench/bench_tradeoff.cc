// Theorem 2.8 — the headline pass/space trade-off of iterSetCover:
// 2/delta passes, O~(m n^delta) space, O(rho/delta) approximation.
//
// Two sweeps, both expressed as RunPlan grids over the planted workload:
//  (A) delta sweep at fixed n: passes must equal 2/delta (Lemma 2.1),
//      stored projection words must grow with delta, the cover must stay
//      within the O(rho/delta) envelope, and DIMV14's pass count at the
//      same delta must blow up exponentially while iterSetCover's stays
//      linear in 1/delta.
//  (B) n sweep at fixed delta: the empirical growth exponent of the
//      stored-projection footprint (log-log slope against n) should sit
//      near delta (plus polylog drift), far below the exponent 1 of the
//      store-all baseline.
//
// The projection-space probe runs iterSetCover's k=OPT single guess
// through the registry (RunOptions::iter_guess) — no bespoke call sites.

#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/run_plan.h"
#include "util/stats.h"
#include "util/table.h"

namespace streamcover {
namespace {

constexpr double kSampleConstant = 0.005;
constexpr uint32_t kPlantedOpt = 8;

WorkloadSpec PlantedWorkload(uint32_t n, std::string label) {
  WorkloadSpec workload;
  workload.workload = "planted";
  workload.label = std::move(label);
  workload.params.n = n;
  workload.params.m = 2 * n;
  workload.params.k = kPlantedOpt;
  return workload;
}

SolverSpec IterSpec(double delta, std::string label, uint64_t guess = 0) {
  SolverSpec spec;
  spec.solver = "iter";
  spec.label = std::move(label);
  spec.options.delta = delta;
  spec.options.sample_constant = kSampleConstant;
  spec.options.iter_guess = guess;
  return spec;
}

void DeltaSweep() {
  benchutil::Banner(
      "Theorem 2.8 (A) — delta sweep, n=4096, m=8192, planted OPT=8");
  const std::vector<double> inv_deltas = {1.0, 2.0, 3.0, 4.0, 5.0};

  RunPlan plan;
  for (double inv_delta : inv_deltas) {
    const double delta = 1.0 / inv_delta;
    const std::string suffix = "1/" + Table::Fmt(static_cast<int>(inv_delta));
    plan.solvers.push_back(IterSpec(delta, "iter d=" + suffix));
    // Projection-space probe: the k=OPT single guess exposes the
    // O~(m n^delta) object of Lemma 2.2.
    plan.solvers.push_back(
        IterSpec(delta, "probe d=" + suffix, kPlantedOpt));
    SolverSpec dimv;
    dimv.solver = "dimv14";
    dimv.label = "dimv14 d=" + suffix;
    dimv.options.delta = delta;
    dimv.options.sample_constant = kSampleConstant;
    plan.solvers.push_back(std::move(dimv));
  }
  plan.workloads.push_back(PlantedWorkload(4096, "planted-4096"));
  plan.seeds = {1, 2, 3};

  RunReport report = ExecutePlan(plan);

  Table table({"delta", "passes iter (=2/d)", "seq scans iter",
               "phys scans iter", "passes DIMV14", "cover/OPT",
               "proj words (k=OPT guess)", "space max-guess"});
  for (double inv_delta : inv_deltas) {
    const std::string suffix = "1/" + Table::Fmt(static_cast<int>(inv_delta));
    const RunCell* iter = report.FindCell("iter d=" + suffix,
                                          "planted-4096");
    const RunCell* probe = report.FindCell("probe d=" + suffix,
                                           "planted-4096");
    const RunCell* dimv = report.FindCell("dimv14 d=" + suffix,
                                          "planted-4096");
    table.AddRow(
        {suffix, Table::Fmt(iter->passes.mean(), 1),
         Table::Fmt(iter->sequential_scans.mean(), 1),
         Table::Fmt(iter->physical_scans.mean(), 1),
         Table::Fmt(dimv->passes.mean(), 1),
         Table::Fmt(iter->ratio.mean(), 2),
         Table::Fmt(static_cast<uint64_t>(probe->projection_words.mean())),
         Table::Fmt(static_cast<uint64_t>(iter->space_words.mean()))});
  }
  table.Print(std::cout);
  benchutil::Note(
      "\nexpected shape: iter passes grow linearly in 1/delta, DIMV14 "
      "passes exponentially;\nprojection words shrink as delta shrinks "
      "(the space side of the trade-off);\nphys scans track passes — one "
      "shared scan serves all parallel guesses — while\nseq scans pay "
      "the extra ~log n guess factor.");
}

void NSweep() {
  benchutil::Banner(
      "Theorem 2.8 (B) — n sweep at fixed delta, m=2n, OPT guess k=8");
  const std::vector<uint32_t> ns = {2048u, 4096u, 8192u, 16384u};
  for (double delta : {0.25, 0.5}) {
    RunPlan plan;
    plan.solvers.push_back(IterSpec(delta, "probe", kPlantedOpt));
    for (uint32_t n : ns) {
      plan.workloads.push_back(
          PlantedWorkload(n, "planted-" + Table::Fmt(n)));
    }
    plan.seeds = {1, 2, 3};
    RunReport report = ExecutePlan(plan);

    Table table({"n", "proj words", "proj words / m", "cover/OPT"});
    std::vector<double> xs, ys;
    for (uint32_t n : ns) {
      const RunCell* cell =
          report.FindCell("probe", "planted-" + Table::Fmt(n));
      const double proj = cell->projection_words.mean();
      xs.push_back(static_cast<double>(n));
      // Normalize by m = 2n to isolate the n^delta factor of
      // O~(m n^delta) from the trivial m factor.
      ys.push_back(proj / (2.0 * static_cast<double>(n)));
      table.AddRow({Table::Fmt(n), Table::Fmt(static_cast<uint64_t>(proj)),
                    Table::Fmt(proj / (2.0 * n), 3),
                    Table::Fmt(cell->ratio.count() > 0 ? cell->ratio.mean()
                                                       : 0.0,
                               2)});
    }
    table.Print(std::cout);
    benchutil::Note(
        "delta=" + Table::Fmt(delta, 2) +
        ": log-log slope of (proj words / m) vs n = " +
        Table::Fmt(LogLogSlope(xs, ys), 3) + "  (target ~ delta = " +
        Table::Fmt(delta, 2) + " up to polylog drift)\n");
  }
}

}  // namespace
}  // namespace streamcover

int main() {
  streamcover::DeltaSweep();
  streamcover::NSweep();
  return 0;
}
