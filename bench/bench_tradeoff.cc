// Theorem 2.8 — the headline pass/space trade-off of iterSetCover:
// 2/delta passes, O~(m n^delta) space, O(rho/delta) approximation.
//
// Two sweeps:
//  (A) delta sweep at fixed n: passes must equal 2/delta (Lemma 2.1),
//      stored projection words must grow with delta, the cover must stay
//      within the O(rho/delta) envelope, and DIMV14's pass count at the
//      same delta must blow up exponentially while iterSetCover's stays
//      linear in 1/delta.
//  (B) n sweep at fixed delta: the empirical growth exponent of the
//      stored-projection footprint (log-log slope against n) should sit
//      near delta (plus polylog drift), far below the exponent 1 of the
//      store-all baseline.

#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/iter_set_cover.h"
#include "core/solver_registry.h"
#include "setsystem/generators.h"
#include "util/stats.h"
#include "util/table.h"

namespace streamcover {
namespace {

constexpr double kSampleConstant = 0.005;

PlantedInstance MakeInstance(uint32_t n, uint64_t seed) {
  Rng rng(seed);
  PlantedOptions options;
  options.num_elements = n;
  options.num_sets = 2 * n;
  options.cover_size = 8;
  options.noise_max_size = n / 25;
  return GeneratePlanted(options, rng);
}

// Peak stored-projection words across iterations of the winning guess —
// the O~(m n^delta) object of Lemma 2.2.
uint64_t PeakProjectionWords(const StreamingResult& result) {
  uint64_t peak = 0;
  for (const auto& diag : result.diagnostics) {
    peak = std::max(peak, diag.projection_words);
  }
  return peak;
}

void DeltaSweep() {
  benchutil::Banner(
      "Theorem 2.8 (A) — delta sweep, n=4096, m=8192, planted OPT=8");
  const uint32_t n = 4096;
  Table table({"delta", "passes iter (=2/d)", "passes DIMV14", "cover/OPT",
               "proj words (k=OPT guess)", "space max-guess"});
  for (double inv_delta : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    const double delta = 1.0 / inv_delta;
    RunningStats passes_iter, passes_dimv, ratio, proj, space;
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      PlantedInstance inst = MakeInstance(n, seed);
      // Full runs of both contenders dispatch through the registry; the
      // projection-space probe needs per-iteration diagnostics, which
      // only the single-guess entry point exposes.
      RunOptions options;
      options.delta = delta;
      options.sample_constant = kSampleConstant;
      options.seed = seed;
      {
        SetStream s(&inst.system);
        RunResult r = RunSolver("iter", s, options);
        passes_iter.Add(static_cast<double>(r.passes));
        ratio.Add(static_cast<double>(r.cover.size()) /
                  static_cast<double>(inst.planted_cover.size()));
        space.Add(static_cast<double>(r.space_words));
      }
      {
        SetStream s(&inst.system);
        IterSetCoverOptions iter_options;
        iter_options.delta = delta;
        iter_options.sample_constant = kSampleConstant;
        iter_options.seed = seed;
        StreamingResult r = IterSetCoverSingleGuess(s, 8, iter_options);
        proj.Add(static_cast<double>(PeakProjectionWords(r)));
      }
      {
        SetStream s(&inst.system);
        RunResult r = RunSolver("dimv14", s, options);
        passes_dimv.Add(static_cast<double>(r.passes));
      }
    }
    table.AddRow({"1/" + Table::Fmt(static_cast<int>(inv_delta)),
                  Table::Fmt(passes_iter.mean(), 1),
                  Table::Fmt(passes_dimv.mean(), 1),
                  Table::Fmt(ratio.mean(), 2),
                  Table::Fmt(static_cast<uint64_t>(proj.mean())),
                  Table::Fmt(static_cast<uint64_t>(space.mean()))});
  }
  table.Print(std::cout);
  benchutil::Note(
      "\nexpected shape: iter passes grow linearly in 1/delta, DIMV14 "
      "passes exponentially;\nprojection words shrink as delta shrinks "
      "(the space side of the trade-off).");
}

void NSweep() {
  benchutil::Banner(
      "Theorem 2.8 (B) — n sweep at fixed delta, m=2n, OPT guess k=8");
  for (double delta : {0.25, 0.5}) {
    Table table({"n", "proj words", "proj words / m", "cover/OPT"});
    std::vector<double> xs, ys;
    for (uint32_t n : {2048u, 4096u, 8192u, 16384u}) {
      RunningStats proj, ratio;
      for (uint64_t seed = 1; seed <= 3; ++seed) {
        PlantedInstance inst = MakeInstance(n, seed);
        SetStream s(&inst.system);
        IterSetCoverOptions options;
        options.delta = delta;
        options.sample_constant = kSampleConstant;
        options.seed = seed;
        StreamingResult r = IterSetCoverSingleGuess(s, 8, options);
        proj.Add(static_cast<double>(PeakProjectionWords(r)));
        if (r.success) {
          ratio.Add(static_cast<double>(r.cover.size()) /
                    static_cast<double>(inst.planted_cover.size()));
        }
      }
      xs.push_back(static_cast<double>(n));
      // Normalize by m = 2n to isolate the n^delta factor of
      // O~(m n^delta) from the trivial m factor.
      ys.push_back(proj.mean() / (2.0 * static_cast<double>(n)));
      table.AddRow({Table::Fmt(n),
                    Table::Fmt(static_cast<uint64_t>(proj.mean())),
                    Table::Fmt(proj.mean() / (2.0 * n), 3),
                    Table::Fmt(ratio.count() > 0 ? ratio.mean() : 0.0, 2)});
    }
    table.Print(std::cout);
    benchutil::Note(
        "delta=" + Table::Fmt(delta, 2) +
        ": log-log slope of (proj words / m) vs n = " +
        Table::Fmt(LogLogSlope(xs, ys), 3) + "  (target ~ delta = " +
        Table::Fmt(delta, 2) + " up to polylog drift)\n");
  }
}

}  // namespace
}  // namespace streamcover

int main() {
  streamcover::DeltaSweep();
  streamcover::NSweep();
  return 0;
}
