// Instance: the workload half of the execution surface. Geometric
// payloads travel inside the instance (solvers that need them are
// rejected cleanly when absent — no raw RunOptions::geometry pointers),
// file-backed instances re-parse the repository per pass and agree with
// their in-memory twins, and every NewStream() gets an independent pass
// counter.

#include "core/instance.h"

#include <cstdio>
#include <string>

#include "core/solver_registry.h"
#include "core/workload_registry.h"
#include "gtest/gtest.h"
#include "setsystem/generators.h"
#include "setsystem/io.h"
#include "util/rng.h"

namespace streamcover {
namespace {

PlantedInstance SmallPlanted(uint64_t seed = 7) {
  PlantedOptions options;
  options.num_elements = 300;
  options.num_sets = 600;
  options.cover_size = 6;
  options.noise_max_size = 20;
  Rng rng(seed);
  return GeneratePlanted(options, rng);
}

RunOptions SmallRunOptions() {
  RunOptions options;
  options.sample_constant = 0.05;
  options.seed = 11;
  return options;
}

TEST(InstanceTest, CarriesMetadataAndPlantedBound) {
  PlantedInstance planted = SmallPlanted();
  const size_t bound = planted.planted_cover.size();
  Instance instance = Instance::FromPlanted(
      std::move(planted), {"small-planted", "generator:test"});
  EXPECT_EQ(instance.name(), "small-planted");
  EXPECT_EQ(instance.provenance(), "generator:test");
  EXPECT_EQ(instance.num_elements(), 300u);
  EXPECT_EQ(instance.num_sets(), 600u);
  EXPECT_EQ(instance.opt_bound(), bound);
  EXPECT_FALSE(instance.has_geometry());
  ASSERT_NE(instance.materialized(), nullptr);
}

TEST(InstanceTest, NewStreamGetsFreshPassCounterEveryTime) {
  Instance instance =
      Instance::FromPlanted(SmallPlanted(), {"planted", ""});
  SetStream first = instance.NewStream();
  first.ForEachSet([](const SetView&) {});
  first.ForEachSet([](const SetView&) {});
  EXPECT_EQ(first.passes(), 2u);
  // A second stream starts at zero — trials never inherit or reset a
  // shared counter.
  SetStream second = instance.NewStream();
  EXPECT_EQ(second.passes(), 0u);
  second.ForEachSet([](const SetView&) {});
  EXPECT_EQ(second.passes(), 1u);
  EXPECT_EQ(first.passes(), 2u);
}

TEST(InstanceTest, GeometricSolverRejectedWithoutPayloadViaInstance) {
  // The rejection comes from the Instance carrying no geometry — the
  // caller never touches a raw GeomDataset pointer.
  Instance instance =
      Instance::FromPlanted(SmallPlanted(), {"abstract-planted", ""});
  RunResult r = RunSolver("geom", instance, SmallRunOptions());
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("geometric"), std::string::npos);
  EXPECT_NE(r.error.find("abstract-planted"), std::string::npos);
}

TEST(InstanceTest, GeometricInstanceDrivesGeometricAndAbstractSolvers) {
  WorkloadParams params;
  params.n = 150;
  params.m = 400;
  params.k = 4;
  params.seed = 5;
  std::string error;
  std::optional<Instance> instance =
      MakeWorkload("geom_disks", params, &error);
  ASSERT_TRUE(instance.has_value()) << error;
  EXPECT_TRUE(instance->has_geometry());
  ASSERT_NE(instance->geometry(), nullptr);
  EXPECT_EQ(instance->geometry()->points.size(), 150u);

  RunOptions options = SmallRunOptions();
  options.delta = 0.25;
  RunResult geom = RunSolver("geom", *instance, options);
  ASSERT_TRUE(geom.ok()) << geom.error;
  EXPECT_TRUE(geom.success);
  EXPECT_TRUE(instance->VerifyCover(geom.cover));

  // Abstract solvers stream the materialized range space of the SAME
  // instance — one workload, every solver kind.
  RunResult abstract = RunSolver("store_all_greedy", *instance, options);
  ASSERT_TRUE(abstract.ok()) << abstract.error;
  EXPECT_TRUE(abstract.success);
  EXPECT_TRUE(instance->VerifyCover(abstract.cover));
}

TEST(InstanceTest, FileBackedInstanceMatchesInMemoryResults) {
  PlantedInstance planted = SmallPlanted(13);
  const std::string path =
      testing::TempDir() + "/instance_test_roundtrip.txt";
  ASSERT_TRUE(SaveSetSystemToFile(planted.system, path));

  std::string error;
  std::optional<Instance> from_file = Instance::FromFile(path, &error);
  ASSERT_TRUE(from_file.has_value()) << error;
  EXPECT_EQ(from_file->num_elements(), 300u);
  EXPECT_EQ(from_file->num_sets(), 600u);
  EXPECT_EQ(from_file->materialized(), nullptr)
      << "file-backed instances must stay on disk";

  Instance in_memory =
      Instance::FromPlanted(std::move(planted), {"mem", ""});

  // Identical options => identical covers and identical pass counts,
  // even though every pass of the file-backed run re-parses the file.
  RunOptions options = SmallRunOptions();
  RunResult file_run = RunSolver("iter", *from_file, options);
  RunResult mem_run = RunSolver("iter", in_memory, options);
  ASSERT_TRUE(file_run.ok()) << file_run.error;
  ASSERT_TRUE(mem_run.ok()) << mem_run.error;
  EXPECT_TRUE(file_run.success);
  EXPECT_EQ(file_run.cover.set_ids, mem_run.cover.set_ids);
  EXPECT_EQ(file_run.passes, mem_run.passes);
  EXPECT_EQ(file_run.sequential_scans, mem_run.sequential_scans);
  EXPECT_EQ(file_run.physical_scans, mem_run.physical_scans);
  // The multi-guess run shares scans: the file is re-parsed once per
  // physical scan, which collapses to the per-guess pass max.
  EXPECT_EQ(file_run.physical_scans, file_run.passes);
  EXPECT_LT(file_run.physical_scans, file_run.sequential_scans);
  EXPECT_TRUE(from_file->VerifyCover(file_run.cover));

  // Re-running on the same file-backed instance reproduces the result:
  // per-run streams mean no pass-counter state leaks between trials.
  RunResult again = RunSolver("iter", *from_file, options);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.cover.set_ids, file_run.cover.set_ids);
  EXPECT_EQ(again.passes, file_run.passes);
  std::remove(path.c_str());
}

TEST(InstanceTest, FromFileFailsCleanlyOnMissingFile) {
  std::string error;
  std::optional<Instance> instance =
      Instance::FromFile("/nonexistent/streamcover.txt", &error);
  EXPECT_FALSE(instance.has_value());
  EXPECT_FALSE(error.empty());
}

TEST(InstanceTest, WrapSystemDoesNotOwn) {
  PlantedInstance planted = SmallPlanted();
  Instance instance =
      Instance::WrapSystem(&planted.system, {"wrapped", "external"});
  EXPECT_EQ(instance.materialized(), &planted.system);
  RunResult r = RunSolver("store_all_greedy", instance, SmallRunOptions());
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.instance, "wrapped");
}

TEST(WorkloadRegistryTest, EnumeratesBuiltinFamilies) {
  for (const char* expected :
       {"planted", "sparse", "zipf", "adversarial", "disjoint_blocks",
        "geom_disks", "geom_rects", "geom_triangles", "figure12", "file"}) {
    EXPECT_TRUE(WorkloadRegistry::Global().Contains(expected))
        << "missing workload: " << expected;
  }
}

TEST(WorkloadRegistryTest, UnknownNameFailsCleanly) {
  std::string error;
  std::optional<Instance> instance =
      MakeWorkload("no-such-workload", WorkloadParams{}, &error);
  EXPECT_FALSE(instance.has_value());
  EXPECT_NE(error.find("no-such-workload"), std::string::npos);
  EXPECT_NE(error.find("planted"), std::string::npos);
}

TEST(WorkloadRegistryTest, FileWorkloadNeedsPath) {
  std::string error;
  std::optional<Instance> instance =
      MakeWorkload("file", WorkloadParams{}, &error);
  EXPECT_FALSE(instance.has_value());
  EXPECT_NE(error.find("path"), std::string::npos);
}

TEST(WorkloadRegistryTest, EveryGeneratedWorkloadIsRunnable) {
  WorkloadParams params;
  params.n = 120;
  params.m = 240;
  params.k = 4;
  params.levels = 4;
  params.seed = 3;
  for (const WorkloadRegistry::Entry* entry :
       WorkloadRegistry::Global().Entries()) {
    if (entry->kind == WorkloadRegistry::Kind::kFile) continue;
    std::string error;
    std::optional<Instance> instance =
        MakeWorkload(entry->name, params, &error);
    ASSERT_TRUE(instance.has_value()) << entry->name << ": " << error;
    RunOptions options = SmallRunOptions();
    RunResult r = RunSolver("store_all_greedy", *instance, options);
    ASSERT_TRUE(r.ok()) << entry->name << ": " << r.error;
    EXPECT_TRUE(r.success) << entry->name;
    EXPECT_TRUE(instance->VerifyCover(r.cover)) << entry->name;
  }
}

}  // namespace
}  // namespace streamcover
