// TransposedIndex / GainTracker — the output-sensitive gain machinery.
//
// The Builder's CSR must match brute-force element→sets membership, the
// tracker's decremental gains must match kernel recomputation after any
// cover sequence (the fuzz), deltas published on PassScheduler's bus
// must keep a registered tracker exact while the threshold sieve
// covers, and MergeStage's two gain modes (transposed heap vs per-round
// rescan) must produce byte-identical covers — including when some
// candidates cross the dense-storage threshold — while the transposed
// mode's evaluation counter stays strictly output-sensitive.

#include "setsystem/transposed_index.h"

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "baselines/threshold_greedy.h"
#include "gtest/gtest.h"
#include "offline/greedy.h"
#include "setsystem/generators.h"
#include "setsystem/set_system.h"
#include "shard/merge_stage.h"
#include "stream/pass_scheduler.h"
#include "stream/set_stream.h"
#include "util/cover_kernels.h"
#include "util/rng.h"

namespace streamcover {
namespace {

SetSystem RandomSystem(uint32_t n, uint32_t m, Rng& rng,
                       uint32_t max_size = 12) {
  SetSystem::Builder builder(n);
  for (uint32_t s = 0; s < m; ++s) {
    const uint32_t size =
        static_cast<uint32_t>(rng.Uniform(std::min(max_size, n) + 1));
    std::vector<uint32_t> elems = rng.SampleWithoutReplacement(n, size);
    std::sort(elems.begin(), elems.end());
    builder.AddSet(elems);
  }
  return std::move(builder).Build();
}

TransposedIndex IndexOf(const SetSystem& system) {
  TransposedIndex::Builder builder(system.num_elements());
  for (uint32_t s = 0; s < system.num_sets(); ++s) {
    builder.CountSet(system.GetSet(s));
  }
  builder.PrepareFill();
  for (uint32_t s = 0; s < system.num_sets(); ++s) {
    builder.FillSet(s, system.GetSet(s));
  }
  return std::move(builder).Build();
}

TEST(TransposedIndexTest, BuilderMatchesBruteForceMembership) {
  Rng rng(21);
  const SetSystem system = RandomSystem(120, 80, rng);
  const TransposedIndex index = IndexOf(system);

  ASSERT_EQ(index.num_elements(), system.num_elements());
  size_t nnz = 0;
  for (uint32_t s = 0; s < system.num_sets(); ++s) {
    nnz += system.GetSet(s).size();
  }
  EXPECT_EQ(index.entry_count(), nnz);
  EXPECT_GT(index.word_count(), 0u);

  for (uint32_t e = 0; e < system.num_elements(); ++e) {
    std::vector<uint32_t> expect;
    for (uint32_t s = 0; s < system.num_sets(); ++s) {
      const std::span<const uint32_t> elems = system.GetSet(s);
      if (std::binary_search(elems.begin(), elems.end(), e)) {
        expect.push_back(s);
      }
    }
    const std::span<const uint32_t> column = index.Sets(e);
    // Sets were filled in ascending index order, so columns are sorted.
    EXPECT_TRUE(std::equal(column.begin(), column.end(), expect.begin(),
                           expect.end()))
        << "element " << e;
    EXPECT_EQ(index.Coverable(e), !expect.empty());
  }
}

TEST(TransposedIndexTest, EmptyColumnsAndEmptySets) {
  // Element 2 is in no set; set 1 is empty. Both must round-trip.
  SetSystem::Builder builder(4);
  builder.AddSet({0, 3});
  builder.AddSet(std::initializer_list<uint32_t>{});
  const SetSystem system = std::move(builder).Build();
  const TransposedIndex index = IndexOf(system);
  EXPECT_EQ(index.entry_count(), 2u);
  EXPECT_TRUE(index.Coverable(0));
  EXPECT_FALSE(index.Coverable(1));
  EXPECT_FALSE(index.Coverable(2));
  EXPECT_TRUE(index.Coverable(3));
  EXPECT_TRUE(index.Sets(1).empty());
  ASSERT_EQ(index.Sets(0).size(), 1u);
  EXPECT_EQ(index.Sets(0)[0], 0u);
}

TEST(GainTrackerTest, InitFromMaskMatchesKernelCounts) {
  Rng rng(22);
  const SetSystem system = RandomSystem(100, 60, rng);
  const TransposedIndex index = IndexOf(system);
  GainTracker tracker(&index, system.num_sets());

  DynamicBitset mask(system.num_elements());
  for (uint32_t e = 0; e < system.num_elements(); ++e) {
    if (rng.Bernoulli(0.6)) mask.Set(e);
  }
  tracker.InitFromMask(mask);
  for (uint32_t s = 0; s < system.num_sets(); ++s) {
    EXPECT_EQ(tracker.gain(s),
              CountUncovered(system.GetSet(s), mask, KernelPolicy::kScalar))
        << "set " << s;
  }
  // Init is a rebuild, not maintenance: no decrements counted.
  EXPECT_EQ(tracker.gain_updates(), 0u);
}

TEST(GainTrackerTest, DecrementalFuzzMatchesRecompute) {
  Rng rng(23);
  for (int trial = 0; trial < 20; ++trial) {
    const uint32_t n = 40 + static_cast<uint32_t>(rng.Uniform(120));
    const SetSystem system =
        RandomSystem(n, 30 + static_cast<uint32_t>(rng.Uniform(60)), rng);
    const TransposedIndex index = IndexOf(system);
    GainTracker tracker(&index, system.num_sets());
    DynamicBitset uncovered(n, true);
    tracker.InitFromMask(uncovered);

    // Cover random batches of distinct still-uncovered elements; after
    // every batch the tracked gains must equal a full recompute.
    while (uncovered.Any()) {
      std::vector<uint32_t> batch;
      const std::vector<uint32_t> live = uncovered.ToVector();
      const size_t take = 1 + rng.Uniform(static_cast<uint32_t>(live.size()));
      for (size_t i = 0; i < take; ++i) batch.push_back(live[i]);
      for (uint32_t e : batch) uncovered.Reset(e);
      tracker.OnCovered(batch);
      for (uint32_t s = 0; s < system.num_sets(); ++s) {
        ASSERT_EQ(tracker.gain(s), CountUncovered(system.GetSet(s), uncovered,
                                                  KernelPolicy::kScalar))
            << "trial " << trial << " set " << s;
      }
    }
    // Every (element, set) pair was decremented exactly once: the
    // maintenance total is exactly the coverable entries' count.
    EXPECT_EQ(tracker.gain_updates(), index.entry_count());
    for (uint32_t s = 0; s < system.num_sets(); ++s) {
      EXPECT_EQ(tracker.gain(s), 0u);
    }
  }
}

TEST(GainTrackerTest, RidesSchedulerDeltaBusWithThresholdSieve) {
  // The sieve publishes each pass's newly covered elements at
  // OnPassEnd; a tracker registered on the scheduler's bus must track
  // the sieve's uncovered mask exactly, with zero rescans.
  Rng rng(24);
  PlantedOptions options;
  options.num_elements = 200;
  options.num_sets = 300;
  options.cover_size = 6;
  PlantedInstance planted = GeneratePlanted(options, rng);
  const SetSystem& system = planted.system;

  const TransposedIndex index = IndexOf(system);
  GainTracker tracker(&index, system.num_sets());
  DynamicBitset all(system.num_elements(), true);
  tracker.InitFromMask(all);

  SetStream stream(&system);
  PassScheduler scheduler(stream);
  scheduler.AddDeltaListener(&tracker);
  ThresholdSieveConsumer sieve(system.num_elements(), /*p=*/2);
  sieve.PublishDeltasTo(&scheduler);
  const size_t slot = scheduler.Register(&sieve);
  while (scheduler.AnyLive()) {
    ASSERT_GT(scheduler.RunRound(), 0u);
  }
  BaselineResult result = sieve.TakeResult(scheduler.passes(slot));
  ASSERT_TRUE(result.success);

  // A full cover means every element was published exactly once, so
  // every gain has decayed to zero and the maintenance total is the
  // index's nnz.
  for (uint32_t s = 0; s < system.num_sets(); ++s) {
    EXPECT_EQ(tracker.gain(s), 0u) << "set " << s;
  }
  EXPECT_EQ(tracker.gain_updates(), index.entry_count());
}

TEST(OfflineGreedyTest, MatchesBruteForceExactGreedy) {
  // The lazy-heap + tracker loop must pick exactly what the textbook
  // argmax picks: max gain, larger set id on ties (the packed-key
  // order).
  Rng rng(25);
  for (int trial = 0; trial < 10; ++trial) {
    const SetSystem system = RandomSystem(90, 50, rng);
    const OfflineResult result = GreedySolver().Solve(system);

    std::vector<uint32_t> expect;
    DynamicBitset uncovered(system.num_elements(), true);
    // Uncoverable elements can never be covered; exclude them exactly
    // like the solver's coverability pre-pass does.
    for (uint32_t e = 0; e < system.num_elements(); ++e) {
      bool coverable = false;
      for (uint32_t s = 0; s < system.num_sets() && !coverable; ++s) {
        const std::span<const uint32_t> elems = system.GetSet(s);
        coverable = std::binary_search(elems.begin(), elems.end(), e);
      }
      if (!coverable) uncovered.Reset(e);
    }
    while (uncovered.Any()) {
      uint64_t best_gain = 0;
      uint32_t best_set = 0;
      for (uint32_t s = 0; s < system.num_sets(); ++s) {
        const uint64_t gain =
            CountUncovered(system.GetSet(s), uncovered, KernelPolicy::kScalar);
        if (gain > best_gain || (gain == best_gain && gain > 0 &&
                                 s > best_set)) {
          best_gain = gain;
          best_set = s;
        }
      }
      if (best_gain == 0) break;
      expect.push_back(best_set);
      MarkCovered(system.GetSet(best_set), uncovered, KernelPolicy::kScalar);
    }
    EXPECT_EQ(result.cover.set_ids, expect) << "trial " << trial;
    EXPECT_GT(result.gain_updates, 0u);
    EXPECT_GT(result.sets_touched, 0u);
  }
}

// --- MergeStage mode/kernel parity ---------------------------------------

std::vector<std::vector<uint32_t>> RandomCandidates(uint32_t n, uint32_t m,
                                                    Rng& rng) {
  // A mix of sparse and dense-eligible candidates plus a few planted
  // big sets so the union is coverable and multiple rounds happen.
  std::vector<std::vector<uint32_t>> sets;
  for (uint32_t s = 0; s < m; ++s) {
    const bool dense = rng.Bernoulli(0.3);
    const uint32_t size = dense
                              ? n / 4 + static_cast<uint32_t>(rng.Uniform(n / 4))
                              : 1 + static_cast<uint32_t>(rng.Uniform(8));
    std::vector<uint32_t> elems = rng.SampleWithoutReplacement(n, size);
    std::sort(elems.begin(), elems.end());
    sets.push_back(std::move(elems));
  }
  // Guarantee coverability: partition the universe into a few blocks.
  const uint32_t block = n / 5 + 1;
  for (uint32_t start = 0; start < n; start += block) {
    std::vector<uint32_t> elems;
    for (uint32_t e = start; e < std::min(n, start + block); ++e) {
      elems.push_back(e);
    }
    sets.push_back(std::move(elems));
  }
  return sets;
}

MergeOutcome RunMerge(const std::vector<std::vector<uint32_t>>& sets,
                      uint32_t n, GainMaintenance gain, KernelPolicy kernel,
                      MergeCounters* counters, uint64_t* dense_candidates) {
  MergeStageOptions options;
  options.kernel = kernel;
  options.gain = gain;
  MergeStage stage(n, static_cast<uint32_t>(sets.size()), options);
  for (uint32_t s = 0; s < sets.size(); ++s) {
    stage.AddCandidate(s, sets[s]);
  }
  MergeOutcome outcome = stage.Merge();
  if (counters != nullptr) *counters = stage.counters();
  if (dense_candidates != nullptr) *dense_candidates = stage.dense_candidates();
  return outcome;
}

TEST(MergeStageTest, GainModesAndKernelsProduceIdenticalCovers) {
  Rng rng(26);
  for (int trial = 0; trial < 6; ++trial) {
    const uint32_t n = 150 + static_cast<uint32_t>(rng.Uniform(200));
    const std::vector<std::vector<uint32_t>> sets =
        RandomCandidates(n, 40, rng);

    MergeCounters transposed_counters;
    uint64_t dense_candidates = 0;
    const MergeOutcome reference =
        RunMerge(sets, n, GainMaintenance::kTransposed, KernelPolicy::kWord,
                 &transposed_counters, &dense_candidates);
    ASSERT_TRUE(reference.success);
    EXPECT_EQ(reference.covered, n);
    // The candidate mix crosses the dense-storage threshold.
    EXPECT_GT(dense_candidates, 0u);
    EXPECT_GT(transposed_counters.gain_updates, 0u);

    MergeCounters rescan_counters;
    for (KernelPolicy kernel : {KernelPolicy::kScalar, KernelPolicy::kWord,
                                KernelPolicy::kAuto}) {
      SCOPED_TRACE(std::string("kernel=") + KernelPolicyName(kernel));
      const MergeOutcome transposed = RunMerge(
          sets, n, GainMaintenance::kTransposed, kernel, nullptr, nullptr);
      const MergeOutcome rescan = RunMerge(
          sets, n, GainMaintenance::kRescan, kernel, &rescan_counters, nullptr);
      EXPECT_EQ(transposed.cover.set_ids, reference.cover.set_ids);
      EXPECT_EQ(rescan.cover.set_ids, reference.cover.set_ids);
      EXPECT_EQ(rescan.covered, reference.covered);
      // Rescan never decrements; it recomputes every unpicked candidate
      // every round.
      EXPECT_EQ(rescan_counters.gain_updates, 0u);
    }
    // Output sensitivity: heap inspections are far fewer than
    // rounds x candidates recomputes on a multi-round instance.
    ASSERT_GT(rescan_counters.rounds, 1u);
    EXPECT_LT(transposed_counters.sets_touched, rescan_counters.sets_touched)
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace streamcover
