// Tests for the binary on-disk CSR format: varint codec fuzzing at the
// LEB128 word boundaries, writer/loader round-trips against the text
// format, and clean rejection of truncated, resized, and corrupted
// files (structure at Open, checksum and body at load).

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "setsystem/binary_io.h"
#include "setsystem/generators.h"
#include "setsystem/io.h"
#include "util/rng.h"

namespace streamcover {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(is),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(VarintTest, RoundTripsBoundaryValues) {
  // Every LEB128 length boundary: 7k bits exactly, one less, one more.
  std::vector<uint64_t> values = {0, 1, 2};
  for (int bits = 7; bits < 64; bits += 7) {
    const uint64_t edge = uint64_t{1} << bits;
    values.push_back(edge - 1);
    values.push_back(edge);
    values.push_back(edge + 1);
  }
  values.push_back(UINT64_MAX - 1);
  values.push_back(UINT64_MAX);

  for (uint64_t v : values) {
    std::string buf;
    binfmt::AppendVarint(v, buf);
    ASSERT_LE(buf.size(), 10u) << v;
    const uint8_t* cursor = reinterpret_cast<const uint8_t*>(buf.data());
    const uint8_t* end = cursor + buf.size();
    std::optional<uint64_t> decoded = binfmt::DecodeVarint(&cursor, end);
    ASSERT_TRUE(decoded.has_value()) << v;
    EXPECT_EQ(*decoded, v);
    EXPECT_EQ(cursor, end) << v;
  }
}

TEST(VarintTest, RoundTripsRandomValuesConcatenated) {
  // Fuzz: random widths, all concatenated into one buffer, decoded back
  // in sequence — exactly how set bodies are laid out.
  Rng rng(7);
  std::vector<uint64_t> values;
  std::string buf;
  for (int i = 0; i < 5000; ++i) {
    const int bits = static_cast<int>(rng.UniformInt(0, 63));
    const uint64_t v = rng.Next() >> (63 - bits);
    values.push_back(v);
    binfmt::AppendVarint(v, buf);
  }
  const uint8_t* cursor = reinterpret_cast<const uint8_t*>(buf.data());
  const uint8_t* end = cursor + buf.size();
  for (uint64_t expect : values) {
    std::optional<uint64_t> decoded = binfmt::DecodeVarint(&cursor, end);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, expect);
  }
  EXPECT_EQ(cursor, end);
}

TEST(VarintTest, RejectsTruncationAndOverlongEncodings) {
  std::string buf;
  binfmt::AppendVarint(UINT64_MAX, buf);
  ASSERT_EQ(buf.size(), 10u);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    const uint8_t* cursor = reinterpret_cast<const uint8_t*>(buf.data());
    EXPECT_FALSE(binfmt::DecodeVarint(&cursor, cursor + cut).has_value())
        << "prefix of " << cut << " bytes decoded";
  }
  // 11 continuation bytes: longer than any uint64 needs.
  std::string overlong(11, static_cast<char>(0x80));
  const uint8_t* cursor =
      reinterpret_cast<const uint8_t*>(overlong.data());
  EXPECT_FALSE(
      binfmt::DecodeVarint(&cursor, cursor + overlong.size()).has_value());
}

TEST(BinaryIoTest, WriteLoadRoundTripMatchesTextFormat) {
  Rng rng(11);
  PlantedOptions options;
  options.num_elements = 200;
  options.num_sets = 400;
  options.cover_size = 7;
  PlantedInstance inst = GeneratePlanted(options, rng);

  const std::string bin = TempPath("roundtrip.bin");
  const std::string txt = TempPath("roundtrip.txt");
  std::string error;
  ASSERT_TRUE(WriteBinarySetSystem(inst.system, bin, &error)) << error;
  ASSERT_TRUE(SaveSetSystemToFile(inst.system, txt));

  EXPECT_TRUE(IsBinarySetSystemFile(bin));
  EXPECT_FALSE(IsBinarySetSystemFile(txt));
  EXPECT_FALSE(IsBinarySetSystemFile(TempPath("missing.bin")));

  auto from_bin = LoadBinarySetSystemFromFile(bin, &error);
  ASSERT_TRUE(from_bin.has_value()) << error;
  ASSERT_EQ(from_bin->num_elements(), inst.system.num_elements());
  ASSERT_EQ(from_bin->num_sets(), inst.system.num_sets());
  ASSERT_EQ(from_bin->total_size(), inst.system.total_size());
  for (uint32_t s = 0; s < inst.system.num_sets(); ++s) {
    auto expect = inst.system.GetSet(s);
    auto got = from_bin->GetSet(s);
    ASSERT_EQ(std::vector<uint32_t>(got.begin(), got.end()),
              std::vector<uint32_t>(expect.begin(), expect.end()))
        << "set " << s;
  }

  // LoadAny sniffs the magic and accepts both spellings.
  auto any_bin = LoadAnySetSystemFromFile(bin, &error);
  ASSERT_TRUE(any_bin.has_value()) << error;
  EXPECT_EQ(any_bin->total_size(), inst.system.total_size());
  auto any_txt = LoadAnySetSystemFromFile(txt, &error);
  ASSERT_TRUE(any_txt.has_value()) << error;
  EXPECT_EQ(any_txt->total_size(), inst.system.total_size());
}

TEST(BinaryIoTest, WriterNormalizesUnsortedDuplicatedSets) {
  const std::string path = TempPath("normalize.bin");
  std::string error;
  auto writer = BinarySetWriter::Create(path, /*num_elements=*/70, &error);
  ASSERT_TRUE(writer.has_value()) << error;
  const std::vector<uint32_t> messy = {65, 3, 65, 0, 3};
  ASSERT_TRUE(writer->AddSet(messy));
  ASSERT_TRUE(writer->AddSet({}));  // empty sets are legal
  ASSERT_TRUE(writer->Finish(&error)) << error;
  EXPECT_EQ(writer->num_sets(), 2u);
  EXPECT_EQ(writer->nnz(), 3u);

  auto loaded = LoadBinarySetSystemFromFile(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  auto got = loaded->GetSet(0);
  EXPECT_EQ(std::vector<uint32_t>(got.begin(), got.end()),
            (std::vector<uint32_t>{0, 3, 65}));
  EXPECT_EQ(loaded->SetSize(1), 0u);
}

TEST(BinaryIoTest, WriterRejectsOutOfRangeElements) {
  const std::string path = TempPath("out_of_range.bin");
  std::string error;
  auto writer = BinarySetWriter::Create(path, /*num_elements=*/10, &error);
  ASSERT_TRUE(writer.has_value()) << error;
  const std::vector<uint32_t> bad = {3, 10};  // 10 == n is out of range
  EXPECT_FALSE(writer->AddSet(bad));
  EXPECT_NE(writer->error().find("out of range"), std::string::npos)
      << writer->error();
  // A failed AddSet poisons Finish too.
  EXPECT_FALSE(writer->Finish(&error));
}

TEST(BinaryIoTest, RejectsTruncatedFilesAtEveryPrefixLength) {
  Rng rng(13);
  PlantedInstance inst = GeneratePlanted(
      {.num_elements = 40, .num_sets = 30, .cover_size = 3}, rng);
  const std::string path = TempPath("truncate.bin");
  std::string error;
  ASSERT_TRUE(WriteBinarySetSystem(inst.system, path, &error)) << error;
  const std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 80u);

  const std::string cut_path = TempPath("truncate_cut.bin");
  // Every strict prefix must be rejected: header cuts, body cuts,
  // footer cuts, and a missing end magic all trip different checks.
  for (size_t len = 0; len < bytes.size(); len += 7) {
    WriteFileBytes(cut_path, bytes.substr(0, len));
    error.clear();
    EXPECT_FALSE(LoadBinarySetSystemFromFile(cut_path, &error).has_value())
        << "prefix " << len << " of " << bytes.size() << " accepted";
    EXPECT_FALSE(error.empty());
  }
  WriteFileBytes(cut_path, bytes.substr(0, bytes.size() - 1));
  EXPECT_FALSE(LoadBinarySetSystemFromFile(cut_path, &error).has_value());
}

TEST(BinaryIoTest, RejectsCorruptedBodyViaChecksum) {
  Rng rng(17);
  PlantedInstance inst = GeneratePlanted(
      {.num_elements = 60, .num_sets = 50, .cover_size = 4}, rng);
  const std::string path = TempPath("corrupt.bin");
  std::string error;
  ASSERT_TRUE(WriteBinarySetSystem(inst.system, path, &error)) << error;
  std::string bytes = ReadFileBytes(path);

  // Flip one bit in the middle of the body.
  const size_t victim = binfmt::kHeaderBytes + bytes.size() / 4;
  bytes[victim] = static_cast<char>(bytes[victim] ^ 0x40);
  const std::string bad = TempPath("corrupt_flipped.bin");
  WriteFileBytes(bad, bytes);
  error.clear();
  EXPECT_FALSE(LoadBinarySetSystemFromFile(bad, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(BinaryIoTest, RejectsBadMagicVersionAndDimensions) {
  Rng rng(19);
  PlantedInstance inst = GeneratePlanted(
      {.num_elements = 30, .num_sets = 20, .cover_size = 3}, rng);
  const std::string path = TempPath("headers.bin");
  std::string error;
  ASSERT_TRUE(WriteBinarySetSystem(inst.system, path, &error)) << error;
  const std::string good = ReadFileBytes(path);
  const std::string bad = TempPath("headers_bad.bin");

  {
    std::string b = good;
    b[0] = 'X';  // magic
    WriteFileBytes(bad, b);
    EXPECT_FALSE(LoadBinarySetSystemFromFile(bad, &error).has_value());
    EXPECT_NE(error.find("magic"), std::string::npos) << error;
  }
  {
    std::string b = good;
    b[8] = 2;  // version
    WriteFileBytes(bad, b);
    error.clear();
    EXPECT_FALSE(LoadBinarySetSystemFromFile(bad, &error).has_value());
    EXPECT_NE(error.find("version"), std::string::npos) << error;
  }
  {
    std::string b = good;
    b[23] = 1;  // n high byte -> beyond kMaxDimension
    WriteFileBytes(bad, b);
    error.clear();
    EXPECT_FALSE(LoadBinarySetSystemFromFile(bad, &error).has_value());
    EXPECT_FALSE(error.empty());
  }
}

TEST(BinaryIoTest, EmptyAndSingletonSystemsRoundTrip) {
  SetSystem::Builder builder(5);
  SetSystem empty = std::move(builder).Build();
  const std::string path = TempPath("empty.bin");
  std::string error;
  ASSERT_TRUE(WriteBinarySetSystem(empty, path, &error)) << error;
  auto loaded = LoadBinarySetSystemFromFile(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->num_elements(), 5u);
  EXPECT_EQ(loaded->num_sets(), 0u);

  SetSystem::Builder one(1);
  const std::vector<uint32_t> just_zero = {0};
  one.AddSet(just_zero);
  SetSystem single = std::move(one).Build();
  const std::string spath = TempPath("single.bin");
  ASSERT_TRUE(WriteBinarySetSystem(single, spath, &error)) << error;
  auto sloaded = LoadBinarySetSystemFromFile(spath, &error);
  ASSERT_TRUE(sloaded.has_value()) << error;
  EXPECT_EQ(sloaded->num_sets(), 1u);
  EXPECT_EQ(sloaded->SetSize(0), 1u);
}

TEST(ChunkPlanTest, CoversEverySetContiguouslyAndRespectsTarget) {
  Rng rng(21);
  PlantedOptions options;
  options.num_elements = 200;
  options.num_sets = 400;
  options.cover_size = 7;
  PlantedInstance inst = GeneratePlanted(options, rng);
  const std::string path = TempPath("chunkplan.bin");
  std::string error;
  ASSERT_TRUE(WriteBinarySetSystem(inst.system, path, &error)) << error;
  const std::string bytes = ReadFileBytes(path);
  binfmt::BinaryLayout layout;
  ASSERT_TRUE(binfmt::ValidateBinaryLayout(
      reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size(),
      &layout, &error))
      << error;

  for (uint64_t target : {64u, 512u, 1u << 20}) {
    const std::vector<binfmt::ScanChunk> chunks =
        binfmt::BuildChunkPlan(layout, target);
    ASSERT_FALSE(chunks.empty());
    // Contiguous cover of [0, m) in both sets and bytes.
    EXPECT_EQ(chunks.front().first_set, 0u);
    EXPECT_EQ(chunks.front().byte_begin, layout.SetOffset(0));
    uint64_t sets = 0;
    for (size_t c = 0; c < chunks.size(); ++c) {
      ASSERT_GE(chunks[c].set_count, 1u) << "empty chunk " << c;
      EXPECT_EQ(chunks[c].byte_begin,
                layout.SetOffset(chunks[c].first_set));
      EXPECT_EQ(chunks[c].byte_end,
                layout.SetOffset(chunks[c].first_set +
                                 chunks[c].set_count));
      if (c > 0) {
        EXPECT_EQ(chunks[c].first_set,
                  chunks[c - 1].first_set + chunks[c - 1].set_count);
        EXPECT_EQ(chunks[c].byte_begin, chunks[c - 1].byte_end);
        // Every chunk but the last carries at least the target (a
        // chunk closes only once it crossed it) unless it holds a
        // single oversized set.
        EXPECT_TRUE(chunks[c - 1].byte_end - chunks[c - 1].byte_begin >=
                        target ||
                    chunks[c - 1].set_count == 1u)
            << "undersized interior chunk " << c - 1;
      }
      sets += chunks[c].set_count;
    }
    EXPECT_EQ(sets, layout.m);
    EXPECT_EQ(chunks.back().byte_end, layout.SetOffset(layout.m));
  }

  // target 0: one chunk spanning the whole body.
  const std::vector<binfmt::ScanChunk> whole =
      binfmt::BuildChunkPlan(layout, 0);
  ASSERT_EQ(whole.size(), 1u);
  EXPECT_EQ(whole[0].first_set, 0u);
  EXPECT_EQ(whole[0].set_count, layout.m);
}

TEST(ChunkPlanTest, EmptySystemYieldsEmptyPlan) {
  SetSystem::Builder builder(5);
  SetSystem empty = std::move(builder).Build();
  const std::string path = TempPath("chunkplan_empty.bin");
  std::string error;
  ASSERT_TRUE(WriteBinarySetSystem(empty, path, &error)) << error;
  const std::string bytes = ReadFileBytes(path);
  binfmt::BinaryLayout layout;
  ASSERT_TRUE(binfmt::ValidateBinaryLayout(
      reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size(),
      &layout, &error))
      << error;
  EXPECT_TRUE(binfmt::BuildChunkPlan(layout, 256 * 1024).empty());
}

}  // namespace
}  // namespace streamcover
