// Differential parity suite for the disk path: every registered
// streaming solver must produce the identical cover whether the
// repository lives in memory, in a text file (FileSetSource), or in a
// binary file behind MmapSetSource — serially and multiplexed over 4
// scheduler threads. This is the acceptance gate for the binary format:
// a decode bug anywhere shows up as a cover diff here.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/instance.h"
#include "core/solver_registry.h"
#include "setsystem/binary_io.h"
#include "setsystem/generators.h"
#include "setsystem/io.h"
#include "util/rng.h"

namespace streamcover {
namespace {

struct Sources {
  SetSystem system;
  std::string text_path;
  std::string binary_path;
};

Sources MakeSources(uint64_t seed) {
  Rng rng(seed);
  PlantedOptions options;
  options.num_elements = 220;
  options.num_sets = 450;
  options.cover_size = 8;
  PlantedInstance inst = GeneratePlanted(options, rng);

  Sources sources;
  sources.text_path = ::testing::TempDir() + "/parity_" +
                      std::to_string(seed) + ".txt";
  sources.binary_path = ::testing::TempDir() + "/parity_" +
                        std::to_string(seed) + ".bin";
  EXPECT_TRUE(SaveSetSystemToFile(inst.system, sources.text_path));
  std::string error;
  EXPECT_TRUE(
      WriteBinarySetSystem(inst.system, sources.binary_path, &error))
      << error;
  sources.system = std::move(inst.system);
  return sources;
}

RunResult SolveFromMemory(const Sources& sources, const std::string& solver,
                          const RunOptions& options) {
  SetSystem copy = sources.system;  // FromSystem takes ownership
  Instance instance =
      Instance::FromSystem(std::move(copy), {"parity", "memory"});
  return RunSolver(solver, instance, options);
}

RunResult SolveFromDisk(const std::string& path, const std::string& solver,
                        const RunOptions& options) {
  std::string error;
  std::optional<Instance> instance = Instance::FromFile(path, &error);
  EXPECT_TRUE(instance.has_value()) << error;
  return RunSolver(solver, *instance, options);
}

// The streaming portfolio: the paper's algorithm plus every Figure 1.1
// baseline that runs through the registry.
const char* kSolvers[] = {"iter", "store_all_greedy", "iterative_greedy",
                          "progressive_greedy", "threshold_greedy"};

class SourceParityTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(SourceParityTest, CoversIdenticalAcrossSourcesAndThreads) {
  Sources sources = MakeSources(/*seed=*/40 + GetParam());
  for (const char* solver : kSolvers) {
    for (uint32_t threads : {1u, 4u}) {
    for (uint32_t scan_threads : {1u, 4u}) {
      RunOptions options;
      options.seed = 9;
      options.delta = 0.5;
      options.threads = threads;
      options.scan_threads = scan_threads;

      const std::string tag = std::string(solver) + " threads=" +
                              std::to_string(threads) + " scan_threads=" +
                              std::to_string(scan_threads);
      RunResult memory = SolveFromMemory(sources, solver, options);
      ASSERT_TRUE(memory.ok()) << tag << ": " << memory.error;
      RunResult text =
          SolveFromDisk(sources.text_path, solver, options);
      ASSERT_TRUE(text.ok()) << tag << ": " << text.error;
      RunResult binary =
          SolveFromDisk(sources.binary_path, solver, options);
      ASSERT_TRUE(binary.ok()) << tag << ": " << binary.error;

      // Byte-identical covers and identical pass accounting — not just
      // equal sizes. scan_threads > 1 routes the binary source through
      // the pipelined chunk decoder, which must be invisible here.
      EXPECT_EQ(memory.cover.set_ids, text.cover.set_ids)
          << tag << " (memory vs text)";
      EXPECT_EQ(memory.cover.set_ids, binary.cover.set_ids)
          << tag << " (memory vs binary)";
      EXPECT_EQ(memory.passes, binary.passes) << tag;
      EXPECT_EQ(text.passes, binary.passes) << tag;
      EXPECT_EQ(memory.success, binary.success) << tag;
    }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SourceParityTest,
                         ::testing::Values(0u, 1u, 2u));

TEST(SourceParityTest, PartialCoverageAgreesAcrossSources) {
  Sources sources = MakeSources(/*seed=*/77);
  RunOptions options;
  options.seed = 5;
  options.coverage_fraction = 0.9;
  for (const char* solver : {"iter", "progressive_greedy"}) {
    RunResult memory = SolveFromMemory(sources, solver, options);
    RunResult binary =
        SolveFromDisk(sources.binary_path, solver, options);
    ASSERT_TRUE(memory.ok()) << memory.error;
    ASSERT_TRUE(binary.ok()) << binary.error;
    EXPECT_EQ(memory.cover.set_ids, binary.cover.set_ids) << solver;
  }
}

}  // namespace
}  // namespace streamcover
