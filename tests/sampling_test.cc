// Tests for element sampling, including a direct property check of
// Definition 2.4 (relative (p,eps)-approximation) at the sample sizes of
// Lemma 2.5.

#include <gtest/gtest.h>

#include <set>

#include "stream/sampling.h"
#include "util/mathutil.h"

namespace streamcover {
namespace {

TEST(SampleFromBitsetTest, SamplesAreDistinctSortedMembers) {
  DynamicBitset universe(1000);
  for (uint32_t i = 0; i < 1000; i += 3) universe.Set(i);
  Rng rng(4);
  auto sample = SampleFromBitset(universe, 50, rng);
  ASSERT_EQ(sample.size(), 50u);
  EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
  std::set<uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 50u);
  for (uint32_t e : sample) EXPECT_TRUE(universe.Test(e));
}

TEST(SampleFromBitsetTest, OversizedRequestReturnsWholeUniverse) {
  DynamicBitset universe(100);
  universe.Set(3);
  universe.Set(64);
  Rng rng(1);
  auto sample = SampleFromBitset(universe, 10, rng);
  EXPECT_EQ(sample, (std::vector<uint32_t>{3, 64}));
}

TEST(SampleFromBitsetTest, UniformCoverage) {
  // Every element should be sampled with roughly equal frequency.
  DynamicBitset universe(20, true);
  std::vector<int> counts(20, 0);
  Rng rng(9);
  const int kTrials = 20000;
  for (int t = 0; t < kTrials; ++t) {
    for (uint32_t e : SampleFromBitset(universe, 5, rng)) ++counts[e];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kTrials / 4, kTrials / 40);  // 5/20 = 1/4 inclusion
  }
}

TEST(ReservoirSamplerTest, HoldsAtMostCapacity) {
  Rng rng(2);
  ReservoirSampler sampler(10, &rng);
  for (uint32_t i = 0; i < 1000; ++i) sampler.Push(i);
  EXPECT_EQ(sampler.sample().size(), 10u);
  EXPECT_EQ(sampler.items_seen(), 1000u);
}

TEST(ReservoirSamplerTest, KeepsEverythingBelowCapacity) {
  Rng rng(2);
  ReservoirSampler sampler(16, &rng);
  for (uint32_t i = 0; i < 7; ++i) sampler.Push(i * 5);
  EXPECT_EQ(sampler.sample().size(), 7u);
}

TEST(ReservoirSamplerTest, IsRoughlyUniform) {
  std::vector<int> counts(50, 0);
  const int kTrials = 6000;
  Rng rng(8);
  for (int t = 0; t < kTrials; ++t) {
    ReservoirSampler sampler(5, &rng);
    for (uint32_t i = 0; i < 50; ++i) sampler.Push(i);
    for (uint32_t v : sampler.sample()) ++counts[v];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kTrials / 10, kTrials / 40);  // inclusion 5/50
  }
}

TEST(RelativeApproxCheckTest, ExactSampleIsAlwaysApprox) {
  DynamicBitset universe(64, true);
  DynamicBitset range(64);
  for (uint32_t i = 0; i < 20; ++i) range.Set(i);
  // The whole universe as "sample" reproduces fractions exactly.
  EXPECT_TRUE(
      IsRelativeApproxForRange(universe, universe, range, 0.1, 0.25));
}

TEST(RelativeApproxCheckTest, DetectsGrossViolation) {
  DynamicBitset universe(64, true);
  DynamicBitset range(64);
  for (uint32_t i = 0; i < 32; ++i) range.Set(i);  // half the universe
  DynamicBitset bad_sample(64);
  for (uint32_t i = 32; i < 64; ++i) bad_sample.Set(i);  // misses range
  EXPECT_FALSE(
      IsRelativeApproxForRange(universe, bad_sample, range, 0.1, 0.25));
}

// Empirical Lemma 2.5: samples of the prescribed size are relative
// (p, eps)-approximations for a family of random ranges, with failure
// rate far below the union-bound target.
class RelativeApproxLemmaTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RelativeApproxLemmaTest, PrescribedSizeWorks) {
  const uint32_t n = 4000;
  const double p = 0.1, eps = 0.5;
  const uint32_t num_ranges = 64;
  Rng rng(GetParam());

  DynamicBitset universe(n, true);
  // Random ranges of geometric sizes (some light, some heavy).
  std::vector<DynamicBitset> ranges;
  for (uint32_t r = 0; r < num_ranges; ++r) {
    DynamicBitset range(n);
    uint32_t size = 1u << (rng.Uniform(12));
    for (uint32_t e : rng.SampleWithoutReplacement(n, std::min(size, n))) {
      range.Set(e);
    }
    ranges.push_back(std::move(range));
  }

  uint64_t sample_size = RelativeApproxSampleSize(
      p, eps, Log2Clamped(num_ranges), /*log_inv_q=*/4.0, /*c_prime=*/0.5);
  ASSERT_LT(sample_size, n);
  auto sample_vec = SampleFromBitset(universe, sample_size, rng);
  DynamicBitset sample(n);
  for (uint32_t e : sample_vec) sample.Set(e);

  size_t violations = 0;
  for (const auto& range : ranges) {
    if (!IsRelativeApproxForRange(universe, sample, range, p, eps)) {
      ++violations;
    }
  }
  EXPECT_EQ(violations, 0u) << "sample size " << sample_size;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelativeApproxLemmaTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace streamcover
