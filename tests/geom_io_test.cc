// Round-trip and malformed-input tests for geometric instance IO.

#include <gtest/gtest.h>

#include <sstream>

#include "geometry/geom_generators.h"
#include "geometry/geom_io.h"
#include "setsystem/cover.h"
#include "geometry/range_space.h"

namespace streamcover {
namespace {

GeomDataset MakeMixedDataset(uint64_t seed) {
  Rng rng(seed);
  GeomDataset dataset;
  for (int i = 0; i < 40; ++i) {
    dataset.points.push_back(
        {rng.UniformDouble() * 100, rng.UniformDouble() * 100});
  }
  for (int i = 0; i < 10; ++i) {
    dataset.shapes.push_back(Disk{{rng.UniformDouble() * 100,
                                   rng.UniformDouble() * 100},
                                  rng.UniformDouble() * 20});
    double x = rng.UniformDouble() * 90, y = rng.UniformDouble() * 90;
    dataset.shapes.push_back(Rect{x, y, x + 10, y + 10});
    dataset.shapes.push_back(FatTriangle{{x, y},
                                         {x + 12, y},
                                         {x + 6, y + 10}});
  }
  return dataset;
}

TEST(GeomIoTest, RoundTripPreservesTraces) {
  GeomDataset original = MakeMixedDataset(1);
  std::stringstream buffer;
  WriteGeomDataset(original, buffer);
  std::string error;
  auto loaded = ReadGeomDataset(buffer, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  ASSERT_EQ(loaded->points.size(), original.points.size());
  ASSERT_EQ(loaded->shapes.size(), original.shapes.size());
  // Semantics preserved: every shape has the identical trace.
  for (size_t i = 0; i < original.shapes.size(); ++i) {
    EXPECT_EQ(TraceOf(loaded->shapes[i], loaded->points),
              TraceOf(original.shapes[i], original.points))
        << "shape " << i;
  }
}

TEST(GeomIoTest, RoundTripPreservesShapeClasses) {
  GeomDataset original = MakeMixedDataset(2);
  std::stringstream buffer;
  WriteGeomDataset(original, buffer);
  std::string error;
  auto loaded = ReadGeomDataset(buffer, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  for (size_t i = 0; i < original.shapes.size(); ++i) {
    EXPECT_STREQ(ShapeClassName(loaded->shapes[i]),
                 ShapeClassName(original.shapes[i]));
  }
}

TEST(GeomIoTest, EmptyDatasetRoundTrips) {
  GeomDataset empty;
  std::stringstream buffer;
  WriteGeomDataset(empty, buffer);
  std::string error;
  auto loaded = ReadGeomDataset(buffer, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_TRUE(loaded->points.empty());
  EXPECT_TRUE(loaded->shapes.empty());
}

TEST(GeomIoTest, RejectsBadMagic) {
  std::stringstream buffer("setcover 3 1\n");
  std::string error;
  EXPECT_FALSE(ReadGeomDataset(buffer, &error).has_value());
  EXPECT_NE(error.find("bad magic"), std::string::npos);
}

TEST(GeomIoTest, RejectsUnknownShape) {
  std::stringstream buffer("geomcover 1 1\np 0 0\nblob 1 2 3\n");
  std::string error;
  EXPECT_FALSE(ReadGeomDataset(buffer, &error).has_value());
  EXPECT_NE(error.find("unknown shape"), std::string::npos);
}

TEST(GeomIoTest, RejectsNegativeRadiusAndInvertedRect) {
  {
    std::stringstream buffer("geomcover 0 1\ndisk 0 0 -1\n");
    std::string error;
    EXPECT_FALSE(ReadGeomDataset(buffer, &error).has_value());
    EXPECT_NE(error.find("negative"), std::string::npos);
  }
  {
    std::stringstream buffer("geomcover 0 1\nrect 5 0 1 1\n");
    std::string error;
    EXPECT_FALSE(ReadGeomDataset(buffer, &error).has_value());
    EXPECT_NE(error.find("inverted"), std::string::npos);
  }
}

TEST(GeomIoTest, RejectsTruncatedInput) {
  std::stringstream buffer("geomcover 2 1\np 0 0\n");
  std::string error;
  EXPECT_FALSE(ReadGeomDataset(buffer, &error).has_value());
}

TEST(GeomIoTest, FileHelpersRoundTrip) {
  GeomDataset original = MakeMixedDataset(3);
  const std::string path = ::testing::TempDir() + "/geom_io_test.txt";
  ASSERT_TRUE(SaveGeomDatasetToFile(original, path));
  std::string error;
  auto loaded = LoadGeomDatasetFromFile(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->shapes.size(), original.shapes.size());
}

TEST(GeomIoTest, GeneratedInstanceSurvivesRoundTrip) {
  Rng rng(4);
  GeomPlantedOptions options;
  options.num_points = 100;
  options.num_shapes = 200;
  options.cover_size = 5;
  options.shape_class = ShapeClass::kRect;
  GeomInstance inst = GeneratePlantedGeom(options, rng);

  GeomDataset dataset{inst.points, inst.shapes};
  std::stringstream buffer;
  WriteGeomDataset(dataset, buffer);
  std::string error;
  auto loaded = ReadGeomDataset(buffer, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  // The planted cover remains feasible on the loaded copy.
  SetSystem ranges = BuildRangeSpace(loaded->points, loaded->shapes);
  EXPECT_TRUE(IsFullCover(ranges, Cover{inst.planted_cover}));
}

}  // namespace
}  // namespace streamcover
