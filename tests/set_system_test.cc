// Unit tests for SetSystem, InvertedIndex, Cover utilities.

#include <gtest/gtest.h>

#include "setsystem/cover.h"
#include "setsystem/set_system.h"

namespace streamcover {
namespace {

SetSystem MakeSmall() {
  // U = {0..5}; sets: {0,1,2}, {2,3}, {3,4,5}, {5}, {}.
  SetSystem::Builder b(6);
  b.AddSet({0, 1, 2});
  b.AddSet({2, 3});
  b.AddSet({3, 4, 5});
  b.AddSet({5});
  b.AddSet({});
  return std::move(b).Build();
}

TEST(SetSystemTest, BasicAccessors) {
  SetSystem s = MakeSmall();
  EXPECT_EQ(s.num_elements(), 6u);
  EXPECT_EQ(s.num_sets(), 5u);
  EXPECT_EQ(s.total_size(), 9u);
  EXPECT_EQ(s.SetSize(0), 3u);
  EXPECT_EQ(s.SetSize(4), 0u);
  auto set1 = s.GetSet(1);
  EXPECT_EQ(std::vector<uint32_t>(set1.begin(), set1.end()),
            (std::vector<uint32_t>{2, 3}));
}

TEST(SetSystemTest, BuilderSortsAndDeduplicates) {
  SetSystem::Builder b(10);
  b.AddSet({5, 1, 5, 3, 1});
  SetSystem s = std::move(b).Build();
  auto set = s.GetSet(0);
  EXPECT_EQ(std::vector<uint32_t>(set.begin(), set.end()),
            (std::vector<uint32_t>{1, 3, 5}));
}

TEST(SetSystemTest, BuilderReturnsSequentialIds) {
  SetSystem::Builder b(4);
  EXPECT_EQ(b.AddSet({0}), 0u);
  EXPECT_EQ(b.AddSet({1}), 1u);
  EXPECT_EQ(b.num_sets(), 2u);
}

TEST(SetSystemTest, Contains) {
  SetSystem s = MakeSmall();
  EXPECT_TRUE(s.Contains(0, 1));
  EXPECT_FALSE(s.Contains(0, 3));
  EXPECT_FALSE(s.Contains(4, 0));
}

TEST(InvertedIndexTest, DegreesAndMembership) {
  SetSystem s = MakeSmall();
  InvertedIndex index(s);
  EXPECT_EQ(index.Degree(2), 2u);  // sets 0 and 1
  EXPECT_EQ(index.Degree(5), 2u);  // sets 2 and 3
  EXPECT_EQ(index.Degree(0), 1u);
  auto sets = index.SetsContaining(3);
  EXPECT_EQ(std::vector<uint32_t>(sets.begin(), sets.end()),
            (std::vector<uint32_t>{1, 2}));
}

TEST(CoverTest, CoverageMaskAndCount) {
  SetSystem s = MakeSmall();
  Cover c{{0, 2}};
  EXPECT_EQ(CoveredCount(s, c), 6u);
  EXPECT_TRUE(IsFullCover(s, c));
  Cover partial{{1}};
  EXPECT_EQ(CoveredCount(s, partial), 2u);
  EXPECT_FALSE(IsFullCover(s, partial));
}

TEST(CoverTest, CoversTargets) {
  SetSystem s = MakeSmall();
  DynamicBitset targets(6);
  targets.Set(3);
  targets.Set(5);
  EXPECT_TRUE(CoversTargets(s, Cover{{2}}, targets));
  EXPECT_FALSE(CoversTargets(s, Cover{{1}}, targets));
}

TEST(CoverTest, IsCoverable) {
  EXPECT_TRUE(IsCoverable(MakeSmall()));
  SetSystem::Builder b(3);
  b.AddSet({0, 1});  // element 2 uncovered by any set
  EXPECT_FALSE(IsCoverable(std::move(b).Build()));
}

TEST(CoverTest, DeduplicateRemovesRepeats) {
  Cover c{{3, 1, 3, 2, 1}};
  c.Deduplicate();
  EXPECT_EQ(c.set_ids, (std::vector<uint32_t>{1, 2, 3}));
}

TEST(CoverTest, PruneRedundantDropsSubsumedSets) {
  SetSystem s = MakeSmall();
  // {0,1,2} + {2,3} + {3,4,5}: set 1 is redundant (2 and 3 covered
  // elsewhere); sets 0 and 2 are essential.
  Cover c{{0, 1, 2}};
  size_t removed = PruneRedundant(s, c);
  EXPECT_EQ(removed, 1u);
  EXPECT_TRUE(IsFullCover(s, c));
  EXPECT_EQ(c.set_ids, (std::vector<uint32_t>{0, 2}));
}

TEST(CoverTest, PruneKeepsEssentialCoverIntact) {
  SetSystem s = MakeSmall();
  Cover c{{0, 2}};
  EXPECT_EQ(PruneRedundant(s, c), 0u);
  EXPECT_EQ(c.set_ids.size(), 2u);
}

TEST(CoverTest, PruneHandlesDuplicatePicks) {
  SetSystem s = MakeSmall();
  Cover c{{0, 0, 2, 2}};
  PruneRedundant(s, c);
  EXPECT_TRUE(IsFullCover(s, c));
  EXPECT_EQ(c.set_ids.size(), 2u);
}

TEST(SetSystemTest, EmptySystem) {
  SetSystem::Builder b(0);
  SetSystem s = std::move(b).Build();
  EXPECT_EQ(s.num_elements(), 0u);
  EXPECT_EQ(s.num_sets(), 0u);
  EXPECT_TRUE(IsCoverable(s));
  EXPECT_TRUE(IsFullCover(s, Cover{}));
}

}  // namespace
}  // namespace streamcover
