// Tests for the log-bucketed latency histogram: quantile error bounds,
// exact max/count/mean, edge values (sub-microsecond, beyond-ceiling),
// and concurrent recording.

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "util/latency_histogram.h"

namespace streamcover {
namespace {

// Bucket boundaries grow by 2^(1/8), so a reported quantile is the
// upper bound of the true value's bucket: within a factor of 2^(1/8)
// (~9%) above the true value, never below it.
constexpr double kBucketFactor = 1.0905077326652577;  // 2^(1/8)

TEST(LatencyHistogramTest, EmptySnapshotIsAllZero) {
  LatencyHistogram hist;
  LatencySnapshot snap = hist.TakeSnapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.p50_ms, 0);
  EXPECT_EQ(snap.p99_ms, 0);
  EXPECT_EQ(snap.max_ms, 0);
  EXPECT_EQ(snap.mean_ms, 0);
}

TEST(LatencyHistogramTest, QuantilesWithinBucketErrorBound) {
  LatencyHistogram hist;
  // 1..1000 ms uniformly: true p50 = 500, p90 = 900, p99 = 990.
  for (int v = 1; v <= 1000; ++v) hist.Record(static_cast<double>(v));
  LatencySnapshot snap = hist.TakeSnapshot();
  EXPECT_EQ(snap.count, 1000u);

  EXPECT_GE(snap.p50_ms, 500.0 * 0.999);
  EXPECT_LE(snap.p50_ms, 500.0 * kBucketFactor * 1.001);
  EXPECT_GE(snap.p90_ms, 900.0 * 0.999);
  EXPECT_LE(snap.p90_ms, 900.0 * kBucketFactor * 1.001);
  EXPECT_GE(snap.p99_ms, 990.0 * 0.999);
  EXPECT_LE(snap.p99_ms, 990.0 * kBucketFactor * 1.001);

  // Max and mean are exact, not bucketed.
  EXPECT_DOUBLE_EQ(snap.max_ms, 1000.0);
  EXPECT_NEAR(snap.mean_ms, 500.5, 0.01);
}

TEST(LatencyHistogramTest, ExtremeValuesClampButMaxStaysExact) {
  LatencyHistogram hist;
  hist.Record(0.0);        // below the 1us floor -> bucket 0
  hist.Record(0.0001);     // 0.1us, still bucket 0
  hist.Record(5.0e6);      // ~83 minutes, beyond the table ceiling
  LatencySnapshot snap = hist.TakeSnapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_DOUBLE_EQ(snap.max_ms, 5.0e6);
  // p50 lands in the clamped region but must be finite and ordered.
  EXPECT_GE(snap.p99_ms, snap.p50_ms);
}

TEST(LatencyHistogramTest, ConcurrentRecordsAllCounted) {
  LatencyHistogram hist;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.Record(0.5 + static_cast<double>((t * 31 + i) % 100));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  LatencySnapshot snap = hist.TakeSnapshot();
  EXPECT_EQ(snap.count,
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_GT(snap.p50_ms, 0);
  EXPECT_LE(snap.p50_ms, snap.p90_ms);
  EXPECT_LE(snap.p90_ms, snap.p99_ms);
  EXPECT_LE(snap.p99_ms, snap.max_ms * kBucketFactor);
}

}  // namespace
}  // namespace streamcover
