// Tests for the pluggable stream backends: FileSetSource must behave
// identically to the in-memory source — same scans, same pass counts,
// same algorithm results — while actually re-reading the file per pass.

#include <gtest/gtest.h>

#include <fstream>

#include "core/iter_set_cover.h"
#include "setsystem/generators.h"
#include "setsystem/io.h"
#include "stream/set_source.h"
#include "stream/set_stream.h"

namespace streamcover {
namespace {

std::string WriteTempInstance(const SetSystem& system,
                              const std::string& name) {
  std::string path = ::testing::TempDir() + "/" + name;
  EXPECT_TRUE(SaveSetSystemToFile(system, path));
  return path;
}

TEST(FileSetSourceTest, OpenValidatesHeader) {
  std::string error;
  EXPECT_FALSE(FileSetSource::Open("/no/such/file.txt", &error).has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos);

  std::string bad = ::testing::TempDir() + "/bad_magic.txt";
  {
    std::ofstream out(bad);
    out << "wrongmagic 3 1\n1 0\n";
  }
  EXPECT_FALSE(FileSetSource::Open(bad, &error).has_value());
  EXPECT_NE(error.find("bad magic"), std::string::npos);
}

TEST(FileSetSourceTest, ScanMatchesInMemorySource) {
  Rng rng(1);
  PlantedOptions options;
  options.num_elements = 120;
  options.num_sets = 250;
  options.cover_size = 6;
  PlantedInstance inst = GeneratePlanted(options, rng);
  std::string path = WriteTempInstance(inst.system, "scan_match.txt");

  std::string error;
  auto file_source = FileSetSource::Open(path, &error);
  ASSERT_TRUE(file_source.has_value()) << error;
  EXPECT_EQ(file_source->num_elements(), inst.system.num_elements());
  EXPECT_EQ(file_source->num_sets(), inst.system.num_sets());

  std::vector<std::vector<uint32_t>> from_file;
  file_source->Scan([&](const SetView& set) {
    EXPECT_EQ(set.id, from_file.size());
    from_file.emplace_back(set.begin(), set.end());
  });
  ASSERT_EQ(from_file.size(), inst.system.num_sets());
  for (uint32_t s = 0; s < inst.system.num_sets(); ++s) {
    auto expect = inst.system.GetSet(s);
    EXPECT_EQ(from_file[s],
              std::vector<uint32_t>(expect.begin(), expect.end()));
  }
}

TEST(FileSetSourceTest, NormalizesUnsortedAndDuplicatedLines) {
  // Loading a file into memory sorts/dedups through Builder::AddSet;
  // streaming straight from disk must present the same sorted,
  // duplicate-free spans (the coverage kernels' stream invariant), so a
  // malformed line is normalized during the parse.
  std::string path = ::testing::TempDir() + "/unsorted_sets.txt";
  {
    std::ofstream out(path);
    out << "setcover 70 3\n"
        << "4 65 3 65 0\n"   // unsorted + duplicate
        << "3 10 20 30\n"    // already sorted: pass-through
        << "0\n";            // empty set
  }
  std::string error;
  auto source = FileSetSource::Open(path, &error);
  ASSERT_TRUE(source.has_value()) << error;
  std::vector<std::vector<uint32_t>> sets;
  source->Scan([&](const SetView& set) {
    sets.emplace_back(set.begin(), set.end());
  });
  ASSERT_EQ(sets.size(), 3u);
  EXPECT_EQ(sets[0], (std::vector<uint32_t>{0, 3, 65}));
  EXPECT_EQ(sets[1], (std::vector<uint32_t>{10, 20, 30}));
  EXPECT_TRUE(sets[2].empty());

  // And the streamed view agrees with the in-memory load of the file.
  auto loaded = LoadSetSystemFromFile(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  for (uint32_t s = 0; s < loaded->num_sets(); ++s) {
    const auto span = loaded->GetSet(s);
    EXPECT_EQ(sets[s], std::vector<uint32_t>(span.begin(), span.end()));
  }
}

TEST(FileSetSourceTest, RepeatedScansAreStable) {
  Rng rng(2);
  PlantedInstance inst = GeneratePlanted(
      {.num_elements = 50, .num_sets = 80, .cover_size = 4}, rng);
  std::string path = WriteTempInstance(inst.system, "rescan.txt");
  std::string error;
  auto source = FileSetSource::Open(path, &error);
  ASSERT_TRUE(source.has_value()) << error;
  size_t first = 0, second = 0;
  source->Scan([&](const SetView& set) { first += set.size(); });
  source->Scan([&](const SetView& set) { second += set.size(); });
  EXPECT_EQ(first, inst.system.total_size());
  EXPECT_EQ(first, second);
}

TEST(FileSetSourceTest, TruncatedFileFailsScanGracefully) {
  // Open only validates the header, so a file truncated mid-body is
  // first noticed during Scan — which must return false with a
  // diagnostic, stick, and never abort.
  std::string path = ::testing::TempDir() + "/truncated_body.txt";
  {
    std::ofstream out(path);
    out << "setcover 50 3\n"
        << "2 1 2\n"
        << "4 10 11\n";  // claims 4 elements, delivers 2, set 2 missing
  }
  std::string error;
  auto source = FileSetSource::Open(path, &error);
  ASSERT_TRUE(source.has_value()) << error;
  size_t visited = 0;
  EXPECT_FALSE(source->Scan([&](const SetView&) { ++visited; }));
  EXPECT_EQ(visited, 1u);  // the intact first set was dispatched
  EXPECT_FALSE(source->error().empty());
  EXPECT_NE(source->error().find("truncated"), std::string::npos)
      << source->error();
  // Sticky: later scans fail immediately without dispatching anything.
  visited = 0;
  EXPECT_FALSE(source->Scan([&](const SetView&) { ++visited; }));
  EXPECT_EQ(visited, 0u);
}

TEST(FileSetSourceTest, OutOfRangeElementFailsScanGracefully) {
  std::string path = ::testing::TempDir() + "/oob_element.txt";
  {
    std::ofstream out(path);
    out << "setcover 10 2\n"
        << "1 3\n"
        << "2 4 10\n";  // 10 == n is out of range
  }
  std::string error;
  auto source = FileSetSource::Open(path, &error);
  ASSERT_TRUE(source.has_value()) << error;
  EXPECT_FALSE(source->Scan([](const SetView&) {}));
  EXPECT_NE(source->error().find("out of range"), std::string::npos)
      << source->error();
}

TEST(FileStreamTest, StreamErrorSurfacesThroughForEachSet) {
  std::string path = ::testing::TempDir() + "/stream_error.txt";
  {
    std::ofstream out(path);
    out << "setcover 20 2\n"
        << "1 5\n";  // second set missing entirely
  }
  std::string error;
  auto source = FileSetSource::Open(path, &error);
  ASSERT_TRUE(source.has_value()) << error;
  SetStream stream(&*source);
  EXPECT_FALSE(stream.ForEachSet([](const SetView&) {}));
  EXPECT_FALSE(stream.error().empty());
}

TEST(FileStreamTest, PassCountingThroughSetStream) {
  Rng rng(3);
  PlantedInstance inst = GeneratePlanted(
      {.num_elements = 40, .num_sets = 60, .cover_size = 4}, rng);
  std::string path = WriteTempInstance(inst.system, "pass_count.txt");
  std::string error;
  auto source = FileSetSource::Open(path, &error);
  ASSERT_TRUE(source.has_value()) << error;
  SetStream stream(&*source);
  EXPECT_EQ(stream.num_elements(), 40u);
  stream.ForEachSet([](const SetView&) {});
  stream.ForEachSet([](const SetView&) {});
  EXPECT_EQ(stream.passes(), 2u);
}

TEST(FileStreamTest, IterSetCoverIdenticalFromDiskAndMemory) {
  Rng rng(4);
  PlantedOptions options;
  options.num_elements = 300;
  options.num_sets = 700;
  options.cover_size = 9;
  PlantedInstance inst = GeneratePlanted(options, rng);
  std::string path = WriteTempInstance(inst.system, "solve_match.txt");

  IterSetCoverOptions algo;
  algo.delta = 0.5;
  algo.seed = 11;

  SetStream memory_stream(&inst.system);
  StreamingResult from_memory = IterSetCover(memory_stream, algo);

  std::string error;
  auto source = FileSetSource::Open(path, &error);
  ASSERT_TRUE(source.has_value()) << error;
  SetStream disk_stream(&*source);
  StreamingResult from_disk = IterSetCover(disk_stream, algo);

  ASSERT_TRUE(from_memory.success);
  ASSERT_TRUE(from_disk.success);
  EXPECT_EQ(from_memory.cover.set_ids, from_disk.cover.set_ids);
  EXPECT_EQ(from_memory.passes, from_disk.passes);
  EXPECT_EQ(from_memory.space_words_parallel,
            from_disk.space_words_parallel);
}

}  // namespace
}  // namespace streamcover
