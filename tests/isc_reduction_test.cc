// Tests for the §5 ISC -> SetCover reduction: the paper's size
// identities, Lemma 5.5's lower bound, Lemma 5.6's explicit cover, and
// the full optimum dichotomy (Corollary 5.8) verified with the exact
// solver on small instances.

#include <gtest/gtest.h>

#include "commlb/chasing.h"
#include "commlb/isc_to_setcover.h"
#include "offline/exact.h"
#include "setsystem/cover.h"

namespace streamcover {
namespace {

class IscReductionTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t,
                                                 uint64_t>> {};

TEST_P(IscReductionTest, SizeIdentitiesHold) {
  auto [n, p, seed] = GetParam();
  Rng rng(seed);
  IscInstance isc = GenerateRandomIsc(n, p, 2, rng);
  IscReduction red = ReduceIscToSetCover(isc);
  // |U| = (2p+1) * 2n + 2p and |F| = (4p+1) n (§5 accounting).
  EXPECT_EQ(red.system.num_elements(), (2 * p + 1) * 2 * n + 2 * p);
  EXPECT_EQ(red.system.num_sets(), (4 * p + 1) * n);
  EXPECT_EQ(red.isc_value, EvaluateIsc(isc));
}

TEST_P(IscReductionTest, WitnessCoverFeasibleWithExpectedSize) {
  auto [n, p, seed] = GetParam();
  Rng rng(seed);
  IscInstance isc = GenerateRandomIsc(n, p, 2, rng);
  IscReduction red = ReduceIscToSetCover(isc);
  EXPECT_TRUE(IsFullCover(red.system, red.witness_cover));
  EXPECT_EQ(red.witness_cover.size(), red.expected_opt);
  EXPECT_EQ(red.expected_opt,
            static_cast<uint64_t>(2 * p + 1) * n + (red.isc_value ? 1 : 2));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, IscReductionTest,
    ::testing::Combine(::testing::Values(2u, 3u, 4u, 6u),
                       ::testing::Values(2u, 3u),
                       ::testing::Values(1u, 2u, 3u)));

// The heart of Theorem 5.4: OPT = (2p+1)n+1 iff ISC = 1 (Corollary 5.8),
// verified mechanically by branch-and-bound on small instances.
class IscDichotomyTest
    : public ::testing::TestWithParam<std::tuple<bool, uint64_t>> {};

TEST_P(IscDichotomyTest, ExactOptimumMatchesFormula) {
  auto [desired, seed] = GetParam();
  const uint32_t n = 3, p = 2;
  Rng rng(seed);
  IscInstance isc = GenerateIscWithOutcome(n, p, 2, desired, rng);
  IscReduction red = ReduceIscToSetCover(isc);
  ASSERT_EQ(red.isc_value, desired);

  ExactSolver solver(/*max_nodes=*/20'000'000);
  OfflineResult result = solver.Solve(red.system);
  ASSERT_TRUE(result.proven_optimal) << "raise the node budget";
  EXPECT_TRUE(IsFullCover(red.system, result.cover));
  EXPECT_EQ(result.cover.size(), red.expected_opt)
      << "ISC=" << desired << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Outcomes, IscDichotomyTest,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(1u, 2u, 3u, 4u)));

TEST(IscReductionTest, Lemma55LowerBoundViaExactSolver) {
  // Any feasible solution has >= (2p+1)n+1 sets: check that the exact
  // optimum never dips below the bound.
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed);
    IscInstance isc = GenerateRandomIsc(2, 2, 2, rng);
    IscReduction red = ReduceIscToSetCover(isc);
    ExactSolver solver(10'000'000);
    OfflineResult result = solver.Solve(red.system);
    ASSERT_TRUE(result.proven_optimal);
    EXPECT_GE(result.cover.size(),
              static_cast<uint64_t>(2 * 2 + 1) * 2 + 1);
  }
}

TEST(IscReductionTest, SetDescriptorsRoundTrip) {
  Rng rng(5);
  IscInstance isc = GenerateRandomIsc(3, 2, 2, rng);
  IscReduction red = ReduceIscToSetCover(isc);
  ASSERT_EQ(red.set_descriptors.size(), red.system.num_sets());
  for (uint32_t id = 0; id < red.system.num_sets(); ++id) {
    const auto& d = red.set_descriptors[id];
    EXPECT_EQ(red.SetId(d.kind, d.layer, d.vertex), id);
  }
}

TEST(IscReductionTest, StartEncodingOnlyInStartSet) {
  // e_p must appear in S^1_p (vertex 0) and in no other S^j_p.
  const uint32_t n = 4, p = 2;
  Rng rng(6);
  IscInstance isc = GenerateRandomIsc(n, p, 2, rng);
  IscReduction red = ReduceIscToSetCover(isc);
  const uint32_t e_p = (4 * p + 2) * n + (p - 1);  // E(p) in the layout
  uint32_t containing = 0;
  for (uint32_t j = 0; j < n; ++j) {
    uint32_t id = red.SetId(IscSetKind::kSFirst, p, j);
    if (red.system.Contains(id, e_p)) {
      ++containing;
      EXPECT_EQ(j, 0u);
    }
  }
  EXPECT_EQ(containing, 1u);
}

TEST(IscReductionTest, SecondHalfLastLayerContainsSourceOut) {
  // Every S^j_{2p} contains out(u^1_{p+1}) (the paper's construction
  // guarantee used in Lemma 5.7).
  const uint32_t n = 3, p = 2;
  Rng rng(7);
  IscInstance isc = GenerateRandomIsc(n, p, 2, rng);
  IscReduction red = ReduceIscToSetCover(isc);
  const uint32_t out_u_source = (3 * p + 2) * n + (p + 1 - 2) * n + 0;
  for (uint32_t j = 0; j < n; ++j) {
    uint32_t id = red.SetId(IscSetKind::kSSecond, p, j);
    EXPECT_TRUE(red.system.Contains(id, out_u_source)) << "j=" << j;
  }
}

}  // namespace
}  // namespace streamcover
