// Tests for the (Many vs One)-Set Disjointness substrate (§3).

#include <gtest/gtest.h>

#include "commlb/set_disjointness.h"

namespace streamcover {
namespace {

// Ground-truth disjointness against the raw instance.
bool BruteForceExistsDisjoint(const DisjointnessInstance& instance,
                              const DynamicBitset& query) {
  for (const auto& set : instance.alice_sets) {
    DynamicBitset overlap = set;
    overlap &= query;
    if (overlap.None()) return true;
  }
  return false;
}

TEST(DisjointnessInstanceTest, GeneratorDensityIsHalf) {
  Rng rng(1);
  DisjointnessInstance inst = GenerateRandomDisjointness(32, 256, rng);
  EXPECT_EQ(inst.m(), 32u);
  size_t total = 0;
  for (const auto& s : inst.alice_sets) total += s.Count();
  EXPECT_NEAR(static_cast<double>(total) / (32.0 * 256.0), 0.5, 0.05);
}

TEST(DisjointnessInstanceTest, RandomFamilyIsIntersectingWhp) {
  // Observation 3.4: for n >> log m the family is intersecting whp.
  Rng rng(2);
  DisjointnessInstance inst = GenerateRandomDisjointness(16, 128, rng);
  EXPECT_TRUE(IsIntersectingFamily(inst));
}

TEST(DisjointnessInstanceTest, DetectsNonIntersectingFamily) {
  DisjointnessInstance inst;
  inst.n = 4;
  DynamicBitset small(4), big(4);
  small.Set(1);
  big.Set(1);
  big.Set(2);
  inst.alice_sets = {small, big};  // small ⊆ big
  EXPECT_FALSE(IsIntersectingFamily(inst));
}

class NaiveProtocolTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NaiveProtocolTest, AnswersMatchBruteForce) {
  Rng rng(GetParam());
  DisjointnessInstance inst = GenerateRandomDisjointness(12, 48, rng);
  NaiveProtocol protocol;
  auto message = protocol.Encode(inst);
  EXPECT_EQ(protocol.MessageBits(inst), 12u * 48u);
  for (int trial = 0; trial < 200; ++trial) {
    DynamicBitset query(48);
    for (uint32_t e : rng.SampleWithoutReplacement(
             48, static_cast<uint32_t>(rng.UniformInt(1, 10)))) {
      query.Set(e);
    }
    EXPECT_EQ(protocol.ExistsDisjoint(message, 48, 12, query),
              BruteForceExistsDisjoint(inst, query));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NaiveProtocolTest,
                         ::testing::Values(1, 2, 3));

TEST(TruncatedProtocolTest, FullBudgetEqualsNaive) {
  Rng rng(5);
  DisjointnessInstance inst = GenerateRandomDisjointness(8, 32, rng);
  TruncatedProtocol full(8 * 32);
  NaiveProtocol naive;
  EXPECT_EQ(full.Encode(inst), naive.Encode(inst));
  EXPECT_EQ(full.MessageBits(inst), naive.MessageBits(inst));
}

TEST(TruncatedProtocolTest, ZeroBudgetSeesEmptySets) {
  Rng rng(6);
  DisjointnessInstance inst = GenerateRandomDisjointness(8, 32, rng);
  TruncatedProtocol empty(0);
  auto message = empty.Encode(inst);
  EXPECT_EQ(empty.MessageBits(inst), 0u);
  // All sets decode as empty, so every query finds a "disjoint" set.
  DynamicBitset query(32);
  query.Set(3);
  EXPECT_TRUE(empty.ExistsDisjoint(message, 32, 8, query));
}

TEST(TruncatedProtocolTest, PartialBudgetDistortsAnswers) {
  // With half the bits, at least one query must get a wrong answer
  // (statistically certain at this size).
  Rng rng(7);
  DisjointnessInstance inst = GenerateRandomDisjointness(16, 64, rng);
  TruncatedProtocol half(16 * 64 / 2);
  auto message = half.Encode(inst);
  int disagreements = 0;
  for (int trial = 0; trial < 300; ++trial) {
    DynamicBitset query(64);
    for (uint32_t e : rng.SampleWithoutReplacement(64, 6)) query.Set(e);
    if (half.ExistsDisjoint(message, 64, 16, query) !=
        BruteForceExistsDisjoint(inst, query)) {
      ++disagreements;
    }
  }
  EXPECT_GT(disagreements, 0);
}

}  // namespace
}  // namespace streamcover
