// Differential tests for the word-parallel coverage kernels: the word
// twin of every kernel must agree with the scalar reference bit for bit
// — same counts, same output sequences, same final masks — across
// word-boundary universe sizes (0, 63, 64, 65, 127), mask densities
// from empty to full, and random sorted set spans. The scalar twin IS
// the pre-kernel code shape, so agreement here is what lets every
// consumer switch paths with byte-identical covers/passes/space.

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "gtest/gtest.h"
#include "util/arena.h"
#include "util/bitset.h"
#include "util/cover_kernels.h"
#include "util/rng.h"

namespace streamcover {
namespace {

std::vector<uint32_t> RandomSortedSet(uint32_t n, size_t size, Rng& rng) {
  if (n == 0 || size == 0) return {};
  std::vector<uint32_t> elems = rng.SampleWithoutReplacement(
      n, static_cast<uint32_t>(std::min<size_t>(size, n)));
  std::sort(elems.begin(), elems.end());
  return elems;
}

DynamicBitset RandomMask(uint32_t n, double density, Rng& rng) {
  DynamicBitset mask(n);
  for (uint32_t e = 0; e < n; ++e) {
    if (rng.Bernoulli(density)) mask.Set(e);
  }
  return mask;
}

TEST(KernelPolicyTest, NamesRoundTrip) {
  EXPECT_STREQ(KernelPolicyName(KernelPolicy::kScalar), "scalar");
  EXPECT_STREQ(KernelPolicyName(KernelPolicy::kWord), "word");
  EXPECT_STREQ(KernelPolicyName(KernelPolicy::kAuto), "auto");
  EXPECT_EQ(ParseKernelPolicy("scalar"), KernelPolicy::kScalar);
  EXPECT_EQ(ParseKernelPolicy("word"), KernelPolicy::kWord);
  EXPECT_EQ(ParseKernelPolicy("auto"), KernelPolicy::kAuto);
  EXPECT_FALSE(ParseKernelPolicy("simd").has_value());
  EXPECT_FALSE(ParseKernelPolicy("avx512").has_value());
  EXPECT_FALSE(ParseKernelPolicy("").has_value());
  EXPECT_FALSE(ParseKernelPolicy("WORD").has_value());
}

TEST(KernelIsaTest, DetectedTierIsSupportedAndNamed) {
  const KernelIsa detected = DetectKernelIsa();
  const std::vector<KernelIsa> supported = SupportedKernelIsas();
  // kWord is always executable; the detected tier must be one this
  // binary can actually run.
  EXPECT_NE(std::find(supported.begin(), supported.end(), KernelIsa::kWord),
            supported.end());
  EXPECT_NE(std::find(supported.begin(), supported.end(), detected),
            supported.end());
  for (KernelIsa isa : supported) {
    const std::string name = KernelIsaName(isa);
    EXPECT_TRUE(name == "word" || name == "avx2" || name == "avx512") << name;
  }
}

TEST(DenseStorageTest, ThresholdIsOneEighthOfUniverse) {
  // Exactly 1/kDenseStorageRatio of the universe tips into dense.
  EXPECT_TRUE(ShouldStoreDense(16, 128));
  EXPECT_FALSE(ShouldStoreDense(15, 128));
  EXPECT_TRUE(ShouldStoreDense(128, 128));
  EXPECT_FALSE(ShouldStoreDense(0, 128));
  // Non-multiple universe: 1000/8 = 125.
  EXPECT_TRUE(ShouldStoreDense(125, 1000));
  EXPECT_FALSE(ShouldStoreDense(124, 1000));
  // Empty universe never stores dense (no row shape to build).
  EXPECT_FALSE(ShouldStoreDense(0, 0));
  EXPECT_FALSE(ShouldStoreDense(5, 0));
}

TEST(BitsetCSRTest, RowsAreMaskShapedBitsets) {
  BitsetCSR csr(130);
  EXPECT_EQ(csr.num_elements(), 130u);
  EXPECT_EQ(csr.words_per_row(), 3u);
  EXPECT_EQ(csr.rows(), 0u);
  EXPECT_EQ(csr.word_count(), 0u);

  const std::vector<uint32_t> a{0, 63, 64, 129};
  const std::vector<uint32_t> b{};
  EXPECT_EQ(csr.AddRow(std::span<const uint32_t>(a)), 0u);
  EXPECT_EQ(csr.AddRow(std::span<const uint32_t>(b)), 1u);
  EXPECT_EQ(csr.rows(), 2u);
  EXPECT_EQ(csr.word_count(), 6u);

  const std::span<const uint64_t> row0 = csr.Row(0);
  ASSERT_EQ(row0.size(), 3u);
  EXPECT_EQ(row0[0], (1ULL << 0) | (1ULL << 63));
  EXPECT_EQ(row0[1], 1ULL);
  EXPECT_EQ(row0[2], 2ULL);  // bit 129 = word 2, bit 1; tail above is zero
  const std::span<const uint64_t> row1 = csr.Row(1);
  for (uint64_t w : row1) EXPECT_EQ(w, 0u);
}

TEST(LiveMaskTest, ForwardsToBitset) {
  LiveMask mask(130);
  EXPECT_EQ(mask.size(), 130u);
  EXPECT_EQ(mask.WordCount(), 3u);
  EXPECT_TRUE(mask.None());
  mask.Set(0);
  mask.Set(64);
  mask.Set(129);
  EXPECT_TRUE(mask.Test(64));
  EXPECT_EQ(mask.Count(), 3u);
  EXPECT_EQ(mask.ToVector(), (std::vector<uint32_t>{0, 64, 129}));
  mask.Reset(64);
  EXPECT_FALSE(mask.Test(64));
  EXPECT_TRUE(mask.Any());

  LiveMask full(65, true);
  EXPECT_EQ(full.Count(), 65u);
  EXPECT_EQ(full.bits().Count(), 65u);
}

// One (universe, mask, set) case run through every kernel, both twins.
void ExpectTwinsAgree(const DynamicBitset& mask,
                      const std::vector<uint32_t>& elems) {
  const std::span<const uint32_t> span(elems);

  EXPECT_EQ(CountUncovered(span, mask, KernelPolicy::kScalar),
            CountUncovered(span, mask, KernelPolicy::kWord));

  std::vector<uint32_t> scalar_vec{0xDEAD};  // non-empty: appends only
  std::vector<uint32_t> word_vec{0xDEAD};
  const size_t scalar_kept =
      FilterInto(span, mask, scalar_vec, KernelPolicy::kScalar);
  const size_t word_kept =
      FilterInto(span, mask, word_vec, KernelPolicy::kWord);
  EXPECT_EQ(scalar_kept, word_kept);
  EXPECT_EQ(scalar_vec, word_vec);
  EXPECT_EQ(scalar_vec.size(), 1 + scalar_kept);

  U32Arena scalar_arena;
  scalar_arena.Push(7);  // staged content before the filter must survive
  U32Arena word_arena;
  word_arena.Push(7);
  EXPECT_EQ(FilterInto(span, mask, scalar_arena, KernelPolicy::kScalar),
            scalar_kept);
  EXPECT_EQ(FilterInto(span, mask, word_arena, KernelPolicy::kWord),
            word_kept);
  EXPECT_EQ(scalar_arena.size(), word_arena.size());
  const auto scalar_tail = scalar_arena.TailFrom(0);
  const auto word_tail = word_arena.TailFrom(0);
  EXPECT_TRUE(std::equal(scalar_tail.begin(), scalar_tail.end(),
                         word_tail.begin(), word_tail.end()));

  EXPECT_EQ(Intersects(span, mask, KernelPolicy::kScalar),
            Intersects(span, mask, KernelPolicy::kWord));

  DynamicBitset scalar_mask = mask;
  DynamicBitset word_mask = mask;
  EXPECT_EQ(MarkCovered(span, scalar_mask, KernelPolicy::kScalar),
            MarkCovered(span, word_mask, KernelPolicy::kWord));
  EXPECT_TRUE(scalar_mask == word_mask);
  // The mark count equals the pre-clear gain.
  EXPECT_EQ(MarkCovered(span, scalar_mask, KernelPolicy::kScalar), 0u);
}

TEST(CoverKernelsTest, TwinsAgreeOnWordBoundarySizes) {
  Rng rng(42);
  // Word-boundary universes: empty, one-word, exact word, word + 1 bit,
  // two words - 1 — the tail-handling cases — plus a multi-word size.
  for (uint32_t n : {0u, 1u, 63u, 64u, 65u, 127u, 128u, 1000u}) {
    DynamicBitset empty(n);
    DynamicBitset full(n, true);
    for (double density : {0.0, 0.05, 0.5, 0.95, 1.0}) {
      DynamicBitset mask = density == 0.0 ? empty
                           : density == 1.0 ? full
                                            : RandomMask(n, density, rng);
      for (size_t set_size : {size_t{0}, size_t{1}, size_t{n / 2},
                              static_cast<size_t>(n)}) {
        SCOPED_TRACE("n=" + std::to_string(n) +
                     " density=" + std::to_string(density) +
                     " set_size=" + std::to_string(set_size));
        ExpectTwinsAgree(mask, RandomSortedSet(n, set_size, rng));
      }
      // Boundary-hugging set: first/last bit of every word.
      std::vector<uint32_t> edges;
      for (uint32_t e = 0; e < n; ++e) {
        if (e % 64 == 0 || e % 64 == 63 || e + 1 == n) edges.push_back(e);
      }
      ExpectTwinsAgree(mask, edges);
    }
  }
}

TEST(CoverKernelsTest, FuzzTwinsAgree) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const uint32_t n = 1 + static_cast<uint32_t>(rng.Uniform(300));
    DynamicBitset mask = RandomMask(n, rng.Uniform(101) / 100.0, rng);
    const size_t set_size = rng.Uniform(n + 1);
    ExpectTwinsAgree(mask, RandomSortedSet(n, set_size, rng));
  }
}

TEST(CoverKernelsTest, FilterPreservesSpanOrder) {
  // The word twin must emit survivors in span order, exactly like the
  // scalar loop — downstream projection stores depend on it.
  DynamicBitset mask(200, true);
  const std::vector<uint32_t> elems{3, 64, 65, 127, 128, 199};
  std::vector<uint32_t> out;
  FilterInto(std::span<const uint32_t>(elems), mask, out,
             KernelPolicy::kWord);
  EXPECT_EQ(out, elems);
}

TEST(CoverKernelsTest, MarkCoveredReturnsPreClearGain) {
  DynamicBitset mask(128);
  mask.Set(10);
  mask.Set(63);
  mask.Set(64);
  const std::vector<uint32_t> elems{10, 11, 63, 64, 127};
  for (KernelPolicy policy : {KernelPolicy::kScalar, KernelPolicy::kWord}) {
    DynamicBitset scratch = mask;
    EXPECT_EQ(MarkCovered(std::span<const uint32_t>(elems), scratch, policy),
              3u);
    EXPECT_TRUE(scratch.None());
  }
}

TEST(CoverKernelsTest, SetViewAndLiveMaskWrappersMatchSpanKernels) {
  Rng rng(11);
  LiveMask live(RandomMask(150, 0.4, rng));
  const std::vector<uint32_t> elems = RandomSortedSet(150, 60, rng);
  const SetView view{5, std::span<const uint32_t>(elems)};

  EXPECT_EQ(CountUncovered(view, live, KernelPolicy::kWord),
            CountUncovered(view.elems, live.bits(), KernelPolicy::kScalar));
  EXPECT_EQ(Intersects(view, live, KernelPolicy::kWord),
            Intersects(view.elems, live.bits(), KernelPolicy::kScalar));

  std::vector<uint32_t> via_view;
  FilterInto(view, live, via_view, KernelPolicy::kWord);
  std::vector<uint32_t> via_span;
  FilterInto(view.elems, live.bits(), via_span, KernelPolicy::kScalar);
  EXPECT_EQ(via_view, via_span);

  LiveMask marked = live;
  const size_t gain = MarkCovered(view, marked, KernelPolicy::kWord);
  EXPECT_EQ(gain, via_view.size());
  EXPECT_EQ(marked.Count() + gain, live.Count());
}

// One (universe, mask, set) case through every dense kernel and every
// compiled SIMD tier, checked against the sparse scalar oracle over the
// same elements.
void ExpectDenseTwinsAgree(const DynamicBitset& mask,
                           const std::vector<uint32_t>& elems) {
  const uint32_t n = static_cast<uint32_t>(mask.size());
  BitsetCSR csr(n);
  const uint32_t row_id = csr.AddRow(std::span<const uint32_t>(elems));
  const std::span<const uint64_t> row = csr.Row(row_id);
  const std::span<const uint32_t> span(elems);

  const size_t oracle_count =
      CountUncovered(span, mask, KernelPolicy::kScalar);
  for (KernelPolicy policy : {KernelPolicy::kScalar, KernelPolicy::kWord,
                              KernelPolicy::kAuto}) {
    EXPECT_EQ(CountUncoveredDense(row, mask, policy), oracle_count);
    EXPECT_EQ(IntersectsDense(row, mask, policy),
              Intersects(span, mask, KernelPolicy::kScalar));

    std::vector<uint32_t> dense_out{0xDEAD};  // appends only
    EXPECT_EQ(FilterIntoDense(row, mask, dense_out, policy), oracle_count);
    std::vector<uint32_t> sparse_out{0xDEAD};
    FilterInto(span, mask, sparse_out, KernelPolicy::kScalar);
    EXPECT_EQ(dense_out, sparse_out);

    DynamicBitset dense_mask = mask;
    DynamicBitset sparse_mask = mask;
    EXPECT_EQ(MarkCoveredDense(row, dense_mask, policy),
              MarkCovered(span, sparse_mask, KernelPolicy::kScalar));
    EXPECT_TRUE(dense_mask == sparse_mask);
    EXPECT_EQ(MarkCoveredDense(row, dense_mask, policy), 0u);
  }

  // Tier-pinned variants: every SIMD path this binary compiled in must
  // match the oracle too, regardless of what DetectKernelIsa() picks.
  for (KernelIsa isa : SupportedKernelIsas()) {
    SCOPED_TRACE(std::string("isa=") + KernelIsaName(isa));
    EXPECT_EQ(CountUncoveredDenseIsa(row, mask.Words(), isa), oracle_count);
    DynamicBitset isa_mask = mask;
    DynamicBitset sparse_mask = mask;
    EXPECT_EQ(MarkCoveredDenseIsa(row, isa_mask.MutableWords(), isa),
              MarkCovered(span, sparse_mask, KernelPolicy::kScalar));
    EXPECT_TRUE(isa_mask == sparse_mask);
  }
}

TEST(DenseKernelsTest, TwinsAgreeOnWordBoundarySizes) {
  Rng rng(43);
  // Same tail-handling universes as the sparse suite; set densities
  // bracket the 1/kDenseStorageRatio storage threshold (below, at,
  // above, and the extremes) — dense rows must stay correct even for
  // sets the policy would keep sparse.
  for (uint32_t n : {0u, 1u, 63u, 64u, 65u, 127u, 128u, 1000u}) {
    DynamicBitset empty(n);
    DynamicBitset full(n, true);
    for (double mask_density : {0.0, 0.5, 1.0}) {
      DynamicBitset mask = mask_density == 0.0   ? empty
                           : mask_density == 1.0 ? full
                                                 : RandomMask(n, 0.5, rng);
      for (double set_density : {0.0, 0.06, 1.0 / kDenseStorageRatio,
                                 0.3, 1.0}) {
        const size_t set_size =
            static_cast<size_t>(set_density * static_cast<double>(n));
        SCOPED_TRACE("n=" + std::to_string(n) +
                     " mask_density=" + std::to_string(mask_density) +
                     " set_size=" + std::to_string(set_size));
        ExpectDenseTwinsAgree(mask, RandomSortedSet(n, set_size, rng));
      }
      // Boundary-hugging set: first/last bit of every word.
      std::vector<uint32_t> edges;
      for (uint32_t e = 0; e < n; ++e) {
        if (e % 64 == 0 || e % 64 == 63 || e + 1 == n) edges.push_back(e);
      }
      ExpectDenseTwinsAgree(mask, edges);
    }
  }
}

TEST(DenseKernelsTest, FuzzTwinsAgree) {
  Rng rng(8);
  for (int trial = 0; trial < 200; ++trial) {
    const uint32_t n = 1 + static_cast<uint32_t>(rng.Uniform(520));
    DynamicBitset mask = RandomMask(n, rng.Uniform(101) / 100.0, rng);
    const size_t set_size = rng.Uniform(n + 1);
    ExpectDenseTwinsAgree(mask, RandomSortedSet(n, set_size, rng));
  }
}

}  // namespace
}  // namespace streamcover
