// Differential tests for the word-parallel coverage kernels: the word
// twin of every kernel must agree with the scalar reference bit for bit
// — same counts, same output sequences, same final masks — across
// word-boundary universe sizes (0, 63, 64, 65, 127), mask densities
// from empty to full, and random sorted set spans. The scalar twin IS
// the pre-kernel code shape, so agreement here is what lets every
// consumer switch paths with byte-identical covers/passes/space.

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "gtest/gtest.h"
#include "util/arena.h"
#include "util/bitset.h"
#include "util/cover_kernels.h"
#include "util/rng.h"

namespace streamcover {
namespace {

std::vector<uint32_t> RandomSortedSet(uint32_t n, size_t size, Rng& rng) {
  if (n == 0 || size == 0) return {};
  std::vector<uint32_t> elems = rng.SampleWithoutReplacement(
      n, static_cast<uint32_t>(std::min<size_t>(size, n)));
  std::sort(elems.begin(), elems.end());
  return elems;
}

DynamicBitset RandomMask(uint32_t n, double density, Rng& rng) {
  DynamicBitset mask(n);
  for (uint32_t e = 0; e < n; ++e) {
    if (rng.Bernoulli(density)) mask.Set(e);
  }
  return mask;
}

TEST(KernelPolicyTest, NamesRoundTrip) {
  EXPECT_STREQ(KernelPolicyName(KernelPolicy::kScalar), "scalar");
  EXPECT_STREQ(KernelPolicyName(KernelPolicy::kWord), "word");
  EXPECT_EQ(ParseKernelPolicy("scalar"), KernelPolicy::kScalar);
  EXPECT_EQ(ParseKernelPolicy("word"), KernelPolicy::kWord);
  EXPECT_FALSE(ParseKernelPolicy("simd").has_value());
  EXPECT_FALSE(ParseKernelPolicy("").has_value());
  EXPECT_FALSE(ParseKernelPolicy("WORD").has_value());
}

TEST(LiveMaskTest, ForwardsToBitset) {
  LiveMask mask(130);
  EXPECT_EQ(mask.size(), 130u);
  EXPECT_EQ(mask.WordCount(), 3u);
  EXPECT_TRUE(mask.None());
  mask.Set(0);
  mask.Set(64);
  mask.Set(129);
  EXPECT_TRUE(mask.Test(64));
  EXPECT_EQ(mask.Count(), 3u);
  EXPECT_EQ(mask.ToVector(), (std::vector<uint32_t>{0, 64, 129}));
  mask.Reset(64);
  EXPECT_FALSE(mask.Test(64));
  EXPECT_TRUE(mask.Any());

  LiveMask full(65, true);
  EXPECT_EQ(full.Count(), 65u);
  EXPECT_EQ(full.bits().Count(), 65u);
}

// One (universe, mask, set) case run through every kernel, both twins.
void ExpectTwinsAgree(const DynamicBitset& mask,
                      const std::vector<uint32_t>& elems) {
  const std::span<const uint32_t> span(elems);

  EXPECT_EQ(CountUncovered(span, mask, KernelPolicy::kScalar),
            CountUncovered(span, mask, KernelPolicy::kWord));

  std::vector<uint32_t> scalar_vec{0xDEAD};  // non-empty: appends only
  std::vector<uint32_t> word_vec{0xDEAD};
  const size_t scalar_kept =
      FilterInto(span, mask, scalar_vec, KernelPolicy::kScalar);
  const size_t word_kept =
      FilterInto(span, mask, word_vec, KernelPolicy::kWord);
  EXPECT_EQ(scalar_kept, word_kept);
  EXPECT_EQ(scalar_vec, word_vec);
  EXPECT_EQ(scalar_vec.size(), 1 + scalar_kept);

  U32Arena scalar_arena;
  scalar_arena.Push(7);  // staged content before the filter must survive
  U32Arena word_arena;
  word_arena.Push(7);
  EXPECT_EQ(FilterInto(span, mask, scalar_arena, KernelPolicy::kScalar),
            scalar_kept);
  EXPECT_EQ(FilterInto(span, mask, word_arena, KernelPolicy::kWord),
            word_kept);
  EXPECT_EQ(scalar_arena.size(), word_arena.size());
  const auto scalar_tail = scalar_arena.TailFrom(0);
  const auto word_tail = word_arena.TailFrom(0);
  EXPECT_TRUE(std::equal(scalar_tail.begin(), scalar_tail.end(),
                         word_tail.begin(), word_tail.end()));

  EXPECT_EQ(Intersects(span, mask, KernelPolicy::kScalar),
            Intersects(span, mask, KernelPolicy::kWord));

  DynamicBitset scalar_mask = mask;
  DynamicBitset word_mask = mask;
  EXPECT_EQ(MarkCovered(span, scalar_mask, KernelPolicy::kScalar),
            MarkCovered(span, word_mask, KernelPolicy::kWord));
  EXPECT_TRUE(scalar_mask == word_mask);
  // The mark count equals the pre-clear gain.
  EXPECT_EQ(MarkCovered(span, scalar_mask, KernelPolicy::kScalar), 0u);
}

TEST(CoverKernelsTest, TwinsAgreeOnWordBoundarySizes) {
  Rng rng(42);
  // Word-boundary universes: empty, one-word, exact word, word + 1 bit,
  // two words - 1 — the tail-handling cases — plus a multi-word size.
  for (uint32_t n : {0u, 1u, 63u, 64u, 65u, 127u, 128u, 1000u}) {
    DynamicBitset empty(n);
    DynamicBitset full(n, true);
    for (double density : {0.0, 0.05, 0.5, 0.95, 1.0}) {
      DynamicBitset mask = density == 0.0 ? empty
                           : density == 1.0 ? full
                                            : RandomMask(n, density, rng);
      for (size_t set_size : {size_t{0}, size_t{1}, size_t{n / 2},
                              static_cast<size_t>(n)}) {
        SCOPED_TRACE("n=" + std::to_string(n) +
                     " density=" + std::to_string(density) +
                     " set_size=" + std::to_string(set_size));
        ExpectTwinsAgree(mask, RandomSortedSet(n, set_size, rng));
      }
      // Boundary-hugging set: first/last bit of every word.
      std::vector<uint32_t> edges;
      for (uint32_t e = 0; e < n; ++e) {
        if (e % 64 == 0 || e % 64 == 63 || e + 1 == n) edges.push_back(e);
      }
      ExpectTwinsAgree(mask, edges);
    }
  }
}

TEST(CoverKernelsTest, FuzzTwinsAgree) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const uint32_t n = 1 + static_cast<uint32_t>(rng.Uniform(300));
    DynamicBitset mask = RandomMask(n, rng.Uniform(101) / 100.0, rng);
    const size_t set_size = rng.Uniform(n + 1);
    ExpectTwinsAgree(mask, RandomSortedSet(n, set_size, rng));
  }
}

TEST(CoverKernelsTest, FilterPreservesSpanOrder) {
  // The word twin must emit survivors in span order, exactly like the
  // scalar loop — downstream projection stores depend on it.
  DynamicBitset mask(200, true);
  const std::vector<uint32_t> elems{3, 64, 65, 127, 128, 199};
  std::vector<uint32_t> out;
  FilterInto(std::span<const uint32_t>(elems), mask, out,
             KernelPolicy::kWord);
  EXPECT_EQ(out, elems);
}

TEST(CoverKernelsTest, MarkCoveredReturnsPreClearGain) {
  DynamicBitset mask(128);
  mask.Set(10);
  mask.Set(63);
  mask.Set(64);
  const std::vector<uint32_t> elems{10, 11, 63, 64, 127};
  for (KernelPolicy policy : {KernelPolicy::kScalar, KernelPolicy::kWord}) {
    DynamicBitset scratch = mask;
    EXPECT_EQ(MarkCovered(std::span<const uint32_t>(elems), scratch, policy),
              3u);
    EXPECT_TRUE(scratch.None());
  }
}

TEST(CoverKernelsTest, SetViewAndLiveMaskWrappersMatchSpanKernels) {
  Rng rng(11);
  LiveMask live(RandomMask(150, 0.4, rng));
  const std::vector<uint32_t> elems = RandomSortedSet(150, 60, rng);
  const SetView view{5, std::span<const uint32_t>(elems)};

  EXPECT_EQ(CountUncovered(view, live, KernelPolicy::kWord),
            CountUncovered(view.elems, live.bits(), KernelPolicy::kScalar));
  EXPECT_EQ(Intersects(view, live, KernelPolicy::kWord),
            Intersects(view.elems, live.bits(), KernelPolicy::kScalar));

  std::vector<uint32_t> via_view;
  FilterInto(view, live, via_view, KernelPolicy::kWord);
  std::vector<uint32_t> via_span;
  FilterInto(view.elems, live.bits(), via_span, KernelPolicy::kScalar);
  EXPECT_EQ(via_view, via_span);

  LiveMask marked = live;
  const size_t gain = MarkCovered(view, marked, KernelPolicy::kWord);
  EXPECT_EQ(gain, via_view.size());
  EXPECT_EQ(marked.Count() + gain, live.Count());
}

}  // namespace
}  // namespace streamcover
