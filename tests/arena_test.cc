// U32Arena and ProjectionStore: bump staging, epoch reset, and the
// SpaceTracker watermark-attribution contract — releasing an epoch must
// hand back exactly the words the epoch charged, and the epoch reset
// CHECK-fails if the attribution was not settled first (the projection
// words of one iteration can never silently leak into the next
// iteration's watermark).

#include "util/arena.h"

#include <vector>

#include "core/projection_store.h"
#include "gtest/gtest.h"
#include "stream/space_tracker.h"

namespace streamcover {
namespace {

TEST(U32ArenaTest, StagesCommitsAndRewinds) {
  U32Arena arena;
  EXPECT_TRUE(arena.empty());
  const size_t first = arena.size();
  arena.Push(5);
  arena.Push(7);
  EXPECT_EQ(arena.TailFrom(first).size(), 2u);
  EXPECT_EQ(arena.TailFrom(first)[1], 7u);

  const size_t second = arena.size();
  arena.Push(9);
  arena.RewindTo(second);  // abandoned run
  EXPECT_EQ(arena.size(), 2u);

  const auto span = arena.SpanAt(first, 2);
  EXPECT_EQ(span[0], 5u);
  EXPECT_EQ(span[1], 7u);
}

TEST(U32ArenaTest, EpochResetDropsContentAndCounts) {
  U32Arena arena;
  for (uint32_t i = 0; i < 100; ++i) arena.Push(i);
  EXPECT_EQ(arena.epoch(), 0u);
  arena.ResetEpoch();
  EXPECT_TRUE(arena.empty());
  EXPECT_EQ(arena.epoch(), 1u);
  arena.Push(42);
  EXPECT_EQ(arena.SpanAt(0, 1)[0], 42u);
}

// Simulates two Size-Test iterations: the store's words() must mirror
// the tracker charges, the release must return the footprint to exactly
// the pre-iteration level, and the peak must be the max — not the sum —
// of the two epochs' watermarks.
TEST(ProjectionStoreTest, EpochReleaseResetsWatermarkAttribution) {
  ProjectionStore store;
  SpaceTracker tracker;

  // Iteration 1: two light sets (3 + 1 words incl. id, and 2 + 1).
  size_t mark = store.StageMark();
  store.StagePush(1);
  store.StagePush(2);
  store.StagePush(3);
  tracker.Charge(store.Staged(mark).size() + 1);
  store.CommitLight(10, mark);
  mark = store.StageMark();
  store.StagePush(4);
  store.StagePush(5);
  tracker.Charge(store.Staged(mark).size() + 1);
  store.CommitLight(11, mark);
  // A heavy set stages and abandons without charging.
  mark = store.StageMark();
  store.StagePush(6);
  store.Abandon(mark);

  EXPECT_EQ(store.words(), 7u);
  EXPECT_EQ(tracker.current_words(), 7u);
  ASSERT_EQ(store.refs().size(), 2u);
  EXPECT_EQ(store.refs()[0].set_id, 10u);
  EXPECT_EQ(store.Elements(store.refs()[0]).size(), 3u);
  EXPECT_EQ(store.Elements(store.refs()[1])[0], 4u);

  store.ReleaseEpoch(tracker);
  EXPECT_EQ(store.words(), 0u);
  EXPECT_EQ(tracker.current_words(), 0u);
  store.ResetEpoch();
  EXPECT_EQ(store.refs().size(), 0u);
  EXPECT_EQ(store.epoch(), 1u);

  // Iteration 2 is smaller: the watermark attribution restarted from
  // zero, so the peak stays at iteration 1's 7 words (max, not sum).
  mark = store.StageMark();
  store.StagePush(8);
  tracker.Charge(store.Staged(mark).size() + 1);
  store.CommitLight(12, mark);
  EXPECT_EQ(store.words(), 2u);
  EXPECT_EQ(tracker.current_words(), 2u);
  EXPECT_EQ(tracker.peak_words(), 7u);
  store.ReleaseEpoch(tracker);
  store.ResetEpoch();
  EXPECT_EQ(tracker.peak_words(), 7u);
}

TEST(ProjectionStoreTest, ResetWithUnsettledWordsAborts) {
  ProjectionStore store;
  const size_t mark = store.StageMark();
  store.StagePush(1);
  store.CommitLight(0, mark);
  // Resetting the arena without releasing the epoch's words would strand
  // the tracker attribution; the store refuses.
  EXPECT_DEATH(store.ResetEpoch(), "words");
}

}  // namespace
}  // namespace streamcover
