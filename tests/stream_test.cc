// Tests for the streaming substrate: pass counting and space accounting.

#include <gtest/gtest.h>

#include "setsystem/set_system.h"
#include "stream/set_stream.h"
#include "stream/space_tracker.h"

namespace streamcover {
namespace {

SetSystem MakeSystem() {
  SetSystem::Builder b(4);
  b.AddSet({0, 1});
  b.AddSet({2});
  b.AddSet({1, 2, 3});
  return std::move(b).Build();
}

TEST(SetStreamTest, CountsPasses) {
  SetSystem s = MakeSystem();
  SetStream stream(&s);
  EXPECT_EQ(stream.passes(), 0u);
  stream.ForEachSet([](const SetView&) {});
  EXPECT_EQ(stream.passes(), 1u);
  stream.ForEachSet([](const SetView&) {});
  stream.ForEachSet([](const SetView&) {});
  EXPECT_EQ(stream.passes(), 3u);
}

TEST(SetStreamTest, VisitsSetsInStreamOrder) {
  SetSystem s = MakeSystem();
  SetStream stream(&s);
  std::vector<uint32_t> ids;
  std::vector<size_t> sizes;
  stream.ForEachSet([&](const SetView& set) {
    ids.push_back(set.id);
    sizes.push_back(set.size());
  });
  EXPECT_EQ(ids, (std::vector<uint32_t>{0, 1, 2}));
  EXPECT_EQ(sizes, (std::vector<size_t>{2, 1, 3}));
}

TEST(SetStreamTest, ExposesMetadata) {
  SetSystem s = MakeSystem();
  SetStream stream(&s);
  EXPECT_EQ(stream.num_elements(), 4u);
  EXPECT_EQ(stream.num_sets(), 3u);
}

TEST(SpaceTrackerTest, TracksCurrentAndPeak) {
  SpaceTracker t;
  t.Charge(100);
  EXPECT_EQ(t.current_words(), 100u);
  EXPECT_EQ(t.peak_words(), 100u);
  t.Charge(50);
  EXPECT_EQ(t.peak_words(), 150u);
  t.Release(120);
  EXPECT_EQ(t.current_words(), 30u);
  EXPECT_EQ(t.peak_words(), 150u);  // peak persists
  t.Charge(10);
  EXPECT_EQ(t.peak_words(), 150u);
}

TEST(SpaceTrackerTest, SetCurrentUpdatesPeak) {
  SpaceTracker t;
  t.SetCurrent(40);
  EXPECT_EQ(t.peak_words(), 40u);
  t.SetCurrent(20);
  EXPECT_EQ(t.current_words(), 20u);
  EXPECT_EQ(t.peak_words(), 40u);
  t.SetCurrent(90);
  EXPECT_EQ(t.peak_words(), 90u);
}

TEST(SpaceTrackerTest, ResetClearsEverything) {
  SpaceTracker t;
  t.Charge(77);
  t.Reset();
  EXPECT_EQ(t.current_words(), 0u);
  EXPECT_EQ(t.peak_words(), 0u);
}

TEST(SpaceTrackerTest, ParallelComposition) {
  SpaceTracker t;
  t.Charge(10);
  t.AddParallelPeak(100);
  EXPECT_EQ(t.peak_words(), 110u);
}

TEST(ScopedChargeTest, ReleasesOnDestruction) {
  SpaceTracker t;
  {
    ScopedCharge charge(&t, 64);
    EXPECT_EQ(t.current_words(), 64u);
  }
  EXPECT_EQ(t.current_words(), 0u);
  EXPECT_EQ(t.peak_words(), 64u);
}

TEST(SpaceTrackerDeathTest, OverReleaseAborts) {
  SpaceTracker t;
  t.Charge(5);
  EXPECT_DEATH(t.Release(6), "CHECK failed");
}

}  // namespace
}  // namespace streamcover
