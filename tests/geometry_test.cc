// Tests for geometric primitives, traces, range-space bridging, the
// shape stream, and the geometric generators.

#include <gtest/gtest.h>

#include <cmath>

#include "geometry/geom_generators.h"
#include "geometry/primitives.h"
#include "geometry/range_space.h"
#include "setsystem/cover.h"

namespace streamcover {
namespace {

TEST(DiskTest, ContainsCenterAndBoundary) {
  Disk d{{0, 0}, 5};
  EXPECT_TRUE(d.Contains({0, 0}));
  EXPECT_TRUE(d.Contains({3, 4}));   // on the boundary
  EXPECT_TRUE(d.Contains({5, 0}));
  EXPECT_FALSE(d.Contains({5.1, 0}));
  EXPECT_FALSE(d.Contains({4, 4}));
}

TEST(RectTest, ClosedContainment) {
  Rect r{0, 0, 10, 4};
  EXPECT_TRUE(r.Contains({0, 0}));
  EXPECT_TRUE(r.Contains({10, 4}));
  EXPECT_TRUE(r.Contains({5, 2}));
  EXPECT_FALSE(r.Contains({-0.1, 2}));
  EXPECT_FALSE(r.Contains({5, 4.1}));
  EXPECT_TRUE(r.IsValid());
  EXPECT_FALSE((Rect{3, 0, 1, 1}).IsValid());
}

TEST(FatTriangleTest, ContainsInteriorAndVertices) {
  FatTriangle t{{0, 0}, {10, 0}, {5, 8}};
  EXPECT_TRUE(t.Contains({5, 3}));
  EXPECT_TRUE(t.Contains({0, 0}));
  EXPECT_TRUE(t.Contains({10, 0}));
  EXPECT_TRUE(t.Contains({5, 8}));
  EXPECT_FALSE(t.Contains({0, 5}));
  EXPECT_FALSE(t.Contains({5, -1}));
}

TEST(FatTriangleTest, OrientationIrrelevant) {
  FatTriangle ccw{{0, 0}, {10, 0}, {5, 8}};
  FatTriangle cw{{0, 0}, {5, 8}, {10, 0}};
  for (double x = 0; x <= 10; x += 1.7) {
    for (double y = -1; y <= 9; y += 1.3) {
      EXPECT_EQ(ccw.Contains({x, y}), cw.Contains({x, y}))
          << "(" << x << "," << y << ")";
    }
  }
}

TEST(FatTriangleTest, FatnessRatio) {
  // Equilateral: longest edge a, height a*sqrt(3)/2 => ratio 2/sqrt(3).
  double h = std::sqrt(3.0) / 2.0 * 10.0;
  FatTriangle equilateral{{0, 0}, {10, 0}, {5, h}};
  EXPECT_NEAR(equilateral.FatnessRatio(), 2.0 / std::sqrt(3.0), 1e-9);
  // A degenerate sliver is arbitrarily non-fat.
  FatTriangle sliver{{0, 0}, {100, 0}, {50, 0.01}};
  EXPECT_GT(sliver.FatnessRatio(), 1000.0);
}

TEST(ShapeVariantTest, DispatchesContainment) {
  Shape disk = Disk{{0, 0}, 1};
  Shape rect = Rect{0, 0, 1, 1};
  Shape tri = FatTriangle{{0, 0}, {2, 0}, {1, 2}};
  EXPECT_TRUE(ShapeContains(disk, {0.5, 0.5}));
  EXPECT_TRUE(ShapeContains(rect, {0.5, 0.5}));
  EXPECT_TRUE(ShapeContains(tri, {1.0, 0.5}));
  EXPECT_STREQ(ShapeClassName(disk), "disk");
  EXPECT_STREQ(ShapeClassName(rect), "rect");
  EXPECT_STREQ(ShapeClassName(tri), "fat-triangle");
}

TEST(TraceTest, ComputesSortedTrace) {
  std::vector<Point> points = {{0, 0}, {2, 2}, {5, 5}, {1, 1}};
  Shape rect = Rect{0.5, 0.5, 3, 3};
  EXPECT_EQ(TraceOf(rect, points), (std::vector<uint32_t>{1, 3}));
}

TEST(RangeSpaceTest, MatchesBruteForceTraces) {
  Rng rng(3);
  GeomPlantedOptions options;
  options.num_points = 60;
  options.num_shapes = 30;
  options.cover_size = 4;
  GeomInstance inst = GeneratePlantedGeom(options, rng);
  SetSystem system = BuildRangeSpace(inst.points, inst.shapes);
  ASSERT_EQ(system.num_sets(), 30u);
  for (uint32_t s = 0; s < system.num_sets(); ++s) {
    auto set = system.GetSet(s);
    EXPECT_EQ(std::vector<uint32_t>(set.begin(), set.end()),
              TraceOf(inst.shapes[s], inst.points));
  }
}

TEST(ShapeStreamTest, CountsPasses) {
  std::vector<Shape> shapes = {Disk{{0, 0}, 1}, Rect{0, 0, 1, 1}};
  ShapeStream stream(&shapes);
  EXPECT_EQ(stream.num_shapes(), 2u);
  uint32_t visited = 0;
  stream.ForEachShape([&](uint32_t, const Shape&) { ++visited; });
  EXPECT_EQ(visited, 2u);
  EXPECT_EQ(stream.passes(), 1u);
}

class PlantedGeomTest
    : public ::testing::TestWithParam<std::tuple<ShapeClass, uint64_t>> {};

TEST_P(PlantedGeomTest, PlantedShapesCoverAllPoints) {
  auto [cls, seed] = GetParam();
  Rng rng(seed);
  GeomPlantedOptions options;
  options.num_points = 300;
  options.num_shapes = 600;
  options.cover_size = 9;
  options.shape_class = cls;
  GeomInstance inst = GeneratePlantedGeom(options, rng);
  ASSERT_EQ(inst.planted_cover.size(), 9u);
  SetSystem system = BuildRangeSpace(inst.points, inst.shapes);
  EXPECT_TRUE(IsFullCover(system, Cover{inst.planted_cover}));
}

TEST_P(PlantedGeomTest, PlantedTrianglesAreFat) {
  auto [cls, seed] = GetParam();
  if (cls != ShapeClass::kFatTriangle) GTEST_SKIP();
  Rng rng(seed);
  GeomPlantedOptions options;
  options.num_points = 100;
  options.num_shapes = 200;
  options.cover_size = 5;
  options.shape_class = cls;
  GeomInstance inst = GeneratePlantedGeom(options, rng);
  for (const Shape& shape : inst.shapes) {
    const FatTriangle* t = std::get_if<FatTriangle>(&shape);
    ASSERT_NE(t, nullptr);
    EXPECT_LE(t->FatnessRatio(), 3.0);  // near-equilateral
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapesSeeds, PlantedGeomTest,
    ::testing::Combine(::testing::Values(ShapeClass::kDisk,
                                         ShapeClass::kRect,
                                         ShapeClass::kFatTriangle),
                       ::testing::Values(1, 2, 3)));

TEST(Figure12Test, EveryRectangleContainsExactlyTwoPoints) {
  const uint32_t n = 32;
  GeomInstance inst = GenerateFigure12(n);
  const uint32_t h = n / 2;
  ASSERT_EQ(inst.points.size(), n);
  ASSERT_EQ(inst.shapes.size(), h * h + 2);
  for (uint32_t i = 0; i < h * h; ++i) {
    auto trace = TraceOf(inst.shapes[i], inst.points);
    ASSERT_EQ(trace.size(), 2u) << "rect " << i;
    EXPECT_LT(trace[0], h);        // one top point
    EXPECT_GE(trace[1], h);        // one bottom point
  }
}

TEST(Figure12Test, AllTracesDistinct) {
  const uint32_t n = 20;
  GeomInstance inst = GenerateFigure12(n);
  const uint32_t h = n / 2;
  std::set<std::vector<uint32_t>> traces;
  for (uint32_t i = 0; i < h * h; ++i) {
    traces.insert(TraceOf(inst.shapes[i], inst.points));
  }
  EXPECT_EQ(traces.size(), h * h);  // Theta(n^2) distinct shallow ranges
}

TEST(Figure12Test, PlantedCoverIsFeasible) {
  GeomInstance inst = GenerateFigure12(24);
  SetSystem system = BuildRangeSpace(inst.points, inst.shapes);
  EXPECT_TRUE(IsFullCover(system, Cover{inst.planted_cover}));
  EXPECT_EQ(inst.planted_cover.size(), 2u);
}

}  // namespace
}  // namespace streamcover
