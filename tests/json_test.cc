// util/json.h: the minimal JSON document model behind RunReport
// serialization — construction, ordered dumping, parsing, escapes, and
// clean failures on malformed input.

#include "util/json.h"

#include <limits>
#include <string>

#include "gtest/gtest.h"

namespace streamcover {
namespace {

TEST(JsonTest, ScalarConstructionAndAccess) {
  EXPECT_TRUE(JsonValue().is_null());
  EXPECT_TRUE(JsonValue(true).AsBool());
  EXPECT_DOUBLE_EQ(JsonValue(2.5).AsDouble(), 2.5);
  EXPECT_DOUBLE_EQ(JsonValue(uint64_t{42}).AsDouble(), 42.0);
  EXPECT_EQ(JsonValue("hello").AsString(), "hello");
  // Mismatched accessors fall back instead of aborting.
  EXPECT_DOUBLE_EQ(JsonValue("text").AsDouble(1.5), 1.5);
  EXPECT_FALSE(JsonValue(3.0).AsBool(false));
}

TEST(JsonTest, ObjectKeepsInsertionOrderAndOverwrites) {
  JsonValue obj = JsonValue::Object();
  obj.Set("zulu", 1);
  obj.Set("alpha", 2);
  obj.Set("zulu", 3);  // overwrite in place, order preserved
  EXPECT_EQ(obj.size(), 2u);
  EXPECT_EQ(obj.Dump(0), "{\"zulu\":3,\"alpha\":2}");
  EXPECT_DOUBLE_EQ(obj.At("zulu").AsDouble(), 3.0);
  EXPECT_EQ(obj.Find("missing"), nullptr);
  EXPECT_TRUE(obj.At("missing").is_null());
}

TEST(JsonTest, DumpCompactAndPretty) {
  JsonValue root = JsonValue::Object();
  root.Set("name", "grid");
  JsonValue numbers = JsonValue::Array();
  numbers.Append(1);
  numbers.Append(2.5);
  root.Set("numbers", std::move(numbers));
  root.Set("ok", true);
  root.Set("none", JsonValue());
  EXPECT_EQ(root.Dump(0),
            "{\"name\":\"grid\",\"numbers\":[1,2.5],\"ok\":true,"
            "\"none\":null}");
  const std::string pretty = root.Dump(2);
  EXPECT_NE(pretty.find("  \"name\": \"grid\""), std::string::npos);
  // Pretty output parses back to the same document.
  auto reparsed = JsonValue::Parse(pretty);
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->Dump(0), root.Dump(0));
}

TEST(JsonTest, StringEscapesRoundTrip) {
  JsonValue value(std::string("line\n\ttab \"quote\" back\\slash \x01"));
  const std::string dumped = value.Dump(0);
  EXPECT_EQ(dumped, "\"line\\n\\ttab \\\"quote\\\" back\\\\slash \\u0001\"");
  auto parsed = JsonValue::Parse(dumped);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->AsString(), value.AsString());
}

TEST(JsonTest, ParsesNestedDocument) {
  const std::string text = R"({
    "cells": [
      {"solver": "iter", "cover": {"mean": 8.5, "count": 4}},
      {"solver": "greedy", "cover": null}
    ],
    "seeds": [1, 2, 3],
    "ok": true
  })";
  std::string error;
  auto parsed = JsonValue::Parse(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->At("cells").size(), 2u);
  EXPECT_EQ(parsed->At("cells")[0].At("solver").AsString(), "iter");
  EXPECT_DOUBLE_EQ(parsed->At("cells")[0].At("cover").At("mean").AsDouble(),
                   8.5);
  EXPECT_TRUE(parsed->At("cells")[1].At("cover").is_null());
  EXPECT_EQ(parsed->At("seeds").size(), 3u);
}

TEST(JsonTest, ParseNumbersIncludingExponents) {
  auto parsed = JsonValue::Parse("[-1.5e3, 0.25, 1e-2, 123456789]");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ((*parsed)[0].AsDouble(), -1500.0);
  EXPECT_DOUBLE_EQ((*parsed)[1].AsDouble(), 0.25);
  EXPECT_DOUBLE_EQ((*parsed)[2].AsDouble(), 0.01);
  EXPECT_DOUBLE_EQ((*parsed)[3].AsDouble(), 123456789.0);
}

TEST(JsonTest, UnicodeEscapeDecodesToUtf8) {
  auto parsed = JsonValue::Parse("\"\\u00e9\\u2713\"");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->AsString(), "\xC3\xA9\xE2\x9C\x93");
}

TEST(JsonTest, NonBmpEmitsSurrogatePairEscapes) {
  // U+1F600 GRINNING FACE, 4-byte UTF-8 — must serialize as the
  // \uD83D\uDE00 surrogate pair, not raw bytes (RFC 8259 §7).
  const std::string emoji = "\xF0\x9F\x98\x80";
  EXPECT_EQ(JsonValue(emoji).Dump(0), "\"\\ud83d\\ude00\"");
  // BMP text keeps passing through as raw UTF-8.
  EXPECT_EQ(JsonValue(std::string("caf\xC3\xA9 \xE2\x9C\x93")).Dump(0),
            "\"caf\xC3\xA9 \xE2\x9C\x93\"");
  // Mixed content escapes only the non-BMP character.
  EXPECT_EQ(JsonValue(std::string("a") + emoji + "z").Dump(0),
            "\"a\\ud83d\\ude00z\"");
}

TEST(JsonTest, SurrogatePairEscapesParseToUtf8) {
  auto parsed = JsonValue::Parse("\"\\uD83D\\uDE00\"");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->AsString(), "\xF0\x9F\x98\x80");
  // Case-insensitive hex, and the highest plane (U+10FFFF).
  auto top = JsonValue::Parse("\"\\udbff\\udfff\"");
  ASSERT_TRUE(top.has_value());
  EXPECT_EQ(top->AsString(), "\xF4\x8F\xBF\xBF");
}

TEST(JsonTest, NonBmpRoundTripsThroughDumpAndParse) {
  JsonValue doc = JsonValue::Object();
  doc.Set("note", std::string("ok \xF0\x9F\x91\x8D done"));  // U+1F44D
  doc.Set("\xF0\x90\x80\x80key", 1);                         // U+10000
  auto parsed = JsonValue::Parse(doc.Dump(2));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->At("note").AsString(), "ok \xF0\x9F\x91\x8D done");
  EXPECT_DOUBLE_EQ(parsed->At("\xF0\x90\x80\x80key").AsDouble(), 1.0);
}

TEST(JsonTest, LoneSurrogateEscapeKeepsLegacyEncoding) {
  // A high surrogate not followed by a low one falls back to the old
  // byte-for-byte 3-byte encoding instead of failing.
  auto lone = JsonValue::Parse("\"\\uD83Dx\"");
  ASSERT_TRUE(lone.has_value());
  EXPECT_EQ(lone->AsString(), "\xED\xA0\xBDx");
  auto low_first = JsonValue::Parse("\"\\uDE00\\uD83D\"");
  ASSERT_TRUE(low_first.has_value());
  EXPECT_EQ(low_first->AsString(), "\xED\xB8\x80\xED\xA0\xBD");
}

TEST(JsonTest, MalformedInputFailsWithDiagnostic) {
  // One reused error string across calls: Parse must clear stale
  // content so each diagnostic reflects the current input.
  std::string error;
  for (const char* bad :
       {"{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2",
        "{\"a\" 1}", "[1 2]", "nul", ""}) {
    auto parsed = JsonValue::Parse(bad, &error);
    EXPECT_FALSE(parsed.has_value()) << "accepted: " << bad;
    EXPECT_NE(error.find("json parse error"), std::string::npos) << bad;
  }
  // Success after failure leaves the error empty, not stale.
  auto ok = JsonValue::Parse("[1]", &error);
  EXPECT_TRUE(ok.has_value());
  EXPECT_TRUE(error.empty());
}

TEST(JsonTest, NonFiniteNumbersSerializeAsNull) {
  JsonValue value(std::numeric_limits<double>::infinity());
  EXPECT_EQ(value.Dump(0), "null");
}

TEST(JsonTest, LargeIntegersRoundTripExactly) {
  // FormatNumber used to route every integer through %.17g, turning
  // e.g. nnz counters above 10^15 into scientific notation. int64/uint64
  // values must dump as exact decimals and parse back bit-identical.
  const uint64_t u64_max = UINT64_MAX;  // 18446744073709551615
  const int64_t i64_min = INT64_MIN;    // -9223372036854775808
  const uint64_t beyond_double = (uint64_t{1} << 53) + 1;  // 2^53 + 1

  JsonValue u(u64_max);
  EXPECT_EQ(u.Dump(0), "18446744073709551615");
  EXPECT_EQ(u.AsUint64(), u64_max);

  JsonValue i(i64_min);
  EXPECT_EQ(i.Dump(0), "-9223372036854775808");
  EXPECT_EQ(i.AsInt64(), i64_min);

  JsonValue b(beyond_double);
  EXPECT_EQ(b.Dump(0), "9007199254740993");
  EXPECT_EQ(b.AsUint64(), beyond_double);

  // Through a document: dump then re-parse recovers the exact values.
  JsonValue doc = JsonValue::Object();
  doc.Set("nnz", u64_max);
  doc.Set("offset", i64_min);
  doc.Set("edge", beyond_double);
  auto parsed = JsonValue::Parse(doc.Dump(0));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->At("nnz").AsUint64(), u64_max);
  EXPECT_EQ(parsed->At("offset").AsInt64(), i64_min);
  EXPECT_EQ(parsed->At("edge").AsUint64(), beyond_double);
  // Dump -> parse -> dump is a fixed point.
  EXPECT_EQ(parsed->Dump(0), doc.Dump(0));
}

TEST(JsonTest, RecursionDepthLimit) {
  // The parser is recursive-descent; without a depth cap a hostile
  // request line like "[[[[..." would overflow the stack. The serve
  // layer feeds network input straight into Parse, so the cap is a
  // security boundary, not a style choice.
  auto nested = [](int depth, char open, char close) {
    std::string text(static_cast<size_t>(depth), open);
    text.append(static_cast<size_t>(depth), close);
    return text;
  };

  // Exactly at the cap still parses: the top level is depth 0, so the
  // depth counter reaches kMaxDepth=64 at the 65th bracket.
  auto ok = JsonValue::Parse(nested(65, '[', ']'));
  EXPECT_TRUE(ok.has_value());

  // One past the cap is rejected with a clear reason, for arrays and
  // for objects alike.
  std::string error;
  auto deep = JsonValue::Parse(nested(66, '[', ']'), &error);
  EXPECT_FALSE(deep.has_value());
  EXPECT_NE(error.find("nesting too deep"), std::string::npos) << error;

  std::string object_text;
  for (int i = 0; i < 66; ++i) object_text += "{\"a\":";
  object_text += "1";
  for (int i = 0; i < 66; ++i) object_text += "}";
  error.clear();
  auto deep_obj = JsonValue::Parse(object_text, &error);
  EXPECT_FALSE(deep_obj.has_value());
  EXPECT_NE(error.find("nesting too deep"), std::string::npos) << error;

  // Way past the cap must fail cleanly too — this is the case that
  // would actually smash the stack without the guard.
  auto huge = JsonValue::Parse(nested(100000, '[', ']'), &error);
  EXPECT_FALSE(huge.has_value());
}

TEST(JsonTest, IntegerAccessorsSaturateAndDoublesStillFlow) {
  // Plain doubles keep their old behavior.
  JsonValue d(1.5);
  EXPECT_DOUBLE_EQ(d.AsDouble(), 1.5);
  EXPECT_EQ(d.AsInt64(), 1);

  // A uint64 too large for int64 saturates instead of wrapping.
  JsonValue u(UINT64_MAX);
  EXPECT_EQ(u.AsInt64(), INT64_MAX);
  // A negative int64 clamps to 0 as uint64.
  JsonValue n(int64_t{-5});
  EXPECT_EQ(n.AsUint64(), 0u);
  EXPECT_EQ(n.AsInt64(), -5);

  // Fractional and exponent tokens still parse as doubles.
  auto parsed = JsonValue::Parse("[1.25, 1e3, 42]");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ((*parsed)[0].AsDouble(), 1.25);
  EXPECT_DOUBLE_EQ((*parsed)[1].AsDouble(), 1000.0);
  EXPECT_EQ((*parsed)[2].AsUint64(), 42u);
}

}  // namespace
}  // namespace streamcover
