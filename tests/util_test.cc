// Unit tests for the util substrate: DynamicBitset, Rng, stats, math
// helpers, and the markdown table printer.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "util/bitset.h"
#include "util/mathutil.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace streamcover {
namespace {

TEST(DynamicBitsetTest, ConstructionAllClear) {
  DynamicBitset b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_TRUE(b.None());
  EXPECT_EQ(b.WordCount(), 3u);
}

TEST(DynamicBitsetTest, ConstructionAllSetMasksTail) {
  DynamicBitset b(70, true);
  EXPECT_EQ(b.Count(), 70u);
  EXPECT_TRUE(b.Test(69));
  // The tail bits beyond size must not be set (Count depends on it).
  b.Reset(69);
  EXPECT_EQ(b.Count(), 69u);
}

TEST(DynamicBitsetTest, SetResetTest) {
  DynamicBitset b(100);
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(99);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(63));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(99));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 4u);
  b.Reset(63);
  EXPECT_FALSE(b.Test(63));
  EXPECT_EQ(b.Count(), 3u);
}

TEST(DynamicBitsetTest, FindFirstAndNext) {
  DynamicBitset b(200);
  EXPECT_EQ(b.FindFirst(), 200u);
  b.Set(5);
  b.Set(64);
  b.Set(199);
  EXPECT_EQ(b.FindFirst(), 5u);
  EXPECT_EQ(b.FindNext(5), 64u);
  EXPECT_EQ(b.FindNext(64), 199u);
  EXPECT_EQ(b.FindNext(199), 200u);
}

TEST(DynamicBitsetTest, BitwiseOps) {
  DynamicBitset a(128), b(128);
  a.Set(1);
  a.Set(100);
  b.Set(100);
  b.Set(2);
  DynamicBitset a_and = a;
  a_and &= b;
  EXPECT_EQ(a_and.ToVector(), std::vector<uint32_t>{100});
  DynamicBitset a_or = a;
  a_or |= b;
  EXPECT_EQ(a_or.Count(), 3u);
  DynamicBitset a_not = a;
  a_not.AndNot(b);
  EXPECT_EQ(a_not.ToVector(), std::vector<uint32_t>{1});
}

TEST(DynamicBitsetTest, FindNextCrossesWordBoundary) {
  // A set bit at 63 (last of word 0) and 64 (first of word 1) must chain
  // through FindNext without skipping or double-visiting.
  DynamicBitset b(130);
  b.Set(63);
  b.Set(64);
  b.Set(129);
  EXPECT_EQ(b.FindFirst(), 63u);
  EXPECT_EQ(b.FindNext(0), 63u);
  EXPECT_EQ(b.FindNext(62), 63u);
  EXPECT_EQ(b.FindNext(63), 64u);
  EXPECT_EQ(b.FindNext(64), 129u);
  EXPECT_EQ(b.FindNext(129), b.size());
  // FindNext from positions inside an all-clear word still lands on the
  // next word's bit.
  b.Reset(64);
  EXPECT_EQ(b.FindNext(63), 129u);
}

TEST(DynamicBitsetTest, FindNextOnBoundarySizes) {
  for (size_t size : {size_t{1}, size_t{64}, size_t{65}, size_t{128}}) {
    DynamicBitset b(size);
    b.Set(size - 1);
    EXPECT_EQ(b.FindFirst(), size - 1) << "size=" << size;
    EXPECT_EQ(b.FindNext(size - 1), size) << "size=" << size;
    // Past-the-end probes must not read out of bounds or wrap.
    EXPECT_EQ(b.FindNext(size), size) << "size=" << size;
  }
}

TEST(DynamicBitsetTest, CountOnBoundarySizes) {
  for (size_t size :
       {size_t{0}, size_t{1}, size_t{64}, size_t{65}, size_t{1000}}) {
    DynamicBitset all(size, true);
    EXPECT_EQ(all.Count(), size) << "size=" << size;
    DynamicBitset none(size, false);
    EXPECT_EQ(none.Count(), 0u) << "size=" << size;
    if (size > 0) {
      none.Set(size - 1);
      EXPECT_EQ(none.Count(), 1u) << "size=" << size;
      none.SetAll();
      EXPECT_EQ(none.Count(), size) << "size=" << size;
    }
  }
}

TEST(DynamicBitsetTest, AndNotAcrossWordBoundary) {
  DynamicBitset a(65, true);
  DynamicBitset mask(65);
  mask.Set(0);
  mask.Set(63);
  mask.Set(64);
  a.AndNot(mask);
  EXPECT_EQ(a.Count(), 62u);
  EXPECT_FALSE(a.Test(0));
  EXPECT_FALSE(a.Test(63));
  EXPECT_FALSE(a.Test(64));
  EXPECT_TRUE(a.Test(1));
  EXPECT_TRUE(a.Test(62));
  // AndNot with an empty mask is the identity; with itself, clears.
  DynamicBitset empty(65);
  a.AndNot(empty);
  EXPECT_EQ(a.Count(), 62u);
  a.AndNot(a);
  EXPECT_EQ(a.Count(), 0u);
}

TEST(DynamicBitsetTest, AndNotCountWordsMatchesMaterializedAndNot) {
  for (size_t n : {size_t{1}, size_t{63}, size_t{64}, size_t{65},
                   size_t{127}, size_t{300}}) {
    DynamicBitset a(n);
    DynamicBitset b(n);
    for (size_t i = 0; i < n; i += 3) a.Set(i);
    for (size_t i = 0; i < n; i += 2) b.Set(i);
    DynamicBitset expect = a;
    expect.AndNot(b);
    EXPECT_EQ(a.AndNotCountWords(b), expect.Count()) << "n=" << n;
    // Against itself: nothing survives. Against empty: everything does.
    EXPECT_EQ(a.AndNotCountWords(a), 0u);
    EXPECT_EQ(a.AndNotCountWords(DynamicBitset(n)), a.Count());
  }
}

TEST(DynamicBitsetTest, OrIntoMatchesOrAssign) {
  DynamicBitset src(130);
  src.Set(0);
  src.Set(64);
  src.Set(129);
  DynamicBitset dst(130);
  dst.Set(1);
  dst.Set(64);
  DynamicBitset expect = dst;
  expect |= src;
  src.OrInto(dst);
  EXPECT_TRUE(dst == expect);
  EXPECT_EQ(dst.Count(), 4u);
  // src is untouched.
  EXPECT_EQ(src.Count(), 3u);
}

TEST(DynamicBitsetTest, MismatchedUniversesAreFatal) {
  // The word-parallel combiners assume both operands span the same
  // universe; a mismatch would read/write off the shorter word array,
  // so it is a CHECK (active in every build), not a debug assert. The
  // off-by-one-word case (64 vs 65) is the one a length bug would
  // actually produce.
  DynamicBitset small(64);
  DynamicBitset large(65);
  EXPECT_DEATH(small.OrInto(large), "CHECK failed");
  EXPECT_DEATH(large.OrInto(small), "CHECK failed");
  EXPECT_DEATH((void)small.AndNotCountWords(large), "CHECK failed");
  EXPECT_DEATH((void)large.AndNotCountWords(small), "CHECK failed");
  // Same word count but different logical sizes is still a mismatch.
  DynamicBitset sixty_three(63);
  EXPECT_DEATH(sixty_three.OrInto(small), "CHECK failed");
  EXPECT_DEATH((void)small.AndNotCountWords(sixty_three), "CHECK failed");
}

TEST(DynamicBitsetTest, WordsViewsExposeBackingStorage) {
  DynamicBitset b(130);
  b.Set(0);
  b.Set(64);
  b.Set(129);
  const std::span<const uint64_t> words = b.Words();
  ASSERT_EQ(words.size(), b.WordCount());
  EXPECT_EQ(words[0], 1ULL);
  EXPECT_EQ(words[1], 1ULL);
  EXPECT_EQ(words[2], 2ULL);
  // MutableWords writes are the bitset's bits.
  b.MutableWords()[0] |= 1ULL << 5;
  EXPECT_TRUE(b.Test(5));
}

TEST(DynamicBitsetTest, ForEachMatchesToVectorAcrossBoundaries) {
  DynamicBitset b(1000);
  for (size_t i : {size_t{0}, size_t{63}, size_t{64}, size_t{65},
                   size_t{127}, size_t{128}, size_t{999}}) {
    b.Set(i);
  }
  std::vector<uint32_t> visited;
  b.ForEach([&](uint32_t i) { visited.push_back(i); });
  EXPECT_EQ(visited, b.ToVector());
  EXPECT_EQ(visited.size(), b.Count());
}

TEST(DynamicBitsetTest, ForEachVisitsAscending) {
  DynamicBitset b(300);
  std::vector<uint32_t> expect = {0, 63, 64, 128, 299};
  for (uint32_t i : expect) b.Set(i);
  std::vector<uint32_t> seen;
  b.ForEach([&](uint32_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, expect);
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(8, 0);
  const int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.Uniform(8)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 8, kDraws / 80);  // within 10% of expectation
  }
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(3);
  auto sample = rng.SampleWithoutReplacement(100, 30);
  std::set<uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (uint32_t v : sample) EXPECT_LT(v, 100u);
  // Full sample returns the whole population.
  auto full = rng.SampleWithoutReplacement(10, 10);
  EXPECT_EQ(std::set<uint32_t>(full.begin(), full.end()).size(), 10u);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, ForkDiverges) {
  Rng a(9);
  Rng b = a.Fork();
  EXPECT_NE(a.Next(), b.Next());
}

TEST(RunningStatsTest, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.sum(), 40.0);
}

TEST(QuantileTest, MedianAndExtremes) {
  std::vector<double> v = {5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Quantile({}, 0.5), 0.0);
}

TEST(LogLogSlopeTest, RecoversPowerLaw) {
  std::vector<double> x, y;
  for (double v : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    x.push_back(v);
    y.push_back(3.0 * std::pow(v, 1.7));
  }
  EXPECT_NEAR(LogLogSlope(x, y), 1.7, 1e-9);
}

TEST(MathUtilTest, CeilDivAndLogs) {
  EXPECT_EQ(CeilDiv(10, 3), 4u);
  EXPECT_EQ(CeilDiv(9, 3), 3u);
  EXPECT_EQ(FloorLog2(1), 0u);
  EXPECT_EQ(FloorLog2(1023), 9u);
  EXPECT_EQ(CeilLog2(1024), 10u);
  EXPECT_EQ(CeilLog2(1025), 11u);
}

TEST(MathUtilTest, IterSetCoverSampleSizeClampsToUniverse) {
  // Huge k forces the raw size far above the universe.
  EXPECT_EQ(IterSetCoverSampleSize(1.0, 1.0, 1u << 20, 1024, 0.5, 2048, 500),
            500u);
  // Tiny parameters still produce at least 1.
  EXPECT_GE(IterSetCoverSampleSize(1e-9, 1.0, 1, 4, 0.1, 4, 100), 1u);
  // Zero universe yields zero.
  EXPECT_EQ(IterSetCoverSampleSize(1.0, 1.0, 1, 1024, 0.5, 2048, 0), 0u);
}

TEST(MathUtilTest, SampleSizeGrowsWithNDelta) {
  uint64_t small = IterSetCoverSampleSize(1.0, 1.0, 4, 1024, 0.25, 2048,
                                          1u << 30);
  uint64_t large = IterSetCoverSampleSize(1.0, 1.0, 4, 1024, 0.75, 2048,
                                          1u << 30);
  EXPECT_LT(small, large);
}

TEST(MathUtilTest, RelativeApproxSampleSizeMatchesFormula) {
  // c'/(eps^2 p) * (log|H| * log(1/p) + log(1/q)).
  double p = 0.25, eps = 0.5, logH = 10, logq = 3, c = 2.0;
  double expect = (c / (eps * eps * p)) * (logH * std::log2(1 / p) + logq);
  EXPECT_EQ(RelativeApproxSampleSize(p, eps, logH, logq, c),
            static_cast<uint64_t>(std::ceil(expect)));
}

TEST(MathUtilTest, AllowedUncoveredExactFractionsAndEdges) {
  // Full cover allows nothing uncovered.
  EXPECT_EQ(AllowedUncovered(100, 1.0), 0u);
  EXPECT_EQ(AllowedUncovered(0, 1.0), 0u);
  EXPECT_EQ(AllowedUncovered(1, 1.0), 0u);
  // The epsilon guard: 0.9 * 100 must be exactly 90 required, 10
  // allowed, despite 0.9 not being representable in binary.
  EXPECT_EQ(AllowedUncovered(100, 0.9), 10u);
  EXPECT_EQ(AllowedUncovered(10, 0.9), 1u);
  EXPECT_EQ(AllowedUncovered(1000, 0.999), 1u);
  // Fractions demanding "almost nothing" still require >= 1 element of
  // a non-empty universe (ceil of a positive product).
  EXPECT_EQ(AllowedUncovered(100, 0.001), 99u);
  // Non-terminating fractions round the required count up.
  EXPECT_EQ(AllowedUncovered(3, 0.5), 1u);   // ceil(1.5) = 2 required
  EXPECT_EQ(AllowedUncovered(7, 1.0 / 3.0), 4u);  // ceil(2.33) = 3
}

TEST(MathUtilTest, AllowedUncoveredNeverUnderflows) {
  // The seed computed n - ceil(...) in unsigned arithmetic with no
  // clamp; a fraction whose product rounds above n would wrap to ~2^64.
  // The result must stay <= n for every fraction in (0, 1].
  const uint64_t kN[] = {1, 2, 3, 10, 97, 1000, 1u << 20};
  const double kFractions[] = {1e-9, 0.1, 0.5, 0.9999999, 1.0};
  for (uint64_t n : kN) {
    for (double f : kFractions) {
      const uint64_t allowed = AllowedUncovered(n, f);
      EXPECT_LE(allowed, n) << "n=" << n << " f=" << f;
    }
  }
  // The next double below 1.0 times a large n lands within a ULP of n;
  // ceil must not push required past n and wrap the subtraction.
  const double just_below_one = std::nextafter(1.0, 0.0);
  EXPECT_LE(AllowedUncovered(uint64_t{1} << 31, just_below_one),
            uint64_t{1} << 31);
}

TEST(TableTest, PrintsMarkdown) {
  Table t({"algo", "passes"});
  t.AddRow({"greedy", Table::Fmt(1)});
  t.AddRow({"iter", Table::Fmt(2.5, 1)});
  std::ostringstream os;
  t.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("| algo   | passes |"), std::string::npos);
  EXPECT_NE(out.find("| greedy | 1      |"), std::string::npos);
  EXPECT_NE(out.find("| iter   | 2.5    |"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

}  // namespace
}  // namespace streamcover
