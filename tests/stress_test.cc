// Stress and differential tests: cross-algorithm agreement over many
// random instances, exhaustive small-universe checks for the canonical
// rectangle splitter, exact-solver differential sweeps on structured
// families, and reduction identities at larger shapes than the unit
// tests use.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "baselines/iterative_greedy.h"
#include "baselines/store_all_greedy.h"
#include "baselines/threshold_greedy.h"
#include "commlb/isc_to_setcover.h"
#include "core/iter_set_cover.h"
#include "geometry/canonical.h"
#include "offline/exact.h"
#include "offline/greedy.h"
#include "setsystem/generators.h"

namespace streamcover {
namespace {

// ---- cross-algorithm differential sweep -----------------------------

class DifferentialSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialSweepTest, AllAlgorithmsFeasibleAndOrdered) {
  Rng rng(GetParam());
  // Random regime each run: sizes, planted cover, noise.
  const uint32_t n = 100 + static_cast<uint32_t>(rng.Uniform(400));
  const uint32_t k = 3 + static_cast<uint32_t>(rng.Uniform(12));
  const uint32_t m = k + 100 + static_cast<uint32_t>(rng.Uniform(500));
  PlantedOptions options;
  options.num_elements = n;
  options.num_sets = m;
  options.cover_size = k;
  options.noise_min_size = 1;
  options.noise_max_size = 1 + n / 10;
  options.planted_overlap = rng.UniformDouble() * 0.5;
  PlantedInstance inst = GeneratePlanted(options, rng);

  size_t store_all = 0;
  {
    SetStream s(&inst.system);
    BaselineResult r = StoreAllGreedy(s);
    ASSERT_TRUE(r.success);
    ASSERT_TRUE(IsFullCover(inst.system, r.cover));
    store_all = r.cover.size();
  }
  {
    SetStream s(&inst.system);
    BaselineResult r = IterativeGreedy(s);
    ASSERT_TRUE(r.success);
    ASSERT_TRUE(IsFullCover(inst.system, r.cover));
    // Pass-per-pick greedy is offline greedy up to tie-breaking (the
    // heap pops the largest id among equal gains, the pass keeps the
    // first seen), so sizes agree within a small additive slack.
    size_t lo = std::min(r.cover.size(), store_all);
    size_t hi = std::max(r.cover.size(), store_all);
    EXPECT_LE(hi - lo, 2 + lo / 10);
  }
  {
    SetStream s(&inst.system);
    BaselineResult r = ProgressiveGreedy(s);
    ASSERT_TRUE(r.success);
    ASSERT_TRUE(IsFullCover(inst.system, r.cover));
    // Thresholded greedy loses at most ~2x per halving level.
    EXPECT_LE(r.cover.size(), 4 * store_all + 4);
  }
  {
    SetStream s(&inst.system);
    IterSetCoverOptions algo;
    algo.delta = 0.5;
    algo.seed = GetParam();
    StreamingResult r = IterSetCover(s, algo);
    ASSERT_TRUE(r.success);
    ASSERT_TRUE(IsFullCover(inst.system, r.cover));
    EXPECT_GE(r.cover.size(), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialSweepTest,
                         ::testing::Range<uint64_t>(1, 26));

// ---- exhaustive canonical-splitter check ----------------------------

// Every axis-parallel rectangle with corners snapped to the coordinate
// grid of a small point set, including duplicated x/y coordinates:
// Decompose must partition the trace exactly.
TEST(RectSplitterExhaustiveTest, AllSnappedRectanglesOnDuplicateGrid) {
  std::vector<Point> points;
  // 5x5 grid with duplicated columns and stacked points.
  const double coords[5] = {0, 1, 1, 2, 3};  // note duplicate x = 1
  for (double x : coords) {
    for (double y : coords) {
      points.push_back({x, y});
    }
  }
  RectSplitter splitter(points);
  std::vector<double> cuts = {-0.5, 0, 0.5, 1, 1.5, 2, 2.5, 3, 3.5};
  size_t checked = 0;
  for (size_t x1 = 0; x1 < cuts.size(); ++x1) {
    for (size_t x2 = x1; x2 < cuts.size(); ++x2) {
      for (size_t y1 = 0; y1 < cuts.size(); ++y1) {
        for (size_t y2 = y1; y2 < cuts.size(); ++y2) {
          Rect rect{cuts[x1], cuts[y1], cuts[x2], cuts[y2]};
          auto pieces = splitter.Decompose(rect);
          ASSERT_LE(pieces.size(), 2u);
          std::vector<uint32_t> merged;
          for (const auto& piece : pieces) {
            merged.insert(merged.end(), piece.begin(), piece.end());
          }
          std::sort(merged.begin(), merged.end());
          ASSERT_EQ(std::adjacent_find(merged.begin(), merged.end()),
                    merged.end());
          Shape shape = rect;
          ASSERT_EQ(merged, TraceOf(shape, points))
              << "rect [" << rect.x_min << "," << rect.x_max << "]x["
              << rect.y_min << "," << rect.y_max << "]";
          ++checked;
        }
      }
    }
  }
  EXPECT_GT(checked, 1000u);
}

// Canonical family boundedness: over ALL snapped rectangles with <= w
// points, the deduped family obeys the O(n w^2 log n) shape with a
// small constant.
TEST(RectSplitterExhaustiveTest, CanonicalFamilySizeBound) {
  Rng rng(3);
  std::vector<Point> points;
  const uint32_t n = 60;
  for (uint32_t i = 0; i < n; ++i) {
    points.push_back({rng.UniformDouble() * 10, rng.UniformDouble() * 10});
  }
  std::vector<double> xs, ys;
  for (const Point& p : points) {
    xs.push_back(p.x);
    ys.push_back(p.y);
  }
  std::sort(xs.begin(), xs.end());
  std::sort(ys.begin(), ys.end());

  const uint32_t w = 3;
  RectSplitter splitter(points);
  TraceStore store;
  for (size_t i = 0; i < xs.size(); ++i) {
    for (size_t j = i; j < xs.size(); ++j) {
      for (size_t a = 0; a < ys.size(); ++a) {
        for (size_t b = a; b < ys.size(); ++b) {
          Rect rect{xs[i], ys[a], xs[j], ys[b]};
          Shape shape = rect;
          auto trace = TraceOf(shape, points);
          if (trace.empty() || trace.size() > w) continue;
          for (const auto& piece : splitter.Decompose(rect)) {
            store.Insert(piece);
          }
        }
      }
    }
  }
  // O(n w^2 log n) with constant 1 is already generous here.
  const double bound = static_cast<double>(n) * w * w *
                       std::log2(static_cast<double>(n));
  EXPECT_LE(static_cast<double>(store.size()), bound);
  EXPECT_GT(store.size(), 0u);
}

// ---- exact solver differential sweeps --------------------------------

class ExactDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExactDifferentialTest, SparseInstancesOptimalAtPartitionSize) {
  // Disjoint-block sparse instances have OPT exactly ceil(n/s) when the
  // only full-size sets are the partition blocks.
  Rng rng(GetParam());
  PlantedInstance inst = GenerateDisjointBlocks(60, 6, 30, rng);
  OfflineResult r = ExactSolver().Solve(inst.system);
  ASSERT_TRUE(r.proven_optimal);
  EXPECT_EQ(r.cover.size(), 6u);
}

TEST_P(ExactDifferentialTest, ExactAlwaysWithinGreedy) {
  Rng rng(GetParam() * 17);
  SetSystem system = GenerateUniformRandom(
      24, 14 + static_cast<uint32_t>(rng.Uniform(6)), 0.25, rng);
  if (!IsCoverable(system)) GTEST_SKIP();
  OfflineResult greedy = GreedySolver().Solve(system);
  OfflineResult exact = ExactSolver().Solve(system);
  ASSERT_TRUE(exact.proven_optimal);
  EXPECT_LE(exact.cover.size(), greedy.cover.size());
  EXPECT_TRUE(IsFullCover(system, exact.cover));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactDifferentialTest,
                         ::testing::Range<uint64_t>(1, 16));

// ---- reduction identities at larger shapes ---------------------------

class IscShapeSweepTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>> {};

TEST_P(IscShapeSweepTest, IdentitiesAndWitnessAtScale) {
  auto [n, p] = GetParam();
  Rng rng(n * 31 + p);
  IscInstance isc = GenerateRandomIsc(n, p, 3, rng);
  IscReduction red = ReduceIscToSetCover(isc);
  EXPECT_EQ(red.system.num_elements(), (2 * p + 1) * 2 * n + 2 * p);
  EXPECT_EQ(red.system.num_sets(), (4 * p + 1) * n);
  EXPECT_TRUE(IsFullCover(red.system, red.witness_cover));
  EXPECT_EQ(red.witness_cover.size(), red.expected_opt);
  // Sparsity structure: R/T sets have exactly 2 elements.
  for (uint32_t id = 0; id < red.system.num_sets(); ++id) {
    const auto& d = red.set_descriptors[id];
    if (d.kind == IscSetKind::kR || d.kind == IscSetKind::kT ||
        d.kind == IscSetKind::kTMerged) {
      EXPECT_EQ(red.system.SetSize(id), 2u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, IscShapeSweepTest,
    ::testing::Combine(::testing::Values(8u, 32u, 128u),
                       ::testing::Values(2u, 4u, 8u)));

// ---- long-haul determinism -------------------------------------------

TEST(DeterminismStressTest, FullPipelineStableAcrossRuns) {
  for (int run = 0; run < 3; ++run) {
    Rng rng(99);
    PlantedOptions options;
    options.num_elements = 500;
    options.num_sets = 1000;
    options.cover_size = 10;
    PlantedInstance inst = GeneratePlanted(options, rng);
    SetStream stream(&inst.system);
    IterSetCoverOptions algo;
    algo.delta = 0.34;
    algo.seed = 5;
    StreamingResult r = IterSetCover(stream, algo);
    static std::vector<uint32_t> reference;
    if (run == 0) {
      reference = r.cover.set_ids;
    } else {
      EXPECT_EQ(r.cover.set_ids, reference);
    }
  }
}

}  // namespace
}  // namespace streamcover
