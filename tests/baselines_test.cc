// Tests for the Figure 1.1 baseline algorithms: feasibility, the
// advertised pass counts, and the space/approximation envelopes that
// distinguish the rows.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/dimv14.h"
#include "baselines/iterative_greedy.h"
#include "baselines/store_all_greedy.h"
#include "baselines/threshold_greedy.h"
#include "core/iter_set_cover.h"
#include "setsystem/generators.h"
#include "util/mathutil.h"

namespace streamcover {
namespace {

PlantedInstance MakeInstance(uint64_t seed, uint32_t n = 500,
                             uint32_t m = 1200, uint32_t k = 10) {
  Rng rng(seed);
  PlantedOptions options;
  options.num_elements = n;
  options.num_sets = m;
  options.cover_size = k;
  options.noise_max_size = n / 20;
  return GeneratePlanted(options, rng);
}

TEST(StoreAllGreedyTest, OnePassFullSpace) {
  PlantedInstance inst = MakeInstance(1);
  SetStream stream(&inst.system);
  BaselineResult r = StoreAllGreedy(stream);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(IsFullCover(inst.system, r.cover));
  EXPECT_EQ(r.passes, 1u);
  // Space ~ total input size (the O(mn) row).
  EXPECT_GE(r.space_words, inst.system.total_size());
}

TEST(IterativeGreedyTest, OnePassPerPickedSet) {
  PlantedInstance inst = MakeInstance(2);
  SetStream stream(&inst.system);
  BaselineResult r = IterativeGreedy(stream);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(IsFullCover(inst.system, r.cover));
  EXPECT_EQ(r.passes, r.cover.size());
  // O(n) space: far below the input size.
  EXPECT_LT(r.space_words, inst.system.total_size() / 4);
}

TEST(IterativeGreedyTest, MatchesOfflineGreedyQuality) {
  // Same picks as offline greedy => same ln n approximation behaviour.
  PlantedInstance inst = GenerateGreedyAdversarial(5);
  SetStream stream(&inst.system);
  BaselineResult r = IterativeGreedy(stream);
  ASSERT_TRUE(r.success);
  EXPECT_GE(r.cover.size(), 5u);  // falls for the columns, like greedy
}

TEST(IterativeGreedyTest, StopsOnUncoverableElements) {
  SetSystem::Builder b(4);
  b.AddSet({0, 1});
  SetSystem system = std::move(b).Build();  // 2, 3 uncoverable
  SetStream stream(&system);
  BaselineResult r = IterativeGreedy(stream);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.cover.set_ids, (std::vector<uint32_t>{0}));
}

TEST(ProgressiveGreedyTest, LogPassesLinearSpace) {
  PlantedInstance inst = MakeInstance(3);
  SetStream stream(&inst.system);
  BaselineResult r = ProgressiveGreedy(stream);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(IsFullCover(inst.system, r.cover));
  EXPECT_LE(r.passes, CeilLog2(inst.system.num_elements()) + 2);
  EXPECT_LT(r.space_words, inst.system.total_size() / 4);
}

TEST(ProgressiveGreedyTest, ApproximationWithinLogFactor) {
  PlantedInstance inst = MakeInstance(4);
  SetStream stream(&inst.system);
  BaselineResult r = ProgressiveGreedy(stream);
  ASSERT_TRUE(r.success);
  double log_n = std::log2(inst.system.num_elements());
  EXPECT_LE(r.cover.size(),
            2.0 * log_n * inst.planted_cover.size());
}

class ThresholdCoverTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ThresholdCoverTest, PPassesAndPolynomialApprox) {
  const uint32_t p = GetParam();
  PlantedInstance inst = MakeInstance(5);
  SetStream stream(&inst.system);
  BaselineResult r = PolynomialThresholdCover(stream, p);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(IsFullCover(inst.system, r.cover));
  EXPECT_EQ(r.passes, p);
  // (p+1) n^{1/(p+1)} * OPT bound with slack 3 for the pointer finish.
  double n = inst.system.num_elements();
  double bound = 3.0 * (p + 1) * std::pow(n, 1.0 / (p + 1)) *
                 static_cast<double>(inst.planted_cover.size());
  EXPECT_LE(static_cast<double>(r.cover.size()), bound);
}

INSTANTIATE_TEST_SUITE_P(Passes, ThresholdCoverTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(ThresholdCoverTest, Er14OnePassSqrtBehaviour) {
  // p = 1 is the [ER14] regime: one pass, O~(n) space.
  PlantedInstance inst = MakeInstance(6, /*n=*/900, /*m=*/1800, /*k=*/9);
  SetStream stream(&inst.system);
  BaselineResult r = PolynomialThresholdCover(stream, 1);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.passes, 1u);
  EXPECT_LT(r.space_words, inst.system.total_size());
}

TEST(Dimv14Test, CoversWithExponentialPasses) {
  PlantedInstance inst = MakeInstance(7, /*n=*/800, /*m=*/1600, /*k=*/10);
  SetStream stream(&inst.system);
  Dimv14Options options;
  options.delta = 0.34;
  BaselineResult r = Dimv14Cover(stream, options);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(IsFullCover(inst.system, r.cover));
  EXPECT_GE(r.passes, 1u);
}

TEST(Dimv14Test, MorePassesThanIterSetCoverAtSmallDelta) {
  // The reproduced phenomenon: DIMV14's pass count explodes as delta
  // shrinks while iterSetCover stays at 2/delta.
  PlantedInstance inst = MakeInstance(8, /*n=*/2000, /*m=*/2500, /*k=*/12);
  const double delta = 0.2;

  SetStream s1(&inst.system);
  Dimv14Options dimv;
  dimv.delta = delta;
  BaselineResult dimv_result = Dimv14Cover(s1, dimv);

  SetStream s2(&inst.system);
  IterSetCoverOptions iter;
  iter.delta = delta;
  StreamingResult iter_result = IterSetCover(s2, iter);

  ASSERT_TRUE(dimv_result.success);
  ASSERT_TRUE(iter_result.success);
  EXPECT_GT(dimv_result.passes, iter_result.passes);
}

TEST(BaselineDeterminismTest, SameSeedSameCover) {
  PlantedInstance inst = MakeInstance(9);
  Dimv14Options options;
  options.delta = 0.5;
  options.seed = 5;
  SetStream s1(&inst.system), s2(&inst.system);
  BaselineResult a = Dimv14Cover(s1, options);
  BaselineResult b = Dimv14Cover(s2, options);
  EXPECT_EQ(a.cover.set_ids, b.cover.set_ids);
}

TEST(BaselineEdgeCaseTest, SingleCoveringSet) {
  SetSystem::Builder b(8);
  b.AddSet({0, 1, 2, 3, 4, 5, 6, 7});
  b.AddSet({0});
  SetSystem system = std::move(b).Build();
  {
    SetStream stream(&system);
    EXPECT_EQ(StoreAllGreedy(stream).cover.size(), 1u);
  }
  {
    SetStream stream(&system);
    EXPECT_EQ(IterativeGreedy(stream).cover.size(), 1u);
  }
  {
    SetStream stream(&system);
    EXPECT_EQ(ProgressiveGreedy(stream).cover.size(), 1u);
  }
  {
    SetStream stream(&system);
    BaselineResult r = PolynomialThresholdCover(stream, 2);
    EXPECT_TRUE(r.success);
  }
}

}  // namespace
}  // namespace streamcover
