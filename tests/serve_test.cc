// In-process tests for the serve core: request parsing, the bounded
// queue's queue_full rejection, deadline semantics (expired-in-queue
// and fired-mid-solve), cooperative cancellation through RunSolver,
// stats accounting, and graceful shutdown.
//
// Everything runs against CoverageServer directly — the same object
// tools/streamcover_serve.cc wraps in sockets — so these tests cover
// the tentpole contract without touching the network.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/instance.h"
#include "core/solver_registry.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "setsystem/binary_io.h"
#include "setsystem/generators.h"
#include "util/cancel_token.h"
#include "util/json.h"
#include "util/rng.h"

namespace streamcover {
namespace {

constexpr const char kSmallInstance[] = "planted:n=300,m=600,k=8";

/// Blocks for the single response line of one request.
std::string Call(CoverageServer& server, const std::string& line) {
  std::promise<std::string> done;
  std::future<std::string> response = done.get_future();
  server.HandleLine(line,
                    [&done](const std::string& text) { done.set_value(text); });
  return response.get();
}

JsonValue ParseResponse(const std::string& line) {
  std::string error;
  auto value = JsonValue::Parse(line, &error);
  EXPECT_TRUE(value.has_value()) << error << " in: " << line;
  return value.has_value() ? std::move(*value) : JsonValue();
}

std::string ErrorCode(const JsonValue& response) {
  return response.At("error").At("code").AsString();
}

// ---------------------------------------------------------------------------
// CancelToken semantics (the deadline primitive under everything else).
// ---------------------------------------------------------------------------

TEST(CancelTokenTest, ManualCancelLatches) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.has_deadline());
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.cancelled());  // monotonic
}

TEST(CancelTokenTest, ZeroBudgetIsAlreadyExpired) {
  CancelToken token = CancelToken::AfterMillis(0);
  EXPECT_TRUE(token.has_deadline());
  EXPECT_TRUE(token.cancelled());
}

TEST(CancelTokenTest, FutureDeadlineFiresAfterElapsing) {
  CancelToken token = CancelToken::AfterMillis(30);
  EXPECT_FALSE(token.cancelled());
  EXPECT_GT(token.RemainingMillis(), 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_TRUE(token.cancelled());
  EXPECT_LT(token.RemainingMillis(), 0);
}

TEST(CancelTokenTest, FiredTokenUnwindsRunSolverWithDeadlineError) {
  // The integration the serve layer depends on: a pre-fired token makes
  // any streaming solver return exactly kDeadlineExceededError.
  Rng rng(11);
  PlantedOptions options;
  options.num_elements = 200;
  options.num_sets = 400;
  options.cover_size = 6;
  Instance instance = Instance::FromPlanted(GeneratePlanted(options, rng),
                                            {"cancel-test", "generated"});
  CancelToken token;
  token.Cancel();
  RunOptions run_options;
  run_options.cancel = &token;
  RunResult result = RunSolver("iter", instance, run_options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error, kDeadlineExceededError);
}

// ---------------------------------------------------------------------------
// Request parsing.
// ---------------------------------------------------------------------------

TEST(ServeProtocolTest, ParsesFullSolveRequest) {
  ServeRequest request;
  std::string error;
  ASSERT_TRUE(ParseServeRequest(
      R"({"op":"solve","id":"r7","instance":"planted:n=100",)"
      R"("solver":"iter","deadline_ms":250,"seed":3,"delta":0.25,)"
      R"("include_cover":true,"threads":2})",
      &request, &error))
      << error;
  EXPECT_EQ(request.op, "solve");
  EXPECT_EQ(request.id, "r7");
  EXPECT_EQ(request.instance, "planted:n=100");
  EXPECT_EQ(request.solver, "iter");
  ASSERT_TRUE(request.deadline_ms.has_value());
  EXPECT_EQ(*request.deadline_ms, 250);
  EXPECT_EQ(request.seed, 3u);
  EXPECT_DOUBLE_EQ(request.delta, 0.25);
  EXPECT_TRUE(request.include_cover);
  EXPECT_EQ(request.threads, 2u);
}

TEST(ServeProtocolTest, RejectsMalformedAndWrongTypes) {
  ServeRequest request;
  std::string error;
  // Not JSON at all.
  EXPECT_FALSE(ParseServeRequest("solve please", &request, &error));
  // A string where a number belongs is a hard error, not a default.
  EXPECT_FALSE(ParseServeRequest(
      R"({"op":"solve","instance":"x","solver":"iter","seed":"three"})",
      &request, &error));
  // solve without instance/solver is incomplete.
  EXPECT_FALSE(ParseServeRequest(R"({"op":"solve"})", &request, &error));
  // Unknown op.
  EXPECT_FALSE(ParseServeRequest(R"({"op":"dance"})", &request, &error));
}

// ---------------------------------------------------------------------------
// Server behavior.
// ---------------------------------------------------------------------------

TEST(ServeTest, SolveRoundTripAndStats) {
  ServerOptions options;
  options.workers = 2;
  CoverageServer server(options);
  server.Start();

  JsonValue ping = ParseResponse(Call(server, R"({"op":"ping"})"));
  EXPECT_TRUE(ping.At("ok").AsBool());

  JsonValue solve = ParseResponse(Call(
      server, std::string(R"({"op":"solve","id":"s1","instance":")") +
                  kSmallInstance + R"(","solver":"iter"})"));
  EXPECT_TRUE(solve.At("ok").AsBool()) << solve.Dump(0);
  EXPECT_EQ(solve.At("id").AsString(), "s1");
  EXPECT_GT(solve.At("cover_size").AsUint64(), 0u);
  EXPECT_GT(solve.At("duration_ms").AsDouble(), 0);

  // A second solve on the same instance hits the cache.
  ParseResponse(Call(
      server, std::string(R"({"op":"solve","instance":")") +
                  kSmallInstance + R"(","solver":"store_all_greedy"})"));

  JsonValue stats = ParseResponse(Call(server, R"({"op":"stats"})"));
  ASSERT_TRUE(stats.At("ok").AsBool());
  const JsonValue& requests = stats.At("requests");
  EXPECT_GE(requests.At("ok").AsUint64(), 2u);  // the two solves
  EXPECT_GE(requests.At("received").AsUint64(), 4u);
  EXPECT_EQ(stats.At("cache").At("misses").AsUint64(), 1u);
  EXPECT_GE(stats.At("cache").At("hits").AsUint64(), 1u);
  EXPECT_GE(stats.At("latency").At("count").AsUint64(), 2u);

  server.Shutdown();
}

TEST(ServeTest, UnknownInstanceAndSolverAreDistinctErrors) {
  ServerOptions options;
  options.workers = 1;
  CoverageServer server(options);
  server.Start();

  JsonValue not_found = ParseResponse(Call(
      server, R"({"op":"solve","instance":"nope:n=1","solver":"iter"})"));
  EXPECT_FALSE(not_found.At("ok").AsBool());
  EXPECT_EQ(ErrorCode(not_found), kErrNotFound);

  JsonValue bad_solver = ParseResponse(
      Call(server, std::string(R"({"op":"solve","instance":")") +
                       kSmallInstance + R"(","solver":"nope"})"));
  EXPECT_FALSE(bad_solver.At("ok").AsBool());
  EXPECT_EQ(ErrorCode(bad_solver), kErrSolveFailed);

  JsonValue bad = ParseResponse(Call(server, "not json"));
  EXPECT_EQ(ErrorCode(bad), kErrBadRequest);

  server.Shutdown();
}

TEST(ServeProtocolTest, ShardsFieldIsStrictlyTyped) {
  ServeRequest request;
  std::string error;
  // Valid: integer in range.
  ASSERT_TRUE(ParseServeRequest(
      R"({"op":"solve","instance":"x","solver":"sharded_greedi",)"
      R"("shards":4})",
      &request, &error))
      << error;
  EXPECT_EQ(request.shards, 4u);
  // Absent: keeps the default.
  ASSERT_TRUE(ParseServeRequest(
      R"({"op":"solve","instance":"x","solver":"iter"})", &request, &error));
  EXPECT_EQ(request.shards, 1u);
  // A string is a type error, not a silent default.
  EXPECT_FALSE(ParseServeRequest(
      R"({"op":"solve","instance":"x","solver":"iter","shards":"4"})",
      &request, &error));
  // Non-integer number.
  EXPECT_FALSE(ParseServeRequest(
      R"({"op":"solve","instance":"x","solver":"iter","shards":2.5})",
      &request, &error));
  // Out of range.
  EXPECT_FALSE(ParseServeRequest(
      R"({"op":"solve","instance":"x","solver":"iter","shards":0})",
      &request, &error));
  EXPECT_FALSE(ParseServeRequest(
      R"({"op":"solve","instance":"x","solver":"iter","shards":-3})",
      &request, &error));
  EXPECT_FALSE(ParseServeRequest(
      R"({"op":"solve","instance":"x","solver":"iter","shards":4096})",
      &request, &error));
}

TEST(ServeProtocolTest, ScanThreadsFieldIsStrictlyTyped) {
  ServeRequest request;
  std::string error;
  // Valid: integer in range.
  ASSERT_TRUE(ParseServeRequest(
      R"({"op":"solve","instance":"x","solver":"iter",)"
      R"("scan_threads":4})",
      &request, &error))
      << error;
  EXPECT_EQ(request.scan_threads, 4u);
  // Absent: keeps the serial default.
  ASSERT_TRUE(ParseServeRequest(
      R"({"op":"solve","instance":"x","solver":"iter"})", &request, &error));
  EXPECT_EQ(request.scan_threads, 1u);
  // A string is a type error, not a silent default.
  EXPECT_FALSE(ParseServeRequest(
      R"({"op":"solve","instance":"x","solver":"iter","scan_threads":"4"})",
      &request, &error));
  // Non-integer number.
  EXPECT_FALSE(ParseServeRequest(
      R"({"op":"solve","instance":"x","solver":"iter","scan_threads":2.5})",
      &request, &error));
  // Out of range.
  EXPECT_FALSE(ParseServeRequest(
      R"({"op":"solve","instance":"x","solver":"iter","scan_threads":0})",
      &request, &error));
  EXPECT_FALSE(ParseServeRequest(
      R"({"op":"solve","instance":"x","solver":"iter","scan_threads":-2})",
      &request, &error));
  EXPECT_FALSE(ParseServeRequest(
      R"({"op":"solve","instance":"x","solver":"iter","scan_threads":257})",
      &request, &error));
  EXPECT_NE(error.find("scan_threads"), std::string::npos) << error;
}

TEST(ServeProtocolTest, KernelFieldIsStrictlyTyped) {
  ServeRequest request;
  std::string error;
  // All three policy spellings parse.
  ASSERT_TRUE(ParseServeRequest(
      R"({"op":"solve","instance":"x","solver":"iter","kernel":"scalar"})",
      &request, &error))
      << error;
  EXPECT_EQ(request.kernel, KernelPolicy::kScalar);
  ASSERT_TRUE(ParseServeRequest(
      R"({"op":"solve","instance":"x","solver":"iter","kernel":"auto"})",
      &request, &error));
  EXPECT_EQ(request.kernel, KernelPolicy::kAuto);
  // Absent: keeps the word default.
  ASSERT_TRUE(ParseServeRequest(
      R"({"op":"solve","instance":"x","solver":"iter"})", &request, &error));
  EXPECT_EQ(request.kernel, KernelPolicy::kWord);
  // Unknown spellings (ISA names are runtime-detected, never
  // request-pinned) and wrong types are hard errors.
  EXPECT_FALSE(ParseServeRequest(
      R"({"op":"solve","instance":"x","solver":"iter","kernel":"avx512"})",
      &request, &error));
  EXPECT_NE(error.find("kernel"), std::string::npos);
  EXPECT_FALSE(ParseServeRequest(
      R"({"op":"solve","instance":"x","solver":"iter","kernel":7})",
      &request, &error));
}

TEST(ServeTest, StatsReportsDetectedKernelIsa) {
  ServerOptions options;
  options.workers = 1;
  CoverageServer server(options);
  server.Start();
  JsonValue stats = ParseResponse(Call(server, R"({"op":"stats"})"));
  ASSERT_TRUE(stats.At("ok").AsBool());
  const std::string isa = stats.At("kernel_isa").AsString();
  EXPECT_TRUE(isa == "word" || isa == "avx2" || isa == "avx512") << isa;
  server.Shutdown();
}

TEST(ServeTest, ShardedSolveSurfacesShardAndMergeCounters) {
  ServerOptions options;
  options.workers = 1;
  CoverageServer server(options);
  server.Start();

  JsonValue solve = ParseResponse(Call(
      server, std::string(R"({"op":"solve","id":"sh1","instance":")") +
                  kSmallInstance +
                  R"(","solver":"sharded_greedi","shards":4})"));
  ASSERT_TRUE(solve.At("ok").AsBool()) << solve.Dump(0);
  EXPECT_TRUE(solve.At("success").AsBool());
  ASSERT_EQ(solve.At("shards").size(), 4u);
  uint64_t sets_seen = 0;
  for (size_t s = 0; s < 4; ++s) {
    sets_seen += solve.At("shards")[s].At("sets_seen").AsUint64();
  }
  EXPECT_EQ(sets_seen, 600u);  // every set of m=600 lands in one shard
  EXPECT_GT(solve.At("merge").At("candidates").AsUint64(), 0u);
  EXPECT_EQ(solve.At("merge").At("picked").AsUint64(),
            solve.At("cover_size").AsUint64());

  JsonValue stats = ParseResponse(Call(server, R"({"op":"stats"})"));
  const JsonValue& shard = stats.At("shard");
  EXPECT_EQ(shard.At("runs").AsUint64(), 1u);
  EXPECT_EQ(shard.At("shards_max").AsUint64(), 4u);
  EXPECT_GT(shard.At("candidates").AsUint64(), 0u);
  EXPECT_GT(shard.At("merge_picked").AsUint64(), 0u);

  server.Shutdown();
}

TEST(ServeTest, ShardsRejectedBeforeAdmission) {
  ServerOptions options;
  options.workers = 1;
  CoverageServer server(options);
  server.Start();

  JsonValue zero = ParseResponse(Call(
      server, std::string(R"({"op":"solve","instance":")") +
                  kSmallInstance +
                  R"(","solver":"sharded_greedi","shards":0})"));
  EXPECT_FALSE(zero.At("ok").AsBool());
  EXPECT_EQ(ErrorCode(zero), kErrBadRequest);

  JsonValue typed = ParseResponse(Call(
      server, std::string(R"({"op":"solve","instance":")") +
                  kSmallInstance +
                  R"(","solver":"sharded_greedi","shards":"two"})"));
  EXPECT_FALSE(typed.At("ok").AsBool());
  EXPECT_EQ(ErrorCode(typed), kErrBadRequest);

  JsonValue stats = ParseResponse(Call(server, R"({"op":"stats"})"));
  EXPECT_GE(stats.At("requests").At("bad_request").AsUint64(), 2u);

  server.Shutdown();
}

TEST(ServeTest, MalformedInstanceSpecIsBadRequestNotNotFound) {
  ServerOptions options;
  options.workers = 1;
  CoverageServer server(options);
  server.Start();

  // Duplicate key: the spec itself is broken — bad_request.
  JsonValue dup = ParseResponse(Call(
      server,
      R"({"op":"solve","instance":"planted:n=300,n=400","solver":"iter"})"));
  EXPECT_FALSE(dup.At("ok").AsBool());
  EXPECT_EQ(ErrorCode(dup), kErrBadRequest) << dup.Dump(0);

  // Unparseable value: also bad_request.
  JsonValue bad_value = ParseResponse(Call(
      server,
      R"({"op":"solve","instance":"planted:n=abc","solver":"iter"})"));
  EXPECT_FALSE(bad_value.At("ok").AsBool());
  EXPECT_EQ(ErrorCode(bad_value), kErrBadRequest) << bad_value.Dump(0);

  // A bare unknown name is still not_found — nothing malformed about it.
  JsonValue unknown = ParseResponse(Call(
      server, R"({"op":"solve","instance":"no_such","solver":"iter"})"));
  EXPECT_FALSE(unknown.At("ok").AsBool());
  EXPECT_EQ(ErrorCode(unknown), kErrNotFound) << unknown.Dump(0);

  JsonValue stats = ParseResponse(Call(server, R"({"op":"stats"})"));
  EXPECT_GE(stats.At("requests").At("bad_request").AsUint64(), 2u);
  EXPECT_GE(stats.At("requests").At("not_found").AsUint64(), 1u);

  server.Shutdown();
}

TEST(ServeTest, ExpiredInQueueDeadlineAnswersWithoutRunning) {
  ServerOptions options;
  options.workers = 1;
  CoverageServer server(options);
  server.Start();

  // deadline_ms:0 means the budget was spent before admission; the
  // request must be answered deadline_exceeded without solving.
  JsonValue response = ParseResponse(Call(
      server, std::string(R"({"op":"solve","instance":")") +
                  kSmallInstance +
                  R"(","solver":"iter","deadline_ms":0})"));
  EXPECT_FALSE(response.At("ok").AsBool());
  EXPECT_EQ(ErrorCode(response), kErrDeadlineExceeded);

  // Nothing ran: no cache entry was ever loaded.
  JsonValue stats = ParseResponse(Call(server, R"({"op":"stats"})"));
  EXPECT_EQ(stats.At("cache").At("misses").AsUint64(), 0u);

  server.Shutdown();
}

TEST(ServeTest, DeadlineFiresMidSleepCooperatively) {
  ServerOptions options;
  options.workers = 1;
  CoverageServer server(options);
  server.Start();

  // A 5s sleep under a 50ms deadline must come back deadline_exceeded
  // in far less than 5s — the worker polls the token between slices.
  const auto start = std::chrono::steady_clock::now();
  JsonValue response = ParseResponse(
      Call(server, R"({"op":"sleep","sleep_ms":5000,"deadline_ms":50})"));
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_FALSE(response.At("ok").AsBool());
  EXPECT_EQ(ErrorCode(response), kErrDeadlineExceeded);
  EXPECT_LT(elapsed_ms, 2000) << "cancellation was not cooperative";

  server.Shutdown();
}

TEST(ServeTest, DeadlineDuringPipelinedDecodeIsDeadlineExceeded) {
  // A disk-backed binary instance big enough that a 1 ms budget expires
  // while the pipelined decode workers are still chewing: they poll the
  // token mid-chunk and the request unwinds with the bare deadline
  // code, never a partial answer or a hang.
  Rng rng(31);
  PlantedOptions popts;
  popts.num_elements = 20000;
  popts.num_sets = 30000;
  popts.cover_size = 12;
  PlantedInstance inst = GeneratePlanted(popts, rng);
  const std::string bin = ::testing::TempDir() + "/serve_pipe.bin";
  std::string werror;
  ASSERT_TRUE(WriteBinarySetSystem(inst.system, bin, &werror)) << werror;

  ServerOptions options;
  options.workers = 1;
  CoverageServer server(options);
  server.Start();

  JsonValue late = ParseResponse(Call(
      server, std::string(R"({"op":"solve","instance":")") + bin +
                  R"(","solver":"iterative_greedy","scan_threads":4,)"
                  R"("deadline_ms":1})"));
  EXPECT_FALSE(late.At("ok").AsBool()) << late.Dump(0);
  EXPECT_EQ(ErrorCode(late), kErrDeadlineExceeded);

  // The same instance with no deadline solves fine pipelined, and the
  // stats surface the scan section.
  JsonValue ok = ParseResponse(Call(
      server, std::string(R"({"op":"solve","instance":")") + bin +
                  R"(","solver":"store_all_greedy","scan_threads":4})"));
  EXPECT_TRUE(ok.At("ok").AsBool()) << ok.Dump(0);

  JsonValue stats = ParseResponse(Call(server, R"({"op":"stats"})"));
  ASSERT_TRUE(stats.At("ok").AsBool());
  EXPECT_GE(stats.At("scan").At("pipelined_requests").AsUint64(), 1u);
  EXPECT_EQ(stats.At("scan").At("scan_threads_max").AsUint64(), 4u);

  server.Shutdown();
}

TEST(ServeTest, FullQueueRejectsImmediately) {
  ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 2;
  CoverageServer server(options);
  server.Start();

  // One request occupies the worker, two fill the queue; the rest must
  // be rejected queue_full inline (not buffered, not blocked).
  constexpr int kBlockers = 3;
  constexpr int kOverflow = 4;
  std::vector<std::future<std::string>> slow;
  std::vector<std::promise<std::string>> slow_done(kBlockers);
  auto post_blocker = [&](int i) {
    slow.push_back(slow_done[i].get_future());
    auto* promise = &slow_done[i];
    server.HandleLine(R"({"op":"sleep","sleep_ms":400})",
                      [promise](const std::string& text) {
                        promise->set_value(text);
                      });
  };
  // First blocker, then wait for the worker to dequeue it so the two
  // that follow sit in the queue and fill it exactly.
  post_blocker(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  post_blocker(1);
  post_blocker(2);

  // The worker is busy for another ~300ms and the queue is full: every
  // overflow request must come back queue_full inline, in microseconds.
  int rejected = 0;
  for (int i = 0; i < kOverflow; ++i) {
    JsonValue response =
        ParseResponse(Call(server, R"({"op":"sleep","sleep_ms":400})"));
    if (!response.At("ok").AsBool() &&
        ErrorCode(response) == kErrQueueFull) {
      ++rejected;
    }
  }
  EXPECT_GE(rejected, kOverflow - 1) << "queue did not shed load";

  // Control ops bypass the queue even while it is full.
  JsonValue stats = ParseResponse(Call(server, R"({"op":"stats"})"));
  ASSERT_TRUE(stats.At("ok").AsBool());
  EXPECT_GE(stats.At("requests").At("queue_full").AsUint64(),
            static_cast<uint64_t>(rejected));

  for (auto& f : slow) {
    JsonValue done = ParseResponse(f.get());
    EXPECT_TRUE(done.At("ok").AsBool());
  }
  server.Shutdown();
}

TEST(ServeTest, ShutdownDrainsAdmittedWorkThenRejects) {
  ServerOptions options;
  options.workers = 2;
  CoverageServer server(options);
  server.Start();

  // Admit work, then shut down while it is still running: the admitted
  // requests must complete, not be dropped.
  std::vector<std::future<std::string>> admitted;
  std::vector<std::promise<std::string>> done(4);
  for (int i = 0; i < 4; ++i) {
    admitted.push_back(done[i].get_future());
    auto* promise = &done[i];
    server.HandleLine(R"({"op":"sleep","sleep_ms":100})",
                      [promise](const std::string& text) {
                        promise->set_value(text);
                      });
  }
  server.Shutdown();
  for (auto& f : admitted) {
    JsonValue response = ParseResponse(f.get());
    EXPECT_TRUE(response.At("ok").AsBool()) << response.Dump(0);
  }

  // After the drain, new work is refused with shutting_down.
  JsonValue refused =
      ParseResponse(Call(server, R"({"op":"sleep","sleep_ms":1})"));
  EXPECT_FALSE(refused.At("ok").AsBool());
  EXPECT_EQ(ErrorCode(refused), kErrShuttingDown);
}

TEST(ServeTest, DefaultDeadlineAppliesToBareRequests) {
  ServerOptions options;
  options.workers = 1;
  options.default_deadline_ms = 40;
  CoverageServer server(options);
  server.Start();

  JsonValue response = ParseResponse(
      Call(server, R"({"op":"sleep","sleep_ms":5000})"));
  EXPECT_FALSE(response.At("ok").AsBool());
  EXPECT_EQ(ErrorCode(response), kErrDeadlineExceeded);

  server.Shutdown();
}

}  // namespace
}  // namespace streamcover
