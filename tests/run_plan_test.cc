// RunPlan / RunReport: grid shape (solvers × workloads × seeds ×
// trials), bit-for-bit seed determinism, per-cell failure recording, and
// the JSON round-trip that the perf trajectory and CI smoke step rely
// on.

#include "core/run_plan.h"

#include <string>

#include "gtest/gtest.h"
#include "util/json.h"

namespace streamcover {
namespace {

RunPlan SmallPlan() {
  RunPlan plan;
  for (const char* solver : {"iter", "store_all_greedy"}) {
    SolverSpec spec;
    spec.solver = solver;
    spec.options.sample_constant = 0.05;
    plan.solvers.push_back(std::move(spec));
  }
  for (const char* workload : {"planted", "sparse", "zipf"}) {
    WorkloadSpec spec;
    spec.workload = workload;
    spec.params.n = 150;
    spec.params.m = 300;
    spec.params.k = 5;
    plan.workloads.push_back(std::move(spec));
  }
  plan.seeds = {1, 2};
  plan.trials = 2;
  return plan;
}

TEST(RunPlanTest, GridShapeAndRunCounts) {
  RunPlan plan = SmallPlan();
  RunReport report = ExecutePlan(plan);
  // One cell per (workload, solver) pair, workload-major.
  ASSERT_EQ(report.cells.size(), 6u);
  EXPECT_EQ(report.cells[0].workload, "planted");
  EXPECT_EQ(report.cells[0].solver, "iter");
  EXPECT_EQ(report.cells[1].solver, "store_all_greedy");
  EXPECT_EQ(report.cells[2].workload, "sparse");
  for (const RunCell& cell : report.cells) {
    // 2 seeds x 2 trials per cell, all succeeding on these tiny planted
    // families.
    EXPECT_EQ(cell.runs, 4u) << cell.solver << " x " << cell.workload;
    EXPECT_EQ(cell.failures, 0u);
    EXPECT_EQ(cell.successes, 4u);
    EXPECT_EQ(cell.cover.count(), 4u);
    EXPECT_GT(cell.cover.mean(), 0.0);
    EXPECT_GE(cell.ratio.mean(), 1.0)
        << "cover can never beat the planted bound's role as OPT proxy "
           "by being zero";
    EXPECT_GT(cell.passes.mean(), 0.0);
    EXPECT_GE(cell.sequential_scans.mean(), cell.passes.mean());
    // Shared-scan collapse: the repository pays at most the sequential
    // total and at least the per-guess max — and for the multiplexed
    // solvers exactly the max.
    EXPECT_GT(cell.physical_scans.mean(), 0.0);
    EXPECT_LE(cell.physical_scans.mean(), cell.sequential_scans.mean());
    EXPECT_DOUBLE_EQ(cell.physical_scans.mean(), cell.passes.mean());
    EXPECT_GT(cell.space_words.mean(), 0.0);
  }
}

TEST(RunPlanTest, CellLookupByLabels) {
  RunReport report = ExecutePlan(SmallPlan());
  const RunCell* cell = report.FindCell("iter", "zipf");
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->solver, "iter");
  EXPECT_EQ(cell->workload, "zipf");
  EXPECT_EQ(report.FindCell("iter", "no-such-workload"), nullptr);
}

TEST(RunPlanTest, SeedDeterminism) {
  // Same plan => identical reports up to wall-clock timing: every
  // algorithmic cell (cover, ratio, passes, scans, space) must be
  // byte-identical; only the measured duration_ms stats may differ
  // between executions.
  auto without_timing = [](const RunReport& report) {
    JsonValue doc = report.ToJson();
    JsonValue cells = JsonValue::Array();
    for (size_t i = 0; i < report.cells.size(); ++i) {
      JsonValue cell = doc.At("cells")[i];
      cell.Set("duration_ms", JsonValue());
      cells.Append(std::move(cell));
    }
    doc.Set("cells", std::move(cells));
    return doc.Dump(2);
  };

  RunPlan plan = SmallPlan();
  RunReport first = ExecutePlan(plan);
  RunReport second = ExecutePlan(plan);
  EXPECT_EQ(without_timing(first), without_timing(second));
  // Timing was measured on every run even though it is excluded from
  // the determinism contract.
  EXPECT_EQ(first.cells[0].duration_ms.count(), first.cells[0].runs);
  EXPECT_GT(first.cells[0].duration_ms.mean(), 0.0);

  // A different seed axis changes at least the randomized solver cells.
  plan.seeds = {3, 4};
  RunReport shifted = ExecutePlan(plan);
  EXPECT_NE(without_timing(first), without_timing(shifted));
}

TEST(RunPlanTest, GeometricMismatchRecordedPerCell) {
  RunPlan plan;
  SolverSpec solver;
  solver.solver = "geom";
  plan.solvers.push_back(std::move(solver));
  WorkloadSpec workload;
  workload.workload = "planted";
  workload.params.n = 100;
  workload.params.m = 200;
  workload.params.k = 4;
  plan.workloads.push_back(std::move(workload));
  plan.seeds = {1};
  plan.trials = 2;

  RunReport report = ExecutePlan(plan);
  ASSERT_EQ(report.cells.size(), 1u);
  const RunCell& cell = report.cells[0];
  EXPECT_EQ(cell.runs, 0u);
  EXPECT_EQ(cell.failures, 2u);
  ASSERT_FALSE(cell.errors.empty());
  EXPECT_NE(cell.errors[0].find("geometric"), std::string::npos);
  // The identical per-trial error is deduplicated.
  EXPECT_EQ(cell.errors.size(), 1u);
}

TEST(RunPlanTest, UnknownWorkloadRecordedPerCell) {
  RunPlan plan;
  SolverSpec solver;
  solver.solver = "store_all_greedy";
  plan.solvers.push_back(std::move(solver));
  WorkloadSpec workload;
  workload.workload = "no-such-family";
  plan.workloads.push_back(std::move(workload));

  RunReport report = ExecutePlan(plan);
  ASSERT_EQ(report.cells.size(), 1u);
  EXPECT_EQ(report.cells[0].runs, 0u);
  EXPECT_EQ(report.cells[0].failures, 1u);
  ASSERT_FALSE(report.cells[0].errors.empty());
  EXPECT_NE(report.cells[0].errors[0].find("no-such-family"),
            std::string::npos);
}

TEST(RunPlanTest, JsonRoundTrip) {
  RunReport report = ExecutePlan(SmallPlan());
  const std::string text = report.ToJsonString();

  std::string error;
  std::optional<JsonValue> parsed = JsonValue::Parse(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->At("schema").AsString(), "streamcover.run_report.v4");
  EXPECT_EQ(parsed->At("solvers").size(), 2u);
  EXPECT_EQ(parsed->At("workloads").size(), 3u);
  EXPECT_EQ(parsed->At("seeds").size(), 2u);
  EXPECT_EQ(parsed->At("trials").AsDouble(), 2.0);
  ASSERT_EQ(parsed->At("cells").size(), report.cells.size());

  // Spot-check a cell: the serialized aggregates match the in-memory
  // report exactly.
  const JsonValue& cell0 = parsed->At("cells")[0];
  EXPECT_EQ(cell0.At("solver").AsString(), report.cells[0].solver);
  EXPECT_EQ(cell0.At("workload").AsString(), report.cells[0].workload);
  EXPECT_DOUBLE_EQ(cell0.At("cover").At("mean").AsDouble(),
                   report.cells[0].cover.mean());
  EXPECT_DOUBLE_EQ(cell0.At("physical_scans").At("mean").AsDouble(),
                   report.cells[0].physical_scans.mean());
  EXPECT_DOUBLE_EQ(cell0.At("space_words").At("max").AsDouble(),
                   report.cells[0].space_words.max());
  EXPECT_EQ(cell0.At("runs").AsDouble(), 4.0);

  // v4: the gain-maintenance stats are present on every cell (recorded
  // for every ok() run — zero-valued for gainless solvers, never
  // omitted).
  for (size_t i = 0; i < parsed->At("cells").size(); ++i) {
    const JsonValue& cell = parsed->At("cells")[i];
    ASSERT_TRUE(cell.At("gain_updates").is_object()) << i;
    ASSERT_TRUE(cell.At("sets_touched").is_object()) << i;
    EXPECT_EQ(cell.At("gain_updates").At("count").AsDouble(), 4.0);
    EXPECT_EQ(cell.At("sets_touched").At("count").AsDouble(), 4.0);
  }
  // The greedy family reports real maintenance work, not zeros: both
  // solvers of SmallPlan end in an exact-greedy loop over the
  // transposed index.
  EXPECT_GT(cell0.At("gain_updates").At("mean").AsDouble(), 0.0);
  EXPECT_GT(cell0.At("sets_touched").At("mean").AsDouble(), 0.0);

  // Dump -> Parse -> Dump is a fixed point.
  EXPECT_EQ(parsed->Dump(2), text);
}

TEST(RunPlanTest, SummaryTableHasOneRowPerCell) {
  RunReport report = ExecutePlan(SmallPlan());
  EXPECT_EQ(report.SummaryTable().num_rows(), report.cells.size());
}

TEST(RunPlanTest, ProjectionProbeThroughRegistry) {
  // The iter_guess option runs iterSetCover's single guess through the
  // registry and surfaces stored-projection words — the bench_tradeoff
  // probe path.
  RunPlan plan;
  SolverSpec probe;
  probe.solver = "iter";
  probe.label = "probe";
  probe.options.sample_constant = 0.05;
  probe.options.iter_guess = 8;
  plan.solvers.push_back(std::move(probe));
  WorkloadSpec workload;
  workload.workload = "planted";
  workload.params.n = 256;
  workload.params.m = 512;
  workload.params.k = 8;
  plan.workloads.push_back(std::move(workload));

  RunReport report = ExecutePlan(plan);
  ASSERT_EQ(report.cells.size(), 1u);
  EXPECT_EQ(report.cells[0].failures, 0u);
  EXPECT_GT(report.cells[0].projection_words.mean(), 0.0);
}

}  // namespace
}  // namespace streamcover
