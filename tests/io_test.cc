// Round-trip and malformed-input tests for the text serialization.

#include <gtest/gtest.h>

#include <sstream>

#include "setsystem/generators.h"
#include "setsystem/io.h"

namespace streamcover {
namespace {

TEST(IoTest, RoundTripPreservesInstance) {
  Rng rng(11);
  PlantedOptions options;
  options.num_elements = 80;
  options.num_sets = 150;
  options.cover_size = 6;
  PlantedInstance inst = GeneratePlanted(options, rng);

  std::stringstream buffer;
  WriteSetSystem(inst.system, buffer);
  std::string error;
  auto loaded = ReadSetSystem(buffer, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  ASSERT_EQ(loaded->num_elements(), inst.system.num_elements());
  ASSERT_EQ(loaded->num_sets(), inst.system.num_sets());
  for (uint32_t s = 0; s < inst.system.num_sets(); ++s) {
    auto a = inst.system.GetSet(s);
    auto b = loaded->GetSet(s);
    EXPECT_EQ(std::vector<uint32_t>(a.begin(), a.end()),
              std::vector<uint32_t>(b.begin(), b.end()));
  }
}

TEST(IoTest, EmptySystemRoundTrips) {
  SetSystem::Builder b(0);
  SetSystem s = std::move(b).Build();
  std::stringstream buffer;
  WriteSetSystem(s, buffer);
  std::string error;
  auto loaded = ReadSetSystem(buffer, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->num_sets(), 0u);
}

TEST(IoTest, RejectsBadMagic) {
  std::stringstream buffer("wrong 3 1\n1 0\n");
  std::string error;
  EXPECT_FALSE(ReadSetSystem(buffer, &error).has_value());
  EXPECT_NE(error.find("bad magic"), std::string::npos);
}

TEST(IoTest, RejectsOutOfRangeElement) {
  std::stringstream buffer("setcover 3 1\n1 7\n");
  std::string error;
  EXPECT_FALSE(ReadSetSystem(buffer, &error).has_value());
  EXPECT_NE(error.find("out of range"), std::string::npos);
}

TEST(IoTest, RejectsTruncatedBody) {
  std::stringstream buffer("setcover 3 2\n2 0 1\n3 0");
  std::string error;
  EXPECT_FALSE(ReadSetSystem(buffer, &error).has_value());
  EXPECT_NE(error.find("truncated"), std::string::npos);
}

TEST(IoTest, RejectsEmptyInput) {
  std::stringstream buffer("");
  std::string error;
  EXPECT_FALSE(ReadSetSystem(buffer, &error).has_value());
}

TEST(IoTest, FileHelpersRoundTrip) {
  SetSystem::Builder b(4);
  b.AddSet({0, 3});
  b.AddSet({1, 2});
  SetSystem s = std::move(b).Build();
  const std::string path = ::testing::TempDir() + "/io_test_instance.txt";
  ASSERT_TRUE(SaveSetSystemToFile(s, path));
  std::string error;
  auto loaded = LoadSetSystemFromFile(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->num_sets(), 2u);
}

TEST(IoTest, LoadMissingFileFails) {
  std::string error;
  EXPECT_FALSE(
      LoadSetSystemFromFile("/nonexistent/really/not.txt", &error)
          .has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace streamcover
