// Parity pins for the columnar hot path (CSR SetViews + projection
// arena). The refactor moved the physical representation of sets and
// projections — the logical algorithm, its RNG draws, and its
// SpaceTracker charges must be unchanged. Two layers of pinning:
//
//  * a from-scratch vector-path reference: the seed GuessConsumer
//    transcribed with per-set scratch vectors and per-projection vector
//    storage, driven directly over SetStream passes. The library's
//    arena-backed single guess must match it byte for byte — cover ids,
//    success, peak space, and the per-iteration projection-word
//    watermarks Lemma 2.2 charges;
//  * thread-count invariance through the registry: `iter` on planted,
//    zipf, and file-backed workloads at --threads 1 and 4 must agree on
//    covers, space_words, and projection_words_peak exactly;
//  * kernel-policy invariance: every registered non-geometric solver
//    run with --kernel scalar, word, and auto (auto adds runtime SIMD
//    dispatch for the dense kernels) must agree on covers, passes,
//    scans, and space exactly, at --threads 1 and 4 (the threaded path
//    additionally exercises the scheduler's batch prefilter).

#include <cmath>
#include <cstdio>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/instance.h"
#include "core/iter_set_cover.h"
#include "core/solver_registry.h"
#include "core/workload_registry.h"
#include "gtest/gtest.h"
#include "offline/greedy.h"
#include "setsystem/io.h"
#include "stream/sampling.h"
#include "stream/space_tracker.h"
#include "util/bitset.h"
#include "util/check.h"
#include "util/mathutil.h"
#include "util/rng.h"

namespace streamcover {
namespace {

// The seed-era single-guess iterSetCover: fresh std::vector per stored
// projection, vector-of-pairs projection table, sequential two-pass
// iterations over the stream. Charges its SpaceTracker identically to
// the historical implementation; every divergence between this and the
// arena path is a parity break.
StreamingResult VectorPathSingleGuess(SetStream& stream, uint64_t k,
                                      const IterSetCoverOptions& options) {
  SC_CHECK(!options.final_sweep && !options.early_exit);
  GreedySolver default_solver;
  const OfflineSolver& offline =
      options.offline != nullptr ? *options.offline : default_solver;
  const uint32_t n = stream.num_elements();
  const uint32_t m = stream.num_sets();
  const double rho = offline.Rho(n);
  const uint64_t iterations =
      static_cast<uint64_t>(std::ceil(1.0 / options.delta) + 1e-9);
  const uint64_t allowed_uncovered =
      AllowedUncovered(n, options.coverage_fraction);
  Rng rng(options.seed ^ (k * 0x9e3779b97f4a7c15ULL));

  SpaceTracker tracker;
  const uint64_t passes_before = stream.passes();
  DynamicBitset uncovered(n, true);
  tracker.Charge(uncovered.WordCount());
  Cover sol;
  std::vector<IterSetCoverIterationDiag> diagnostics;

  for (uint64_t iter = 0; iter < iterations; ++iter) {
    const uint64_t uncovered_count = uncovered.Count();
    if (uncovered_count <= allowed_uncovered) break;
    IterSetCoverIterationDiag diag;
    diag.iteration = static_cast<uint32_t>(iter + 1);
    diag.uncovered_before = uncovered_count;

    const uint64_t sample_size = IterSetCoverSampleSize(
        options.sample_constant, rho, k, n, options.delta, m,
        uncovered_count);
    std::vector<uint32_t> sample =
        SampleFromBitset(uncovered, sample_size, rng);
    diag.sample_size = sample.size();
    tracker.Charge(sample.size());

    DynamicBitset live(n);
    for (uint32_t e : sample) live.Set(e);
    tracker.Charge(live.WordCount());

    const double threshold = options.size_test_multiplier *
                             static_cast<double>(sample.size()) /
                             static_cast<double>(k);

    // Pass 1 (Size Test) with the seed representation: scratch filter
    // vector, fresh vector per stored projection.
    std::vector<uint32_t> heavy_picks;
    std::vector<std::pair<uint32_t, std::vector<uint32_t>>> projections;
    uint64_t projection_words = 0;
    std::vector<uint32_t> scratch;
    stream.ForEachSet([&](const SetView& set) {
      scratch.clear();
      for (uint32_t e : set.elems) {
        if (live.Test(e)) scratch.push_back(e);
      }
      if (scratch.empty()) return;
      if (static_cast<double>(scratch.size()) >= threshold) {
        heavy_picks.push_back(set.id);
        tracker.Charge(1);
        for (uint32_t e : scratch) live.Reset(e);
      } else {
        projection_words += scratch.size() + 1;
        tracker.Charge(scratch.size() + 1);
        projections.emplace_back(set.id, scratch);
      }
    });
    diag.heavy_picked = heavy_picks.size();
    diag.projection_words = projection_words;
    for (uint32_t id : heavy_picks) sol.set_ids.push_back(id);

    // Offline solve on the sampled sub-instance.
    std::vector<uint32_t> live_elems;
    for (uint32_t e : sample) {
      if (live.Test(e)) live_elems.push_back(e);
    }
    size_t picked_before_offline = sol.set_ids.size();
    if (!live_elems.empty()) {
      std::unordered_map<uint32_t, uint32_t> reindex;
      reindex.reserve(live_elems.size() * 2);
      for (uint32_t i = 0; i < live_elems.size(); ++i) {
        reindex[live_elems[i]] = i;
      }
      SetSystem::Builder sub_builder(
          static_cast<uint32_t>(live_elems.size()));
      std::vector<uint32_t> original_ids;
      for (auto& [id, proj] : projections) {
        std::vector<uint32_t> mapped;
        mapped.reserve(proj.size());
        for (uint32_t e : proj) {
          auto it = reindex.find(e);
          if (it != reindex.end()) mapped.push_back(it->second);
        }
        if (mapped.empty()) continue;
        sub_builder.AddSet(mapped);
        original_ids.push_back(id);
      }
      SetSystem sub = std::move(sub_builder).Build();
      OfflineResult offline_result = offline.Solve(sub);
      const size_t take = offline_result.cover.size();
      diag.offline_picked = take;
      for (size_t i = 0; i < take; ++i) {
        sol.set_ids.push_back(original_ids[offline_result.cover.set_ids[i]]);
        tracker.Charge(1);
      }
    }
    tracker.Release(projection_words);
    tracker.Release(sample.size());
    tracker.Release(live.WordCount());

    // Pass 2: recompute the residual from this iteration's picks.
    DynamicBitset picked_this_iter(m);
    for (size_t i = picked_before_offline - diag.heavy_picked;
         i < sol.set_ids.size(); ++i) {
      picked_this_iter.Set(sol.set_ids[i]);
    }
    tracker.Charge(picked_this_iter.WordCount());
    stream.ForEachSet([&](const SetView& set) {
      if (!picked_this_iter.Test(set.id)) return;
      for (uint32_t e : set.elems) uncovered.Reset(e);
    });
    tracker.Release(picked_this_iter.WordCount());
    diag.uncovered_after = uncovered.Count();
    diagnostics.push_back(diag);
  }

  StreamingResult result;
  result.success = uncovered.Count() <= allowed_uncovered;
  tracker.Release(uncovered.WordCount());
  sol.Deduplicate();
  result.cover = std::move(sol);
  result.passes = stream.passes() - passes_before;
  result.sequential_scans = result.passes;
  result.physical_scans = result.passes;
  result.space_words_parallel = tracker.peak_words();
  result.space_words_max_guess = tracker.peak_words();
  result.winning_k = k;
  result.diagnostics = std::move(diagnostics);
  return result;
}

IterSetCoverOptions ParityOptions(uint64_t seed = 7) {
  IterSetCoverOptions options;
  options.sample_constant = 0.05;
  options.seed = seed;
  return options;
}

void ExpectGuessParity(const StreamingResult& arena,
                       const StreamingResult& reference) {
  EXPECT_EQ(arena.cover.set_ids, reference.cover.set_ids);
  EXPECT_EQ(arena.success, reference.success);
  EXPECT_EQ(arena.passes, reference.passes);
  EXPECT_EQ(arena.space_words_max_guess, reference.space_words_max_guess);
  ASSERT_EQ(arena.diagnostics.size(), reference.diagnostics.size());
  for (size_t i = 0; i < arena.diagnostics.size(); ++i) {
    EXPECT_EQ(arena.diagnostics[i].projection_words,
              reference.diagnostics[i].projection_words)
        << "iteration " << i + 1;
    EXPECT_EQ(arena.diagnostics[i].sample_size,
              reference.diagnostics[i].sample_size)
        << "iteration " << i + 1;
    EXPECT_EQ(arena.diagnostics[i].heavy_picked,
              reference.diagnostics[i].heavy_picked)
        << "iteration " << i + 1;
    EXPECT_EQ(arena.diagnostics[i].offline_picked,
              reference.diagnostics[i].offline_picked)
        << "iteration " << i + 1;
  }
}

Instance MakeRegistered(const char* family, uint64_t seed) {
  WorkloadParams params;
  params.n = 300;
  params.m = 600;
  params.k = 6;
  params.seed = seed;
  std::string error;
  std::optional<Instance> instance = MakeWorkload(family, params, &error);
  SC_CHECK(instance.has_value());
  return std::move(*instance);
}

TEST(HotpathParityTest, ArenaSingleGuessMatchesVectorPathReference) {
  for (const char* family : {"planted", "zipf"}) {
    Instance instance = MakeRegistered(family, 5);
    for (uint64_t k : {1ULL, 8ULL, 64ULL}) {
      SetStream arena_stream = instance.NewStream();
      StreamingResult arena =
          IterSetCoverSingleGuess(arena_stream, k, ParityOptions());
      SetStream reference_stream = instance.NewStream();
      StreamingResult reference =
          VectorPathSingleGuess(reference_stream, k, ParityOptions());
      SCOPED_TRACE(std::string(family) + " k=" + std::to_string(k));
      ExpectGuessParity(arena, reference);
    }
  }
}

TEST(HotpathParityTest, FileBackedArenaGuessMatchesVectorPathReference) {
  Instance generated = MakeRegistered("planted", 9);
  const std::string path = testing::TempDir() + "/hotpath_parity.txt";
  ASSERT_TRUE(SaveSetSystemToFile(*generated.materialized(), path));
  std::string error;
  std::optional<Instance> instance = Instance::FromFile(path, &error);
  ASSERT_TRUE(instance.has_value()) << error;

  SetStream arena_stream = instance->NewStream();
  StreamingResult arena =
      IterSetCoverSingleGuess(arena_stream, 8, ParityOptions());
  SetStream reference_stream = instance->NewStream();
  StreamingResult reference =
      VectorPathSingleGuess(reference_stream, 8, ParityOptions());
  ExpectGuessParity(arena, reference);
  std::remove(path.c_str());
}

void ExpectRunParity(const RunResult& a, const RunResult& b) {
  ASSERT_TRUE(a.ok()) << a.error;
  ASSERT_TRUE(b.ok()) << b.error;
  EXPECT_EQ(a.cover.set_ids, b.cover.set_ids);
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.passes, b.passes);
  EXPECT_EQ(a.sequential_scans, b.sequential_scans);
  EXPECT_EQ(a.physical_scans, b.physical_scans);
  EXPECT_EQ(a.space_words, b.space_words);
  EXPECT_EQ(a.projection_words_peak, b.projection_words_peak);
}

TEST(HotpathParityTest, ThreadedRegistryRunsAreByteIdentical) {
  for (const char* family : {"planted", "zipf"}) {
    Instance instance = MakeRegistered(family, 3);
    RunOptions serial;
    serial.sample_constant = 0.05;
    RunOptions threaded = serial;
    threaded.threads = 4;
    RunResult a = RunSolver("iter", instance, serial);
    RunResult b = RunSolver("iter", instance, threaded);
    SCOPED_TRACE(family);
    ExpectRunParity(a, b);
    EXPECT_GT(a.projection_words_peak, 0u);
  }
}

TEST(HotpathParityTest, KernelPoliciesAreByteIdenticalAcrossSolvers) {
  // Every registered non-geometric solver, scalar/word/auto x threads
  // 1 and 4, all against the scalar serial reference. kAuto engages
  // whatever SIMD tier this host detects for the dense kernels, so this
  // is also the dispatch-correctness gate.
  for (const char* family : {"planted", "zipf"}) {
    Instance instance = MakeRegistered(family, 6);
    for (const SolverRegistry::Entry* entry :
         SolverRegistry::Global().Entries()) {
      if (entry->kind == SolverRegistry::Kind::kGeometric) continue;
      RunOptions reference_options;
      reference_options.sample_constant = 0.05;
      reference_options.kernel = KernelPolicy::kScalar;
      RunResult reference = RunSolver(entry->name, instance,
                                      reference_options);
      for (KernelPolicy kernel : {KernelPolicy::kScalar, KernelPolicy::kWord,
                                  KernelPolicy::kAuto}) {
        for (uint32_t threads : {1u, 4u}) {
          if (kernel == KernelPolicy::kScalar && threads == 1) continue;
          RunOptions options = reference_options;
          options.kernel = kernel;
          options.threads = threads;
          RunResult run = RunSolver(entry->name, instance, options);
          SCOPED_TRACE(std::string(family) + " x " + entry->name + " x " +
                       KernelPolicyName(kernel) + " x threads=" +
                       std::to_string(threads));
          ExpectRunParity(reference, run);
        }
      }
    }
  }
}

TEST(HotpathParityTest, KernelPoliciesAgreeUnderThreadedPrefilter) {
  // threads=4 engages the scheduler's batched dispatch and hence the
  // batch_filter prefilter; both kernels (and the serial baseline) must
  // land on the same result. early_exit keeps the retire rule covered.
  Instance instance = MakeRegistered("planted", 8);
  RunOptions base;
  base.sample_constant = 0.05;
  base.early_exit = true;
  RunResult serial = RunSolver("iter", instance, base);
  for (KernelPolicy kernel : {KernelPolicy::kScalar, KernelPolicy::kWord}) {
    RunOptions threaded = base;
    threaded.threads = 4;
    threaded.kernel = kernel;
    RunResult run = RunSolver("iter", instance, threaded);
    SCOPED_TRACE(KernelPolicyName(kernel));
    ExpectRunParity(serial, run);
  }
}

TEST(HotpathParityTest, ThreadedFileBackedRunsAreByteIdentical) {
  Instance generated = MakeRegistered("planted", 4);
  const std::string path = testing::TempDir() + "/hotpath_parity_file.txt";
  ASSERT_TRUE(SaveSetSystemToFile(*generated.materialized(), path));
  std::string error;
  std::optional<Instance> instance = Instance::FromFile(path, &error);
  ASSERT_TRUE(instance.has_value()) << error;

  RunOptions serial;
  serial.sample_constant = 0.05;
  RunOptions threaded = serial;
  threaded.threads = 4;
  RunResult a = RunSolver("iter", *instance, serial);
  RunResult b = RunSolver("iter", *instance, threaded);
  ExpectRunParity(a, b);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace streamcover
