// Tests for the §6 sparse lower-bound construction: the ORt(Equal
// Pointer Chasing) overlay and the sparsity of its reduced SetCover
// instance (Theorem 6.6's s = O~(t)).

#include <gtest/gtest.h>

#include "commlb/isc_to_setcover.h"
#include "commlb/sparse_lb.h"
#include "offline/exact.h"

namespace streamcover {
namespace {

class OrtOverlayTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint64_t>> {};

TEST_P(OrtOverlayTest, OverlayShapeAndSparsity) {
  auto [t, seed] = GetParam();
  const uint32_t n = 16, p = 2;
  Rng rng(seed);
  OrtOverlayInstance overlay = GenerateOrtOverlay(n, p, t, rng);
  EXPECT_EQ(overlay.epc_equal.size(), t);
  // Every overlaid image set has between 1 and t values.
  for (const auto* chase : {&overlay.isc.first, &overlay.isc.second}) {
    for (const auto& fn : chase->functions) {
      for (const auto& images : fn) {
        EXPECT_GE(images.size(), 1u);
        EXPECT_LE(images.size(), t);
      }
    }
  }
  // Reduced instance sparsity: S-sets of the first half have <= t + 2
  // elements; second half <= r*t + 2 (+1 for the source marker).
  IscReduction red = ReduceIscToSetCover(overlay.isc);
  uint32_t s = MaxSetSize(red.system);
  EXPECT_LE(s, overlay.r * t + 3);
}

INSTANTIATE_TEST_SUITE_P(
    TSeeds, OrtOverlayTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values(1u, 2u, 3u)));

TEST(OrtOverlayTest, SingleInstanceOverlayPreservesEquality) {
  // With t = 1 the ISC output must equal the EPC equality bit: the
  // scrambling permutations share sigma at the equality layer and fix
  // the start vertex, so no cross-instance collisions exist.
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    OrtOverlayInstance overlay = GenerateOrtOverlay(12, 3, 1, rng);
    EXPECT_EQ(EvaluateIsc(overlay.isc), overlay.epc_equal[0])
        << "seed " << seed;
    EXPECT_EQ(overlay.ort_value, overlay.epc_equal[0]);
  }
}

TEST(OrtOverlayTest, OrtImpliesIsc) {
  // If some instance has equal endpoints, the overlaid ISC must
  // intersect (the converse can fail via rare cross-collisions, which
  // Lemma 6.5's parameter regime controls; we only assert the sound
  // direction).
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    OrtOverlayInstance overlay = GenerateOrtOverlay(16, 2, 3, rng);
    if (overlay.ort_value) {
      EXPECT_TRUE(EvaluateIsc(overlay.isc)) << "seed " << seed;
    }
  }
}

TEST(OrtOverlayTest, ReductionDichotomyUnderOverlay) {
  // End-to-end: overlay -> ISC -> SetCover keeps the §5 dichotomy.
  uint32_t checked = 0;
  for (uint64_t seed = 1; seed <= 6 && checked < 2; ++seed) {
    Rng rng(seed);
    OrtOverlayInstance overlay = GenerateOrtOverlay(3, 2, 2, rng);
    IscReduction red = ReduceIscToSetCover(overlay.isc);
    ExactSolver solver(20'000'000);
    OfflineResult result = solver.Solve(red.system);
    if (!result.proven_optimal) continue;
    EXPECT_EQ(result.cover.size(), red.expected_opt) << "seed " << seed;
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

TEST(OrtOverlayTest, RNonInjectivityRareForLogR) {
  // r ~ log n: random pointer functions are r-non-injective only rarely.
  uint32_t flagged = 0;
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    Rng rng(seed);
    OrtOverlayInstance overlay = GenerateOrtOverlay(64, 2, 2, rng);
    if (overlay.r_non_injective) ++flagged;
  }
  EXPECT_LT(flagged, 10u);
}

TEST(MaxSetSizeTest, Computes) {
  SetSystem::Builder b(5);
  b.AddSet({0});
  b.AddSet({1, 2, 3});
  b.AddSet({});
  EXPECT_EQ(MaxSetSize(std::move(b).Build()), 3u);
}

}  // namespace
}  // namespace streamcover
