// Tests for Pointer/Set Chasing and ISC evaluation (Definitions 5.1-5.2,
// 6.1-6.3).

#include <gtest/gtest.h>

#include "commlb/chasing.h"

namespace streamcover {
namespace {

TEST(SetChasingTest, HandBuiltEvaluation) {
  // n = 4, p = 2. f_2(0) = {1, 2}; f_1(1) = {0}, f_1(2) = {3}.
  SetChasingInstance inst;
  inst.n = 4;
  inst.p = 2;
  inst.functions = {
      // f_1
      {{2}, {0}, {3}, {1}},
      // f_2
      {{1, 2}, {0}, {0}, {0}},
  };
  DynamicBitset result = EvaluateSetChasing(inst);
  EXPECT_EQ(result.ToVector(), (std::vector<uint32_t>{0, 3}));
}

TEST(SetChasingTest, SingleLayerIsJustTheFunction) {
  SetChasingInstance inst;
  inst.n = 5;
  inst.p = 1;
  inst.functions = {{{1, 3}, {0}, {0}, {0}, {0}}};
  EXPECT_EQ(EvaluateSetChasing(inst).ToVector(),
            (std::vector<uint32_t>{1, 3}));
}

TEST(IscTest, IntersectionDetection) {
  IscInstance inst;
  inst.first.n = inst.second.n = 3;
  inst.first.p = inst.second.p = 1;
  inst.first.functions = {{{0, 1}, {2}, {2}}};
  inst.second.functions = {{{2}, {0}, {0}}};
  EXPECT_FALSE(EvaluateIsc(inst));  // {0,1} vs {2}
  inst.second.functions = {{{1, 2}, {0}, {0}}};
  EXPECT_TRUE(EvaluateIsc(inst));  // {0,1} vs {1,2}
}

TEST(SetChasingGeneratorTest, ShapeAndNonEmptyImages) {
  Rng rng(1);
  SetChasingInstance inst = GenerateRandomSetChasing(10, 3, 4, rng);
  EXPECT_EQ(inst.functions.size(), 3u);
  for (const auto& fn : inst.functions) {
    ASSERT_EQ(fn.size(), 10u);
    for (const auto& images : fn) {
      EXPECT_GE(images.size(), 1u);
      EXPECT_LE(images.size(), 4u);
      EXPECT_TRUE(std::is_sorted(images.begin(), images.end()));
      for (uint32_t v : images) EXPECT_LT(v, 10u);
    }
  }
}

TEST(IscGeneratorTest, OutcomeForcingWorks) {
  Rng rng(2);
  IscInstance yes = GenerateIscWithOutcome(6, 2, 2, true, rng);
  EXPECT_TRUE(EvaluateIsc(yes));
  IscInstance no = GenerateIscWithOutcome(6, 2, 2, false, rng);
  EXPECT_FALSE(EvaluateIsc(no));
}

TEST(PointerChasingTest, HandBuiltEvaluation) {
  PointerChasingInstance inst;
  inst.n = 4;
  inst.p = 3;
  inst.functions = {
      {3, 2, 1, 0},  // f_1
      {1, 0, 3, 2},  // f_2
      {2, 2, 2, 2},  // f_3
  };
  // f_3(0) = 2; f_2(2) = 3; f_1(3) = 0.
  EXPECT_EQ(EvaluatePointerChasing(inst), 0u);
}

TEST(PointerChasingGeneratorTest, InRange) {
  Rng rng(3);
  PointerChasingInstance inst = GenerateRandomPointerChasing(16, 4, rng);
  for (const auto& fn : inst.functions) {
    for (uint32_t v : fn) EXPECT_LT(v, 16u);
  }
}

TEST(RNonInjectiveTest, DetectsHeavyPreimages) {
  EXPECT_TRUE(IsRNonInjective({1, 1, 1, 2}, 3));
  EXPECT_FALSE(IsRNonInjective({1, 1, 2, 2}, 3));
  EXPECT_TRUE(IsRNonInjective({0, 0}, 2));
  EXPECT_FALSE(IsRNonInjective({0, 1, 2, 3}, 2));
}

TEST(SetChasingTest, FullFanoutReachesEverything) {
  SetChasingInstance inst;
  inst.n = 4;
  inst.p = 2;
  std::vector<uint32_t> all = {0, 1, 2, 3};
  inst.functions = {
      {all, all, all, all},
      {all, all, all, all},
  };
  EXPECT_EQ(EvaluateSetChasing(inst).Count(), 4u);
}

}  // namespace
}  // namespace streamcover
