// Offline solver tests: greedy correctness/approximation behaviour and
// exact branch-and-bound validated against brute force on random
// instances (property sweep).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "offline/exact.h"
#include "offline/greedy.h"
#include "setsystem/cover.h"
#include "setsystem/generators.h"

namespace streamcover {
namespace {

// Smallest cover by exhaustive subset enumeration (m <= ~20).
size_t BruteForceOpt(const SetSystem& system) {
  const uint32_t m = system.num_sets();
  size_t best = SIZE_MAX;
  for (uint32_t mask = 0; mask < (1u << m); ++mask) {
    Cover c;
    for (uint32_t s = 0; s < m; ++s) {
      if (mask & (1u << s)) c.set_ids.push_back(s);
    }
    if (c.set_ids.size() >= best) continue;
    if (IsFullCover(system, c)) best = c.set_ids.size();
  }
  return best;
}

TEST(GreedySolverTest, CoversSimpleInstance) {
  SetSystem::Builder b(5);
  b.AddSet({0, 1, 2});
  b.AddSet({2, 3});
  b.AddSet({3, 4});
  SetSystem s = std::move(b).Build();
  OfflineResult r = GreedySolver().Solve(s);
  EXPECT_TRUE(IsFullCover(s, r.cover));
  EXPECT_LE(r.cover.size(), 3u);
}

TEST(GreedySolverTest, IgnoresUncoverableElements) {
  SetSystem::Builder b(4);
  b.AddSet({0, 1});  // elements 2, 3 in no set
  SetSystem s = std::move(b).Build();
  OfflineResult r = GreedySolver().Solve(s);
  EXPECT_EQ(r.cover.set_ids, (std::vector<uint32_t>{0}));
}

TEST(GreedySolverTest, EmptyInstance) {
  SetSystem::Builder b(0);
  SetSystem s = std::move(b).Build();
  OfflineResult r = GreedySolver().Solve(s);
  EXPECT_TRUE(r.cover.set_ids.empty());
}

TEST(GreedySolverTest, SolveTargetsRestrictsToTargets) {
  SetSystem::Builder b(6);
  b.AddSet({0, 1, 2});
  b.AddSet({3});
  b.AddSet({4, 5});
  SetSystem s = std::move(b).Build();
  DynamicBitset targets(6);
  targets.Set(3);
  OfflineResult r = GreedySolver::SolveTargets(s, targets);
  EXPECT_EQ(r.cover.set_ids, (std::vector<uint32_t>{1}));
}

TEST(GreedySolverTest, AdversarialInstanceShowsLogGap) {
  // On the textbook adversarial family greedy picks the `levels` column
  // sets while OPT = 2 — the ln(n) gap the paper's rho tracks.
  PlantedInstance inst = GenerateGreedyAdversarial(6);
  OfflineResult r = GreedySolver().Solve(inst.system);
  EXPECT_TRUE(IsFullCover(inst.system, r.cover));
  EXPECT_GE(r.cover.size(), 6u);  // greedy falls for every column set
}

TEST(GreedySolverTest, RhoIsLnN) {
  GreedySolver g;
  EXPECT_NEAR(g.Rho(1000), std::log(1000.0) + 1.0, 1e-12);
}

TEST(ExactSolverTest, OptimalOnAdversarialInstance) {
  PlantedInstance inst = GenerateGreedyAdversarial(5);
  OfflineResult r = ExactSolver().Solve(inst.system);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_TRUE(IsFullCover(inst.system, r.cover));
  EXPECT_EQ(r.cover.size(), 2u);  // the two rows
}

TEST(ExactSolverTest, HandlesUncoverableElements) {
  SetSystem::Builder b(3);
  b.AddSet({0});
  SetSystem s = std::move(b).Build();
  OfflineResult r = ExactSolver().Solve(s);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_EQ(r.cover.set_ids, (std::vector<uint32_t>{0}));
}

TEST(ExactSolverTest, EmptyInstanceGivesEmptyCover) {
  SetSystem::Builder b(4);
  SetSystem s = std::move(b).Build();
  OfflineResult r = ExactSolver().Solve(s);
  EXPECT_TRUE(r.cover.set_ids.empty());
}

TEST(ExactSolverTest, NodeBudgetReportsNonOptimal) {
  // The adversarial family makes the greedy incumbent suboptimal, so a
  // one-node budget cannot prove optimality (the bounds cannot close
  // the incumbent-vs-OPT gap without search).
  PlantedInstance inst = GenerateGreedyAdversarial(6);
  OfflineResult r = ExactSolver(/*max_nodes=*/1).Solve(inst.system);
  EXPECT_FALSE(r.proven_optimal);
  // Still returns the greedy incumbent, which must be feasible.
  EXPECT_TRUE(IsFullCover(inst.system, r.cover));
}

class ExactVsBruteForceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExactVsBruteForceTest, MatchesBruteForceOptimum) {
  Rng rng(GetParam());
  const uint32_t n = 12 + static_cast<uint32_t>(rng.Uniform(6));
  const uint32_t m = 10 + static_cast<uint32_t>(rng.Uniform(8));
  SetSystem s = GenerateUniformRandom(n, m, 0.3, rng);
  if (!IsCoverable(s)) GTEST_SKIP() << "instance not coverable";
  OfflineResult r = ExactSolver().Solve(s);
  ASSERT_TRUE(r.proven_optimal);
  EXPECT_TRUE(IsFullCover(s, r.cover));
  EXPECT_EQ(r.cover.size(), BruteForceOpt(s));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactVsBruteForceTest,
                         ::testing::Range<uint64_t>(1, 21));

TEST(ExactSolverTest, ExactNeverWorseThanGreedy) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    PlantedOptions options;
    options.num_elements = 80;
    options.num_sets = 60;
    options.cover_size = 5;
    options.noise_max_size = 30;
    PlantedInstance inst = GeneratePlanted(options, rng);
    OfflineResult greedy = GreedySolver().Solve(inst.system);
    OfflineResult exact = ExactSolver().Solve(inst.system);
    if (exact.proven_optimal) {
      EXPECT_LE(exact.cover.size(), greedy.cover.size()) << "seed " << seed;
      EXPECT_TRUE(IsFullCover(inst.system, exact.cover));
    }
  }
}

}  // namespace
}  // namespace streamcover
