// Tests for the canonical representation machinery (Definition 4.1,
// Lemmas 4.2/4.4): TraceStore dedup, RectSplitter's exact-partition
// property, the near-linear canonical family on the Figure 1.2
// pathology, and CompCanonicalRep.

#include <gtest/gtest.h>

#include <set>

#include "geometry/canonical.h"
#include "geometry/geom_generators.h"
#include "util/rng.h"

namespace streamcover {
namespace {

TEST(TraceStoreTest, DeduplicatesExactTraces) {
  TraceStore store;
  auto [id1, fresh1] = store.Insert({1, 2, 3});
  EXPECT_TRUE(fresh1);
  auto [id2, fresh2] = store.Insert({1, 2, 3});
  EXPECT_FALSE(fresh2);
  auto [id3, fresh3] = store.Insert({1, 2});
  EXPECT_TRUE(fresh3);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.total_words(), 5u);
  EXPECT_EQ(store.Get(id1), (std::vector<uint32_t>{1, 2, 3}));
  EXPECT_EQ(store.Get(id3), (std::vector<uint32_t>{1, 2}));
}

TEST(TraceStoreTest, EmptyTraceIsStorable) {
  TraceStore store;
  EXPECT_TRUE(store.Insert({}).second);
  EXPECT_FALSE(store.Insert({}).second);
  EXPECT_EQ(store.size(), 1u);
}

// Property: RectSplitter::Decompose returns <= 2 pieces whose disjoint
// union equals the rectangle's trace, for random points and rects.
class RectSplitterPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(RectSplitterPropertyTest, PiecesPartitionTrace) {
  Rng rng(GetParam());
  std::vector<Point> points;
  for (int i = 0; i < 200; ++i) {
    points.push_back(
        {rng.UniformDouble() * 100, rng.UniformDouble() * 100});
  }
  RectSplitter splitter(points);
  for (int trial = 0; trial < 200; ++trial) {
    double x1 = rng.UniformDouble() * 100, x2 = rng.UniformDouble() * 100;
    double y1 = rng.UniformDouble() * 100, y2 = rng.UniformDouble() * 100;
    Rect rect{std::min(x1, x2), std::min(y1, y2), std::max(x1, x2),
              std::max(y1, y2)};
    auto pieces = splitter.Decompose(rect);
    ASSERT_LE(pieces.size(), 2u);
    std::vector<uint32_t> merged;
    for (const auto& piece : pieces) {
      EXPECT_FALSE(piece.empty());
      merged.insert(merged.end(), piece.begin(), piece.end());
    }
    std::sort(merged.begin(), merged.end());
    // Disjointness: no duplicates after merge.
    EXPECT_EQ(std::adjacent_find(merged.begin(), merged.end()),
              merged.end());
    Shape shape = rect;
    EXPECT_EQ(merged, TraceOf(shape, points));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RectSplitterPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(RectSplitterTest, EmptyPointSet) {
  std::vector<Point> points;
  RectSplitter splitter(points);
  EXPECT_TRUE(splitter.Decompose(Rect{0, 0, 1, 1}).empty());
}

TEST(RectSplitterTest, SinglePoint) {
  std::vector<Point> points = {{5, 5}};
  RectSplitter splitter(points);
  auto pieces = splitter.Decompose(Rect{0, 0, 10, 10});
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], (std::vector<uint32_t>{0}));
}

TEST(RectSplitterTest, DuplicateXCoordinates) {
  // Vertical stack of points with identical x — rank intervals must
  // still capture exactly the x-eligible points.
  std::vector<Point> points = {{1, 0}, {1, 1}, {1, 2}, {2, 0}, {2, 1}};
  RectSplitter splitter(points);
  auto pieces = splitter.Decompose(Rect{1, 0.5, 2, 2});
  std::vector<uint32_t> merged;
  for (auto& piece : pieces) {
    merged.insert(merged.end(), piece.begin(), piece.end());
  }
  std::sort(merged.begin(), merged.end());
  EXPECT_EQ(merged, (std::vector<uint32_t>{1, 2, 4}));
}

TEST(Figure12CanonicalTest, QuadraticTracesCollapseToLinearFamily) {
  // The paper's headline geometric pathology: h^2 distinct 2-point
  // rectangles, but anchored splitting stores only O(n) canonical sets.
  const uint32_t n = 64;
  GeomInstance inst = GenerateFigure12(n);
  const uint32_t h = n / 2;

  RectSplitter splitter(inst.points);
  TraceStore store;
  std::set<std::vector<uint32_t>> raw_traces;
  for (uint32_t i = 0; i < h * h; ++i) {
    const Rect& rect = std::get<Rect>(inst.shapes[i]);
    raw_traces.insert(TraceOf(inst.shapes[i], inst.points));
    for (const auto& piece : splitter.Decompose(rect)) {
      store.Insert(piece);
    }
  }
  EXPECT_EQ(raw_traces.size(), h * h);  // quadratic distinct traces
  // Canonical family is near-linear (singleton pieces, one per point).
  EXPECT_LE(store.size(), 2u * n);
}

TEST(CompCanonicalRepTest, CoversLightTracesOfAllShapeClasses) {
  Rng rng(7);
  GeomPlantedOptions options;
  options.num_points = 150;
  options.num_shapes = 120;
  options.cover_size = 6;
  options.shape_class = ShapeClass::kDisk;
  GeomInstance inst = GeneratePlantedGeom(options, rng);

  ShapeStream stream(&inst.shapes);
  CanonicalRep rep = CompCanonicalRep(stream, inst.points, /*w=*/1e9);
  EXPECT_EQ(stream.passes(), 1u);
  EXPECT_EQ(rep.oversize_ranges, 0u);
  // Every nonempty trace appears exactly once (dedup).
  std::set<std::vector<uint32_t>> distinct;
  for (const Shape& s : inst.shapes) {
    auto t = TraceOf(s, inst.points);
    if (!t.empty()) distinct.insert(t);
  }
  EXPECT_EQ(rep.sets.size(), distinct.size());
}

TEST(CompCanonicalRepTest, OversizeRangesCountedAndKept) {
  std::vector<Point> points = {{0, 0}, {1, 0}, {2, 0}, {3, 0}};
  std::vector<Shape> shapes = {Disk{{1.5, 0}, 10}};  // covers all 4
  ShapeStream stream(&shapes);
  CanonicalRep rep = CompCanonicalRep(stream, points, /*w=*/2.0);
  EXPECT_EQ(rep.oversize_ranges, 1u);
  ASSERT_EQ(rep.sets.size(), 1u);
  EXPECT_EQ(rep.sets[0].size(), 4u);  // stored wholesale
}

TEST(CompCanonicalRepTest, RectPiecesUnionToTraces) {
  Rng rng(9);
  std::vector<Point> points;
  for (int i = 0; i < 80; ++i) {
    points.push_back({rng.UniformDouble() * 50, rng.UniformDouble() * 50});
  }
  std::vector<Shape> shapes;
  for (int i = 0; i < 40; ++i) {
    double x = rng.UniformDouble() * 45, y = rng.UniformDouble() * 45;
    shapes.push_back(Rect{x, y, x + 5, y + 5});
  }
  ShapeStream stream(&shapes);
  CanonicalRep rep = CompCanonicalRep(stream, points, /*w=*/1e9);
  // Each shape's trace must be expressible as a union of canonical sets.
  std::set<std::vector<uint32_t>> canonical(rep.sets.begin(),
                                            rep.sets.end());
  RectSplitter splitter(points);
  for (const Shape& s : shapes) {
    const Rect& rect = std::get<Rect>(s);
    for (const auto& piece : splitter.Decompose(rect)) {
      EXPECT_TRUE(canonical.count(piece) > 0);
    }
  }
}

}  // namespace
}  // namespace streamcover
