// Tests for algGeomSC (Figure 4.1 / Theorem 4.6): feasibility for all
// three shape classes, pass bound 3/delta + 1, O~(n) space behaviour,
// and graceful handling of the Figure 1.2 pathology.

#include <gtest/gtest.h>

#include <cmath>

#include "geometry/geom_generators.h"
#include "geometry/geom_set_cover.h"
#include "geometry/range_space.h"
#include "offline/greedy.h"

namespace streamcover {
namespace {

GeomInstance MakeInstance(ShapeClass cls, uint64_t seed,
                          uint32_t n = 400, uint32_t m = 800,
                          uint32_t k = 8) {
  Rng rng(seed);
  GeomPlantedOptions options;
  options.num_points = n;
  options.num_shapes = m;
  options.cover_size = k;
  options.shape_class = cls;
  return GeneratePlantedGeom(options, rng);
}

class GeomSetCoverShapeTest
    : public ::testing::TestWithParam<std::tuple<ShapeClass, uint64_t>> {};

TEST_P(GeomSetCoverShapeTest, ProducesFeasibleCover) {
  auto [cls, seed] = GetParam();
  GeomInstance inst = MakeInstance(cls, seed);
  ShapeStream stream(&inst.shapes);
  GeomSetCoverOptions options;
  options.delta = 0.25;
  options.seed = seed;
  GeomStreamingResult result = AlgGeomSC(stream, inst.points, options);
  ASSERT_TRUE(result.success);
  SetSystem system = BuildRangeSpace(inst.points, inst.shapes);
  EXPECT_TRUE(IsFullCover(system, result.cover));
}

TEST_P(GeomSetCoverShapeTest, ApproximationNearPlanted) {
  auto [cls, seed] = GetParam();
  GeomInstance inst = MakeInstance(cls, seed);
  ShapeStream stream(&inst.shapes);
  GeomSetCoverOptions options;
  options.delta = 0.25;
  options.seed = seed;
  GeomStreamingResult result = AlgGeomSC(stream, inst.points, options);
  ASSERT_TRUE(result.success);
  // O(rho)-approximation with rho = ln n greedy: generous constant.
  double rho = std::log(inst.points.size()) + 1;
  EXPECT_LE(result.cover.size(),
            4.0 * rho * inst.planted_cover.size());
}

INSTANTIATE_TEST_SUITE_P(
    ShapesSeeds, GeomSetCoverShapeTest,
    ::testing::Combine(::testing::Values(ShapeClass::kDisk,
                                         ShapeClass::kRect,
                                         ShapeClass::kFatTriangle),
                       ::testing::Values(1, 2)));

TEST(GeomSetCoverTest, PassBoundPerGuess) {
  GeomInstance inst = MakeInstance(ShapeClass::kDisk, 5);
  ShapeStream stream(&inst.shapes);
  GeomSetCoverOptions options;
  options.delta = 0.25;
  GeomStreamingResult result =
      AlgGeomSCSingleGuess(stream, inst.points, 8, options);
  // 3 passes per iteration, <= 1/delta iterations, + final sweep.
  EXPECT_LE(result.passes,
            3 * static_cast<uint64_t>(std::ceil(1.0 / options.delta)) + 1);
}

TEST(GeomSetCoverTest, SpaceIsNearLinearInPoints) {
  // Theorem 4.6: O~(n) space even with m >> n.
  GeomInstance inst =
      MakeInstance(ShapeClass::kDisk, 6, /*n=*/300, /*m=*/3000, /*k=*/6);
  ShapeStream stream(&inst.shapes);
  GeomSetCoverOptions options;
  options.delta = 0.25;
  GeomStreamingResult result = AlgGeomSC(stream, inst.points, options);
  ASSERT_TRUE(result.success);
  // The heaviest guess's footprint stays within polylog(n) * n words.
  const double n = inst.points.size();
  const double polylog = std::pow(std::log2(n), 3);
  EXPECT_LT(result.space_words_max_guess,
            static_cast<uint64_t>(8.0 * n * polylog));
}

TEST(GeomSetCoverTest, HandlesFigure12Pathology) {
  // Theta(n^2) distinct shallow rectangles: canonical splitting must
  // keep the stored family small and the cover near OPT = 2.
  GeomInstance inst = GenerateFigure12(64);
  ShapeStream stream(&inst.shapes);
  GeomSetCoverOptions options;
  options.delta = 0.25;
  GeomStreamingResult result = AlgGeomSC(stream, inst.points, options);
  ASSERT_TRUE(result.success);
  SetSystem system = BuildRangeSpace(inst.points, inst.shapes);
  EXPECT_TRUE(IsFullCover(system, result.cover));
  // Canonical family stays near-linear in every iteration.
  for (const auto& diag : result.diagnostics) {
    EXPECT_LE(diag.canonical_sets, 4ull * inst.points.size());
  }
}

TEST(GeomSetCoverTest, DeterministicPerSeed) {
  GeomInstance inst = MakeInstance(ShapeClass::kRect, 7);
  GeomSetCoverOptions options;
  options.delta = 0.25;
  options.seed = 3;
  ShapeStream s1(&inst.shapes), s2(&inst.shapes);
  GeomStreamingResult a = AlgGeomSC(s1, inst.points, options);
  GeomStreamingResult b = AlgGeomSC(s2, inst.points, options);
  EXPECT_EQ(a.cover.set_ids, b.cover.set_ids);
}

TEST(GeomSetCoverTest, DiagnosticsTrackResidualShrink) {
  GeomInstance inst = MakeInstance(ShapeClass::kDisk, 8);
  ShapeStream stream(&inst.shapes);
  GeomSetCoverOptions options;
  options.delta = 0.25;
  GeomStreamingResult result =
      AlgGeomSCSingleGuess(stream, inst.points, 8, options);
  ASSERT_FALSE(result.diagnostics.empty());
  for (const auto& diag : result.diagnostics) {
    EXPECT_LE(diag.uncovered_after, diag.uncovered_before);
  }
}

TEST(GeomSetCoverTest, SinglePointSingleShape) {
  std::vector<Point> points = {{1, 1}};
  std::vector<Shape> shapes = {Disk{{1, 1}, 2}};
  ShapeStream stream(&shapes);
  GeomSetCoverOptions options;
  GeomStreamingResult result = AlgGeomSC(stream, points, options);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.cover.size(), 1u);
}

}  // namespace
}  // namespace streamcover
