// Tests for the src/shard/ subsystem: the partitioner's determinism,
// the per-shard bucket engine, candidate dedup in the merge, and the
// sharded_greedi solver family's invariants — shards=1 byte-identical
// to the unsharded `greedi` reference, bounded cover regression at
// higher shard counts, and identical covers across set sources
// (memory / text / mmap-binary) and scheduler thread counts.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/instance.h"
#include "core/solver_registry.h"
#include "setsystem/binary_io.h"
#include "setsystem/generators.h"
#include "setsystem/io.h"
#include "shard/merge_stage.h"
#include "shard/stream_partitioner.h"
#include "shard/threshold_bucket.h"
#include "stream/pass_scheduler.h"
#include "util/rng.h"

namespace streamcover {
namespace {

// ---------------------------------------------------------------------
// StreamPartitioner

TEST(StreamPartitionerTest, AssignmentIsDeterministic) {
  StreamPartitioner a(/*seed=*/42, /*shards=*/7);
  StreamPartitioner b(/*seed=*/42, /*shards=*/7);
  for (uint32_t id = 0; id < 10000; ++id) {
    ASSERT_EQ(a.ShardOf(id), b.ShardOf(id)) << id;
    ASSERT_LT(a.ShardOf(id), 7u) << id;
  }
}

TEST(StreamPartitionerTest, SeedChangesAssignment) {
  StreamPartitioner a(/*seed=*/1, /*shards=*/4);
  StreamPartitioner b(/*seed=*/2, /*shards=*/4);
  uint32_t diffs = 0;
  for (uint32_t id = 0; id < 4096; ++id) {
    if (a.ShardOf(id) != b.ShardOf(id)) ++diffs;
  }
  // Different seeds must induce an essentially independent partition:
  // expected agreement is 1/4, so well over half the ids move.
  EXPECT_GT(diffs, 2048u);
}

TEST(StreamPartitionerTest, OneShardMapsEverythingToZero) {
  StreamPartitioner p(/*seed=*/123, /*shards=*/1);
  for (uint32_t id = 0; id < 1000; ++id) {
    ASSERT_EQ(p.ShardOf(id), 0u);
  }
}

TEST(StreamPartitionerTest, PartitionIsRoughlyBalanced) {
  const uint32_t kShards = 8;
  const uint32_t kIds = 80000;
  StreamPartitioner p(/*seed=*/7, kShards);
  std::vector<uint32_t> counts(kShards, 0);
  for (uint32_t id = 0; id < kIds; ++id) ++counts[p.ShardOf(id)];
  const uint32_t expected = kIds / kShards;
  for (uint32_t s = 0; s < kShards; ++s) {
    EXPECT_GT(counts[s], expected * 9 / 10) << "shard " << s;
    EXPECT_LT(counts[s], expected * 11 / 10) << "shard " << s;
  }
}

TEST(StreamPartitionerTest, SubSeedsAreDistinctAndDeterministic) {
  StreamPartitioner p(/*seed=*/5, /*shards=*/16);
  std::vector<uint64_t> seeds;
  for (uint32_t s = 0; s < 16; ++s) seeds.push_back(p.SubSeed(s));
  for (uint32_t s = 0; s < 16; ++s) {
    for (uint32_t t = s + 1; t < 16; ++t) {
      EXPECT_NE(seeds[s], seeds[t]) << s << " vs " << t;
    }
  }
  StreamPartitioner q(/*seed=*/5, /*shards=*/16);
  for (uint32_t s = 0; s < 16; ++s) EXPECT_EQ(q.SubSeed(s), seeds[s]);
  // SubRng draws the stream its SubSeed defines.
  Rng r1 = p.SubRng(3);
  Rng r2 = q.SubRng(3);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(r1.Next(), r2.Next());
}

// ---------------------------------------------------------------------
// ThresholdBucketEngine

PlantedInstance MakePlanted(uint32_t n, uint32_t m, uint32_t k,
                            uint64_t seed) {
  Rng rng(seed);
  PlantedOptions options;
  options.num_elements = n;
  options.num_sets = m;
  options.cover_size = k;
  return GeneratePlanted(options, rng);
}

TEST(ThresholdBucketEngineTest, OnePassThenDone) {
  PlantedInstance inst = MakePlanted(200, 400, 8, 11);
  SetStream stream(&inst.system);
  PassScheduler scheduler(stream);
  ThresholdBucketEngine engine(stream.num_elements(), nullptr, 0, {});
  EXPECT_FALSE(engine.done());
  PassScheduler::SoloRun run = scheduler.DriveToCompletion(engine);
  EXPECT_TRUE(engine.done());
  EXPECT_EQ(run.logical_passes, 1u);
  EXPECT_EQ(run.physical_scans, 1u);
  EXPECT_EQ(engine.counters().sets_seen, inst.system.num_sets());
  EXPECT_GT(engine.candidate_count(), 0u);
  EXPECT_GE(engine.counters().inserts, engine.counters().candidates);
}

TEST(ThresholdBucketEngineTest, CandidatesCoverWhatTheSubstreamCovers) {
  PlantedInstance inst = MakePlanted(300, 600, 10, 17);
  SetStream stream(&inst.system);
  PassScheduler scheduler(stream);
  ThresholdBucketEngine engine(stream.num_elements(), nullptr, 0, {});
  scheduler.DriveToCompletion(engine);

  // The tau=1 bucket accepts any set with positive residual gain, so
  // the candidate union must cover every coverable element.
  std::vector<bool> covered(inst.system.num_elements(), false);
  for (size_t i = 0; i < engine.candidate_count(); ++i) {
    for (uint32_t e : engine.candidate_elems(i)) covered[e] = true;
  }
  std::vector<bool> coverable(inst.system.num_elements(), false);
  for (uint32_t s = 0; s < inst.system.num_sets(); ++s) {
    for (uint32_t e : inst.system.GetSet(s)) coverable[e] = true;
  }
  EXPECT_EQ(covered, coverable);
}

TEST(ThresholdBucketEngineTest, PartitionedEnginesSeeDisjointSubstreams) {
  PlantedInstance inst = MakePlanted(200, 500, 8, 23);
  StreamPartitioner partitioner(/*seed=*/9, /*shards=*/4);
  uint64_t total_seen = 0;
  std::vector<uint64_t> per_shard;
  for (uint32_t s = 0; s < 4; ++s) {
    SetStream stream(&inst.system);
    PassScheduler scheduler(stream);
    ThresholdBucketEngine engine(stream.num_elements(), &partitioner, s, {});
    scheduler.DriveToCompletion(engine);
    per_shard.push_back(engine.counters().sets_seen);
    total_seen += engine.counters().sets_seen;
  }
  EXPECT_EQ(total_seen, inst.system.num_sets());
  for (uint32_t s = 0; s < 4; ++s) {
    EXPECT_GT(per_shard[s], 0u) << "shard " << s;
  }
}

// ---------------------------------------------------------------------
// MergeStage

TEST(MergeStageTest, DropsDuplicateCandidates) {
  const std::vector<uint32_t> a = {0, 1, 2};
  const std::vector<uint32_t> b = {2, 3};
  MergeStage merge(/*num_elements=*/4, /*num_sets=*/10, {});
  merge.AddCandidate(5, a);
  merge.AddCandidate(7, b);
  merge.AddCandidate(5, a);  // dup
  merge.AddCandidate(7, b);  // dup
  EXPECT_EQ(merge.candidates(), 2u);
  EXPECT_EQ(merge.duplicates_dropped(), 2u);
  MergeOutcome outcome = merge.Merge();
  EXPECT_TRUE(outcome.success);
  EXPECT_EQ(outcome.covered, 4u);
  EXPECT_EQ(outcome.cover.set_ids, (std::vector<uint32_t>{5, 7}));
}

TEST(MergeStageTest, GreedyPicksLargestFirstAndStops) {
  MergeStage merge(/*num_elements=*/6, /*num_sets=*/10, {});
  merge.AddCandidate(1, std::vector<uint32_t>{0, 1});
  merge.AddCandidate(2, std::vector<uint32_t>{0, 1, 2, 3});
  merge.AddCandidate(3, std::vector<uint32_t>{4, 5});
  MergeOutcome outcome = merge.Merge();
  EXPECT_TRUE(outcome.success);
  EXPECT_EQ(outcome.covered, 6u);
  // Set 2 dominates set 1; greedy never needs the subset.
  EXPECT_EQ(outcome.cover.set_ids, (std::vector<uint32_t>{2, 3}));
}

TEST(MergeStageTest, ReportsFailureWhenUncoverable) {
  MergeStage merge(/*num_elements=*/5, /*num_sets=*/4, {});
  merge.AddCandidate(0, std::vector<uint32_t>{0, 1});
  MergeOutcome outcome = merge.Merge();
  EXPECT_FALSE(outcome.success);
  EXPECT_EQ(outcome.covered, 2u);
}

TEST(MergeStageTest, HonorsPartialCoverageTarget) {
  MergeStageOptions options;
  options.coverage_fraction = 0.5;
  MergeStage merge(/*num_elements=*/8, /*num_sets=*/4, options);
  merge.AddCandidate(0, std::vector<uint32_t>{0, 1, 2, 3});
  merge.AddCandidate(1, std::vector<uint32_t>{4, 5, 6, 7});
  MergeOutcome outcome = merge.Merge();
  EXPECT_TRUE(outcome.success);
  EXPECT_EQ(outcome.covered, 4u);
  EXPECT_EQ(outcome.cover.set_ids.size(), 1u);
}

// ---------------------------------------------------------------------
// sharded_greedi solver family

struct Sources {
  SetSystem system;
  std::string text_path;
  std::string binary_path;
};

Sources MakeSources(uint64_t seed) {
  PlantedInstance inst = MakePlanted(220, 450, 8, seed);
  Sources sources;
  sources.text_path = ::testing::TempDir() + "/shard_" +
                      std::to_string(seed) + ".txt";
  sources.binary_path = ::testing::TempDir() + "/shard_" +
                        std::to_string(seed) + ".bin";
  EXPECT_TRUE(SaveSetSystemToFile(inst.system, sources.text_path));
  std::string error;
  EXPECT_TRUE(
      WriteBinarySetSystem(inst.system, sources.binary_path, &error))
      << error;
  sources.system = std::move(inst.system);
  return sources;
}

RunResult SolveFromMemory(const Sources& sources, const std::string& solver,
                          const RunOptions& options) {
  SetSystem copy = sources.system;  // FromSystem takes ownership
  Instance instance =
      Instance::FromSystem(std::move(copy), {"shard", "memory"});
  return RunSolver(solver, instance, options);
}

RunResult SolveFromDisk(const std::string& path, const std::string& solver,
                        const RunOptions& options) {
  std::string error;
  std::optional<Instance> instance = Instance::FromFile(path, &error);
  EXPECT_TRUE(instance.has_value()) << error;
  return RunSolver(solver, *instance, options);
}

TEST(ShardedGreediTest, OneShardIsByteIdenticalToGreediReference) {
  Sources sources = MakeSources(/*seed=*/51);
  for (uint64_t seed : {1u, 9u}) {
    RunOptions options;
    options.seed = seed;
    options.shards = 1;
    RunResult reference = SolveFromMemory(sources, "greedi", options);
    RunResult sharded = SolveFromMemory(sources, "sharded_greedi", options);
    ASSERT_TRUE(reference.ok()) << reference.error;
    ASSERT_TRUE(sharded.ok()) << sharded.error;
    EXPECT_TRUE(reference.success);
    EXPECT_TRUE(sharded.success);
    EXPECT_EQ(reference.cover.set_ids, sharded.cover.set_ids)
        << "seed=" << seed;
    EXPECT_EQ(reference.space_words, sharded.space_words);
  }
}

TEST(ShardedGreediTest, ShardingKeepsCoverQualityBounded) {
  Sources sources = MakeSources(/*seed=*/52);
  RunOptions options;
  options.seed = 3;
  RunResult reference = SolveFromMemory(sources, "greedi", options);
  ASSERT_TRUE(reference.ok()) << reference.error;
  ASSERT_TRUE(reference.success);
  for (uint32_t shards : {2u, 4u, 8u}) {
    options.shards = shards;
    RunResult sharded = SolveFromMemory(sources, "sharded_greedi", options);
    ASSERT_TRUE(sharded.ok()) << sharded.error;
    EXPECT_TRUE(sharded.success) << "shards=" << shards;
    EXPECT_LE(sharded.cover.set_ids.size(),
              3 * reference.cover.set_ids.size())
        << "shards=" << shards;
    // Accounting: one pass, S logical substream scans, one physical.
    EXPECT_EQ(sharded.passes, 1u);
    EXPECT_EQ(sharded.sequential_scans, shards);
    EXPECT_EQ(sharded.physical_scans, 1u);
    ASSERT_EQ(sharded.shard_stats.size(), shards);
    uint64_t seen = 0;
    for (const ShardStat& stat : sharded.shard_stats) {
      seen += stat.sets_seen;
    }
    EXPECT_EQ(seen, sources.system.num_sets());
    EXPECT_EQ(sharded.merge_stats.picked, sharded.cover.set_ids.size());
    EXPECT_EQ(sharded.merge_stats.duplicates_dropped, 0u);
  }
}

TEST(ShardedGreediTest, CoversIdenticalAcrossSourcesAndThreads) {
  Sources sources = MakeSources(/*seed=*/53);
  for (uint32_t shards : {1u, 4u}) {
    std::vector<uint32_t> expected_cover;
    bool first = true;
    for (uint32_t threads : {1u, 4u}) {
      RunOptions options;
      options.seed = 9;
      options.shards = shards;
      options.threads = threads;
      RunResult memory =
          SolveFromMemory(sources, "sharded_greedi", options);
      ASSERT_TRUE(memory.ok()) << memory.error;
      RunResult text =
          SolveFromDisk(sources.text_path, "sharded_greedi", options);
      ASSERT_TRUE(text.ok()) << text.error;
      RunResult binary =
          SolveFromDisk(sources.binary_path, "sharded_greedi", options);
      ASSERT_TRUE(binary.ok()) << binary.error;
      EXPECT_EQ(memory.cover.set_ids, text.cover.set_ids)
          << "shards=" << shards << " threads=" << threads;
      EXPECT_EQ(memory.cover.set_ids, binary.cover.set_ids)
          << "shards=" << shards << " threads=" << threads;
      if (first) {
        expected_cover = memory.cover.set_ids;
        first = false;
      } else {
        // Thread count must not change the cover either.
        EXPECT_EQ(memory.cover.set_ids, expected_cover)
            << "shards=" << shards << " threads=" << threads;
      }
    }
  }
}

TEST(ShardedGreediTest, SameSeedSameShardsReproducesExactly) {
  Sources sources = MakeSources(/*seed=*/54);
  RunOptions options;
  options.seed = 77;
  options.shards = 4;
  RunResult a = SolveFromMemory(sources, "sharded_greedi", options);
  RunResult b = SolveFromMemory(sources, "sharded_greedi", options);
  ASSERT_TRUE(a.ok()) << a.error;
  ASSERT_TRUE(b.ok()) << b.error;
  EXPECT_EQ(a.cover.set_ids, b.cover.set_ids);
  ASSERT_EQ(a.shard_stats.size(), b.shard_stats.size());
  for (size_t s = 0; s < a.shard_stats.size(); ++s) {
    EXPECT_EQ(a.shard_stats[s].sets_seen, b.shard_stats[s].sets_seen);
    EXPECT_EQ(a.shard_stats[s].candidates, b.shard_stats[s].candidates);
    EXPECT_EQ(a.shard_stats[s].inserts, b.shard_stats[s].inserts);
    EXPECT_EQ(a.shard_stats[s].work_items, b.shard_stats[s].work_items);
  }
}

TEST(ShardedGreediTest, ScalarAndWordKernelsAgree) {
  Sources sources = MakeSources(/*seed=*/55);
  RunOptions options;
  options.seed = 2;
  options.shards = 4;
  options.kernel = KernelPolicy::kWord;
  RunResult word = SolveFromMemory(sources, "sharded_greedi", options);
  options.kernel = KernelPolicy::kScalar;
  RunResult scalar = SolveFromMemory(sources, "sharded_greedi", options);
  ASSERT_TRUE(word.ok()) << word.error;
  ASSERT_TRUE(scalar.ok()) << scalar.error;
  EXPECT_EQ(word.cover.set_ids, scalar.cover.set_ids);
}

TEST(ShardedGreediTest, ZeroShardsFailsDispatch) {
  Sources sources = MakeSources(/*seed=*/56);
  RunOptions options;
  options.shards = 0;
  RunResult r = SolveFromMemory(sources, "sharded_greedi", options);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("shards"), std::string::npos) << r.error;
}

TEST(ShardedGreediTest, RegisteredInTheSolverDirectory) {
  EXPECT_TRUE(SolverRegistry::Global().Contains("greedi"));
  EXPECT_TRUE(SolverRegistry::Global().Contains("sharded_greedi"));
  // Unknown-solver diagnostics list the new family.
  Sources sources = MakeSources(/*seed=*/57);
  RunResult r = SolveFromMemory(sources, "no_such_solver", {});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error.find("sharded_greedi"), std::string::npos) << r.error;
}

}  // namespace
}  // namespace streamcover
