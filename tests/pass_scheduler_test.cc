// PassScheduler: one physical scan per round serves every live
// consumer. Covers per-consumer pass attribution, thread-count
// invariance (also the TSan target: >= 4 consumers fanned out over
// workers), the determinism guarantee that the multiplexed iterSetCover
// is byte-identical to the old sequential per-guess path (in-memory and
// file-backed), the file re-parse regression (parses == physical scans,
// not sequential scans), heterogeneous consumers (DIMV14 + threshold
// sieves sharing scans), and the winner-preserving early-exit rule.

#include "stream/pass_scheduler.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/dimv14.h"
#include "baselines/threshold_greedy.h"
#include "core/iter_set_cover.h"
#include "gtest/gtest.h"
#include "offline/greedy.h"
#include "setsystem/generators.h"
#include "setsystem/io.h"
#include "stream/set_source.h"
#include "util/rng.h"

namespace streamcover {
namespace {

PlantedInstance MakePlanted(uint64_t seed, uint32_t n = 300,
                            uint32_t m = 600, uint32_t k = 6) {
  PlantedOptions options;
  options.num_elements = n;
  options.num_sets = m;
  options.cover_size = k;
  options.noise_max_size = 20;
  Rng rng(seed);
  return GeneratePlanted(options, rng);
}

IterSetCoverOptions SmallIterOptions() {
  IterSetCoverOptions options;
  options.sample_constant = 0.05;
  options.seed = 11;
  return options;
}

// Consumes a fixed number of passes, accumulating an order-sensitive
// digest of everything it sees.
class CountingConsumer final : public ScanConsumer {
 public:
  explicit CountingConsumer(uint64_t passes_needed)
      : remaining_(passes_needed) {}

  void OnSet(const SetView& set) override {
    ++sets_seen_;
    digest_ = digest_ * 1000003ULL + set.id;
    for (uint32_t e : set.elems) digest_ = digest_ * 1000003ULL + e;
  }
  void OnPassEnd() override {
    if (remaining_ > 0) --remaining_;
  }
  bool done() const override { return remaining_ == 0; }

  uint64_t sets_seen() const { return sets_seen_; }
  uint64_t digest() const { return digest_; }

 private:
  uint64_t remaining_;
  uint64_t sets_seen_ = 0;
  uint64_t digest_ = 0;
};

// The pre-scheduler execution: one guess at a time, every logical pass
// a dedicated physical scan. The multiplexed run must reproduce it
// byte for byte.
StreamingResult SequentialPerGuessPath(SetStream& stream,
                                       const IterSetCoverOptions& options) {
  const uint32_t n = stream.num_elements();
  StreamingResult best;
  uint64_t passes_max = 0;
  uint64_t scans_total = 0;
  uint64_t space_sum = 0;
  uint64_t space_max = 0;
  for (uint64_t k = 1;; k *= 2) {
    StreamingResult guess = IterSetCoverSingleGuess(stream, k, options);
    passes_max = std::max(passes_max, guess.passes);
    scans_total += guess.passes;
    space_sum += guess.space_words_parallel;
    space_max = std::max(space_max, guess.space_words_max_guess);
    if (guess.success &&
        (!best.success || guess.cover.size() < best.cover.size())) {
      best = std::move(guess);
    }
    if (k >= n) break;
  }
  best.passes = passes_max;
  best.sequential_scans = scans_total;
  best.space_words_parallel = space_sum;
  best.space_words_max_guess = space_max;
  return best;
}

void ExpectSameOutcome(const StreamingResult& multiplexed,
                       const StreamingResult& sequential) {
  EXPECT_EQ(multiplexed.cover.set_ids, sequential.cover.set_ids);
  EXPECT_EQ(multiplexed.success, sequential.success);
  EXPECT_EQ(multiplexed.winning_k, sequential.winning_k);
  EXPECT_EQ(multiplexed.passes, sequential.passes);
  EXPECT_EQ(multiplexed.sequential_scans, sequential.sequential_scans);
  EXPECT_EQ(multiplexed.space_words_parallel,
            sequential.space_words_parallel);
  EXPECT_EQ(multiplexed.space_words_max_guess,
            sequential.space_words_max_guess);
}

TEST(PassSchedulerTest, OnePhysicalScanServesEveryLiveConsumer) {
  PlantedInstance inst = MakePlanted(1, 50, 80, 4);
  SetStream stream(&inst.system);
  PassScheduler scheduler(stream);

  CountingConsumer one(1), two(2), four(4);
  const size_t s1 = scheduler.Register(&one);
  const size_t s2 = scheduler.Register(&two);
  const size_t s4 = scheduler.Register(&four);
  EXPECT_TRUE(scheduler.AnyLive());
  scheduler.RunToCompletion();

  // Rounds = the longest consumer's demand; each consumer was served
  // exactly as many passes as it needed, all from shared scans.
  EXPECT_EQ(scheduler.physical_scans(), 4u);
  EXPECT_EQ(stream.passes(), 4u);
  EXPECT_EQ(scheduler.passes(s1), 1u);
  EXPECT_EQ(scheduler.passes(s2), 2u);
  EXPECT_EQ(scheduler.passes(s4), 4u);
  EXPECT_EQ(scheduler.max_passes(), 4u);
  EXPECT_EQ(scheduler.total_passes(), 7u);
  EXPECT_EQ(one.sets_seen(), 1u * inst.system.num_sets());
  EXPECT_EQ(two.sets_seen(), 2u * inst.system.num_sets());
  EXPECT_EQ(four.sets_seen(), 4u * inst.system.num_sets());
}

TEST(PassSchedulerTest, NoLiveConsumersMeansNoScan) {
  PlantedInstance inst = MakePlanted(2, 40, 60, 4);
  SetStream stream(&inst.system);
  PassScheduler scheduler(stream);
  EXPECT_FALSE(scheduler.AnyLive());
  EXPECT_EQ(scheduler.RunRound(), 0u);
  EXPECT_EQ(scheduler.physical_scans(), 0u);
  EXPECT_EQ(stream.passes(), 0u);

  CountingConsumer spent(0);  // already done at registration
  scheduler.Register(&spent);
  EXPECT_FALSE(scheduler.AnyLive());
  EXPECT_EQ(scheduler.RunRound(), 0u);
  EXPECT_EQ(stream.passes(), 0u);
}

TEST(PassSchedulerTest, RetiredSlotsAreSkipped) {
  PlantedInstance inst = MakePlanted(3, 40, 60, 4);
  SetStream stream(&inst.system);
  PassScheduler scheduler(stream);
  CountingConsumer hungry(100);
  const size_t slot = scheduler.Register(&hungry);
  scheduler.RunRound();
  EXPECT_EQ(scheduler.passes(slot), 1u);
  scheduler.Retire(slot);
  EXPECT_FALSE(scheduler.AnyLive());
  EXPECT_EQ(scheduler.RunRound(), 0u);
  // The retired slot's attribution stays readable.
  EXPECT_EQ(scheduler.passes(slot), 1u);
}

TEST(PassSchedulerTest, ThreadedDispatchIsBitIdenticalToSerial) {
  PlantedInstance inst = MakePlanted(4, 200, 400, 5);
  auto run = [&](uint32_t threads) {
    SetStream stream(&inst.system);
    PassScheduler scheduler(stream, threads);
    // >= 4 consumers with skewed demands so every worker gets a mix of
    // live and finished consumers across rounds (the TSan target).
    std::vector<CountingConsumer> consumers;
    consumers.reserve(6);
    for (uint64_t need : {1, 2, 3, 5, 5, 8}) consumers.emplace_back(need);
    for (CountingConsumer& c : consumers) scheduler.Register(&c);
    scheduler.RunToCompletion();
    std::vector<uint64_t> digests;
    for (CountingConsumer& c : consumers) digests.push_back(c.digest());
    digests.push_back(scheduler.physical_scans());
    return digests;
  };
  EXPECT_EQ(run(1), run(4));
  EXPECT_EQ(run(1), run(7));
}

TEST(PassSchedulerTest, MultiplexedIterMatchesSequentialPerGuessPath) {
  // The determinism contract of the redesign: multiplexing the >= 8
  // guesses onto shared scans produces the byte-identical winning cover
  // and identical logical pass accounting as running each guess on its
  // own dedicated scans — while the repository pays per-guess-max scans
  // instead of the sequential sum.
  PlantedInstance inst = MakePlanted(5);
  IterSetCoverOptions options = SmallIterOptions();

  SetStream multiplexed_stream(&inst.system);
  StreamingResult multiplexed = IterSetCover(multiplexed_stream, options);

  SetStream sequential_stream(&inst.system);
  StreamingResult sequential =
      SequentialPerGuessPath(sequential_stream, options);

  ASSERT_TRUE(multiplexed.success);
  ExpectSameOutcome(multiplexed, sequential);
  EXPECT_EQ(multiplexed.physical_scans, multiplexed.passes);
  EXPECT_EQ(multiplexed_stream.passes(), multiplexed.physical_scans);
  EXPECT_EQ(sequential_stream.passes(), sequential.sequential_scans);
  EXPECT_LT(multiplexed_stream.passes(), sequential_stream.passes());
}

TEST(PassSchedulerTest, FileBackedMultiplexingMatchesAndParsesOncePerRound) {
  // Same contract on a disk-backed repository, plus the re-parse
  // regression: a multi-guess run re-parses the file once per physical
  // scan — not once per guess per pass, the old guesses x passes I/O
  // blow-up.
  PlantedInstance inst = MakePlanted(6);
  const std::string path =
      testing::TempDir() + "/pass_scheduler_file_test.txt";
  ASSERT_TRUE(SaveSetSystemToFile(inst.system, path));
  IterSetCoverOptions options = SmallIterOptions();

  std::string error;
  auto multiplexed_source = FileSetSource::Open(path, &error);
  ASSERT_TRUE(multiplexed_source.has_value()) << error;
  SetStream multiplexed_stream(&*multiplexed_source);
  StreamingResult multiplexed = IterSetCover(multiplexed_stream, options);

  auto sequential_source = FileSetSource::Open(path, &error);
  ASSERT_TRUE(sequential_source.has_value()) << error;
  SetStream sequential_stream(&*sequential_source);
  StreamingResult sequential =
      SequentialPerGuessPath(sequential_stream, options);

  ASSERT_TRUE(multiplexed.success);
  ExpectSameOutcome(multiplexed, sequential);

  // >= 8 guesses on n=300 (k = 1..512), each needing >= 2 passes:
  // the sequential path parses the file per guess per pass, the
  // scheduler once per round.
  EXPECT_EQ(multiplexed_source->parses(), multiplexed.physical_scans);
  EXPECT_EQ(sequential_source->parses(), sequential.sequential_scans);
  EXPECT_GE(sequential_source->parses(),
            8 * multiplexed_source->parses());
  std::remove(path.c_str());
}

TEST(PassSchedulerTest, ThreadedIterSetCoverIsBitIdentical) {
  // Full iterSetCover (>= 8 guess consumers) fanned out over 4 workers:
  // byte-identical to serial, and TSan-clean under the sanitizer job.
  PlantedInstance inst = MakePlanted(7);
  IterSetCoverOptions options = SmallIterOptions();

  SetStream serial_stream(&inst.system);
  PassScheduler serial(serial_stream, 1);
  StreamingResult serial_result = IterSetCover(serial, options);

  SetStream threaded_stream(&inst.system);
  PassScheduler threaded(threaded_stream, 4);
  StreamingResult threaded_result = IterSetCover(threaded, options);

  ASSERT_TRUE(serial_result.success);
  ExpectSameOutcome(threaded_result, serial_result);
  EXPECT_EQ(threaded_result.physical_scans, serial_result.physical_scans);
}

TEST(PassSchedulerTest, HeterogeneousConsumersShareScans) {
  // The seam is not iterSetCover-shaped: a DIMV14 recursion and three
  // [ER14]/[CW16] threshold sieves — four unrelated consumers — ride
  // the same physical scans and reproduce their solo results exactly.
  PlantedInstance inst = MakePlanted(8);
  const uint32_t n = inst.system.num_elements();
  const uint32_t m = inst.system.num_sets();
  GreedySolver greedy;
  Dimv14Options dimv_options;
  dimv_options.sample_constant = 0.05;
  dimv_options.seed = 11;

  SetStream stream(&inst.system);
  PassScheduler scheduler(stream, 2);
  Dimv14Consumer dimv(n, m, dimv_options, greedy);
  ThresholdSieveConsumer sieve1(n, 1), sieve2(n, 2), sieve3(n, 3);
  const size_t dimv_slot = scheduler.Register(&dimv);
  const size_t s1 = scheduler.Register(&sieve1);
  const size_t s2 = scheduler.Register(&sieve2);
  const size_t s3 = scheduler.Register(&sieve3);
  scheduler.RunToCompletion();

  EXPECT_EQ(scheduler.physical_scans(), scheduler.max_passes());
  EXPECT_LT(scheduler.physical_scans(), scheduler.total_passes());
  EXPECT_EQ(scheduler.passes(s1), 1u);
  EXPECT_EQ(scheduler.passes(s2), 2u);
  EXPECT_EQ(scheduler.passes(s3), 3u);

  BaselineResult shared_dimv = dimv.TakeResult(scheduler.passes(dimv_slot));
  SetStream solo_stream(&inst.system);
  BaselineResult solo_dimv = Dimv14Cover(solo_stream, dimv_options);
  EXPECT_EQ(shared_dimv.cover.set_ids, solo_dimv.cover.set_ids);
  EXPECT_EQ(shared_dimv.passes, solo_dimv.passes);
  EXPECT_EQ(shared_dimv.space_words, solo_dimv.space_words);

  BaselineResult shared_sieve = sieve2.TakeResult(scheduler.passes(s2));
  SetStream sieve_stream(&inst.system);
  BaselineResult solo_sieve = PolynomialThresholdCover(sieve_stream, 2);
  EXPECT_TRUE(shared_sieve.success);
  EXPECT_EQ(shared_sieve.cover.set_ids, solo_sieve.cover.set_ids);
  EXPECT_EQ(shared_sieve.passes, solo_sieve.passes);
  EXPECT_EQ(shared_sieve.space_words, solo_sieve.space_words);
}

TEST(PassSchedulerTest, SoloDriversIgnoreForeignConsumers) {
  // A driver invoked on a shared scheduler runs rounds only until ITS
  // consumer finishes: a hungrier foreign consumer neither extends the
  // call nor inflates the result's physical-scan attribution.
  PlantedInstance inst = MakePlanted(9);
  SetStream stream(&inst.system);
  PassScheduler scheduler(stream);
  CountingConsumer foreign(50);
  const size_t foreign_slot = scheduler.Register(&foreign);
  BaselineResult shared = PolynomialThresholdCover(scheduler, 2);
  EXPECT_EQ(shared.passes, 2u);
  EXPECT_EQ(shared.physical_scans, 2u);
  EXPECT_EQ(scheduler.physical_scans(), 2u);
  // The foreign consumer rode the sieve's two scans all the same.
  EXPECT_EQ(scheduler.passes(foreign_slot), 2u);

  SetStream solo_stream(&inst.system);
  BaselineResult solo = PolynomialThresholdCover(solo_stream, 2);
  EXPECT_EQ(shared.cover.set_ids, solo.cover.set_ids);
}

TEST(PassSchedulerTest, EarlyExitPreservesWinnerAndSavesScans) {
  // The retire rule kills only guesses that provably cannot win, so the
  // winning cover is identical; pass and scan counts can only shrink.
  for (uint64_t seed : {11, 12, 13, 14}) {
    PlantedInstance inst = MakePlanted(seed + 100);
    IterSetCoverOptions options = SmallIterOptions();
    options.seed = seed;

    SetStream normal_stream(&inst.system);
    StreamingResult normal = IterSetCover(normal_stream, options);

    options.early_exit = true;
    SetStream early_stream(&inst.system);
    StreamingResult early = IterSetCover(early_stream, options);

    ASSERT_TRUE(normal.success);
    ASSERT_TRUE(early.success);
    EXPECT_EQ(early.cover.set_ids, normal.cover.set_ids) << "seed " << seed;
    EXPECT_EQ(early.winning_k, normal.winning_k) << "seed " << seed;
    EXPECT_LE(early.physical_scans, normal.physical_scans);
    EXPECT_LE(early.passes, normal.passes);
    EXPECT_LE(early.sequential_scans, normal.sequential_scans);
  }
}

}  // namespace
}  // namespace streamcover
