// Tests for iterSetCover (Figure 1.3 / Theorem 2.8): feasibility, the
// 2/delta pass formula (Lemma 2.1), per-iteration shrink (Lemma 2.6),
// approximation quality against planted optima, space accounting, and
// determinism. Parameterized sweeps over delta and seeds.

#include <gtest/gtest.h>

#include <cmath>

#include "core/iter_set_cover.h"
#include "offline/exact.h"
#include "offline/greedy.h"
#include "setsystem/generators.h"

namespace streamcover {
namespace {

PlantedInstance MakeInstance(uint64_t seed, uint32_t n = 600,
                             uint32_t m = 1500, uint32_t k = 12) {
  Rng rng(seed);
  PlantedOptions options;
  options.num_elements = n;
  options.num_sets = m;
  options.cover_size = k;
  options.noise_max_size = n / 20;
  return GeneratePlanted(options, rng);
}

TEST(IterSetCoverTest, ProducesFeasibleCover) {
  PlantedInstance inst = MakeInstance(1);
  SetStream stream(&inst.system);
  IterSetCoverOptions options;
  options.delta = 0.5;
  StreamingResult result = IterSetCover(stream, options);
  ASSERT_TRUE(result.success);
  EXPECT_TRUE(IsFullCover(inst.system, result.cover));
}

TEST(IterSetCoverTest, SingleGuessPassCountIsTwoOverDelta) {
  // Lemma 2.1: each of the ceil(1/delta) iterations costs exactly two
  // passes (when no iteration terminates early). Use an oversized guess
  // k so heavy sets cannot finish the job in one iteration... the guess
  // k = 1 with a multi-set optimum keeps all iterations running.
  PlantedInstance inst = MakeInstance(2);
  for (double delta : {1.0, 0.5, 0.25, 0.2}) {
    SetStream stream(&inst.system);
    IterSetCoverOptions options;
    options.delta = delta;
    StreamingResult result = IterSetCoverSingleGuess(stream, 1, options);
    uint64_t iterations = static_cast<uint64_t>(std::ceil(1.0 / delta));
    EXPECT_LE(result.passes, 2 * iterations) << "delta " << delta;
    EXPECT_GE(result.passes, 2u);
  }
}

TEST(IterSetCoverTest, ParallelPassAccountingIsMaxOverGuesses) {
  PlantedInstance inst = MakeInstance(3);
  SetStream stream(&inst.system);
  IterSetCoverOptions options;
  options.delta = 0.5;
  StreamingResult result = IterSetCover(stream, options);
  // Per-guess max is at most 2 * ceil(1/delta).
  EXPECT_LE(result.passes, 4u);
  // Logical sequential scans cover all log n + 1 guesses...
  EXPECT_GT(result.sequential_scans, result.passes);
  // ...but the repository only pays one shared scan per round: the
  // stream's pass counter now counts physical scans, which collapse to
  // the per-guess max.
  EXPECT_EQ(result.physical_scans, result.passes);
  EXPECT_EQ(stream.passes(), result.physical_scans);
}

class IterSetCoverSweepTest
    : public ::testing::TestWithParam<std::tuple<double, uint64_t>> {};

TEST_P(IterSetCoverSweepTest, FeasibleAndNearPlantedOptimum) {
  auto [delta, seed] = GetParam();
  PlantedInstance inst = MakeInstance(seed);
  SetStream stream(&inst.system);
  IterSetCoverOptions options;
  options.delta = delta;
  options.seed = seed;
  StreamingResult result = IterSetCover(stream, options);
  ASSERT_TRUE(result.success);
  EXPECT_TRUE(IsFullCover(inst.system, result.cover));
  // O(rho/delta) guarantee with generous constant: greedy rho ~ ln n.
  double rho = std::log(inst.system.num_elements()) + 1;
  double bound = 4.0 * rho / delta * inst.planted_cover.size();
  EXPECT_LE(result.cover.size(), bound);
}

INSTANTIATE_TEST_SUITE_P(
    DeltaSeeds, IterSetCoverSweepTest,
    ::testing::Combine(::testing::Values(1.0, 0.5, 0.34, 0.25),
                       ::testing::Values(1, 2, 3)));

TEST(IterSetCoverTest, DeterministicPerSeed) {
  PlantedInstance inst = MakeInstance(4);
  IterSetCoverOptions options;
  options.delta = 0.5;
  options.seed = 77;
  SetStream s1(&inst.system), s2(&inst.system);
  StreamingResult a = IterSetCover(s1, options);
  StreamingResult b = IterSetCover(s2, options);
  EXPECT_EQ(a.cover.set_ids, b.cover.set_ids);
  EXPECT_EQ(a.space_words_parallel, b.space_words_parallel);
}

TEST(IterSetCoverTest, DiagnosticsShowShrinkingResiduals) {
  PlantedInstance inst = MakeInstance(5, /*n=*/2000, /*m=*/3000, /*k=*/16);
  SetStream stream(&inst.system);
  IterSetCoverOptions options;
  options.delta = 0.34;
  StreamingResult result = IterSetCover(stream, options);
  ASSERT_TRUE(result.success);
  ASSERT_FALSE(result.diagnostics.empty());
  for (const auto& diag : result.diagnostics) {
    EXPECT_LE(diag.uncovered_after, diag.uncovered_before);
    EXPECT_GT(diag.sample_size, 0u);
  }
  EXPECT_EQ(result.diagnostics.back().uncovered_after, 0u);
}

TEST(IterSetCoverTest, ExactOfflineSolverImprovesApproximation) {
  // With rho = 1 (exact offline), covers should be no larger than with
  // greedy on average; at minimum both must be feasible.
  PlantedInstance inst = MakeInstance(6, /*n=*/300, /*m=*/600, /*k=*/8);
  ExactSolver exact(200000);
  IterSetCoverOptions greedy_options;
  greedy_options.delta = 0.5;
  IterSetCoverOptions exact_options = greedy_options;
  exact_options.offline = &exact;
  SetStream s1(&inst.system), s2(&inst.system);
  StreamingResult with_greedy = IterSetCover(s1, greedy_options);
  StreamingResult with_exact = IterSetCover(s2, exact_options);
  ASSERT_TRUE(with_greedy.success);
  ASSERT_TRUE(with_exact.success);
  EXPECT_TRUE(IsFullCover(inst.system, with_exact.cover));
}

TEST(IterSetCoverTest, FinalSweepFinishesResidual) {
  PlantedInstance inst = MakeInstance(7);
  SetStream stream(&inst.system);
  IterSetCoverOptions options;
  options.delta = 0.5;
  options.final_sweep = true;
  StreamingResult result = IterSetCover(stream, options);
  ASSERT_TRUE(result.success);
  EXPECT_TRUE(IsFullCover(inst.system, result.cover));
}

TEST(IterSetCoverTest, SpaceGrowsWithDelta) {
  // O~(m n^delta): larger delta => larger samples and more stored
  // projection words. Isolated on the correct guess k = OPT with a
  // small sample constant so the n^delta term is not clamped by the
  // residual size (at laptop scale the polylog factors dominate
  // otherwise; the bench shows the same effect at scale).
  PlantedInstance inst = MakeInstance(8, /*n=*/4000, /*m=*/2500, /*k=*/4);
  auto run = [&](double delta) {
    SetStream stream(&inst.system);
    IterSetCoverOptions options;
    options.delta = delta;
    options.sample_constant = 0.01;
    StreamingResult r = IterSetCoverSingleGuess(stream, 4, options);
    EXPECT_FALSE(r.diagnostics.empty());
    return std::pair(r.diagnostics[0].sample_size,
                     r.diagnostics[0].projection_words);
  };
  auto [sample_small, words_small] = run(0.2);
  auto [sample_large, words_large] = run(0.9);
  EXPECT_LT(sample_small, sample_large);
  EXPECT_LT(words_small, words_large);
}

TEST(IterSetCoverTest, SpaceStaysWellBelowInputSize) {
  // The whole point: strongly sublinear space on the working guess.
  // With the sampling actually engaged (small c), the footprint of the
  // k = OPT guess stays well under the input size.
  PlantedInstance inst = MakeInstance(9, /*n=*/4000, /*m=*/3000, /*k=*/4);
  SetStream stream(&inst.system);
  IterSetCoverOptions options;
  options.delta = 0.34;
  options.sample_constant = 0.01;
  StreamingResult result = IterSetCoverSingleGuess(stream, 4, options);
  EXPECT_LT(result.space_words_max_guess, inst.system.total_size() / 2);
}

TEST(IterSetCoverTest, SizeTestMultiplierAblation) {
  // Raising the threshold multiplier means fewer heavy picks; the
  // algorithm must still produce a feasible cover.
  PlantedInstance inst = MakeInstance(10);
  for (double mult : {0.5, 1.0, 2.0}) {
    SetStream stream(&inst.system);
    IterSetCoverOptions options;
    options.delta = 0.5;
    options.size_test_multiplier = mult;
    StreamingResult result = IterSetCover(stream, options);
    ASSERT_TRUE(result.success) << "multiplier " << mult;
  }
}

TEST(IterSetCoverTest, TrivialSingleSetInstance) {
  SetSystem::Builder b(16);
  std::vector<uint32_t> all;
  for (uint32_t i = 0; i < 16; ++i) all.push_back(i);
  b.AddSet(all);
  SetSystem system = std::move(b).Build();
  SetStream stream(&system);
  IterSetCoverOptions options;
  options.delta = 0.5;
  StreamingResult result = IterSetCover(stream, options);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.cover.size(), 1u);
}

}  // namespace
}  // namespace streamcover
