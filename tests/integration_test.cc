// Cross-module integration tests: full pipelines combining generators,
// IO, streams, all solvers, the geometric stack, and the lower-bound
// constructions; plus failure injection.

#include <gtest/gtest.h>

#include <sstream>

#include "baselines/iterative_greedy.h"
#include "baselines/store_all_greedy.h"
#include "baselines/threshold_greedy.h"
#include "commlb/isc_to_setcover.h"
#include "core/iter_set_cover.h"
#include "geometry/geom_generators.h"
#include "geometry/geom_set_cover.h"
#include "geometry/range_space.h"
#include "offline/exact.h"
#include "offline/greedy.h"
#include "setsystem/generators.h"
#include "setsystem/io.h"

namespace streamcover {
namespace {

TEST(IntegrationTest, GenerateSaveLoadSolveRoundTrip) {
  Rng rng(1);
  PlantedOptions options;
  options.num_elements = 200;
  options.num_sets = 500;
  options.cover_size = 8;
  PlantedInstance inst = GeneratePlanted(options, rng);

  std::stringstream buffer;
  WriteSetSystem(inst.system, buffer);
  std::string error;
  auto loaded = ReadSetSystem(buffer, &error);
  ASSERT_TRUE(loaded.has_value()) << error;

  SetStream stream(&*loaded);
  IterSetCoverOptions algo;
  algo.delta = 0.5;
  StreamingResult result = IterSetCover(stream, algo);
  ASSERT_TRUE(result.success);
  // Covers computed on the loaded copy apply to the original.
  EXPECT_TRUE(IsFullCover(inst.system, result.cover));
}

TEST(IntegrationTest, AllAlgorithmsAgreeOnFeasibility) {
  Rng rng(2);
  PlantedOptions options;
  options.num_elements = 300;
  options.num_sets = 700;
  options.cover_size = 10;
  PlantedInstance inst = GeneratePlanted(options, rng);

  std::vector<std::pair<std::string, size_t>> covers;
  {
    SetStream s(&inst.system);
    BaselineResult r = StoreAllGreedy(s);
    ASSERT_TRUE(r.success);
    covers.push_back({"store-all", r.cover.size()});
  }
  {
    SetStream s(&inst.system);
    BaselineResult r = IterativeGreedy(s);
    ASSERT_TRUE(r.success);
    covers.push_back({"iterative", r.cover.size()});
  }
  {
    SetStream s(&inst.system);
    BaselineResult r = ProgressiveGreedy(s);
    ASSERT_TRUE(r.success);
    covers.push_back({"progressive", r.cover.size()});
  }
  {
    SetStream s(&inst.system);
    BaselineResult r = PolynomialThresholdCover(s, 2);
    ASSERT_TRUE(r.success);
    covers.push_back({"cw16-p2", r.cover.size()});
  }
  {
    SetStream s(&inst.system);
    IterSetCoverOptions algo;
    algo.delta = 0.5;
    StreamingResult r = IterSetCover(s, algo);
    ASSERT_TRUE(r.success);
    covers.push_back({"iter-set-cover", r.cover.size()});
  }
  // Store-all greedy == offline greedy: the quality yardstick. Nothing
  // should be more than ~10x worse on this easy instance.
  size_t yardstick = covers[0].second;
  for (const auto& [name, size] : covers) {
    EXPECT_LE(size, yardstick * 10) << name;
    EXPECT_GE(size, inst.planted_cover.size() / 2) << name;
  }
}

TEST(IntegrationTest, GeometricPipelineMatchesAbstractPipeline) {
  // Solving the geometric instance directly and solving its abstract
  // range space must both produce feasible covers of similar quality.
  Rng rng(3);
  GeomPlantedOptions geo;
  geo.num_points = 250;
  geo.num_shapes = 500;
  geo.cover_size = 7;
  geo.shape_class = ShapeClass::kDisk;
  GeomInstance inst = GeneratePlantedGeom(geo, rng);
  SetSystem abstract = BuildRangeSpace(inst.points, inst.shapes);

  ShapeStream geom_stream(&inst.shapes);
  GeomSetCoverOptions geom_algo;
  geom_algo.delta = 0.25;
  GeomStreamingResult geom_result =
      AlgGeomSC(geom_stream, inst.points, geom_algo);
  ASSERT_TRUE(geom_result.success);
  EXPECT_TRUE(IsFullCover(abstract, geom_result.cover));

  SetStream abstract_stream(&abstract);
  IterSetCoverOptions abstract_algo;
  abstract_algo.delta = 0.25;
  StreamingResult abstract_result =
      IterSetCover(abstract_stream, abstract_algo);
  ASSERT_TRUE(abstract_result.success);

  EXPECT_LE(geom_result.cover.size(),
            10 * (abstract_result.cover.size() + 1));
}

TEST(IntegrationTest, LowerBoundInstanceSolvedByUpperBoundAlgorithm) {
  // The §5 gadget is still a SetCover instance; iterSetCover must cover
  // it (with its usual approximation, not optimally).
  Rng rng(4);
  IscInstance isc = GenerateRandomIsc(4, 2, 2, rng);
  IscReduction red = ReduceIscToSetCover(isc);
  SetStream stream(&red.system);
  IterSetCoverOptions algo;
  algo.delta = 0.5;
  StreamingResult result = IterSetCover(stream, algo);
  ASSERT_TRUE(result.success);
  EXPECT_TRUE(IsFullCover(red.system, result.cover));
  EXPECT_GE(result.cover.size(), red.expected_opt);  // Lemma 5.5
}

TEST(IntegrationTest, UncoverableInstanceReportsFailure) {
  SetSystem::Builder b(10);
  b.AddSet({0, 1, 2});
  b.AddSet({3, 4});
  SetSystem system = std::move(b).Build();  // 5..9 uncoverable
  SetStream stream(&system);
  IterSetCoverOptions algo;
  algo.delta = 0.5;
  StreamingResult result = IterSetCover(stream, algo);
  EXPECT_FALSE(result.success);
}

TEST(IntegrationTest, ExactSolverZeroBudgetStillFeasible) {
  // Failure injection: a node budget of zero must degrade to the greedy
  // incumbent, never to an infeasible cover.
  Rng rng(5);
  PlantedOptions options;
  options.num_elements = 100;
  options.num_sets = 200;
  options.cover_size = 5;
  PlantedInstance inst = GeneratePlanted(options, rng);
  ExactSolver solver(/*max_nodes=*/0);
  OfflineResult result = solver.Solve(inst.system);
  EXPECT_FALSE(result.proven_optimal);
  EXPECT_TRUE(IsFullCover(inst.system, result.cover));
}

TEST(IntegrationTest, PruneRedundantImprovesStreamingCovers) {
  Rng rng(6);
  PlantedOptions options;
  options.num_elements = 400;
  options.num_sets = 900;
  options.cover_size = 12;
  PlantedInstance inst = GeneratePlanted(options, rng);
  SetStream stream(&inst.system);
  IterSetCoverOptions algo;
  algo.delta = 0.34;
  StreamingResult result = IterSetCover(stream, algo);
  ASSERT_TRUE(result.success);
  Cover pruned = result.cover;
  PruneRedundant(inst.system, pruned);
  EXPECT_TRUE(IsFullCover(inst.system, pruned));
  EXPECT_LE(pruned.size(), result.cover.size());
}

}  // namespace
}  // namespace streamcover
