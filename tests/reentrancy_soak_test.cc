// Re-entrancy soak: many threads solving over ONE shared Instance.
//
// The serving layer's core claim is that a prepared Instance is an
// immutable repository: any number of concurrent RunSolverShared calls
// may scan it simultaneously through forked sources without racing and
// without perturbing each other's results. This test is the claim's
// enforcement — N threads × M solvers against one shared Instance,
// for BOTH backings the serve path uses (in-memory CSR and an
// mmap-backed binary file), with every concurrent cover required to be
// byte-identical to the serial run of the same (solver, seed) pair.
//
// Run it under TSan (the CI serve job does): any unsynchronized access
// on the shared scan path — source state, pass counters, live-mask
// words — shows up as a data race here long before it corrupts a
// result.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/instance.h"
#include "core/solver_registry.h"
#include "geometry/geom_generators.h"
#include "setsystem/binary_io.h"
#include "setsystem/generators.h"
#include "util/rng.h"

namespace streamcover {
namespace {

constexpr const char* kSolvers[] = {"iter", "store_all_greedy",
                                    "threshold_greedy"};
constexpr size_t kNumSolvers = sizeof(kSolvers) / sizeof(kSolvers[0]);
constexpr uint32_t kThreads = 8;
constexpr uint32_t kRoundsPerThread = 4;

RunOptions OptionsFor(uint32_t thread, uint32_t round) {
  RunOptions options;
  options.delta = 0.5;
  options.seed = 1 + (thread * kRoundsPerThread + round) % 5;
  return options;
}

/// Runs the soak against `instance` and checks every concurrent result
/// against its serial twin.
void Soak(const Instance& instance) {
  // Serial reference: one result per (solver, seed) pair, computed
  // before any concurrency starts.
  std::vector<std::vector<RunResult>> reference(kNumSolvers);
  for (size_t s = 0; s < kNumSolvers; ++s) {
    for (uint32_t seed = 1; seed <= 5; ++seed) {
      RunOptions options;
      options.delta = 0.5;
      options.seed = seed;
      RunResult r = RunSolverShared(kSolvers[s], instance, options);
      ASSERT_TRUE(r.ok()) << kSolvers[s] << ": " << r.error;
      ASSERT_TRUE(r.success);
      reference[s].push_back(std::move(r));
    }
  }

  std::vector<std::thread> threads;
  std::vector<std::string> failures(kThreads);
  for (uint32_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint32_t round = 0; round < kRoundsPerThread; ++round) {
        const size_t s = (t + round) % kNumSolvers;
        RunOptions options = OptionsFor(t, round);
        RunResult r = RunSolverShared(kSolvers[s], instance, options);
        if (!r.ok()) {
          failures[t] = std::string(kSolvers[s]) + ": " + r.error;
          return;
        }
        const RunResult& want = reference[s][options.seed - 1];
        // Byte-identical cover AND identical accounting: concurrency
        // must be invisible to the algorithm.
        if (r.cover.set_ids != want.cover.set_ids ||
            r.passes != want.passes ||
            r.sequential_scans != want.sequential_scans) {
          failures[t] = std::string(kSolvers[s]) +
                        ": concurrent result diverged from serial";
          return;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (uint32_t t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(failures[t].empty()) << "thread " << t << ": "
                                     << failures[t];
  }
}

PlantedInstance MakePlanted() {
  Rng rng(7);
  PlantedOptions options;
  options.num_elements = 400;
  options.num_sets = 900;
  options.cover_size = 10;
  return GeneratePlanted(options, rng);
}

TEST(ReentrancySoakTest, SharedMemoryBackedInstance) {
  Instance instance =
      Instance::FromPlanted(MakePlanted(), {"soak-mem", "generated"});
  instance.Prepare();
  Soak(instance);
}

TEST(ReentrancySoakTest, SharedMmapBackedInstance) {
  PlantedInstance planted = MakePlanted();
  const std::string path = ::testing::TempDir() + "/soak_shared.bin";
  std::string error;
  ASSERT_TRUE(WriteBinarySetSystem(planted.system, path, &error)) << error;
  std::optional<Instance> instance = Instance::FromFile(path, &error);
  ASSERT_TRUE(instance.has_value()) << error;
  instance->Prepare();
  Soak(*instance);
}

TEST(ReentrancySoakTest, UnpreparedOrUnforkableInstanceFailsSoft) {
  // NewConcurrentStream on a never-prepared geometric instance must
  // refuse with an error, not materialize lazily under const.
  Instance instance = Instance::FromGeometry(GenerateFigure12(20),
                                             {"soak-geom", "generated"});
  std::string error;
  const Instance& shared = instance;
  EXPECT_FALSE(shared.NewConcurrentStream(&error).has_value());
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace streamcover
