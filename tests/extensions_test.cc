// Tests for the extension features: epsilon-Partial Set Cover
// (the [ER14]/[CW16] generalization), Max k-Cover ([SG09]'s origin
// problem), and weighted greedy cover.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/streaming_max_cover.h"
#include "baselines/threshold_greedy.h"
#include "core/iter_set_cover.h"
#include "offline/max_cover.h"
#include "offline/weighted_greedy.h"
#include "setsystem/generators.h"

namespace streamcover {
namespace {

PlantedInstance MakeInstance(uint64_t seed, uint32_t n = 600,
                             uint32_t m = 1400, uint32_t k = 12) {
  Rng rng(seed);
  PlantedOptions options;
  options.num_elements = n;
  options.num_sets = m;
  options.cover_size = k;
  options.noise_max_size = n / 20;
  return GeneratePlanted(options, rng);
}

// ----- epsilon-Partial Set Cover ------------------------------------

class PartialCoverTest : public ::testing::TestWithParam<double> {};

TEST_P(PartialCoverTest, IterSetCoverReachesRequestedCoverage) {
  const double fraction = GetParam();
  PlantedInstance inst = MakeInstance(1);
  SetStream stream(&inst.system);
  IterSetCoverOptions options;
  options.delta = 0.5;
  options.coverage_fraction = fraction;
  StreamingResult r = IterSetCover(stream, options);
  ASSERT_TRUE(r.success);
  const double covered = static_cast<double>(CoveredCount(inst.system,
                                                          r.cover));
  EXPECT_GE(covered,
            fraction * inst.system.num_elements() - 1.0);
}

TEST_P(PartialCoverTest, ThresholdBaselinesReachRequestedCoverage) {
  const double fraction = GetParam();
  PlantedInstance inst = MakeInstance(2);
  {
    SetStream stream(&inst.system);
    BaselineResult r = ProgressiveGreedy(stream, fraction);
    ASSERT_TRUE(r.success);
    EXPECT_GE(static_cast<double>(CoveredCount(inst.system, r.cover)),
              fraction * inst.system.num_elements() - 1.0);
  }
  {
    SetStream stream(&inst.system);
    BaselineResult r = PolynomialThresholdCover(stream, 2, fraction);
    ASSERT_TRUE(r.success);
    EXPECT_GE(static_cast<double>(CoveredCount(inst.system, r.cover)),
              fraction * inst.system.num_elements() - 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Fractions, PartialCoverTest,
                         ::testing::Values(0.5, 0.9, 0.99, 1.0));

TEST(PartialCoverTest, PartialCoversAreNoLargerThanFull) {
  PlantedInstance inst = MakeInstance(3);
  auto run = [&](double fraction) {
    SetStream stream(&inst.system);
    IterSetCoverOptions options;
    options.delta = 0.5;
    options.coverage_fraction = fraction;
    return IterSetCover(stream, options).cover.size();
  };
  EXPECT_LE(run(0.5), run(1.0));
}

TEST(PartialCoverTest, PartialSucceedsOnUncoverableInstances) {
  // 10% of elements are in no set: a 0.9-partial cover must still
  // succeed while the full cover fails.
  SetSystem::Builder b(100);
  std::vector<uint32_t> covered_part;
  for (uint32_t e = 0; e < 90; ++e) covered_part.push_back(e);
  b.AddSet(covered_part);
  SetSystem system = std::move(b).Build();
  {
    SetStream stream(&system);
    IterSetCoverOptions options;
    options.coverage_fraction = 0.9;
    EXPECT_TRUE(IterSetCover(stream, options).success);
  }
  {
    SetStream stream(&system);
    IterSetCoverOptions options;
    EXPECT_FALSE(IterSetCover(stream, options).success);
  }
}

// ----- Max k-Cover ---------------------------------------------------

TEST(MaxCoverTest, GreedyMatchesNemhauserBoundVsBruteForce) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    SetSystem system = GenerateUniformRandom(20, 12, 0.25, rng);
    for (uint32_t budget : {1u, 2u, 3u}) {
      MaxCoverResult greedy = GreedyMaxCover(system, budget);
      MaxCoverResult opt = BruteForceMaxCover(system, budget);
      EXPECT_LE(greedy.cover.size(), budget);
      EXPECT_GE(static_cast<double>(greedy.covered),
                (1.0 - 1.0 / std::exp(1.0)) *
                        static_cast<double>(opt.covered) -
                    1e-9)
          << "seed " << seed << " budget " << budget;
    }
  }
}

TEST(MaxCoverTest, FullBudgetCoversEverythingCoverable) {
  PlantedInstance inst = MakeInstance(4);
  MaxCoverResult r =
      GreedyMaxCover(inst.system, inst.system.num_sets());
  EXPECT_EQ(r.covered, inst.system.num_elements());
}

TEST(MaxCoverTest, CoveredCountMatchesVerification) {
  Rng rng(5);
  SetSystem system = GenerateUniformRandom(50, 30, 0.2, rng);
  MaxCoverResult r = GreedyMaxCover(system, 5);
  EXPECT_EQ(r.covered, CoveredCount(system, r.cover));
}

TEST(StreamingMaxCoverTest, BudgetRespectedAndCompetitive) {
  PlantedInstance inst = MakeInstance(6);
  for (uint32_t budget : {4u, 8u, 16u}) {
    SetStream stream(&inst.system);
    StreamingMaxCoverResult streamed = StreamingMaxCover(stream, budget);
    EXPECT_LE(streamed.cover.size(), budget);
    EXPECT_EQ(streamed.covered,
              CoveredCount(inst.system, streamed.cover));
    MaxCoverResult offline = GreedyMaxCover(inst.system, budget);
    // Thresholding loses at most a constant factor vs offline greedy.
    EXPECT_GE(streamed.covered, offline.covered / 3);
    // O~(n) space.
    EXPECT_LT(streamed.space_words, inst.system.total_size());
  }
}

TEST(StreamingMaxCoverTest, SingleBudgetTakesABigSet) {
  PlantedInstance inst = MakeInstance(7);
  SetStream stream(&inst.system);
  StreamingMaxCoverResult r = StreamingMaxCover(stream, 1);
  ASSERT_EQ(r.cover.size(), 1u);
  // The thresholding guarantees at least n/2^passes coverage; with a
  // planted block structure the first qualifying set is large.
  EXPECT_GE(r.covered, inst.system.num_elements() / 64);
}

// ----- Weighted greedy -----------------------------------------------

TEST(WeightedGreedyTest, UnitWeightsMatchUnweightedBehaviour) {
  PlantedInstance inst = MakeInstance(8, /*n=*/200, /*m=*/150, /*k=*/6);
  std::vector<double> unit(inst.system.num_sets(), 1.0);
  WeightedCoverResult r = WeightedGreedyCover(inst.system, unit);
  EXPECT_TRUE(IsFullCover(inst.system, r.cover));
  EXPECT_DOUBLE_EQ(r.total_weight, static_cast<double>(r.cover.size()));
}

TEST(WeightedGreedyTest, PrefersCheapSets) {
  // Two ways to cover {0,1}: one expensive set, or two cheap singletons.
  SetSystem::Builder b(2);
  b.AddSet({0, 1});  // weight 10
  b.AddSet({0});     // weight 1
  b.AddSet({1});     // weight 1
  SetSystem system = std::move(b).Build();
  WeightedCoverResult r =
      WeightedGreedyCover(system, {10.0, 1.0, 1.0});
  EXPECT_TRUE(IsFullCover(system, r.cover));
  EXPECT_DOUBLE_EQ(r.total_weight, 2.0);
}

TEST(WeightedGreedyTest, WithinHarmonicFactorOfBruteForce) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    SetSystem system = GenerateUniformRandom(16, 10, 0.3, rng);
    if (!IsCoverable(system)) continue;
    std::vector<double> weights;
    for (uint32_t s = 0; s < system.num_sets(); ++s) {
      weights.push_back(0.5 + rng.UniformDouble() * 4.0);
    }
    WeightedCoverResult greedy = WeightedGreedyCover(system, weights);
    WeightedCoverResult opt = BruteForceWeightedCover(system, weights);
    double h_n = std::log(16.0) + 1.0;
    EXPECT_LE(greedy.total_weight, h_n * opt.total_weight + 1e-9)
        << "seed " << seed;
    EXPECT_GE(greedy.total_weight, opt.total_weight - 1e-9);
  }
}

TEST(WeightedGreedyTest, IgnoresUncoverableElements) {
  SetSystem::Builder b(3);
  b.AddSet({0});
  SetSystem system = std::move(b).Build();
  WeightedCoverResult r = WeightedGreedyCover(system, {2.0});
  EXPECT_EQ(r.cover.set_ids, (std::vector<uint32_t>{0}));
  EXPECT_DOUBLE_EQ(r.total_weight, 2.0);
}

}  // namespace
}  // namespace streamcover
