// SolverRegistry: every registered solver must produce a feasible cover
// on a shared planted instance through the uniform RunSolver entry
// point, and unknown names must fail cleanly.

#include "core/solver_registry.h"

#include <algorithm>
#include <string>
#include <vector>

#include "geometry/range_space.h"
#include "gtest/gtest.h"
#include "setsystem/cover.h"
#include "setsystem/generators.h"
#include "stream/set_stream.h"
#include "util/rng.h"

namespace streamcover {
namespace {

PlantedInstance SharedInstance() {
  PlantedOptions options;
  options.num_elements = 300;
  options.num_sets = 600;
  options.cover_size = 6;
  options.noise_max_size = 20;
  Rng rng(7);
  return GeneratePlanted(options, rng);
}

TEST(SolverRegistryTest, EnumeratesAtLeastEightSolvers) {
  const std::vector<std::string> names = SolverRegistry::Global().Names();
  EXPECT_GE(names.size(), 8u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const char* expected :
       {"iter", "store_all_greedy", "iterative_greedy",
        "progressive_greedy", "threshold_greedy", "dimv14",
        "streaming_max_cover", "geom"}) {
    EXPECT_TRUE(SolverRegistry::Global().Contains(expected))
        << "missing solver: " << expected;
  }
}

TEST(SolverRegistryTest, EveryAbstractSolverProducesFeasibleCover) {
  PlantedInstance inst = SharedInstance();
  for (const SolverRegistry::Entry* entry :
       SolverRegistry::Global().Entries()) {
    if (entry->kind == SolverRegistry::Kind::kGeometric) continue;
    SetStream stream(&inst.system);
    RunOptions options;
    options.sample_constant = 0.05;
    options.seed = 11;
    RunResult r = RunSolver(entry->name, stream, options);
    ASSERT_TRUE(r.ok()) << entry->name << ": " << r.error;
    EXPECT_EQ(r.solver, entry->name);
    EXPECT_TRUE(r.success) << entry->name << " reported failure";
    EXPECT_TRUE(IsFullCover(inst.system, r.cover))
        << entry->name << " returned an infeasible cover of size "
        << r.cover.size();
    EXPECT_GT(r.passes, 0u) << entry->name;
    EXPECT_GT(r.space_words, 0u) << entry->name;
  }
}

TEST(SolverRegistryTest, UnknownNameFailsCleanly) {
  PlantedInstance inst = SharedInstance();
  SetStream stream(&inst.system);
  RunResult r = RunSolver("definitely-not-a-solver", stream);
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.success);
  EXPECT_TRUE(r.cover.set_ids.empty());
  // The diagnostic names the unknown solver and lists the alternatives.
  EXPECT_NE(r.error.find("definitely-not-a-solver"), std::string::npos);
  EXPECT_NE(r.error.find("iter"), std::string::npos);
  // The failed dispatch must not have consumed a pass.
  EXPECT_EQ(stream.passes(), 0u);
}

TEST(SolverRegistryTest, GeometricSolverWithoutGeometryFailsCleanly) {
  PlantedInstance inst = SharedInstance();
  SetStream stream(&inst.system);
  RunResult r = RunSolver("geom", stream);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("geometry"), std::string::npos);
  EXPECT_EQ(stream.passes(), 0u);
}

TEST(SolverRegistryTest, GeometricSolverCoversPlantedGeomInstance) {
  Rng rng(5);
  GeomPlantedOptions geom_options;
  geom_options.num_points = 150;
  geom_options.num_shapes = 400;
  geom_options.cover_size = 4;
  geom_options.shape_class = ShapeClass::kDisk;
  GeomInstance instance = GeneratePlantedGeom(geom_options, rng);
  GeomDataset dataset{instance.points, instance.shapes};

  // The abstract stream is ignored by geometric solvers; pass an empty
  // system to prove it.
  SetSystem empty;
  SetStream stream(&empty);
  RunOptions options;
  options.delta = 0.25;
  options.sample_constant = 0.05;
  options.seed = 3;
  options.geometry = &dataset;
  RunResult r = RunSolver("geom", stream, options);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.success);
  SetSystem ranges = BuildRangeSpace(dataset.points, dataset.shapes);
  EXPECT_TRUE(IsFullCover(ranges, r.cover));
}

TEST(SolverRegistryTest, RegisterRejectsDuplicatesAndEmptyEntries) {
  SolverRegistry registry;
  SolverRegistry::Entry entry;
  entry.name = "custom";
  entry.run = [](SetStream&, const RunOptions&) { return RunResult{}; };
  EXPECT_TRUE(registry.Register(entry));
  EXPECT_FALSE(registry.Register(entry)) << "duplicate name accepted";
  SolverRegistry::Entry no_runner;
  no_runner.name = "no-runner";
  EXPECT_FALSE(registry.Register(no_runner));
  SolverRegistry::Entry no_name;
  no_name.run = entry.run;
  EXPECT_FALSE(registry.Register(no_name));
  EXPECT_EQ(registry.size(), 1u);
}

}  // namespace
}  // namespace streamcover
