// SolverRegistry: every registered solver must produce a feasible cover
// on a shared planted instance through the uniform RunSolver entry
// point, and unknown names must fail cleanly.

#include "core/solver_registry.h"

#include <algorithm>
#include <string>
#include <vector>

#include "baselines/dimv14.h"
#include "core/instance.h"
#include "core/iter_set_cover.h"
#include "geometry/geom_set_cover.h"
#include "geometry/range_space.h"
#include "gtest/gtest.h"
#include "setsystem/cover.h"
#include "setsystem/generators.h"
#include "stream/set_stream.h"
#include "util/rng.h"

namespace streamcover {
namespace {

PlantedInstance SharedInstance() {
  PlantedOptions options;
  options.num_elements = 300;
  options.num_sets = 600;
  options.cover_size = 6;
  options.noise_max_size = 20;
  Rng rng(7);
  return GeneratePlanted(options, rng);
}

TEST(SolverRegistryTest, EnumeratesAtLeastEightSolvers) {
  const std::vector<std::string> names = SolverRegistry::Global().Names();
  EXPECT_GE(names.size(), 8u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const char* expected :
       {"iter", "store_all_greedy", "iterative_greedy",
        "progressive_greedy", "threshold_greedy", "dimv14",
        "streaming_max_cover", "geom"}) {
    EXPECT_TRUE(SolverRegistry::Global().Contains(expected))
        << "missing solver: " << expected;
  }
}

TEST(SolverRegistryTest, EveryAbstractSolverProducesFeasibleCover) {
  PlantedInstance inst = SharedInstance();
  for (const SolverRegistry::Entry* entry :
       SolverRegistry::Global().Entries()) {
    if (entry->kind == SolverRegistry::Kind::kGeometric) continue;
    SetStream stream(&inst.system);
    RunOptions options;
    options.sample_constant = 0.05;
    options.seed = 11;
    RunResult r = RunSolver(entry->name, stream, options);
    ASSERT_TRUE(r.ok()) << entry->name << ": " << r.error;
    EXPECT_EQ(r.solver, entry->name);
    EXPECT_TRUE(r.success) << entry->name << " reported failure";
    EXPECT_TRUE(IsFullCover(inst.system, r.cover))
        << entry->name << " returned an infeasible cover of size "
        << r.cover.size();
    EXPECT_GT(r.passes, 0u) << entry->name;
    EXPECT_GT(r.space_words, 0u) << entry->name;
  }
}

TEST(SolverRegistryTest, UnknownNameFailsCleanly) {
  PlantedInstance inst = SharedInstance();
  SetStream stream(&inst.system);
  RunResult r = RunSolver("definitely-not-a-solver", stream);
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.success);
  EXPECT_TRUE(r.cover.set_ids.empty());
  // The diagnostic names the unknown solver and lists the alternatives.
  EXPECT_NE(r.error.find("definitely-not-a-solver"), std::string::npos);
  EXPECT_NE(r.error.find("iter"), std::string::npos);
  // The failed dispatch must not have consumed a pass.
  EXPECT_EQ(stream.passes(), 0u);
}

TEST(SolverRegistryTest, GeometricSolverWithoutGeometryFailsCleanly) {
  PlantedInstance inst = SharedInstance();
  SetStream stream(&inst.system);
  RunResult r = RunSolver("geom", stream);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("geometry"), std::string::npos);
  EXPECT_EQ(stream.passes(), 0u);
}

TEST(SolverRegistryTest, GeometricSolverCoversPlantedGeomInstance) {
  Rng rng(5);
  GeomPlantedOptions geom_options;
  geom_options.num_points = 150;
  geom_options.num_shapes = 400;
  geom_options.cover_size = 4;
  geom_options.shape_class = ShapeClass::kDisk;
  GeomInstance geom = GeneratePlantedGeom(geom_options, rng);
  SetSystem ranges = BuildRangeSpace(geom.points, geom.shapes);

  // The points/shapes payload travels inside the Instance; nobody
  // constructs RunOptions::geometry.
  Instance instance =
      Instance::FromGeometry(std::move(geom), {"planted-disks", "test"});
  RunOptions options;
  options.delta = 0.25;
  options.sample_constant = 0.05;
  options.seed = 3;
  RunResult r = RunSolver("geom", instance, options);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.success);
  EXPECT_TRUE(IsFullCover(ranges, r.cover));
}

TEST(SolverRegistryTest, SampleConstantDefaultsAgreeEverywhere) {
  // One documented default for the sample-size constant c: the
  // Figure 1.3 value 0.5. RunOptions used to say 0.05 while the
  // per-algorithm option structs said 0.5; a sweep that switched
  // between entry points silently changed sample sizes.
  EXPECT_DOUBLE_EQ(RunOptions{}.sample_constant,
                   IterSetCoverOptions{}.sample_constant);
  EXPECT_DOUBLE_EQ(RunOptions{}.sample_constant,
                   GeomSetCoverOptions{}.sample_constant);
  EXPECT_DOUBLE_EQ(RunOptions{}.sample_constant,
                   Dimv14Options{}.sample_constant);
  EXPECT_DOUBLE_EQ(RunOptions{}.sample_constant, 0.5);
}

TEST(SolverRegistryTest, InstanceOverloadMatchesDeprecatedStreamOverload) {
  PlantedInstance inst = SharedInstance();
  RunOptions options;
  options.sample_constant = 0.05;
  options.seed = 11;

  SetStream stream(&inst.system);
  RunResult via_stream = RunSolver("iter", stream, options);

  Instance wrapped =
      Instance::WrapSystem(&inst.system, {"shared", "test"});
  RunResult via_instance = RunSolver("iter", wrapped, options);

  ASSERT_TRUE(via_stream.ok());
  ASSERT_TRUE(via_instance.ok());
  EXPECT_EQ(via_stream.cover.set_ids, via_instance.cover.set_ids);
  EXPECT_EQ(via_stream.passes, via_instance.passes);
  EXPECT_EQ(via_stream.space_words, via_instance.space_words);
  EXPECT_EQ(via_instance.instance, "shared");
  EXPECT_TRUE(via_stream.instance.empty());
}

TEST(SolverRegistryTest, SingleGuessProbeRunsThroughRegistry) {
  PlantedInstance inst = SharedInstance();
  Instance instance = Instance::WrapSystem(&inst.system, {"shared", ""});
  RunOptions options;
  options.sample_constant = 0.05;
  options.seed = 11;
  options.iter_guess = 8;
  RunResult r = RunSolver("iter", instance, options);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_GT(r.projection_words_peak, 0u);
  // Single guess: the sequential implementation performs exactly the
  // per-guess passes, no parallel-guess multiplication.
  EXPECT_EQ(r.sequential_scans, r.passes);
}

TEST(SolverRegistryTest, RegisterRejectsDuplicatesAndEmptyEntries) {
  SolverRegistry registry;
  SolverRegistry::Entry entry;
  entry.name = "custom";
  entry.run = [](SetStream&, const RunOptions&) { return RunResult{}; };
  EXPECT_TRUE(registry.Register(entry));
  EXPECT_FALSE(registry.Register(entry)) << "duplicate name accepted";
  SolverRegistry::Entry no_runner;
  no_runner.name = "no-runner";
  EXPECT_FALSE(registry.Register(no_runner));
  SolverRegistry::Entry no_name;
  no_name.run = entry.run;
  EXPECT_FALSE(registry.Register(no_name));
  EXPECT_EQ(registry.size(), 1u);
}

}  // namespace
}  // namespace streamcover
