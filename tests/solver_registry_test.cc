// SolverRegistry: every registered solver must produce a feasible cover
// on a shared planted instance through the uniform RunSolver entry
// point, unknown names must fail cleanly, and the physical-scan
// accounting of the shared-scan scheduler must hold at every thread
// count.

#include "core/solver_registry.h"

#include <algorithm>
#include <string>
#include <vector>

#include "baselines/dimv14.h"
#include "core/instance.h"
#include "core/iter_set_cover.h"
#include "geometry/geom_set_cover.h"
#include "geometry/range_space.h"
#include "gtest/gtest.h"
#include "setsystem/cover.h"
#include "setsystem/generators.h"
#include "util/rng.h"

namespace streamcover {
namespace {

PlantedInstance SharedInstance() {
  PlantedOptions options;
  options.num_elements = 300;
  options.num_sets = 600;
  options.cover_size = 6;
  options.noise_max_size = 20;
  Rng rng(7);
  return GeneratePlanted(options, rng);
}

TEST(SolverRegistryTest, EnumeratesAtLeastEightSolvers) {
  const std::vector<std::string> names = SolverRegistry::Global().Names();
  EXPECT_GE(names.size(), 8u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const char* expected :
       {"iter", "store_all_greedy", "iterative_greedy",
        "progressive_greedy", "threshold_greedy", "dimv14",
        "streaming_max_cover", "geom"}) {
    EXPECT_TRUE(SolverRegistry::Global().Contains(expected))
        << "missing solver: " << expected;
  }
}

TEST(SolverRegistryTest, EveryAbstractSolverProducesFeasibleCover) {
  PlantedInstance inst = SharedInstance();
  for (const SolverRegistry::Entry* entry :
       SolverRegistry::Global().Entries()) {
    if (entry->kind == SolverRegistry::Kind::kGeometric) continue;
    Instance instance =
        Instance::WrapSystem(&inst.system, {"shared", "test"});
    RunOptions options;
    options.sample_constant = 0.05;
    options.seed = 11;
    RunResult r = RunSolver(entry->name, instance, options);
    ASSERT_TRUE(r.ok()) << entry->name << ": " << r.error;
    EXPECT_EQ(r.solver, entry->name);
    EXPECT_TRUE(r.success) << entry->name << " reported failure";
    EXPECT_TRUE(IsFullCover(inst.system, r.cover))
        << entry->name << " returned an infeasible cover of size "
        << r.cover.size();
    EXPECT_GT(r.passes, 0u) << entry->name;
    EXPECT_GT(r.space_words, 0u) << entry->name;
    // Shared-scan accounting invariants: the repository never pays more
    // than the sequential total, and at least the per-branch max.
    EXPECT_GT(r.physical_scans, 0u) << entry->name;
    EXPECT_LE(r.physical_scans, r.sequential_scans) << entry->name;
    EXPECT_GE(r.physical_scans, r.passes) << entry->name;
  }
}

TEST(SolverRegistryTest, UnknownNameFailsCleanly) {
  PlantedInstance inst = SharedInstance();
  Instance instance = Instance::WrapSystem(&inst.system, {"shared", ""});
  RunResult r = RunSolver("definitely-not-a-solver", instance);
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.success);
  EXPECT_TRUE(r.cover.set_ids.empty());
  // The diagnostic names the unknown solver and lists the alternatives.
  EXPECT_NE(r.error.find("definitely-not-a-solver"), std::string::npos);
  EXPECT_NE(r.error.find("iter"), std::string::npos);
  EXPECT_EQ(r.passes, 0u);
  EXPECT_EQ(r.physical_scans, 0u);
}

TEST(SolverRegistryTest, GeometricSolverWithoutGeometryFailsCleanly) {
  PlantedInstance inst = SharedInstance();
  Instance instance = Instance::WrapSystem(&inst.system, {"abstract", ""});
  RunResult r = RunSolver("geom", instance);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("geometr"), std::string::npos);
  EXPECT_EQ(r.passes, 0u);
}

TEST(SolverRegistryTest, GeometricSolverCoversPlantedGeomInstance) {
  Rng rng(5);
  GeomPlantedOptions geom_options;
  geom_options.num_points = 150;
  geom_options.num_shapes = 400;
  geom_options.cover_size = 4;
  geom_options.shape_class = ShapeClass::kDisk;
  GeomInstance geom = GeneratePlantedGeom(geom_options, rng);
  SetSystem ranges = BuildRangeSpace(geom.points, geom.shapes);

  // The points/shapes payload travels inside the Instance; runners get
  // it through RunContext, never through RunOptions.
  Instance instance =
      Instance::FromGeometry(std::move(geom), {"planted-disks", "test"});
  RunOptions options;
  options.delta = 0.25;
  options.sample_constant = 0.05;
  options.seed = 3;
  RunResult r = RunSolver("geom", instance, options);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.success);
  EXPECT_TRUE(IsFullCover(ranges, r.cover));
}

TEST(SolverRegistryTest, SampleConstantDefaultsAgreeEverywhere) {
  // One documented default for the sample-size constant c: the
  // Figure 1.3 value 0.5. RunOptions used to say 0.05 while the
  // per-algorithm option structs said 0.5; a sweep that switched
  // between entry points silently changed sample sizes.
  EXPECT_DOUBLE_EQ(RunOptions{}.sample_constant,
                   IterSetCoverOptions{}.sample_constant);
  EXPECT_DOUBLE_EQ(RunOptions{}.sample_constant,
                   GeomSetCoverOptions{}.sample_constant);
  EXPECT_DOUBLE_EQ(RunOptions{}.sample_constant,
                   Dimv14Options{}.sample_constant);
  EXPECT_DOUBLE_EQ(RunOptions{}.sample_constant, 0.5);
}

TEST(SolverRegistryTest, ThreadCountNeverChangesResults) {
  // The scheduler's worker fan-out is an execution detail: every thread
  // count must produce the byte-identical cover and identical
  // accounting for every scheduler-driven solver.
  PlantedInstance inst = SharedInstance();
  for (const char* solver : {"iter", "dimv14", "threshold_greedy"}) {
    RunOptions options;
    options.sample_constant = 0.05;
    options.seed = 11;
    Instance instance = Instance::WrapSystem(&inst.system, {"shared", ""});
    RunResult serial = RunSolver(solver, instance, options);
    options.threads = 4;
    RunResult threaded = RunSolver(solver, instance, options);
    ASSERT_TRUE(serial.ok()) << solver << ": " << serial.error;
    ASSERT_TRUE(threaded.ok()) << solver << ": " << threaded.error;
    EXPECT_EQ(serial.cover.set_ids, threaded.cover.set_ids) << solver;
    EXPECT_EQ(serial.passes, threaded.passes) << solver;
    EXPECT_EQ(serial.sequential_scans, threaded.sequential_scans) << solver;
    EXPECT_EQ(serial.physical_scans, threaded.physical_scans) << solver;
    EXPECT_EQ(serial.space_words, threaded.space_words) << solver;
  }
}

TEST(SolverRegistryTest, SingleGuessProbeRunsThroughRegistry) {
  PlantedInstance inst = SharedInstance();
  Instance instance = Instance::WrapSystem(&inst.system, {"shared", ""});
  RunOptions options;
  options.sample_constant = 0.05;
  options.seed = 11;
  options.iter_guess = 8;
  RunResult r = RunSolver("iter", instance, options);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_GT(r.projection_words_peak, 0u);
  // Single guess: one consumer on the scheduler, so logical passes,
  // sequential scans, and physical scans all coincide.
  EXPECT_EQ(r.sequential_scans, r.passes);
  EXPECT_EQ(r.physical_scans, r.passes);
}

TEST(SolverRegistryTest, MultiGuessRunCollapsesPhysicalScans) {
  // The headline of the shared-scan redesign: iterSetCover's ~log n
  // guesses ride the same physical scans, so the repository pays
  // per-guess-max passes, not the sequential sum.
  PlantedInstance inst = SharedInstance();
  Instance instance = Instance::WrapSystem(&inst.system, {"shared", ""});
  RunOptions options;
  options.sample_constant = 0.05;
  options.seed = 11;
  RunResult r = RunSolver("iter", instance, options);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.physical_scans, r.passes);
  EXPECT_GT(r.sequential_scans, r.physical_scans);
}

TEST(SolverRegistryTest, RegisterRejectsDuplicatesAndEmptyEntries) {
  SolverRegistry registry;
  SolverRegistry::Entry entry;
  entry.name = "custom";
  entry.run = [](RunContext&) { return RunResult{}; };
  EXPECT_TRUE(registry.Register(entry));
  EXPECT_FALSE(registry.Register(entry)) << "duplicate name accepted";
  SolverRegistry::Entry no_runner;
  no_runner.name = "no-runner";
  EXPECT_FALSE(registry.Register(no_runner));
  SolverRegistry::Entry no_name;
  no_name.run = entry.run;
  EXPECT_FALSE(registry.Register(no_name));
  EXPECT_EQ(registry.size(), 1u);
}

}  // namespace
}  // namespace streamcover
