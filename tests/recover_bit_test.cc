// Tests for algRecoverBit (Figure 3.1): full recovery from the naive
// Ω(mn)-bit protocol; failure under sublinear (truncated) transcripts —
// the executable content of Theorem 3.2.

#include <gtest/gtest.h>

#include "commlb/recover_bit.h"

namespace streamcover {
namespace {

class RecoverBitTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RecoverBitTest, FullRecoveryFromNaiveProtocol) {
  Rng rng(GetParam());
  const uint32_t m = 8;
  const uint32_t n = 48;  // n >= c1 log m
  DisjointnessInstance inst = GenerateRandomDisjointness(m, n, rng);
  if (!IsIntersectingFamily(inst)) GTEST_SKIP();

  NaiveProtocol protocol;
  RecoverBitOptions options;
  options.seed = GetParam() * 31 + 1;
  options.query_budget = 3'000'000;
  RecoverBitResult result = RunRecoverBit(inst, protocol, options);
  EXPECT_TRUE(result.fully_recovered)
      << "recovered " << result.recovered_fraction << " using "
      << result.queries_used << " queries";
  EXPECT_EQ(result.message_bits, static_cast<uint64_t>(m) * n);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoverBitTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(RecoverBitTest, TruncatedTranscriptCannotBeDecoded) {
  Rng rng(9);
  const uint32_t m = 8;
  const uint32_t n = 48;
  DisjointnessInstance inst = GenerateRandomDisjointness(m, n, rng);
  // A transcript with 1/8 of the bits: recovery must be (far from)
  // complete — the contrapositive of Theorem 3.2.
  TruncatedProtocol protocol(static_cast<uint64_t>(m) * n / 8);
  RecoverBitOptions options;
  options.seed = 17;
  options.query_budget = 500'000;
  RecoverBitResult result = RunRecoverBit(inst, protocol, options);
  EXPECT_FALSE(result.fully_recovered);
  EXPECT_LT(result.recovered_fraction, 0.99);
}

TEST(RecoverBitTest, QueryBudgetRespected) {
  Rng rng(10);
  DisjointnessInstance inst = GenerateRandomDisjointness(8, 48, rng);
  NaiveProtocol protocol;
  RecoverBitOptions options;
  options.query_budget = 100;
  RecoverBitResult result = RunRecoverBit(inst, protocol, options);
  EXPECT_LE(result.queries_used, options.query_budget + 48);
}

TEST(RecoverBitTest, ExplicitQuerySizeHonored) {
  Rng rng(11);
  DisjointnessInstance inst = GenerateRandomDisjointness(4, 40, rng);
  NaiveProtocol protocol;
  RecoverBitOptions options;
  options.query_size = 6;
  options.query_budget = 2'000'000;
  RecoverBitResult result = RunRecoverBit(inst, protocol, options);
  // Recovery should still work with a custom probe size.
  EXPECT_GT(result.recovered_fraction, 0.0);
}

TEST(RecoverBitTest, SingleSetRecovery) {
  Rng rng(12);
  DisjointnessInstance inst = GenerateRandomDisjointness(1, 32, rng);
  NaiveProtocol protocol;
  RecoverBitOptions options;
  options.query_budget = 1'000'000;
  RecoverBitResult result = RunRecoverBit(inst, protocol, options);
  EXPECT_TRUE(result.fully_recovered);
  ASSERT_EQ(result.recovered.size(), 1u);
  EXPECT_EQ(result.recovered[0], inst.alice_sets[0].ToVector());
}

}  // namespace
}  // namespace streamcover
