// Tests for MmapSetSource: Open-time structural validation through the
// offsets footer, scan parity with the in-memory and text sources,
// graceful sticky errors on corrupt bodies, move semantics, and the
// OpenDiskSetSource magic-sniffing factory.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "core/iter_set_cover.h"
#include "setsystem/binary_io.h"
#include "setsystem/generators.h"
#include "setsystem/io.h"
#include "stream/mmap_set_source.h"
#include "stream/set_source.h"
#include "stream/set_stream.h"
#include "util/rng.h"

namespace streamcover {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

PlantedInstance MakeInstance(uint64_t seed) {
  Rng rng(seed);
  PlantedOptions options;
  options.num_elements = 150;
  options.num_sets = 300;
  options.cover_size = 6;
  return GeneratePlanted(options, rng);
}

std::string WriteBinary(const SetSystem& system, const std::string& name) {
  const std::string path = TempPath(name);
  std::string error;
  EXPECT_TRUE(WriteBinarySetSystem(system, path, &error)) << error;
  return path;
}

TEST(MmapSetSourceTest, OpenRejectsMissingTruncatedAndTextFiles) {
  std::string error;
  EXPECT_FALSE(MmapSetSource::Open(TempPath("no_such.bin"), &error)
                   .has_value());
  EXPECT_FALSE(error.empty());

  PlantedInstance inst = MakeInstance(1);
  const std::string bin = WriteBinary(inst.system, "mmap_trunc_src.bin");
  std::ifstream is(bin, std::ios::binary);
  std::string bytes(std::istreambuf_iterator<char>(is),
                    std::istreambuf_iterator<char>{});
  const std::string cut = TempPath("mmap_trunc.bin");
  {
    std::ofstream os(cut, std::ios::binary);
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size() - 16));
  }
  error.clear();
  EXPECT_FALSE(MmapSetSource::Open(cut, &error).has_value());
  EXPECT_FALSE(error.empty());

  const std::string txt = TempPath("mmap_not_binary.txt");
  {
    std::ofstream os(txt);
    os << "setcover 3 1\n1 0\n";
  }
  error.clear();
  EXPECT_FALSE(MmapSetSource::Open(txt, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(MmapSetSourceTest, ScanMatchesInMemorySource) {
  PlantedInstance inst = MakeInstance(2);
  const std::string bin = WriteBinary(inst.system, "mmap_parity.bin");
  std::string error;
  auto source = MmapSetSource::Open(bin, &error);
  ASSERT_TRUE(source.has_value()) << error;
  EXPECT_EQ(source->num_elements(), inst.system.num_elements());
  EXPECT_EQ(source->num_sets(), inst.system.num_sets());
  EXPECT_EQ(source->nnz(), inst.system.total_size());

  std::vector<std::vector<uint32_t>> sets;
  ASSERT_TRUE(source->Scan([&](const SetView& set) {
    EXPECT_EQ(set.id, sets.size());
    sets.emplace_back(set.begin(), set.end());
  }));
  ASSERT_EQ(sets.size(), inst.system.num_sets());
  for (uint32_t s = 0; s < inst.system.num_sets(); ++s) {
    auto expect = inst.system.GetSet(s);
    ASSERT_EQ(sets[s],
              std::vector<uint32_t>(expect.begin(), expect.end()))
        << "set " << s;
    // The sorted-unique dispatch invariant the kernels rely on.
    ASSERT_TRUE(std::is_sorted(sets[s].begin(), sets[s].end()));
    ASSERT_EQ(std::adjacent_find(sets[s].begin(), sets[s].end()),
              sets[s].end());
  }
  EXPECT_EQ(source->scans(), 1u);
  size_t total = 0;
  ASSERT_TRUE(
      source->Scan([&](const SetView& set) { total += set.size(); }));
  EXPECT_EQ(total, inst.system.total_size());
  EXPECT_EQ(source->scans(), 2u);
}

TEST(MmapSetSourceTest, CorruptBodyFailsScanGracefullyAndStays) {
  PlantedInstance inst = MakeInstance(3);
  const std::string bin = WriteBinary(inst.system, "mmap_corrupt_src.bin");
  std::ifstream is(bin, std::ios::binary);
  std::string bytes(std::istreambuf_iterator<char>(is),
                    std::istreambuf_iterator<char>{});
  // A size varint of ~2^35 in the first set: structurally the footer
  // still lines up, but decode must fail (size > n) without aborting.
  for (size_t i = 0; i < 5; ++i) {
    bytes[binfmt::kHeaderBytes + i] = static_cast<char>(0xFF);
  }
  const std::string bad = TempPath("mmap_corrupt.bin");
  {
    std::ofstream os(bad, std::ios::binary);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  std::string error;
  auto source = MmapSetSource::Open(bad, &error);
  // Open only checks structure; the corruption is a body-level fault.
  ASSERT_TRUE(source.has_value()) << error;
  size_t visited = 0;
  EXPECT_FALSE(source->Scan([&](const SetView&) { ++visited; }));
  EXPECT_FALSE(source->error().empty());
  EXPECT_NE(source->error().find("corrupt set"), std::string::npos)
      << source->error();
  // Sticky: the next scan refuses immediately and visits nothing.
  visited = 0;
  EXPECT_FALSE(source->Scan([&](const SetView&) { ++visited; }));
  EXPECT_EQ(visited, 0u);
}

TEST(MmapSetSourceTest, MoveTransfersMappingAndScansStillWork) {
  PlantedInstance inst = MakeInstance(4);
  const std::string bin = WriteBinary(inst.system, "mmap_move.bin");
  std::string error;
  auto source = MmapSetSource::Open(bin, &error);
  ASSERT_TRUE(source.has_value()) << error;
  MmapSetSource moved = std::move(*source);
  size_t total = 0;
  ASSERT_TRUE(moved.Scan([&](const SetView& set) { total += set.size(); }));
  EXPECT_EQ(total, inst.system.total_size());

  MmapSetSource assigned = std::move(moved);
  total = 0;
  ASSERT_TRUE(
      assigned.Scan([&](const SetView& set) { total += set.size(); }));
  EXPECT_EQ(total, inst.system.total_size());
}

TEST(MmapSetSourceTest, IterSetCoverIdenticalFromMmapAndMemory) {
  PlantedInstance inst = MakeInstance(5);
  const std::string bin = WriteBinary(inst.system, "mmap_solve.bin");

  IterSetCoverOptions algo;
  algo.delta = 0.5;
  algo.seed = 11;

  SetStream memory_stream(&inst.system);
  StreamingResult from_memory = IterSetCover(memory_stream, algo);

  std::string error;
  auto source = MmapSetSource::Open(bin, &error);
  ASSERT_TRUE(source.has_value()) << error;
  SetStream mmap_stream(&*source);
  StreamingResult from_mmap = IterSetCover(mmap_stream, algo);

  ASSERT_TRUE(from_memory.success);
  ASSERT_TRUE(from_mmap.success);
  EXPECT_EQ(from_memory.cover.set_ids, from_mmap.cover.set_ids);
  EXPECT_EQ(from_memory.passes, from_mmap.passes);
}

TEST(OpenDiskSetSourceTest, SniffsMagicAndPicksTheRightBackend) {
  PlantedInstance inst = MakeInstance(6);
  const std::string bin = WriteBinary(inst.system, "factory.bin");
  const std::string txt = TempPath("factory.txt");
  ASSERT_TRUE(SaveSetSystemToFile(inst.system, txt));

  std::string error;
  std::unique_ptr<SetSource> from_bin = OpenDiskSetSource(bin, &error);
  ASSERT_NE(from_bin, nullptr) << error;
  EXPECT_NE(dynamic_cast<MmapSetSource*>(from_bin.get()), nullptr);

  std::unique_ptr<SetSource> from_txt = OpenDiskSetSource(txt, &error);
  ASSERT_NE(from_txt, nullptr) << error;
  EXPECT_NE(dynamic_cast<FileSetSource*>(from_txt.get()), nullptr);

  // Same logical instance through both backends.
  size_t bin_total = 0, txt_total = 0;
  ASSERT_TRUE(from_bin->Scan(
      [&](const SetView& set) { bin_total += set.size(); }));
  ASSERT_TRUE(from_txt->Scan(
      [&](const SetView& set) { txt_total += set.size(); }));
  EXPECT_EQ(bin_total, inst.system.total_size());
  EXPECT_EQ(bin_total, txt_total);

  EXPECT_EQ(OpenDiskSetSource(TempPath("factory_missing.bin"), &error),
            nullptr);
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace streamcover
