// Tests for MmapSetSource: Open-time structural validation through the
// offsets footer, scan parity with the in-memory and text sources,
// graceful sticky errors on corrupt bodies, move semantics, and the
// OpenDiskSetSource magic-sniffing factory.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/iter_set_cover.h"
#include "setsystem/binary_io.h"
#include "setsystem/generators.h"
#include "setsystem/io.h"
#include "stream/mmap_set_source.h"
#include "stream/pipelined_scan.h"
#include "stream/set_source.h"
#include "stream/set_stream.h"
#include "util/cancel_token.h"
#include "util/rng.h"

namespace streamcover {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

PlantedInstance MakeInstance(uint64_t seed) {
  Rng rng(seed);
  PlantedOptions options;
  options.num_elements = 150;
  options.num_sets = 300;
  options.cover_size = 6;
  return GeneratePlanted(options, rng);
}

std::string WriteBinary(const SetSystem& system, const std::string& name) {
  const std::string path = TempPath(name);
  std::string error;
  EXPECT_TRUE(WriteBinarySetSystem(system, path, &error)) << error;
  return path;
}

TEST(MmapSetSourceTest, OpenRejectsMissingTruncatedAndTextFiles) {
  std::string error;
  EXPECT_FALSE(MmapSetSource::Open(TempPath("no_such.bin"), &error)
                   .has_value());
  EXPECT_FALSE(error.empty());

  PlantedInstance inst = MakeInstance(1);
  const std::string bin = WriteBinary(inst.system, "mmap_trunc_src.bin");
  std::ifstream is(bin, std::ios::binary);
  std::string bytes(std::istreambuf_iterator<char>(is),
                    std::istreambuf_iterator<char>{});
  const std::string cut = TempPath("mmap_trunc.bin");
  {
    std::ofstream os(cut, std::ios::binary);
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size() - 16));
  }
  error.clear();
  EXPECT_FALSE(MmapSetSource::Open(cut, &error).has_value());
  EXPECT_FALSE(error.empty());

  const std::string txt = TempPath("mmap_not_binary.txt");
  {
    std::ofstream os(txt);
    os << "setcover 3 1\n1 0\n";
  }
  error.clear();
  EXPECT_FALSE(MmapSetSource::Open(txt, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(MmapSetSourceTest, ScanMatchesInMemorySource) {
  PlantedInstance inst = MakeInstance(2);
  const std::string bin = WriteBinary(inst.system, "mmap_parity.bin");
  std::string error;
  auto source = MmapSetSource::Open(bin, &error);
  ASSERT_TRUE(source.has_value()) << error;
  EXPECT_EQ(source->num_elements(), inst.system.num_elements());
  EXPECT_EQ(source->num_sets(), inst.system.num_sets());
  EXPECT_EQ(source->nnz(), inst.system.total_size());

  std::vector<std::vector<uint32_t>> sets;
  ASSERT_TRUE(source->Scan([&](const SetView& set) {
    EXPECT_EQ(set.id, sets.size());
    sets.emplace_back(set.begin(), set.end());
  }));
  ASSERT_EQ(sets.size(), inst.system.num_sets());
  for (uint32_t s = 0; s < inst.system.num_sets(); ++s) {
    auto expect = inst.system.GetSet(s);
    ASSERT_EQ(sets[s],
              std::vector<uint32_t>(expect.begin(), expect.end()))
        << "set " << s;
    // The sorted-unique dispatch invariant the kernels rely on.
    ASSERT_TRUE(std::is_sorted(sets[s].begin(), sets[s].end()));
    ASSERT_EQ(std::adjacent_find(sets[s].begin(), sets[s].end()),
              sets[s].end());
  }
  EXPECT_EQ(source->scans(), 1u);
  size_t total = 0;
  ASSERT_TRUE(
      source->Scan([&](const SetView& set) { total += set.size(); }));
  EXPECT_EQ(total, inst.system.total_size());
  EXPECT_EQ(source->scans(), 2u);
}

TEST(MmapSetSourceTest, CorruptBodyFailsScanGracefullyAndStays) {
  PlantedInstance inst = MakeInstance(3);
  const std::string bin = WriteBinary(inst.system, "mmap_corrupt_src.bin");
  std::ifstream is(bin, std::ios::binary);
  std::string bytes(std::istreambuf_iterator<char>(is),
                    std::istreambuf_iterator<char>{});
  // A size varint of ~2^35 in the first set: structurally the footer
  // still lines up, but decode must fail (size > n) without aborting.
  for (size_t i = 0; i < 5; ++i) {
    bytes[binfmt::kHeaderBytes + i] = static_cast<char>(0xFF);
  }
  const std::string bad = TempPath("mmap_corrupt.bin");
  {
    std::ofstream os(bad, std::ios::binary);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  std::string error;
  auto source = MmapSetSource::Open(bad, &error);
  // Open only checks structure; the corruption is a body-level fault.
  ASSERT_TRUE(source.has_value()) << error;
  size_t visited = 0;
  EXPECT_FALSE(source->Scan([&](const SetView&) { ++visited; }));
  EXPECT_FALSE(source->error().empty());
  EXPECT_NE(source->error().find("corrupt set"), std::string::npos)
      << source->error();
  // Sticky: the next scan refuses immediately and visits nothing.
  visited = 0;
  EXPECT_FALSE(source->Scan([&](const SetView&) { ++visited; }));
  EXPECT_EQ(visited, 0u);
}

TEST(MmapSetSourceTest, MoveTransfersMappingAndScansStillWork) {
  PlantedInstance inst = MakeInstance(4);
  const std::string bin = WriteBinary(inst.system, "mmap_move.bin");
  std::string error;
  auto source = MmapSetSource::Open(bin, &error);
  ASSERT_TRUE(source.has_value()) << error;
  MmapSetSource moved = std::move(*source);
  size_t total = 0;
  ASSERT_TRUE(moved.Scan([&](const SetView& set) { total += set.size(); }));
  EXPECT_EQ(total, inst.system.total_size());

  MmapSetSource assigned = std::move(moved);
  total = 0;
  ASSERT_TRUE(
      assigned.Scan([&](const SetView& set) { total += set.size(); }));
  EXPECT_EQ(total, inst.system.total_size());
}

TEST(MmapSetSourceTest, IterSetCoverIdenticalFromMmapAndMemory) {
  PlantedInstance inst = MakeInstance(5);
  const std::string bin = WriteBinary(inst.system, "mmap_solve.bin");

  IterSetCoverOptions algo;
  algo.delta = 0.5;
  algo.seed = 11;

  SetStream memory_stream(&inst.system);
  StreamingResult from_memory = IterSetCover(memory_stream, algo);

  std::string error;
  auto source = MmapSetSource::Open(bin, &error);
  ASSERT_TRUE(source.has_value()) << error;
  SetStream mmap_stream(&*source);
  StreamingResult from_mmap = IterSetCover(mmap_stream, algo);

  ASSERT_TRUE(from_memory.success);
  ASSERT_TRUE(from_mmap.success);
  EXPECT_EQ(from_memory.cover.set_ids, from_mmap.cover.set_ids);
  EXPECT_EQ(from_memory.passes, from_mmap.passes);
}

TEST(OpenDiskSetSourceTest, SniffsMagicAndPicksTheRightBackend) {
  PlantedInstance inst = MakeInstance(6);
  const std::string bin = WriteBinary(inst.system, "factory.bin");
  const std::string txt = TempPath("factory.txt");
  ASSERT_TRUE(SaveSetSystemToFile(inst.system, txt));

  std::string error;
  std::unique_ptr<SetSource> from_bin = OpenDiskSetSource(bin, &error);
  ASSERT_NE(from_bin, nullptr) << error;
  EXPECT_NE(dynamic_cast<MmapSetSource*>(from_bin.get()), nullptr);

  std::unique_ptr<SetSource> from_txt = OpenDiskSetSource(txt, &error);
  ASSERT_NE(from_txt, nullptr) << error;
  EXPECT_NE(dynamic_cast<FileSetSource*>(from_txt.get()), nullptr);

  // Same logical instance through both backends.
  size_t bin_total = 0, txt_total = 0;
  ASSERT_TRUE(from_bin->Scan(
      [&](const SetView& set) { bin_total += set.size(); }));
  ASSERT_TRUE(from_txt->Scan(
      [&](const SetView& set) { txt_total += set.size(); }));
  EXPECT_EQ(bin_total, inst.system.total_size());
  EXPECT_EQ(bin_total, txt_total);

  EXPECT_EQ(OpenDiskSetSource(TempPath("factory_missing.bin"), &error),
            nullptr);
  EXPECT_FALSE(error.empty());
}

// --- Pipelined scan (scan_threads > 1) -------------------------------

std::vector<std::vector<uint32_t>> CollectSerial(MmapSetSource& source) {
  std::vector<std::vector<uint32_t>> sets;
  EXPECT_TRUE(source.Scan([&](const SetView& set) {
    EXPECT_EQ(set.id, sets.size());
    sets.emplace_back(set.begin(), set.end());
  }));
  return sets;
}

TEST(PipelinedScanTest, MatchesSerialOrderAndContentAcrossThreadCounts) {
  PlantedInstance inst = MakeInstance(7);
  const std::string bin = WriteBinary(inst.system, "pipe_parity.bin");
  std::string error;
  auto serial = MmapSetSource::Open(bin, &error);
  ASSERT_TRUE(serial.has_value()) << error;
  const std::vector<std::vector<uint32_t>> expect = CollectSerial(*serial);

  for (uint32_t threads : {2u, 4u, 8u}) {
    auto source = MmapSetSource::Open(bin, &error);
    ASSERT_TRUE(source.has_value()) << error;
    source->set_scan_threads(threads);
    EXPECT_TRUE(source->SupportsBatchScan());
    std::vector<std::vector<uint32_t>> sets;
    ASSERT_TRUE(source->Scan([&](const SetView& set) {
      ASSERT_EQ(set.id, sets.size()) << "out-of-order delivery";
      sets.emplace_back(set.begin(), set.end());
    })) << source->error();
    EXPECT_EQ(sets, expect) << "scan_threads=" << threads;
    EXPECT_EQ(source->scans(), 1u);

    // ScanBatches delivers the same pass as contiguous in-order batches.
    std::vector<std::vector<uint32_t>> batched;
    ASSERT_TRUE(source->ScanBatches([&](std::span<const SetView> views) {
      for (const SetView& set : views) {
        ASSERT_EQ(set.id, batched.size()) << "batch out of order";
        batched.emplace_back(set.begin(), set.end());
      }
    })) << source->error();
    EXPECT_EQ(batched, expect) << "scan_threads=" << threads;
    EXPECT_EQ(source->scans(), 2u);
  }
}

TEST(PipelinedScanTest, ManySmallChunksDeliverInOrder) {
  // Drive PipelinedScanner directly with a tiny chunk target so the
  // ring wraps many times — the multi-chunk ordering case the default
  // 256 KB plan never produces on test-sized instances.
  PlantedInstance inst = MakeInstance(8);
  const std::string bin = WriteBinary(inst.system, "pipe_chunks.bin");
  std::ifstream is(bin, std::ios::binary);
  std::string bytes(std::istreambuf_iterator<char>(is),
                    std::istreambuf_iterator<char>{});
  const uint8_t* data = reinterpret_cast<const uint8_t*>(bytes.data());
  binfmt::BinaryLayout layout;
  std::string error;
  ASSERT_TRUE(
      binfmt::ValidateBinaryLayout(data, bytes.size(), &layout, &error))
      << error;
  const std::vector<binfmt::ScanChunk> chunks =
      binfmt::BuildChunkPlan(layout, /*target_bytes=*/64);
  ASSERT_GT(chunks.size(), 8u) << "chunk plan too coarse for this test";

  PipelinedScanOptions options;
  options.decode_threads = 4;
  PipelinedScanner scanner(data, layout.n, layout,
                           std::span<const binfmt::ScanChunk>(chunks),
                           options);
  std::vector<std::vector<uint32_t>> sets;
  ASSERT_TRUE(scanner.Run(
      bin,
      [&](std::span<const SetView> views) {
        for (const SetView& set : views) {
          ASSERT_EQ(set.id, sets.size()) << "out-of-order chunk";
          sets.emplace_back(set.begin(), set.end());
        }
      },
      /*cancel=*/nullptr, &error))
      << error;
  ASSERT_EQ(sets.size(), inst.system.num_sets());
  for (uint32_t s = 0; s < inst.system.num_sets(); ++s) {
    auto expect = inst.system.GetSet(s);
    ASSERT_EQ(sets[s],
              std::vector<uint32_t>(expect.begin(), expect.end()))
        << "set " << s;
  }
}

TEST(PipelinedScanTest, CorruptVarintMatchesSerialDiagnosticAndSticks) {
  PlantedInstance inst = MakeInstance(9);
  const std::string bin = WriteBinary(inst.system, "pipe_corrupt_src.bin");
  std::ifstream is(bin, std::ios::binary);
  std::string bytes(std::istreambuf_iterator<char>(is),
                    std::istreambuf_iterator<char>{});
  // Bit-flip the first set's size varint into a ~2^35 monster: the
  // footer still lines up, so the fault is decode-level.
  for (size_t i = 0; i < 5; ++i) {
    bytes[binfmt::kHeaderBytes + i] = static_cast<char>(0xFF);
  }
  const std::string bad = TempPath("pipe_corrupt.bin");
  {
    std::ofstream os(bad, std::ios::binary);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  std::string error;
  auto serial = MmapSetSource::Open(bad, &error);
  ASSERT_TRUE(serial.has_value()) << error;
  EXPECT_FALSE(serial->Scan([](const SetView&) {}));

  auto pipelined = MmapSetSource::Open(bad, &error);
  ASSERT_TRUE(pipelined.has_value()) << error;
  pipelined->set_scan_threads(4);
  size_t visited = 0;
  EXPECT_FALSE(pipelined->Scan([&](const SetView&) { ++visited; }));
  EXPECT_EQ(visited, 0u) << "no partial batch before the fault";
  // The pipelined diagnostic is byte-identical to the serial one.
  EXPECT_EQ(pipelined->error(), serial->error());
  EXPECT_NE(pipelined->error().find("corrupt set 0"), std::string::npos)
      << pipelined->error();
  // Sticky: the next pipelined scan refuses immediately.
  visited = 0;
  EXPECT_FALSE(pipelined->Scan([&](const SetView&) { ++visited; }));
  EXPECT_EQ(visited, 0u);
}

TEST(PipelinedScanTest, MidChunkTruncationFailsGracefullyInOrder) {
  PlantedInstance inst = MakeInstance(10);
  const std::string bin = WriteBinary(inst.system, "pipe_trunc_src.bin");
  std::ifstream is(bin, std::ios::binary);
  std::string bytes(std::istreambuf_iterator<char>(is),
                    std::istreambuf_iterator<char>{});
  const uint8_t* data = reinterpret_cast<const uint8_t*>(bytes.data());
  binfmt::BinaryLayout layout;
  std::string error;
  ASSERT_TRUE(
      binfmt::ValidateBinaryLayout(data, bytes.size(), &layout, &error))
      << error;
  // Bump a mid-file set's one-byte size varint by one: the body then
  // claims an element its slot does not hold — "truncated body", found
  // mid-chunk rather than at a chunk boundary.
  uint32_t corrupt_set = layout.m;  // sentinel: none found
  for (uint32_t s = static_cast<uint32_t>(layout.m) / 2; s < layout.m;
       ++s) {
    const uint8_t size_byte = data[layout.SetOffset(s)];
    if (size_byte >= 1 && size_byte < 0x7F &&
        size_byte + 1u <= layout.n) {
      corrupt_set = s;
      break;
    }
  }
  ASSERT_LT(corrupt_set, layout.m) << "no single-byte size varint found";
  bytes[layout.SetOffset(corrupt_set)] = static_cast<char>(
      static_cast<uint8_t>(bytes[layout.SetOffset(corrupt_set)]) + 1);
  const std::string bad = TempPath("pipe_trunc.bin");
  {
    std::ofstream os(bad, std::ios::binary);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  auto serial = MmapSetSource::Open(bad, &error);
  ASSERT_TRUE(serial.has_value()) << error;
  EXPECT_FALSE(serial->Scan([](const SetView&) {}));
  EXPECT_NE(serial->error().find("truncated body"), std::string::npos)
      << serial->error();

  auto pipelined = MmapSetSource::Open(bad, &error);
  ASSERT_TRUE(pipelined.has_value()) << error;
  pipelined->set_scan_threads(4);
  EXPECT_FALSE(pipelined->Scan([&](const SetView& set) {
    EXPECT_LT(set.id, corrupt_set) << "set delivered past the fault";
  }));
  EXPECT_EQ(pipelined->error(), serial->error());
}

TEST(PipelinedScanTest, CancelDuringDecodeReportsDeadline) {
  PlantedInstance inst = MakeInstance(11);
  const std::string bin = WriteBinary(inst.system, "pipe_cancel.bin");
  std::string error;
  auto source = MmapSetSource::Open(bin, &error);
  ASSERT_TRUE(source.has_value()) << error;
  source->set_scan_threads(4);
  CancelToken expired = CancelToken::AfterMillis(0);
  ASSERT_TRUE(expired.cancelled());
  source->set_cancel(&expired);
  EXPECT_FALSE(source->Scan([](const SetView&) {}));
  // The bare error *code*, with no path or set prefix — dispatchers
  // match it exactly (same contract as the serial scan).
  EXPECT_EQ(source->error(), kDeadlineExceededError);
}

TEST(PipelinedScanTest, ConcurrentForksScanPipelinedSoak) {
  // The TSan CI soak: several forks of one mapping, each running its
  // own pipelined pass concurrently. Forks share only the immutable
  // bytes; all ring state is per-fork.
  PlantedInstance inst = MakeInstance(12);
  const std::string bin = WriteBinary(inst.system, "pipe_forks.bin");
  std::string error;
  auto source = MmapSetSource::Open(bin, &error);
  ASSERT_TRUE(source.has_value()) << error;
  const uint64_t expect_total = inst.system.total_size();

  constexpr int kForks = 3;
  constexpr int kPassesPerFork = 4;
  std::vector<std::unique_ptr<SetSource>> forks;
  for (int f = 0; f < kForks; ++f) {
    forks.push_back(source->Fork(&error));
    ASSERT_NE(forks.back(), nullptr) << error;
    forks.back()->set_scan_threads(2 + f);
  }
  std::vector<std::thread> threads;
  std::vector<uint64_t> totals(kForks, 0);
  // Not vector<bool>: bit-packing would make per-fork writes race.
  std::vector<int> oks(kForks, 0);
  for (int f = 0; f < kForks; ++f) {
    threads.emplace_back([&, f] {
      bool ok = true;
      for (int pass = 0; pass < kPassesPerFork; ++pass) {
        totals[f] = 0;
        ok = ok && forks[f]->Scan([&](const SetView& set) {
          totals[f] += set.size();
        });
      }
      oks[f] = ok ? 1 : 0;
    });
  }
  for (std::thread& t : threads) t.join();
  for (int f = 0; f < kForks; ++f) {
    EXPECT_TRUE(oks[f]) << "fork " << f << ": " << forks[f]->error();
    EXPECT_EQ(totals[f], expect_total) << "fork " << f;
  }
}

TEST(OpenDiskSetSourceTest, SurfacesBinaryValidatorErrorVerbatim) {
  // Valid magic + corrupt footer: the sniff says binary, so the binary
  // validator's diagnostic must come through verbatim — not be masked
  // by a text-parser fallback's "bad magic"-style wording.
  PlantedInstance inst = MakeInstance(13);
  const std::string bin = WriteBinary(inst.system, "factory_badfooter_src.bin");
  std::ifstream is(bin, std::ios::binary);
  std::string bytes(std::istreambuf_iterator<char>(is),
                    std::istreambuf_iterator<char>{});
  // Zero the last footer offset (the 8 bytes just before the end
  // magic): offsets are no longer monotone up to footer_offset.
  ASSERT_GT(bytes.size(), 16u);
  for (size_t i = bytes.size() - 16; i < bytes.size() - 8; ++i) {
    bytes[i] = 0;
  }
  const std::string bad = TempPath("factory_badfooter.bin");
  {
    std::ofstream os(bad, std::ios::binary);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  ASSERT_TRUE(IsBinarySetSystemFile(bad));
  std::string error;
  EXPECT_EQ(OpenDiskSetSource(bad, &error), nullptr);
  EXPECT_NE(error.find("corrupt footer"), std::string::npos) << error;
  EXPECT_NE(error.find(bad), std::string::npos)
      << "diagnostic should name the file: " << error;
  EXPECT_EQ(error.find("bad magic"), std::string::npos) << error;
}

}  // namespace
}  // namespace streamcover
