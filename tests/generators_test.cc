// Property tests for the abstract instance generators: every generator
// must yield a coverable instance whose planted cover is feasible, with
// the advertised shape constraints, deterministically per seed.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "setsystem/cover.h"
#include "setsystem/generators.h"
#include "setsystem/io.h"

namespace streamcover {
namespace {

class PlantedGeneratorTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlantedGeneratorTest, PlantedCoverIsFeasible) {
  Rng rng(GetParam());
  PlantedOptions options;
  options.num_elements = 500;
  options.num_sets = 1200;
  options.cover_size = 13;
  PlantedInstance inst = GeneratePlanted(options, rng);
  EXPECT_EQ(inst.system.num_elements(), 500u);
  EXPECT_EQ(inst.system.num_sets(), 1200u);
  EXPECT_EQ(inst.planted_cover.size(), 13u);
  EXPECT_TRUE(IsFullCover(inst.system, Cover{inst.planted_cover}));
}

TEST_P(PlantedGeneratorTest, SparseInstanceRespectsMaxSize) {
  Rng rng(GetParam());
  PlantedInstance inst = GenerateSparse(300, 900, 7, rng);
  for (uint32_t s = 0; s < inst.system.num_sets(); ++s) {
    EXPECT_LE(inst.system.SetSize(s), 7u);
  }
  EXPECT_TRUE(IsFullCover(inst.system, Cover{inst.planted_cover}));
}

TEST_P(PlantedGeneratorTest, ZipfInstanceIsCoverable) {
  Rng rng(GetParam());
  PlantedInstance inst = GenerateZipf(400, 1000, 1.1, 25, rng);
  EXPECT_TRUE(IsCoverable(inst.system));
  EXPECT_TRUE(IsFullCover(inst.system, Cover{inst.planted_cover}));
  for (uint32_t s = 0; s < inst.system.num_sets(); ++s) {
    EXPECT_LE(inst.system.SetSize(s), 25u);
  }
}

TEST_P(PlantedGeneratorTest, DisjointBlocksOptExact) {
  Rng rng(GetParam());
  PlantedInstance inst = GenerateDisjointBlocks(120, 8, 40, rng);
  EXPECT_EQ(inst.planted_cover.size(), 8u);
  EXPECT_TRUE(IsFullCover(inst.system, Cover{inst.planted_cover}));
  // Blocks are disjoint, so no cover smaller than 8 exists: every block
  // needs its own block set (singletons cover only one element each but
  // blocks have 15 elements, so any cover needs >= 8 sets).
  EXPECT_EQ(inst.system.num_sets(), 48u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlantedGeneratorTest,
                         ::testing::Values(1, 2, 3, 17, 99));

TEST(GeneratorDeterminismTest, SameSeedSameInstance) {
  PlantedOptions options;
  options.num_elements = 100;
  options.num_sets = 300;
  options.cover_size = 5;
  Rng rng1(7), rng2(7);
  PlantedInstance a = GeneratePlanted(options, rng1);
  PlantedInstance b = GeneratePlanted(options, rng2);
  ASSERT_EQ(a.system.num_sets(), b.system.num_sets());
  for (uint32_t s = 0; s < a.system.num_sets(); ++s) {
    auto sa = a.system.GetSet(s);
    auto sb = b.system.GetSet(s);
    ASSERT_EQ(std::vector<uint32_t>(sa.begin(), sa.end()),
              std::vector<uint32_t>(sb.begin(), sb.end()));
  }
  EXPECT_EQ(a.planted_cover, b.planted_cover);
}

TEST(GreedyAdversarialTest, StructureMatchesConstruction) {
  const uint32_t levels = 5;
  PlantedInstance inst = GenerateGreedyAdversarial(levels);
  const uint32_t half = (1u << levels) - 1;
  EXPECT_EQ(inst.system.num_elements(), 2 * half);
  EXPECT_EQ(inst.system.num_sets(), levels + 2);
  EXPECT_EQ(inst.planted_cover.size(), 2u);
  EXPECT_TRUE(IsFullCover(inst.system, Cover{inst.planted_cover}));
  // Column set C_1 (id 2) has 2^levels elements, strictly more than a
  // row's 2^levels - 1: greedy must prefer it.
  EXPECT_EQ(inst.system.SetSize(2), uint64_t{1} << levels);
  EXPECT_EQ(inst.system.SetSize(0), half);
}

TEST(UniformRandomTest, DensityMatchesP) {
  Rng rng(5);
  SetSystem s = GenerateUniformRandom(200, 100, 0.3, rng);
  double density = static_cast<double>(s.total_size()) / (200.0 * 100.0);
  EXPECT_NEAR(density, 0.3, 0.03);
}

TEST(GeneratorDeterminismTest, FixedSeedYieldsByteIdenticalCsr) {
  // Regression guard: two runs of GeneratePlanted from the same seed
  // must produce byte-identical CSR arrays. The per-set spans walk
  // elements_ slice by slice in offsets_ order, so span-wise equality
  // plus equal set counts pins both arrays exactly; the serialized text
  // re-checks it end to end.
  PlantedOptions options;
  options.num_elements = 400;
  options.num_sets = 900;
  options.cover_size = 9;
  options.noise_max_size = 30;

  Rng rng_a(42);
  PlantedInstance a = GeneratePlanted(options, rng_a);
  Rng rng_b(42);
  PlantedInstance b = GeneratePlanted(options, rng_b);

  ASSERT_EQ(a.system.num_elements(), b.system.num_elements());
  ASSERT_EQ(a.system.num_sets(), b.system.num_sets());
  ASSERT_EQ(a.system.total_size(), b.system.total_size());
  EXPECT_EQ(a.planted_cover, b.planted_cover);
  for (uint32_t s = 0; s < a.system.num_sets(); ++s) {
    auto sa = a.system.GetSet(s);
    auto sb = b.system.GetSet(s);
    ASSERT_EQ(sa.size(), sb.size()) << "set " << s;
    ASSERT_TRUE(std::equal(sa.begin(), sa.end(), sb.begin()))
        << "set " << s << " differs between identically-seeded runs";
  }

  std::ostringstream text_a, text_b;
  WriteSetSystem(a.system, text_a);
  WriteSetSystem(b.system, text_b);
  EXPECT_EQ(text_a.str(), text_b.str());

  // A different seed must not reproduce the same stream (sanity check
  // that the test has discriminating power).
  Rng rng_c(43);
  PlantedInstance c = GeneratePlanted(options, rng_c);
  std::ostringstream text_c;
  WriteSetSystem(c.system, text_c);
  EXPECT_NE(text_a.str(), text_c.str());
}

TEST(GeneratorValidationTest, PlantedOverlapAddsExtraElements) {
  PlantedOptions options;
  options.num_elements = 200;
  options.num_sets = 10;
  options.cover_size = 10;
  options.planted_overlap = 0.5;
  options.shuffle_order = false;
  Rng rng(3);
  PlantedInstance inst = GeneratePlanted(options, rng);
  // With 10 planted blocks of 20 elements and 50% overlap, total size
  // exceeds the disjoint-partition total of 200.
  EXPECT_GT(inst.system.total_size(), 200u);
}

}  // namespace
}  // namespace streamcover
