#include "setsystem/transposed_index.h"

#include <numeric>
#include <utility>

namespace streamcover {

void TransposedIndex::Builder::PrepareFill() {
  SC_CHECK(!prepared_);
  prepared_ = true;
  // counts_[e + 1] holds |column e|; prefix-sum in place to offsets.
  for (size_t e = 1; e < counts_.size(); ++e) {
    counts_[e] += counts_[e - 1];
  }
  entries_.resize(counts_.back());
  // Fill cursors start at each column's offset and advance per entry.
  cursors_.assign(counts_.begin(), counts_.end() - 1);
}

TransposedIndex TransposedIndex::Builder::Build() && {
  SC_CHECK(prepared_);
  // Every counted pair must have been filled: each cursor must have
  // reached the next column's offset.
  for (uint32_t e = 0; e < num_elements_; ++e) {
    SC_CHECK_EQ(cursors_[e], counts_[e + 1]);
  }
  TransposedIndex index;
  index.offsets_ = std::move(counts_);
  index.entries_ = std::move(entries_);
  return index;
}

void GainTracker::InitFromMask(const DynamicBitset& uncovered) {
  SC_CHECK_EQ(uncovered.size(), index_->num_elements());
  for (uint32_t& g : gains_) g = 0;
  uncovered.ForEach([&](uint32_t e) {
    for (uint32_t s : index_->Sets(e)) {
      SC_DCHECK_LT(s, gains_.size());
      ++gains_[s];
    }
  });
}

void GainTracker::OnCovered(std::span<const uint32_t> newly_covered) {
  for (uint32_t e : newly_covered) {
    const std::span<const uint32_t> sets = index_->Sets(e);
    for (uint32_t s : sets) {
      SC_DCHECK_LT(s, gains_.size());
      SC_DCHECK_GT(gains_[s], 0u);
      --gains_[s];
    }
    gain_updates_ += sets.size();
  }
}

}  // namespace streamcover
