// Binary on-disk CSR format for SetSystem repositories.
//
// The text format (setsystem/io.h) re-parses every number on every
// physical scan, which caps disk-backed runs far below the m≈10^7–10^8
// regime the paper targets. This format is the out-of-core counterpart:
// compact enough that scans are bandwidth-bound, seekable enough that a
// set can be located without decoding its predecessors, and validated
// enough that a truncated or corrupt file fails at Open instead of
// aborting mid-scan.
//
// Layout (all fixed-width fields little-endian):
//
//   header (64 bytes)
//     [0,8)   magic "SCOVRB01"
//     [8,12)  uint32 version (1)
//     [12,16) uint32 header_bytes (64)
//     [16,24) uint64 n  (|U|)
//     [24,32) uint64 m  (|F|)
//     [32,40) uint64 nnz (sum of set sizes after sort/dedup)
//     [40,48) uint64 footer_offset (absolute byte offset of the footer)
//     [48,56) uint64 body_checksum (FNV-1a 64 over the body bytes)
//     [56,64) uint64 reserved (0)
//   body (footer_offset - 64 bytes)
//     m sets, each: varint(size), then `size` element ids delta-encoded
//     as varints — the first id raw, each subsequent id as
//     (id - previous - 1). Sets are sorted and duplicate-free, so the
//     deltas are non-negative and decoding reproduces the sorted-unique
//     dispatch invariant every kernel relies on.
//   footer ((m+1) * 8 bytes)
//     uint64 absolute byte offset of each set's encoding;
//     offsets[0] == 64 and offsets[m] == footer_offset. This is what
//     makes sets seekable and lets Open validate the body structurally
//     without decoding it.
//   trailer (8 bytes)
//     end magic "SCOVREND" — a cheap truncation tripwire.
//
// Varints are LEB128 (7 bits per byte, high bit = continuation).

#ifndef STREAMCOVER_SETSYSTEM_BINARY_IO_H_
#define STREAMCOVER_SETSYSTEM_BINARY_IO_H_

#include <cstdint>
#include <cstdio>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "setsystem/set_system.h"

namespace streamcover {

namespace binfmt {

inline constexpr char kMagic[8] = {'S', 'C', 'O', 'V', 'R', 'B', '0', '1'};
inline constexpr char kEndMagic[8] = {'S', 'C', 'O', 'V', 'R', 'E', 'N',
                                      'D'};
inline constexpr uint32_t kVersion = 1;
inline constexpr uint64_t kHeaderBytes = 64;
/// n and m share the text format's 2^31 ceiling (ids are uint32).
inline constexpr uint64_t kMaxDimension = uint64_t{1} << 31;

/// FNV-1a 64 over `bytes`, continuing from `state` (seed with
/// kFnvOffset). The writer folds body bytes in as it emits them; readers
/// re-fold to verify.
inline constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
uint64_t Fnv1a(const uint8_t* bytes, size_t len, uint64_t state);

/// Appends the LEB128 encoding of `value` to `out`.
void AppendVarint(uint64_t value, std::string& out);

/// Decodes one LEB128 varint from [*cursor, end). Advances *cursor past
/// it and returns the value; returns std::nullopt (cursor unspecified)
/// on truncation or an encoding longer than 10 bytes.
std::optional<uint64_t> DecodeVarint(const uint8_t** cursor,
                                     const uint8_t* end);

/// Validated view of a binary file's structure: header fields plus a
/// pointer to the offsets footer. Produced by ValidateBinaryLayout.
struct BinaryLayout {
  uint64_t n = 0;
  uint64_t m = 0;
  uint64_t nnz = 0;
  uint64_t footer_offset = 0;
  uint64_t checksum = 0;
  const uint8_t* footer = nullptr;  // (m+1) uint64 offsets, unaligned

  /// Absolute byte offset of set s's encoding (s in [0, m]).
  uint64_t SetOffset(uint64_t s) const;
};

/// Checks that [data, data+size) is a well-formed binary file: magic,
/// version, dimension bounds, file size consistent with the footer
/// offset, end magic present, and footer offsets monotone spanning
/// exactly the body. Decodes NO set bodies — this is the cheap Open-time
/// validation shared by the in-memory loader and MmapSetSource; the body
/// checksum is verified separately by whoever reads the bytes.
bool ValidateBinaryLayout(const uint8_t* data, uint64_t size,
                          BinaryLayout* layout, std::string* error);

/// A contiguous run of sets for one decode unit of the pipelined scan:
/// sets [first_set, first_set + set_count) occupying body bytes
/// [byte_begin, byte_end) — absolute file offsets straight off the
/// offsets footer, so a chunk can be decoded (and madvise'd) without
/// touching any predecessor.
struct ScanChunk {
  uint32_t first_set = 0;
  uint32_t set_count = 0;
  uint64_t byte_begin = 0;
  uint64_t byte_end = 0;
};

/// Splits [0, m) into chunks of >= 1 set each, walking the offsets
/// footer and closing a chunk once it holds at least `target_bytes` of
/// encoded body (so chunk count tracks encoded size, not set count —
/// fixed work per decode unit regardless of set-size skew).
/// target_bytes == 0 yields one chunk; m == 0 yields none.
std::vector<ScanChunk> BuildChunkPlan(const BinaryLayout& layout,
                                      uint64_t target_bytes);

}  // namespace binfmt

/// True iff `path` starts with the binary magic. False for missing,
/// short, or text files — callers fall back to the text parser.
bool IsBinarySetSystemFile(const std::string& path);

/// Streaming writer: sets go straight from the caller to disk, so
/// multi-GB repositories are written in O(n + m) memory (one scratch
/// set + the offsets footer), never O(nnz).
class BinarySetWriter {
 public:
  /// Creates/truncates `path` and reserves the header. Returns
  /// std::nullopt + *error if the file cannot be opened or
  /// num_elements is out of range.
  static std::optional<BinarySetWriter> Create(const std::string& path,
                                               uint64_t num_elements,
                                               std::string* error);

  BinarySetWriter(BinarySetWriter&& other) noexcept;
  BinarySetWriter& operator=(BinarySetWriter&& other) noexcept;
  BinarySetWriter(const BinarySetWriter&) = delete;
  BinarySetWriter& operator=(const BinarySetWriter&) = delete;
  ~BinarySetWriter();

  /// Appends one set. Elements are normalized to sorted-unique before
  /// encoding (same contract as SetSystem::Builder::AddSet). Returns
  /// false — with the diagnostic in error() — on an out-of-range
  /// element or an IO failure.
  bool AddSet(std::span<const uint32_t> elements);

  /// Writes the footer + trailer and patches the header. The writer is
  /// unusable afterwards. Returns false + *error on IO failure (or if
  /// any AddSet had failed).
  bool Finish(std::string* error);

  uint64_t num_sets() const { return offsets_.size() - 1; }
  uint64_t nnz() const { return nnz_; }
  const std::string& error() const { return error_; }

 private:
  BinarySetWriter() = default;

  std::FILE* file_ = nullptr;
  std::string path_;
  uint64_t num_elements_ = 0;
  uint64_t nnz_ = 0;
  uint64_t checksum_ = binfmt::kFnvOffset;
  std::vector<uint64_t> offsets_;   // absolute; starts at kHeaderBytes
  std::vector<uint32_t> scratch_;   // normalization buffer
  std::string encode_buf_;          // per-set varint staging
  std::string error_;
  bool finished_ = false;
};

/// Writes `system` to `path` in the binary format. Returns false +
/// *error on IO failure.
bool WriteBinarySetSystem(const SetSystem& system, const std::string& path,
                          std::string* error);

/// Loads a binary file fully into memory. Returns std::nullopt + *error
/// on a malformed, truncated, or corrupt file (structure AND checksum
/// are verified — an in-memory load touches every byte anyway).
std::optional<SetSystem> LoadBinarySetSystemFromFile(const std::string& path,
                                                     std::string* error);

/// Loads `path` in whichever format its magic announces — binary or the
/// text format of setsystem/io.h.
std::optional<SetSystem> LoadAnySetSystemFromFile(const std::string& path,
                                                  std::string* error);

}  // namespace streamcover

#endif  // STREAMCOVER_SETSYSTEM_BINARY_IO_H_
