#include "setsystem/set_system.h"

#include <algorithm>

#include "util/check.h"

namespace streamcover {

SetSystem::Builder::Builder(uint32_t num_elements)
    : num_elements_(num_elements), offsets_{0} {}

uint32_t SetSystem::Builder::AddSet(std::span<const uint32_t> elements) {
  const size_t start = elements_.size();
  elements_.insert(elements_.end(), elements.begin(), elements.end());
  const auto first = elements_.begin() + static_cast<ptrdiff_t>(start);
  std::sort(first, elements_.end());
  elements_.erase(std::unique(first, elements_.end()), elements_.end());
  if (elements_.size() > start) {
    SC_CHECK_LT(elements_.back(), num_elements_);
  }
  offsets_.push_back(elements_.size());
  return static_cast<uint32_t>(offsets_.size()) - 2;
}

uint32_t SetSystem::Builder::num_sets() const {
  return static_cast<uint32_t>(offsets_.size()) - 1;
}

SetSystem SetSystem::Builder::Build() && {
  return SetSystem(num_elements_, std::move(offsets_), std::move(elements_));
}

SetSystem::SetSystem(uint32_t num_elements, std::vector<size_t> offsets,
                     std::vector<uint32_t> elements)
    : num_elements_(num_elements),
      offsets_(std::move(offsets)),
      elements_(std::move(elements)) {}

std::span<const uint32_t> SetSystem::GetSet(uint32_t set_id) const {
  SC_DCHECK_LT(set_id, num_sets());
  return {elements_.data() + offsets_[set_id],
          offsets_[set_id + 1] - offsets_[set_id]};
}

size_t SetSystem::SetSize(uint32_t set_id) const {
  SC_DCHECK_LT(set_id, num_sets());
  return offsets_[set_id + 1] - offsets_[set_id];
}

bool SetSystem::Contains(uint32_t set_id, uint32_t element) const {
  auto s = GetSet(set_id);
  return std::binary_search(s.begin(), s.end(), element);
}

InvertedIndex::InvertedIndex(const SetSystem& system) {
  const uint32_t n = system.num_elements();
  std::vector<size_t> degree(n, 0);
  for (uint32_t s = 0; s < system.num_sets(); ++s) {
    for (uint32_t e : system.GetSet(s)) ++degree[e];
  }
  offsets_.assign(n + 1, 0);
  for (uint32_t e = 0; e < n; ++e) offsets_[e + 1] = offsets_[e] + degree[e];
  set_ids_.resize(offsets_[n]);
  std::vector<size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (uint32_t s = 0; s < system.num_sets(); ++s) {
    for (uint32_t e : system.GetSet(s)) set_ids_[cursor[e]++] = s;
  }
}

std::span<const uint32_t> InvertedIndex::SetsContaining(
    uint32_t element) const {
  SC_DCHECK_LT(element + 1, offsets_.size());
  return {set_ids_.data() + offsets_[element],
          offsets_[element + 1] - offsets_[element]};
}

size_t InvertedIndex::Degree(uint32_t element) const {
  SC_DCHECK_LT(element + 1, offsets_.size());
  return offsets_[element + 1] - offsets_[element];
}

}  // namespace streamcover
