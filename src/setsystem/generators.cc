#include "setsystem/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace streamcover {
namespace {

// Generators stage every set in generation order into ONE flat CSR
// buffer (elements + set boundaries) and then emit the sets to the
// Builder — possibly in a shuffled stream order — as spans over that
// buffer. No per-set vector is materialized anywhere on the build path;
// the RNG draw sequence is identical to the historical vector-of-vectors
// staging, so generated instances are byte-for-byte unchanged.
class StagedSets {
 public:
  void Push(uint32_t element) { elements_.push_back(element); }

  void PushRange(const uint32_t* first, const uint32_t* last) {
    elements_.insert(elements_.end(), first, last);
  }

  /// Closes the currently staged set.
  void Close() { bounds_.push_back(elements_.size()); }

  /// Buffer to append the staged set's elements to (for RNG helpers
  /// that fill a vector); pair with Close() like Push().
  std::vector<uint32_t>& buffer() { return elements_; }

  uint32_t count() const { return static_cast<uint32_t>(bounds_.size()) - 1; }

  std::span<const uint32_t> Get(uint32_t staged_id) const {
    return {elements_.data() + bounds_[staged_id],
            bounds_[staged_id + 1] - bounds_[staged_id]};
  }

 private:
  std::vector<uint32_t> elements_;
  std::vector<size_t> bounds_{0};
};

}  // namespace

PlantedInstance GeneratePlanted(const PlantedOptions& options, Rng& rng) {
  SC_CHECK_GE(options.cover_size, 1u);
  SC_CHECK_GE(options.num_sets, options.cover_size);
  SC_CHECK_GE(options.num_elements, options.cover_size);
  const uint32_t n = options.num_elements;

  // Random permutation of U split into cover_size contiguous blocks.
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(perm);

  StagedSets sets;
  const uint32_t k = options.cover_size;
  for (uint32_t b = 0; b < k; ++b) {
    uint32_t lo = static_cast<uint32_t>(
        (static_cast<uint64_t>(b) * n) / k);
    uint32_t hi = static_cast<uint32_t>(
        (static_cast<uint64_t>(b + 1) * n) / k);
    sets.PushRange(perm.data() + lo, perm.data() + hi);
    // Extra overlap elements drawn from the rest of U.
    uint32_t extra = static_cast<uint32_t>(
        options.planted_overlap * static_cast<double>(hi - lo));
    for (uint32_t i = 0; i < extra; ++i) {
      sets.Push(static_cast<uint32_t>(rng.Uniform(n)));
    }
    sets.Close();
  }
  for (uint32_t s = k; s < options.num_sets; ++s) {
    uint32_t size = static_cast<uint32_t>(rng.UniformInt(
        options.noise_min_size,
        std::max(options.noise_min_size, options.noise_max_size)));
    size = std::min(size, n);
    rng.SampleWithoutReplacementInto(n, size, sets.buffer());
    sets.Close();
  }

  // Stream order: planted sets hidden among noise if requested.
  std::vector<uint32_t> order(sets.count());
  std::iota(order.begin(), order.end(), 0);
  if (options.shuffle_order) rng.Shuffle(order);

  SetSystem::Builder builder(n);
  std::vector<uint32_t> planted_ids;
  planted_ids.reserve(k);
  for (uint32_t pos = 0; pos < order.size(); ++pos) {
    builder.AddSet(sets.Get(order[pos]));
    if (order[pos] < k) planted_ids.push_back(pos);
  }
  std::sort(planted_ids.begin(), planted_ids.end());
  return PlantedInstance{std::move(builder).Build(), std::move(planted_ids)};
}

SetSystem GenerateUniformRandom(uint32_t num_elements, uint32_t num_sets,
                                double p, Rng& rng) {
  SetSystem::Builder builder(num_elements);
  std::vector<uint32_t> elems;  // reused staging buffer
  for (uint32_t s = 0; s < num_sets; ++s) {
    elems.clear();
    for (uint32_t e = 0; e < num_elements; ++e) {
      if (rng.Bernoulli(p)) elems.push_back(e);
    }
    builder.AddSet(std::span<const uint32_t>(elems));
  }
  return std::move(builder).Build();
}

PlantedInstance GenerateSparse(uint32_t num_elements, uint32_t num_sets,
                               uint32_t max_set_size, Rng& rng) {
  SC_CHECK_GE(max_set_size, 1u);
  const uint32_t n = num_elements;
  const uint32_t blocks =
      static_cast<uint32_t>((n + max_set_size - 1) / max_set_size);
  SC_CHECK_GE(num_sets, blocks);

  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(perm);

  StagedSets sets;
  for (uint32_t b = 0; b < blocks; ++b) {
    uint32_t lo = b * max_set_size;
    uint32_t hi = std::min(n, lo + max_set_size);
    sets.PushRange(perm.data() + lo, perm.data() + hi);
    sets.Close();
  }
  for (uint32_t s = blocks; s < num_sets; ++s) {
    uint32_t size =
        static_cast<uint32_t>(rng.UniformInt(1, max_set_size));
    rng.SampleWithoutReplacementInto(n, std::min(size, n), sets.buffer());
    sets.Close();
  }
  std::vector<uint32_t> order(sets.count());
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);

  SetSystem::Builder builder(n);
  std::vector<uint32_t> planted_ids;
  for (uint32_t pos = 0; pos < order.size(); ++pos) {
    builder.AddSet(sets.Get(order[pos]));
    if (order[pos] < blocks) planted_ids.push_back(pos);
  }
  std::sort(planted_ids.begin(), planted_ids.end());
  return PlantedInstance{std::move(builder).Build(), std::move(planted_ids)};
}

PlantedInstance GenerateZipf(uint32_t num_elements, uint32_t num_sets,
                             double alpha, uint32_t max_set_size, Rng& rng) {
  SC_CHECK_GE(max_set_size, 1u);
  const uint32_t n = num_elements;

  // Element popularity weights ~ rank^{-alpha} over a random ranking.
  std::vector<uint32_t> rank(n);
  std::iota(rank.begin(), rank.end(), 0);
  rng.Shuffle(rank);
  std::vector<double> cumulative(n);
  double total = 0;
  for (uint32_t i = 0; i < n; ++i) {
    total += std::pow(static_cast<double>(i + 1), -alpha);
    cumulative[i] = total;
  }

  auto draw_element = [&]() -> uint32_t {
    double x = rng.UniformDouble() * total;
    auto it = std::lower_bound(cumulative.begin(), cumulative.end(), x);
    size_t idx = static_cast<size_t>(it - cumulative.begin());
    if (idx >= n) idx = n - 1;
    return rank[idx];
  };

  // Hidden partition guarantees coverability.
  const uint32_t blocks =
      static_cast<uint32_t>((n + max_set_size - 1) / max_set_size);
  SC_CHECK_GE(num_sets, blocks);
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(perm);

  StagedSets sets;
  for (uint32_t b = 0; b < blocks; ++b) {
    uint32_t lo = b * max_set_size;
    uint32_t hi = std::min(n, lo + max_set_size);
    sets.PushRange(perm.data() + lo, perm.data() + hi);
    sets.Close();
  }
  for (uint32_t s = blocks; s < num_sets; ++s) {
    // Power-law set size in [1, max_set_size].
    double u = rng.UniformDouble();
    uint32_t size = static_cast<uint32_t>(
        std::max(1.0, static_cast<double>(max_set_size) *
                          std::pow(u, alpha)));
    size = std::min(size, max_set_size);
    for (uint32_t i = 0; i < size; ++i) sets.Push(draw_element());
    sets.Close();
  }
  std::vector<uint32_t> order(sets.count());
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);

  SetSystem::Builder builder(n);
  std::vector<uint32_t> planted_ids;
  for (uint32_t pos = 0; pos < order.size(); ++pos) {
    builder.AddSet(sets.Get(order[pos]));
    if (order[pos] < blocks) planted_ids.push_back(pos);
  }
  std::sort(planted_ids.begin(), planted_ids.end());
  return PlantedInstance{std::move(builder).Build(), std::move(planted_ids)};
}

PlantedInstance GenerateGreedyAdversarial(uint32_t levels) {
  SC_CHECK_GE(levels, 1u);
  const uint32_t half = (1u << levels) - 1;  // 2^levels - 1
  const uint32_t n = 2 * half;
  // Row A = [0, half), Row B = [half, n). Column set C_i straddles both
  // rows and has size 2^{levels-i+1}: strictly bigger than what remains
  // of each row after C_1..C_{i-1} are taken, so greedy prefers it.
  SetSystem::Builder builder(n);
  std::vector<uint32_t> scratch(half);  // reused per-set staging buffer
  std::iota(scratch.begin(), scratch.end(), 0u);
  uint32_t id_a = builder.AddSet(scratch);
  std::iota(scratch.begin(), scratch.end(), half);
  uint32_t id_b = builder.AddSet(scratch);
  uint32_t cursor = 0;  // consumes positions within each row
  for (uint32_t i = 1; i <= levels; ++i) {
    uint32_t width = 1u << (levels - i);  // elements taken from each row
    scratch.clear();
    for (uint32_t j = 0; j < width; ++j) {
      scratch.push_back(cursor + j);         // from row A
      scratch.push_back(half + cursor + j);  // from row B
    }
    cursor += width;
    builder.AddSet(scratch);
  }
  return PlantedInstance{std::move(builder).Build(), {id_a, id_b}};
}

PlantedInstance GenerateDisjointBlocks(uint32_t num_elements, uint32_t k,
                                       uint32_t num_singletons, Rng& rng) {
  SC_CHECK_GE(k, 1u);
  SC_CHECK_GE(num_elements, k);
  SetSystem::Builder builder(num_elements);
  std::vector<uint32_t> planted;
  std::vector<uint32_t> scratch;  // reused per-set staging buffer
  for (uint32_t b = 0; b < k; ++b) {
    uint32_t lo = static_cast<uint32_t>(
        (static_cast<uint64_t>(b) * num_elements) / k);
    uint32_t hi = static_cast<uint32_t>(
        (static_cast<uint64_t>(b + 1) * num_elements) / k);
    scratch.clear();
    for (uint32_t e = lo; e < hi; ++e) scratch.push_back(e);
    planted.push_back(builder.AddSet(scratch));
  }
  for (uint32_t s = 0; s < num_singletons; ++s) {
    builder.AddSet({static_cast<uint32_t>(rng.Uniform(num_elements))});
  }
  return PlantedInstance{std::move(builder).Build(), std::move(planted)};
}

}  // namespace streamcover
