#include "setsystem/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace streamcover {

PlantedInstance GeneratePlanted(const PlantedOptions& options, Rng& rng) {
  SC_CHECK_GE(options.cover_size, 1u);
  SC_CHECK_GE(options.num_sets, options.cover_size);
  SC_CHECK_GE(options.num_elements, options.cover_size);
  const uint32_t n = options.num_elements;

  // Random permutation of U split into cover_size contiguous blocks.
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(perm);

  std::vector<std::vector<uint32_t>> sets;
  sets.reserve(options.num_sets);
  const uint32_t k = options.cover_size;
  for (uint32_t b = 0; b < k; ++b) {
    uint32_t lo = static_cast<uint32_t>(
        (static_cast<uint64_t>(b) * n) / k);
    uint32_t hi = static_cast<uint32_t>(
        (static_cast<uint64_t>(b + 1) * n) / k);
    std::vector<uint32_t> block(perm.begin() + lo, perm.begin() + hi);
    // Extra overlap elements drawn from the rest of U.
    uint32_t extra = static_cast<uint32_t>(
        options.planted_overlap * static_cast<double>(block.size()));
    for (uint32_t i = 0; i < extra; ++i) {
      block.push_back(
          static_cast<uint32_t>(rng.Uniform(n)));
    }
    sets.push_back(std::move(block));
  }
  for (uint32_t s = k; s < options.num_sets; ++s) {
    uint32_t size = static_cast<uint32_t>(rng.UniformInt(
        options.noise_min_size,
        std::max(options.noise_min_size, options.noise_max_size)));
    size = std::min(size, n);
    std::vector<uint32_t> elems = rng.SampleWithoutReplacement(n, size);
    sets.push_back(std::move(elems));
  }

  // Stream order: planted sets hidden among noise if requested.
  std::vector<uint32_t> order(sets.size());
  std::iota(order.begin(), order.end(), 0);
  if (options.shuffle_order) rng.Shuffle(order);

  SetSystem::Builder builder(n);
  std::vector<uint32_t> planted_ids;
  planted_ids.reserve(k);
  for (uint32_t pos = 0; pos < order.size(); ++pos) {
    builder.AddSet(std::move(sets[order[pos]]));
    if (order[pos] < k) planted_ids.push_back(pos);
  }
  std::sort(planted_ids.begin(), planted_ids.end());
  return PlantedInstance{std::move(builder).Build(), std::move(planted_ids)};
}

SetSystem GenerateUniformRandom(uint32_t num_elements, uint32_t num_sets,
                                double p, Rng& rng) {
  SetSystem::Builder builder(num_elements);
  for (uint32_t s = 0; s < num_sets; ++s) {
    std::vector<uint32_t> elems;
    for (uint32_t e = 0; e < num_elements; ++e) {
      if (rng.Bernoulli(p)) elems.push_back(e);
    }
    builder.AddSet(std::move(elems));
  }
  return std::move(builder).Build();
}

PlantedInstance GenerateSparse(uint32_t num_elements, uint32_t num_sets,
                               uint32_t max_set_size, Rng& rng) {
  SC_CHECK_GE(max_set_size, 1u);
  const uint32_t n = num_elements;
  const uint32_t blocks =
      static_cast<uint32_t>((n + max_set_size - 1) / max_set_size);
  SC_CHECK_GE(num_sets, blocks);

  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(perm);

  std::vector<std::vector<uint32_t>> sets;
  for (uint32_t b = 0; b < blocks; ++b) {
    uint32_t lo = b * max_set_size;
    uint32_t hi = std::min(n, lo + max_set_size);
    sets.emplace_back(perm.begin() + lo, perm.begin() + hi);
  }
  for (uint32_t s = blocks; s < num_sets; ++s) {
    uint32_t size =
        static_cast<uint32_t>(rng.UniformInt(1, max_set_size));
    sets.push_back(rng.SampleWithoutReplacement(n, std::min(size, n)));
  }
  std::vector<uint32_t> order(sets.size());
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);

  SetSystem::Builder builder(n);
  std::vector<uint32_t> planted_ids;
  for (uint32_t pos = 0; pos < order.size(); ++pos) {
    builder.AddSet(std::move(sets[order[pos]]));
    if (order[pos] < blocks) planted_ids.push_back(pos);
  }
  std::sort(planted_ids.begin(), planted_ids.end());
  return PlantedInstance{std::move(builder).Build(), std::move(planted_ids)};
}

PlantedInstance GenerateZipf(uint32_t num_elements, uint32_t num_sets,
                             double alpha, uint32_t max_set_size, Rng& rng) {
  SC_CHECK_GE(max_set_size, 1u);
  const uint32_t n = num_elements;

  // Element popularity weights ~ rank^{-alpha} over a random ranking.
  std::vector<uint32_t> rank(n);
  std::iota(rank.begin(), rank.end(), 0);
  rng.Shuffle(rank);
  std::vector<double> cumulative(n);
  double total = 0;
  for (uint32_t i = 0; i < n; ++i) {
    total += std::pow(static_cast<double>(i + 1), -alpha);
    cumulative[i] = total;
  }

  auto draw_element = [&]() -> uint32_t {
    double x = rng.UniformDouble() * total;
    auto it = std::lower_bound(cumulative.begin(), cumulative.end(), x);
    size_t idx = static_cast<size_t>(it - cumulative.begin());
    if (idx >= n) idx = n - 1;
    return rank[idx];
  };

  // Hidden partition guarantees coverability.
  const uint32_t blocks =
      static_cast<uint32_t>((n + max_set_size - 1) / max_set_size);
  SC_CHECK_GE(num_sets, blocks);
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(perm);

  std::vector<std::vector<uint32_t>> sets;
  for (uint32_t b = 0; b < blocks; ++b) {
    uint32_t lo = b * max_set_size;
    uint32_t hi = std::min(n, lo + max_set_size);
    sets.emplace_back(perm.begin() + lo, perm.begin() + hi);
  }
  for (uint32_t s = blocks; s < num_sets; ++s) {
    // Power-law set size in [1, max_set_size].
    double u = rng.UniformDouble();
    uint32_t size = static_cast<uint32_t>(
        std::max(1.0, static_cast<double>(max_set_size) *
                          std::pow(u, alpha)));
    size = std::min(size, max_set_size);
    std::vector<uint32_t> elems;
    elems.reserve(size);
    for (uint32_t i = 0; i < size; ++i) elems.push_back(draw_element());
    sets.push_back(std::move(elems));
  }
  std::vector<uint32_t> order(sets.size());
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);

  SetSystem::Builder builder(n);
  std::vector<uint32_t> planted_ids;
  for (uint32_t pos = 0; pos < order.size(); ++pos) {
    builder.AddSet(std::move(sets[order[pos]]));
    if (order[pos] < blocks) planted_ids.push_back(pos);
  }
  std::sort(planted_ids.begin(), planted_ids.end());
  return PlantedInstance{std::move(builder).Build(), std::move(planted_ids)};
}

PlantedInstance GenerateGreedyAdversarial(uint32_t levels) {
  SC_CHECK_GE(levels, 1u);
  const uint32_t half = (1u << levels) - 1;  // 2^levels - 1
  const uint32_t n = 2 * half;
  // Row A = [0, half), Row B = [half, n). Column set C_i straddles both
  // rows and has size 2^{levels-i+1}: strictly bigger than what remains
  // of each row after C_1..C_{i-1} are taken, so greedy prefers it.
  SetSystem::Builder builder(n);
  std::vector<uint32_t> row_a(half), row_b(half);
  std::iota(row_a.begin(), row_a.end(), 0u);
  std::iota(row_b.begin(), row_b.end(), half);
  uint32_t id_a = builder.AddSet(row_a);
  uint32_t id_b = builder.AddSet(row_b);
  uint32_t cursor = 0;  // consumes positions within each row
  for (uint32_t i = 1; i <= levels; ++i) {
    uint32_t width = 1u << (levels - i);  // elements taken from each row
    std::vector<uint32_t> col;
    for (uint32_t j = 0; j < width; ++j) {
      col.push_back(cursor + j);         // from row A
      col.push_back(half + cursor + j);  // from row B
    }
    cursor += width;
    builder.AddSet(std::move(col));
  }
  return PlantedInstance{std::move(builder).Build(), {id_a, id_b}};
}

PlantedInstance GenerateDisjointBlocks(uint32_t num_elements, uint32_t k,
                                       uint32_t num_singletons, Rng& rng) {
  SC_CHECK_GE(k, 1u);
  SC_CHECK_GE(num_elements, k);
  SetSystem::Builder builder(num_elements);
  std::vector<uint32_t> planted;
  for (uint32_t b = 0; b < k; ++b) {
    uint32_t lo = static_cast<uint32_t>(
        (static_cast<uint64_t>(b) * num_elements) / k);
    uint32_t hi = static_cast<uint32_t>(
        (static_cast<uint64_t>(b + 1) * num_elements) / k);
    std::vector<uint32_t> block;
    for (uint32_t e = lo; e < hi; ++e) block.push_back(e);
    planted.push_back(builder.AddSet(std::move(block)));
  }
  for (uint32_t s = 0; s < num_singletons; ++s) {
    builder.AddSet({static_cast<uint32_t>(rng.Uniform(num_elements))});
  }
  return PlantedInstance{std::move(builder).Build(), std::move(planted)};
}

}  // namespace streamcover
