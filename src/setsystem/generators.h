// Workload generators for abstract SetCover instances.
//
// Each generator is deterministic given its Rng. "Planted" generators
// also return an upper bound on OPT (the planted cover), which benches
// use as the denominator of measured approximation ratios.

#ifndef STREAMCOVER_SETSYSTEM_GENERATORS_H_
#define STREAMCOVER_SETSYSTEM_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "setsystem/set_system.h"
#include "util/rng.h"

namespace streamcover {

/// A generated instance together with what is known about its optimum.
struct PlantedInstance {
  SetSystem system;
  /// Ids of a feasible cover planted by the generator; |planted_cover| is
  /// an upper bound on OPT.
  std::vector<uint32_t> planted_cover;
};

/// Options for the planted-cover generator.
struct PlantedOptions {
  uint32_t num_elements = 1000;   ///< n
  uint32_t num_sets = 2000;       ///< m (total, including the planted sets)
  uint32_t cover_size = 20;       ///< number of planted cover sets (>= 1)
  /// Each noise set draws its size uniformly from
  /// [noise_min_size, noise_max_size] and its elements uniformly from U.
  uint32_t noise_min_size = 1;
  uint32_t noise_max_size = 100;
  /// Fraction of extra overlap: each planted set additionally receives
  /// this fraction of random elements outside its block, making the
  /// planted cover non-disjoint (harder for greedy tie-breaking).
  double planted_overlap = 0.1;
  /// If true, planted sets are scattered among noise sets in stream
  /// order; otherwise they come first.
  bool shuffle_order = true;
};

/// Partitions U into `cover_size` blocks (the planted cover), adds
/// `num_sets - cover_size` noise sets. OPT <= cover_size, and since the
/// generator is balanced OPT is typically close to it.
PlantedInstance GeneratePlanted(const PlantedOptions& options, Rng& rng);

/// Uniform random instance: every set picks each element independently
/// with probability `p`. Coverability is NOT guaranteed; callers that
/// need it should check IsCoverable or use GeneratePlanted.
SetSystem GenerateUniformRandom(uint32_t num_elements, uint32_t num_sets,
                                double p, Rng& rng);

/// Sparse instance: all sets have size exactly <= `max_set_size`, and a
/// hidden partition of U into ceil(n / max_set_size) sets guarantees
/// coverability. Returns the planted partition as the cover.
PlantedInstance GenerateSparse(uint32_t num_elements, uint32_t num_sets,
                               uint32_t max_set_size, Rng& rng);

/// Zipf-flavored instance modelling web-scale coverage data (the paper's
/// motivating applications): set sizes follow a power law with exponent
/// `alpha`, element popularity is skewed, and a hidden partition keeps
/// the instance coverable.
PlantedInstance GenerateZipf(uint32_t num_elements, uint32_t num_sets,
                             double alpha, uint32_t max_set_size, Rng& rng);

/// The textbook greedy-adversarial family: OPT = 2 (two rows), but greedy
/// picks the `levels` column sets, one per halving level. n = 2*(2^levels - 1),
/// m = levels + 2. Deterministic.
PlantedInstance GenerateGreedyAdversarial(uint32_t levels);

/// Disjoint blocks: U split into `k` equal blocks, one set per block,
/// plus singleton distractor sets. OPT = k exactly.
PlantedInstance GenerateDisjointBlocks(uint32_t num_elements, uint32_t k,
                                       uint32_t num_singletons, Rng& rng);

}  // namespace streamcover

#endif  // STREAMCOVER_SETSYSTEM_GENERATORS_H_
