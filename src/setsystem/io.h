// Plain-text serialization of SetSystem instances.
//
// Format (whitespace separated):
//   setcover <n> <m>
//   <size_0> <e ...>
//   ...
//   <size_{m-1}> <e ...>

#ifndef STREAMCOVER_SETSYSTEM_IO_H_
#define STREAMCOVER_SETSYSTEM_IO_H_

#include <istream>
#include <optional>
#include <ostream>
#include <string>

#include "setsystem/set_system.h"

namespace streamcover {

/// Writes `system` to `os` in the text format above.
void WriteSetSystem(const SetSystem& system, std::ostream& os);

/// Parses a SetSystem; returns std::nullopt and fills `*error` on
/// malformed input (bad magic, out-of-range element, truncated data).
std::optional<SetSystem> ReadSetSystem(std::istream& is, std::string* error);

/// Convenience file wrappers. Return false / nullopt on IO failure.
bool SaveSetSystemToFile(const SetSystem& system, const std::string& path);
std::optional<SetSystem> LoadSetSystemFromFile(const std::string& path,
                                               std::string* error);

}  // namespace streamcover

#endif  // STREAMCOVER_SETSYSTEM_IO_H_
