#include "setsystem/binary_io.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "setsystem/io.h"
#include "util/check.h"

namespace streamcover {

namespace binfmt {

uint64_t Fnv1a(const uint8_t* bytes, size_t len, uint64_t state) {
  for (size_t i = 0; i < len; ++i) {
    state ^= bytes[i];
    state *= 0x100000001b3ULL;
  }
  return state;
}

namespace {

// Fixed-width fields are memcpy'd: the buffers they live in (file bytes,
// mmap pages) have no alignment guarantee and a cast-and-load would be
// UB. Little-endian layout matches every target we build for.
void PutU32(uint32_t v, uint8_t* out) { std::memcpy(out, &v, 4); }
void PutU64(uint64_t v, uint8_t* out) { std::memcpy(out, &v, 8); }
uint32_t GetU32(const uint8_t* in) {
  uint32_t v;
  std::memcpy(&v, in, 4);
  return v;
}
uint64_t GetU64(const uint8_t* in) {
  uint64_t v;
  std::memcpy(&v, in, 8);
  return v;
}

}  // namespace

uint64_t BinaryLayout::SetOffset(uint64_t s) const {
  return GetU64(footer + s * 8);
}

std::vector<ScanChunk> BuildChunkPlan(const BinaryLayout& layout,
                                      uint64_t target_bytes) {
  std::vector<ScanChunk> chunks;
  const uint64_t m = layout.m;
  if (m == 0) return chunks;
  uint64_t first = 0;
  uint64_t begin = layout.SetOffset(0);
  for (uint64_t s = 1; s <= m; ++s) {
    const uint64_t offset = layout.SetOffset(s);
    if (s == m || (target_bytes > 0 && offset - begin >= target_bytes)) {
      ScanChunk chunk;
      chunk.first_set = static_cast<uint32_t>(first);
      chunk.set_count = static_cast<uint32_t>(s - first);
      chunk.byte_begin = begin;
      chunk.byte_end = offset;
      chunks.push_back(chunk);
      first = s;
      begin = offset;
    }
  }
  return chunks;
}

bool ValidateBinaryLayout(const uint8_t* data, uint64_t size,
                          BinaryLayout* layout, std::string* error) {
  auto fail = [error](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  if (size < kHeaderBytes) return fail("file shorter than header");
  if (std::memcmp(data, kMagic, 8) != 0) return fail("bad magic");
  if (GetU32(data + 8) != kVersion) {
    return fail("unsupported version " + std::to_string(GetU32(data + 8)));
  }
  if (GetU32(data + 12) != kHeaderBytes) {
    return fail("unexpected header size");
  }
  layout->n = GetU64(data + 16);
  layout->m = GetU64(data + 24);
  layout->nnz = GetU64(data + 32);
  layout->footer_offset = GetU64(data + 40);
  layout->checksum = GetU64(data + 48);
  if (layout->n > kMaxDimension || layout->m > kMaxDimension) {
    return fail("n/m out of range");
  }
  const uint64_t footer_bytes = (layout->m + 1) * 8;
  if (layout->footer_offset < kHeaderBytes || layout->footer_offset > size ||
      size - layout->footer_offset != footer_bytes + 8) {
    return fail("truncated file: size does not match footer offset");
  }
  if (std::memcmp(data + size - 8, kEndMagic, 8) != 0) {
    return fail("missing end magic (truncated or corrupt file)");
  }
  layout->footer = data + layout->footer_offset;
  // Offsets must start at the body, end at the footer, and be
  // monotone — this pins every set's extent without decoding the body.
  if (layout->SetOffset(0) != kHeaderBytes) {
    return fail("corrupt footer: first offset");
  }
  if (layout->SetOffset(layout->m) != layout->footer_offset) {
    return fail("corrupt footer: last offset");
  }
  for (uint64_t s = 0; s < layout->m; ++s) {
    if (layout->SetOffset(s) > layout->SetOffset(s + 1)) {
      return fail("corrupt footer: offsets not monotone");
    }
  }
  return true;
}

void AppendVarint(uint64_t value, std::string& out) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

std::optional<uint64_t> DecodeVarint(const uint8_t** cursor,
                                     const uint8_t* end) {
  uint64_t value = 0;
  int shift = 0;
  const uint8_t* p = *cursor;
  while (p < end) {
    uint8_t byte = *p++;
    if (shift == 63 && byte > 1) return std::nullopt;  // overflows 64 bits
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *cursor = p;
      return value;
    }
    shift += 7;
    if (shift > 63) return std::nullopt;
  }
  return std::nullopt;  // ran off the buffer mid-varint
}

}  // namespace binfmt

namespace {

using binfmt::kHeaderBytes;

void EncodeHeader(uint64_t n, uint64_t m, uint64_t nnz,
                  uint64_t footer_offset, uint64_t checksum,
                  uint8_t out[binfmt::kHeaderBytes]) {
  std::memset(out, 0, kHeaderBytes);
  std::memcpy(out, binfmt::kMagic, 8);
  binfmt::PutU32(binfmt::kVersion, out + 8);
  binfmt::PutU32(static_cast<uint32_t>(kHeaderBytes), out + 12);
  binfmt::PutU64(n, out + 16);
  binfmt::PutU64(m, out + 24);
  binfmt::PutU64(nnz, out + 32);
  binfmt::PutU64(footer_offset, out + 40);
  binfmt::PutU64(checksum, out + 48);
}

}  // namespace

bool IsBinarySetSystemFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char magic[8];
  bool is_binary = std::fread(magic, 1, 8, f) == 8 &&
                   std::memcmp(magic, binfmt::kMagic, 8) == 0;
  std::fclose(f);
  return is_binary;
}

std::optional<BinarySetWriter> BinarySetWriter::Create(
    const std::string& path, uint64_t num_elements, std::string* error) {
  auto fail = [error](const std::string& msg) -> std::optional<BinarySetWriter> {
    if (error != nullptr) *error = msg;
    return std::nullopt;
  };
  if (num_elements > binfmt::kMaxDimension) {
    return fail("num_elements out of range");
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return fail("cannot open " + path + " for writing");
  // Reserve the header slot; Finish patches it with the real counts.
  uint8_t header[kHeaderBytes];
  EncodeHeader(num_elements, 0, 0, 0, 0, header);
  if (std::fwrite(header, 1, kHeaderBytes, f) != kHeaderBytes) {
    std::fclose(f);
    return fail("write failed on " + path);
  }
  BinarySetWriter writer;
  writer.file_ = f;
  writer.path_ = path;
  writer.num_elements_ = num_elements;
  writer.offsets_.push_back(kHeaderBytes);
  return writer;
}

BinarySetWriter::BinarySetWriter(BinarySetWriter&& other) noexcept {
  *this = std::move(other);
}

BinarySetWriter& BinarySetWriter::operator=(BinarySetWriter&& other) noexcept {
  if (this == &other) return *this;
  if (file_ != nullptr) std::fclose(file_);
  file_ = std::exchange(other.file_, nullptr);
  path_ = std::move(other.path_);
  num_elements_ = other.num_elements_;
  nnz_ = other.nnz_;
  checksum_ = other.checksum_;
  offsets_ = std::move(other.offsets_);
  scratch_ = std::move(other.scratch_);
  encode_buf_ = std::move(other.encode_buf_);
  error_ = std::move(other.error_);
  finished_ = other.finished_;
  return *this;
}

BinarySetWriter::~BinarySetWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

bool BinarySetWriter::AddSet(std::span<const uint32_t> elements) {
  if (!error_.empty()) return false;
  SC_CHECK(!finished_);  // AddSet after Finish is a programming error
  scratch_.assign(elements.begin(), elements.end());
  std::sort(scratch_.begin(), scratch_.end());
  scratch_.erase(std::unique(scratch_.begin(), scratch_.end()),
                 scratch_.end());
  if (!scratch_.empty() && scratch_.back() >= num_elements_) {
    error_ = "element id " + std::to_string(scratch_.back()) +
             " out of range in set " + std::to_string(num_sets());
    return false;
  }
  encode_buf_.clear();
  binfmt::AppendVarint(scratch_.size(), encode_buf_);
  uint32_t prev = 0;
  for (size_t i = 0; i < scratch_.size(); ++i) {
    // Strictly increasing after dedup, so the -1 never wraps.
    uint64_t delta = (i == 0) ? scratch_[0] : scratch_[i] - prev - 1;
    binfmt::AppendVarint(delta, encode_buf_);
    prev = scratch_[i];
  }
  if (std::fwrite(encode_buf_.data(), 1, encode_buf_.size(), file_) !=
      encode_buf_.size()) {
    error_ = "write failed on " + path_;
    return false;
  }
  checksum_ = binfmt::Fnv1a(
      reinterpret_cast<const uint8_t*>(encode_buf_.data()),
      encode_buf_.size(), checksum_);
  nnz_ += scratch_.size();
  offsets_.push_back(offsets_.back() + encode_buf_.size());
  return true;
}

bool BinarySetWriter::Finish(std::string* error) {
  auto fail = [this, error](const std::string& msg) {
    error_ = msg;
    if (error != nullptr) *error = msg;
    return false;
  };
  SC_CHECK(!finished_);  // Finish called twice
  finished_ = true;
  if (!error_.empty()) {
    if (error != nullptr) *error = error_;
    return false;
  }
  if (num_sets() > binfmt::kMaxDimension) return fail("too many sets");
  const uint64_t footer_offset = offsets_.back();
  // The vector's uint64s are already little-endian in memory on every
  // supported target; write them in one shot.
  if (std::fwrite(offsets_.data(), sizeof(uint64_t), offsets_.size(),
                  file_) != offsets_.size()) {
    return fail("write failed on " + path_);
  }
  if (std::fwrite(binfmt::kEndMagic, 1, 8, file_) != 8) {
    return fail("write failed on " + path_);
  }
  uint8_t header[kHeaderBytes];
  EncodeHeader(num_elements_, num_sets(), nnz_, footer_offset, checksum_,
               header);
  if (std::fseek(file_, 0, SEEK_SET) != 0 ||
      std::fwrite(header, 1, kHeaderBytes, file_) != kHeaderBytes) {
    return fail("header patch failed on " + path_);
  }
  std::FILE* f = std::exchange(file_, nullptr);
  if (std::fclose(f) != 0) return fail("close failed on " + path_);
  return true;
}

bool WriteBinarySetSystem(const SetSystem& system, const std::string& path,
                          std::string* error) {
  auto writer = BinarySetWriter::Create(path, system.num_elements(), error);
  if (!writer.has_value()) return false;
  for (uint32_t s = 0; s < system.num_sets(); ++s) {
    if (!writer->AddSet(system.GetSet(s))) {
      if (error != nullptr) *error = writer->error();
      return false;
    }
  }
  return writer->Finish(error);
}

std::optional<SetSystem> LoadBinarySetSystemFromFile(const std::string& path,
                                                     std::string* error) {
  auto fail = [error](const std::string& msg) -> std::optional<SetSystem> {
    if (error != nullptr) *error = msg;
    return std::nullopt;
  };
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return fail("cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  long file_size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (file_size < 0) {
    std::fclose(f);
    return fail("cannot stat " + path);
  }
  std::vector<uint8_t> bytes(static_cast<size_t>(file_size));
  size_t read = bytes.empty() ? 0 : std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (read != bytes.size()) return fail("short read on " + path);

  binfmt::BinaryLayout layout;
  if (!binfmt::ValidateBinaryLayout(bytes.data(), bytes.size(), &layout,
                                    error)) {
    return std::nullopt;
  }
  const uint8_t* body = bytes.data() + kHeaderBytes;
  const uint64_t body_len = layout.footer_offset - kHeaderBytes;
  if (binfmt::Fnv1a(body, body_len, binfmt::kFnvOffset) != layout.checksum) {
    return fail("body checksum mismatch (corrupt file)");
  }

  SetSystem::Builder builder(static_cast<uint32_t>(layout.n));
  std::vector<uint32_t> elems;
  for (uint64_t s = 0; s < layout.m; ++s) {
    const uint8_t* cursor = bytes.data() + layout.SetOffset(s);
    const uint8_t* end = bytes.data() + layout.SetOffset(s + 1);
    auto size = binfmt::DecodeVarint(&cursor, end);
    if (!size.has_value() || *size > layout.n) {
      return fail("corrupt set " + std::to_string(s) + ": bad size");
    }
    elems.clear();
    elems.reserve(*size);
    uint64_t prev = 0;
    for (uint64_t i = 0; i < *size; ++i) {
      auto delta = binfmt::DecodeVarint(&cursor, end);
      if (!delta.has_value()) {
        return fail("corrupt set " + std::to_string(s) + ": truncated body");
      }
      uint64_t e = (i == 0) ? *delta : prev + *delta + 1;
      if (e >= layout.n) {
        return fail("corrupt set " + std::to_string(s) +
                    ": element id out of range");
      }
      elems.push_back(static_cast<uint32_t>(e));
      prev = e;
    }
    if (cursor != end) {
      return fail("corrupt set " + std::to_string(s) + ": trailing bytes");
    }
    builder.AddSet(std::span<const uint32_t>(elems));
  }
  return std::move(builder).Build();
}

std::optional<SetSystem> LoadAnySetSystemFromFile(const std::string& path,
                                                  std::string* error) {
  if (IsBinarySetSystemFile(path)) {
    return LoadBinarySetSystemFromFile(path, error);
  }
  return LoadSetSystemFromFile(path, error);
}

}  // namespace streamcover
