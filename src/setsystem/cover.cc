#include "setsystem/cover.h"

#include <algorithm>

#include "util/check.h"

namespace streamcover {

void Cover::Deduplicate() {
  std::sort(set_ids.begin(), set_ids.end());
  set_ids.erase(std::unique(set_ids.begin(), set_ids.end()), set_ids.end());
}

DynamicBitset CoverageMask(const SetSystem& system, const Cover& cover) {
  DynamicBitset mask(system.num_elements());
  for (uint32_t s : cover.set_ids) {
    for (uint32_t e : system.GetSet(s)) mask.Set(e);
  }
  return mask;
}

size_t CoveredCount(const SetSystem& system, const Cover& cover) {
  return CoverageMask(system, cover).Count();
}

bool IsFullCover(const SetSystem& system, const Cover& cover) {
  return CoveredCount(system, cover) == system.num_elements();
}

bool CoversTargets(const SetSystem& system, const Cover& cover,
                   const DynamicBitset& targets) {
  SC_CHECK_EQ(targets.size(), system.num_elements());
  return targets.AndNotCountWords(CoverageMask(system, cover)) == 0;
}

bool IsCoverable(const SetSystem& system) {
  DynamicBitset mask(system.num_elements());
  for (uint32_t s = 0; s < system.num_sets(); ++s) {
    for (uint32_t e : system.GetSet(s)) mask.Set(e);
  }
  return mask.Count() == system.num_elements();
}

size_t PruneRedundant(const SetSystem& system, Cover& cover) {
  // Count, per element, how many chosen sets cover it; a set is redundant
  // iff every one of its elements has multiplicity >= 2.
  std::vector<uint32_t> multiplicity(system.num_elements(), 0);
  for (uint32_t s : cover.set_ids) {
    for (uint32_t e : system.GetSet(s)) ++multiplicity[e];
  }
  size_t removed = 0;
  std::vector<uint32_t> kept;
  kept.reserve(cover.set_ids.size());
  // Reverse pick order: later picks are the most likely to be redundant.
  for (auto it = cover.set_ids.rbegin(); it != cover.set_ids.rend(); ++it) {
    uint32_t s = *it;
    bool redundant = true;
    for (uint32_t e : system.GetSet(s)) {
      if (multiplicity[e] < 2) {
        redundant = false;
        break;
      }
    }
    if (redundant) {
      for (uint32_t e : system.GetSet(s)) --multiplicity[e];
      ++removed;
    } else {
      kept.push_back(s);
    }
  }
  std::reverse(kept.begin(), kept.end());
  cover.set_ids = std::move(kept);
  return removed;
}

}  // namespace streamcover
