#include "setsystem/stream_generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"
#include "util/rng.h"

namespace streamcover {
namespace {

// Sub-generator for one staged set: content depends only on (seed,
// staged id), never on emission order. The multiplier is the SplitMix64
// increment, decorrelating consecutive ids before Rng's own seeding.
Rng SetRng(uint64_t seed, uint32_t staged_id) {
  return Rng(seed ^ (0x9E3779B97F4A7C15ULL *
                     (static_cast<uint64_t>(staged_id) + 1)));
}

// Shared driver: emits staged sets 0..m-1 in `order`, asking `fill` for
// the content of each. Returns nullopt if the sink aborts.
template <typename Fill>
std::optional<StreamGenResult> EmitAll(const std::vector<uint32_t>& order,
                                       uint32_t planted_count, Fill&& fill,
                                       const SetSink& sink,
                                       std::string* error) {
  StreamGenResult result;
  std::vector<uint32_t> scratch;
  for (uint32_t pos = 0; pos < order.size(); ++pos) {
    const uint32_t staged_id = order[pos];
    scratch.clear();
    fill(staged_id, scratch);
    if (!sink(std::span<const uint32_t>(scratch))) {
      if (error != nullptr && error->empty()) {
        *error = "sink aborted at set " + std::to_string(pos);
      }
      return std::nullopt;
    }
    ++result.num_sets;
    result.nnz += scratch.size();
    if (staged_id < planted_count) {
      result.planted_positions.push_back(pos);
    }
  }
  std::sort(result.planted_positions.begin(),
            result.planted_positions.end());
  return result;
}

std::vector<uint32_t> ShuffledIota(uint32_t count, Rng& rng, bool shuffle) {
  std::vector<uint32_t> v(count);
  std::iota(v.begin(), v.end(), 0u);
  if (shuffle) rng.Shuffle(v);
  return v;
}

}  // namespace

std::optional<StreamGenResult> StreamPlanted(const PlantedOptions& options,
                                             uint64_t seed,
                                             const SetSink& sink,
                                             std::string* error) {
  SC_CHECK_GE(options.cover_size, 1u);
  SC_CHECK_GE(options.num_sets, options.cover_size);
  SC_CHECK_GE(options.num_elements, options.cover_size);
  const uint32_t n = options.num_elements;
  const uint32_t k = options.cover_size;

  // O(n + m) state: the blocked universe permutation and stream order.
  Rng master(seed);
  std::vector<uint32_t> perm = ShuffledIota(n, master, true);
  std::vector<uint32_t> order =
      ShuffledIota(options.num_sets, master, options.shuffle_order);

  auto fill = [&](uint32_t sid, std::vector<uint32_t>& out) {
    Rng sub = SetRng(seed, sid);
    if (sid < k) {
      const uint32_t lo =
          static_cast<uint32_t>((static_cast<uint64_t>(sid) * n) / k);
      const uint32_t hi =
          static_cast<uint32_t>((static_cast<uint64_t>(sid + 1) * n) / k);
      out.assign(perm.begin() + lo, perm.begin() + hi);
      const uint32_t extra = static_cast<uint32_t>(
          options.planted_overlap * static_cast<double>(hi - lo));
      for (uint32_t i = 0; i < extra; ++i) {
        out.push_back(static_cast<uint32_t>(sub.Uniform(n)));
      }
    } else {
      uint32_t size = static_cast<uint32_t>(sub.UniformInt(
          options.noise_min_size,
          std::max(options.noise_min_size, options.noise_max_size)));
      size = std::min(size, n);
      sub.SampleWithoutReplacementInto(n, size, out);
    }
  };
  return EmitAll(order, k, fill, sink, error);
}

std::optional<StreamGenResult> StreamSparse(uint32_t num_elements,
                                            uint32_t num_sets,
                                            uint32_t max_set_size,
                                            uint64_t seed,
                                            const SetSink& sink,
                                            std::string* error) {
  SC_CHECK_GE(max_set_size, 1u);
  const uint32_t n = num_elements;
  const uint32_t blocks =
      static_cast<uint32_t>((n + max_set_size - 1) / max_set_size);
  SC_CHECK_GE(num_sets, blocks);

  Rng master(seed);
  std::vector<uint32_t> perm = ShuffledIota(n, master, true);
  std::vector<uint32_t> order = ShuffledIota(num_sets, master, true);

  auto fill = [&](uint32_t sid, std::vector<uint32_t>& out) {
    if (sid < blocks) {
      const uint32_t lo = sid * max_set_size;
      const uint32_t hi = std::min(n, lo + max_set_size);
      out.assign(perm.begin() + lo, perm.begin() + hi);
    } else {
      Rng sub = SetRng(seed, sid);
      const uint32_t size =
          static_cast<uint32_t>(sub.UniformInt(1, max_set_size));
      sub.SampleWithoutReplacementInto(n, std::min(size, n), out);
    }
  };
  return EmitAll(order, blocks, fill, sink, error);
}

std::optional<StreamGenResult> StreamZipf(uint32_t num_elements,
                                          uint32_t num_sets, double alpha,
                                          uint32_t max_set_size,
                                          uint64_t seed, const SetSink& sink,
                                          std::string* error) {
  SC_CHECK_GE(max_set_size, 1u);
  const uint32_t n = num_elements;
  const uint32_t blocks =
      static_cast<uint32_t>((n + max_set_size - 1) / max_set_size);
  SC_CHECK_GE(num_sets, blocks);

  Rng master(seed);
  // Popularity weights ~ rank^{-alpha} over a random ranking, same as
  // the in-memory generator.
  std::vector<uint32_t> rank = ShuffledIota(n, master, true);
  std::vector<double> cumulative(n);
  double total = 0;
  for (uint32_t i = 0; i < n; ++i) {
    total += std::pow(static_cast<double>(i + 1), -alpha);
    cumulative[i] = total;
  }
  std::vector<uint32_t> perm = ShuffledIota(n, master, true);
  std::vector<uint32_t> order = ShuffledIota(num_sets, master, true);

  auto draw_element = [&](Rng& sub) -> uint32_t {
    const double x = sub.UniformDouble() * total;
    auto it = std::lower_bound(cumulative.begin(), cumulative.end(), x);
    size_t idx = static_cast<size_t>(it - cumulative.begin());
    if (idx >= n) idx = n - 1;
    return rank[idx];
  };
  auto fill = [&](uint32_t sid, std::vector<uint32_t>& out) {
    if (sid < blocks) {
      const uint32_t lo = sid * max_set_size;
      const uint32_t hi = std::min(n, lo + max_set_size);
      out.assign(perm.begin() + lo, perm.begin() + hi);
    } else {
      Rng sub = SetRng(seed, sid);
      const double u = sub.UniformDouble();
      uint32_t size = static_cast<uint32_t>(std::max(
          1.0, static_cast<double>(max_set_size) * std::pow(u, alpha)));
      size = std::min(size, max_set_size);
      for (uint32_t i = 0; i < size; ++i) out.push_back(draw_element(sub));
    }
  };
  return EmitAll(order, blocks, fill, sink, error);
}

}  // namespace streamcover
