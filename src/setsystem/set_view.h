// SetView — the unit of stream dispatch.
//
// One set of F as the consumers see it: its stream id plus a borrowed
// span over the elements, which live in whatever columnar storage the
// source scans (the SetSystem CSR arena, a file parse buffer, or a
// scheduler batch). A view is two words; it never owns or copies the
// elements, so a set flows from source to solver with zero per-set heap
// traffic. Views are valid only for the duration of the callback they
// are passed to.

#ifndef STREAMCOVER_SETSYSTEM_SET_VIEW_H_
#define STREAMCOVER_SETSYSTEM_SET_VIEW_H_

#include <cstddef>
#include <cstdint>
#include <span>

namespace streamcover {

/// A borrowed (id, elements) pair in stream order.
struct SetView {
  uint32_t id = 0;
  std::span<const uint32_t> elems;

  size_t size() const { return elems.size(); }
  bool empty() const { return elems.empty(); }
  auto begin() const { return elems.begin(); }
  auto end() const { return elems.end(); }
};

}  // namespace streamcover

#endif  // STREAMCOVER_SETSYSTEM_SET_VIEW_H_
