// Cover: a candidate solution (multiset of set ids) plus verification
// utilities shared by every algorithm, test, and bench.

#ifndef STREAMCOVER_SETSYSTEM_COVER_H_
#define STREAMCOVER_SETSYSTEM_COVER_H_

#include <cstdint>
#include <vector>

#include "setsystem/set_system.h"
#include "util/bitset.h"

namespace streamcover {

/// A candidate set cover: the ids of the chosen sets.
struct Cover {
  std::vector<uint32_t> set_ids;

  size_t size() const { return set_ids.size(); }

  /// Removes duplicate ids (algorithms may pick a set twice across
  /// iterations; the solution counts it once).
  void Deduplicate();
};

/// Bitmask over U of elements covered by `cover`.
DynamicBitset CoverageMask(const SetSystem& system, const Cover& cover);

/// Number of elements of U covered by `cover`.
size_t CoveredCount(const SetSystem& system, const Cover& cover);

/// True iff `cover` covers every element of U.
bool IsFullCover(const SetSystem& system, const Cover& cover);

/// True iff `cover` covers every element flagged in `targets`.
bool CoversTargets(const SetSystem& system, const Cover& cover,
                   const DynamicBitset& targets);

/// True iff every element belongs to at least one set (a full cover
/// exists at all).
bool IsCoverable(const SetSystem& system);

/// Greedily removes redundant sets from `cover` (sets whose elements are
/// all covered by the rest), scanning in reverse pick order. Returns the
/// number of sets removed. Keeps the cover feasible.
size_t PruneRedundant(const SetSystem& system, Cover& cover);

}  // namespace streamcover

#endif  // STREAMCOVER_SETSYSTEM_COVER_H_
