// TransposedIndex + GainTracker — output-sensitive residual-gain
// maintenance (the `transposeRRRSets` idea from GreeDIMM).
//
// Every multi-pass consumer in this library keeps, for some candidate
// family F' and a shrinking uncovered mask U, the residual gains
// |S ∩ U| for S in F'. The rescan way to maintain them is to recompute
// every candidate's gain after each pick — rounds × |F'| kernel calls
// touching rounds × nnz(F') elements. The transposed index flips the
// direction: a CSR over element → {sets containing it}, built in one
// counting sweep + one fill sweep over the candidates (and, for
// iterSetCover, per guess from that guess's stored projections — see
// offline/greedy.cc, which transposes whatever system the Size-Test
// pass handed it). When elements become covered, GainTracker walks
// exactly the affected columns and decrements exact gains — each
// (element, set) pair is touched at most ONCE over the whole run, so
// total maintenance is nnz(F') instead of rounds × nnz(F').
//
// GainTracker is a CoverageDeltaListener, so it can also ride
// PassScheduler's delta bus: streaming consumers that cover elements
// (the threshold sieve) publish their per-pass deltas and any
// registered tracker stays exact without a rescan.
//
// Counters: `gain_updates` counts individual gain decrements (the
// O(1) maintenance ops); consumers report `sets_touched` for the gain
// *evaluations* they perform (pops/rescans) — the pair the bench and
// sweep reports surface to make output-sensitivity observable.

#ifndef STREAMCOVER_SETSYSTEM_TRANSPOSED_INDEX_H_
#define STREAMCOVER_SETSYSTEM_TRANSPOSED_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/bitset.h"
#include "util/check.h"
#include "util/coverage_delta.h"

namespace streamcover {

/// CSR over element → indices of the sets that contain it. Set indices
/// are whatever the builder's fill calls said — candidate insertion
/// order for MergeStage, set ids for a whole SetSystem. Columns list
/// sets in fill order (ascending when sets are filled in index order).
class TransposedIndex {
 public:
  TransposedIndex() = default;

  /// Two-phase builder: count every set's elements, PrepareFill(), then
  /// fill the same (set, element) pairs. Both sweeps accept the pairs
  /// in any order, but the fill order defines the column order — fill
  /// sets in ascending index order to get sorted columns.
  class Builder {
   public:
    explicit Builder(uint32_t num_elements)
        : counts_(static_cast<size_t>(num_elements) + 1, 0),
          num_elements_(num_elements) {}

    void CountElement(uint32_t element) {
      SC_DCHECK_LT(element, num_elements_);
      ++counts_[static_cast<size_t>(element) + 1];
    }
    void CountSet(std::span<const uint32_t> elems) {
      for (uint32_t e : elems) CountElement(e);
    }

    /// Freezes the counts into column offsets. Call exactly once,
    /// between the counting and fill sweeps.
    void PrepareFill();

    void FillElement(uint32_t set_index, uint32_t element) {
      SC_DCHECK(prepared_);
      entries_[cursors_[element]++] = set_index;
    }
    void FillSet(uint32_t set_index, std::span<const uint32_t> elems) {
      for (uint32_t e : elems) FillElement(set_index, e);
    }

    /// Finishes the index; every counted pair must have been filled.
    TransposedIndex Build() &&;

   private:
    std::vector<size_t> counts_;  // then offsets after PrepareFill
    std::vector<size_t> cursors_;
    std::vector<uint32_t> entries_;
    uint32_t num_elements_ = 0;
    bool prepared_ = false;
  };

  uint32_t num_elements() const {
    return static_cast<uint32_t>(
        offsets_.empty() ? 0 : offsets_.size() - 1);
  }
  size_t entry_count() const { return entries_.size(); }

  /// Indices of the sets containing `element`, in fill order.
  std::span<const uint32_t> Sets(uint32_t element) const {
    SC_DCHECK_LT(static_cast<size_t>(element) + 1, offsets_.size());
    return std::span<const uint32_t>(entries_)
        .subspan(offsets_[element],
                 offsets_[element + 1] - offsets_[element]);
  }

  /// True iff some set contains `element` (the coverability test).
  bool Coverable(uint32_t element) const {
    return offsets_[element + 1] > offsets_[element];
  }

  /// Logical 64-bit words retained, for SpaceTracker charging: one word
  /// per offset + half a word per uint32 entry, rounded up.
  uint64_t word_count() const {
    return static_cast<uint64_t>(offsets_.size()) +
           (static_cast<uint64_t>(entries_.size()) + 1) / 2;
  }

 private:
  std::vector<size_t> offsets_;
  std::vector<uint32_t> entries_;
};

/// Exact residual gains for the sets a TransposedIndex covers,
/// maintained decrementally from coverage deltas. `num_sets` is the
/// exclusive upper bound on the set indices the index's columns hold.
class GainTracker final : public CoverageDeltaListener {
 public:
  /// `index` must outlive the tracker. Gains start at zero; call one
  /// Init* before reading them.
  GainTracker(const TransposedIndex* index, uint32_t num_sets)
      : index_(index), gains_(num_sets, 0) {}

  /// gains[s] = |S_s ∩ uncovered| for the current mask, via one sweep
  /// over the uncovered columns. The mask must span the index's
  /// universe.
  void InitFromMask(const DynamicBitset& uncovered);

  uint64_t gain(uint32_t set_index) const {
    SC_DCHECK_LT(set_index, gains_.size());
    return gains_[set_index];
  }
  uint32_t num_sets() const {
    return static_cast<uint32_t>(gains_.size());
  }

  /// Decrements the gain of every set containing a newly covered
  /// element. Elements must be distinct, previously uncovered (at most
  /// once per element over the tracker's lifetime), and < the index's
  /// universe size.
  void OnCovered(std::span<const uint32_t> newly_covered);

  void OnCoverageDelta(std::span<const uint32_t> newly_covered) override {
    OnCovered(newly_covered);
  }

  /// Individual gain decrements applied so far — the output-sensitive
  /// maintenance cost (bounded by the index's entry_count()).
  uint64_t gain_updates() const { return gain_updates_; }

  /// Logical words retained (the gains array, u32-packed).
  uint64_t word_count() const {
    return (static_cast<uint64_t>(gains_.size()) + 1) / 2;
  }

 private:
  const TransposedIndex* index_;
  std::vector<uint32_t> gains_;
  uint64_t gain_updates_ = 0;
};

}  // namespace streamcover

#endif  // STREAMCOVER_SETSYSTEM_TRANSPOSED_INDEX_H_
