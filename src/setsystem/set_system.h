// The SetCover instance representation.
//
// A SetSystem (U, F) is a ground set U = {0, ..., n-1} and a family of m
// sets of elements, stored immutably in CSR form (one offsets array, one
// flat element-id array). Sets keep their stream order: set id i is the
// i-th set scanned in a pass. Construction goes through Builder, which
// appends each set to the CSR arena and sorts/deduplicates it in place
// there — generators and IO feed it spans, so no per-set vector is ever
// materialized on the build path.

#ifndef STREAMCOVER_SETSYSTEM_SET_SYSTEM_H_
#define STREAMCOVER_SETSYSTEM_SET_SYSTEM_H_

#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "setsystem/set_view.h"

namespace streamcover {

/// Immutable set system (U, F) in CSR layout.
class SetSystem {
 public:
  /// Incremental constructor. Elements out of [0, num_elements) are
  /// rejected with a CHECK; duplicate elements within a set are merged.
  class Builder {
   public:
    explicit Builder(uint32_t num_elements);

    /// Appends a set; returns its id (position in the stream order).
    /// The elements are copied onto the CSR tail and sorted/deduped in
    /// place there — the zero-staging path generators and IO use.
    uint32_t AddSet(std::span<const uint32_t> elements);

    /// Vector / braced-list convenience (tests, ad-hoc construction);
    /// same semantics.
    uint32_t AddSet(const std::vector<uint32_t>& elements) {
      return AddSet(std::span<const uint32_t>(elements));
    }
    uint32_t AddSet(std::initializer_list<uint32_t> elements) {
      return AddSet(
          std::span<const uint32_t>(elements.begin(), elements.size()));
    }

    /// Number of sets added so far.
    uint32_t num_sets() const;

    /// Finalizes. The builder must not be reused afterwards.
    SetSystem Build() &&;

   private:
    uint32_t num_elements_;
    std::vector<size_t> offsets_;
    std::vector<uint32_t> elements_;
  };

  SetSystem() = default;

  /// |U|.
  uint32_t num_elements() const { return num_elements_; }
  /// |F|.
  uint32_t num_sets() const {
    return static_cast<uint32_t>(offsets_.size()) - 1;
  }
  /// Sum of set sizes (the "input size" mn in the worst case).
  size_t total_size() const { return elements_.size(); }

  /// CSR heap footprint in bytes (offsets + elements arrays). The
  /// serving layer's instance cache charges residents with this.
  uint64_t MemoryBytes() const {
    return static_cast<uint64_t>(offsets_.size()) * sizeof(size_t) +
           static_cast<uint64_t>(elements_.size()) * sizeof(uint32_t);
  }

  /// The elements of set `set_id`, sorted ascending.
  std::span<const uint32_t> GetSet(uint32_t set_id) const;

  /// Borrowed (id, elements) view of set `set_id` — what stream sources
  /// dispatch to consumers.
  SetView GetView(uint32_t set_id) const {
    return SetView{set_id, GetSet(set_id)};
  }

  size_t SetSize(uint32_t set_id) const;

  /// True if `element` is a member of set `set_id` (binary search).
  bool Contains(uint32_t set_id, uint32_t element) const;

 private:
  friend class Builder;
  SetSystem(uint32_t num_elements, std::vector<size_t> offsets,
            std::vector<uint32_t> elements);

  uint32_t num_elements_ = 0;
  std::vector<size_t> offsets_{0};
  std::vector<uint32_t> elements_;
};

/// Element -> covering sets index in CSR form. Used by offline solvers;
/// streaming algorithms never build it (it would cost O(mn) space).
class InvertedIndex {
 public:
  explicit InvertedIndex(const SetSystem& system);

  /// Ids of the sets containing `element`, ascending.
  std::span<const uint32_t> SetsContaining(uint32_t element) const;

  /// Number of sets containing `element`.
  size_t Degree(uint32_t element) const;

 private:
  std::vector<size_t> offsets_;
  std::vector<uint32_t> set_ids_;
};

}  // namespace streamcover

#endif  // STREAMCOVER_SETSYSTEM_SET_SYSTEM_H_
