// Generator-to-sink workload streaming.
//
// The in-memory generators (setsystem/generators.h) stage every set
// before building the CSR, so a paper-scale instance (m ≈ 10^7–10^8,
// multi-GB nnz) would have to fit in RAM just to be written out. The
// streaming variants here emit each set to a caller-provided sink the
// moment it is generated and keep only O(n + m) state (the universe
// permutation and the stream-order permutation) — piping one into
// BinarySetWriter produces an out-of-core instance file without ever
// materializing the instance.
//
// Determinism: each family is a pure function of its parameters and
// seed. Every set's content is drawn from a sub-generator keyed by
// (seed, staged id), so the content of set i does not depend on the
// emission order or on how many sets preceded it. The draw sequences
// deliberately differ from the in-memory generators' shared-stream
// draws — the two families produce different (equally distributed)
// instances for the same seed.

#ifndef STREAMCOVER_SETSYSTEM_STREAM_GENERATORS_H_
#define STREAMCOVER_SETSYSTEM_STREAM_GENERATORS_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "setsystem/generators.h"

namespace streamcover {

/// Receives one generated set per call, in stream order. Elements are
/// NOT necessarily sorted or unique (sinks normalize, exactly like
/// SetSystem::Builder::AddSet and BinarySetWriter::AddSet do). Return
/// false to abort generation — e.g. on a disk write failure.
using SetSink = std::function<bool(std::span<const uint32_t>)>;

/// What the generator knows after streaming all sets.
struct StreamGenResult {
  uint64_t num_sets = 0;
  /// Elements emitted (pre-normalization — an upper bound on the
  /// written nnz; sinks that dedup report the exact count themselves).
  uint64_t nnz = 0;
  /// Stream positions of the planted cover, ascending.
  std::vector<uint32_t> planted_positions;
};

/// Streaming twin of GeneratePlanted: same block structure, overlap and
/// noise distribution, emitted set by set. Returns std::nullopt (and
/// *error from the caller's context) only if the sink returned false.
std::optional<StreamGenResult> StreamPlanted(const PlantedOptions& options,
                                             uint64_t seed,
                                             const SetSink& sink,
                                             std::string* error);

/// Streaming twin of GenerateSparse.
std::optional<StreamGenResult> StreamSparse(uint32_t num_elements,
                                            uint32_t num_sets,
                                            uint32_t max_set_size,
                                            uint64_t seed,
                                            const SetSink& sink,
                                            std::string* error);

/// Streaming twin of GenerateZipf.
std::optional<StreamGenResult> StreamZipf(uint32_t num_elements,
                                          uint32_t num_sets, double alpha,
                                          uint32_t max_set_size,
                                          uint64_t seed, const SetSink& sink,
                                          std::string* error);

}  // namespace streamcover

#endif  // STREAMCOVER_SETSYSTEM_STREAM_GENERATORS_H_
