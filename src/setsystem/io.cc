#include "setsystem/io.h"

#include <fstream>

namespace streamcover {

void WriteSetSystem(const SetSystem& system, std::ostream& os) {
  os << "setcover " << system.num_elements() << ' ' << system.num_sets()
     << '\n';
  for (uint32_t s = 0; s < system.num_sets(); ++s) {
    auto elems = system.GetSet(s);
    os << elems.size();
    for (uint32_t e : elems) os << ' ' << e;
    os << '\n';
  }
}

std::optional<SetSystem> ReadSetSystem(std::istream& is, std::string* error) {
  auto fail = [error](const std::string& msg) -> std::optional<SetSystem> {
    if (error != nullptr) *error = msg;
    return std::nullopt;
  };
  std::string magic;
  if (!(is >> magic)) return fail("empty input");
  if (magic != "setcover") return fail("bad magic: " + magic);
  uint64_t n = 0, m = 0;
  if (!(is >> n >> m)) return fail("missing n/m header");
  if (n > (1ULL << 31) || m > (1ULL << 31)) return fail("n/m out of range");
  SetSystem::Builder builder(static_cast<uint32_t>(n));
  std::vector<uint32_t> elems;  // reused across sets; CSR copies from it
  for (uint64_t s = 0; s < m; ++s) {
    uint64_t size = 0;
    if (!(is >> size)) return fail("truncated set header");
    if (size > n) return fail("set larger than universe");
    elems.clear();
    elems.reserve(size);
    for (uint64_t i = 0; i < size; ++i) {
      uint64_t e = 0;
      if (!(is >> e)) return fail("truncated set body");
      if (e >= n) return fail("element id out of range");
      elems.push_back(static_cast<uint32_t>(e));
    }
    builder.AddSet(std::span<const uint32_t>(elems));
  }
  return std::move(builder).Build();
}

bool SaveSetSystemToFile(const SetSystem& system, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  WriteSetSystem(system, out);
  return static_cast<bool>(out);
}

std::optional<SetSystem> LoadSetSystemFromFile(const std::string& path,
                                               std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  return ReadSetSystem(in, error);
}

}  // namespace streamcover
