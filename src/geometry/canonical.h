// Canonical representations of shallow geometric ranges
// (Definition 4.1, Lemmas 4.2-4.4; EHR12 / AES10).
//
// The streaming algorithm cannot afford to store one projection per
// distinct shallow range: Figure 1.2 exhibits point sets with Theta(n^2)
// distinct 2-point rectangles. The fix is canonicalization:
//
// * Rectangles (Lemma 4.2): a balanced hierarchy of vertical split
//   boundaries over the x-ranks of the point set. Any query rectangle's
//   rank interval is cut at its highest crossing boundary into two
//   *anchored* pieces; anchored pieces with <= w points, snapped to the
//   points they contain, form a family of size O(n w^2 log n). Our
//   `RectSplitter` performs the split; `TraceStore` deduplicates the
//   snapped pieces, realizing the bound constructively.
//
// * Disks (Lemma 4.4): keep a maximal family with pairwise-distinct
//   traces — the paper's own recipe; Clarkson–Shor bounds the number of
//   distinct <= w-point disk traces by O(n w^2).
//
// * Fat triangles: the paper invokes EHR12 Theorem 5.6 (nine canonical
//   pieces, O(n w^3 log^2 n)). We substitute distinct-trace dedup (the
//   disk recipe) and *measure* the realized family size in the bench
//   instead of assuming it; see DESIGN.md's substitution table.

#ifndef STREAMCOVER_GEOMETRY_CANONICAL_H_
#define STREAMCOVER_GEOMETRY_CANONICAL_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geometry/primitives.h"
#include "geometry/range_space.h"

namespace streamcover {

/// Deduplicating store of traces (sorted point-id vectors).
class TraceStore {
 public:
  /// Inserts `trace` (must be sorted ascending) if unseen.
  /// Returns {id, inserted}.
  std::pair<uint32_t, bool> Insert(const std::vector<uint32_t>& trace);

  const std::vector<uint32_t>& Get(uint32_t id) const;

  size_t size() const { return traces_.size(); }

  /// Total stored words (sum of trace lengths) for space accounting.
  uint64_t total_words() const { return total_words_; }

  const std::vector<std::vector<uint32_t>>& traces() const {
    return traces_;
  }

 private:
  std::vector<std::vector<uint32_t>> traces_;
  std::unordered_map<uint64_t, std::vector<uint32_t>> by_hash_;
  uint64_t total_words_ = 0;
};

/// Anchored-split decomposition for axis-parallel rectangles
/// (Lemma 4.2) over a fixed point set.
class RectSplitter {
 public:
  explicit RectSplitter(const std::vector<Point>& points);

  /// Splits the trace of `rect` at the highest canonical boundary
  /// crossing its x-rank interval. Returns 1 or 2 traces (point ids,
  /// ascending) whose disjoint union is exactly TraceOf(rect, points);
  /// empty result iff the rectangle contains no points.
  std::vector<std::vector<uint32_t>> Decompose(const Rect& rect) const;

 private:
  const std::vector<Point>* points_;
  std::vector<uint32_t> by_rank_;  // ids sorted by (x, y, id)
};

/// The canonical representation of the light ranges of a shape stream,
/// projected on a sample point set — compCanonicalRep in Figure 4.1.
struct CanonicalRep {
  /// Deduplicated canonical traces, as indices into the sample.
  std::vector<std::vector<uint32_t>> sets;
  /// Stored words (sum of trace sizes) — the space the algorithm pays.
  uint64_t stored_words = 0;
  /// Ranges whose trace exceeded the lightness threshold `w` and were
  /// stored wholesale (whp zero, see Lemma 4.5).
  uint64_t oversize_ranges = 0;
};

/// One pass over `stream`: for every shape, computes its trace on
/// `sample_points`; traces of size in [1, w] are canonicalized
/// (rect split pieces / distinct-trace dedup) and stored. Larger traces
/// are stored wholesale and counted in `oversize_ranges`.
CanonicalRep CompCanonicalRep(ShapeStream& stream,
                              const std::vector<Point>& sample_points,
                              double w);

}  // namespace streamcover

#endif  // STREAMCOVER_GEOMETRY_CANONICAL_H_
