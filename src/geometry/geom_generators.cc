#include "geometry/geom_generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace streamcover {
namespace {

constexpr double kPi = 3.14159265358979323846;

Shape MakeCoveringShape(ShapeClass cls, const Point& center, double radius) {
  switch (cls) {
    case ShapeClass::kDisk:
      return Disk{center, radius};
    case ShapeClass::kRect:
      return Rect{center.x - radius, center.y - radius, center.x + radius,
                  center.y + radius};
    case ShapeClass::kFatTriangle: {
      // Equilateral triangle whose inscribed circle has radius `radius`
      // (so it covers the disk of that radius): circumradius = 2*radius.
      const double circum = 2.0 * radius;
      FatTriangle t;
      t.a = {center.x + circum * std::cos(kPi / 2),
             center.y + circum * std::sin(kPi / 2)};
      t.b = {center.x + circum * std::cos(kPi / 2 + 2 * kPi / 3),
             center.y + circum * std::sin(kPi / 2 + 2 * kPi / 3)};
      t.c = {center.x + circum * std::cos(kPi / 2 + 4 * kPi / 3),
             center.y + circum * std::sin(kPi / 2 + 4 * kPi / 3)};
      return t;
    }
  }
  SC_CHECK(false);
  return Rect{};
}

}  // namespace

GeomInstance GeneratePlantedGeom(const GeomPlantedOptions& options,
                                 Rng& rng) {
  SC_CHECK_GE(options.cover_size, 1u);
  SC_CHECK_GE(options.num_shapes, options.cover_size);
  const double world = options.world_size;
  const uint32_t k = options.cover_size;

  GeomInstance instance;

  // Cluster centers and radii; clusters stay inside the world box.
  std::vector<Point> centers;
  std::vector<double> radii;
  for (uint32_t c = 0; c < k; ++c) {
    centers.push_back({world * (0.1 + 0.8 * rng.UniformDouble()),
                       world * (0.1 + 0.8 * rng.UniformDouble())});
    radii.push_back(world * (0.02 + 0.05 * rng.UniformDouble()));
  }

  // Points: uniformly inside a random cluster's inscribed disk.
  for (uint32_t i = 0; i < options.num_points; ++i) {
    uint32_t c = static_cast<uint32_t>(rng.Uniform(k));
    const double angle = 2.0 * kPi * rng.UniformDouble();
    const double r = radii[c] * std::sqrt(rng.UniformDouble());
    instance.points.push_back({centers[c].x + r * std::cos(angle),
                               centers[c].y + r * std::sin(angle)});
  }

  // Planted shapes (one per cluster) plus noise, shuffled.
  std::vector<Shape> shapes;
  for (uint32_t c = 0; c < k; ++c) {
    shapes.push_back(
        MakeCoveringShape(options.shape_class, centers[c], radii[c] * 1.01));
  }
  for (uint32_t s = k; s < options.num_shapes; ++s) {
    Point center{world * rng.UniformDouble(), world * rng.UniformDouble()};
    double extent =
        world * (options.noise_min_extent +
                 (options.noise_max_extent - options.noise_min_extent) *
                     rng.UniformDouble());
    shapes.push_back(MakeCoveringShape(options.shape_class, center, extent));
  }
  std::vector<uint32_t> order(shapes.size());
  std::iota(order.begin(), order.end(), 0u);
  rng.Shuffle(order);
  instance.shapes.resize(shapes.size());
  for (uint32_t pos = 0; pos < order.size(); ++pos) {
    instance.shapes[pos] = shapes[order[pos]];
    if (order[pos] < k) instance.planted_cover.push_back(pos);
  }
  std::sort(instance.planted_cover.begin(), instance.planted_cover.end());
  return instance;
}

GeomInstance GenerateFigure12(uint32_t n) {
  SC_CHECK_GE(n, 4u);
  SC_CHECK_EQ(n % 2, 0u);
  const uint32_t h = n / 2;
  const double offset = 2.0 * static_cast<double>(h);  // C > h

  GeomInstance instance;
  // Top line: (i, i + offset), i in [0, h). Bottom: (h + i, h + i - offset).
  for (uint32_t i = 0; i < h; ++i) {
    instance.points.push_back(
        {static_cast<double>(i), static_cast<double>(i) + offset});
  }
  for (uint32_t i = 0; i < h; ++i) {
    const double x = static_cast<double>(h + i);
    instance.points.push_back({x, x - offset});
  }

  // All h^2 two-point rectangles: upper-left = top point t, lower-right
  // = bottom point b.
  for (uint32_t t = 0; t < h; ++t) {
    const Point& top = instance.points[t];
    for (uint32_t b = 0; b < h; ++b) {
      const Point& bottom = instance.points[h + b];
      instance.shapes.push_back(Rect{top.x, bottom.y, bottom.x, top.y});
    }
  }

  // Two covering rectangles (one per line) keep the instance coverable.
  const double pad = 0.5;
  instance.shapes.push_back(Rect{-pad, offset - pad,
                                 static_cast<double>(h - 1) + pad,
                                 static_cast<double>(h - 1) + offset + pad});
  instance.shapes.push_back(Rect{static_cast<double>(h) - pad,
                                 static_cast<double>(h) - offset - pad,
                                 static_cast<double>(2 * h - 1) + pad,
                                 static_cast<double>(2 * h - 1) - offset +
                                     pad});
  instance.planted_cover = {
      static_cast<uint32_t>(instance.shapes.size()) - 2,
      static_cast<uint32_t>(instance.shapes.size()) - 1};
  return instance;
}

}  // namespace streamcover
