#include "geometry/range_space.h"

#include "util/check.h"

namespace streamcover {

SetSystem BuildRangeSpace(const std::vector<Point>& points,
                          const std::vector<Shape>& shapes) {
  SetSystem::Builder builder(static_cast<uint32_t>(points.size()));
  for (const Shape& shape : shapes) {
    builder.AddSet(TraceOf(shape, points));
  }
  return std::move(builder).Build();
}

ShapeStream::ShapeStream(const std::vector<Shape>* shapes)
    : shapes_(shapes) {
  SC_CHECK(shapes != nullptr);
}

}  // namespace streamcover
