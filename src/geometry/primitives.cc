#include "geometry/primitives.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace streamcover {

bool Disk::Contains(const Point& p) const {
  const double dx = p.x - center.x;
  const double dy = p.y - center.y;
  return dx * dx + dy * dy <= radius * radius * (1.0 + 1e-12);
}

bool Rect::Contains(const Point& p) const {
  return p.x >= x_min && p.x <= x_max && p.y >= y_min && p.y <= y_max;
}

double FatTriangle::SignedArea2() const {
  return (b.x - a.x) * (c.y - a.y) - (c.x - a.x) * (b.y - a.y);
}

namespace {

double Cross(const Point& o, const Point& p, const Point& q) {
  return (p.x - o.x) * (q.y - o.y) - (q.x - o.x) * (p.y - o.y);
}

}  // namespace

bool FatTriangle::Contains(const Point& p) const {
  const double d1 = Cross(a, b, p);
  const double d2 = Cross(b, c, p);
  const double d3 = Cross(c, a, p);
  const double eps = 1e-9 * (std::fabs(d1) + std::fabs(d2) + std::fabs(d3) +
                             1.0);
  const bool has_neg = d1 < -eps || d2 < -eps || d3 < -eps;
  const bool has_pos = d1 > eps || d2 > eps || d3 > eps;
  return !(has_neg && has_pos);
}

double FatTriangle::FatnessRatio() const {
  const double area2 = std::fabs(SignedArea2());
  if (area2 == 0.0) return std::numeric_limits<double>::infinity();
  auto edge = [](const Point& p, const Point& q) {
    return std::hypot(q.x - p.x, q.y - p.y);
  };
  const double longest =
      std::max({edge(a, b), edge(b, c), edge(c, a)});
  // Height on the longest edge: area2 / longest.
  return longest * longest / area2;
}

bool ShapeContains(const Shape& shape, const Point& p) {
  return std::visit([&p](const auto& s) { return s.Contains(p); }, shape);
}

const char* ShapeClassName(const Shape& shape) {
  struct Namer {
    const char* operator()(const Disk&) const { return "disk"; }
    const char* operator()(const Rect&) const { return "rect"; }
    const char* operator()(const FatTriangle&) const {
      return "fat-triangle";
    }
  };
  return std::visit(Namer{}, shape);
}

std::vector<uint32_t> TraceOf(const Shape& shape,
                              const std::vector<Point>& points) {
  std::vector<uint32_t> trace;
  for (uint32_t i = 0; i < points.size(); ++i) {
    if (ShapeContains(shape, points[i])) trace.push_back(i);
  }
  return trace;
}

}  // namespace streamcover
