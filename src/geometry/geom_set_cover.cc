#include "geometry/geom_set_cover.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "geometry/canonical.h"
#include "offline/greedy.h"
#include "stream/sampling.h"
#include "stream/space_tracker.h"
#include "util/bitset.h"
#include "util/check.h"
#include "util/mathutil.h"
#include "util/rng.h"

namespace streamcover {
namespace {

// Is `subset` (sorted) a subset of `superset` (sorted)?
bool IsSubsetSorted(const std::vector<uint32_t>& subset,
                    std::span<const uint32_t> superset) {
  size_t j = 0;
  for (uint32_t v : subset) {
    while (j < superset.size() && superset[j] < v) ++j;
    if (j == superset.size() || superset[j] != v) return false;
    ++j;
  }
  return true;
}

// `trace_cache` is a simulator-side cache of each shape's trace on the
// full point set, materialized during the first scan so later logical
// passes cost O(sum of trace sizes) instead of O(n*m) containment tests.
// It is NOT charged to the algorithm's space: the algorithm only reads
// it sequentially, exactly as it would re-test containment against the
// streamed shape.
GeomStreamingResult RunGuess(
    ShapeStream& stream, const std::vector<Point>& points, uint64_t k,
    const GeomSetCoverOptions& options, const OfflineSolver& offline,
    SpaceTracker& tracker, Rng& rng,
    std::vector<std::vector<uint32_t>>& trace_cache) {
  const uint32_t n = static_cast<uint32_t>(points.size());
  const uint32_t m = stream.num_shapes();
  const double rho = offline.Rho(n);
  const uint64_t iterations =
      static_cast<uint64_t>(std::ceil(1.0 / options.delta) + 1e-9);
  const uint64_t passes_before = stream.passes();

  GeomStreamingResult result;

  // The model stores the point set in memory: 2 words per point.
  tracker.Charge(2ULL * n);

  DynamicBitset uncovered(n, true);
  tracker.Charge(uncovered.WordCount());
  Cover sol;

  // One logical pass over the shapes. The first pass materializes the
  // simulator-side trace cache (see GuessState comment) in the same
  // single scan; later passes replay it. fn(id, shape, trace).
  auto pass_over_traces = [&](auto&& fn) {
    if (trace_cache.empty() && m > 0) {
      trace_cache.resize(m);
      stream.ForEachShape([&](uint32_t id, const Shape& shape) {
        trace_cache[id] = TraceOf(shape, points);
        fn(id, shape, trace_cache[id]);
      });
    } else {
      stream.ForEachShape([&](uint32_t id, const Shape& shape) {
        fn(id, shape, trace_cache[id]);
      });
    }
  };

  const double heavy_threshold =
      static_cast<double>(n) / static_cast<double>(k);

  for (uint64_t iter = 0; iter < iterations; ++iter) {
    GeomIterationDiag diag;
    diag.iteration = static_cast<uint32_t>(iter + 1);
    diag.uncovered_before = uncovered.Count();

    // --- Pass 1: take every heavy range (|r ∩ L| >= |U|/k). ---
    uint64_t heavy = 0;
    pass_over_traces([&](uint32_t id, const Shape& /*shape*/,
                         const std::vector<uint32_t>& trace) {
      size_t gain = 0;
      for (uint32_t e : trace) {
        if (uncovered.Test(e)) ++gain;
      }
      if (gain > 0 && static_cast<double>(gain) >= heavy_threshold) {
        sol.set_ids.push_back(id);
        tracker.Charge(1);
        for (uint32_t e : trace) uncovered.Reset(e);
        ++heavy;
      }
    });
    diag.heavy_picked = heavy;

    uint64_t uncovered_count = uncovered.Count();
    if (uncovered_count == 0) {
      diag.uncovered_after = 0;
      result.diagnostics.push_back(diag);
      break;
    }

    // --- Sample S ⊆ L of size c*rho*k*(n/k)^delta*log m*log n. ---
    const uint64_t sample_size =
        GeomSampleSize(options.sample_constant, rho, k, n, options.delta, m,
                       uncovered_count);
    std::vector<uint32_t> sample =
        SampleFromBitset(uncovered, sample_size, rng);
    diag.sample_size = sample.size();
    tracker.Charge(sample.size());

    // The sample as a point set (local index -> global id via `sample`).
    std::vector<Point> sample_points;
    sample_points.reserve(sample.size());
    for (uint32_t e : sample) sample_points.push_back(points[e]);
    std::unordered_map<uint32_t, uint32_t> global_to_local;
    global_to_local.reserve(sample.size() * 2);
    for (uint32_t i = 0; i < sample.size(); ++i) {
      global_to_local[sample[i]] = i;
    }

    // --- Pass 2: canonical representation of the light ranges on S. ---
    const double w = std::max(
        1.0, options.lightness_slack * static_cast<double>(sample.size()) /
                 static_cast<double>(k));
    // Reuse the trace cache: a shape's trace on S is its trace on U
    // filtered to sampled points (identical to what CompCanonicalRep
    // computes geometrically).
    RectSplitter splitter(sample_points);
    TraceStore store;
    uint64_t oversize = 0;
    pass_over_traces([&](uint32_t /*id*/, const Shape& shape,
                         const std::vector<uint32_t>& trace) {
      std::vector<uint32_t> local;
      for (uint32_t e : trace) {
        auto it = global_to_local.find(e);
        if (it != global_to_local.end()) local.push_back(it->second);
      }
      if (local.empty()) return;
      std::sort(local.begin(), local.end());
      if (static_cast<double>(local.size()) > w) {
        ++oversize;
        store.Insert(local);
        return;
      }
      // Rect ranges are split into anchored canonical pieces
      // (Lemma 4.2); disks and fat triangles are deduplicated wholesale
      // (Lemma 4.4 recipe; see canonical.h).
      if (const Rect* rect = std::get_if<Rect>(&shape)) {
        for (const auto& piece : splitter.Decompose(*rect)) {
          store.Insert(piece);
        }
      } else {
        store.Insert(local);
      }
    });
    diag.canonical_sets = store.size();
    diag.canonical_words = store.total_words();
    diag.oversize_ranges = oversize;
    // Definition 4.1: every canonical set has O(1) description (a disk,
    // an anchored rectangle piece, a triangle) — 4 words here. Its trace
    // is recomputable on demand from the description plus the sample
    // points already in memory, so the model charges descriptions, not
    // trace lists (the trace lists above are transient solve scratch).
    const uint64_t kDescriptionWords = 4;
    tracker.Charge(kDescriptionWords * store.size());

    // --- Offline solve over (S, canonical sets). ---
    SetSystem::Builder sub_builder(static_cast<uint32_t>(sample.size()));
    for (const auto& trace : store.traces()) {
      sub_builder.AddSet(trace);
    }
    SetSystem sub = std::move(sub_builder).Build();
    OfflineResult offline_result = offline.Solve(sub);

    // Chosen canonical sets, as global point-id vectors.
    std::vector<std::vector<uint32_t>> chosen;
    for (uint32_t cid : offline_result.cover.set_ids) {
      std::vector<uint32_t> global;
      for (uint32_t local : store.Get(cid)) global.push_back(sample[local]);
      std::sort(global.begin(), global.end());
      chosen.push_back(std::move(global));
    }
    tracker.Release(kDescriptionWords * store.size());

    // --- Pass 3: replace each chosen canonical set by a superset range.
    std::vector<bool> matched(chosen.size(), false);
    size_t unmatched = chosen.size();
    pass_over_traces([&](uint32_t id, const Shape& /*shape*/,
                         const std::vector<uint32_t>& trace) {
      if (unmatched == 0) return;
      for (size_t i = 0; i < chosen.size(); ++i) {
        if (matched[i]) continue;
        if (IsSubsetSorted(chosen[i],
                           std::span<const uint32_t>(trace))) {
          matched[i] = true;
          --unmatched;
          sol.set_ids.push_back(id);
          tracker.Charge(1);
          for (uint32_t e : trace) uncovered.Reset(e);
        }
      }
    });
    // Every canonical set is a sub-trace of some streamed range, so all
    // must match; CHECK defends the invariant.
    SC_CHECK_EQ(unmatched, 0u);

    tracker.Release(sample.size());

    diag.uncovered_after = uncovered.Count();
    result.diagnostics.push_back(diag);
    if (diag.uncovered_after == 0) break;
  }

  // --- Final pass: cover the <= k stragglers with one range each. ---
  if (uncovered.Any()) {
    pass_over_traces([&](uint32_t id, const Shape& /*shape*/,
                         const std::vector<uint32_t>& trace) {
      bool hits = false;
      for (uint32_t e : trace) {
        if (uncovered.Test(e)) {
          hits = true;
          break;
        }
      }
      if (hits) {
        sol.set_ids.push_back(id);
        tracker.Charge(1);
        for (uint32_t e : trace) uncovered.Reset(e);
      }
    });
  }

  result.success = uncovered.None();
  tracker.Release(uncovered.WordCount());
  tracker.Release(2ULL * n);

  sol.Deduplicate();
  result.cover = std::move(sol);
  result.winning_k = k;
  result.passes = stream.passes() - passes_before;
  result.sequential_scans = result.passes;
  result.space_words_parallel = tracker.peak_words();
  result.space_words_max_guess = tracker.peak_words();
  return result;
}

}  // namespace

GeomStreamingResult AlgGeomSCSingleGuess(ShapeStream& stream,
                                         const std::vector<Point>& points,
                                         uint64_t k,
                                         const GeomSetCoverOptions& options) {
  SC_CHECK(options.delta > 0.0 && options.delta <= 1.0);
  GreedySolver default_solver;
  const OfflineSolver& offline =
      options.offline != nullptr ? *options.offline : default_solver;
  SpaceTracker tracker;
  Rng rng(options.seed ^ (k * 0x9e3779b97f4a7c15ULL));
  std::vector<std::vector<uint32_t>> cache;
  return RunGuess(stream, points, k, options, offline, tracker, rng, cache);
}

GeomStreamingResult AlgGeomSC(ShapeStream& stream,
                              const std::vector<Point>& points,
                              const GeomSetCoverOptions& options) {
  SC_CHECK(options.delta > 0.0 && options.delta <= 1.0);
  GreedySolver default_solver;
  const OfflineSolver& offline =
      options.offline != nullptr ? *options.offline : default_solver;

  const uint32_t n = static_cast<uint32_t>(points.size());
  GeomStreamingResult best;
  uint64_t passes_max = 0;
  uint64_t scans_total = 0;
  uint64_t space_sum = 0;
  uint64_t space_max = 0;

  std::vector<std::vector<uint32_t>> cache;  // shared across guesses
  for (uint64_t k = 1;; k *= 2) {
    SpaceTracker tracker;
    Rng rng(options.seed ^ (k * 0x9e3779b97f4a7c15ULL));
    GeomStreamingResult guess =
        RunGuess(stream, points, k, options, offline, tracker, rng, cache);

    passes_max = std::max(passes_max, guess.passes);
    scans_total += guess.sequential_scans;
    space_sum += tracker.peak_words();
    space_max = std::max(space_max, tracker.peak_words());

    if (guess.success &&
        (!best.success || guess.cover.size() < best.cover.size())) {
      best = std::move(guess);
    }
    if (k >= n) break;
  }

  best.passes = passes_max;
  best.sequential_scans = scans_total;
  best.space_words_parallel = space_sum;
  best.space_words_max_guess = space_max;
  return best;
}

}  // namespace streamcover
