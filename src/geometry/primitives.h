// Geometric primitives for the Points-Shapes Set Cover problem (§4):
// points in R^2 and ranges that are disks, axis-parallel rectangles, or
// alpha-fat triangles. Every shape has O(1) description and a
// point-containment predicate; closed boundaries throughout.

#ifndef STREAMCOVER_GEOMETRY_PRIMITIVES_H_
#define STREAMCOVER_GEOMETRY_PRIMITIVES_H_

#include <cstdint>
#include <variant>
#include <vector>

namespace streamcover {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

/// Closed disk.
struct Disk {
  Point center;
  double radius = 0.0;

  bool Contains(const Point& p) const;
};

/// Closed axis-parallel rectangle [x_min,x_max] x [y_min,y_max].
struct Rect {
  double x_min = 0.0, y_min = 0.0, x_max = 0.0, y_max = 0.0;

  bool Contains(const Point& p) const;
  bool IsValid() const { return x_min <= x_max && y_min <= y_max; }
};

/// Closed triangle; "alpha-fat" iff longest-edge / height-on-it <= alpha.
struct FatTriangle {
  Point a, b, c;

  bool Contains(const Point& p) const;

  /// Twice the signed area.
  double SignedArea2() const;

  /// The fatness ratio: longest edge over the height on that edge.
  /// Degenerate triangles return +infinity.
  double FatnessRatio() const;
};

/// A streamed range: one of the three shape classes.
using Shape = std::variant<Disk, Rect, FatTriangle>;

/// Point-in-shape for the variant.
bool ShapeContains(const Shape& shape, const Point& p);

/// Human-readable class name ("disk" / "rect" / "fat-triangle").
const char* ShapeClassName(const Shape& shape);

/// Indices of the points of `points` inside `shape` (ascending). This is
/// the "trace" (projection) of a range on a point set.
std::vector<uint32_t> TraceOf(const Shape& shape,
                              const std::vector<Point>& points);

}  // namespace streamcover

#endif  // STREAMCOVER_GEOMETRY_PRIMITIVES_H_
