// Plain-text serialization of geometric instances (§4 workloads).
//
// Format (whitespace separated):
//   geomcover <num_points> <num_shapes>
//   p <x> <y>                  (num_points lines)
//   disk <cx> <cy> <r>
//   rect <x_min> <y_min> <x_max> <y_max>
//   tri <ax> <ay> <bx> <by> <cx> <cy>

#ifndef STREAMCOVER_GEOMETRY_GEOM_IO_H_
#define STREAMCOVER_GEOMETRY_GEOM_IO_H_

#include <istream>
#include <optional>
#include <ostream>
#include <string>

#include "geometry/geom_generators.h"
#include "geometry/primitives.h"

namespace streamcover {

/// A geometric instance without planted-cover metadata (what the file
/// format stores).
struct GeomDataset {
  std::vector<Point> points;
  std::vector<Shape> shapes;
};

/// Writes points and shapes in the text format above.
void WriteGeomDataset(const GeomDataset& dataset, std::ostream& os);

/// Parses a dataset; std::nullopt + *error on malformed input.
std::optional<GeomDataset> ReadGeomDataset(std::istream& is,
                                           std::string* error);

/// Convenience file wrappers.
bool SaveGeomDatasetToFile(const GeomDataset& dataset,
                           const std::string& path);
std::optional<GeomDataset> LoadGeomDatasetFromFile(const std::string& path,
                                                   std::string* error);

}  // namespace streamcover

#endif  // STREAMCOVER_GEOMETRY_GEOM_IO_H_
