// algGeomSC — the geometric streaming set cover algorithm
// (Figure 4.1, Theorem 4.6): O(1) passes (3/delta + 1), O~(n) space,
// O(rho)-approximation for points vs disks / axis-parallel rectangles /
// fat triangles.
//
// Differences from iterSetCover that buy the O~(n) space:
//  * the per-iteration sample has size c*rho*k*(n/k)^delta*log m*log n
//    (note (n/k)^delta, enabled by the final sweep that finishes off the
//    last <= k stragglers with one set each);
//  * light ranges are stored through their canonical representation
//    (CompCanonicalRep), never as raw projections — the number of
//    distinct canonical sets is near-linear in |S| even when the stream
//    carries quadratically many distinct shallow ranges (Figure 1.2);
//  * a third pass maps each chosen canonical set back to a concrete
//    superset range from the stream.

#ifndef STREAMCOVER_GEOMETRY_GEOM_SET_COVER_H_
#define STREAMCOVER_GEOMETRY_GEOM_SET_COVER_H_

#include <cstdint>
#include <vector>

#include "geometry/range_space.h"
#include "offline/solver.h"
#include "setsystem/cover.h"

namespace streamcover {

/// Tuning knobs for AlgGeomSC; defaults follow Figure 4.1 / Theorem 4.6
/// (delta = 1/4 gives constant passes).
struct GeomSetCoverOptions {
  double delta = 0.25;
  double sample_constant = 0.5;
  /// Offline solver for the sampled canonical sub-instance; null =>
  /// greedy.
  const OfflineSolver* offline = nullptr;
  uint64_t seed = 1;
  /// Lightness slack: traces larger than slack * |S| / k are treated as
  /// oversize in CompCanonicalRep (Lemma 4.5 uses 3).
  double lightness_slack = 3.0;
};

/// Per-iteration trace for benches/tests.
struct GeomIterationDiag {
  uint32_t iteration = 0;
  uint64_t uncovered_before = 0;
  uint64_t uncovered_after = 0;
  uint64_t sample_size = 0;
  uint64_t heavy_picked = 0;
  uint64_t canonical_sets = 0;
  uint64_t canonical_words = 0;
  uint64_t oversize_ranges = 0;
};

/// Result of a geometric streaming solve.
struct GeomStreamingResult {
  Cover cover;  ///< ids into the shape stream
  bool success = false;
  uint64_t passes = 0;                ///< per-guess max (parallel guesses)
  uint64_t sequential_scans = 0;      ///< total scans actually performed
  uint64_t space_words_parallel = 0;  ///< sum of per-guess peaks
  uint64_t space_words_max_guess = 0;
  uint64_t winning_k = 0;
  std::vector<GeomIterationDiag> diagnostics;
};

/// Runs algGeomSC on (points, shape stream). Points are memory-resident
/// (charged 2n words); shapes are visited only through passes.
GeomStreamingResult AlgGeomSC(ShapeStream& stream,
                              const std::vector<Point>& points,
                              const GeomSetCoverOptions& options);

/// Single guess k (tests / ablations).
GeomStreamingResult AlgGeomSCSingleGuess(ShapeStream& stream,
                                         const std::vector<Point>& points,
                                         uint64_t k,
                                         const GeomSetCoverOptions& options);

}  // namespace streamcover

#endif  // STREAMCOVER_GEOMETRY_GEOM_SET_COVER_H_
