#include "geometry/canonical.h"

#include <algorithm>

#include "util/check.h"

namespace streamcover {
namespace {

// FNV-1a over the id vector; collisions resolved by exact compare below.
uint64_t HashTrace(const std::vector<uint32_t>& trace) {
  uint64_t h = 1469598103934665603ULL;
  for (uint32_t v : trace) {
    h ^= v;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

std::pair<uint32_t, bool> TraceStore::Insert(
    const std::vector<uint32_t>& trace) {
  SC_DCHECK(std::is_sorted(trace.begin(), trace.end()));
  uint64_t h = HashTrace(trace);
  // Open chaining on the hash value: probe successive keys on collision.
  while (true) {
    auto it = by_hash_.find(h);
    if (it == by_hash_.end()) break;
    if (it->second == trace) {
      // Already stored; id recovery requires a second map in general,
      // but callers only need "was it new": return a sentinel id.
      return {UINT32_MAX, false};
    }
    ++h;  // collision: different trace, same key — probe next slot
  }
  by_hash_.emplace(h, trace);
  traces_.push_back(trace);
  total_words_ += trace.size();
  return {static_cast<uint32_t>(traces_.size()) - 1, true};
}

const std::vector<uint32_t>& TraceStore::Get(uint32_t id) const {
  SC_CHECK_LT(id, traces_.size());
  return traces_[id];
}

RectSplitter::RectSplitter(const std::vector<Point>& points)
    : points_(&points) {
  by_rank_.resize(points.size());
  for (uint32_t i = 0; i < points.size(); ++i) by_rank_[i] = i;
  std::sort(by_rank_.begin(), by_rank_.end(), [&](uint32_t a, uint32_t b) {
    const Point& pa = points[a];
    const Point& pb = points[b];
    if (pa.x != pb.x) return pa.x < pb.x;
    if (pa.y != pb.y) return pa.y < pb.y;
    return a < b;
  });
}

std::vector<std::vector<uint32_t>> RectSplitter::Decompose(
    const Rect& rect) const {
  const auto& pts = *points_;
  const uint32_t n = static_cast<uint32_t>(by_rank_.size());
  if (n == 0) return {};

  // Rank interval [lo, hi) of points with x in [x_min, x_max]. Points
  // with equal x are contiguous in rank order, so the interval captures
  // exactly the x-eligible points.
  auto x_of = [&](uint32_t rank) { return pts[by_rank_[rank]].x; };
  uint32_t lo = static_cast<uint32_t>(
      std::lower_bound(by_rank_.begin(), by_rank_.end(), rect.x_min,
                       [&](uint32_t id, double x) { return pts[id].x < x; }) -
      by_rank_.begin());
  uint32_t hi = static_cast<uint32_t>(
      std::upper_bound(by_rank_.begin(), by_rank_.end(), rect.x_max,
                       [&](double x, uint32_t id) { return x < pts[id].x; }) -
      by_rank_.begin());
  (void)x_of;
  if (lo >= hi) return {};

  auto collect = [&](uint32_t rank_lo, uint32_t rank_hi) {
    std::vector<uint32_t> trace;
    for (uint32_t r = rank_lo; r < rank_hi; ++r) {
      uint32_t id = by_rank_[r];
      const Point& p = pts[id];
      if (p.y >= rect.y_min && p.y <= rect.y_max) trace.push_back(id);
    }
    std::sort(trace.begin(), trace.end());
    return trace;
  };

  // Find the highest canonical boundary (implicit balanced binary
  // division of [0, n)) strictly inside [lo, hi).
  uint32_t s = 0, e = n;
  while (e - s > 1) {
    uint32_t mid = s + (e - s) / 2;
    if (hi <= mid) {
      e = mid;
    } else if (lo >= mid) {
      s = mid;
    } else {
      // Split: anchored pieces [lo, mid) and [mid, hi).
      std::vector<std::vector<uint32_t>> pieces;
      auto left = collect(lo, mid);
      auto right = collect(mid, hi);
      if (!left.empty()) pieces.push_back(std::move(left));
      if (!right.empty()) pieces.push_back(std::move(right));
      return pieces;
    }
  }
  // Interval of width 1: a single anchored piece.
  auto only = collect(lo, hi);
  if (only.empty()) return {};
  return {std::move(only)};
}

CanonicalRep CompCanonicalRep(ShapeStream& stream,
                              const std::vector<Point>& sample_points,
                              double w) {
  RectSplitter splitter(sample_points);
  TraceStore store;
  CanonicalRep rep;
  stream.ForEachShape([&](uint32_t /*id*/, const Shape& shape) {
    std::vector<uint32_t> trace = TraceOf(shape, sample_points);
    if (trace.empty()) return;
    if (static_cast<double>(trace.size()) > w) {
      // Lemma 4.5 says this happens with probability O(m^-c); store the
      // whole trace so coverage is never lost, and count the event.
      ++rep.oversize_ranges;
      store.Insert(trace);
      return;
    }
    if (const Rect* rect = std::get_if<Rect>(&shape)) {
      for (auto& piece : splitter.Decompose(*rect)) {
        store.Insert(piece);
      }
    } else {
      store.Insert(trace);
    }
  });
  rep.sets = store.traces();
  rep.stored_words = store.total_words();
  return rep;
}

}  // namespace streamcover
