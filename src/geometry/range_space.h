// Bridges between the geometric world and the abstract SetSystem world,
// plus the sequential shape stream (the geometric analogue of SetStream).

#ifndef STREAMCOVER_GEOMETRY_RANGE_SPACE_H_
#define STREAMCOVER_GEOMETRY_RANGE_SPACE_H_

#include <cstdint>
#include <vector>

#include "geometry/primitives.h"
#include "setsystem/set_system.h"

namespace streamcover {

/// Materializes the range space (points, shapes) as an abstract
/// SetSystem: set i = trace of shape i. O(n m) time/space — used by
/// offline comparators and tests, never by the streaming algorithm.
SetSystem BuildRangeSpace(const std::vector<Point>& points,
                          const std::vector<Shape>& shapes);

/// Sequential, pass-counted access to the shape family. The point set is
/// memory-resident (the model grants O~(n)); the shapes are stream-only.
class ShapeStream {
 public:
  /// Does not take ownership; `shapes` must outlive the stream.
  explicit ShapeStream(const std::vector<Shape>* shapes);

  uint32_t num_shapes() const {
    return static_cast<uint32_t>(shapes_->size());
  }

  /// One pass: fn(shape_id, shape) in stream order.
  template <typename Fn>
  void ForEachShape(Fn&& fn) {
    ++passes_;
    for (uint32_t i = 0; i < shapes_->size(); ++i) {
      fn(i, (*shapes_)[i]);
    }
  }

  uint64_t passes() const { return passes_; }

 private:
  const std::vector<Shape>* shapes_;
  uint64_t passes_ = 0;
};

}  // namespace streamcover

#endif  // STREAMCOVER_GEOMETRY_RANGE_SPACE_H_
