// Geometric instance generators: planted covers for disks / rectangles /
// fat triangles, plus the Figure 1.2 pathological family (Theta(n^2)
// distinct 2-point rectangles).

#ifndef STREAMCOVER_GEOMETRY_GEOM_GENERATORS_H_
#define STREAMCOVER_GEOMETRY_GEOM_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "geometry/primitives.h"
#include "util/rng.h"

namespace streamcover {

/// Which shape class a generator should emit.
enum class ShapeClass { kDisk, kRect, kFatTriangle };

/// A geometric instance: points, shape stream, and the ids of a planted
/// feasible cover (upper bound on OPT).
struct GeomInstance {
  std::vector<Point> points;
  std::vector<Shape> shapes;
  std::vector<uint32_t> planted_cover;
};

/// Options for the planted geometric generator.
struct GeomPlantedOptions {
  uint32_t num_points = 1000;
  uint32_t num_shapes = 4000;
  uint32_t cover_size = 20;     ///< planted clusters / covering shapes
  ShapeClass shape_class = ShapeClass::kDisk;
  double world_size = 1000.0;   ///< points live in [0, world]^2
  /// Noise shapes have extent uniform in
  /// [noise_min_extent, noise_max_extent] * world_size.
  double noise_min_extent = 0.01;
  double noise_max_extent = 0.1;
};

/// Points drawn around `cover_size` cluster centers; one planted shape
/// fully covering each cluster; the rest are random noise shapes of the
/// same class. Planted fat triangles have fatness ratio <= ~2.4
/// (near-equilateral).
GeomInstance GeneratePlantedGeom(const GeomPlantedOptions& options,
                                 Rng& rng);

/// The Figure 1.2 construction: `n` points on two parallel slope-1
/// lines (n/2 each; every top point above-left of every bottom point)
/// and all (n/2)^2 rectangles with a top point as upper-left corner and
/// a bottom point as lower-right corner — each containing exactly two
/// points, all with distinct traces. A planted cover of two rectangles
/// (one per line) is appended at the end of the stream so the instance
/// is coverable with OPT <= 2. Requires n even, n >= 4.
GeomInstance GenerateFigure12(uint32_t n);

}  // namespace streamcover

#endif  // STREAMCOVER_GEOMETRY_GEOM_GENERATORS_H_
