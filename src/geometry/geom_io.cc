#include "geometry/geom_io.h"

#include <fstream>
#include <iomanip>

namespace streamcover {

void WriteGeomDataset(const GeomDataset& dataset, std::ostream& os) {
  os << "geomcover " << dataset.points.size() << ' '
     << dataset.shapes.size() << '\n';
  os << std::setprecision(17);
  for (const Point& p : dataset.points) {
    os << "p " << p.x << ' ' << p.y << '\n';
  }
  struct Writer {
    std::ostream& os;
    void operator()(const Disk& d) const {
      os << "disk " << d.center.x << ' ' << d.center.y << ' ' << d.radius
         << '\n';
    }
    void operator()(const Rect& r) const {
      os << "rect " << r.x_min << ' ' << r.y_min << ' ' << r.x_max << ' '
         << r.y_max << '\n';
    }
    void operator()(const FatTriangle& t) const {
      os << "tri " << t.a.x << ' ' << t.a.y << ' ' << t.b.x << ' ' << t.b.y
         << ' ' << t.c.x << ' ' << t.c.y << '\n';
    }
  };
  for (const Shape& shape : dataset.shapes) {
    std::visit(Writer{os}, shape);
  }
}

std::optional<GeomDataset> ReadGeomDataset(std::istream& is,
                                           std::string* error) {
  auto fail = [error](const std::string& msg) -> std::optional<GeomDataset> {
    if (error != nullptr) *error = msg;
    return std::nullopt;
  };
  std::string magic;
  if (!(is >> magic)) return fail("empty input");
  if (magic != "geomcover") return fail("bad magic: " + magic);
  uint64_t n = 0, m = 0;
  if (!(is >> n >> m)) return fail("missing n/m header");
  if (n > (1ULL << 31) || m > (1ULL << 31)) return fail("n/m out of range");

  GeomDataset dataset;
  dataset.points.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    std::string tag;
    Point p;
    if (!(is >> tag >> p.x >> p.y) || tag != "p") {
      return fail("malformed point line");
    }
    dataset.points.push_back(p);
  }
  dataset.shapes.reserve(m);
  for (uint64_t i = 0; i < m; ++i) {
    std::string tag;
    if (!(is >> tag)) return fail("truncated shape list");
    if (tag == "disk") {
      Disk d;
      if (!(is >> d.center.x >> d.center.y >> d.radius)) {
        return fail("malformed disk");
      }
      if (d.radius < 0) return fail("negative disk radius");
      dataset.shapes.push_back(d);
    } else if (tag == "rect") {
      Rect r;
      if (!(is >> r.x_min >> r.y_min >> r.x_max >> r.y_max)) {
        return fail("malformed rect");
      }
      if (!r.IsValid()) return fail("inverted rect");
      dataset.shapes.push_back(r);
    } else if (tag == "tri") {
      FatTriangle t;
      if (!(is >> t.a.x >> t.a.y >> t.b.x >> t.b.y >> t.c.x >> t.c.y)) {
        return fail("malformed triangle");
      }
      dataset.shapes.push_back(t);
    } else {
      return fail("unknown shape tag: " + tag);
    }
  }
  return dataset;
}

bool SaveGeomDatasetToFile(const GeomDataset& dataset,
                           const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  WriteGeomDataset(dataset, out);
  return static_cast<bool>(out);
}

std::optional<GeomDataset> LoadGeomDatasetFromFile(const std::string& path,
                                                   std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  return ReadGeomDataset(in, error);
}

}  // namespace streamcover
