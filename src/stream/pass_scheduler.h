// Shared-scan pass execution.
//
// The paper's accounting (Lemma 2.1/2.2) composes the log n guesses of
// iterSetCover *in parallel*: one pass over F is ONE physical scan of
// the repository that feeds every guess at once. `PassScheduler` is that
// composition made executable. Streaming algorithms are expressed as
// `ScanConsumer` state machines (per-guess, per-threshold-level, or one
// per whole algorithm); the scheduler runs rounds, where each round is a
// single `SetStream::ForEachSet` scan whose sets are dispatched to every
// live consumer. A disk-backed `FileSetSource` is therefore parsed once
// per round, not once per guess per round.
//
// Accounting: the scheduler counts *physical scans* (rounds that touched
// the repository) and attributes one *logical pass* per round to each
// consumer it served — logical passes are what the paper's per-guess
// bounds (Lemma 2.1) are stated in; physical scans are what the disk
// pays. Space stays with the consumers: each owns its SpaceTracker, so
// the parallel-composition space sum (Lemma 2.2's log n factor) is the
// sum of consumer peaks.
//
// Threading: with `threads > 1` the scheduler buffers the scan into a
// columnar batch (one SetView array over one element arena) and fans
// consumers out across worker threads, handing each consumer the whole
// batch at once via OnBatch. Each consumer is owned by exactly one
// worker per batch and sees every set in stream order, so results are
// bit-identical to the serial dispatch; consumers never need locks as
// long as they touch only their own state in OnSet()/OnBatch().
// OnPassEnd() and all inter-round work run on the calling thread.

#ifndef STREAMCOVER_STREAM_PASS_SCHEDULER_H_
#define STREAMCOVER_STREAM_PASS_SCHEDULER_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "stream/set_stream.h"
#include "util/cover_kernels.h"
#include "util/coverage_delta.h"

namespace streamcover {

/// A streaming algorithm (or one parallel branch of one) expressed as a
/// per-set state machine, drivable by PassScheduler.
class ScanConsumer {
 public:
  virtual ~ScanConsumer() = default;

  /// One set of the current pass, in stream order. The view is valid
  /// only for the duration of the call (it may point into a transient
  /// scan batch). May run on a worker thread: implementations must touch
  /// only their own state.
  virtual void OnSet(const SetView& set) = 0;

  /// A contiguous run of sets of the current pass, in stream order.
  /// Batched dispatch entry used by the threaded scheduler: one virtual
  /// call amortizes over the whole batch. The default forwards to OnSet
  /// per view, so overriding it is an optimization, never a semantic
  /// change.
  virtual void OnBatch(std::span<const SetView> sets) {
    for (const SetView& set : sets) OnSet(set);
  }

  /// The current pass finished. Runs on the scheduling thread; this is
  /// where inter-pass work (offline solves, sampling, phase advance)
  /// belongs.
  virtual void OnPassEnd() = 0;

  /// Optional batch prefilter. When non-null, the threaded scheduler
  /// drops sets with no element in the mask before this consumer's
  /// OnBatch dispatch (word-parallel intersection test, one check per
  /// set). Returning a mask is a contract with two clauses:
  ///   * a set with zero mask intersection must be a semantic no-op for
  ///     the consumer in its current phase, and
  ///   * the mask may only lose bits during a pass, so a zero verdict
  ///     taken at batch-flush time can never become stale.
  /// Called (and the mask read) only by the worker that owns this
  /// consumer for the batch, between the consumer's own dispatches —
  /// the same no-shared-state rule as OnSet/OnBatch.
  virtual const LiveMask* batch_filter() const { return nullptr; }

  /// True once the consumer needs no further passes. A done consumer is
  /// never served again.
  virtual bool done() const = 0;
};

/// Executes rounds: one physical scan each, multiplexed over every live
/// registered consumer. Non-owning; consumers must outlive the
/// scheduler or at least its last RunRound.
class PassScheduler {
 public:
  /// `threads` <= 1 dispatches inline on the calling thread; larger
  /// values fan consumers out over that many workers per batch.
  /// `kernel` selects the coverage-kernel twin the batch prefilter
  /// (ScanConsumer::batch_filter) runs; results are identical either
  /// way.
  explicit PassScheduler(SetStream& stream, uint32_t threads = 1,
                         KernelPolicy kernel = KernelPolicy::kWord);

  /// Registers a consumer and returns its slot (index for passes()).
  size_t Register(ScanConsumer* consumer);

  /// Detaches the consumer in `slot` (its pass count stays readable).
  /// Drivers call this before their consumers go out of scope so a
  /// longer-lived scheduler never touches a dangling pointer.
  void Retire(size_t slot);

  /// True iff any registered consumer still wants passes.
  bool AnyLive() const;

  /// Runs one round: a single physical scan served to every live
  /// consumer, then OnPassEnd on each (in registration order). Returns
  /// the number of consumers served; 0 means either no live consumers
  /// (no scan performed) or a stream failure mid-scan — distinguish via
  /// stream_failed() / stream().error(). After a failure the scheduler
  /// is dead: the round's partial pass is not attributed, OnPassEnd is
  /// not called, and every later RunRound returns 0 immediately.
  size_t RunRound();

  /// True once a scan failed underneath a round (see SetSource::Scan).
  bool stream_failed() const { return stream_failed_; }

  /// Rounds until every consumer is done. Returns the number of physical
  /// scans this call performed.
  uint64_t RunToCompletion();

  /// Pass/scan attribution of one DriveToCompletion window.
  struct SoloRun {
    uint64_t logical_passes = 0;   ///< passes served to the consumer
    uint64_t physical_scans = 0;   ///< scans performed during the window
  };

  /// The solo-driver pattern shared by the single-consumer solver entry
  /// points: registers `consumer`, runs rounds until IT is done (other
  /// live consumers ride the same scans but never extend the window or
  /// the attribution), then retires its slot.
  SoloRun DriveToCompletion(ScanConsumer& consumer);

  /// Physical scans of the repository performed so far.
  uint64_t physical_scans() const { return physical_scans_; }

  /// Logical passes attributed to the consumer in `slot` — the count its
  /// per-guess bounds (Lemma 2.1) are measured in.
  uint64_t passes(size_t slot) const;

  /// Max / sum of logical passes over all consumers. The sum is what a
  /// sequential one-consumer-at-a-time implementation would have
  /// scanned ("sequential_scans"); the max equals physical_scans for
  /// consumers that start together and run until done.
  uint64_t max_passes() const;
  uint64_t total_passes() const;

  uint32_t threads() const { return threads_; }
  SetStream& stream() { return *stream_; }

  /// Registers a coverage-delta listener (setsystem/transposed_index.h's
  /// GainTracker, or any CoverageDeltaListener). Non-owning; the
  /// listener must outlive the scheduler's last publish.
  /// Register before the first RunRound: publishing consumers may read
  /// has_delta_listeners() from their worker-owned dispatches to skip
  /// delta buffering when nobody subscribed.
  void AddDeltaListener(CoverageDeltaListener* listener) {
    delta_listeners_.push_back(listener);
  }

  bool has_delta_listeners() const { return !delta_listeners_.empty(); }

  /// Hands a batch of newly covered elements to every registered
  /// listener. Publishing consumers call this from OnPassEnd (or any
  /// other scheduling-thread context) — never from OnSet/OnBatch, which
  /// may run on worker threads. Each element must be published at most
  /// once per publisher, matching the listener contract.
  void PublishCoverageDelta(std::span<const uint32_t> newly_covered) {
    for (CoverageDeltaListener* listener : delta_listeners_) {
      listener->OnCoverageDelta(newly_covered);
    }
  }

 private:
  struct Slot {
    ScanConsumer* consumer = nullptr;
    uint64_t passes = 0;
  };

  /// Dispatches the buffered batch to `live` across the worker pool,
  /// then clears the batch.
  void FlushBatch(const std::vector<ScanConsumer*>& live, uint32_t workers);

  /// Fans one materialized batch of views out to `live` across the
  /// worker pool (static partition + per-consumer batch prefilter).
  /// Views must stay valid for the whole call — true for the staged
  /// batch_views_ and for source-delivered pipelined chunks alike.
  void DispatchBatch(std::span<const SetView> views,
                     const std::vector<ScanConsumer*>& live,
                     uint32_t workers);

  SetStream* stream_;
  uint32_t threads_;
  KernelPolicy kernel_;
  std::vector<Slot> slots_;
  std::vector<CoverageDeltaListener*> delta_listeners_;
  uint64_t physical_scans_ = 0;
  bool stream_failed_ = false;

  // Threaded dispatch buffers one batch of sets in columnar form — ids
  // + CSR-style offsets over one element arena, materialized as a
  // SetView array at flush time. Transient scan scratch, not algorithm
  // space; capacity is retained across batches and rounds.
  std::vector<uint32_t> batch_ids_;
  std::vector<size_t> batch_offsets_{0};
  std::vector<uint32_t> batch_elems_;
  std::vector<SetView> batch_views_;
};

}  // namespace streamcover

#endif  // STREAMCOVER_STREAM_PASS_SCHEDULER_H_
