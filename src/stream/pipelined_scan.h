// Pipelined parallel decode over a mapped binary repository.
//
// The serial MmapSetSource::Scan leaves the disk path ~4.5x below
// in-memory throughput (BENCH_hotpath.json): one thread both decodes
// LEB128 varints and dispatches sets, so the consumer idles while bytes
// decode and the decoder idles while the consumer works. This engine
// closes that gap by splitting the set range into fixed-work chunks via
// the SCOVRB01 offsets footer (~256KB of encoded body each — fixed
// bytes, not fixed sets, so set-size skew cannot starve a worker),
// decoding chunks on a small worker pool into per-chunk SetView
// batches, and handing completed chunks to the single consumer thread
// strictly **in set-id order** through a bounded ring of in-flight
// chunks. Decode of chunks k+1..k+D overlaps dispatch of chunk k; an
// madvise(MADV_WILLNEED) readahead window walks ahead of the decode
// frontier so page faults are prefetched before a worker blocks on
// them.
//
// Contracts kept identical to the serial decode loop:
//   * sets reach the consumer in set-id order, with the same values —
//     a scan_threads=1 run is byte-identical to the pipelined one;
//   * a corrupt varint anywhere fails the scan gracefully with the
//     exact serial diagnostic ("path: corrupt set S: msg") for the
//     first corrupt set in stream order, and no partially decoded
//     chunk is ever delivered;
//   * the CancelToken is polled inside decode workers every
//     kCancelStride sets, so a deadline fires during decode stalls,
//     not just between dispatches.

#ifndef STREAMCOVER_STREAM_PIPELINED_SCAN_H_
#define STREAMCOVER_STREAM_PIPELINED_SCAN_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "setsystem/binary_io.h"
#include "setsystem/set_view.h"
#include "util/cancel_token.h"

namespace streamcover {

/// Target encoded body bytes per decode chunk. Small enough that a
/// handful of in-flight chunks fit in L2/L3 and the consumer never
/// waits long for chunk 0; large enough that per-chunk handoff costs
/// (one lock round-trip, one batch dispatch) vanish against the
/// ~100k+ varints decoded inside.
inline constexpr uint64_t kDefaultScanChunkBytes = 256 * 1024;

struct PipelinedScanOptions {
  /// Decode workers; must be >= 1 (callers route <= 1 to the serial
  /// loop before constructing a scanner).
  uint32_t decode_threads = 2;
  /// Encoded bytes per chunk (see kDefaultScanChunkBytes).
  uint64_t chunk_bytes = kDefaultScanChunkBytes;
  /// Bounded ring of in-flight chunks; 0 = auto (2 * decode_threads,
  /// min 2). Bounds decoded-but-undelivered memory to
  /// ring_depth * ~chunk_bytes of element storage.
  uint32_t ring_depth = 0;
  /// madvise(MADV_WILLNEED) window, in chunks ahead of the claim
  /// frontier; 0 disables readahead.
  uint32_t readahead_chunks = 8;
};

/// One scan = one PipelinedScanner::Run. The scanner borrows the
/// mapping and the chunk plan; per-run state (ring slots, workers) is
/// owned here and torn down before Run returns, so a source can run
/// scans back to back while reusing nothing but the plan.
class PipelinedScanner {
 public:
  /// Called once per completed chunk, in set-id order, from the Run
  /// calling thread. Views (and the spans inside them) are valid only
  /// for the duration of the call — they point into a ring slot that
  /// is recycled for a later chunk afterwards.
  using BatchVisitor =
      std::function<void(std::span<const SetView> sets)>;

  /// `data` is the full mapped file; `chunks` comes from
  /// binfmt::BuildChunkPlan over the same layout. Both must outlive
  /// the scanner.
  PipelinedScanner(const uint8_t* data, uint64_t num_elements,
                   const binfmt::BinaryLayout& layout,
                   std::span<const binfmt::ScanChunk> chunks,
                   const PipelinedScanOptions& options);

  /// Runs one full scan: decodes every chunk across the worker pool
  /// and delivers each to `visit` in order. Returns false — with the
  /// serial-format diagnostic in *error — on a corrupt body or a fired
  /// cancel token (*error == kDeadlineExceededError then, matching the
  /// serial poll). Workers are always joined before returning.
  bool Run(const std::string& path, const BatchVisitor& visit,
           const CancelToken* cancel, std::string* error);

 private:
  /// One ring slot: the decoded element pool + views for one chunk.
  /// Storage is per-slot (not shared) so decode of chunk k+1 never
  /// invalidates views the consumer is still dispatching for chunk k.
  struct Slot {
    enum class State { kEmpty, kDecoding, kReady, kFailed };
    State state = State::kEmpty;
    uint64_t chunk = 0;           // which chunk currently occupies it
    std::vector<uint32_t> elems;  // decoded ids, all sets of the chunk
    std::vector<size_t> offsets;  // CSR offsets into elems
    std::vector<SetView> views;   // materialized after decode completes
    std::string error;            // set iff kFailed
  };

  /// Decodes `chunk` into `slot` (everything but the final state
  /// transition — that happens under the lock in the worker loop).
  /// Returns false with *error set in serial format on corruption, a
  /// fired cancel, or an observed abort.
  bool DecodeChunk(const binfmt::ScanChunk& chunk, Slot& slot,
                   const std::string& path, const CancelToken* cancel,
                   std::string* error);

  /// Advises the kernel of upcoming chunk bytes up to
  /// `claimed + readahead_chunks`. Called by workers right after
  /// claiming; frontier bookkeeping is internal.
  void Readahead(uint64_t claimed);

  const uint8_t* data_;
  uint64_t num_elements_;
  const binfmt::BinaryLayout* layout_;
  std::span<const binfmt::ScanChunk> chunks_;
  PipelinedScanOptions options_;
  uint32_t depth_;

  // Per-run pipeline state, guarded by mu_ except where noted.
  std::mutex mu_;
  std::condition_variable claim_cv_;    // workers wait for ring space
  std::condition_variable consume_cv_;  // consumer waits for its chunk
  std::vector<Slot> slots_;
  uint64_t next_claim_ = 0;    // next chunk index a worker takes
  uint64_t next_consume_ = 0;  // next chunk index the consumer needs
  uint64_t advise_frontier_ = 0;  // chunks already madvise'd
  /// Consumer saw a failure; workers bail out. Atomic because decode
  /// loops poll it lock-free at kCancelStride granularity.
  std::atomic<bool> abort_{false};
};

}  // namespace streamcover

#endif  // STREAMCOVER_STREAM_PIPELINED_SCAN_H_
