#include "stream/set_source.h"

#include <algorithm>
#include <fstream>

#include "util/check.h"

namespace streamcover {

InMemorySetSource::InMemorySetSource(const SetSystem* system)
    : system_(system) {
  SC_CHECK(system != nullptr);
}

uint32_t InMemorySetSource::num_elements() const {
  return system_->num_elements();
}

uint32_t InMemorySetSource::num_sets() const { return system_->num_sets(); }

void InMemorySetSource::Scan(const SetVisitor& visit) {
  const uint32_t m = system_->num_sets();
  for (uint32_t s = 0; s < m; ++s) {
    visit(system_->GetView(s));
  }
}

FileSetSource::FileSetSource(std::string path, uint32_t n, uint32_t m)
    : path_(std::move(path)), num_elements_(n), num_sets_(m) {}

std::optional<FileSetSource> FileSetSource::Open(const std::string& path,
                                                 std::string* error) {
  auto fail = [error](const std::string& msg) -> std::optional<FileSetSource> {
    if (error != nullptr) *error = msg;
    return std::nullopt;
  };
  std::ifstream in(path);
  if (!in) return fail("cannot open " + path);
  std::string magic;
  uint64_t n = 0, m = 0;
  if (!(in >> magic) || magic != "setcover") {
    return fail("bad magic in " + path);
  }
  if (!(in >> n >> m)) return fail("missing n/m header in " + path);
  if (n > (1ULL << 31) || m > (1ULL << 31)) return fail("n/m out of range");
  return FileSetSource(path, static_cast<uint32_t>(n),
                       static_cast<uint32_t>(m));
}

void FileSetSource::Scan(const SetVisitor& visit) {
  std::ifstream in(path_);
  SC_CHECK(static_cast<bool>(in));  // validated by Open; must still exist
  ++parses_;
  std::string magic;
  uint64_t n = 0, m = 0;
  in >> magic >> n >> m;
  SC_CHECK_EQ(magic, std::string("setcover"));
  for (uint32_t s = 0; s < num_sets_; ++s) {
    uint64_t size = 0;
    SC_CHECK(static_cast<bool>(in >> size));
    SC_CHECK_LE(size, num_elements_);
    scan_buffer_.clear();
    scan_buffer_.reserve(size);
    bool sorted_unique = true;
    for (uint64_t i = 0; i < size; ++i) {
      uint64_t e = 0;
      SC_CHECK(static_cast<bool>(in >> e));
      SC_CHECK_LT(e, num_elements_);
      if (!scan_buffer_.empty() && e <= scan_buffer_.back()) {
        sorted_unique = false;
      }
      scan_buffer_.push_back(static_cast<uint32_t>(e));
    }
    // Dispatched element spans are sorted and duplicate-free everywhere
    // in the library: the CSR builder enforces it in memory
    // (SetSystem::Builder::AddSet), and the word-parallel coverage
    // kernels (util/cover_kernels.h) rely on it. Normalize a malformed
    // file line here so streaming from disk sees exactly what loading
    // the same file into memory would; well-formed files pay only the
    // monotonicity check above.
    if (!sorted_unique) {
      std::sort(scan_buffer_.begin(), scan_buffer_.end());
      scan_buffer_.erase(
          std::unique(scan_buffer_.begin(), scan_buffer_.end()),
          scan_buffer_.end());
    }
    visit(SetView{s, std::span<const uint32_t>(scan_buffer_)});
  }
}

}  // namespace streamcover
