#include "stream/set_source.h"

#include <algorithm>
#include <fstream>

#include "util/check.h"

namespace streamcover {

InMemorySetSource::InMemorySetSource(const SetSystem* system)
    : system_(system) {
  SC_CHECK(system != nullptr);
}

uint32_t InMemorySetSource::num_elements() const {
  return system_->num_elements();
}

uint32_t InMemorySetSource::num_sets() const { return system_->num_sets(); }

bool InMemorySetSource::Scan(const SetVisitor& visit) {
  const uint32_t m = system_->num_sets();
  for (uint32_t s = 0; s < m; ++s) {
    visit(system_->GetView(s));
  }
  return true;
}

FileSetSource::FileSetSource(std::string path, uint32_t n, uint32_t m)
    : path_(std::move(path)), num_elements_(n), num_sets_(m) {}

std::optional<FileSetSource> FileSetSource::Open(const std::string& path,
                                                 std::string* error) {
  auto fail = [error](const std::string& msg) -> std::optional<FileSetSource> {
    if (error != nullptr) *error = msg;
    return std::nullopt;
  };
  std::ifstream in(path);
  if (!in) return fail("cannot open " + path);
  std::string magic;
  uint64_t n = 0, m = 0;
  if (!(in >> magic) || magic != "setcover") {
    return fail("bad magic in " + path);
  }
  if (!(in >> n >> m)) return fail("missing n/m header in " + path);
  if (n > (1ULL << 31) || m > (1ULL << 31)) return fail("n/m out of range");
  return FileSetSource(path, static_cast<uint32_t>(n),
                       static_cast<uint32_t>(m));
}

bool FileSetSource::Scan(const SetVisitor& visit) {
  if (!error_.empty()) return false;  // sticky: the file is already bad
  auto fail = [this](const std::string& msg) {
    error_ = path_ + ": " + msg;
    return false;
  };
  std::ifstream in(path_);
  // Open validated the header, but the file can vanish or be truncated
  // between passes — report that, don't abort.
  if (!in) return fail("cannot reopen");
  ++parses_;
  std::string magic;
  uint64_t n = 0, m = 0;
  if (!(in >> magic >> n >> m) || magic != "setcover") {
    return fail("header changed since Open");
  }
  for (uint32_t s = 0; s < num_sets_; ++s) {
    uint64_t size = 0;
    if (!(in >> size)) {
      return fail("truncated set header at set " + std::to_string(s));
    }
    if (size > num_elements_) {
      return fail("set " + std::to_string(s) + " larger than universe");
    }
    scan_buffer_.clear();
    scan_buffer_.reserve(size);
    bool sorted_unique = true;
    for (uint64_t i = 0; i < size; ++i) {
      uint64_t e = 0;
      if (!(in >> e)) {
        return fail("truncated set body at set " + std::to_string(s));
      }
      if (e >= num_elements_) {
        return fail("element id " + std::to_string(e) +
                    " out of range in set " + std::to_string(s));
      }
      if (!scan_buffer_.empty() && e <= scan_buffer_.back()) {
        sorted_unique = false;
      }
      scan_buffer_.push_back(static_cast<uint32_t>(e));
    }
    // Dispatched element spans are sorted and duplicate-free everywhere
    // in the library: the CSR builder enforces it in memory
    // (SetSystem::Builder::AddSet), and the word-parallel coverage
    // kernels (util/cover_kernels.h) rely on it. Normalize a malformed
    // file line here so streaming from disk sees exactly what loading
    // the same file into memory would; well-formed files pay only the
    // monotonicity check above.
    if (!sorted_unique) {
      std::sort(scan_buffer_.begin(), scan_buffer_.end());
      scan_buffer_.erase(
          std::unique(scan_buffer_.begin(), scan_buffer_.end()),
          scan_buffer_.end());
    }
    visit(SetView{s, std::span<const uint32_t>(scan_buffer_)});
  }
  return true;
}

}  // namespace streamcover
