#include "stream/set_source.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <fstream>

#include "util/check.h"

namespace streamcover {

std::unique_ptr<SetSource> SetSource::Fork(std::string* error) const {
  if (error != nullptr) *error = "source does not support forking";
  return nullptr;
}

bool SetSource::ScanBatches(const SetBatchVisitor& visit) {
  // Degenerate batching over the per-set scan: one view per batch.
  // Correctness-equivalent to Scan by construction; sources answering
  // true from SupportsBatchScan() override this with a real batch path.
  return Scan([&visit](const SetView& set) {
    visit(std::span<const SetView>(&set, 1));
  });
}

InMemorySetSource::InMemorySetSource(const SetSystem* system)
    : system_(system) {
  SC_CHECK(system != nullptr);
}

uint32_t InMemorySetSource::num_elements() const {
  return system_->num_elements();
}

uint32_t InMemorySetSource::num_sets() const { return system_->num_sets(); }

bool InMemorySetSource::Scan(const SetVisitor& visit) {
  if (!error_.empty()) return false;  // sticky (a fired deadline stays fired)
  const uint32_t m = system_->num_sets();
  for (uint32_t s = 0; s < m; ++s) {
    if (s % kCancelStride == 0 && CancelFired()) return false;
    visit(system_->GetView(s));
  }
  return true;
}

std::unique_ptr<SetSource> InMemorySetSource::Fork(
    std::string* error) const {
  (void)error;
  return std::make_unique<InMemorySetSource>(system_);
}

FileSetSource::FileSetSource(std::string path, uint32_t n, uint32_t m)
    : path_(std::move(path)), num_elements_(n), num_sets_(m) {}

std::optional<FileSetSource> FileSetSource::Open(const std::string& path,
                                                 std::string* error) {
  auto fail = [error](const std::string& msg) -> std::optional<FileSetSource> {
    if (error != nullptr) *error = msg;
    return std::nullopt;
  };
  std::ifstream in(path);
  if (!in) return fail("cannot open " + path);
  std::string magic;
  uint64_t n = 0, m = 0;
  if (!(in >> magic) || magic != "setcover") {
    return fail("bad magic in " + path);
  }
  if (!(in >> n >> m)) return fail("missing n/m header in " + path);
  if (n > (1ULL << 31) || m > (1ULL << 31)) return fail("n/m out of range");
  FileSetSource source(path, static_cast<uint32_t>(n),
                       static_cast<uint32_t>(m));
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  if (end > 0) source.file_bytes_ = static_cast<uint64_t>(end);
  return source;
}

std::unique_ptr<SetSource> FileSetSource::Fork(std::string* error) const {
  std::optional<FileSetSource> fork = Open(path_, error);
  if (!fork.has_value()) return nullptr;
  if (fork->num_elements_ != num_elements_ || fork->num_sets_ != num_sets_) {
    if (error != nullptr) {
      *error = path_ + ": dimensions changed since Open";
    }
    return nullptr;
  }
  return std::make_unique<FileSetSource>(std::move(*fork));
}

bool FileSetSource::Scan(const SetVisitor& visit) {
  if (!error_.empty()) return false;  // sticky: the file is already bad
  auto fail = [this](const std::string& msg) {
    error_ = path_ + ": " + msg;
    return false;
  };
  std::ifstream in(path_);
  // Open validated the header, but the file can vanish or be truncated
  // between passes — report that, don't abort.
  if (!in) return fail("cannot reopen");
  ++parses_;
  // Advise sequential readahead on the file's page cache before the
  // front-to-back parse. fadvise keys on the inode's cache, not the
  // descriptor, so a transient fd covers the ifstream's reads too; a
  // failure (exotic filesystems) only loses the hint.
  if (const int fd = ::open(path_.c_str(), O_RDONLY); fd >= 0) {
    ::posix_fadvise(fd, 0, 0, POSIX_FADV_SEQUENTIAL);
    ::close(fd);
  }
  std::string magic;
  uint64_t n = 0, m = 0;
  if (!(in >> magic >> n >> m) || magic != "setcover") {
    return fail("header changed since Open");
  }
  for (uint32_t s = 0; s < num_sets_; ++s) {
    if (s % kCancelStride == 0 && CancelFired()) return false;
    uint64_t size = 0;
    if (!(in >> size)) {
      return fail("truncated set header at set " + std::to_string(s));
    }
    if (size > num_elements_) {
      return fail("set " + std::to_string(s) + " larger than universe");
    }
    scan_buffer_.clear();
    scan_buffer_.reserve(size);
    bool sorted_unique = true;
    for (uint64_t i = 0; i < size; ++i) {
      uint64_t e = 0;
      if (!(in >> e)) {
        return fail("truncated set body at set " + std::to_string(s));
      }
      if (e >= num_elements_) {
        return fail("element id " + std::to_string(e) +
                    " out of range in set " + std::to_string(s));
      }
      if (!scan_buffer_.empty() && e <= scan_buffer_.back()) {
        sorted_unique = false;
      }
      scan_buffer_.push_back(static_cast<uint32_t>(e));
    }
    // Dispatched element spans are sorted and duplicate-free everywhere
    // in the library: the CSR builder enforces it in memory
    // (SetSystem::Builder::AddSet), and the word-parallel coverage
    // kernels (util/cover_kernels.h) rely on it. Normalize a malformed
    // file line here so streaming from disk sees exactly what loading
    // the same file into memory would; well-formed files pay only the
    // monotonicity check above.
    if (!sorted_unique) {
      std::sort(scan_buffer_.begin(), scan_buffer_.end());
      scan_buffer_.erase(
          std::unique(scan_buffer_.begin(), scan_buffer_.end()),
          scan_buffer_.end());
    }
    visit(SetView{s, std::span<const uint32_t>(scan_buffer_)});
  }
  return true;
}

}  // namespace streamcover
