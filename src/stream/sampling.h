// Element sampling for the streaming algorithms.
//
// iterSetCover needs a uniform sample (without replacement) of the
// current residual ground set; Lemma 2.5 (Har-Peled & Sharir) dictates
// its size so that it forms a relative (p,eps)-approximation
// (Definition 2.4) of the family of possible residual sets. This header
// provides the sampler, a streaming reservoir sampler, and a direct
// checker for Definition 2.4 used by property tests.

#ifndef STREAMCOVER_STREAM_SAMPLING_H_
#define STREAMCOVER_STREAM_SAMPLING_H_

#include <cstdint>
#include <vector>

#include "util/bitset.h"
#include "util/rng.h"

namespace streamcover {

/// Uniformly samples `k` distinct elements from the set bits of
/// `universe`. If k >= |universe| the whole universe is returned.
/// Output is sorted ascending.
std::vector<uint32_t> SampleFromBitset(const DynamicBitset& universe,
                                       uint64_t k, Rng& rng);

/// Classic reservoir sampler (Algorithm R with Vitter's interface):
/// maintains a uniform sample of size <= capacity over an unbounded
/// stream of items pushed one at a time.
class ReservoirSampler {
 public:
  ReservoirSampler(uint64_t capacity, Rng* rng);

  /// Offers one stream item.
  void Push(uint32_t item);

  /// Items currently held (uniform over everything pushed so far).
  const std::vector<uint32_t>& sample() const { return sample_; }

  uint64_t items_seen() const { return seen_; }

 private:
  uint64_t capacity_;
  uint64_t seen_ = 0;
  Rng* rng_;
  std::vector<uint32_t> sample_;
};

/// Directly checks Definition 2.4: is `sample` (a subset of `universe`)
/// a relative (p, eps)-approximation for range `range`? Both sets are
/// given as bitsets over the same ground set.
bool IsRelativeApproxForRange(const DynamicBitset& universe,
                              const DynamicBitset& sample,
                              const DynamicBitset& range, double p,
                              double eps);

}  // namespace streamcover

#endif  // STREAMCOVER_STREAM_SAMPLING_H_
