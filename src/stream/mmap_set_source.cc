#include "stream/mmap_set_source.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <utility>

namespace streamcover {

MmapSetSource::Mapping::~Mapping() {
  if (data != nullptr) {
    ::munmap(const_cast<uint8_t*>(data), size);
  }
}

MmapSetSource::MmapSetSource(std::shared_ptr<const Mapping> map)
    : map_(std::move(map)),
      num_elements_(static_cast<uint32_t>(map_->layout.n)),
      num_sets_(static_cast<uint32_t>(map_->layout.m)) {}

std::optional<MmapSetSource> MmapSetSource::Open(const std::string& path,
                                                 std::string* error) {
  auto fail = [error](const std::string& msg) -> std::optional<MmapSetSource> {
    if (error != nullptr) *error = msg;
    return std::nullopt;
  };
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return fail("cannot open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return fail("cannot stat " + path);
  }
  const uint64_t size = static_cast<uint64_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return fail(path + ": empty file");
  }
  void* mapping = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping holds its own reference to the file; the descriptor is
  // no longer needed either way.
  ::close(fd);
  if (mapping == MAP_FAILED) return fail("mmap failed on " + path);
  // Physical scans walk the body front to back; tell the kernel so
  // readahead streams the file instead of demand-faulting page by page.
  ::madvise(mapping, size, MADV_SEQUENTIAL);

  auto map = std::make_shared<Mapping>();
  map->path = path;
  map->data = static_cast<const uint8_t*>(mapping);
  map->size = size;
  std::string layout_error;
  if (!binfmt::ValidateBinaryLayout(map->data, size, &map->layout,
                                    &layout_error)) {
    return fail(path + ": " + layout_error);  // ~Mapping unmaps
  }
  return MmapSetSource(std::move(map));
}

std::unique_ptr<SetSource> MmapSetSource::Fork(std::string* error) const {
  (void)error;
  // Shares map_; everything mutable (decode buffer, sticky error, scan
  // counter, cancel hook) starts fresh in the fork.
  return std::unique_ptr<SetSource>(new MmapSetSource(map_));
}

PipelinedScanner& MmapSetSource::EnsureScanner() {
  if (chunk_plan_.empty()) {
    chunk_plan_ =
        binfmt::BuildChunkPlan(map_->layout, kDefaultScanChunkBytes);
  }
  if (scanner_ == nullptr || scanner_threads_ != scan_threads()) {
    PipelinedScanOptions options;
    options.decode_threads = scan_threads();
    scanner_ = std::make_unique<PipelinedScanner>(
        map_->data, num_elements_, map_->layout,
        std::span<const binfmt::ScanChunk>(chunk_plan_), options);
    scanner_threads_ = scan_threads();
  }
  return *scanner_;
}

bool MmapSetSource::PipelinedPass(
    const PipelinedScanner::BatchVisitor& visit) {
  if (!error_.empty()) return false;  // sticky: the file is already bad
  ++scans_;
  std::string error;
  if (!EnsureScanner().Run(map_->path, visit, cancel_token(), &error)) {
    error_ = error;  // serial-format diagnostic (or the deadline code)
    return false;
  }
  return true;
}

bool MmapSetSource::ScanBatches(const SetBatchVisitor& visit) {
  if (scan_threads() <= 1) return SetSource::ScanBatches(visit);
  return PipelinedPass(visit);
}

bool MmapSetSource::Scan(const SetVisitor& visit) {
  if (scan_threads() > 1) {
    // Pipelined decode, serial dispatch: chunks arrive in set-id order
    // and are fanned back into per-set visits, so the visitor observes
    // exactly the serial sequence.
    return PipelinedPass([&visit](std::span<const SetView> sets) {
      for (const SetView& set : sets) visit(set);
    });
  }
  if (!error_.empty()) return false;  // sticky: the file is already bad
  auto fail = [this](uint32_t set_id, const std::string& msg) {
    error_ =
        map_->path + ": corrupt set " + std::to_string(set_id) + ": " + msg;
    return false;
  };
  ++scans_;
  // Offsets were validated monotone within the file at Open, so every
  // [cursor, end) below is a well-formed in-bounds window; only the
  // varint contents inside it still need checking.
  const uint8_t* data = map_->data;
  const binfmt::BinaryLayout& layout = map_->layout;
  const uint8_t* cursor = data + binfmt::kHeaderBytes;
  for (uint32_t s = 0; s < num_sets_; ++s) {
    if (s % kCancelStride == 0 && CancelFired()) return false;
    const uint8_t* end = data + layout.SetOffset(s + 1);
    auto size = binfmt::DecodeVarint(&cursor, end);
    if (!size.has_value() || *size > num_elements_) {
      return fail(s, "bad size varint");
    }
    scan_buffer_.clear();
    scan_buffer_.reserve(*size);
    uint64_t prev = 0;
    for (uint64_t i = 0; i < *size; ++i) {
      auto delta = binfmt::DecodeVarint(&cursor, end);
      if (!delta.has_value()) return fail(s, "truncated body");
      // Delta-1 coding off a strictly increasing sequence: decoding
      // reproduces the sorted-unique invariant by construction.
      const uint64_t e = (i == 0) ? *delta : prev + *delta + 1;
      if (e >= num_elements_) return fail(s, "element id out of range");
      scan_buffer_.push_back(static_cast<uint32_t>(e));
      prev = e;
    }
    if (cursor != end) return fail(s, "trailing bytes");
    visit(SetView{s, std::span<const uint32_t>(scan_buffer_)});
  }
  return true;
}

std::unique_ptr<SetSource> OpenDiskSetSource(const std::string& path,
                                             std::string* error) {
  // Magic sniffing is authoritative: a file announcing the binary magic
  // is opened as binary, full stop. When that Open fails, the binary
  // validator's diagnostic is surfaced verbatim — never replaced by a
  // text-parser fallback whose generic "bad magic" wording would point
  // away from the real corruption (a valid-magic / corrupt-footer file
  // pins this in mmap_source_test).
  if (IsBinarySetSystemFile(path)) {
    std::string open_error;
    std::optional<MmapSetSource> source =
        MmapSetSource::Open(path, &open_error);
    if (!source.has_value()) {
      if (error != nullptr) *error = open_error;
      return nullptr;
    }
    return std::make_unique<MmapSetSource>(std::move(*source));
  }
  std::optional<FileSetSource> source = FileSetSource::Open(path, error);
  if (!source.has_value()) return nullptr;
  return std::make_unique<FileSetSource>(std::move(*source));
}

}  // namespace streamcover
