#include "stream/sampling.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace streamcover {

std::vector<uint32_t> SampleFromBitset(const DynamicBitset& universe,
                                       uint64_t k, Rng& rng) {
  std::vector<uint32_t> population = universe.ToVector();
  if (k >= population.size()) return population;
  // Partial Fisher-Yates: first k slots become the sample.
  for (uint64_t i = 0; i < k; ++i) {
    uint64_t j = i + rng.Uniform(population.size() - i);
    std::swap(population[i], population[j]);
  }
  population.resize(k);
  std::sort(population.begin(), population.end());
  return population;
}

ReservoirSampler::ReservoirSampler(uint64_t capacity, Rng* rng)
    : capacity_(capacity), rng_(rng) {
  SC_CHECK(rng != nullptr);
  sample_.reserve(capacity);
}

void ReservoirSampler::Push(uint32_t item) {
  ++seen_;
  if (sample_.size() < capacity_) {
    sample_.push_back(item);
    return;
  }
  uint64_t j = rng_->Uniform(seen_);
  if (j < capacity_) sample_[j] = item;
}

bool IsRelativeApproxForRange(const DynamicBitset& universe,
                              const DynamicBitset& sample,
                              const DynamicBitset& range, double p,
                              double eps) {
  SC_CHECK_EQ(universe.size(), sample.size());
  SC_CHECK_EQ(universe.size(), range.size());
  const double universe_count = static_cast<double>(universe.Count());
  const double sample_count = static_cast<double>(sample.Count());
  SC_CHECK_GT(universe_count, 0.0);
  SC_CHECK_GT(sample_count, 0.0);

  DynamicBitset r = range;
  r &= universe;
  const double range_frac = static_cast<double>(r.Count()) / universe_count;

  DynamicBitset rs = range;
  rs &= sample;
  const double sample_frac = static_cast<double>(rs.Count()) / sample_count;

  // Small slack guards against floating-point edge equality.
  constexpr double kTie = 1e-12;
  if (range_frac >= p) {
    return sample_frac >= (1.0 - eps) * range_frac - kTie &&
           sample_frac <= (1.0 + eps) * range_frac + kTie;
  }
  return sample_frac >= range_frac - eps * p - kTie &&
         sample_frac <= range_frac + eps * p + kTie;
}

}  // namespace streamcover
