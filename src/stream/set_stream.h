// Streaming access protocol for the set family F.
//
// The paper's model (Section 1): U is known up-front and fits in memory;
// F lives in a read-only repository that can only be scanned
// sequentially, and every full scan is a pass. `SetStream` is the sole
// gateway algorithms get to F — it exposes no random access, and it
// counts passes. Benches read the counter to fill the "passes" column of
// Figure 1.1. The repository itself is pluggable (stream/set_source.h):
// in-memory CSR or an on-disk file re-parsed per pass.

#ifndef STREAMCOVER_STREAM_SET_STREAM_H_
#define STREAMCOVER_STREAM_SET_STREAM_H_

#include <cstdint>
#include <memory>
#include <span>

#include "setsystem/set_system.h"
#include "stream/set_source.h"
#include "util/check.h"

namespace streamcover {

/// One sequential scan per ForEachSet call; no other access to F.
class SetStream {
 public:
  /// Streams an in-memory system. Does not take ownership; `system`
  /// must outlive the stream.
  explicit SetStream(const SetSystem* system);

  /// Streams an arbitrary source. Does not take ownership; `source`
  /// must outlive the stream.
  explicit SetStream(SetSource* source);

  /// Streams a source the stream owns — the shape every per-request
  /// fork takes (Instance::NewConcurrentStream): the fork has no other
  /// owner, so the stream carries it.
  explicit SetStream(std::unique_ptr<SetSource> source);

  /// Metadata the streaming model grants for free.
  uint32_t num_elements() const { return source_->num_elements(); }
  uint32_t num_sets() const { return source_->num_sets(); }

  /// Performs one pass: invokes fn(const SetView&) for every set in
  /// stream order. Counts as one pass even if the caller stops consuming
  /// early (the scan cursor cannot be rewound mid-pass). Returns false
  /// if the underlying repository failed mid-scan (see SetSource::Scan);
  /// error() carries the diagnostic and further passes keep failing.
  template <typename Fn>
  bool ForEachSet(Fn&& fn) {
    ++passes_;
    return source_->Scan(SetVisitor(std::forward<Fn>(fn)));
  }

  /// Performs one pass delivered as contiguous batches in stream order
  /// (fn(std::span<const SetView>)) — same pass accounting and failure
  /// contract as ForEachSet, coarser dispatch grain. Worth calling only
  /// when supports_batch_scan(); otherwise batches degenerate to one
  /// set each.
  template <typename Fn>
  bool ForEachBatch(Fn&& fn) {
    ++passes_;
    return source_->ScanBatches(SetBatchVisitor(std::forward<Fn>(fn)));
  }

  /// True when the source pre-decodes genuine multi-set batches
  /// (pipelined mmap scan) — the scheduler's cue to skip its own
  /// copy-and-batch staging.
  bool supports_batch_scan() const { return source_->SupportsBatchScan(); }

  /// Sets the decode-worker count for sources with a parallel scan
  /// path; see SetSource::set_scan_threads.
  void set_scan_threads(uint32_t threads) {
    source_->set_scan_threads(threads);
  }

  /// The source's sticky scan error; empty while the stream is healthy.
  const std::string& error() const { return source_->error(); }

  /// Arms (or disarms, with nullptr) cooperative cancellation on the
  /// underlying source; see SetSource::set_cancel.
  void set_cancel(const CancelToken* cancel) { source_->set_cancel(cancel); }

  /// Number of passes performed so far. There is deliberately no reset:
  /// multi-trial drivers draw a fresh stream per trial from
  /// Instance::NewStream() (core/instance.h) — RunPlan does this
  /// automatically — so pass counts can never be silently
  /// misattributed by hand-reset shared streams.
  uint64_t passes() const { return passes_; }

 private:
  std::unique_ptr<SetSource> owned_;  // set for the owning ctors
  SetSource* source_;
  uint64_t passes_ = 0;
};

}  // namespace streamcover

#endif  // STREAMCOVER_STREAM_SET_STREAM_H_
