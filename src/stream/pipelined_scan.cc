#include "stream/pipelined_scan.h"

#include <sys/mman.h>

#include <algorithm>
#include <thread>

#include "util/check.h"

namespace streamcover {
namespace {

/// Scan-loop poll stride inside decode workers — the same granularity
/// as SetSource::kCancelStride so a pipelined deadline lands exactly as
/// promptly as a serial one.
constexpr uint32_t kCancelStride = 256;

}  // namespace

PipelinedScanner::PipelinedScanner(const uint8_t* data,
                                   uint64_t num_elements,
                                   const binfmt::BinaryLayout& layout,
                                   std::span<const binfmt::ScanChunk> chunks,
                                   const PipelinedScanOptions& options)
    : data_(data),
      num_elements_(num_elements),
      layout_(&layout),
      chunks_(chunks),
      options_(options) {
  SC_CHECK(options_.decode_threads >= 1);
  depth_ = options_.ring_depth != 0
               ? options_.ring_depth
               : std::max(2u, 2 * options_.decode_threads);
}

void PipelinedScanner::Readahead(uint64_t claimed) {
  if (options_.readahead_chunks == 0) return;
  const uint64_t want =
      std::min<uint64_t>(chunks_.size(), claimed + 1 + options_.readahead_chunks);
  uint64_t from = 0;
  {
    // advise_frontier_ rides the claim lock's cadence: the caller just
    // claimed under mu_, so re-taking it here is one uncontended
    // round-trip per chunk, not per page.
    std::lock_guard<std::mutex> lock(mu_);
    if (advise_frontier_ >= want) return;
    from = advise_frontier_;
    advise_frontier_ = want;
  }
  // The syscall runs outside the lock; the window [from, want) is
  // exclusively ours by the frontier exchange above.
  constexpr uint64_t kPage = 4096;
  const uint64_t begin = chunks_[from].byte_begin & ~(kPage - 1);
  const uint64_t end = chunks_[want - 1].byte_end;
  ::madvise(const_cast<uint8_t*>(data_ + begin), end - begin,
            MADV_WILLNEED);
}

bool PipelinedScanner::DecodeChunk(const binfmt::ScanChunk& chunk,
                                   Slot& slot, const std::string& path,
                                   const CancelToken* cancel,
                                   std::string* error) {
  auto fail = [&](uint32_t set_id, const std::string& msg) {
    // Byte-for-byte the serial MmapSetSource::Scan diagnostic, so the
    // error contract is invariant under scan_threads.
    *error =
        path + ": corrupt set " + std::to_string(set_id) + ": " + msg;
    return false;
  };
  slot.elems.clear();
  slot.offsets.clear();
  slot.offsets.reserve(chunk.set_count + 1);
  slot.offsets.push_back(0);
  const uint8_t* cursor = data_ + chunk.byte_begin;
  for (uint32_t i = 0; i < chunk.set_count; ++i) {
    const uint32_t s = chunk.first_set + i;
    if (i % kCancelStride == 0) {
      if (cancel != nullptr && cancel->cancelled()) {
        *error = kDeadlineExceededError;
        return false;
      }
      if (abort_) {  // racy read is fine: abort only accelerates exit
        *error = kDeadlineExceededError;
        return false;
      }
    }
    // Offsets were validated monotone at Open, so every
    // [cursor, set_end) is an in-bounds window; only varint contents
    // still need checking.
    const uint8_t* set_end = data_ + layout_->SetOffset(s + 1);
    auto size = binfmt::DecodeVarint(&cursor, set_end);
    if (!size.has_value() || *size > num_elements_) {
      return fail(s, "bad size varint");
    }
    uint64_t prev = 0;
    for (uint64_t j = 0; j < *size; ++j) {
      auto delta = binfmt::DecodeVarint(&cursor, set_end);
      if (!delta.has_value()) return fail(s, "truncated body");
      const uint64_t e = (j == 0) ? *delta : prev + *delta + 1;
      if (e >= num_elements_) return fail(s, "element id out of range");
      slot.elems.push_back(static_cast<uint32_t>(e));
      prev = e;
    }
    if (cursor != set_end) return fail(s, "trailing bytes");
    slot.offsets.push_back(slot.elems.size());
  }
  // Views are materialized only now, after elems stops growing, so the
  // spans can never dangle across a reallocation.
  slot.views.clear();
  slot.views.reserve(chunk.set_count);
  for (uint32_t i = 0; i < chunk.set_count; ++i) {
    slot.views.push_back(SetView{
        chunk.first_set + i,
        std::span<const uint32_t>(slot.elems.data() + slot.offsets[i],
                                  slot.offsets[i + 1] - slot.offsets[i])});
  }
  return true;
}

bool PipelinedScanner::Run(const std::string& path,
                           const BatchVisitor& visit,
                           const CancelToken* cancel, std::string* error) {
  const uint64_t num_chunks = chunks_.size();
  if (num_chunks == 0) return true;

  // Fresh per-run pipeline state (Run may be called repeatedly); slot
  // element pools keep their capacity across runs, so steady-state
  // multi-pass solvers decode allocation-free.
  slots_.resize(depth_);
  for (Slot& slot : slots_) {
    slot.state = Slot::State::kEmpty;
    slot.chunk = 0;
    slot.error.clear();
  }
  next_claim_ = 0;
  next_consume_ = 0;
  advise_frontier_ = 0;
  abort_ = false;

  auto worker = [&] {
    for (;;) {
      uint64_t c = 0;
      {
        std::unique_lock<std::mutex> lock(mu_);
        claim_cv_.wait(lock, [&] {
          return abort_ || next_claim_ >= num_chunks ||
                 next_claim_ < next_consume_ + depth_;
        });
        if (abort_ || next_claim_ >= num_chunks) return;
        c = next_claim_++;
        Slot& slot = slots_[c % depth_];
        // Modular slot assignment + in-order consumption guarantee the
        // slot is free: chunk c is claimable only once chunk c - depth
        // was consumed.
        SC_CHECK(slot.state == Slot::State::kEmpty);
        slot.state = Slot::State::kDecoding;
        slot.chunk = c;
      }
      Readahead(c);
      Slot& slot = slots_[c % depth_];
      std::string decode_error;
      const bool ok =
          DecodeChunk(chunks_[c], slot, path, cancel, &decode_error);
      {
        std::lock_guard<std::mutex> lock(mu_);
        slot.state = ok ? Slot::State::kReady : Slot::State::kFailed;
        slot.error = ok ? std::string() : decode_error;
      }
      consume_cv_.notify_all();
    }
  };

  const uint32_t pool_size = static_cast<uint32_t>(std::min<uint64_t>(
      options_.decode_threads, num_chunks));
  std::vector<std::thread> pool;
  pool.reserve(pool_size);
  for (uint32_t w = 0; w < pool_size; ++w) pool.emplace_back(worker);

  bool ok = true;
  for (uint64_t c = 0; c < num_chunks; ++c) {
    Slot& slot = slots_[c % depth_];
    {
      std::unique_lock<std::mutex> lock(mu_);
      consume_cv_.wait(lock, [&] {
        return slot.chunk == c && (slot.state == Slot::State::kReady ||
                                   slot.state == Slot::State::kFailed);
      });
      if (slot.state == Slot::State::kFailed) {
        // First failed chunk in set-id order — its recorded error names
        // the first corrupt set in stream order, exactly like serial.
        *error = slot.error;
        ok = false;
        abort_ = true;
      }
    }
    if (!ok) break;
    // Dispatch outside the lock: decode of later chunks proceeds while
    // the consumer works through this one. The slot stays kReady (so no
    // worker reuses it) until we mark it consumed below.
    visit(std::span<const SetView>(slot.views));
    {
      std::lock_guard<std::mutex> lock(mu_);
      slot.state = Slot::State::kEmpty;
      ++next_consume_;
    }
    claim_cv_.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    abort_ = abort_ || !ok;
    // Completed runs also pass here with next_claim_ == num_chunks, so
    // waiting workers fall through and exit either way.
  }
  claim_cv_.notify_all();
  for (std::thread& t : pool) t.join();
  return ok;
}

}  // namespace streamcover
