#include "stream/pass_scheduler.h"

#include <algorithm>
#include <thread>

#include "util/check.h"

namespace streamcover {
namespace {

// Batch bounds for threaded dispatch: flush when either fills. Workers
// are (re)spawned per flush, so batches are sized to make that roughly
// once per scan on laptop-scale instances (a few MB of transient
// scratch) — the spawn cost amortizes over the whole round.
constexpr size_t kBatchMaxSets = size_t{1} << 16;
constexpr size_t kBatchMaxWords = size_t{1} << 20;

}  // namespace

PassScheduler::PassScheduler(SetStream& stream, uint32_t threads,
                             KernelPolicy kernel)
    : stream_(&stream), threads_(std::max(threads, 1u)), kernel_(kernel) {}

size_t PassScheduler::Register(ScanConsumer* consumer) {
  SC_CHECK(consumer != nullptr);
  slots_.push_back(Slot{consumer, 0});
  return slots_.size() - 1;
}

void PassScheduler::Retire(size_t slot) {
  SC_CHECK_LT(slot, slots_.size());
  slots_[slot].consumer = nullptr;
}

bool PassScheduler::AnyLive() const {
  for (const Slot& slot : slots_) {
    if (slot.consumer != nullptr && !slot.consumer->done()) return true;
  }
  return false;
}

uint64_t PassScheduler::passes(size_t slot) const {
  SC_CHECK_LT(slot, slots_.size());
  return slots_[slot].passes;
}

uint64_t PassScheduler::max_passes() const {
  uint64_t max = 0;
  for (const Slot& slot : slots_) max = std::max(max, slot.passes);
  return max;
}

uint64_t PassScheduler::total_passes() const {
  uint64_t total = 0;
  for (const Slot& slot : slots_) total += slot.passes;
  return total;
}

void PassScheduler::FlushBatch(const std::vector<ScanConsumer*>& live,
                               uint32_t workers) {
  if (batch_ids_.empty()) return;
  // Materialize the columnar batch as one SetView array before any
  // worker starts: the element arena is stable for the whole flush, so
  // the views can be shared read-only across workers.
  batch_views_.clear();
  batch_views_.reserve(batch_ids_.size());
  for (size_t i = 0; i < batch_ids_.size(); ++i) {
    batch_views_.push_back(SetView{
        batch_ids_[i],
        std::span<const uint32_t>(batch_elems_.data() + batch_offsets_[i],
                                  batch_offsets_[i + 1] - batch_offsets_[i])});
  }
  DispatchBatch(std::span<const SetView>(batch_views_), live, workers);
  batch_ids_.clear();
  batch_offsets_.assign(1, 0);
  batch_elems_.clear();
}

void PassScheduler::DispatchBatch(std::span<const SetView> views,
                                  const std::vector<ScanConsumer*>& live,
                                  uint32_t workers) {
  if (views.empty()) return;
  // Static partition: worker w serves consumers w, w+workers, ... Each
  // consumer is touched by exactly one worker and receives the whole
  // batch in stream order, so no locks and no dispatch-order
  // nondeterminism. A consumer that publishes a live mask
  // (batch_filter) gets the batch prefiltered: one word-parallel
  // intersection test per set drops the no-op sets before they pay the
  // consumer's per-set machinery. The filtered list is per-worker
  // scratch; masks shrink monotonically within a pass, so a drop
  // verdict never invalidates.
  auto serve = [&](uint32_t worker) {
    std::vector<SetView> filtered;
    for (size_t c = worker; c < live.size(); c += workers) {
      const LiveMask* mask = live[c]->batch_filter();
      if (mask == nullptr) {
        live[c]->OnBatch(views);
        continue;
      }
      filtered.clear();
      filtered.reserve(views.size());
      for (const SetView& view : views) {
        if (Intersects(view, *mask, kernel_)) filtered.push_back(view);
      }
      live[c]->OnBatch(std::span<const SetView>(filtered));
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (uint32_t w = 1; w < workers; ++w) pool.emplace_back(serve, w);
  serve(0);
  for (std::thread& t : pool) t.join();
}

size_t PassScheduler::RunRound() {
  std::vector<ScanConsumer*> live;
  std::vector<Slot*> live_slots;
  live.reserve(slots_.size());
  for (Slot& slot : slots_) {
    if (slot.consumer != nullptr && !slot.consumer->done()) {
      live.push_back(slot.consumer);
      live_slots.push_back(&slot);
    }
  }
  if (live.empty()) return 0;
  if (stream_failed_) return 0;  // sticky: the repository is gone

  ++physical_scans_;
  const uint32_t workers = static_cast<uint32_t>(
      std::min<size_t>(threads_, live.size()));
  bool scan_ok = true;
  if (workers <= 1) {
    scan_ok = stream_->ForEachSet([&](const SetView& set) {
      for (ScanConsumer* consumer : live) consumer->OnSet(set);
    });
  } else if (stream_->supports_batch_scan()) {
    // The source pre-decodes whole batches (pipelined mmap scan) whose
    // views are stable for the callback — dispatch them to the worker
    // pool directly, no copy-and-batch staging. A failed scan needs no
    // tail cleanup: the source only ever delivers complete batches.
    scan_ok = stream_->ForEachBatch([&](std::span<const SetView> views) {
      DispatchBatch(views, live, workers);
    });
  } else {
    scan_ok = stream_->ForEachSet([&](const SetView& set) {
      batch_ids_.push_back(set.id);
      batch_elems_.insert(batch_elems_.end(), set.begin(), set.end());
      batch_offsets_.push_back(batch_elems_.size());
      if (batch_ids_.size() >= kBatchMaxSets ||
          batch_elems_.size() >= kBatchMaxWords) {
        FlushBatch(live, workers);
      }
    });
    // Drop (don't dispatch) a partial tail batch from a failed scan:
    // consumers must never act on a pass that didn't complete.
    if (scan_ok) {
      FlushBatch(live, workers);
    } else {
      batch_ids_.clear();
      batch_offsets_.assign(1, 0);
      batch_elems_.clear();
    }
  }
  if (!scan_ok) {
    // The round died mid-scan: no pass attribution, no OnPassEnd — the
    // consumers saw a prefix, not a pass. Drivers observe the 0 return
    // (and stream().error()) and unwind.
    stream_failed_ = true;
    return 0;
  }
  for (Slot* slot : live_slots) {
    ++slot->passes;
    slot->consumer->OnPassEnd();
  }
  return live.size();
}

uint64_t PassScheduler::RunToCompletion() {
  const uint64_t before = physical_scans_;
  while (RunRound() > 0) {
  }
  return physical_scans_ - before;
}

PassScheduler::SoloRun PassScheduler::DriveToCompletion(
    ScanConsumer& consumer) {
  const uint64_t physical_before = physical_scans_;
  const size_t slot = Register(&consumer);
  // RunRound() == 0 with the consumer not done means the stream failed;
  // looping further would spin forever on a dead repository.
  while (!consumer.done() && RunRound() > 0) {
  }
  SoloRun run;
  run.logical_passes = passes(slot);
  run.physical_scans = physical_scans_ - physical_before;
  Retire(slot);
  return run;
}

}  // namespace streamcover
