#include "stream/space_tracker.h"

// Header-only; this TU anchors the library target.
