#include "stream/set_stream.h"

namespace streamcover {

SetStream::SetStream(const SetSystem* system)
    : owned_(std::make_unique<InMemorySetSource>(system)),
      source_(owned_.get()) {}

SetStream::SetStream(SetSource* source) : source_(source) {
  SC_CHECK(source != nullptr);
}

SetStream::SetStream(std::unique_ptr<SetSource> source)
    : owned_(std::move(source)), source_(owned_.get()) {
  SC_CHECK(source_ != nullptr);
}

}  // namespace streamcover
