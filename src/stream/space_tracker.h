// Working-memory accounting for streaming algorithms.
//
// Space is measured in 64-bit words retained by the algorithm *between*
// stream items: solution ids, samples, stored projections, residual
// bitsets, per-element pointers. Transient scratch proportional to the
// current stream item is free, per the usual streaming convention.
// Algorithms charge and release explicitly; the peak is what benches
// report against the paper's space bounds.

#ifndef STREAMCOVER_STREAM_SPACE_TRACKER_H_
#define STREAMCOVER_STREAM_SPACE_TRACKER_H_

#include <cstdint>

#include "util/check.h"

namespace streamcover {

/// Word-granular memory meter with peak tracking.
class SpaceTracker {
 public:
  /// Adds `words` to the current footprint.
  void Charge(uint64_t words) {
    current_ += words;
    if (current_ > peak_) peak_ = current_;
  }

  /// Removes `words`; must not exceed the current footprint.
  void Release(uint64_t words) {
    SC_CHECK_LE(words, current_);
    current_ -= words;
  }

  /// Sets the current footprint to `words` (convenience for
  /// recomputed-from-scratch structures like a shrinking sample).
  void SetCurrent(uint64_t words) {
    current_ = words;
    if (current_ > peak_) peak_ = current_;
  }

  uint64_t current_words() const { return current_; }
  uint64_t peak_words() const { return peak_; }

  void Reset() {
    current_ = 0;
    peak_ = 0;
  }

  /// Folds another tracker's peak in as if it ran in parallel with this
  /// one (space adds up; used for the "guess k in parallel" composition).
  void AddParallelPeak(uint64_t peak_words) {
    peak_ += peak_words;
    // Parallel composition: the combined footprint peaks at the sum.
  }

 private:
  uint64_t current_ = 0;
  uint64_t peak_ = 0;
};

/// RAII charge: charges at construction, releases at destruction.
class ScopedCharge {
 public:
  ScopedCharge(SpaceTracker* tracker, uint64_t words)
      : tracker_(tracker), words_(words) {
    tracker_->Charge(words_);
  }
  ~ScopedCharge() { tracker_->Release(words_); }
  ScopedCharge(const ScopedCharge&) = delete;
  ScopedCharge& operator=(const ScopedCharge&) = delete;

 private:
  SpaceTracker* tracker_;
  uint64_t words_;
};

}  // namespace streamcover

#endif  // STREAMCOVER_STREAM_SPACE_TRACKER_H_
