// Pluggable stream backends.
//
// The paper's model keeps F in a read-only repository that is scanned
// sequentially. `SetSource` abstracts where that repository lives:
// in-memory CSR (the default, fastest for experiments) or an actual
// on-disk file that is re-parsed on every pass (FileSetSource) — the
// closest laptop analogue of "the data does not fit in memory".
//
// Scans dispatch `SetView`s: borrowed (id, element-span) pairs over the
// source's columnar storage. No element is copied between the
// repository and the visitor.

#ifndef STREAMCOVER_STREAM_SET_SOURCE_H_
#define STREAMCOVER_STREAM_SET_SOURCE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "setsystem/set_system.h"
#include "setsystem/set_view.h"

namespace streamcover {

/// Callback invoked once per set during a scan. The view borrows the
/// source's storage and is valid only for the duration of the call.
using SetVisitor = std::function<void(const SetView&)>;

/// A sequentially scannable repository of sets.
class SetSource {
 public:
  virtual ~SetSource() = default;

  virtual uint32_t num_elements() const = 0;
  virtual uint32_t num_sets() const = 0;

  /// One full sequential scan; calls `visit` for every set in order.
  /// Returns false if the repository failed mid-scan (file truncated or
  /// corrupted underneath us) — the scan stops, error() describes why,
  /// and every later Scan fails immediately with the same error. A
  /// failed scan is an environment fault, not a programming error, so it
  /// surfaces as a value instead of an SC_CHECK abort.
  virtual bool Scan(const SetVisitor& visit) = 0;

  /// Empty until a Scan fails; sticky afterwards.
  const std::string& error() const { return error_; }

 protected:
  std::string error_;
};

/// Scans an in-memory SetSystem (does not take ownership).
class InMemorySetSource : public SetSource {
 public:
  explicit InMemorySetSource(const SetSystem* system);

  uint32_t num_elements() const override;
  uint32_t num_sets() const override;
  bool Scan(const SetVisitor& visit) override;

 private:
  const SetSystem* system_;
};

/// Scans a file in the setsystem text format (setsystem/io.h),
/// re-parsing it front to back on every pass. Spans passed to the
/// visitor are valid only for the duration of that callback. Scans are
/// not concurrency-safe with each other (they share the parse buffer);
/// PassScheduler serializes them by construction.
class FileSetSource : public SetSource {
 public:
  /// Validates the header; returns std::nullopt and fills *error if the
  /// file is missing or malformed.
  static std::optional<FileSetSource> Open(const std::string& path,
                                           std::string* error);

  uint32_t num_elements() const override { return num_elements_; }
  uint32_t num_sets() const override { return num_sets_; }

  /// Re-parses the file front to back. Open only validates the header,
  /// so a file truncated after it — or swapped out underneath us — is
  /// first noticed here; that surfaces as a false return with error()
  /// set, never an abort.
  bool Scan(const SetVisitor& visit) override;

  const std::string& path() const { return path_; }

  /// Number of front-to-back parses of the file so far. With the
  /// shared-scan scheduler this equals *physical* scans — one parse
  /// serves every multiplexed guess — not the per-guess sequential
  /// total (the regression the pass_scheduler tests pin down).
  uint64_t parses() const { return parses_; }

 private:
  FileSetSource(std::string path, uint32_t n, uint32_t m);

  std::string path_;
  uint32_t num_elements_ = 0;
  uint32_t num_sets_ = 0;
  uint64_t parses_ = 0;
  std::vector<uint32_t> scan_buffer_;  // reused across sets and scans
};

}  // namespace streamcover

#endif  // STREAMCOVER_STREAM_SET_SOURCE_H_
