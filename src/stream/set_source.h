// Pluggable stream backends.
//
// The paper's model keeps F in a read-only repository that is scanned
// sequentially. `SetSource` abstracts where that repository lives:
// in-memory CSR (the default, fastest for experiments) or an actual
// on-disk file that is re-parsed on every pass (FileSetSource) — the
// closest laptop analogue of "the data does not fit in memory".
//
// Scans dispatch `SetView`s: borrowed (id, element-span) pairs over the
// source's columnar storage. No element is copied between the
// repository and the visitor.

#ifndef STREAMCOVER_STREAM_SET_SOURCE_H_
#define STREAMCOVER_STREAM_SET_SOURCE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "setsystem/set_system.h"
#include "setsystem/set_view.h"
#include "util/cancel_token.h"

namespace streamcover {

/// Callback invoked once per set during a scan. The view borrows the
/// source's storage and is valid only for the duration of the call.
using SetVisitor = std::function<void(const SetView&)>;

/// Callback invoked once per contiguous batch of sets during a batched
/// scan (SetSource::ScanBatches). Views borrow the source's storage and
/// are valid only for the duration of the call.
using SetBatchVisitor = std::function<void(std::span<const SetView>)>;

/// A sequentially scannable repository of sets.
class SetSource {
 public:
  virtual ~SetSource() = default;

  virtual uint32_t num_elements() const = 0;
  virtual uint32_t num_sets() const = 0;

  /// One full sequential scan; calls `visit` for every set in order.
  /// Returns false if the repository failed mid-scan (file truncated or
  /// corrupted underneath us) — the scan stops, error() describes why,
  /// and every later Scan fails immediately with the same error. A
  /// failed scan is an environment fault, not a programming error, so it
  /// surfaces as a value instead of an SC_CHECK abort.
  virtual bool Scan(const SetVisitor& visit) = 0;

  /// An independent scanner over the same repository: fresh cursor,
  /// fresh decode buffer, fresh (empty) sticky-error state, sharing only
  /// the immutable bytes underneath (in-memory CSR, mmap pages, or the
  /// on-disk file). Forks may Scan concurrently with the parent and each
  /// other — the serving layer draws one per in-flight request over a
  /// shared resident instance. Returns nullptr with *error set when the
  /// repository cannot be reattached (file vanished) or the source does
  /// not support forking (the default).
  virtual std::unique_ptr<SetSource> Fork(std::string* error) const;

  /// One full sequential scan delivered as contiguous batches of sets,
  /// still in set-id order — same pass, same error contract as Scan,
  /// just a coarser dispatch grain. The default wraps Scan one set per
  /// batch; sources that pre-decode whole batches (the pipelined mmap
  /// path) override it so a threaded consumer gets stable views for the
  /// whole batch callback without re-buffering.
  virtual bool ScanBatches(const SetBatchVisitor& visit);

  /// True when ScanBatches delivers genuinely pre-decoded multi-set
  /// batches worth consuming as such (PassScheduler's threaded mode
  /// then skips its own copy-and-batch staging). The default — and any
  /// serial configuration — answers false.
  virtual bool SupportsBatchScan() const { return false; }

  /// Decode workers for sources with a parallel scan path (the
  /// pipelined binary mmap scan): <= 1 keeps the serial decode loop,
  /// byte-identical to the pipelined output by contract. Sources
  /// without such a path ignore it. Like set_cancel, the setting is
  /// per-scanner — forks start back at 1.
  void set_scan_threads(uint32_t threads) {
    scan_threads_ = threads == 0 ? 1 : threads;
  }
  uint32_t scan_threads() const { return scan_threads_; }

  /// Arms cooperative cancellation: every Scan polls `cancel` at batch
  /// granularity (a few hundred sets) and fails with the sticky error
  /// kDeadlineExceededError once it fires — the same graceful unwind
  /// path as a mid-scan repository fault. Pass nullptr to disarm. The
  /// token must outlive the scans it guards; one cancelled source stays
  /// dead (sticky), so per-request forks each arm their own token.
  void set_cancel(const CancelToken* cancel) { cancel_ = cancel; }

  /// Empty until a Scan fails; sticky afterwards.
  const std::string& error() const { return error_; }

 protected:
  /// Scan-loop poll stride: sets between cancellation checks. Small
  /// enough that a deadline lands within microseconds of firing, large
  /// enough that the steady_clock read never shows up in a profile.
  static constexpr uint32_t kCancelStride = 256;

  /// True — and latches error_ = kDeadlineExceededError — once the armed
  /// token has fired. Scan loops call this every kCancelStride sets
  /// (including set 0, so an already-expired deadline never starts a
  /// scan).
  bool CancelFired() {
    if (cancel_ == nullptr || !cancel_->cancelled()) return false;
    error_ = kDeadlineExceededError;
    return true;
  }

  /// The armed token (nullptr = uncancellable), for scan paths that
  /// poll it off the main loop (pipelined decode workers).
  const CancelToken* cancel_token() const { return cancel_; }

  std::string error_;

 private:
  const CancelToken* cancel_ = nullptr;
  uint32_t scan_threads_ = 1;
};

/// Scans an in-memory SetSystem (does not take ownership).
class InMemorySetSource : public SetSource {
 public:
  explicit InMemorySetSource(const SetSystem* system);

  uint32_t num_elements() const override;
  uint32_t num_sets() const override;
  bool Scan(const SetVisitor& visit) override;

  /// Trivially forkable: the CSR is immutable and borrowed.
  std::unique_ptr<SetSource> Fork(std::string* error) const override;

 private:
  const SetSystem* system_;
};

/// Scans a file in the setsystem text format (setsystem/io.h),
/// re-parsing it front to back on every pass. Spans passed to the
/// visitor are valid only for the duration of that callback. Scans are
/// not concurrency-safe with each other (they share the parse buffer);
/// PassScheduler serializes them by construction.
class FileSetSource : public SetSource {
 public:
  /// Validates the header; returns std::nullopt and fills *error if the
  /// file is missing or malformed.
  static std::optional<FileSetSource> Open(const std::string& path,
                                           std::string* error);

  uint32_t num_elements() const override { return num_elements_; }
  uint32_t num_sets() const override { return num_sets_; }

  /// Re-parses the file front to back. Open only validates the header,
  /// so a file truncated after it — or swapped out underneath us — is
  /// first noticed here; that surfaces as a false return with error()
  /// set, never an abort.
  bool Scan(const SetVisitor& visit) override;

  /// Re-opens the file with a fresh parse buffer; scans of the fork and
  /// the parent are independent (each re-reads the file per pass
  /// anyway). Fails if the file has vanished or its header changed.
  std::unique_ptr<SetSource> Fork(std::string* error) const override;

  const std::string& path() const { return path_; }

  /// On-disk size of the repository, for cache byte accounting.
  uint64_t repository_bytes() const { return file_bytes_; }

  /// Number of front-to-back parses of the file so far. With the
  /// shared-scan scheduler this equals *physical* scans — one parse
  /// serves every multiplexed guess — not the per-guess sequential
  /// total (the regression the pass_scheduler tests pin down).
  uint64_t parses() const { return parses_; }

 private:
  FileSetSource(std::string path, uint32_t n, uint32_t m);

  std::string path_;
  uint32_t num_elements_ = 0;
  uint32_t num_sets_ = 0;
  uint64_t file_bytes_ = 0;
  uint64_t parses_ = 0;
  std::vector<uint32_t> scan_buffer_;  // reused across sets and scans
};

}  // namespace streamcover

#endif  // STREAMCOVER_STREAM_SET_SOURCE_H_
