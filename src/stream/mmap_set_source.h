// Out-of-core set repository over the binary format.
//
// MmapSetSource maps a binary set-system file (setsystem/binary_io.h)
// read-only and decodes each set into a reused scan buffer during Scan,
// dispatching the same sorted-unique SetViews every other source does.
// The kernel is advised that scans are sequential (madvise), so repeated
// physical passes over a file larger than RAM stay bandwidth-bound: the
// page cache streams the file instead of thrashing, and no per-pass
// parsing of ASCII numbers happens at all. This is the piece that makes
// the paper's m≈10^7–10^8 regime reachable on a laptop.
//
// Open validates the whole file structure through the offsets footer
// (a truncated or resized file is rejected up front — the failure mode
// the text source can only discover mid-scan). Decode errors inside a
// set body (corrupt varints, out-of-range ids) surface as graceful
// Scan failures per the SetSource error contract, never aborts.

#ifndef STREAMCOVER_STREAM_MMAP_SET_SOURCE_H_
#define STREAMCOVER_STREAM_MMAP_SET_SOURCE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "setsystem/binary_io.h"
#include "stream/pipelined_scan.h"
#include "stream/set_source.h"

namespace streamcover {

/// Scans a binary set-system file through a read-only memory mapping.
/// Spans passed to the visitor are valid only for the duration of that
/// callback (they point into the reused decode buffer). Scans share the
/// buffer, so one MmapSetSource's scans are not concurrency-safe with
/// each other (PassScheduler serializes them by construction) — but
/// Fork() hands out independent scanners over the *same* mapped pages,
/// which is how the serving layer runs concurrent requests against one
/// resident file without remapping it per request.
class MmapSetSource : public SetSource {
 public:
  /// Maps `path` and validates header + footer structure (magic,
  /// version, dimensions, size consistency, monotone offsets). Returns
  /// std::nullopt and fills *error on any mismatch. The body checksum
  /// is NOT verified here — that would cost a full read of a file this
  /// class exists to stream lazily; LoadBinarySetSystemFromFile checks
  /// it, and structural corruption still fails cleanly during Scan.
  static std::optional<MmapSetSource> Open(const std::string& path,
                                           std::string* error);

  MmapSetSource(MmapSetSource&&) noexcept = default;
  MmapSetSource& operator=(MmapSetSource&&) noexcept = default;
  MmapSetSource(const MmapSetSource&) = delete;
  MmapSetSource& operator=(const MmapSetSource&) = delete;

  uint32_t num_elements() const override { return num_elements_; }
  uint32_t num_sets() const override { return num_sets_; }

  /// scan_threads() <= 1 runs the serial decode loop below, untouched
  /// since PR 6 and the byte-identity reference; > 1 routes through the
  /// pipelined chunk engine (stream/pipelined_scan.h) with that many
  /// decode workers, dispatching the same views in the same order.
  bool Scan(const SetVisitor& visit) override;

  /// Pipelined runs deliver each decoded chunk as one batch whose views
  /// stay valid for the whole callback — what the threaded
  /// PassScheduler consumes directly instead of re-buffering.
  bool ScanBatches(const SetBatchVisitor& visit) override;
  bool SupportsBatchScan() const override { return scan_threads() > 1; }

  /// Shares the mapping (one mmap, refcounted) but owns a fresh decode
  /// buffer and error state, so fork and parent may scan concurrently.
  /// The pages stay mapped until the last fork drops them.
  std::unique_ptr<SetSource> Fork(std::string* error) const override;

  const std::string& path() const { return map_->path; }
  uint64_t nnz() const { return map_->layout.nnz; }

  /// The validated file structure — what the `stats` CLI command walks
  /// to report chunk counts without a second Open.
  const binfmt::BinaryLayout& layout() const { return map_->layout; }

  /// Bytes of the underlying mapping, for cache byte accounting.
  uint64_t repository_bytes() const { return map_->size; }

  /// Number of front-to-back decode scans so far — the mmap counterpart
  /// of FileSetSource::parses(), and equally equal to *physical* scans
  /// under the shared-scan scheduler. Per scanner: forks count their
  /// own.
  uint64_t scans() const { return scans_; }

 private:
  /// The refcounted immutable mapping every fork shares. munmap happens
  /// exactly once, when the last scanner over it is destroyed.
  struct Mapping {
    ~Mapping();
    std::string path;
    const uint8_t* data = nullptr;
    uint64_t size = 0;
    binfmt::BinaryLayout layout;
  };

  explicit MmapSetSource(std::shared_ptr<const Mapping> map);

  /// One pipelined pass over the whole file; shared by Scan (per-set
  /// fan-in) and ScanBatches (chunk batches). Handles sticky error,
  /// scan counting, and the error latch.
  bool PipelinedPass(const PipelinedScanner::BatchVisitor& visit);

  /// The per-scanner pipeline engine, built lazily on the first
  /// pipelined pass (and rebuilt if scan_threads changes). Chunk plans
  /// and slot pools are retained across passes, so multi-pass solvers
  /// pay construction once.
  PipelinedScanner& EnsureScanner();

  std::shared_ptr<const Mapping> map_;
  uint32_t num_elements_ = 0;
  uint32_t num_sets_ = 0;
  uint64_t scans_ = 0;
  std::vector<uint32_t> scan_buffer_;  // reused across sets and scans

  // Pipelined-scan state; untouched (and unallocated) at
  // scan_threads <= 1. The plan is a pure function of the mapping;
  // the scanner additionally depends on the worker count.
  std::vector<binfmt::ScanChunk> chunk_plan_;
  std::unique_ptr<PipelinedScanner> scanner_;
  uint32_t scanner_threads_ = 0;
};

/// Opens `path` as whichever source its magic announces: MmapSetSource
/// for the binary format, FileSetSource for text. This is how
/// Instance::FromFile / `solve --from-disk` pick the fast path
/// automatically. Returns nullptr and fills *error on failure.
std::unique_ptr<SetSource> OpenDiskSetSource(const std::string& path,
                                             std::string* error);

}  // namespace streamcover

#endif  // STREAMCOVER_STREAM_MMAP_SET_SOURCE_H_
