// Common result type for the baseline streaming algorithms (the
// non-iterSetCover rows of Figure 1.1).

#ifndef STREAMCOVER_BASELINES_BASELINE_RESULT_H_
#define STREAMCOVER_BASELINES_BASELINE_RESULT_H_

#include <cstdint>

#include "setsystem/cover.h"

namespace streamcover {

/// Cover plus the pass/space accounting the Figure 1.1 table reports.
struct BaselineResult {
  Cover cover;
  bool success = false;        ///< full cover achieved
  uint64_t passes = 0;         ///< sequential scans of F
  uint64_t space_words = 0;    ///< peak retained 64-bit words
};

}  // namespace streamcover

#endif  // STREAMCOVER_BASELINES_BASELINE_RESULT_H_
