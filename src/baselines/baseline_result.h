// Common result type for the baseline streaming algorithms (the
// non-iterSetCover rows of Figure 1.1).

#ifndef STREAMCOVER_BASELINES_BASELINE_RESULT_H_
#define STREAMCOVER_BASELINES_BASELINE_RESULT_H_

#include <cstdint>

#include "setsystem/cover.h"

namespace streamcover {

/// Cover plus the pass/space accounting the Figure 1.1 table reports.
struct BaselineResult {
  Cover cover;
  bool success = false;        ///< full cover achieved
  uint64_t passes = 0;         ///< logical passes over F
  /// Physical scans of the repository. Scheduler-driven baselines fill
  /// it (a shared scan can serve several consumers); 0 means "same as
  /// passes" for the classic one-logical-instruction-stream baselines.
  uint64_t physical_scans = 0;
  uint64_t space_words = 0;    ///< peak retained 64-bit words
  /// Gain-maintenance accounting (baselines that run a greedy gain
  /// loop; zero elsewhere) — see setsystem/transposed_index.h.
  uint64_t gain_updates = 0;   ///< O(1) transposed-index decrements
  uint64_t sets_touched = 0;   ///< candidate-gain evaluations
};

}  // namespace streamcover

#endif  // STREAMCOVER_BASELINES_BASELINE_RESULT_H_
