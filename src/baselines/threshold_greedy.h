// Threshold-greedy baselines in O~(n) space:
//
// * ProgressiveGreedy — the [SG09]-style thresholding of greedy: passes
//   with thresholds n/2, n/4, ..., 1; any set covering >= threshold
//   yet-uncovered elements is taken on sight. O(log n) passes, O(log n)
//   approximation, O~(n) space (Figure 1.1 row [SG09]).
//
// * PolynomialThresholdCover — the [ER14]/[CW16] trade-off: p passes
//   with thresholds n^{(p+1-i)/(p+1)} (i = 1..p); throughout, each
//   still-uncovered element remembers one set containing it (O(n)
//   words); after the last pass those remembered sets finish the cover.
//   Approximation (p+1) * n^{1/(p+1)}; p = 1 is [ER14]'s one-pass
//   O(sqrt(n)), general p is [CW16]. These are the published algorithms'
//   threshold skeletons, which realize the stated bounds; paper-specific
//   charging refinements do not change the exponent (see DESIGN.md).

#ifndef STREAMCOVER_BASELINES_THRESHOLD_GREEDY_H_
#define STREAMCOVER_BASELINES_THRESHOLD_GREEDY_H_

#include "baselines/baseline_result.h"
#include "stream/set_stream.h"

namespace streamcover {

/// [SG09]-style: halving thresholds, O(log n) passes, O~(n) space.
/// `coverage_fraction` < 1 runs the epsilon-Partial Set Cover variant
/// (both [ER14] and [CW16] state their results for it): the algorithm
/// stops as soon as that fraction of U is covered.
BaselineResult ProgressiveGreedy(SetStream& stream,
                                 double coverage_fraction = 1.0);

/// [ER14] (p=1) / [CW16] (p>=1): p threshold passes + pointer finish.
/// `coverage_fraction` < 1 gives the epsilon-Partial variant.
BaselineResult PolynomialThresholdCover(SetStream& stream, uint32_t p,
                                        double coverage_fraction = 1.0);

}  // namespace streamcover

#endif  // STREAMCOVER_BASELINES_THRESHOLD_GREEDY_H_
