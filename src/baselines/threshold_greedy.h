// Threshold-greedy baselines in O~(n) space:
//
// * ProgressiveGreedy — the [SG09]-style thresholding of greedy: passes
//   with thresholds n/2, n/4, ..., 1; any set covering >= threshold
//   yet-uncovered elements is taken on sight. O(log n) passes, O(log n)
//   approximation, O~(n) space (Figure 1.1 row [SG09]).
//
// * PolynomialThresholdCover — the [ER14]/[CW16] trade-off: p passes
//   with thresholds n^{(p+1-i)/(p+1)} (i = 1..p); throughout, each
//   still-uncovered element remembers one set containing it (O(n)
//   words); after the last pass those remembered sets finish the cover.
//   Approximation (p+1) * n^{1/(p+1)}; p = 1 is [ER14]'s one-pass
//   O(sqrt(n)), general p is [CW16]. These are the published algorithms'
//   threshold skeletons, which realize the stated bounds; paper-specific
//   charging refinements do not change the exponent (see DESIGN.md).
//
// The polynomial sieve is expressed as a ScanConsumer
// (ThresholdSieveConsumer): its p threshold levels are a per-pass state
// machine drivable by PassScheduler, so it can share physical scans
// with other consumers — the [ER14] sieving shape on the same seam
// iterSetCover's guesses use.

#ifndef STREAMCOVER_BASELINES_THRESHOLD_GREEDY_H_
#define STREAMCOVER_BASELINES_THRESHOLD_GREEDY_H_

#include <cstdint>
#include <vector>

#include "baselines/baseline_result.h"
#include "stream/pass_scheduler.h"
#include "stream/set_stream.h"
#include "stream/space_tracker.h"
#include "util/bitset.h"
#include "util/cover_kernels.h"

namespace streamcover {

/// [SG09]-style: halving thresholds, O(log n) passes, O~(n) space.
/// `coverage_fraction` < 1 runs the epsilon-Partial Set Cover variant
/// (both [ER14] and [CW16] state their results for it): the algorithm
/// stops as soon as that fraction of U is covered.
BaselineResult ProgressiveGreedy(SetStream& stream,
                                 double coverage_fraction = 1.0,
                                 KernelPolicy kernel = KernelPolicy::kWord);

/// The [ER14]/[CW16] polynomial threshold sieve as a pass-driven state
/// machine: pass i applies threshold n^{(p+1-i)/(p+1)}; after pass p
/// the per-element backup pointers finish the cover without another
/// pass.
class ThresholdSieveConsumer final : public ScanConsumer {
 public:
  ThresholdSieveConsumer(uint32_t n, uint32_t p,
                         double coverage_fraction = 1.0,
                         KernelPolicy kernel = KernelPolicy::kWord);

  void OnSet(const SetView& set) override;
  void OnPassEnd() override;
  bool done() const override { return done_; }

  /// A set with no still-uncovered element records no backups and never
  /// clears the threshold, so the scheduler may drop it pre-dispatch.
  const LiveMask* batch_filter() const override {
    return done_ ? nullptr : &uncovered_;
  }

  /// Finishes accounting; call once the consumer is done.
  BaselineResult TakeResult(uint64_t logical_passes);

  /// Wires the sieve to `scheduler`'s coverage-delta bus: the elements
  /// each pass (and the backup finish) newly covers are published at
  /// OnPassEnd, so registered GainTrackers stay exact without a rescan.
  /// Must outlive the consumer's last pass.
  void PublishDeltasTo(PassScheduler* scheduler) {
    delta_scheduler_ = scheduler;
  }

 private:
  void FinishFromBackups();
  void FlushPassDelta();

  const uint32_t p_;
  const double dn_;
  const KernelPolicy kernel_;
  uint64_t allowed_uncovered_ = 0;

  SpaceTracker tracker_;
  LiveMask uncovered_;
  std::vector<uint32_t> backup_;  ///< some set containing e; UINT32_MAX = none
  std::vector<uint32_t> residual_scratch_;  ///< per-set transient, not charged
  /// Elements covered during the current pass, published (and cleared)
  /// at OnPassEnd when a delta bus is attached. Filled only from this
  /// consumer's own dispatches, so the worker-thread rule holds.
  std::vector<uint32_t> pass_delta_;
  PassScheduler* delta_scheduler_ = nullptr;
  uint64_t remaining_ = 0;
  uint32_t pass_index_ = 1;
  double threshold_ = 0.0;
  Cover sol_;
  bool success_ = false;
  bool done_ = false;
};

/// [ER14] (p=1) / [CW16] (p>=1): p threshold passes + pointer finish.
/// `coverage_fraction` < 1 gives the epsilon-Partial variant.
BaselineResult PolynomialThresholdCover(PassScheduler& scheduler, uint32_t p,
                                        double coverage_fraction = 1.0,
                                        KernelPolicy kernel = KernelPolicy::kWord);

/// Convenience: single-threaded scheduler over `stream`.
BaselineResult PolynomialThresholdCover(SetStream& stream, uint32_t p,
                                        double coverage_fraction = 1.0,
                                        KernelPolicy kernel = KernelPolicy::kWord);

}  // namespace streamcover

#endif  // STREAMCOVER_BASELINES_THRESHOLD_GREEDY_H_
