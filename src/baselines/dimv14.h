// The Demaine–Indyk–Mahabadi–Vakilian (DISC 2014) multi-pass algorithm —
// Figure 1.1 row [DIMV14]: O(4^{1/delta}) passes, O~(m n^delta) space,
// O(4^{1/delta} * rho) approximation.
//
// Published structure (element sampling + recursion): to cover a residual
// V, if V is small enough that the projections of *all* sets onto V fit
// in O~(m n^delta) space (|V| <= ~n^delta polylog — without
// iterSetCover's Size Test a single projection can be all of V, so the
// affordable sample is a factor ~k smaller than iterSetCover's), solve
// directly in one pass. Otherwise: sample S ⊂ V of size |V|/n^delta,
// cover S by a recursive streaming call, remove what that cover covers
// (one pass), and recurse on the leftovers. Two recursive children per
// level and ~1/delta levels give the exponential pass count; the union of
// per-level covers gives the exponential approximation factor. Our
// realization measures exponent base ~2 versus the paper's analysis
// constant 4 — the reproduced phenomenon is exponential-vs-linear pass
// growth against iterSetCover (see DESIGN.md).
//
// The algorithm is expressed as a ScanConsumer (the recursion becomes an
// explicit frame stack), so it can share physical scans with any other
// consumers on a PassScheduler — the seam is not iterSetCover-shaped.

#ifndef STREAMCOVER_BASELINES_DIMV14_H_
#define STREAMCOVER_BASELINES_DIMV14_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "baselines/baseline_result.h"
#include "offline/solver.h"
#include "setsystem/set_system.h"
#include "stream/pass_scheduler.h"
#include "stream/set_stream.h"
#include "stream/space_tracker.h"
#include "util/bitset.h"
#include "util/cover_kernels.h"
#include "util/rng.h"

namespace streamcover {

/// Options for the DIMV14 baseline.
struct Dimv14Options {
  double delta = 0.5;
  double sample_constant = 0.5;   ///< c in the base-case size formula
  const OfflineSolver* offline = nullptr;  ///< defaults to greedy
  uint64_t seed = 1;
  uint32_t max_depth = 64;        ///< recursion safety valve
  /// Coverage-kernel twin for the base-pass filter and update pass.
  KernelPolicy kernel = KernelPolicy::kWord;
};

/// The DIMV14 recursion as a pass-driven state machine: each frame of
/// the published recursion becomes a stack frame, and the two pass
/// kinds (base-case projection pass, covered-removal pass) are served
/// by whatever physical scan the scheduler runs. `options` and
/// `offline` must outlive the consumer.
class Dimv14Consumer final : public ScanConsumer {
 public:
  Dimv14Consumer(uint32_t n, uint32_t m, const Dimv14Options& options,
                 const OfflineSolver& offline);

  void OnSet(const SetView& set) override;
  void OnPassEnd() override;
  bool done() const override { return phase_ == Phase::kDone; }

  /// Base-pass batches are prefiltered against the active frame's
  /// residual: a set projecting to nothing stores nothing. The update
  /// pass is guarded by picked set ids instead, so it opts out.
  const LiveMask* batch_filter() const override {
    return phase_ == Phase::kBasePass ? base_targets_ : nullptr;
  }

  /// Finishes accounting; call once the consumer is done.
  BaselineResult TakeResult(uint64_t logical_passes);

 private:
  enum class Phase { kBasePass, kUpdatePass, kDone };
  enum class Stage { kEnter, kAfterChild1, kAfterUpdate };

  struct Frame {
    LiveMask targets;  ///< residual this frame must cover (owned)
    uint32_t depth = 0;
    Stage stage = Stage::kEnter;
    size_t sol_before = 0;          ///< |sol| when child 1 started
    uint64_t child_mask_words = 0;  ///< charge to release after child 1
  };

  /// Runs inter-pass logic (the recursion driver) until a pass is
  /// needed or the stack is empty.
  void Advance();
  void PrepareBasePass(Frame& frame);

  const uint32_t n_;
  const uint32_t m_;
  const Dimv14Options* options_;
  const OfflineSolver* offline_;
  const KernelPolicy kernel_;
  uint64_t base_size_ = 1;

  Rng rng_;
  SpaceTracker tracker_;
  std::vector<Frame> stack_;
  Cover sol_;
  bool failed_ = false;
  Phase phase_ = Phase::kDone;

  // Base-pass scratch (one base pass active at a time). The masked
  // filter kernel writes into a reused buffer that is then reindexed in
  // place and appended to the sub-builder's CSR arena — no per-set
  // vector is materialized and no hash lookup runs for dead elements.
  std::vector<uint32_t> base_target_elems_;
  std::unordered_map<uint32_t, uint32_t> reindex_;
  std::optional<SetSystem::Builder> sub_builder_;
  std::vector<uint32_t> original_ids_;
  std::vector<uint32_t> proj_scratch_;
  const LiveMask* base_targets_ = nullptr;
  uint64_t stored_words_ = 0;

  // Update-pass scratch.
  DynamicBitset picked_;
  LiveMask* update_targets_ = nullptr;
};

/// Runs the DIMV14 scheme on `scheduler` (one consumer; pass accounting
/// matches IterSetCover's parallel-guess convention — see the .cc note
/// on why a single run realizes all guesses).
BaselineResult Dimv14Cover(PassScheduler& scheduler,
                           const Dimv14Options& options);

/// Convenience: single-threaded scheduler over `stream`.
BaselineResult Dimv14Cover(SetStream& stream, const Dimv14Options& options);

}  // namespace streamcover

#endif  // STREAMCOVER_BASELINES_DIMV14_H_
