// The Demaine–Indyk–Mahabadi–Vakilian (DISC 2014) multi-pass algorithm —
// Figure 1.1 row [DIMV14]: O(4^{1/delta}) passes, O~(m n^delta) space,
// O(4^{1/delta} * rho) approximation.
//
// Published structure (element sampling + recursion): to cover a residual
// V, if V is small enough that the projections of *all* sets onto V fit
// in O~(m n^delta) space (|V| <= ~n^delta polylog — without
// iterSetCover's Size Test a single projection can be all of V, so the
// affordable sample is a factor ~k smaller than iterSetCover's), solve
// directly in one pass. Otherwise: sample S ⊂ V of size |V|/n^delta,
// cover S by a recursive streaming call, remove what that cover covers
// (one pass), and recurse on the leftovers. Two recursive children per
// level and ~1/delta levels give the exponential pass count; the union of
// per-level covers gives the exponential approximation factor. Our
// realization measures exponent base ~2 versus the paper's analysis
// constant 4 — the reproduced phenomenon is exponential-vs-linear pass
// growth against iterSetCover (see DESIGN.md).

#ifndef STREAMCOVER_BASELINES_DIMV14_H_
#define STREAMCOVER_BASELINES_DIMV14_H_

#include "baselines/baseline_result.h"
#include "offline/solver.h"
#include "stream/set_stream.h"

namespace streamcover {

/// Options for the DIMV14 baseline.
struct Dimv14Options {
  double delta = 0.5;
  double sample_constant = 0.5;   ///< c in the base-case size formula
  const OfflineSolver* offline = nullptr;  ///< defaults to greedy
  uint64_t seed = 1;
  uint32_t max_depth = 64;        ///< recursion safety valve
};

/// Runs the DIMV14 scheme with all power-of-two guesses of k, returning
/// the best cover; pass accounting matches IterSetCover's (max over
/// guesses), space is the parallel sum.
BaselineResult Dimv14Cover(SetStream& stream, const Dimv14Options& options);

}  // namespace streamcover

#endif  // STREAMCOVER_BASELINES_DIMV14_H_
