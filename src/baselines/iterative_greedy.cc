#include "baselines/iterative_greedy.h"

#include <vector>

#include "stream/space_tracker.h"
#include "util/bitset.h"
#include "util/cover_kernels.h"

namespace streamcover {

BaselineResult IterativeGreedy(SetStream& stream, KernelPolicy kernel) {
  SpaceTracker tracker;
  const uint64_t passes_before = stream.passes();
  const uint32_t n = stream.num_elements();

  LiveMask uncovered(n, true);
  tracker.Charge(uncovered.WordCount());

  // Restrict to coverable elements with one initial pass (also the first
  // greedy-selection pass: we fold both uses into every pass below by
  // clearing uncoverable bits lazily — an element in no set simply never
  // contributes to any gain; detect termination via best_gain == 0).
  BaselineResult result;
  while (uncovered.Any()) {
    uint32_t best_id = 0;
    size_t best_gain = 0;
    std::vector<uint32_t> best_elems;  // residual elements of best set
    stream.ForEachSet([&](const SetView& set) {
      const size_t gain = CountUncovered(set, uncovered, kernel);
      if (gain > best_gain) {
        best_gain = gain;
        best_id = set.id;
        best_elems.clear();
        FilterInto(set, uncovered, best_elems, kernel);
      }
    });
    // Peak charge for the retained best-candidate buffer this pass.
    tracker.Charge(best_elems.size());
    tracker.Release(best_elems.size());
    if (best_gain == 0) break;  // remaining elements are uncoverable
    result.cover.set_ids.push_back(best_id);
    tracker.Charge(1);
    for (uint32_t e : best_elems) uncovered.Reset(e);
  }

  result.success = uncovered.None();
  result.passes = stream.passes() - passes_before;
  result.space_words = tracker.peak_words();
  return result;
}

}  // namespace streamcover
