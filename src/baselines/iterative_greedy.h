// Figure 1.1 row "Greedy, n passes, O(n) space": the exact greedy
// algorithm executed with one pass per pick. During a pass the algorithm
// tracks the best set seen so far (id + its residual elements, <= n
// words); after the pass it commits that set and repeats until U is
// covered. Same ln n approximation as offline greedy, pass count equal
// to the greedy cover size.

#ifndef STREAMCOVER_BASELINES_ITERATIVE_GREEDY_H_
#define STREAMCOVER_BASELINES_ITERATIVE_GREEDY_H_

#include "baselines/baseline_result.h"
#include "stream/set_stream.h"
#include "util/cover_kernels.h"

namespace streamcover {

/// Greedy with one pass per picked set; O(n) working memory.
BaselineResult IterativeGreedy(SetStream& stream,
                               KernelPolicy kernel = KernelPolicy::kWord);

}  // namespace streamcover

#endif  // STREAMCOVER_BASELINES_ITERATIVE_GREEDY_H_
