// Streaming Max k-Cover, [SG09]-style: thresholded greedy under a set
// budget. Pass i uses threshold n / 2^i; any streamed set whose marginal
// coverage clears the threshold is taken until the budget is exhausted.
// O(log n) passes, O~(n) space, constant-factor coverage (the classic
// thresholding loss over greedy's 1 - 1/e).

#ifndef STREAMCOVER_BASELINES_STREAMING_MAX_COVER_H_
#define STREAMCOVER_BASELINES_STREAMING_MAX_COVER_H_

#include <cstdint>

#include "baselines/baseline_result.h"
#include "stream/set_stream.h"
#include "util/cover_kernels.h"

namespace streamcover {

/// Result of a streaming budgeted coverage maximization.
struct StreamingMaxCoverResult {
  Cover cover;
  uint64_t covered = 0;
  uint64_t passes = 0;
  uint64_t space_words = 0;
};

/// Runs at most `budget` picks over halving thresholds; stops when the
/// budget is used, coverage is complete, or the threshold reaches 1.
StreamingMaxCoverResult StreamingMaxCover(
    SetStream& stream, uint32_t budget,
    KernelPolicy kernel = KernelPolicy::kWord);

}  // namespace streamcover

#endif  // STREAMCOVER_BASELINES_STREAMING_MAX_COVER_H_
