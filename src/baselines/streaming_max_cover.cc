#include "baselines/streaming_max_cover.h"

#include "stream/space_tracker.h"
#include "util/bitset.h"
#include "util/check.h"
#include "util/cover_kernels.h"

namespace streamcover {

StreamingMaxCoverResult StreamingMaxCover(SetStream& stream,
                                          uint32_t budget,
                                          KernelPolicy kernel) {
  SC_CHECK_GE(budget, 1u);
  SpaceTracker tracker;
  const uint64_t passes_before = stream.passes();
  const uint32_t n = stream.num_elements();

  LiveMask uncovered(n, true);
  tracker.Charge(uncovered.WordCount());

  StreamingMaxCoverResult result;
  for (double threshold = static_cast<double>(n) / 2.0;;
       threshold /= 2.0) {
    if (threshold < 1.0) threshold = 1.0;
    stream.ForEachSet([&](const SetView& set) {
      if (result.cover.size() >= budget) return;
      const size_t gain = CountUncovered(set, uncovered, kernel);
      if (gain > 0 && static_cast<double>(gain) >= threshold) {
        result.cover.set_ids.push_back(set.id);
        tracker.Charge(1);
        result.covered += gain;
        MarkCovered(set, uncovered, kernel);
      }
    });
    if (result.cover.size() >= budget) break;
    if (!uncovered.Any()) break;
    if (threshold == 1.0) break;
  }

  result.passes = stream.passes() - passes_before;
  result.space_words = tracker.peak_words();
  return result;
}

}  // namespace streamcover
