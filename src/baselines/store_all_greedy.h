// Figure 1.1 row "Greedy, 1 pass, O(mn) space": buffer the entire stream
// in working memory, then run offline greedy. The trivial upper end of
// the space spectrum; the single-pass lower bound (Theorem 3.8) says no
// sub-3/2-approximation one-pass algorithm can do asymptotically better
// than this Ω(mn) footprint.

#ifndef STREAMCOVER_BASELINES_STORE_ALL_GREEDY_H_
#define STREAMCOVER_BASELINES_STORE_ALL_GREEDY_H_

#include "baselines/baseline_result.h"
#include "stream/set_stream.h"
#include "util/cover_kernels.h"

namespace streamcover {

/// One pass, stores all of F (Θ(total_size) words), greedy offline.
BaselineResult StoreAllGreedy(SetStream& stream,
                              KernelPolicy kernel = KernelPolicy::kWord);

}  // namespace streamcover

#endif  // STREAMCOVER_BASELINES_STORE_ALL_GREEDY_H_
