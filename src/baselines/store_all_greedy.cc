#include "baselines/store_all_greedy.h"

#include "offline/greedy.h"
#include "stream/space_tracker.h"

namespace streamcover {

BaselineResult StoreAllGreedy(SetStream& stream, KernelPolicy kernel) {
  SpaceTracker tracker;
  const uint64_t passes_before = stream.passes();

  // One pass: append every set straight onto the buffered CSR arena.
  SetSystem::Builder builder(stream.num_elements());
  stream.ForEachSet([&](const SetView& set) {
    tracker.Charge(set.size() + 1);
    builder.AddSet(set.elems);
  });
  SetSystem buffered = std::move(builder).Build();

  OfflineResult offline = GreedySolver(kernel).Solve(buffered);
  tracker.Charge(offline.cover.size());

  BaselineResult result;
  result.cover = std::move(offline.cover);  // ids match stream order
  result.success = IsFullCover(buffered, result.cover);
  result.passes = stream.passes() - passes_before;
  result.space_words = tracker.peak_words();
  result.gain_updates = offline.gain_updates;
  result.sets_touched = offline.sets_touched;
  return result;
}

}  // namespace streamcover
