#include "baselines/dimv14.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "offline/greedy.h"
#include "stream/sampling.h"
#include "util/check.h"
#include "util/mathutil.h"

namespace streamcover {

Dimv14Consumer::Dimv14Consumer(uint32_t n, uint32_t m,
                               const Dimv14Options& options,
                               const OfflineSolver& offline)
    : n_(n), m_(m), options_(&options), offline_(&offline),
      kernel_(options.kernel), rng_(options.seed) {
  // Base case: |V| such that m * |V| = O~(m n^delta) — i.e.
  // |V| <= c * n^delta * log m * log n (no k factor; see header).
  base_size_ = static_cast<uint64_t>(std::ceil(
      options.sample_constant *
      PowDouble(static_cast<double>(n), options.delta) * Log2Clamped(m) *
      Log2Clamped(n)));
  base_size_ = std::max<uint64_t>(base_size_, 1);

  Frame root;
  root.targets = LiveMask(n, true);
  tracker_.Charge(root.targets.WordCount());
  stack_.push_back(std::move(root));
  Advance();
}

void Dimv14Consumer::PrepareBasePass(Frame& frame) {
  base_target_elems_ = frame.targets.ToVector();
  reindex_.clear();
  reindex_.reserve(base_target_elems_.size() * 2);
  for (uint32_t i = 0; i < base_target_elems_.size(); ++i) {
    reindex_[base_target_elems_[i]] = i;
  }
  tracker_.Charge(2 * base_target_elems_.size());  // ids + reindex
  sub_builder_.emplace(static_cast<uint32_t>(base_target_elems_.size()));
  original_ids_.clear();
  base_targets_ = &frame.targets;
  stored_words_ = 0;
}

void Dimv14Consumer::Advance() {
  while (true) {
    if (failed_ || stack_.empty()) {
      stack_.clear();
      phase_ = Phase::kDone;
      return;
    }
    Frame& frame = stack_.back();
    switch (frame.stage) {
      case Stage::kEnter: {
        if (frame.depth > options_->max_depth) {
          failed_ = true;
          break;
        }
        const uint64_t remaining = frame.targets.Count();
        if (remaining == 0) {
          stack_.pop_back();
          break;
        }
        if (remaining <= base_size_) {
          // Base case: one pass storing the projections of ALL sets
          // onto the target (no Size Test — this is the space-relevant
          // difference from iterSetCover), then one offline solve.
          PrepareBasePass(frame);
          phase_ = Phase::kBasePass;
          return;
        }
        // Recursive case: sample |V| / n^delta elements (at least
        // base_size). Child 1 covers the sample; the update pass then
        // removes everything child 1's picks cover; child 2 (a tail
        // call on this frame) handles the residual.
        const double shrink =
            PowDouble(static_cast<double>(n_), options_->delta);
        uint64_t sample_size = std::max<uint64_t>(
            base_size_,
            static_cast<uint64_t>(static_cast<double>(remaining) / shrink));
        sample_size = std::min(sample_size, remaining - 1);

        std::vector<uint32_t> sample_elems =
            SampleFromBitset(frame.targets.bits(), sample_size, rng_);
        LiveMask sample_mask(frame.targets.size());
        for (uint32_t e : sample_elems) sample_mask.Set(e);
        tracker_.Charge(sample_mask.WordCount());

        frame.sol_before = sol_.set_ids.size();
        frame.child_mask_words = sample_mask.WordCount();
        frame.stage = Stage::kAfterChild1;
        Frame child;
        child.targets = std::move(sample_mask);
        child.depth = frame.depth + 1;
        stack_.push_back(std::move(child));  // invalidates `frame`
        break;
      }
      case Stage::kAfterChild1: {
        tracker_.Release(frame.child_mask_words);
        // One pass: remove from `targets` everything covered by the
        // sets picked by child 1 (they typically cover most of V, not
        // just S).
        picked_ = DynamicBitset(m_);
        for (size_t i = frame.sol_before; i < sol_.set_ids.size(); ++i) {
          picked_.Set(sol_.set_ids[i]);
        }
        tracker_.Charge(picked_.WordCount());
        update_targets_ = &frame.targets;
        frame.stage = Stage::kAfterUpdate;
        phase_ = Phase::kUpdatePass;
        return;
      }
      case Stage::kAfterUpdate: {
        // Child 2 is Cover(targets, depth + 1) on the same residual —
        // a tail call realized by re-entering this frame one deeper.
        frame.depth += 1;
        frame.stage = Stage::kEnter;
        break;
      }
    }
  }
}

void Dimv14Consumer::OnSet(const SetView& set) {
  switch (phase_) {
    case Phase::kBasePass: {
      // Masked filter against the frame's residual first; only the
      // survivors (all of them target elements by construction) pay the
      // reindex hash lookup. Both filters visit a sorted span, so the
      // projection order — and the sub-instance — is unchanged.
      proj_scratch_.clear();
      FilterInto(set, *base_targets_, proj_scratch_, kernel_);
      if (proj_scratch_.empty()) return;
      for (uint32_t& e : proj_scratch_) {
        auto it = reindex_.find(e);
        SC_DCHECK(it != reindex_.end());
        e = it->second;
      }
      stored_words_ += proj_scratch_.size() + 1;
      tracker_.Charge(proj_scratch_.size() + 1);
      sub_builder_->AddSet(std::span<const uint32_t>(proj_scratch_));
      original_ids_.push_back(set.id);
      return;
    }
    case Phase::kUpdatePass: {
      if (!picked_.Test(set.id)) return;
      MarkCovered(set, *update_targets_, kernel_);
      return;
    }
    case Phase::kDone:
      return;
  }
}

void Dimv14Consumer::OnPassEnd() {
  switch (phase_) {
    case Phase::kBasePass: {
      SetSystem sub = std::move(*sub_builder_).Build();
      sub_builder_.reset();
      OfflineResult offline_result = offline_->Solve(sub);
      for (uint32_t sub_id : offline_result.cover.set_ids) {
        sol_.set_ids.push_back(original_ids_[sub_id]);
        tracker_.Charge(1);
      }
      tracker_.Release(stored_words_);
      tracker_.Release(2 * base_target_elems_.size());
      // The base case always finishes its frame: covered elements are
      // covered, uncoverable leftovers are dropped — both die with the
      // popped frame's residual bitset.
      base_targets_ = nullptr;
      stack_.pop_back();
      Advance();
      return;
    }
    case Phase::kUpdatePass: {
      tracker_.Release(picked_.WordCount());
      update_targets_ = nullptr;
      Advance();
      return;
    }
    case Phase::kDone:
      return;
  }
}

BaselineResult Dimv14Consumer::TakeResult(uint64_t logical_passes) {
  BaselineResult result;
  sol_.Deduplicate();
  result.cover = std::move(sol_);
  // The base case clears uncoverable elements, so success means
  // "covered all coverable elements".
  result.success = !failed_;
  result.passes = logical_passes;
  result.physical_scans = logical_passes;
  result.space_words = tracker_.peak_words();
  return result;
}

BaselineResult Dimv14Cover(PassScheduler& scheduler,
                           const Dimv14Options& options) {
  SC_CHECK(options.delta > 0.0 && options.delta <= 1.0);
  GreedySolver default_solver(options.kernel);
  const OfflineSolver& offline =
      options.offline != nullptr ? *options.offline : default_solver;

  // The DIMV14 scheme's k-guessing only affects sample sizing through
  // the offline solves; the pass structure is guess-independent here, so
  // a single run realizes the bound (k enters base_size only via rho in
  // the offline solver, which is instance- not guess-dependent). We
  // still report parallel-style accounting for comparability.
  Dimv14Consumer consumer(scheduler.stream().num_elements(),
                          scheduler.stream().num_sets(), options, offline);
  PassScheduler::SoloRun run = scheduler.DriveToCompletion(consumer);
  BaselineResult result = consumer.TakeResult(run.logical_passes);
  result.physical_scans = run.physical_scans;
  return result;
}

BaselineResult Dimv14Cover(SetStream& stream, const Dimv14Options& options) {
  PassScheduler scheduler(stream);
  return Dimv14Cover(scheduler, options);
}

}  // namespace streamcover
