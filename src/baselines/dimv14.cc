#include "baselines/dimv14.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "offline/greedy.h"
#include "stream/sampling.h"
#include "stream/space_tracker.h"
#include "util/bitset.h"
#include "util/check.h"
#include "util/mathutil.h"
#include "util/rng.h"

namespace streamcover {
namespace {

struct Dimv14Context {
  SetStream* stream;
  const OfflineSolver* offline;
  const Dimv14Options* options;
  SpaceTracker* tracker;
  Rng* rng;
  uint64_t k;
  uint64_t base_size;  // direct-solve threshold (~ c n^delta polylog)
  Cover sol;
  bool failed = false;
};

// Covers the elements flagged in `targets` (recursively); picked set ids
// are appended to ctx.sol. `targets` is consumed (cleared as covered).
void Cover(Dimv14Context& ctx, DynamicBitset& targets, uint32_t depth) {
  if (ctx.failed) return;
  if (depth > ctx.options->max_depth) {
    ctx.failed = true;
    return;
  }
  uint64_t remaining = targets.Count();
  if (remaining == 0) return;

  if (remaining <= ctx.base_size) {
    // Base case: one pass storing the projections of ALL sets onto the
    // target (no Size Test — this is the space-relevant difference from
    // iterSetCover), then one offline solve.
    std::vector<uint32_t> target_elems = targets.ToVector();
    std::unordered_map<uint32_t, uint32_t> reindex;
    reindex.reserve(target_elems.size() * 2);
    for (uint32_t i = 0; i < target_elems.size(); ++i) {
      reindex[target_elems[i]] = i;
    }
    ctx.tracker->Charge(2 * target_elems.size());  // ids + reindex

    SetSystem::Builder sub_builder(
        static_cast<uint32_t>(target_elems.size()));
    std::vector<uint32_t> original_ids;
    uint64_t stored_words = 0;
    ctx.stream->ForEachSet(
        [&](uint32_t id, std::span<const uint32_t> elems) {
          std::vector<uint32_t> proj;
          for (uint32_t e : elems) {
            auto it = reindex.find(e);
            if (it != reindex.end()) proj.push_back(it->second);
          }
          if (proj.empty()) return;
          stored_words += proj.size() + 1;
          ctx.tracker->Charge(proj.size() + 1);
          sub_builder.AddSet(std::move(proj));
          original_ids.push_back(id);
        });
    SetSystem sub = std::move(sub_builder).Build();
    OfflineResult offline_result = ctx.offline->Solve(sub);
    for (uint32_t sub_id : offline_result.cover.set_ids) {
      ctx.sol.set_ids.push_back(original_ids[sub_id]);
      ctx.tracker->Charge(1);
    }
    ctx.tracker->Release(stored_words);
    ctx.tracker->Release(2 * target_elems.size());
    // Mark everything coverable in the sub-instance as covered.
    DynamicBitset covered_sub = CoverageMask(sub, offline_result.cover);
    for (uint32_t i = 0; i < target_elems.size(); ++i) {
      if (covered_sub.Test(i)) targets.Reset(target_elems[i]);
    }
    // Whatever remains is uncoverable; drop it so recursion terminates.
    targets.ResetAll();
    return;
  }

  // Recursive case: sample |V| / n^delta elements (at least base_size).
  const double shrink = PowDouble(
      static_cast<double>(ctx.stream->num_elements()), ctx.options->delta);
  uint64_t sample_size = std::max<uint64_t>(
      ctx.base_size,
      static_cast<uint64_t>(static_cast<double>(remaining) / shrink));
  sample_size = std::min(sample_size, remaining - 1);

  std::vector<uint32_t> sample_elems =
      SampleFromBitset(targets, sample_size, *ctx.rng);
  DynamicBitset sample_mask(targets.size());
  for (uint32_t e : sample_elems) sample_mask.Set(e);
  ctx.tracker->Charge(sample_mask.WordCount());

  size_t sol_before = ctx.sol.set_ids.size();
  Cover(ctx, sample_mask, depth + 1);  // child 1: cover the sample
  ctx.tracker->Release(sample_mask.WordCount());
  if (ctx.failed) return;

  // One pass: remove from `targets` everything covered by the sets
  // picked by child 1 (they typically cover most of V, not just S).
  DynamicBitset picked(ctx.stream->num_sets());
  for (size_t i = sol_before; i < ctx.sol.set_ids.size(); ++i) {
    picked.Set(ctx.sol.set_ids[i]);
  }
  ctx.tracker->Charge(picked.WordCount());
  ctx.stream->ForEachSet([&](uint32_t id, std::span<const uint32_t> elems) {
    if (!picked.Test(id)) return;
    for (uint32_t e : elems) targets.Reset(e);
  });
  ctx.tracker->Release(picked.WordCount());

  Cover(ctx, targets, depth + 1);  // child 2: the residual
}

BaselineResult RunGuess(SetStream& stream, uint64_t k,
                        const Dimv14Options& options,
                        const OfflineSolver& offline, SpaceTracker& tracker,
                        Rng& rng) {
  const uint32_t n = stream.num_elements();
  const uint32_t m = stream.num_sets();
  const uint64_t passes_before = stream.passes();

  Dimv14Context ctx;
  ctx.stream = &stream;
  ctx.offline = &offline;
  ctx.options = &options;
  ctx.tracker = &tracker;
  ctx.rng = &rng;
  ctx.k = k;
  // Base case: |V| such that m * |V| = O~(m n^delta) — i.e.
  // |V| <= c * n^delta * log m * log n (no k factor; see header).
  ctx.base_size = static_cast<uint64_t>(std::ceil(
      options.sample_constant * PowDouble(static_cast<double>(n),
                                          options.delta) *
      Log2Clamped(m) * Log2Clamped(n)));
  ctx.base_size = std::max<uint64_t>(ctx.base_size, 1);

  DynamicBitset targets(n, true);
  tracker.Charge(targets.WordCount());
  Cover(ctx, targets, 0);
  tracker.Release(targets.WordCount());

  BaselineResult result;
  ctx.sol.Deduplicate();
  result.cover = std::move(ctx.sol);
  result.success = !ctx.failed;
  result.passes = stream.passes() - passes_before;
  result.space_words = tracker.peak_words();
  return result;
}

}  // namespace

BaselineResult Dimv14Cover(SetStream& stream, const Dimv14Options& options) {
  SC_CHECK(options.delta > 0.0 && options.delta <= 1.0);
  GreedySolver default_solver;
  const OfflineSolver& offline =
      options.offline != nullptr ? *options.offline : default_solver;

  // The DIMV14 scheme's k-guessing only affects sample sizing through
  // the offline solves; the pass structure is guess-independent here, so
  // a single run realizes the bound (k enters base_size only via rho in
  // the offline solver, which is instance- not guess-dependent). We still
  // report parallel-style accounting for comparability.
  SpaceTracker tracker;
  Rng rng(options.seed);
  BaselineResult result = RunGuess(stream, /*k=*/1, options, offline,
                                   tracker, rng);

  // Verify coverage claim against the stream's own metadata: the base
  // case clears uncoverable elements, so success means "covered all
  // coverable elements".
  return result;
}

}  // namespace streamcover
