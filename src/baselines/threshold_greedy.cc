#include "baselines/threshold_greedy.h"

#include <cmath>
#include <vector>

#include "stream/space_tracker.h"
#include "util/bitset.h"
#include "util/check.h"

namespace streamcover {
namespace {

// One threshold pass: takes (immediately) every set whose residual
// coverage is >= threshold, stopping acquisition once `remaining`
// reaches `allowed_uncovered` (the epsilon-Partial stop; the scan still
// finishes — a pass cannot be aborted — but nothing more is stored).
// Returns the number of sets taken; `remaining` is kept in sync.
size_t ThresholdPass(SetStream& stream, DynamicBitset& uncovered,
                     uint64_t& remaining, uint64_t allowed_uncovered,
                     double threshold, Cover& cover, SpaceTracker& tracker) {
  size_t taken = 0;
  stream.ForEachSet([&](uint32_t id, std::span<const uint32_t> elems) {
    if (remaining <= allowed_uncovered) return;
    size_t gain = 0;
    for (uint32_t e : elems) {
      if (uncovered.Test(e)) ++gain;
    }
    if (gain > 0 && static_cast<double>(gain) >= threshold) {
      cover.set_ids.push_back(id);
      tracker.Charge(1);
      for (uint32_t e : elems) uncovered.Reset(e);
      remaining -= gain;
      ++taken;
    }
  });
  return taken;
}

}  // namespace

BaselineResult ProgressiveGreedy(SetStream& stream,
                                 double coverage_fraction) {
  SC_CHECK(coverage_fraction > 0.0 && coverage_fraction <= 1.0);
  SpaceTracker tracker;
  const uint64_t passes_before = stream.passes();
  const uint32_t n = stream.num_elements();
  // n - ceil(fraction*n), epsilon-guarded (see iter_set_cover.cc).
  const uint64_t allowed_uncovered =
      n - static_cast<uint64_t>(std::ceil(
              coverage_fraction * static_cast<double>(n) - 1e-9));

  DynamicBitset uncovered(n, true);
  tracker.Charge(uncovered.WordCount());
  uint64_t remaining = n;

  BaselineResult result;
  // Thresholds n/2, n/4, ..., 1. The final threshold-1 pass takes any
  // set covering something new, so coverable elements always finish.
  for (double threshold = static_cast<double>(n) / 2.0;;
       threshold /= 2.0) {
    if (threshold < 1.0) threshold = 1.0;
    ThresholdPass(stream, uncovered, remaining, allowed_uncovered,
                  threshold, result.cover, tracker);
    if (remaining <= allowed_uncovered) break;
    if (threshold == 1.0) break;  // leftovers are uncoverable
  }

  result.success = remaining <= allowed_uncovered;
  result.passes = stream.passes() - passes_before;
  result.space_words = tracker.peak_words();
  return result;
}

BaselineResult PolynomialThresholdCover(SetStream& stream, uint32_t p,
                                        double coverage_fraction) {
  SC_CHECK_GE(p, 1u);
  SC_CHECK(coverage_fraction > 0.0 && coverage_fraction <= 1.0);
  SpaceTracker tracker;
  const uint64_t passes_before = stream.passes();
  const uint32_t n = stream.num_elements();
  // n - ceil(fraction*n), epsilon-guarded (see iter_set_cover.cc).
  const uint64_t allowed_uncovered =
      n - static_cast<uint64_t>(std::ceil(
              coverage_fraction * static_cast<double>(n) - 1e-9));
  const double dn = static_cast<double>(std::max(n, 2u));

  DynamicBitset uncovered(n, true);
  tracker.Charge(uncovered.WordCount());

  // backup[e]: some set containing e, learned during the passes (O(n)
  // words). UINT32_MAX = never seen in any set (uncoverable).
  std::vector<uint32_t> backup(n, UINT32_MAX);
  tracker.Charge(n);
  uint64_t remaining = n;

  BaselineResult result;
  for (uint32_t i = 1; i <= p; ++i) {
    double exponent =
        static_cast<double>(p + 1 - i) / static_cast<double>(p + 1);
    double threshold = std::pow(dn, exponent);
    stream.ForEachSet([&](uint32_t id, std::span<const uint32_t> elems) {
      size_t gain = 0;
      for (uint32_t e : elems) {
        if (uncovered.Test(e)) {
          ++gain;
          if (backup[e] == UINT32_MAX) backup[e] = id;
        }
      }
      if (remaining <= allowed_uncovered) return;  // partial target met
      if (gain > 0 && static_cast<double>(gain) >= threshold) {
        result.cover.set_ids.push_back(id);
        tracker.Charge(1);
        for (uint32_t e : elems) uncovered.Reset(e);
        remaining -= gain;
      }
    });
  }

  // Finish from the per-element backups — no extra pass. For the
  // epsilon-Partial variant, stop as soon as the allowance is met.
  std::vector<uint32_t> stragglers = uncovered.ToVector();
  for (uint32_t e : stragglers) {
    if (remaining <= allowed_uncovered) break;
    if (!uncovered.Test(e)) continue;  // a previous backup also had e
    if (backup[e] == UINT32_MAX) continue;  // uncoverable
    result.cover.set_ids.push_back(backup[e]);
    tracker.Charge(1);
    uncovered.Reset(e);
    --remaining;
  }
  result.cover.Deduplicate();

  // Backup sets can overlap; clearing only `e` above over-counts the
  // residual but never misses coverage, so success uses the bitset.
  result.success = uncovered.Count() <= allowed_uncovered;
  result.passes = stream.passes() - passes_before;
  result.space_words = tracker.peak_words();
  return result;
}

}  // namespace streamcover
