#include "baselines/threshold_greedy.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/mathutil.h"

namespace streamcover {
namespace {

// One threshold pass: takes (immediately) every set whose residual
// coverage is >= threshold, stopping acquisition once `remaining`
// reaches `allowed_uncovered` (the epsilon-Partial stop; the scan still
// finishes — a pass cannot be aborted — but nothing more is stored).
// Returns the number of sets taken; `remaining` is kept in sync.
size_t ThresholdPass(SetStream& stream, LiveMask& uncovered,
                     uint64_t& remaining, uint64_t allowed_uncovered,
                     double threshold, Cover& cover, SpaceTracker& tracker,
                     KernelPolicy kernel) {
  size_t taken = 0;
  stream.ForEachSet([&](const SetView& set) {
    if (remaining <= allowed_uncovered) return;
    const size_t gain = CountUncovered(set, uncovered, kernel);
    if (gain > 0 && static_cast<double>(gain) >= threshold) {
      cover.set_ids.push_back(set.id);
      tracker.Charge(1);
      MarkCovered(set, uncovered, kernel);
      remaining -= gain;
      ++taken;
    }
  });
  return taken;
}

}  // namespace

BaselineResult ProgressiveGreedy(SetStream& stream, double coverage_fraction,
                                 KernelPolicy kernel) {
  SC_CHECK(coverage_fraction > 0.0 && coverage_fraction <= 1.0);
  SpaceTracker tracker;
  const uint64_t passes_before = stream.passes();
  const uint32_t n = stream.num_elements();
  const uint64_t allowed_uncovered = AllowedUncovered(n, coverage_fraction);

  LiveMask uncovered(n, true);
  tracker.Charge(uncovered.WordCount());
  uint64_t remaining = n;

  BaselineResult result;
  // Thresholds n/2, n/4, ..., 1. The final threshold-1 pass takes any
  // set covering something new, so coverable elements always finish.
  for (double threshold = static_cast<double>(n) / 2.0;;
       threshold /= 2.0) {
    if (threshold < 1.0) threshold = 1.0;
    ThresholdPass(stream, uncovered, remaining, allowed_uncovered,
                  threshold, result.cover, tracker, kernel);
    if (remaining <= allowed_uncovered) break;
    if (threshold == 1.0) break;  // leftovers are uncoverable
  }

  result.success = remaining <= allowed_uncovered;
  result.passes = stream.passes() - passes_before;
  result.physical_scans = result.passes;
  result.space_words = tracker.peak_words();
  return result;
}

ThresholdSieveConsumer::ThresholdSieveConsumer(uint32_t n, uint32_t p,
                                               double coverage_fraction,
                                               KernelPolicy kernel)
    : p_(p),
      dn_(static_cast<double>(std::max(n, 2u))),
      kernel_(kernel),
      uncovered_(n, true),
      backup_(n, UINT32_MAX),
      remaining_(n) {
  SC_CHECK_GE(p, 1u);
  SC_CHECK(coverage_fraction > 0.0 && coverage_fraction <= 1.0);
  allowed_uncovered_ = AllowedUncovered(n, coverage_fraction);
  tracker_.Charge(uncovered_.WordCount());
  tracker_.Charge(n);  // backup[e]: some set containing e (O(n) words)
  threshold_ = std::pow(
      dn_, static_cast<double>(p_) / static_cast<double>(p_ + 1));
}

void ThresholdSieveConsumer::OnSet(const SetView& set) {
  if (done_) return;
  // The residual intersection drives both the gain test and the backup
  // pointers, so compute it once with the masked-filter kernel.
  residual_scratch_.clear();
  const size_t gain = FilterInto(set, uncovered_, residual_scratch_, kernel_);
  for (uint32_t e : residual_scratch_) {
    if (backup_[e] == UINT32_MAX) backup_[e] = set.id;
  }
  if (remaining_ <= allowed_uncovered_) return;  // partial target met
  if (gain > 0 && static_cast<double>(gain) >= threshold_) {
    sol_.set_ids.push_back(set.id);
    tracker_.Charge(1);
    for (uint32_t e : residual_scratch_) uncovered_.Reset(e);
    if (delta_scheduler_ != nullptr &&
        delta_scheduler_->has_delta_listeners()) {
      pass_delta_.insert(pass_delta_.end(), residual_scratch_.begin(),
                         residual_scratch_.end());
    }
    remaining_ -= gain;
  }
}

void ThresholdSieveConsumer::FlushPassDelta() {
  if (delta_scheduler_ == nullptr) return;
  delta_scheduler_->PublishCoverageDelta(pass_delta_);
  pass_delta_.clear();
}

void ThresholdSieveConsumer::FinishFromBackups() {
  // Finish from the per-element backups — no extra pass. For the
  // epsilon-Partial variant, stop as soon as the allowance is met.
  std::vector<uint32_t> stragglers = uncovered_.ToVector();
  for (uint32_t e : stragglers) {
    if (remaining_ <= allowed_uncovered_) break;
    if (!uncovered_.Test(e)) continue;  // a previous backup also had e
    if (backup_[e] == UINT32_MAX) continue;  // uncoverable
    sol_.set_ids.push_back(backup_[e]);
    tracker_.Charge(1);
    uncovered_.Reset(e);
    if (delta_scheduler_ != nullptr &&
        delta_scheduler_->has_delta_listeners()) {
      pass_delta_.push_back(e);
    }
    --remaining_;
  }
  sol_.Deduplicate();

  // Backup sets can overlap; clearing only `e` above over-counts the
  // residual but never misses coverage, so success uses the bitset.
  success_ = uncovered_.Count() <= allowed_uncovered_;
}

void ThresholdSieveConsumer::OnPassEnd() {
  if (done_) return;
  ++pass_index_;
  if (pass_index_ <= p_) {
    const double exponent = static_cast<double>(p_ + 1 - pass_index_) /
                            static_cast<double>(p_ + 1);
    threshold_ = std::pow(dn_, exponent);
    FlushPassDelta();  // scheduling thread: hand this pass's coverage on
    return;
  }
  FinishFromBackups();
  FlushPassDelta();
  done_ = true;
}

BaselineResult ThresholdSieveConsumer::TakeResult(uint64_t logical_passes) {
  BaselineResult result;
  result.cover = std::move(sol_);
  result.success = success_;
  result.passes = logical_passes;
  result.physical_scans = logical_passes;
  result.space_words = tracker_.peak_words();
  return result;
}

BaselineResult PolynomialThresholdCover(PassScheduler& scheduler, uint32_t p,
                                        double coverage_fraction,
                                        KernelPolicy kernel) {
  ThresholdSieveConsumer consumer(scheduler.stream().num_elements(), p,
                                  coverage_fraction, kernel);
  // Registered GainTrackers (scheduler delta bus) see every element the
  // sieve covers, batched per pass.
  consumer.PublishDeltasTo(&scheduler);
  PassScheduler::SoloRun run = scheduler.DriveToCompletion(consumer);
  BaselineResult result = consumer.TakeResult(run.logical_passes);
  result.physical_scans = run.physical_scans;
  return result;
}

BaselineResult PolynomialThresholdCover(SetStream& stream, uint32_t p,
                                        double coverage_fraction,
                                        KernelPolicy kernel) {
  PassScheduler scheduler(stream);
  return PolynomialThresholdCover(scheduler, p, coverage_fraction, kernel);
}

}  // namespace streamcover
