#include "core/solver_registry.h"

#include <algorithm>
#include <utility>

#include "baselines/dimv14.h"
#include "baselines/iterative_greedy.h"
#include "baselines/store_all_greedy.h"
#include "baselines/streaming_max_cover.h"
#include "baselines/threshold_greedy.h"
#include "core/iter_set_cover.h"
#include "geometry/geom_set_cover.h"
#include "geometry/range_space.h"
#include "offline/exact.h"
#include "offline/greedy.h"
#include "stream/space_tracker.h"

namespace streamcover {
namespace {

RunResult FromBaseline(BaselineResult r) {
  RunResult result;
  result.cover = std::move(r.cover);
  result.success = r.success;
  result.passes = r.passes;
  // The baselines run one logical instruction stream: every pass is a
  // sequential scan.
  result.sequential_scans = r.passes;
  result.space_words = r.space_words;
  return result;
}

uint64_t PeakProjectionWords(const StreamingResult& r) {
  uint64_t peak = 0;
  for (const auto& diag : r.diagnostics) {
    peak = std::max(peak, diag.projection_words);
  }
  return peak;
}

RunResult RunIterSetCover(SetStream& stream, const RunOptions& options) {
  IterSetCoverOptions opts;
  opts.delta = options.delta;
  opts.sample_constant = options.sample_constant;
  opts.offline = options.offline;
  opts.seed = options.seed;
  opts.coverage_fraction = options.coverage_fraction;
  StreamingResult r =
      options.iter_guess > 0
          ? IterSetCoverSingleGuess(stream, options.iter_guess, opts)
          : IterSetCover(stream, opts);
  RunResult result;
  result.cover = std::move(r.cover);
  result.success = r.success;
  result.passes = r.passes;
  result.sequential_scans = r.sequential_scans;
  result.space_words = r.space_words_max_guess;
  result.projection_words_peak = PeakProjectionWords(r);
  return result;
}

RunResult RunDimv14(SetStream& stream, const RunOptions& options) {
  Dimv14Options opts;
  opts.delta = options.delta;
  opts.sample_constant = options.sample_constant;
  opts.offline = options.offline;
  opts.seed = options.seed;
  return FromBaseline(Dimv14Cover(stream, opts));
}

RunResult RunStreamingMaxCover(SetStream& stream,
                               const RunOptions& options) {
  const uint32_t budget = options.max_cover_budget > 0
                              ? options.max_cover_budget
                              : stream.num_elements();
  StreamingMaxCoverResult r = StreamingMaxCover(stream, budget);
  RunResult result;
  result.cover = std::move(r.cover);
  result.success = r.covered >= stream.num_elements();
  result.passes = r.passes;
  result.sequential_scans = r.passes;
  result.space_words = r.space_words;
  return result;
}

/// Store-all wrapper turning any OfflineSolver into a one-pass
/// streaming run: buffer F (Θ(total_size) words), solve in memory.
template <typename Solver>
RunResult RunOffline(SetStream& stream, const RunOptions& /*options*/) {
  SpaceTracker tracker;
  const uint64_t passes_before = stream.passes();
  SetSystem::Builder builder(stream.num_elements());
  stream.ForEachSet([&](uint32_t /*id*/, std::span<const uint32_t> elems) {
    tracker.Charge(elems.size() + 1);
    builder.AddSet({elems.begin(), elems.end()});
  });
  SetSystem buffered = std::move(builder).Build();
  OfflineResult offline = Solver().Solve(buffered);
  tracker.Charge(offline.cover.size());

  RunResult result;
  result.cover = std::move(offline.cover);
  result.success = IsFullCover(buffered, result.cover);
  result.passes = stream.passes() - passes_before;
  result.sequential_scans = result.passes;
  result.space_words = tracker.peak_words();
  return result;
}

RunResult RunGeometric(SetStream& /*stream*/, const RunOptions& options) {
  RunResult result;
  if (options.geometry == nullptr) {
    result.error =
        "solver 'geom' needs RunOptions::geometry (points + shapes); "
        "the abstract SetStream carries no coordinates";
    return result;
  }
  ShapeStream shapes(&options.geometry->shapes);
  GeomSetCoverOptions opts;
  opts.delta = options.delta;
  opts.sample_constant = options.sample_constant;
  opts.offline = options.offline;
  opts.seed = options.seed;
  GeomStreamingResult r =
      options.iter_guess > 0
          ? AlgGeomSCSingleGuess(shapes, options.geometry->points,
                                 options.iter_guess, opts)
          : AlgGeomSC(shapes, options.geometry->points, opts);
  result.cover = std::move(r.cover);
  result.success = r.success;
  result.passes = r.passes;
  result.sequential_scans = r.sequential_scans;
  result.space_words = r.space_words_max_guess;
  return result;
}

void RegisterBuiltins(SolverRegistry& registry) {
  using Kind = SolverRegistry::Kind;
  auto add = [&](const char* name, const char* description, Kind kind,
                 SolverRegistry::Runner run) {
    registry.Register({name, description, kind, std::move(run)});
  };

  add("iter",
      "iterSetCover (Thm 2.8): 2/delta passes, O~(m n^delta) space, "
      "O(rho/delta) approx",
      Kind::kStreaming, RunIterSetCover);
  add("store_all_greedy",
      "greedy, store-all: 1 pass, O(mn) space, ln n approx",
      Kind::kStreaming,
      [](SetStream& s, const RunOptions&) {
        return FromBaseline(StoreAllGreedy(s));
      });
  add("iterative_greedy",
      "greedy, pass-per-pick: n passes, O(n) space, ln n approx",
      Kind::kStreaming,
      [](SetStream& s, const RunOptions&) {
        return FromBaseline(IterativeGreedy(s));
      });
  add("progressive_greedy",
      "[SG09] halving thresholds: O(log n) passes, O~(n) space",
      Kind::kStreaming,
      [](SetStream& s, const RunOptions& o) {
        return FromBaseline(ProgressiveGreedy(s, o.coverage_fraction));
      });
  add("threshold_greedy",
      "[ER14]/[CW16] p-pass thresholds: (p+1) n^{1/(p+1)} approx, "
      "O~(n) space",
      Kind::kStreaming,
      [](SetStream& s, const RunOptions& o) {
        return FromBaseline(PolynomialThresholdCover(s, o.threshold_passes,
                                                     o.coverage_fraction));
      });
  add("dimv14",
      "[DIMV14] recursive sampling: O(4^{1/delta}) passes, "
      "O~(m n^delta) space",
      Kind::kStreaming, RunDimv14);
  add("streaming_max_cover",
      "[SG09]-style Max k-Cover: thresholded picks under a set budget",
      Kind::kStreaming, RunStreamingMaxCover);
  add("offline_greedy",
      "offline greedy via store-all buffering: rho = ln n",
      Kind::kOffline, RunOffline<GreedySolver>);
  add("offline_exact",
      "offline branch-and-bound via store-all buffering: rho = 1 "
      "within node budget",
      Kind::kOffline, RunOffline<ExactSolver>);
  add("geom",
      "algGeomSC (Thm 4.6): O(1) passes, O~(n) space for "
      "disks/rects/fat triangles; needs RunOptions::geometry",
      Kind::kGeometric, RunGeometric);
}

}  // namespace

SolverRegistry& SolverRegistry::Global() {
  static SolverRegistry* registry = [] {
    auto* r = new SolverRegistry();
    RegisterBuiltins(*r);
    return r;
  }();
  return *registry;
}

bool SolverRegistry::Register(Entry entry) {
  if (entry.name.empty() || !entry.run) return false;
  return entries_.emplace(entry.name, std::move(entry)).second;
}

const SolverRegistry::Entry* SolverRegistry::Find(
    std::string_view name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<std::string> SolverRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

std::vector<const SolverRegistry::Entry*> SolverRegistry::Entries() const {
  std::vector<const Entry*> entries;
  entries.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) entries.push_back(&entry);
  return entries;
}

RunResult RunSolver(std::string_view name, SetStream& stream,
                    const RunOptions& options) {
  const SolverRegistry::Entry* entry = SolverRegistry::Global().Find(name);
  if (entry == nullptr) {
    RunResult result;
    result.error = "unknown solver '" + std::string(name) +
                   "'; available: ";
    bool first = true;
    for (const std::string& known : SolverRegistry::Global().Names()) {
      if (!first) result.error += ", ";
      result.error += known;
      first = false;
    }
    return result;
  }
  RunResult result = entry->run(stream, options);
  if (result.ok()) result.solver = entry->name;
  return result;
}

}  // namespace streamcover
