#include "core/solver_registry.h"

#include <algorithm>
#include <type_traits>
#include <utility>

#include "baselines/dimv14.h"
#include "baselines/iterative_greedy.h"
#include "baselines/store_all_greedy.h"
#include "baselines/streaming_max_cover.h"
#include "baselines/threshold_greedy.h"
#include "core/instance.h"
#include "core/iter_set_cover.h"
#include "geometry/geom_set_cover.h"
#include "geometry/range_space.h"
#include "offline/exact.h"
#include "offline/greedy.h"
#include "shard/sharded_greedi.h"
#include "stream/space_tracker.h"
#include "util/timer.h"

namespace streamcover {
namespace {

RunResult FromBaseline(BaselineResult r) {
  RunResult result;
  result.cover = std::move(r.cover);
  result.success = r.success;
  result.passes = r.passes;
  // Single-instruction-stream baselines leave physical_scans at 0
  // ("same as passes"); scheduler-driven ones fill it.
  result.sequential_scans = r.passes;
  result.physical_scans = r.physical_scans > 0 ? r.physical_scans : r.passes;
  result.space_words = r.space_words;
  result.gain_updates = r.gain_updates;
  result.sets_touched = r.sets_touched;
  return result;
}

uint64_t PeakProjectionWords(const StreamingResult& r) {
  uint64_t peak = 0;
  for (const auto& diag : r.diagnostics) {
    peak = std::max(peak, diag.projection_words);
  }
  return peak;
}

RunResult RunIterSetCover(RunContext& ctx) {
  IterSetCoverOptions opts;
  opts.delta = ctx.options.delta;
  opts.sample_constant = ctx.options.sample_constant;
  opts.offline = ctx.options.offline;
  opts.seed = ctx.options.seed;
  opts.coverage_fraction = ctx.options.coverage_fraction;
  opts.early_exit = ctx.options.early_exit;
  opts.kernel = ctx.options.kernel;
  StreamingResult r =
      ctx.options.iter_guess > 0
          ? IterSetCoverSingleGuess(ctx.scheduler, ctx.options.iter_guess,
                                    opts)
          : IterSetCover(ctx.scheduler, opts);
  RunResult result;
  result.cover = std::move(r.cover);
  result.success = r.success;
  result.passes = r.passes;
  result.sequential_scans = r.sequential_scans;
  result.physical_scans = r.physical_scans;
  result.space_words = r.space_words_max_guess;
  result.projection_words_peak = PeakProjectionWords(r);
  result.gain_updates = r.gain_updates;
  result.sets_touched = r.sets_touched;
  return result;
}

RunResult RunDimv14(RunContext& ctx) {
  Dimv14Options opts;
  opts.delta = ctx.options.delta;
  opts.sample_constant = ctx.options.sample_constant;
  opts.offline = ctx.options.offline;
  opts.seed = ctx.options.seed;
  opts.kernel = ctx.options.kernel;
  return FromBaseline(Dimv14Cover(ctx.scheduler, opts));
}

RunResult RunStreamingMaxCover(RunContext& ctx) {
  const uint32_t budget = ctx.options.max_cover_budget > 0
                              ? ctx.options.max_cover_budget
                              : ctx.stream.num_elements();
  StreamingMaxCoverResult r =
      StreamingMaxCover(ctx.stream, budget, ctx.options.kernel);
  RunResult result;
  result.cover = std::move(r.cover);
  result.success = r.covered >= ctx.stream.num_elements();
  result.passes = r.passes;
  result.sequential_scans = r.passes;
  result.physical_scans = r.passes;
  result.space_words = r.space_words;
  return result;
}

/// Store-all wrapper turning any OfflineSolver into a one-pass
/// streaming run: buffer F (Θ(total_size) words), solve in memory.
template <typename Solver>
RunResult RunOffline(RunContext& ctx) {
  SpaceTracker tracker;
  SetStream& stream = ctx.stream;
  const uint64_t passes_before = stream.passes();
  SetSystem::Builder builder(stream.num_elements());
  stream.ForEachSet([&](const SetView& set) {
    tracker.Charge(set.size() + 1);
    builder.AddSet(set.elems);
  });
  SetSystem buffered = std::move(builder).Build();
  OfflineResult offline;
  if constexpr (std::is_constructible_v<Solver, KernelPolicy>) {
    offline = Solver(ctx.options.kernel).Solve(buffered);
  } else {
    offline = Solver().Solve(buffered);
  }
  tracker.Charge(offline.cover.size());

  RunResult result;
  result.cover = std::move(offline.cover);
  result.success = IsFullCover(buffered, result.cover);
  result.passes = stream.passes() - passes_before;
  result.sequential_scans = result.passes;
  result.physical_scans = result.passes;
  result.space_words = tracker.peak_words();
  result.gain_updates = offline.gain_updates;
  result.sets_touched = offline.sets_touched;
  return result;
}

RunResult RunGeometric(RunContext& ctx) {
  RunResult result;
  if (ctx.geometry == nullptr) {
    result.error =
        "solver 'geom' needs an instance with a points + shapes payload; "
        "the abstract stream carries no coordinates";
    return result;
  }
  ShapeStream shapes(&ctx.geometry->shapes);
  GeomSetCoverOptions opts;
  opts.delta = ctx.options.delta;
  opts.sample_constant = ctx.options.sample_constant;
  opts.offline = ctx.options.offline;
  opts.seed = ctx.options.seed;
  GeomStreamingResult r =
      ctx.options.iter_guess > 0
          ? AlgGeomSCSingleGuess(shapes, ctx.geometry->points,
                                 ctx.options.iter_guess, opts)
          : AlgGeomSC(shapes, ctx.geometry->points, opts);
  result.cover = std::move(r.cover);
  result.success = r.success;
  result.passes = r.passes;
  result.sequential_scans = r.sequential_scans;
  // algGeomSC's guesses still scan the shape stream sequentially; its
  // repository is the payload, not the SetSource, so the shared-scan
  // collapse does not apply here yet.
  result.physical_scans = r.sequential_scans;
  result.space_words = r.space_words_max_guess;
  return result;
}

void RegisterBuiltins(SolverRegistry& registry) {
  using Kind = SolverRegistry::Kind;
  auto add = [&](const char* name, const char* description, Kind kind,
                 SolverRegistry::Runner run) {
    registry.Register({name, description, kind, std::move(run)});
  };

  add("iter",
      "iterSetCover (Thm 2.8): 2/delta passes, O~(m n^delta) space, "
      "O(rho/delta) approx",
      Kind::kStreaming, RunIterSetCover);
  add("store_all_greedy",
      "greedy, store-all: 1 pass, O(mn) space, ln n approx",
      Kind::kStreaming,
      [](RunContext& ctx) {
        return FromBaseline(
            StoreAllGreedy(ctx.stream, ctx.options.kernel));
      });
  add("iterative_greedy",
      "greedy, pass-per-pick: n passes, O(n) space, ln n approx",
      Kind::kStreaming,
      [](RunContext& ctx) {
        return FromBaseline(
            IterativeGreedy(ctx.stream, ctx.options.kernel));
      });
  add("progressive_greedy",
      "[SG09] halving thresholds: O(log n) passes, O~(n) space",
      Kind::kStreaming,
      [](RunContext& ctx) {
        return FromBaseline(ProgressiveGreedy(
            ctx.stream, ctx.options.coverage_fraction, ctx.options.kernel));
      });
  add("threshold_greedy",
      "[ER14]/[CW16] p-pass thresholds: (p+1) n^{1/(p+1)} approx, "
      "O~(n) space",
      Kind::kStreaming,
      [](RunContext& ctx) {
        return FromBaseline(PolynomialThresholdCover(
            ctx.scheduler, ctx.options.threshold_passes,
            ctx.options.coverage_fraction, ctx.options.kernel));
      });
  add("dimv14",
      "[DIMV14] recursive sampling: O(4^{1/delta}) passes, "
      "O~(m n^delta) space",
      Kind::kStreaming, RunDimv14);
  add("streaming_max_cover",
      "[SG09]-style Max k-Cover: thresholded picks under a set budget",
      Kind::kStreaming, RunStreamingMaxCover);
  add("greedi",
      "distributed-greedy reference: 1 pass, geometric gain buckets + "
      "greedy merge (sharded_greedi with one unpartitioned shard)",
      Kind::kStreaming, RunGreediReference);
  add("sharded_greedi",
      "RandGreeDI-style sharded solve: hash-partition into S substreams "
      "on one shared scan, bucket candidates per shard, greedy merge",
      Kind::kStreaming, RunShardedGreedi);
  add("offline_greedy",
      "offline greedy via store-all buffering: rho = ln n",
      Kind::kOffline, RunOffline<GreedySolver>);
  add("offline_exact",
      "offline branch-and-bound via store-all buffering: rho = 1 "
      "within node budget",
      Kind::kOffline, RunOffline<ExactSolver>);
  add("geom",
      "algGeomSC (Thm 4.6): O(1) passes, O~(n) space for "
      "disks/rects/fat triangles; needs an instance with geometry",
      Kind::kGeometric, RunGeometric);
}

std::string UnknownSolverError(std::string_view name) {
  std::string error =
      "unknown solver '" + std::string(name) + "'; available: ";
  bool first = true;
  for (const std::string& known : SolverRegistry::Global().Names()) {
    if (!first) error += ", ";
    error += known;
    first = false;
  }
  return error;
}

}  // namespace

SolverRegistry& SolverRegistry::Global() {
  static SolverRegistry* registry = [] {
    auto* r = new SolverRegistry();
    RegisterBuiltins(*r);
    return r;
  }();
  return *registry;
}

bool SolverRegistry::Register(Entry entry) {
  if (entry.name.empty() || !entry.run) return false;
  return entries_.emplace(entry.name, std::move(entry)).second;
}

const SolverRegistry::Entry* SolverRegistry::Find(
    std::string_view name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<std::string> SolverRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

std::vector<const SolverRegistry::Entry*> SolverRegistry::Entries() const {
  std::vector<const Entry*> entries;
  entries.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) entries.push_back(&entry);
  return entries;
}

namespace {

/// Shared dispatch body behind RunSolver / RunSolverShared; the two
/// differ only in where the stream comes from (`make_stream`), so every
/// validation, accounting, and failure-mapping rule below is guaranteed
/// identical between the batch CLI and the serving layer.
RunResult DispatchSolver(
    std::string_view name, const Instance& instance,
    const RunOptions& options,
    const std::function<std::optional<SetStream>(std::string*)>&
        make_stream) {
  // Shared by the paths that must not touch the instance's repository:
  // unknown names (diagnose without side effects) and geometric runs
  // (they read only the payload — never materialize the possibly
  // quadratic range space for them).
  static const SetSystem* const kEmptySystem = new SetSystem();

  const SolverRegistry::Entry* entry = SolverRegistry::Global().Find(name);
  if (entry == nullptr) {
    RunResult result;
    result.error = UnknownSolverError(name);
    return result;
  }
  // Guard the shared partial-coverage knob here, at the one dispatch
  // point every solver passes through: a fraction outside (0, 1] would
  // underflow AllowedUncovered's unsigned arithmetic into a huge
  // allowed-uncovered count (see util/mathutil.h) — reject it before
  // any solver runs.
  if (!(options.coverage_fraction > 0.0 &&
        options.coverage_fraction <= 1.0)) {
    RunResult result;
    result.error = "coverage_fraction must be in (0, 1], got " +
                   std::to_string(options.coverage_fraction);
    return result;
  }
  if (entry->kind == SolverRegistry::Kind::kGeometric) {
    if (!instance.has_geometry()) {
      RunResult result;
      result.error = "solver '" + entry->name +
                     "' is geometric but instance '" + instance.name() +
                     "' carries no points/shapes payload";
      return result;
    }
    WallTimer timer;
    SetStream stream(kEmptySystem);
    PassScheduler scheduler(stream, options.threads, options.kernel);
    RunContext ctx{stream, scheduler, instance.geometry(), options};
    RunResult result = entry->run(ctx);
    if (result.ok()) {
      result.solver = entry->name;
      result.instance = instance.name();
    }
    result.duration_ms = timer.ElapsedMillis();
    return result;
  }
  std::string stream_error;
  std::optional<SetStream> stream = make_stream(&stream_error);
  if (!stream.has_value()) {
    RunResult result;
    result.error = "cannot stream instance '" + instance.name() +
                   "': " + stream_error;
    return result;
  }
  WallTimer timer;
  stream->set_cancel(options.cancel);
  stream->set_scan_threads(options.scan_threads);
  PassScheduler scheduler(*stream, options.threads, options.kernel);
  RunContext ctx{*stream, scheduler, nullptr, options};
  RunResult result = entry->run(ctx);
  // A repository failure mid-run (file truncated or corrupted under the
  // solver) leaves the stream with a sticky error; whatever partial
  // result the solver produced is meaningless, so report the fault. A
  // fired deadline takes the same unwind path but keeps its bare error
  // code — dispatchers and serve clients match on it.
  if (!stream->error().empty()) {
    RunResult failed;
    failed.solver = entry->name;
    failed.instance = instance.name();
    failed.error = stream->error() == kDeadlineExceededError
                       ? std::string(kDeadlineExceededError)
                       : "stream failed during solve: " + stream->error();
    failed.duration_ms = timer.ElapsedMillis();
    return failed;
  }
  if (result.ok()) {
    result.solver = entry->name;
    result.instance = instance.name();
  }
  result.duration_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace

RunResult RunSolver(std::string_view name, Instance& instance,
                    const RunOptions& options) {
  return DispatchSolver(
      name, instance, options,
      [&instance](std::string*) -> std::optional<SetStream> {
        return instance.NewStream();
      });
}

RunResult RunSolverShared(std::string_view name, const Instance& instance,
                          const RunOptions& options) {
  return DispatchSolver(
      name, instance, options,
      [&instance](std::string* error) -> std::optional<SetStream> {
        return instance.NewConcurrentStream(error);
      });
}

}  // namespace streamcover
