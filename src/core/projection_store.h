// Arena-backed storage for per-iteration set projections.
//
// iterSetCover's Size-Test pass (and DIMV14's base case) stores, for
// every light set, its projection onto the live sample. The paper's
// space analysis (Lemma 2.2) charges those stored projections in
// logical words; this store keeps the physical layout columnar — all
// projections of one iteration share one bump arena, addressed by
// (set id, offset, length) refs — so the hardware pays one amortized
// append per element instead of one heap allocation per set.
//
// Life cycle per iteration (epoch):
//   mark = StageMark(); StagePush(e)...        stage while filtering
//   CommitLight(id, mark) or Abandon(mark)     keep the ref or rewind
//   ... offline solve reads refs()/Elements() ...
//   ReleaseEpoch(tracker)                      give the words back
//   ResetEpoch()                               O(1) reset, keeps capacity
//
// Accounting discipline: the store counts the logical words (elements
// + one id word per stored projection) its refs pin, and ReleaseEpoch /
// ResetEpoch CHECK that the arena, the refs, and the word watermark
// agree — a desynchronized SpaceTracker attribution aborts instead of
// silently misreporting `projection_words_peak`.

#ifndef STREAMCOVER_CORE_PROJECTION_STORE_H_
#define STREAMCOVER_CORE_PROJECTION_STORE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "stream/space_tracker.h"
#include "util/arena.h"
#include "util/check.h"

namespace streamcover {

/// Columnar (set id, projection) store with per-iteration epoch reset.
class ProjectionStore {
 public:
  /// One stored projection: `length` arena words starting at `offset`.
  struct Ref {
    uint32_t set_id = 0;
    uint32_t length = 0;
    size_t offset = 0;
  };

  /// Tail position to stage the next projection at.
  size_t StageMark() const { return arena_.size(); }

  /// Appends one element of the projection being staged.
  void StagePush(uint32_t element) { arena_.Push(element); }

  /// The staging arena itself, for kernels (util/cover_kernels.h) that
  /// filter a whole set in one call. Only valid use: appending between
  /// StageMark() and the matching CommitLight()/Abandon().
  U32Arena& staging_arena() { return arena_; }

  /// The projection staged since `mark`.
  std::span<const uint32_t> Staged(size_t mark) const {
    return arena_.TailFrom(mark);
  }

  /// Keeps the staged projection as set `set_id`'s. Counts its logical
  /// words (elements + the id word, the Lemma 2.2 charge); the caller
  /// charges its SpaceTracker by the same amount.
  void CommitLight(uint32_t set_id, size_t mark) {
    const size_t length = arena_.size() - mark;
    refs_.push_back(Ref{set_id, static_cast<uint32_t>(length), mark});
    words_ += length + 1;
  }

  /// Drops the staged projection (heavy or empty sets are not stored).
  void Abandon(size_t mark) { arena_.RewindTo(mark); }

  /// Stored projections of the current epoch, in commit order.
  const std::vector<Ref>& refs() const { return refs_; }

  std::span<const uint32_t> Elements(const Ref& ref) const {
    return arena_.SpanAt(ref.offset, ref.length);
  }

  /// Logical words currently pinned (elements + one id word per ref) —
  /// what the iteration charged its SpaceTracker for projections.
  uint64_t words() const { return words_; }

  /// Epochs completed so far (ResetEpoch calls).
  uint64_t epoch() const { return arena_.epoch(); }

  /// Releases this epoch's projection words from `tracker`, checking
  /// that the watermark attribution matches the stored content exactly.
  void ReleaseEpoch(SpaceTracker& tracker) {
    SC_CHECK_EQ(words_, arena_.size() + refs_.size());
    tracker.Release(words_);
    words_ = 0;
  }

  /// O(1) reset to an empty epoch (capacity retained). The epoch's
  /// words must have been released first: resetting the arena also
  /// resets the projection-word attribution, never strands it.
  void ResetEpoch() {
    SC_CHECK_EQ(words_, 0u);
    refs_.clear();
    arena_.ResetEpoch();
  }

 private:
  U32Arena arena_;
  std::vector<Ref> refs_;
  uint64_t words_ = 0;
};

}  // namespace streamcover

#endif  // STREAMCOVER_CORE_PROJECTION_STORE_H_
