// iterSetCover — the paper's main algorithm (Figure 1.3, Theorem 2.8).
//
// A O(1/delta)-pass, O~(m n^delta)-space, O(rho/delta)-approximation
// streaming algorithm for SetCover. Per optimal-size guess k (all powers
// of two, composed "in parallel"):
//
//   repeat 1/delta times:
//     S  <- uniform sample of the uncovered elements,
//           |S| = c * rho * k * n^delta * log m * log n     (Lemma 2.5)
//     pass 1 over F:
//       heavy set (covers >= |S|/k of the live sample)  -> take it now
//       light set -> store its projection onto the live sample
//     D  <- algOfflineSC on the sampled sub-instance; take D
//     pass 2 over F: recompute the uncovered elements
//
// Lemma 2.6: each iteration shrinks the uncovered count by ~n^delta and
// adds O(rho k) sets, so 1/delta iterations cover everything with
// O(rho k / delta) sets in 2/delta passes (Lemma 2.1) and O~(m n^delta)
// words (Lemma 2.2).
//
// Execution model: the guesses are ScanConsumer state machines
// multiplexed on a PassScheduler — pass p of every live guess is served
// by the p-th physical scan of the repository, exactly the parallel
// composition the paper's accounting assumes. `physical_scans` is what
// the repository paid; `passes` (per-guess max) and `sequential_scans`
// (per-guess sum — what the old one-guess-at-a-time implementation
// scanned) are the logical views.

#ifndef STREAMCOVER_CORE_ITER_SET_COVER_H_
#define STREAMCOVER_CORE_ITER_SET_COVER_H_

#include <cstdint>
#include <vector>

#include "offline/solver.h"
#include "setsystem/cover.h"
#include "stream/pass_scheduler.h"
#include "stream/set_stream.h"
#include "stream/space_tracker.h"
#include "util/cover_kernels.h"

namespace streamcover {

/// Tuning knobs for IterSetCover. Defaults follow Figure 1.3 with the
/// constant c made explicit (and honest at laptop scale).
struct IterSetCoverOptions {
  /// Trade-off parameter: 2/delta passes, O~(m n^delta) space.
  double delta = 0.5;
  /// The constant c in the sample size c*rho*k*n^delta*log m*log n.
  double sample_constant = 0.5;
  /// Offline solver (algOfflineSC). If null, a GreedySolver is used.
  const OfflineSolver* offline = nullptr;
  /// Seed for the element sampler.
  uint64_t seed = 1;
  /// Multiplies the Size-Test threshold |S|/k (1.0 = paper). Ablation
  /// knob for Lemma 2.3.
  double size_test_multiplier = 1.0;
  /// Section 4.2 refinement: once <= k elements remain uncovered, spend
  /// one final pass taking an arbitrary covering set per element instead
  /// of more sampling iterations.
  bool final_sweep = false;
  /// epsilon-Partial Set Cover ([ER14]/[CW16] generalization, §1): stop
  /// once at least this fraction of U is covered; `success` then means
  /// the fraction was reached. 1.0 = classic full cover.
  double coverage_fraction = 1.0;
  /// Retire a still-running guess between rounds once a completed guess
  /// already beats everything it could still produce (its deduplicated
  /// partial cover is provably no smaller than the winner's — the
  /// distinct-pick count only grows). Never changes the winning cover;
  /// shaves physical scans and makes `passes` reflect passes actually
  /// consumed. Off by default so pass accounting matches Lemma 2.1's
  /// run-to-completion reading exactly.
  bool early_exit = false;
  /// Which coverage-kernel twin runs the inner loops (Size-Test filter,
  /// residual recompute). Results are identical either way.
  KernelPolicy kernel = KernelPolicy::kWord;
};

/// Per-iteration trace of the winning guess (benches & tests).
struct IterSetCoverIterationDiag {
  uint32_t iteration = 0;
  uint64_t uncovered_before = 0;
  uint64_t uncovered_after = 0;
  uint64_t sample_size = 0;
  uint64_t heavy_picked = 0;
  uint64_t offline_picked = 0;
  uint64_t projection_words = 0;  ///< peak words of stored projections
};

/// Outcome of a streaming solve, with the accounting the paper's bounds
/// are stated in.
struct StreamingResult {
  Cover cover;
  /// True iff every element ended up covered.
  bool success = false;
  /// Passes per Lemma 2.1: the per-guess maximum (guesses run in
  /// parallel in the paper's accounting).
  uint64_t passes = 0;
  /// Logical per-guess passes summed over all guesses — what a
  /// sequential one-guess-at-a-time implementation scans.
  uint64_t sequential_scans = 0;
  /// Physical scans of the repository actually performed: one shared
  /// scan per round serves every live guess, so this collapses to
  /// `passes` (+0 rounds of overhead) instead of `sequential_scans`.
  uint64_t physical_scans = 0;
  /// Peak working memory: sum over guesses of per-guess peaks (parallel
  /// composition, Lemma 2.2's x log n factor).
  uint64_t space_words_parallel = 0;
  /// Peak working memory of the single heaviest guess.
  uint64_t space_words_max_guess = 0;
  /// The guess k that produced the returned cover.
  uint64_t winning_k = 0;
  /// Gain-maintenance accounting of the winning guess's offline solves,
  /// summed over its iterations (setsystem/transposed_index.h): O(1)
  /// gain decrements and candidate-gain evaluations. Zero when the
  /// offline solver does not report them.
  uint64_t gain_updates = 0;
  uint64_t sets_touched = 0;
  std::vector<IterSetCoverIterationDiag> diagnostics;
};

/// Runs iterSetCover with every guess multiplexed on `scheduler` (and
/// on its worker threads, if any). The returned cover is verified
/// feasible iff `success`.
StreamingResult IterSetCover(PassScheduler& scheduler,
                             const IterSetCoverOptions& options);

/// Convenience: single-threaded scheduler over `stream`.
StreamingResult IterSetCover(SetStream& stream,
                             const IterSetCoverOptions& options);

/// Runs only the single guess `k` (exposed for tests and ablations).
StreamingResult IterSetCoverSingleGuess(PassScheduler& scheduler, uint64_t k,
                                        const IterSetCoverOptions& options);
StreamingResult IterSetCoverSingleGuess(SetStream& stream, uint64_t k,
                                        const IterSetCoverOptions& options);

}  // namespace streamcover

#endif  // STREAMCOVER_CORE_ITER_SET_COVER_H_
