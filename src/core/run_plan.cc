#include "core/run_plan.h"

#include <algorithm>
#include <fstream>
#include <utility>

#include "core/instance.h"

namespace streamcover {
namespace {

void RecordError(RunCell& cell, const std::string& error) {
  ++cell.failures;
  if (std::find(cell.errors.begin(), cell.errors.end(), error) ==
      cell.errors.end()) {
    cell.errors.push_back(error);
  }
}

JsonValue StatsJson(const RunningStats& stats) {
  if (stats.count() == 0) return JsonValue();
  JsonValue out = JsonValue::Object();
  out.Set("mean", stats.mean());
  out.Set("min", stats.min());
  out.Set("max", stats.max());
  out.Set("count", static_cast<uint64_t>(stats.count()));
  return out;
}

JsonValue OptionsJson(const RunOptions& options) {
  JsonValue out = JsonValue::Object();
  out.Set("delta", options.delta);
  out.Set("sample_constant", options.sample_constant);
  out.Set("coverage_fraction", options.coverage_fraction);
  out.Set("threshold_passes",
          static_cast<uint64_t>(options.threshold_passes));
  out.Set("max_cover_budget",
          static_cast<uint64_t>(options.max_cover_budget));
  out.Set("threads", static_cast<uint64_t>(options.threads));
  out.Set("scan_threads", static_cast<uint64_t>(options.scan_threads));
  out.Set("shards", static_cast<uint64_t>(options.shards));
  out.Set("kernel", KernelPolicyName(options.kernel));
  if (options.iter_guess > 0) out.Set("iter_guess", options.iter_guess);
  if (options.early_exit) out.Set("early_exit", true);
  return out;
}

JsonValue ParamsJson(const WorkloadParams& params) {
  JsonValue out = JsonValue::Object();
  out.Set("n", static_cast<uint64_t>(params.n));
  out.Set("m", static_cast<uint64_t>(params.m));
  out.Set("k", static_cast<uint64_t>(params.k));
  out.Set("max_set_size", static_cast<uint64_t>(params.max_set_size));
  out.Set("alpha", params.alpha);
  out.Set("levels", static_cast<uint64_t>(params.levels));
  if (!params.path.empty()) out.Set("path", params.path);
  return out;
}

std::string FmtMean(const RunningStats& stats, int precision) {
  return stats.count() > 0 ? Table::Fmt(stats.mean(), precision)
                           : std::string("-");
}

}  // namespace

RunReport ExecutePlan(const RunPlan& plan, const CancelToken* cancel) {
  RunReport report;
  report.plan = plan;
  report.cells.resize(plan.workloads.size() * plan.solvers.size());
  for (size_t j = 0; j < plan.workloads.size(); ++j) {
    for (size_t i = 0; i < plan.solvers.size(); ++i) {
      RunCell& cell = report.cells[j * plan.solvers.size() + i];
      cell.solver = plan.solvers[i].DisplayLabel();
      cell.workload = plan.workloads[j].DisplayLabel();
    }
  }

  const uint32_t trials = std::max(1u, plan.trials);
  for (size_t j = 0; j < plan.workloads.size(); ++j) {
    const WorkloadSpec& workload = plan.workloads[j];
    for (uint64_t seed : plan.seeds) {
      WorkloadParams params = workload.params;
      params.seed = seed;
      std::string build_error;
      std::optional<Instance> instance =
          MakeWorkload(workload.workload, params, &build_error);
      if (!instance.has_value()) {
        for (size_t i = 0; i < plan.solvers.size(); ++i) {
          RecordError(report.cells[j * plan.solvers.size() + i],
                      build_error);
        }
        continue;
      }
      for (size_t i = 0; i < plan.solvers.size(); ++i) {
        const SolverSpec& solver = plan.solvers[i];
        RunCell& cell = report.cells[j * plan.solvers.size() + i];
        for (uint32_t trial = 0; trial < trials; ++trial) {
          // A fired token (the CLI's SIGINT path) stops the sweep at
          // the next run boundary; the partial report is still valid.
          if (cancel != nullptr && cancel->cancelled()) return report;
          RunOptions options = solver.options;
          options.seed = seed * trials + trial;
          options.cancel = cancel;
          // Each trial draws a fresh pass-counted stream inside
          // RunSolver(Instance&) — this is the structural fix for the
          // old shared-SetStream / ResetPassCount pattern.
          RunResult r = RunSolver(solver.solver, *instance, options);
          if (!r.ok()) {
            RecordError(cell, r.error);
            continue;
          }
          ++cell.runs;
          if (r.success) ++cell.successes;
          cell.cover.Add(static_cast<double>(r.cover.size()));
          // Ratio only over successful runs: a failed trial's partial
          // cover is small for the wrong reason and would understate
          // the approximation cost.
          if (r.success && instance->opt_bound() > 0) {
            cell.ratio.Add(static_cast<double>(r.cover.size()) /
                           static_cast<double>(instance->opt_bound()));
          }
          cell.passes.Add(static_cast<double>(r.passes));
          cell.sequential_scans.Add(
              static_cast<double>(r.sequential_scans));
          cell.physical_scans.Add(static_cast<double>(r.physical_scans));
          cell.space_words.Add(static_cast<double>(r.space_words));
          if (r.projection_words_peak > 0) {
            cell.projection_words.Add(
                static_cast<double>(r.projection_words_peak));
          }
          cell.duration_ms.Add(r.duration_ms);
          cell.gain_updates.Add(static_cast<double>(r.gain_updates));
          cell.sets_touched.Add(static_cast<double>(r.sets_touched));
        }
      }
    }
  }
  return report;
}

const RunCell* RunReport::FindCell(std::string_view solver_label,
                                   std::string_view workload_label) const {
  for (const RunCell& cell : cells) {
    if (cell.solver == solver_label && cell.workload == workload_label) {
      return &cell;
    }
  }
  return nullptr;
}

JsonValue RunReport::ToJson() const {
  JsonValue out = JsonValue::Object();
  out.Set("schema", "streamcover.run_report.v4");

  JsonValue solvers = JsonValue::Array();
  for (const SolverSpec& spec : plan.solvers) {
    JsonValue s = JsonValue::Object();
    s.Set("label", spec.DisplayLabel());
    s.Set("solver", spec.solver);
    s.Set("options", OptionsJson(spec.options));
    solvers.Append(std::move(s));
  }
  out.Set("solvers", std::move(solvers));

  JsonValue workloads = JsonValue::Array();
  for (const WorkloadSpec& spec : plan.workloads) {
    JsonValue w = JsonValue::Object();
    w.Set("label", spec.DisplayLabel());
    w.Set("workload", spec.workload);
    w.Set("params", ParamsJson(spec.params));
    workloads.Append(std::move(w));
  }
  out.Set("workloads", std::move(workloads));

  JsonValue seeds = JsonValue::Array();
  for (uint64_t seed : plan.seeds) seeds.Append(seed);
  out.Set("seeds", std::move(seeds));
  out.Set("trials", static_cast<uint64_t>(std::max(1u, plan.trials)));

  JsonValue cell_array = JsonValue::Array();
  for (const RunCell& cell : cells) {
    JsonValue c = JsonValue::Object();
    c.Set("solver", cell.solver);
    c.Set("workload", cell.workload);
    c.Set("runs", static_cast<uint64_t>(cell.runs));
    c.Set("failures", static_cast<uint64_t>(cell.failures));
    c.Set("successes", static_cast<uint64_t>(cell.successes));
    c.Set("cover", StatsJson(cell.cover));
    c.Set("ratio", StatsJson(cell.ratio));
    c.Set("passes", StatsJson(cell.passes));
    c.Set("sequential_scans", StatsJson(cell.sequential_scans));
    c.Set("physical_scans", StatsJson(cell.physical_scans));
    c.Set("space_words", StatsJson(cell.space_words));
    c.Set("projection_words", StatsJson(cell.projection_words));
    c.Set("duration_ms", StatsJson(cell.duration_ms));
    c.Set("gain_updates", StatsJson(cell.gain_updates));
    c.Set("sets_touched", StatsJson(cell.sets_touched));
    if (!cell.errors.empty()) {
      JsonValue errors = JsonValue::Array();
      for (const std::string& error : cell.errors) errors.Append(error);
      c.Set("errors", std::move(errors));
    }
    cell_array.Append(std::move(c));
  }
  out.Set("cells", std::move(cell_array));
  return out;
}

bool RunReport::WriteJsonFile(const std::string& path,
                              std::string* error) const {
  std::ofstream os(path);
  if (!os) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  os << ToJsonString() << "\n";
  os.flush();
  if (!os) {
    if (error != nullptr) *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

Table RunReport::SummaryTable() const {
  Table table({"workload", "solver", "cover", "cover/OPT", "passes",
               "seq scans", "phys scans", "space (words)", "ok"});
  for (const RunCell& cell : cells) {
    table.AddRow(
        {cell.workload, cell.solver, FmtMean(cell.cover, 1),
         FmtMean(cell.ratio, 2), FmtMean(cell.passes, 1),
         FmtMean(cell.sequential_scans, 1),
         FmtMean(cell.physical_scans, 1),
         cell.space_words.count() > 0
             ? Table::Fmt(static_cast<uint64_t>(cell.space_words.mean()))
             : std::string("-"),
         std::to_string(cell.successes) + "/" + std::to_string(cell.runs)});
  }
  return table;
}

}  // namespace streamcover
