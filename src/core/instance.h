// Instance — the workload half of the execution surface.
//
// SolverRegistry abstracts the solver axis of the paper's experiment
// grids; Instance abstracts the other axis. One Instance bundles
// everything a run needs about its input:
//
//   * a scannable repository of sets (in-memory CSR or an on-disk file
//     re-parsed per pass),
//   * the optional geometric payload (points + shapes) that kGeometric
//     solvers need and the abstract SetStream cannot carry,
//   * metadata: name, n, m, provenance, and a planted cover when the
//     generator knows one (the denominator of measured approximation
//     ratios).
//
// RunSolver(name, Instance&, options) — core/solver_registry.h — is the
// only way to execute a solver: it draws a FRESH pass-counted stream and
// PassScheduler per run (so multi-trial sweeps never share or manually
// reset counters) and wires the geometric payload internally. Instances
// come from the factories below or, by name, from
// core/workload_registry.h.

#ifndef STREAMCOVER_CORE_INSTANCE_H_
#define STREAMCOVER_CORE_INSTANCE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "geometry/geom_generators.h"
#include "geometry/geom_io.h"
#include "setsystem/cover.h"
#include "setsystem/generators.h"
#include "setsystem/set_system.h"
#include "stream/set_source.h"
#include "stream/set_stream.h"

namespace streamcover {

/// Descriptive metadata attached to an instance.
struct InstanceInfo {
  /// Short handle used in reports ("planted-n2000-s1", "fig12", ...).
  std::string name;
  /// Where the instance came from: generator + parameters, or a path.
  std::string provenance;
};

/// A runnable workload: stream + optional geometry + metadata. Movable,
/// not copyable (it may own large buffers or an open file source).
class Instance {
 public:
  /// Owns `system`.
  static Instance FromSystem(SetSystem system, InstanceInfo info);

  /// Owns the generated system and remembers the planted cover.
  static Instance FromPlanted(PlantedInstance planted, InstanceInfo info);

  /// Owns the geometric instance. The abstract view (for kStreaming /
  /// kOffline solvers) is the range space — set i = trace of shape i —
  /// materialized lazily on first abstract use, so geometric-only runs
  /// never pay for it (on the Figure 1.2 family it is a Theta(n^2)-set
  /// object the geometric algorithm exists to avoid).
  static Instance FromGeometry(GeomInstance geom, InstanceInfo info);

  /// File-backed: the repository stays on disk (the model's read-only
  /// repository, literally) and is scanned through whichever source its
  /// magic selects — MmapSetSource for the binary format, text re-parse
  /// otherwise (stream/mmap_set_source.h). Returns std::nullopt and
  /// fills *error if the file is missing or malformed.
  static std::optional<Instance> FromFile(const std::string& path,
                                          std::string* error);

  /// Wraps an externally owned system (must outlive the Instance) —
  /// for callers that already hold a SetSystem and only need the
  /// execution surface on top.
  static Instance WrapSystem(const SetSystem* system, InstanceInfo info);

  Instance(Instance&&) = default;
  Instance& operator=(Instance&&) = default;
  Instance(const Instance&) = delete;
  Instance& operator=(const Instance&) = delete;

  const std::string& name() const { return info_.name; }
  const std::string& provenance() const { return info_.provenance; }

  /// |U| and |F|. For geometric instances these are points / shapes.
  uint32_t num_elements() const;
  uint32_t num_sets() const;

  /// Geometric payload; nullptr for abstract instances.
  const GeomDataset* geometry() const {
    return geometry_.has_value() ? &*geometry_ : nullptr;
  }
  bool has_geometry() const { return geometry_.has_value(); }

  /// Planted feasible cover (upper bound on OPT); empty when unknown.
  const std::vector<uint32_t>& planted_cover() const {
    return planted_cover_;
  }
  /// |planted cover|, or 0 when no bound is known.
  size_t opt_bound() const { return planted_cover_.size(); }

  /// The in-memory system backing this instance, or nullptr when the
  /// repository is file-backed or a geometric payload whose range space
  /// has not been needed yet. Used by verifiers; solvers must go
  /// through NewStream().
  const SetSystem* materialized() const { return system_; }

  /// A fresh stream over the repository with its own pass counter.
  /// This is how every trial of a sweep gets independent pass
  /// accounting — never reset or share a stream across trials.
  /// For geometric instances this materializes the range space.
  SetStream NewStream();

  /// A fresh stream that is also safe to scan concurrently with other
  /// streams over this instance: file-backed repositories hand out a
  /// forked scanner (own decode buffer over the same mapped pages or
  /// file), in-memory systems an independent cursor over the shared
  /// CSR. The serving layer draws one per in-flight request. Requires
  /// Prepare() first (it is const — it will not materialize lazily).
  /// Returns std::nullopt with *error set if the repository cannot be
  /// forked.
  std::optional<SetStream> NewConcurrentStream(std::string* error) const;

  /// Forces any lazy materialization (geometric range space) so later
  /// const/concurrent access never mutates the instance. Idempotent;
  /// NewStream does this implicitly.
  void Prepare() { EnsureMaterialized(); }

  /// Resident footprint for cache byte accounting: CSR bytes when
  /// materialized in memory, plus the repository bytes (mapping or
  /// on-disk size) when file-backed.
  uint64_t resident_bytes() const;

  /// Number of elements of U covered by `cover`, via the materialized
  /// system when present, else one (uncounted) scan of the file source.
  size_t CountCovered(const Cover& cover);

  /// True iff `cover` covers every element.
  bool VerifyCover(const Cover& cover) {
    return CountCovered(cover) == num_elements();
  }

 private:
  Instance() = default;

  /// Builds the range space of a geometric payload on first abstract
  /// use (no-op otherwise).
  void EnsureMaterialized();

  InstanceInfo info_;
  std::unique_ptr<SetSystem> owned_system_;
  std::unique_ptr<SetSource> file_source_;  // disk-backed repositories
  const SetSystem* system_ = nullptr;  // owned_system_.get() or external
  std::optional<GeomDataset> geometry_;
  std::vector<uint32_t> planted_cover_;
};

}  // namespace streamcover

#endif  // STREAMCOVER_CORE_INSTANCE_H_
