#include "core/instance.h"

#include <utility>

#include "geometry/range_space.h"
#include "stream/mmap_set_source.h"
#include "util/check.h"

namespace streamcover {

Instance Instance::FromSystem(SetSystem system, InstanceInfo info) {
  Instance instance;
  instance.info_ = std::move(info);
  instance.owned_system_ = std::make_unique<SetSystem>(std::move(system));
  instance.system_ = instance.owned_system_.get();
  return instance;
}

Instance Instance::FromPlanted(PlantedInstance planted, InstanceInfo info) {
  Instance instance = FromSystem(std::move(planted.system), std::move(info));
  instance.planted_cover_ = std::move(planted.planted_cover);
  return instance;
}

Instance Instance::FromGeometry(GeomInstance geom, InstanceInfo info) {
  Instance instance;
  instance.info_ = std::move(info);
  instance.geometry_ =
      GeomDataset{std::move(geom.points), std::move(geom.shapes)};
  instance.planted_cover_ = std::move(geom.planted_cover);
  return instance;
}

void Instance::EnsureMaterialized() {
  if (system_ != nullptr || !geometry_.has_value()) return;
  // Abstract solvers stream the range space — set i = trace of shape
  // i — the same ground truth the geometric solver sees through the
  // payload. Built on first demand: it can be quadratically larger
  // than the payload (Figure 1.2), and geometric-only runs never
  // touch it.
  owned_system_ = std::make_unique<SetSystem>(
      BuildRangeSpace(geometry_->points, geometry_->shapes));
  system_ = owned_system_.get();
}

std::optional<Instance> Instance::FromFile(const std::string& path,
                                           std::string* error) {
  std::unique_ptr<SetSource> source = OpenDiskSetSource(path, error);
  if (source == nullptr) return std::nullopt;
  Instance instance;
  instance.info_.name = path;
  instance.info_.provenance = "file:" + path;
  instance.file_source_ = std::move(source);
  return instance;
}

Instance Instance::WrapSystem(const SetSystem* system, InstanceInfo info) {
  SC_CHECK(system != nullptr);
  Instance instance;
  instance.info_ = std::move(info);
  instance.system_ = system;
  return instance;
}

uint32_t Instance::num_elements() const {
  if (file_source_ != nullptr) return file_source_->num_elements();
  if (system_ != nullptr) return system_->num_elements();
  if (geometry_.has_value()) {
    return static_cast<uint32_t>(geometry_->points.size());
  }
  return 0;
}

uint32_t Instance::num_sets() const {
  if (file_source_ != nullptr) return file_source_->num_sets();
  if (system_ != nullptr) return system_->num_sets();
  if (geometry_.has_value()) {
    return static_cast<uint32_t>(geometry_->shapes.size());
  }
  return 0;
}

SetStream Instance::NewStream() {
  if (file_source_ != nullptr) return SetStream(file_source_.get());
  EnsureMaterialized();
  SC_CHECK(system_ != nullptr);
  return SetStream(system_);
}

std::optional<SetStream> Instance::NewConcurrentStream(
    std::string* error) const {
  if (file_source_ != nullptr) {
    std::unique_ptr<SetSource> fork = file_source_->Fork(error);
    if (fork == nullptr) return std::nullopt;
    return SetStream(std::move(fork));
  }
  if (system_ == nullptr) {
    // Deliberately no lazy materialization here: this accessor is const
    // so concurrent callers never race on it. Prepare() first.
    if (error != nullptr) {
      *error = "instance not prepared for concurrent streaming";
    }
    return std::nullopt;
  }
  return SetStream(std::make_unique<InMemorySetSource>(system_));
}

uint64_t Instance::resident_bytes() const {
  uint64_t bytes = 0;
  if (system_ != nullptr) bytes += system_->MemoryBytes();
  if (const auto* mmap_source =
          dynamic_cast<const MmapSetSource*>(file_source_.get())) {
    bytes += mmap_source->repository_bytes();
  } else if (const auto* file_source =
                 dynamic_cast<const FileSetSource*>(file_source_.get())) {
    bytes += file_source->repository_bytes();
  }
  if (geometry_.has_value()) {
    bytes += static_cast<uint64_t>(geometry_->points.size()) *
                 sizeof(geometry_->points[0]) +
             static_cast<uint64_t>(geometry_->shapes.size()) *
                 sizeof(geometry_->shapes[0]);
  }
  return bytes;
}

size_t Instance::CountCovered(const Cover& cover) {
  if (file_source_ == nullptr) {
    EnsureMaterialized();
    SC_CHECK(system_ != nullptr);
    return CoveredCount(*system_, cover);
  }
  // One counting scan over the file source. It deliberately bypasses
  // SetStream: verification is the experimenter's step, not a pass the
  // algorithm is charged for.
  std::vector<char> in_cover(file_source_->num_sets(), 0);
  for (uint32_t id : cover.set_ids) {
    if (id < in_cover.size()) in_cover[id] = 1;
  }
  std::vector<char> covered(file_source_->num_elements(), 0);
  bool ok = file_source_->Scan([&](const SetView& set) {
    if (set.id >= in_cover.size() || in_cover[set.id] == 0) return;
    for (uint32_t e : set.elems) covered[e] = 1;
  });
  // A repository that fails mid-count verifies nothing.
  if (!ok) return 0;
  size_t count = 0;
  for (char c : covered) count += static_cast<size_t>(c);
  return count;
}

}  // namespace streamcover
