// SolverRegistry — the single uniform entry point to every set cover
// algorithm in the library.
//
// Each algorithm (iterSetCover, the Figure 1.1 baselines, the offline
// solvers run in store-all mode, and algGeomSC) registers under a stable
// name; RunSolver(name, stream, options) dispatches to it and reports
// cover size, pass count, and peak space in one uniform RunResult.
// Tools, benches, and tests drive algorithms exclusively through this
// seam, so new workloads and benchmarks never touch individual solver
// call signatures.
//
// Unknown names fail cleanly: RunSolver returns a RunResult with ok()
// false and a diagnostic in `error` (no aborts, no exceptions).

#ifndef STREAMCOVER_CORE_SOLVER_REGISTRY_H_
#define STREAMCOVER_CORE_SOLVER_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "geometry/geom_io.h"
#include "offline/solver.h"
#include "setsystem/cover.h"
#include "stream/set_stream.h"

namespace streamcover {

/// Uniform tuning knobs. Each solver reads the subset it understands and
/// ignores the rest, so one options struct can drive a whole sweep.
struct RunOptions {
  /// Trade-off parameter for iterSetCover / DIMV14 / algGeomSC.
  double delta = 0.5;
  /// Sample-size constant c (honest-at-laptop-scale default).
  double sample_constant = 0.05;
  /// Seed for every randomized solver.
  uint64_t seed = 1;
  /// epsilon-Partial Set Cover target; 1.0 = classic full cover.
  double coverage_fraction = 1.0;
  /// p for PolynomialThresholdCover ([ER14] p=1, [CW16] p>=1).
  uint32_t threshold_passes = 2;
  /// Pick budget for streaming_max_cover; 0 means |U| (always enough
  /// for a full cover when one exists).
  uint32_t max_cover_budget = 0;
  /// Offline solver (algOfflineSC) for the sampling algorithms;
  /// null => greedy.
  const OfflineSolver* offline = nullptr;
  /// Geometric payload, required by kind kGeometric solvers (the
  /// abstract SetStream carries no coordinates). Not owned.
  const GeomDataset* geometry = nullptr;
};

/// Uniform outcome: the cover plus the accounting columns of Figure 1.1.
struct RunResult {
  /// Resolved solver name (empty if dispatch failed).
  std::string solver;
  Cover cover;
  /// True iff the solver reports a complete cover (or the requested
  /// coverage fraction) was achieved.
  bool success = false;
  /// Sequential scans of the stream (per-guess max for parallel-guess
  /// algorithms, matching the paper's accounting).
  uint64_t passes = 0;
  /// Peak retained 64-bit words.
  uint64_t space_words = 0;
  /// Non-empty iff the run could not be dispatched (unknown solver,
  /// missing geometry payload, ...). When set, all other fields are
  /// default-initialized.
  std::string error;

  bool ok() const { return error.empty(); }
};

/// Name-keyed solver directory. Thread-compatible: registration happens
/// at startup (or test setup); concurrent lookups afterwards are safe.
class SolverRegistry {
 public:
  /// Coarse classification, used by drivers to select sweep subsets.
  enum class Kind {
    kStreaming,  ///< reads F only through SetStream passes
    kOffline,    ///< buffers the stream, then solves in memory
    kGeometric,  ///< needs RunOptions::geometry; ignores the SetStream
  };

  using Runner = std::function<RunResult(SetStream&, const RunOptions&)>;

  struct Entry {
    std::string name;
    std::string description;  ///< one line: bounds / Figure 1.1 row
    Kind kind = Kind::kStreaming;
    Runner run;
  };

  /// The process-wide registry, with every built-in solver
  /// pre-registered on first use.
  static SolverRegistry& Global();

  /// Registers a solver. Returns false (and leaves the registry
  /// unchanged) if the name is already taken or the entry has no runner.
  bool Register(Entry entry);

  /// Entry for `name`, or nullptr.
  const Entry* Find(std::string_view name) const;

  bool Contains(std::string_view name) const { return Find(name) != nullptr; }

  /// All registered names, sorted ascending.
  std::vector<std::string> Names() const;

  /// All entries, sorted by name.
  std::vector<const Entry*> Entries() const;

  size_t size() const { return entries_.size(); }

 private:
  std::map<std::string, Entry, std::less<>> entries_;
};

/// Dispatches to `name` in the global registry. Unknown names (and
/// geometric solvers invoked without RunOptions::geometry) come back
/// with ok() == false and a diagnostic in `error`.
RunResult RunSolver(std::string_view name, SetStream& stream,
                    const RunOptions& options = {});

}  // namespace streamcover

#endif  // STREAMCOVER_CORE_SOLVER_REGISTRY_H_
