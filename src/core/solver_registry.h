// SolverRegistry — the single uniform entry point to every set cover
// algorithm in the library.
//
// Each algorithm (iterSetCover, the Figure 1.1 baselines, the offline
// solvers run in store-all mode, and algGeomSC) registers under a stable
// name; RunSolver(name, instance, options) dispatches to it and reports
// cover size, pass count, physical scan count, and peak space in one
// uniform RunResult. Tools, benches, and tests drive algorithms
// exclusively through this seam, so new workloads and benchmarks never
// touch individual solver call signatures.
//
// Runners receive a RunContext: the pass-counted stream, a PassScheduler
// over it (pre-sized with RunOptions::threads), and — for geometric
// solvers — the instance's points/shapes payload. Multi-branch solvers
// (iterSetCover's guesses, DIMV14, the threshold sieve) register
// ScanConsumers with the scheduler so one physical scan serves every
// branch; single-branch solvers may drive the stream directly.
//
// Unknown names fail cleanly: RunSolver returns a RunResult with ok()
// false and a diagnostic in `error` (no aborts, no exceptions).

#ifndef STREAMCOVER_CORE_SOLVER_REGISTRY_H_
#define STREAMCOVER_CORE_SOLVER_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "geometry/geom_io.h"
#include "offline/solver.h"
#include "setsystem/cover.h"
#include "stream/pass_scheduler.h"
#include "stream/set_stream.h"
#include "util/cancel_token.h"
#include "util/cover_kernels.h"

namespace streamcover {

class Instance;

/// Uniform tuning knobs. Each solver reads the subset it understands and
/// ignores the rest, so one options struct can drive a whole sweep.
struct RunOptions {
  /// Trade-off parameter for iterSetCover / DIMV14 / algGeomSC.
  double delta = 0.5;
  /// Sample-size constant c in c*rho*k*n^delta*log m*log n. The library
  /// default is the Figure 1.3 constant 0.5 (asserted equal to
  /// IterSetCoverOptions / GeomSetCoverOptions in solver_registry_test);
  /// benches pass a smaller c explicitly to stay honest at laptop scale.
  double sample_constant = 0.5;
  /// Seed for every randomized solver.
  uint64_t seed = 1;
  /// epsilon-Partial Set Cover target; 1.0 = classic full cover.
  double coverage_fraction = 1.0;
  /// p for PolynomialThresholdCover ([ER14] p=1, [CW16] p>=1).
  uint32_t threshold_passes = 2;
  /// Pick budget for streaming_max_cover; 0 means |U| (always enough
  /// for a full cover when one exists).
  uint32_t max_cover_budget = 0;
  /// If nonzero, iterSetCover / algGeomSC run only this single optimum
  /// guess k instead of all parallel guesses — the space-probe mode of
  /// the trade-off benches (IterSetCoverSingleGuess through the
  /// registry). 0 = normal parallel-guess run.
  uint64_t iter_guess = 0;
  /// Worker threads for the shared-scan PassScheduler; <= 1 dispatches
  /// inline. Results are bit-identical at every thread count.
  uint32_t threads = 1;
  /// Decode workers for the pipelined binary-disk scan
  /// (stream/pipelined_scan.h): <= 1 keeps the serial decode loop,
  /// larger values overlap chunked varint decode with dispatch on
  /// mmap-backed instances. Text and in-memory repositories ignore it.
  /// Results are bit-identical at every value.
  uint32_t scan_threads = 1;
  /// iterSetCover: retire guesses that provably cannot beat a completed
  /// winner (never changes the winning cover; shaves physical scans and
  /// makes `passes` reflect passes actually consumed).
  bool early_exit = false;
  /// Shard count for the sharded_greedi family: the stream is
  /// hash-partitioned into this many substreams, each solved by its own
  /// bucket engine on the shared scan, then merged (src/shard/). Other
  /// solvers ignore it. Must be >= 1; shards == 1 is byte-identical to
  /// the unsharded `greedi` reference.
  uint32_t shards = 1;
  /// Coverage-kernel twin for every solver's inner loop and the
  /// scheduler's batch prefilter (util/cover_kernels.h). `word` is the
  /// 64-elements-per-mask-word path; `scalar` is the per-element
  /// reference loop. Covers, passes, and space are identical either
  /// way — only throughput changes.
  KernelPolicy kernel = KernelPolicy::kWord;
  /// Offline solver (algOfflineSC) for the sampling algorithms;
  /// null => greedy.
  const OfflineSolver* offline = nullptr;
  /// Cooperative cancellation for deadline-bounded serving: when set,
  /// every scan of the run's stream polls it at batch granularity and a
  /// fired token unwinds the run through the stream-failure contract,
  /// surfacing RunResult.error == kDeadlineExceededError. Must outlive
  /// the run. nullptr (default) = uncancellable. Geometric solvers
  /// stream the shape payload, not a SetSource, and are not yet
  /// covered.
  const CancelToken* cancel = nullptr;
};

/// Everything a runner needs for one dispatch. Built by
/// RunSolver(name, Instance&, options); runners never construct one.
struct RunContext {
  /// Pass-counted stream over the instance's repository (fresh per run).
  SetStream& stream;
  /// Shared-scan executor over `stream`, pre-sized with
  /// RunOptions::threads. stream.passes() counts its physical scans.
  PassScheduler& scheduler;
  /// Points/shapes payload for kGeometric solvers; nullptr otherwise.
  const GeomDataset* geometry = nullptr;
  const RunOptions& options;
};

/// Per-shard accounting from a sharded_greedi run (src/shard/). One row
/// per shard engine, in shard order.
struct ShardStat {
  uint32_t shard = 0;
  uint64_t sets_seen = 0;   ///< substream size the partitioner routed here
  uint64_t candidates = 0;  ///< unique candidate sets handed to the merge
  uint64_t inserts = 0;     ///< bucket acceptances (>= candidates)
  uint64_t work_items = 0;  ///< elements pushed through the bucket kernels
};

/// Merge-stage accounting from a sharded_greedi run.
struct MergeStat {
  uint64_t candidates = 0;          ///< candidate union size after dedup
  uint64_t duplicates_dropped = 0;  ///< repeated ids dropped at insertion
  uint64_t picked = 0;              ///< sets the greedy merge selected
  double duration_ms = 0;           ///< merge wall-clock (excl. the scan)
};

/// Uniform outcome: the cover plus the accounting columns of Figure 1.1.
struct RunResult {
  /// Resolved solver name (empty if dispatch failed).
  std::string solver;
  /// Name of the Instance the run executed on.
  std::string instance;
  Cover cover;
  /// True iff the solver reports a complete cover (or the requested
  /// coverage fraction) was achieved.
  bool success = false;
  /// Passes in the paper's accounting: per-guess max for parallel-guess
  /// algorithms.
  uint64_t passes = 0;
  /// Logical per-branch passes summed over all branches — what a
  /// sequential one-branch-at-a-time implementation would scan. Equals
  /// `passes` for single-branch algorithms.
  uint64_t sequential_scans = 0;
  /// Physical scans of the repository actually performed. With the
  /// shared-scan scheduler this collapses to `passes` for iterSetCover
  /// instead of the old `sequential_scans ≈ guesses × passes` blow-up.
  uint64_t physical_scans = 0;
  /// Peak retained 64-bit words.
  uint64_t space_words = 0;
  /// Peak stored-projection words across iterations (Lemma 2.2's
  /// O~(m n^delta) object). Only iterSetCover-family solvers report it;
  /// 0 elsewhere.
  uint64_t projection_words_peak = 0;
  /// Wall-clock time of the dispatched run in milliseconds (util/timer).
  /// Filled for every dispatched run, successful or not; 0 only when
  /// dispatch itself failed (unknown solver, bad options).
  double duration_ms = 0;
  /// Gain-maintenance accounting for solvers that keep residual gains
  /// (the greedy family: sharded merge, store_all_greedy,
  /// offline_greedy, iterSetCover's per-guess solves). `gain_updates`
  /// counts O(1) transposed-index gain decrements; `sets_touched`
  /// counts candidate-gain evaluations (heap inspections / rescans).
  /// Zero for solvers without a gain-maintenance loop.
  uint64_t gain_updates = 0;
  uint64_t sets_touched = 0;
  /// Sharded-solver extras: empty for every other solver family.
  std::vector<ShardStat> shard_stats;
  MergeStat merge_stats;
  /// Non-empty iff the run could not be dispatched (unknown solver,
  /// missing geometry payload, ...). When set, all other fields are
  /// default-initialized.
  std::string error;

  bool ok() const { return error.empty(); }
};

/// Name-keyed solver directory. Thread-compatible: registration happens
/// at startup (or test setup); concurrent lookups afterwards are safe.
class SolverRegistry {
 public:
  /// Coarse classification, used by drivers to select sweep subsets.
  enum class Kind {
    kStreaming,  ///< reads F only through scheduler/stream passes
    kOffline,    ///< buffers the stream, then solves in memory
    kGeometric,  ///< needs RunContext::geometry; ignores the stream
  };

  using Runner = std::function<RunResult(RunContext&)>;

  struct Entry {
    std::string name;
    std::string description;  ///< one line: bounds / Figure 1.1 row
    Kind kind = Kind::kStreaming;
    Runner run;
  };

  /// The process-wide registry, with every built-in solver
  /// pre-registered on first use.
  static SolverRegistry& Global();

  /// Registers a solver. Returns false (and leaves the registry
  /// unchanged) if the name is already taken or the entry has no runner.
  bool Register(Entry entry);

  /// Entry for `name`, or nullptr.
  const Entry* Find(std::string_view name) const;

  bool Contains(std::string_view name) const { return Find(name) != nullptr; }

  /// All registered names, sorted ascending.
  std::vector<std::string> Names() const;

  /// All entries, sorted by name.
  std::vector<const Entry*> Entries() const;

  size_t size() const { return entries_.size(); }

 private:
  std::map<std::string, Entry, std::less<>> entries_;
};

/// Canonical (and only) entry point: dispatches to `name` on `instance`,
/// which supplies the stream, a fresh per-run pass counter and
/// scheduler, and — for geometric solvers — the points/shapes payload.
/// Unknown names and geometric solvers on instances without geometry
/// come back with ok() == false and a diagnostic in `error`.
RunResult RunSolver(std::string_view name, Instance& instance,
                    const RunOptions& options = {});

/// Concurrency-safe variant for the serving layer: identical dispatch,
/// but the stream comes from Instance::NewConcurrentStream — an
/// independent forked scanner over the shared immutable repository — so
/// any number of RunSolverShared calls may execute simultaneously
/// against one Instance. The instance must be Prepare()d (RunSolver and
/// NewStream do this implicitly; a cache does it at load). Never
/// mutates the instance.
RunResult RunSolverShared(std::string_view name, const Instance& instance,
                          const RunOptions& options = {});

}  // namespace streamcover

#endif  // STREAMCOVER_CORE_SOLVER_REGISTRY_H_
