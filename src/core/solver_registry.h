// SolverRegistry — the single uniform entry point to every set cover
// algorithm in the library.
//
// Each algorithm (iterSetCover, the Figure 1.1 baselines, the offline
// solvers run in store-all mode, and algGeomSC) registers under a stable
// name; RunSolver(name, stream, options) dispatches to it and reports
// cover size, pass count, and peak space in one uniform RunResult.
// Tools, benches, and tests drive algorithms exclusively through this
// seam, so new workloads and benchmarks never touch individual solver
// call signatures.
//
// Unknown names fail cleanly: RunSolver returns a RunResult with ok()
// false and a diagnostic in `error` (no aborts, no exceptions).

#ifndef STREAMCOVER_CORE_SOLVER_REGISTRY_H_
#define STREAMCOVER_CORE_SOLVER_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "geometry/geom_io.h"
#include "offline/solver.h"
#include "setsystem/cover.h"
#include "stream/set_stream.h"

namespace streamcover {

class Instance;

/// Uniform tuning knobs. Each solver reads the subset it understands and
/// ignores the rest, so one options struct can drive a whole sweep.
struct RunOptions {
  /// Trade-off parameter for iterSetCover / DIMV14 / algGeomSC.
  double delta = 0.5;
  /// Sample-size constant c in c*rho*k*n^delta*log m*log n. The library
  /// default is the Figure 1.3 constant 0.5 (asserted equal to
  /// IterSetCoverOptions / GeomSetCoverOptions in solver_registry_test);
  /// benches pass a smaller c explicitly to stay honest at laptop scale.
  double sample_constant = 0.5;
  /// Seed for every randomized solver.
  uint64_t seed = 1;
  /// epsilon-Partial Set Cover target; 1.0 = classic full cover.
  double coverage_fraction = 1.0;
  /// p for PolynomialThresholdCover ([ER14] p=1, [CW16] p>=1).
  uint32_t threshold_passes = 2;
  /// Pick budget for streaming_max_cover; 0 means |U| (always enough
  /// for a full cover when one exists).
  uint32_t max_cover_budget = 0;
  /// If nonzero, iterSetCover / algGeomSC run only this single optimum
  /// guess k instead of all parallel guesses — the space-probe mode of
  /// the trade-off benches (IterSetCoverSingleGuess through the
  /// registry). 0 = normal parallel-guess run.
  uint64_t iter_guess = 0;
  /// Offline solver (algOfflineSC) for the sampling algorithms;
  /// null => greedy.
  const OfflineSolver* offline = nullptr;
  /// DEPRECATED — internal. Filled by RunSolver(name, Instance&, ...)
  /// from the instance's geometric payload; external callers must route
  /// geometry through core/instance.h instead of setting this field.
  /// Will be removed once the SetStream overload goes away.
  const GeomDataset* geometry = nullptr;
};

/// Uniform outcome: the cover plus the accounting columns of Figure 1.1.
struct RunResult {
  /// Resolved solver name (empty if dispatch failed).
  std::string solver;
  /// Name of the Instance the run executed on (empty for the bare
  /// SetStream overload).
  std::string instance;
  Cover cover;
  /// True iff the solver reports a complete cover (or the requested
  /// coverage fraction) was achieved.
  bool success = false;
  /// Passes in the paper's accounting: per-guess max for parallel-guess
  /// algorithms.
  uint64_t passes = 0;
  /// Stream scans this (sequential) implementation actually performed,
  /// summed over all guesses. Equals `passes` for single-guess
  /// algorithms; quantifies the sharding/batching gap for iterSetCover
  /// and algGeomSC.
  uint64_t sequential_scans = 0;
  /// Peak retained 64-bit words.
  uint64_t space_words = 0;
  /// Peak stored-projection words across iterations (Lemma 2.2's
  /// O~(m n^delta) object). Only iterSetCover-family solvers report it;
  /// 0 elsewhere.
  uint64_t projection_words_peak = 0;
  /// Non-empty iff the run could not be dispatched (unknown solver,
  /// missing geometry payload, ...). When set, all other fields are
  /// default-initialized.
  std::string error;

  bool ok() const { return error.empty(); }
};

/// Name-keyed solver directory. Thread-compatible: registration happens
/// at startup (or test setup); concurrent lookups afterwards are safe.
class SolverRegistry {
 public:
  /// Coarse classification, used by drivers to select sweep subsets.
  enum class Kind {
    kStreaming,  ///< reads F only through SetStream passes
    kOffline,    ///< buffers the stream, then solves in memory
    kGeometric,  ///< needs RunOptions::geometry; ignores the SetStream
  };

  using Runner = std::function<RunResult(SetStream&, const RunOptions&)>;

  struct Entry {
    std::string name;
    std::string description;  ///< one line: bounds / Figure 1.1 row
    Kind kind = Kind::kStreaming;
    Runner run;
  };

  /// The process-wide registry, with every built-in solver
  /// pre-registered on first use.
  static SolverRegistry& Global();

  /// Registers a solver. Returns false (and leaves the registry
  /// unchanged) if the name is already taken or the entry has no runner.
  bool Register(Entry entry);

  /// Entry for `name`, or nullptr.
  const Entry* Find(std::string_view name) const;

  bool Contains(std::string_view name) const { return Find(name) != nullptr; }

  /// All registered names, sorted ascending.
  std::vector<std::string> Names() const;

  /// All entries, sorted by name.
  std::vector<const Entry*> Entries() const;

  size_t size() const { return entries_.size(); }

 private:
  std::map<std::string, Entry, std::less<>> entries_;
};

/// Canonical entry point: dispatches to `name` on `instance` (which
/// supplies the stream, a fresh per-run pass counter, and — for
/// geometric solvers — the points/shapes payload). Unknown names and
/// geometric solvers on instances without geometry come back with
/// ok() == false and a diagnostic in `error`. Defined in
/// core/instance.cc.
RunResult RunSolver(std::string_view name, Instance& instance,
                    const RunOptions& options = {});

/// DEPRECATED thin overload kept for one PR: dispatches on a bare
/// stream. Geometric solvers only work here if the caller smuggles a
/// payload through RunOptions::geometry; prefer the Instance overload.
RunResult RunSolver(std::string_view name, SetStream& stream,
                    const RunOptions& options = {});

}  // namespace streamcover

#endif  // STREAMCOVER_CORE_SOLVER_REGISTRY_H_
