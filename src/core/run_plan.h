// RunPlan / RunReport — grid execution over the two registries.
//
// The paper's figures are (solver × instance × parameter) grids; this
// layer executes them as data: a RunPlan names solver configurations
// (SolverSpec = registry name + RunOptions) and workload configurations
// (WorkloadSpec = registry name + WorkloadParams), plus the seeds and
// per-seed trial count. ExecutePlan crosses the axes, draws a fresh
// pass-counted stream per trial from the Instance (no shared or
// manually reset counters), and aggregates mean/min/max of cover size,
// cover/OPT ratio (when the workload plants a bound), passes,
// sequential_scans, physical_scans, space words, and wall-clock
// duration_ms into a RunReport that serializes to JSON (util/json.h,
// schema streamcover.run_report.v4) for the perf trajectory and
// external tooling.
//
// Determinism: instances are generated once per (workload, seed) with
// the plan seed; trial t of plan seed s runs the solver with seed
// s * trials + t. Re-executing the same plan reproduces every
// algorithmic cell bit-for-bit; only the measured duration_ms stats
// vary between executions.

#ifndef STREAMCOVER_CORE_RUN_PLAN_H_
#define STREAMCOVER_CORE_RUN_PLAN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/solver_registry.h"
#include "core/workload_registry.h"
#include "util/json.h"
#include "util/stats.h"
#include "util/table.h"

namespace streamcover {

/// One solver configuration (a row of the grid). The same registry name
/// may appear under several labels with different options — that is how
/// delta sweeps and single-guess space probes are expressed.
struct SolverSpec {
  std::string solver;  ///< SolverRegistry name
  std::string label;   ///< report label; defaults to `solver` when empty
  RunOptions options;

  const std::string& DisplayLabel() const {
    return label.empty() ? solver : label;
  }
};

/// One workload configuration (a column of the grid). `params.seed` is
/// overridden by the plan's seed axis.
struct WorkloadSpec {
  std::string workload;  ///< WorkloadRegistry name
  std::string label;     ///< report label; defaults to `workload`
  WorkloadParams params;

  const std::string& DisplayLabel() const {
    return label.empty() ? workload : label;
  }
};

/// The full grid: solvers × workloads × seeds × trials.
struct RunPlan {
  std::vector<SolverSpec> solvers;
  std::vector<WorkloadSpec> workloads;
  /// Each seed regenerates every generated workload; fixed workloads
  /// (file, deterministic families) are rebuilt but identical.
  std::vector<uint64_t> seeds = {1};
  /// Solver repetitions per (workload, seed) with derived solver seeds.
  uint32_t trials = 1;
};

/// Aggregates for one (solver, workload) cell over all seeds × trials.
struct RunCell {
  std::string solver;    ///< SolverSpec display label
  std::string workload;  ///< WorkloadSpec display label
  uint32_t runs = 0;       ///< dispatched runs that returned ok()
  uint32_t failures = 0;   ///< dispatch failures (error set)
  uint32_t successes = 0;  ///< ok() runs that reported a full cover
  RunningStats cover;
  /// cover / planted bound over SUCCESSFUL runs; only populated when
  /// the workload knows OPT.
  RunningStats ratio;
  RunningStats passes;
  RunningStats sequential_scans;
  /// Physical scans of the repository — the shared-scan scheduler's
  /// column; ≈ passes for multiplexed solvers, far below
  /// sequential_scans.
  RunningStats physical_scans;
  RunningStats space_words;
  /// Peak stored-projection words (iterSetCover-family solvers only).
  RunningStats projection_words;
  /// Wall-clock run time (RunResult::duration_ms) — the same field the
  /// serve histograms and bench_serve consume.
  RunningStats duration_ms;
  /// Gain-maintenance counters (RunResult::gain_updates /
  /// ::sets_touched), recorded for every ok() run — zero-valued for
  /// solvers without a gain loop, so the v4 JSON fields are always
  /// present.
  RunningStats gain_updates;
  RunningStats sets_touched;
  /// Distinct error strings seen (dispatch failures, build failures).
  std::vector<std::string> errors;
};

/// The executed grid. Cells are workload-major: for workload j and
/// solver i, cells[j * solvers + i].
struct RunReport {
  RunPlan plan;  ///< echo of what was executed
  std::vector<RunCell> cells;

  /// Cell by display labels, or nullptr.
  const RunCell* FindCell(std::string_view solver_label,
                          std::string_view workload_label) const;

  /// Full report as a JSON document (schema
  /// "streamcover.run_report.v4": v3 + per-cell "gain_updates" /
  /// "sets_touched" stats).
  JsonValue ToJson() const;

  /// Pretty-printed ToJson().
  std::string ToJsonString() const { return ToJson().Dump(2); }

  /// Writes ToJsonString() to `path`; false + *error on IO failure.
  bool WriteJsonFile(const std::string& path,
                     std::string* error = nullptr) const;

  /// One markdown row per cell: workload | solver | cover | ratio |
  /// passes | seq scans | phys scans | space. The shared table shape of
  /// `sweep` and the benches.
  Table SummaryTable() const;
};

/// Executes the grid. Workload build failures and solver dispatch
/// failures are recorded per cell (the grid always completes; nothing
/// aborts). `cancel`, when non-null, is polled between runs AND threaded
/// into each run's RunOptions — a fired token (SIGINT in the CLI) stops
/// the sweep at the next run boundary and returns the partial report.
RunReport ExecutePlan(const RunPlan& plan,
                      const CancelToken* cancel = nullptr);

}  // namespace streamcover

#endif  // STREAMCOVER_CORE_RUN_PLAN_H_
