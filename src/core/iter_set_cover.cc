#include "core/iter_set_cover.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_map>
#include <utility>

#include "core/projection_store.h"
#include "offline/greedy.h"
#include "stream/sampling.h"
#include "util/bitset.h"
#include "util/check.h"
#include "util/cover_kernels.h"
#include "util/mathutil.h"
#include "util/rng.h"

namespace streamcover {
namespace {

// One guess of the optimal cover size, expressed as a ScanConsumer:
// the 1/delta iterations of Figure 1.3 become a state machine whose
// passes (Size-Test pass, recompute pass, optional final sweep) are fed
// by whatever physical scan the PassScheduler is running. All mutable
// state is owned by the consumer, so any number of guesses can share
// one scan — serially or on worker threads — with bit-identical
// results.
class GuessConsumer final : public ScanConsumer {
 public:
  GuessConsumer(uint64_t k, uint32_t n, uint32_t m,
                const IterSetCoverOptions& options,
                const OfflineSolver& offline)
      : k_(k),
        n_(n),
        m_(m),
        options_(&options),
        offline_(&offline),
        kernel_(options.kernel),
        rho_(offline.Rho(n)),
        iterations_(static_cast<uint64_t>(
            std::ceil(1.0 / options.delta) + 1e-9)),
        rng_(options.seed ^ (k * 0x9e3779b97f4a7c15ULL)),
        uncovered_(n, true) {
    // epsilon-Partial Set Cover target: stop once the residual fits the
    // allowance (0 for a classic full cover).
    SC_CHECK(options.coverage_fraction > 0.0 &&
             options.coverage_fraction <= 1.0);
    allowed_uncovered_ = AllowedUncovered(n, options.coverage_fraction);
    // Residual ground set, kept across all passes: n/64 words.
    tracker_.Charge(uncovered_.WordCount());
    if (options.early_exit) {
      // Distinct-pick mask for the retire rule; only charged when the
      // feature is on so default space accounting is unchanged.
      picked_distinct_ = DynamicBitset(m);
      tracker_.Charge(picked_distinct_.WordCount());
    }
    Advance();
  }

  void OnSet(const SetView& set) override {
    switch (phase_) {
      case Phase::kPass1: {
        // Size Test: heavy sets are taken now, light projections kept.
        // The projection is filtered straight into the iteration's bump
        // arena by the masked-filter kernel — committed if light,
        // rewound if heavy or empty — so the hot path performs no
        // per-set heap allocation and no per-element branch.
        const size_t mark = projections_.StageMark();
        FilterInto(set, live_, projections_.staging_arena(), kernel_);
        const std::span<const uint32_t> staged = projections_.Staged(mark);
        if (staged.empty()) return;
        if (static_cast<double>(staged.size()) >= threshold_) {
          heavy_picks_.push_back(set.id);
          tracker_.Charge(1);
          MarkCovered(staged, live_.bits(), kernel_);
          projections_.Abandon(mark);
        } else {
          tracker_.Charge(staged.size() + 1);  // elements + set id
          projections_.CommitLight(set.id, mark);
        }
        return;
      }
      case Phase::kPass2: {
        // Only the sets picked this iteration can newly cover anything.
        if (!picked_this_iter_.Test(set.id)) return;
        MarkCovered(set, uncovered_, kernel_);
        return;
      }
      case Phase::kFinalSweep: {
        if (uncovered_.None()) return;
        if (Intersects(set, uncovered_, kernel_)) {
          sweep_picks_.push_back(set.id);
          tracker_.Charge(1);
          MarkCovered(set, uncovered_, kernel_);
        }
        return;
      }
      case Phase::kDone:
        return;
    }
  }

  void OnPassEnd() override {
    switch (phase_) {
      case Phase::kPass1:
        FinishPass1();
        return;
      case Phase::kPass2:
        FinishPass2();
        return;
      case Phase::kFinalSweep:
        FinishFinalSweep();
        return;
      case Phase::kDone:
        return;
    }
  }

  bool done() const override { return phase_ == Phase::kDone; }

  // Batch prefilter for the threaded scheduler: in the mask-dominated
  // phases a set with no live element is a no-op, so the scheduler may
  // drop it before dispatch. Pass 2 is guarded by set id instead (one
  // bit test per set — cheaper than any intersection), so it opts out.
  const LiveMask* batch_filter() const override {
    switch (phase_) {
      case Phase::kPass1:
        return &live_;
      case Phase::kFinalSweep:
        return &uncovered_;
      case Phase::kPass2:
      case Phase::kDone:
        return nullptr;
    }
    return nullptr;
  }

  uint64_t k() const { return k_; }
  bool success() const { return success_; }
  bool killed() const { return killed_; }
  /// Deduplicated cover size; valid once done() and not killed.
  uint64_t final_cover_size() const { return sol_.size(); }
  /// Distinct sets picked so far (maintained only with early_exit on).
  /// Monotone non-decreasing, so it lower-bounds the final cover size.
  uint64_t distinct_picks() const { return distinct_picks_; }
  uint64_t peak_words() const { return tracker_.peak_words(); }

  /// Retires the guess: it provably cannot beat the current winner, so
  /// its partial cover is abandoned (peak space already stands).
  void Kill() {
    killed_ = true;
    success_ = false;
    phase_ = Phase::kDone;
  }

  StreamingResult TakeResult(uint64_t logical_passes) {
    StreamingResult result;
    result.cover = std::move(sol_);
    result.success = success_;
    result.passes = logical_passes;
    result.sequential_scans = logical_passes;
    result.physical_scans = logical_passes;
    result.space_words_parallel = tracker_.peak_words();
    result.space_words_max_guess = tracker_.peak_words();
    result.winning_k = k_;
    result.gain_updates = gain_updates_;
    result.sets_touched = sets_touched_;
    result.diagnostics = std::move(diagnostics_);
    return result;
  }

 private:
  enum class Phase { kPass1, kPass2, kFinalSweep, kDone };

  void TakeSet(uint32_t id) {
    sol_.set_ids.push_back(id);
    if (options_->early_exit && !picked_distinct_.Test(id)) {
      picked_distinct_.Set(id);
      ++distinct_picks_;
    }
  }

  // Inter-pass work at the top of an iteration: termination checks,
  // sampling, Size-Test threshold. Leaves the consumer waiting for a
  // pass (or done).
  void Advance() {
    uncovered_count_ = uncovered_.Count();
    if (uncovered_count_ <= allowed_uncovered_ || iter_ >= iterations_) {
      Finalize();
      return;
    }
    diag_ = IterSetCoverIterationDiag{};
    diag_.iteration = static_cast<uint32_t>(iter_ + 1);
    diag_.uncovered_before = uncovered_count_;

    // Section 4.2 refinement: when <= k stragglers remain, one sweep
    // taking any covering set per straggler finishes the job.
    if (options_->final_sweep && uncovered_count_ <= k_) {
      sweep_picks_.clear();
      phase_ = Phase::kFinalSweep;
      return;
    }

    // --- Sample S from the residual (Lemma 2.5 size). ---
    const uint64_t sample_size = IterSetCoverSampleSize(
        options_->sample_constant, rho_, k_, n_, options_->delta, m_,
        uncovered_count_);
    sample_ = SampleFromBitset(uncovered_.bits(), sample_size, rng_);
    diag_.sample_size = sample_.size();
    tracker_.Charge(sample_.size());  // the sample's element ids

    // L <- S, as a membership mask over U (n/64 words).
    live_ = LiveMask(n_);
    for (uint32_t e : sample_) live_.Set(e);
    tracker_.Charge(live_.WordCount());

    threshold_ = options_->size_test_multiplier *
                 static_cast<double>(sample_.size()) /
                 static_cast<double>(k_);
    heavy_picks_.clear();
    // Epoch reset: the previous iteration's projections died with their
    // ReleaseEpoch in FinishPass1, so the arena drops to empty in O(1)
    // (capacity retained) with the word watermark provably at zero.
    projections_.ResetEpoch();
    phase_ = Phase::kPass1;
  }

  void FinishPass1() {
    diag_.heavy_picked = heavy_picks_.size();
    diag_.projection_words = projections_.words();
    for (uint32_t id : heavy_picks_) TakeSet(id);

    // --- Offline solve on the sampled sub-instance (no pass). ---
    // Re-index the still-live sampled elements to [0, n_sub).
    std::vector<uint32_t> live_elems;
    for (uint32_t e : sample_) {
      if (live_.Test(e)) live_elems.push_back(e);
    }
    if (!live_elems.empty()) {
      std::unordered_map<uint32_t, uint32_t> reindex;
      reindex.reserve(live_elems.size() * 2);
      for (uint32_t i = 0; i < live_elems.size(); ++i) {
        reindex[live_elems[i]] = i;
      }
      SetSystem::Builder sub_builder(
          static_cast<uint32_t>(live_elems.size()));
      std::vector<uint32_t> original_ids;
      original_ids.reserve(projections_.refs().size());
      for (const ProjectionStore::Ref& ref : projections_.refs()) {
        mapped_scratch_.clear();
        for (uint32_t e : projections_.Elements(ref)) {
          auto it = reindex.find(e);
          if (it != reindex.end()) mapped_scratch_.push_back(it->second);
        }
        if (mapped_scratch_.empty()) continue;
        sub_builder.AddSet(std::span<const uint32_t>(mapped_scratch_));
        original_ids.push_back(ref.set_id);
      }
      SetSystem sub = std::move(sub_builder).Build();
      OfflineResult offline_result = offline_->Solve(sub);
      gain_updates_ += offline_result.gain_updates;
      sets_touched_ += offline_result.sets_touched;
      size_t take = offline_result.cover.size();
      if (allowed_uncovered_ > 0 && uncovered_count_ > 0) {
        // epsilon-Partial: the sample is a relative approximation of the
        // residual (Lemma 2.5), so leaving the proportional share of the
        // sample uncovered suffices. Greedy emits picks in decreasing
        // marginal order, so trimming the pick tail IS the greedy
        // partial cover of the sub-instance.
        const uint64_t sub_allowed =
            allowed_uncovered_ * live_elems.size() / uncovered_count_;
        if (sub_allowed > 0) {
          DynamicBitset covered_sub(sub.num_elements());
          uint64_t covered_count = 0;
          take = 0;
          for (uint32_t sub_id : offline_result.cover.set_ids) {
            if (sub.num_elements() - covered_count <= sub_allowed) break;
            for (uint32_t e : sub.GetSet(sub_id)) {
              if (!covered_sub.Test(e)) {
                covered_sub.Set(e);
                ++covered_count;
              }
            }
            ++take;
          }
        }
      }
      diag_.offline_picked = take;
      for (size_t i = 0; i < take; ++i) {
        TakeSet(original_ids[offline_result.cover.set_ids[i]]);
        tracker_.Charge(1);
      }
    }

    // Projections, sample ids, and the live mask die with the iteration
    // (the arena itself resets at the top of the next one, with the
    // watermark attribution CHECKed back to zero here).
    projections_.ReleaseEpoch(tracker_);
    tracker_.Release(sample_.size());
    tracker_.Release(live_.WordCount());

    picked_this_iter_ = DynamicBitset(m_);
    const size_t new_from = sol_.set_ids.size() - diag_.heavy_picked -
                            diag_.offline_picked;
    for (size_t i = new_from; i < sol_.set_ids.size(); ++i) {
      picked_this_iter_.Set(sol_.set_ids[i]);
    }
    tracker_.Charge(picked_this_iter_.WordCount());
    phase_ = Phase::kPass2;
  }

  void FinishPass2() {
    tracker_.Release(picked_this_iter_.WordCount());
    diag_.uncovered_after = uncovered_.Count();
    diagnostics_.push_back(diag_);
    ++iter_;
    Advance();
  }

  void FinishFinalSweep() {
    for (uint32_t id : sweep_picks_) TakeSet(id);
    diag_.heavy_picked = sweep_picks_.size();
    diag_.uncovered_after = uncovered_.Count();
    diagnostics_.push_back(diag_);
    Finalize();
  }

  void Finalize() {
    success_ = uncovered_.Count() <= allowed_uncovered_;
    tracker_.Release(uncovered_.WordCount());
    if (options_->early_exit) {
      tracker_.Release(picked_distinct_.WordCount());
    }
    sol_.Deduplicate();
    phase_ = Phase::kDone;
  }

  // Immutable configuration.
  const uint64_t k_;
  const uint32_t n_;
  const uint32_t m_;
  const IterSetCoverOptions* options_;
  const OfflineSolver* offline_;
  const KernelPolicy kernel_;
  const double rho_;
  const uint64_t iterations_;
  uint64_t allowed_uncovered_ = 0;

  // Cross-iteration state.
  Rng rng_;
  SpaceTracker tracker_;
  LiveMask uncovered_;
  Cover sol_;
  DynamicBitset picked_distinct_;
  uint64_t distinct_picks_ = 0;
  std::vector<IterSetCoverIterationDiag> diagnostics_;
  uint64_t gain_updates_ = 0;
  uint64_t sets_touched_ = 0;
  uint64_t iter_ = 0;
  bool success_ = false;
  bool killed_ = false;
  Phase phase_ = Phase::kDone;

  // Per-iteration state. Projections live in an arena-backed store
  // whose epoch is the iteration; accounting stays in logical words.
  IterSetCoverIterationDiag diag_;
  uint64_t uncovered_count_ = 0;
  std::vector<uint32_t> sample_;
  LiveMask live_;
  double threshold_ = 0.0;
  std::vector<uint32_t> heavy_picks_;
  ProjectionStore projections_;
  std::vector<uint32_t> mapped_scratch_;  // per-set transient, not charged
  DynamicBitset picked_this_iter_;
  std::vector<uint32_t> sweep_picks_;
};

// The winner rule of the sequential implementation — ascending k, a
// success replaces the incumbent only when strictly smaller — picks the
// success minimizing (cover size, k) lexicographically. A live guess
// whose distinct-pick count already sorts at-or-after the incumbent on
// that key can therefore never win: distinct picks only grow and
// deduplication cannot shrink below them.
void RetireHopelessGuesses(
    std::vector<std::unique_ptr<GuessConsumer>>& guesses) {
  uint64_t best_size = UINT64_MAX;
  uint64_t best_k = UINT64_MAX;
  for (const auto& guess : guesses) {
    if (guess->done() && !guess->killed() && guess->success()) {
      const uint64_t size = guess->final_cover_size();
      if (size < best_size || (size == best_size && guess->k() < best_k)) {
        best_size = size;
        best_k = guess->k();
      }
    }
  }
  if (best_size == UINT64_MAX) return;
  for (auto& guess : guesses) {
    if (guess->done()) continue;
    const uint64_t distinct = guess->distinct_picks();
    if (distinct > best_size ||
        (distinct == best_size && guess->k() > best_k)) {
      guess->Kill();
    }
  }
}

}  // namespace

StreamingResult IterSetCoverSingleGuess(PassScheduler& scheduler, uint64_t k,
                                        const IterSetCoverOptions& options) {
  SC_CHECK(options.delta > 0.0 && options.delta <= 1.0);
  GreedySolver default_solver(options.kernel);
  const OfflineSolver& offline =
      options.offline != nullptr ? *options.offline : default_solver;
  GuessConsumer guess(k, scheduler.stream().num_elements(),
                      scheduler.stream().num_sets(), options, offline);
  PassScheduler::SoloRun run = scheduler.DriveToCompletion(guess);
  StreamingResult result = guess.TakeResult(run.logical_passes);
  result.physical_scans = run.physical_scans;
  return result;
}

StreamingResult IterSetCoverSingleGuess(SetStream& stream, uint64_t k,
                                        const IterSetCoverOptions& options) {
  PassScheduler scheduler(stream);
  return IterSetCoverSingleGuess(scheduler, k, options);
}

StreamingResult IterSetCover(PassScheduler& scheduler,
                             const IterSetCoverOptions& options) {
  SC_CHECK(options.delta > 0.0 && options.delta <= 1.0);
  GreedySolver default_solver(options.kernel);
  const OfflineSolver& offline =
      options.offline != nullptr ? *options.offline : default_solver;

  const uint32_t n = scheduler.stream().num_elements();
  const uint32_t m = scheduler.stream().num_sets();
  const uint64_t physical_before = scheduler.physical_scans();

  // Guesses k = 2^i, i in [0, log n], registered up front: pass p of
  // every live guess rides the p-th physical scan.
  std::vector<std::unique_ptr<GuessConsumer>> guesses;
  std::vector<size_t> slots;
  for (uint64_t k = 1;; k *= 2) {
    guesses.push_back(
        std::make_unique<GuessConsumer>(k, n, m, options, offline));
    slots.push_back(scheduler.Register(guesses.back().get()));
    if (k >= n) break;
  }

  // Drive rounds only while OUR guesses are live: foreign consumers on
  // the same scheduler ride these scans but never extend this run's
  // window or inflate its physical-scan attribution.
  auto any_guess_live = [&] {
    for (const auto& guess : guesses) {
      if (!guess->done()) return true;
    }
    return false;
  };
  while (any_guess_live()) {
    // A 0 return with guesses still live means the stream failed
    // mid-scan (scheduler.stream_failed()); the guesses can never
    // finish, so stop driving — they surface as unsuccessful results
    // and RunSolver reports the stream error.
    if (scheduler.RunRound() == 0) break;
    if (options.early_exit) RetireHopelessGuesses(guesses);
  }

  // Winner selection identical to the sequential implementation:
  // ascending k, replace only on strictly smaller cover. Accounting is
  // the parallel composition (passes: max; space: sum) plus the new
  // physical column.
  StreamingResult best;
  uint64_t passes_max = 0;
  uint64_t scans_total = 0;
  uint64_t space_sum = 0;
  uint64_t space_max = 0;
  for (size_t i = 0; i < guesses.size(); ++i) {
    const uint64_t peak = guesses[i]->peak_words();
    StreamingResult guess_result =
        guesses[i]->TakeResult(scheduler.passes(slots[i]));
    passes_max = std::max(passes_max, guess_result.passes);
    scans_total += guess_result.sequential_scans;
    space_sum += peak;
    space_max = std::max(space_max, peak);
    if (guess_result.success &&
        (!best.success || guess_result.cover.size() < best.cover.size())) {
      best = std::move(guess_result);
    }
    scheduler.Retire(slots[i]);
  }
  best.passes = passes_max;
  best.sequential_scans = scans_total;
  best.physical_scans = scheduler.physical_scans() - physical_before;
  best.space_words_parallel = space_sum;
  best.space_words_max_guess = space_max;
  return best;
}

StreamingResult IterSetCover(SetStream& stream,
                             const IterSetCoverOptions& options) {
  PassScheduler scheduler(stream);
  return IterSetCover(scheduler, options);
}

}  // namespace streamcover
