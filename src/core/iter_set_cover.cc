#include "core/iter_set_cover.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "offline/greedy.h"
#include "stream/sampling.h"
#include "util/bitset.h"
#include "util/check.h"
#include "util/mathutil.h"
#include "util/rng.h"

namespace streamcover {
namespace {

// One guess of the optimal cover size. Returns the result of running the
// 1/delta iterations of Figure 1.3 with the given k, charging `tracker`.
StreamingResult RunGuess(SetStream& stream, uint64_t k,
                         const IterSetCoverOptions& options,
                         const OfflineSolver& offline, SpaceTracker& tracker,
                         Rng& rng) {
  const uint32_t n = stream.num_elements();
  const uint32_t m = stream.num_sets();
  const double rho = offline.Rho(n);
  const uint64_t iterations = static_cast<uint64_t>(
      std::ceil(1.0 / options.delta) + 1e-9);

  StreamingResult result;
  const uint64_t passes_before = stream.passes();
  // epsilon-Partial Set Cover target: stop once the residual fits the
  // allowance (0 for a classic full cover).
  SC_CHECK(options.coverage_fraction > 0.0 &&
           options.coverage_fraction <= 1.0);
  // Computed as n - ceil(fraction*n) (with an epsilon guard) so that
  // e.g. fraction 0.9 of n=100 allows exactly 10 uncovered elements
  // despite 1.0 - 0.9 not being representable.
  const uint64_t allowed_uncovered =
      n - static_cast<uint64_t>(
              std::ceil(options.coverage_fraction *
                            static_cast<double>(n) -
                        1e-9));

  // Residual ground set, kept across all passes: n/64 words.
  DynamicBitset uncovered(n, true);
  tracker.Charge(uncovered.WordCount());

  Cover sol;

  for (uint64_t iter = 0; iter < iterations; ++iter) {
    uint64_t uncovered_count = uncovered.Count();
    if (uncovered_count <= allowed_uncovered) break;

    IterSetCoverIterationDiag diag;
    diag.iteration = static_cast<uint32_t>(iter + 1);
    diag.uncovered_before = uncovered_count;

    // Section 4.2 refinement: when <= k stragglers remain, one sweep
    // taking any covering set per straggler finishes the job.
    if (options.final_sweep && uncovered_count <= k) {
      std::vector<uint32_t> new_picks;
      stream.ForEachSet([&](uint32_t id, std::span<const uint32_t> elems) {
        if (uncovered.None()) return;
        bool hits = false;
        for (uint32_t e : elems) {
          if (uncovered.Test(e)) {
            hits = true;
            break;
          }
        }
        if (hits) {
          new_picks.push_back(id);
          tracker.Charge(1);
          for (uint32_t e : elems) uncovered.Reset(e);
        }
      });
      sol.set_ids.insert(sol.set_ids.end(), new_picks.begin(),
                         new_picks.end());
      diag.heavy_picked = new_picks.size();
      diag.uncovered_after = uncovered.Count();
      result.diagnostics.push_back(diag);
      break;
    }

    // --- Sample S from the residual (Lemma 2.5 size). ---
    const uint64_t sample_size = IterSetCoverSampleSize(
        options.sample_constant, rho, k, n, options.delta, m,
        uncovered_count);
    std::vector<uint32_t> sample = SampleFromBitset(uncovered, sample_size,
                                                    rng);
    diag.sample_size = sample.size();
    tracker.Charge(sample.size());  // the sample's element ids

    // L <- S, as a membership mask over U (n/64 words).
    DynamicBitset live(n);
    for (uint32_t e : sample) live.Set(e);
    tracker.Charge(live.WordCount());

    const double threshold = options.size_test_multiplier *
                             static_cast<double>(sample.size()) /
                             static_cast<double>(k);

    // --- Pass 1: Size Test; store projections of light sets. ---
    std::vector<uint32_t> heavy_picks;
    std::vector<std::pair<uint32_t, std::vector<uint32_t>>> projections;
    uint64_t projection_words = 0;
    std::vector<uint32_t> scratch;  // per-set transient, not charged
    stream.ForEachSet([&](uint32_t id, std::span<const uint32_t> elems) {
      scratch.clear();
      for (uint32_t e : elems) {
        if (live.Test(e)) scratch.push_back(e);
      }
      if (scratch.empty()) return;
      if (static_cast<double>(scratch.size()) >= threshold) {
        heavy_picks.push_back(id);
        tracker.Charge(1);
        for (uint32_t e : scratch) live.Reset(e);
      } else {
        projection_words += scratch.size() + 1;  // elements + set id
        tracker.Charge(scratch.size() + 1);
        projections.emplace_back(id, scratch);
      }
    });
    diag.heavy_picked = heavy_picks.size();
    diag.projection_words = projection_words;
    sol.set_ids.insert(sol.set_ids.end(), heavy_picks.begin(),
                       heavy_picks.end());

    // --- Offline solve on the sampled sub-instance (no pass). ---
    // Re-index the still-live sampled elements to [0, n_sub).
    std::vector<uint32_t> live_elems;
    for (uint32_t e : sample) {
      if (live.Test(e)) live_elems.push_back(e);
    }
    if (!live_elems.empty()) {
      std::unordered_map<uint32_t, uint32_t> reindex;
      reindex.reserve(live_elems.size() * 2);
      for (uint32_t i = 0; i < live_elems.size(); ++i) {
        reindex[live_elems[i]] = i;
      }
      SetSystem::Builder sub_builder(
          static_cast<uint32_t>(live_elems.size()));
      std::vector<uint32_t> original_ids;
      original_ids.reserve(projections.size());
      for (auto& [id, proj] : projections) {
        std::vector<uint32_t> mapped;
        mapped.reserve(proj.size());
        for (uint32_t e : proj) {
          auto it = reindex.find(e);
          if (it != reindex.end()) mapped.push_back(it->second);
        }
        if (mapped.empty()) continue;
        sub_builder.AddSet(std::move(mapped));
        original_ids.push_back(id);
      }
      SetSystem sub = std::move(sub_builder).Build();
      OfflineResult offline_result = offline.Solve(sub);
      size_t take = offline_result.cover.size();
      if (allowed_uncovered > 0 && uncovered_count > 0) {
        // epsilon-Partial: the sample is a relative approximation of the
        // residual (Lemma 2.5), so leaving the proportional share of the
        // sample uncovered suffices. Greedy emits picks in decreasing
        // marginal order, so trimming the pick tail IS the greedy
        // partial cover of the sub-instance.
        const uint64_t sub_allowed =
            allowed_uncovered * live_elems.size() / uncovered_count;
        if (sub_allowed > 0) {
          DynamicBitset covered_sub(sub.num_elements());
          uint64_t covered_count = 0;
          take = 0;
          for (uint32_t sub_id : offline_result.cover.set_ids) {
            if (sub.num_elements() - covered_count <= sub_allowed) break;
            for (uint32_t e : sub.GetSet(sub_id)) {
              if (!covered_sub.Test(e)) {
                covered_sub.Set(e);
                ++covered_count;
              }
            }
            ++take;
          }
        }
      }
      diag.offline_picked = take;
      for (size_t i = 0; i < take; ++i) {
        sol.set_ids.push_back(original_ids[offline_result.cover.set_ids[i]]);
        tracker.Charge(1);
      }
    }

    // Projections, sample ids, and the live mask die with the iteration.
    tracker.Release(projection_words);
    tracker.Release(sample.size());
    tracker.Release(live.WordCount());

    // --- Pass 2: recompute the uncovered elements. ---
    // Only the sets picked in this iteration can newly cover anything.
    DynamicBitset picked_this_iter(m);
    size_t new_from = sol.set_ids.size() - diag.heavy_picked -
                      diag.offline_picked;
    for (size_t i = new_from; i < sol.set_ids.size(); ++i) {
      picked_this_iter.Set(sol.set_ids[i]);
    }
    tracker.Charge(picked_this_iter.WordCount());
    stream.ForEachSet([&](uint32_t id, std::span<const uint32_t> elems) {
      if (!picked_this_iter.Test(id)) return;
      for (uint32_t e : elems) uncovered.Reset(e);
    });
    tracker.Release(picked_this_iter.WordCount());

    diag.uncovered_after = uncovered.Count();
    result.diagnostics.push_back(diag);
  }

  result.success = uncovered.Count() <= allowed_uncovered;
  tracker.Release(uncovered.WordCount());

  sol.Deduplicate();
  result.cover = std::move(sol);
  result.winning_k = k;
  result.passes = stream.passes() - passes_before;
  result.sequential_scans = result.passes;
  result.space_words_parallel = tracker.peak_words();
  result.space_words_max_guess = tracker.peak_words();
  return result;
}

}  // namespace

StreamingResult IterSetCoverSingleGuess(SetStream& stream, uint64_t k,
                                        const IterSetCoverOptions& options) {
  SC_CHECK(options.delta > 0.0 && options.delta <= 1.0);
  GreedySolver default_solver;
  const OfflineSolver& offline =
      options.offline != nullptr ? *options.offline : default_solver;
  SpaceTracker tracker;
  Rng rng(options.seed ^ (k * 0x9e3779b97f4a7c15ULL));
  return RunGuess(stream, k, options, offline, tracker, rng);
}

StreamingResult IterSetCover(SetStream& stream,
                             const IterSetCoverOptions& options) {
  SC_CHECK(options.delta > 0.0 && options.delta <= 1.0);
  GreedySolver default_solver;
  const OfflineSolver& offline =
      options.offline != nullptr ? *options.offline : default_solver;

  const uint32_t n = stream.num_elements();
  StreamingResult best;
  uint64_t passes_max = 0;
  uint64_t scans_total = 0;
  uint64_t space_sum = 0;
  uint64_t space_max = 0;

  // Guesses k = 2^i, i in [0, log n] — run sequentially, accounted as
  // parallel (passes: max; space: sum).
  for (uint64_t k = 1; ; k *= 2) {
    SpaceTracker tracker;
    Rng rng(options.seed ^ (k * 0x9e3779b97f4a7c15ULL));
    StreamingResult guess_result =
        RunGuess(stream, k, options, offline, tracker, rng);

    passes_max = std::max(passes_max, guess_result.passes);
    scans_total += guess_result.sequential_scans;
    space_sum += tracker.peak_words();
    space_max = std::max(space_max, tracker.peak_words());

    if (guess_result.success &&
        (!best.success || guess_result.cover.size() < best.cover.size())) {
      best = std::move(guess_result);
    }
    if (k >= n) break;
  }

  best.passes = passes_max;
  best.sequential_scans = scans_total;
  best.space_words_parallel = space_sum;
  best.space_words_max_guess = space_max;
  return best;
}

}  // namespace streamcover
