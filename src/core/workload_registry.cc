#include "core/workload_registry.h"

#include <algorithm>
#include <utility>

#include "geometry/geom_generators.h"
#include "setsystem/generators.h"
#include "util/rng.h"

namespace streamcover {
namespace {

std::string GeneratedName(const char* family, const WorkloadParams& params) {
  return std::string(family) + "(" + params.Describe() + ")";
}

InstanceInfo GeneratedInfo(const char* family, const WorkloadParams& params) {
  InstanceInfo info;
  info.name = GeneratedName(family, params);
  info.provenance = std::string("generator:") + family;
  return info;
}

std::optional<Instance> MakePlanted(const WorkloadParams& params,
                                    std::string* /*error*/) {
  Rng rng(params.seed);
  PlantedOptions options;
  options.num_elements = params.n;
  options.num_sets = params.m;
  options.cover_size = params.k;
  options.noise_max_size = std::max(1u, params.n / 20);
  return Instance::FromPlanted(GeneratePlanted(options, rng),
                               GeneratedInfo("planted", params));
}

std::optional<Instance> MakeSparse(const WorkloadParams& params,
                                   std::string* /*error*/) {
  Rng rng(params.seed);
  return Instance::FromPlanted(
      GenerateSparse(params.n, params.m, params.max_set_size, rng),
      GeneratedInfo("sparse", params));
}

std::optional<Instance> MakeZipf(const WorkloadParams& params,
                                 std::string* /*error*/) {
  Rng rng(params.seed);
  return Instance::FromPlanted(
      GenerateZipf(params.n, params.m, params.alpha, params.max_set_size,
                   rng),
      GeneratedInfo("zipf", params));
}

std::optional<Instance> MakeAdversarial(const WorkloadParams& params,
                                        std::string* /*error*/) {
  return Instance::FromPlanted(GenerateGreedyAdversarial(params.levels),
                               GeneratedInfo("adversarial", params));
}

std::optional<Instance> MakeDisjointBlocks(const WorkloadParams& params,
                                           std::string* /*error*/) {
  Rng rng(params.seed);
  const uint32_t singletons =
      params.m > params.k ? params.m - params.k : 0;
  return Instance::FromPlanted(
      GenerateDisjointBlocks(params.n, params.k, singletons, rng),
      GeneratedInfo("disjoint_blocks", params));
}

std::optional<Instance> MakeGeom(ShapeClass cls, const char* family,
                                 const WorkloadParams& params) {
  Rng rng(params.seed);
  GeomPlantedOptions options;
  options.num_points = params.n;
  options.num_shapes = params.m;
  options.cover_size = params.k;
  options.shape_class = cls;
  return Instance::FromGeometry(GeneratePlantedGeom(options, rng),
                                GeneratedInfo(family, params));
}

std::optional<Instance> MakeFigure12(const WorkloadParams& params,
                                     std::string* /*error*/) {
  const uint32_t n = std::max(4u, params.n % 2 == 0 ? params.n
                                                    : params.n + 1);
  return Instance::FromGeometry(GenerateFigure12(n),
                                GeneratedInfo("figure12", params));
}

std::optional<Instance> MakeFile(const WorkloadParams& params,
                                 std::string* error) {
  if (params.path.empty()) {
    if (error != nullptr) {
      *error = "workload 'file' needs WorkloadParams::path";
    }
    return std::nullopt;
  }
  return Instance::FromFile(params.path, error);
}

void RegisterBuiltins(WorkloadRegistry& registry) {
  using Kind = WorkloadRegistry::Kind;
  auto add = [&](const char* name, const char* description, Kind kind,
                 WorkloadRegistry::Factory make) {
    registry.Register({name, description, kind, std::move(make)});
  };

  add("planted",
      "k planted cover blocks + uniform noise sets; OPT <= k (the bench "
      "staple)",
      Kind::kAbstract, MakePlanted);
  add("sparse",
      "all sets of size <= max_set_size over a hidden partition; "
      "stresses small-set regimes",
      Kind::kAbstract, MakeSparse);
  add("zipf",
      "power-law set sizes + skewed element popularity (web-scale "
      "coverage shape)",
      Kind::kAbstract, MakeZipf);
  add("adversarial",
      "greedy lower-bound family: OPT=2 but greedy picks `levels` sets; "
      "deterministic",
      Kind::kAbstract, MakeAdversarial);
  add("disjoint_blocks",
      "k equal blocks + singleton distractors; OPT = k exactly",
      Kind::kAbstract, MakeDisjointBlocks);
  add("geom_disks",
      "planted clusters covered by disks + noise disks (Theorem 4.6 "
      "workload)",
      Kind::kGeometric,
      [](const WorkloadParams& p, std::string*) {
        return MakeGeom(ShapeClass::kDisk, "geom_disks", p);
      });
  add("geom_rects",
      "planted clusters covered by axis-parallel rectangles + noise",
      Kind::kGeometric,
      [](const WorkloadParams& p, std::string*) {
        return MakeGeom(ShapeClass::kRect, "geom_rects", p);
      });
  add("geom_triangles",
      "planted clusters covered by fat triangles + noise",
      Kind::kGeometric,
      [](const WorkloadParams& p, std::string*) {
        return MakeGeom(ShapeClass::kFatTriangle, "geom_triangles", p);
      });
  add("figure12",
      "Figure 1.2 pathology: Theta(n^2) distinct 2-point rectangles, "
      "OPT <= 2",
      Kind::kGeometric, MakeFigure12);
  add("file",
      "on-disk repository (setsystem/io.h format) re-parsed per pass; "
      "needs WorkloadParams::path",
      Kind::kFile, MakeFile);
}

}  // namespace

std::string WorkloadParams::Describe() const {
  std::string out = "n=" + std::to_string(n) + ",m=" + std::to_string(m) +
                    ",k=" + std::to_string(k) +
                    ",seed=" + std::to_string(seed);
  if (!path.empty()) out += ",path=" + path;
  return out;
}

WorkloadRegistry& WorkloadRegistry::Global() {
  static WorkloadRegistry* registry = [] {
    auto* r = new WorkloadRegistry();
    RegisterBuiltins(*r);
    return r;
  }();
  return *registry;
}

bool WorkloadRegistry::Register(Entry entry) {
  if (entry.name.empty() || !entry.make) return false;
  return entries_.emplace(entry.name, std::move(entry)).second;
}

const WorkloadRegistry::Entry* WorkloadRegistry::Find(
    std::string_view name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<std::string> WorkloadRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

std::vector<const WorkloadRegistry::Entry*> WorkloadRegistry::Entries()
    const {
  std::vector<const Entry*> entries;
  entries.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) entries.push_back(&entry);
  return entries;
}

std::optional<Instance> MakeWorkload(std::string_view name,
                                     const WorkloadParams& params,
                                     std::string* error) {
  const WorkloadRegistry::Entry* entry =
      WorkloadRegistry::Global().Find(name);
  if (entry == nullptr) {
    if (error != nullptr) {
      *error = "unknown workload '" + std::string(name) + "'; available: ";
      bool first = true;
      for (const std::string& known : WorkloadRegistry::Global().Names()) {
        if (!first) *error += ", ";
        *error += known;
        first = false;
      }
    }
    return std::nullopt;
  }
  std::string scratch;
  std::optional<Instance> instance =
      entry->make(params, error != nullptr ? error : &scratch);
  if (!instance.has_value() && error != nullptr && error->empty()) {
    *error = "workload '" + entry->name + "' failed to build";
  }
  return instance;
}

}  // namespace streamcover
