// WorkloadRegistry — named instance factories, mirroring SolverRegistry.
//
// The paper's experiments are grids of solver × instance × parameter
// runs. SolverRegistry names the first axis; this registry names the
// second: planted families, adversarial/lower-bound constructions,
// geometric families (disks / rects / fat triangles / the Figure 1.2
// pathology), and file-backed repositories all register as factories
// from one WorkloadParams struct to an Instance. RunPlan
// (core/run_plan.h) crosses the two registries into sweeps; the CLI's
// `list-workloads` and `sweep` commands expose them directly.
//
// Unknown names fail cleanly: MakeWorkload returns std::nullopt with a
// diagnostic naming the alternatives.

#ifndef STREAMCOVER_CORE_WORKLOAD_REGISTRY_H_
#define STREAMCOVER_CORE_WORKLOAD_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/instance.h"

namespace streamcover {

/// One parameter struct drives every factory; each workload reads the
/// subset it understands and ignores the rest (same convention as
/// RunOptions on the solver axis).
struct WorkloadParams {
  uint32_t n = 1000;           ///< |U| (points for geometric workloads)
  uint32_t m = 2000;           ///< |F| (shapes for geometric workloads)
  uint32_t k = 10;             ///< planted cover size / block count
  uint32_t max_set_size = 32;  ///< sparse / zipf set-size cap
  double alpha = 1.1;          ///< zipf exponent
  uint32_t levels = 6;         ///< greedy-adversarial halving levels
  uint64_t seed = 1;           ///< generator seed
  std::string path;            ///< repository path for the file workload

  /// Human-readable "n=...,m=...,seed=..." string for provenance lines
  /// and report JSON.
  std::string Describe() const;
};

/// Name-keyed workload directory. Thread-compatible like SolverRegistry:
/// registration at startup, concurrent lookups afterwards.
class WorkloadRegistry {
 public:
  /// Coarse classification, used by drivers to select sweep subsets.
  enum class Kind {
    kAbstract,   ///< plain SetSystem instances
    kGeometric,  ///< carries a points/shapes payload
    kFile,       ///< streams an on-disk repository
  };

  using Factory = std::function<std::optional<Instance>(
      const WorkloadParams&, std::string* error)>;

  struct Entry {
    std::string name;
    std::string description;  ///< one line: family + what it stresses
    Kind kind = Kind::kAbstract;
    Factory make;
  };

  /// The process-wide registry with every built-in workload
  /// pre-registered on first use.
  static WorkloadRegistry& Global();

  /// Registers a workload. Returns false (registry unchanged) if the
  /// name is taken or the entry has no factory.
  bool Register(Entry entry);

  /// Entry for `name`, or nullptr.
  const Entry* Find(std::string_view name) const;

  bool Contains(std::string_view name) const { return Find(name) != nullptr; }

  /// All registered names, sorted ascending.
  std::vector<std::string> Names() const;

  /// All entries, sorted by name.
  std::vector<const Entry*> Entries() const;

  size_t size() const { return entries_.size(); }

 private:
  std::map<std::string, Entry, std::less<>> entries_;
};

/// Builds the named workload from the global registry. Unknown names and
/// factory failures (bad params, missing file) return std::nullopt with
/// a diagnostic in *error.
std::optional<Instance> MakeWorkload(std::string_view name,
                                     const WorkloadParams& params,
                                     std::string* error = nullptr);

}  // namespace streamcover

#endif  // STREAMCOVER_CORE_WORKLOAD_REGISTRY_H_
