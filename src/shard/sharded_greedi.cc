#include "shard/sharded_greedi.h"

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "shard/merge_stage.h"
#include "shard/stream_partitioner.h"
#include "shard/threshold_bucket.h"
#include "stream/space_tracker.h"
#include "util/timer.h"

namespace streamcover {
namespace {

/// Shared body of both registry entries. `partitioned` selects between
/// S hash-filtered engines (sharded_greedi) and one whole-stream engine
/// (greedi); everything after the scan is identical.
RunResult RunShardFamily(RunContext& ctx, bool partitioned) {
  RunResult result;
  const uint32_t shards = partitioned ? ctx.options.shards : 1;
  if (shards == 0) {
    result.error = "sharded_greedi requires shards >= 1";
    return result;
  }

  SetStream& stream = ctx.scheduler.stream();
  const uint32_t n = stream.num_elements();
  const uint32_t m = stream.num_sets();

  std::optional<StreamPartitioner> partitioner;
  if (partitioned) partitioner.emplace(ctx.options.seed, shards);

  ThresholdBucketOptions engine_options;
  engine_options.kernel = ctx.options.kernel;

  std::vector<std::unique_ptr<ThresholdBucketEngine>> engines;
  engines.reserve(shards);
  for (uint32_t s = 0; s < shards; ++s) {
    engines.push_back(std::make_unique<ThresholdBucketEngine>(
        n, partitioner ? &*partitioner : nullptr, s, engine_options));
  }

  std::vector<size_t> slots;
  slots.reserve(engines.size());
  for (const auto& engine : engines) {
    slots.push_back(ctx.scheduler.Register(engine.get()));
  }
  const uint64_t scans_before = ctx.scheduler.physical_scans();
  while (ctx.scheduler.AnyLive()) {
    if (ctx.scheduler.RunRound() == 0) break;
  }
  uint64_t max_passes = 0;
  uint64_t total_passes = 0;
  for (size_t slot : slots) {
    const uint64_t p = ctx.scheduler.passes(slot);
    if (p > max_passes) max_passes = p;
    total_passes += p;
  }
  for (size_t slot : slots) ctx.scheduler.Retire(slot);
  result.passes = max_passes;
  result.sequential_scans = total_passes;
  result.physical_scans = ctx.scheduler.physical_scans() - scans_before;

  if (ctx.scheduler.stream_failed()) {
    // Dispatch surfaces the stream's sticky error; nothing to merge.
    return result;
  }

  SpaceTracker tracker;
  for (const auto& engine : engines) {
    result.shard_stats.push_back(ShardStat{
        engine->shard(), engine->counters().sets_seen,
        engine->counters().candidates, engine->counters().inserts,
        engine->counters().work_items});
    tracker.AddParallelPeak(engine->space_words());
  }

  WallTimer merge_timer;
  MergeStageOptions merge_options;
  merge_options.kernel = ctx.options.kernel;
  merge_options.coverage_fraction = ctx.options.coverage_fraction;
  MergeStage merge(n, m, merge_options);
  for (const auto& engine : engines) {
    for (size_t i = 0; i < engine->candidate_count(); ++i) {
      merge.AddCandidate(engine->candidate_id(i), engine->candidate_elems(i));
    }
  }
  MergeOutcome outcome = merge.Merge();
  result.merge_stats.candidates = merge.candidates();
  result.merge_stats.duplicates_dropped = merge.duplicates_dropped();
  result.merge_stats.picked = outcome.cover.set_ids.size();
  result.merge_stats.duration_ms = merge_timer.ElapsedMillis();
  result.gain_updates = merge.counters().gain_updates;
  result.sets_touched = merge.counters().sets_touched;
  tracker.AddParallelPeak(merge.space_words());

  result.cover = std::move(outcome.cover);
  result.success = outcome.success;
  result.space_words = tracker.peak_words();
  return result;
}

}  // namespace

RunResult RunShardedGreedi(RunContext& ctx) {
  return RunShardFamily(ctx, /*partitioned=*/true);
}

RunResult RunGreediReference(RunContext& ctx) {
  return RunShardFamily(ctx, /*partitioned=*/false);
}

}  // namespace streamcover
