// ThresholdBucketEngine — one shard's single-pass candidate collector.
//
// The GreeDIMM/RandGreeDI local step keeps a geometric ladder of gain
// buckets: bucket b accepts a set while the set still covers at least
// tau_b = ceil((1+eps)^b) new elements *of that bucket's own residual*.
// Every accepted set is a candidate for the global merge. The ladder is
// the streaming insurance policy: the tau=1 bucket guarantees the
// candidate union covers everything the substream covers (a set whose
// elements are all covered by earlier candidates adds nothing to any
// merge), while the high-tau buckets keep the high-gain picks a greedy
// merge wants even after the low buckets saturate.
//
// Space is bounded without a tuning knob: an insert into bucket b clears
// at least tau_b residual bits, so bucket b accepts at most n / tau_b
// sets and the whole ladder at most n * sum(1/tau_b) = O(n log n / eps)
// inserts; each candidate's elements are stored ONCE (first accepting
// bucket) in a CSR buffer, so the merge never rescans the repository.
//
// The engine is a ScanConsumer: S of them ride the ONE physical scan of
// a PassScheduler round, each hash-filtering the stream down to its own
// substream (shard/stream_partitioner.h) — with `threads` = S the
// scheduler fans the per-shard work out across its worker pool. One
// pass, then done. Output (candidates, counters) is a pure function of
// the substream, so it is identical across set sources, thread counts,
// and scheduler batch boundaries.

#ifndef STREAMCOVER_SHARD_THRESHOLD_BUCKET_H_
#define STREAMCOVER_SHARD_THRESHOLD_BUCKET_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "shard/stream_partitioner.h"
#include "stream/pass_scheduler.h"
#include "stream/space_tracker.h"
#include "util/cover_kernels.h"

namespace streamcover {

struct ThresholdBucketOptions {
  /// Bucket ladder ratio: thresholds are the distinct values of
  /// ceil((1+epsilon)^b) up to n. Smaller epsilon = more buckets =
  /// better candidates and more per-set work.
  double epsilon = 0.25;
  KernelPolicy kernel = KernelPolicy::kWord;
};

/// Counters the bench and the serve stats endpoint surface per shard.
struct ShardEngineCounters {
  uint64_t sets_seen = 0;   ///< sets of this shard's substream
  uint64_t inserts = 0;     ///< bucket acceptances (a set may enter many)
  uint64_t candidates = 0;  ///< unique candidate sets stored
  /// Elements pushed through the bucket kernels — the shard-local work
  /// a parallel scheduler distributes; the bench's partition-scaling
  /// column is total/max of this across shards.
  uint64_t work_items = 0;
};

class ThresholdBucketEngine final : public ScanConsumer {
 public:
  /// `partitioner` == nullptr accepts the whole stream (the unsharded
  /// `greedi` reference); otherwise only sets with ShardOf(id) ==
  /// `shard`. The partitioner must outlive the engine.
  ThresholdBucketEngine(uint32_t num_elements,
                        const StreamPartitioner* partitioner, uint32_t shard,
                        ThresholdBucketOptions options);

  void OnSet(const SetView& set) override;
  void OnPassEnd() override { pass_done_ = true; }
  bool done() const override { return pass_done_; }

  uint32_t shard() const { return shard_; }
  const ShardEngineCounters& counters() const { return counters_; }
  uint64_t space_words() const { return tracker_.peak_words(); }
  size_t bucket_count() const { return buckets_.size(); }

  /// Stored candidates, in substream order.
  size_t candidate_count() const { return ids_.size(); }
  uint32_t candidate_id(size_t i) const { return ids_[i]; }
  std::span<const uint32_t> candidate_elems(size_t i) const {
    return std::span<const uint32_t>(elems_).subspan(
        offsets_[i], offsets_[i + 1] - offsets_[i]);
  }

 private:
  struct Bucket {
    uint64_t tau = 1;       ///< minimal residual gain to accept
    uint64_t remaining = 0;  ///< residual bits still set in `uncovered`
    bool live = true;        ///< false once remaining < tau (forever)
    LiveMask uncovered;
  };

  /// Rebuilds `skip_union_` = OR of the live buckets' residuals and
  /// re-decides whether the pre-test pays for itself.
  void RefreshSkipMask();

  const uint32_t num_elements_;
  const StreamPartitioner* partitioner_;
  const uint32_t shard_;
  const KernelPolicy kernel_;

  std::vector<Bucket> buckets_;  // ascending tau
  size_t live_buckets_ = 0;
  bool pass_done_ = false;

  // A set with no element in any live residual is a no-op for every
  // bucket; `skip_union_` is a (possibly stale, therefore superset)
  // union of the live residuals and one Intersects against it replaces
  // the whole ladder walk in the saturated tail of the substream. Only
  // consulted once it is sparse enough that the pre-test usually wins
  // (skip_active_); refreshed on bucket death and on coverage progress:
  // once the inserts since the last refresh cleared >= n /
  // kRefreshProgressRatio residual bits, the stale superset has drifted
  // enough to be worth recomputing. (A blind every-K-sets countdown
  // refreshes identical unions through no-progress stretches and lets
  // the mask go stale through bursts; progress is the only thing that
  // changes the union.) Both triggers are pure functions of the
  // substream, so counters stay invariant across backends and thread
  // counts.
  static constexpr uint64_t kRefreshProgressRatio = 8;
  LiveMask skip_union_;
  bool skip_active_ = false;
  uint64_t cleared_since_refresh_ = 0;

  // Candidate CSR: ids_[i] owns elems_[offsets_[i], offsets_[i+1]).
  std::vector<uint32_t> ids_;
  std::vector<size_t> offsets_{0};
  std::vector<uint32_t> elems_;

  ShardEngineCounters counters_;
  SpaceTracker tracker_;
};

}  // namespace streamcover

#endif  // STREAMCOVER_SHARD_THRESHOLD_BUCKET_H_
