#include "shard/merge_stage.h"

#include <algorithm>
#include <limits>

#include "util/check.h"
#include "util/mathutil.h"

namespace streamcover {
namespace {

/// Heap key: gain in the high half, earliest-candidate-wins tie-break
/// in the low half (max-heap, so the low half stores the complement of
/// the insertion index).
uint64_t Pack(uint64_t gain, size_t idx) {
  return (gain << 32) |
         (std::numeric_limits<uint32_t>::max() - static_cast<uint32_t>(idx));
}
uint64_t PackedGain(uint64_t key) { return key >> 32; }
size_t PackedIndex(uint64_t key) {
  return std::numeric_limits<uint32_t>::max() -
         static_cast<uint32_t>(key & 0xFFFFFFFFULL);
}

}  // namespace

MergeStage::MergeStage(uint32_t num_elements, uint32_t num_sets,
                       MergeStageOptions options)
    : num_elements_(num_elements),
      options_(options),
      seen_ids_(num_sets) {
  tracker_.Charge(seen_ids_.WordCount());
}

void MergeStage::AddCandidate(uint32_t id,
                              std::span<const uint32_t> elems) {
  SC_CHECK_LT(id, seen_ids_.size());
  if (seen_ids_.Test(id)) {
    ++duplicates_dropped_;
    return;
  }
  seen_ids_.Set(id);
  ids_.push_back(id);
  elems_.insert(elems_.end(), elems.begin(), elems.end());
  offsets_.push_back(elems_.size());
  tracker_.Charge(elems.size() + 1);
}

MergeOutcome MergeStage::Merge() {
  MergeOutcome outcome;
  const uint64_t required =
      num_elements_ - AllowedUncovered(num_elements_,
                                       options_.coverage_fraction);
  LiveMask uncovered(num_elements_, true);
  std::vector<uint64_t> heap;
  heap.reserve(ids_.size());
  for (size_t i = 0; i < ids_.size(); ++i) {
    // Initial mask is all-live and spans are duplicate-free, so the
    // first-round gain is just the span length.
    const uint64_t gain = offsets_[i + 1] - offsets_[i];
    if (gain > 0) heap.push_back(Pack(gain, i));
  }
  tracker_.Charge(uncovered.WordCount() + heap.size());
  std::make_heap(heap.begin(), heap.end());

  while (outcome.covered < required && !heap.empty()) {
    std::pop_heap(heap.begin(), heap.end());
    const uint64_t top = heap.back();
    heap.pop_back();
    const size_t idx = PackedIndex(top);
    const std::span<const uint32_t> elems = CandidateElems(idx);
    const uint64_t gain = CountUncovered(elems, uncovered.bits(),
                                         options_.kernel);
    if (gain == 0) continue;
    if (!heap.empty() && gain < PackedGain(heap.front())) {
      // Stale: residual shrank below the runner-up's claim; re-queue
      // with the recomputed gain (the lazy-deletion greedy idiom).
      heap.push_back(Pack(gain, idx));
      std::push_heap(heap.begin(), heap.end());
      continue;
    }
    MarkCovered(elems, uncovered.bits(), options_.kernel);
    outcome.covered += gain;
    outcome.cover.set_ids.push_back(ids_[idx]);
    tracker_.Charge(1);
  }
  outcome.success = outcome.covered >= required;
  return outcome;
}

}  // namespace streamcover
