#include "shard/merge_stage.h"

#include <algorithm>
#include <limits>

#include "util/check.h"
#include "util/heap.h"
#include "util/mathutil.h"

namespace streamcover {
namespace {

/// Heap key: gain in the high half, earliest-candidate-wins tie-break
/// in the low half (max-heap, so the low half stores the complement of
/// the insertion index).
uint64_t Pack(uint64_t gain, size_t idx) {
  return (gain << 32) |
         (std::numeric_limits<uint32_t>::max() - static_cast<uint32_t>(idx));
}
uint64_t PackedGain(uint64_t key) { return key >> 32; }
size_t PackedIndex(uint64_t key) {
  return std::numeric_limits<uint32_t>::max() -
         static_cast<uint32_t>(key & 0xFFFFFFFFULL);
}

/// Visits every set bit of a dense row, ascending.
template <typename Fn>
void ForEachRowBit(std::span<const uint64_t> row, Fn&& fn) {
  for (size_t w = 0; w < row.size(); ++w) {
    uint64_t bits = row[w];
    while (bits != 0) {
      const uint32_t e = static_cast<uint32_t>(
          w * 64 + static_cast<size_t>(__builtin_ctzll(bits)));
      fn(e);
      bits &= bits - 1;
    }
  }
}

}  // namespace

MergeStage::MergeStage(uint32_t num_elements, uint32_t num_sets,
                       MergeStageOptions options)
    : num_elements_(num_elements),
      options_(options),
      seen_ids_(num_sets),
      dense_(num_elements) {
  tracker_.Charge(seen_ids_.WordCount());
}

void MergeStage::AddCandidate(uint32_t id,
                              std::span<const uint32_t> elems) {
  SC_CHECK_LT(id, seen_ids_.size());
  if (seen_ids_.Test(id)) {
    ++duplicates_dropped_;
    return;
  }
  seen_ids_.Set(id);
  ids_.push_back(id);
  sizes_.push_back(static_cast<uint32_t>(elems.size()));
  if (ShouldStoreDense(elems.size(), num_elements_)) {
    dense_row_.push_back(dense_.AddRow(elems));
    offsets_.push_back(elems_.size());
    tracker_.Charge(dense_.words_per_row() + 1);
  } else {
    dense_row_.push_back(kSparse);
    elems_.insert(elems_.end(), elems.begin(), elems.end());
    offsets_.push_back(elems_.size());
    tracker_.Charge(elems.size() + 1);
  }
}

uint64_t MergeStage::GainOf(size_t i, const DynamicBitset& mask) const {
  if (IsDense(i)) {
    return CountUncoveredDense(dense_.Row(dense_row_[i]), mask,
                               options_.kernel);
  }
  return CountUncovered(SparseElems(i), mask, options_.kernel);
}

uint64_t MergeStage::PickInto(size_t i, DynamicBitset& mask,
                              std::vector<uint32_t>& newly) const {
  newly.clear();
  if (IsDense(i)) {
    const std::span<const uint64_t> row = dense_.Row(dense_row_[i]);
    const uint64_t gain = FilterIntoDense(row, mask, newly, options_.kernel);
    const uint64_t cleared = MarkCoveredDense(row, mask, options_.kernel);
    SC_DCHECK_EQ(gain, cleared);
    (void)cleared;
    return gain;
  }
  const std::span<const uint32_t> elems = SparseElems(i);
  FilterInto(elems, mask, newly, options_.kernel);
  return MarkCovered(elems, mask, options_.kernel);
}

MergeOutcome MergeStage::Merge() {
  const uint64_t required =
      num_elements_ - AllowedUncovered(num_elements_,
                                       options_.coverage_fraction);
  return options_.gain == GainMaintenance::kTransposed
             ? MergeTransposed(required)
             : MergeRescan(required);
}

MergeOutcome MergeStage::MergeTransposed(uint64_t required) {
  MergeOutcome outcome;
  LiveMask uncovered(num_elements_, true);

  // One count sweep + one fill sweep over the candidates builds the
  // element → candidate-index columns (candidate order => sorted
  // columns).
  TransposedIndex::Builder builder(num_elements_);
  for (size_t i = 0; i < ids_.size(); ++i) {
    if (IsDense(i)) {
      ForEachRowBit(dense_.Row(dense_row_[i]),
                    [&](uint32_t e) { builder.CountElement(e); });
    } else {
      builder.CountSet(SparseElems(i));
    }
  }
  builder.PrepareFill();
  for (size_t i = 0; i < ids_.size(); ++i) {
    const uint32_t idx = static_cast<uint32_t>(i);
    if (IsDense(i)) {
      ForEachRowBit(dense_.Row(dense_row_[i]),
                    [&](uint32_t e) { builder.FillElement(idx, e); });
    } else {
      builder.FillSet(idx, SparseElems(i));
    }
  }
  const TransposedIndex index = std::move(builder).Build();
  GainTracker gains(&index, static_cast<uint32_t>(ids_.size()));
  gains.InitFromMask(uncovered.bits());
  // The initial mask is all-live and spans are duplicate-free, so every
  // starting gain equals the stored size — seed the heap from sizes_.
  std::vector<uint32_t> all_covered;  // reused per pick
  std::vector<uint64_t> heap;
  heap.reserve(ids_.size());
  for (size_t i = 0; i < ids_.size(); ++i) {
    SC_DCHECK_EQ(gains.gain(static_cast<uint32_t>(i)), sizes_[i]);
    if (sizes_[i] > 0) heap.push_back(Pack(sizes_[i], i));
  }
  tracker_.Charge(uncovered.WordCount() + heap.size() + index.word_count() +
                  gains.word_count());
  std::make_heap(heap.begin(), heap.end());

  while (outcome.covered < required && !heap.empty()) {
    const uint64_t top = heap.front();
    const size_t idx = PackedIndex(top);
    const uint64_t gain = gains.gain(static_cast<uint32_t>(idx));
    ++counters_.sets_touched;
    if (gain == 0) {
      // Dead entry: fully covered by earlier picks. Drop it.
      std::pop_heap(heap.begin(), heap.end());
      heap.pop_back();
      continue;
    }
    if (gain != PackedGain(top)) {
      // Stale claim (claims only age upward). Re-key the root in place
      // and sift once — pop-and-reuse instead of pop + push.
      heap.front() = Pack(gain, idx);
      SiftDownRoot(heap);
      continue;
    }
    // Claim is current, so this root majorizes every candidate's true
    // gain: it is the exact greedy argmax. Pop and take it.
    std::pop_heap(heap.begin(), heap.end());
    heap.pop_back();
    const uint64_t realized = PickInto(idx, uncovered.bits(), all_covered);
    SC_DCHECK_EQ(realized, gain);
    // The pick's own column entries zero its tracked gain along with
    // everyone else's — a popped candidate never needs tombstoning.
    gains.OnCovered(all_covered);
    outcome.covered += realized;
    outcome.cover.set_ids.push_back(ids_[idx]);
    ++counters_.rounds;
    tracker_.Charge(1);
  }
  counters_.gain_updates = gains.gain_updates();
  outcome.success = outcome.covered >= required;
  return outcome;
}

MergeOutcome MergeStage::MergeRescan(uint64_t required) {
  MergeOutcome outcome;
  LiveMask uncovered(num_elements_, true);
  std::vector<uint8_t> picked(ids_.size(), 0);
  std::vector<uint32_t> newly;
  tracker_.Charge(uncovered.WordCount() + (ids_.size() + 7) / 8);

  while (outcome.covered < required) {
    // Full rescan: recompute every unpicked candidate's residual gain.
    // Strictly-greater keeps the earliest-inserted winner on ties,
    // matching the transposed heap's packed-key order.
    uint64_t best_gain = 0;
    size_t best_idx = 0;
    for (size_t i = 0; i < ids_.size(); ++i) {
      if (picked[i]) continue;
      const uint64_t gain = GainOf(i, uncovered.bits());
      ++counters_.sets_touched;
      if (gain > best_gain) {
        best_gain = gain;
        best_idx = i;
      }
    }
    if (best_gain == 0) break;
    picked[best_idx] = 1;
    const uint64_t realized = PickInto(best_idx, uncovered.bits(), newly);
    SC_DCHECK_EQ(realized, best_gain);
    outcome.covered += realized;
    outcome.cover.set_ids.push_back(ids_[best_idx]);
    ++counters_.rounds;
    tracker_.Charge(1);
  }
  outcome.success = outcome.covered >= required;
  return outcome;
}

}  // namespace streamcover
