#include "shard/stream_partitioner.h"

#include "util/check.h"

namespace streamcover {

StreamPartitioner::StreamPartitioner(uint64_t seed, uint32_t shards)
    : seed_(seed), shards_(shards) {
  SC_CHECK_GE(shards, 1u);
  seed_key_ = Mix(seed ^ 0x5368617264537472ULL);  // "ShardStr"
}

uint64_t StreamPartitioner::Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t StreamPartitioner::SubSeed(uint32_t shard) const {
  SC_CHECK_LT(shard, shards_);
  // A different salt than the assignment key: the substream membership
  // hash and the shard's private draw stream must never correlate.
  return Mix(seed_ ^ (0x5375625365656473ULL + shard));  // "SubSeeds"
}

}  // namespace streamcover
