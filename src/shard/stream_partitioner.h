// StreamPartitioner — deterministic hash-split of a set stream into S
// shard substreams.
//
// The RandGreeDI/GreeDIMM distribution pattern partitions the set
// family across S machines, solves each partition locally, and merges
// the local candidates. Here the "machines" are S ScanConsumers riding
// ONE physical scan (stream/pass_scheduler.h), so the partition must be
// a pure function of data the consumers can all see: the set id. The
// assignment mixes (seed, id) through a SplitMix64 finalizer and
// reduces mod S — it depends on nothing else, so the same (seed, S)
// yields byte-identical substreams whether the repository is in-memory
// CSR, a text file, or an mmapped binary file, and at every scheduler
// thread count.
//
// Randomized shard-local work draws from per-shard sub-RNGs: SubSeed /
// SubRng derive an independent deterministic generator per (seed,
// shard), so no shard's draw sequence depends on another shard's
// consumption (the same keying discipline as the streaming generators).

#ifndef STREAMCOVER_SHARD_STREAM_PARTITIONER_H_
#define STREAMCOVER_SHARD_STREAM_PARTITIONER_H_

#include <cstdint>

#include "util/rng.h"

namespace streamcover {

class StreamPartitioner {
 public:
  /// `shards` must be >= 1. One shard degenerates to the identity
  /// partition (every set lands in shard 0).
  StreamPartitioner(uint64_t seed, uint32_t shards);

  uint32_t shards() const { return shards_; }
  uint64_t seed() const { return seed_; }

  /// Shard of `set_id`, in [0, shards). Pure in (seed, shards, set_id).
  uint32_t ShardOf(uint32_t set_id) const {
    return static_cast<uint32_t>(Mix(seed_key_ + set_id) % shards_);
  }

  /// Deterministic seed of the shard's private RNG stream; distinct per
  /// shard, independent of every other shard's draws.
  uint64_t SubSeed(uint32_t shard) const;

  /// Rng seeded with SubSeed(shard).
  Rng SubRng(uint32_t shard) const { return Rng(SubSeed(shard)); }

 private:
  /// SplitMix64 finalizer — the avalanche mix both ShardOf and SubSeed
  /// key their inputs through.
  static uint64_t Mix(uint64_t x);

  uint64_t seed_;
  uint64_t seed_key_;  // pre-mixed seed, so ShardOf is one Mix per set
  uint32_t shards_;
};

}  // namespace streamcover

#endif  // STREAMCOVER_SHARD_STREAM_PARTITIONER_H_
