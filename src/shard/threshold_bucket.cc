#include "shard/threshold_bucket.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace streamcover {

ThresholdBucketEngine::ThresholdBucketEngine(
    uint32_t num_elements, const StreamPartitioner* partitioner,
    uint32_t shard, ThresholdBucketOptions options)
    : num_elements_(num_elements),
      partitioner_(partitioner),
      shard_(shard),
      kernel_(options.kernel),
      skip_union_(num_elements, true) {
  SC_CHECK_GT(options.epsilon, 0.0);
  if (partitioner_ != nullptr) SC_CHECK_LT(shard, partitioner_->shards());
  // The distinct values of ceil((1+eps)^b) in [1, n]: the dense 1,2,3...
  // prefix collapses duplicates, the tail grows geometrically.
  const uint64_t n = std::max<uint32_t>(num_elements, 1);
  for (uint64_t tau = 1;;) {
    Bucket bucket;
    bucket.tau = tau;
    bucket.remaining = num_elements;
    bucket.uncovered = LiveMask(num_elements, true);
    buckets_.push_back(std::move(bucket));
    if (tau >= n) break;
    const uint64_t next = static_cast<uint64_t>(
        std::ceil(static_cast<double>(tau) * (1.0 + options.epsilon)));
    tau = std::min(std::max(next, tau + 1), n);
  }
  live_buckets_ = buckets_.size();
  tracker_.Charge((buckets_.size() + 1) * skip_union_.WordCount());
}

void ThresholdBucketEngine::RefreshSkipMask() {
  cleared_since_refresh_ = 0;
  if (live_buckets_ == 0) {
    skip_active_ = false;
    return;
  }
  std::span<uint64_t> out = skip_union_.bits().MutableWords();
  std::fill(out.begin(), out.end(), 0);
  for (const Bucket& bucket : buckets_) {
    if (!bucket.live) continue;
    std::span<const uint64_t> in = bucket.uncovered.bits().Words();
    for (size_t w = 0; w < out.size(); ++w) out[w] |= in[w];
  }
  // The pre-test costs ~one ladder rung per set; only worth it once the
  // union is sparse enough that most sets miss it entirely.
  skip_active_ = skip_union_.Count() * 4 < num_elements_;
}

void ThresholdBucketEngine::OnSet(const SetView& set) {
  if (partitioner_ != nullptr &&
      partitioner_->ShardOf(set.id) != shard_) {
    return;
  }
  ++counters_.sets_seen;
  if (live_buckets_ == 0) return;
  // Coverage-progress refresh: the union only drifts when inserts clear
  // residual bits, so refresh once enough have accumulated.
  if (cleared_since_refresh_ * kRefreshProgressRatio >= num_elements_ &&
      cleared_since_refresh_ > 0) {
    RefreshSkipMask();
  }
  if (skip_active_) {
    counters_.work_items += set.size();
    if (!Intersects(set, skip_union_, kernel_)) return;
  }
  bool stored = false;
  bool any_died = false;
  for (Bucket& bucket : buckets_) {
    if (!bucket.live) continue;
    counters_.work_items += set.size();
    const uint64_t gain = CountUncovered(set, bucket.uncovered, kernel_);
    if (gain < bucket.tau) continue;
    MarkCovered(set, bucket.uncovered, kernel_);
    bucket.remaining -= gain;
    cleared_since_refresh_ += gain;
    ++counters_.inserts;
    if (!stored) {
      stored = true;
      ++counters_.candidates;
      ids_.push_back(set.id);
      elems_.insert(elems_.end(), set.begin(), set.end());
      offsets_.push_back(elems_.size());
      tracker_.Charge(set.size() + 1);
    }
    if (bucket.remaining < bucket.tau) {
      bucket.live = false;
      --live_buckets_;
      any_died = true;
    }
  }
  if (any_died) RefreshSkipMask();
}

}  // namespace streamcover
