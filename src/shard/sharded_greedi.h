// sharded_greedi — the distributed-greedy solver family over src/shard/.
//
// RandGreeDI shape, shared-scan execution: the stream is hash-split into
// S substreams (StreamPartitioner), each substream feeds its own
// ThresholdBucketEngine, all S engines ride ONE physical scan as
// ScanConsumers of the run's PassScheduler (threads = S makes the
// scheduler fan the per-shard work across its pool), and a MergeStage
// re-covers greedily from the union of shard candidates. `greedi` is the
// S-independent reference: one engine, no partitioner, same merge —
// sharded_greedi with shards == 1 produces a byte-identical cover to it
// by construction (one engine seeing the whole stream makes identical
// accept decisions either way), which tests/shard_test.cc pins.

#ifndef STREAMCOVER_SHARD_SHARDED_GREEDI_H_
#define STREAMCOVER_SHARD_SHARDED_GREEDI_H_

#include "core/solver_registry.h"

namespace streamcover {

/// Runner behind the `sharded_greedi` registry entry: partitioned into
/// RunOptions::shards substreams. shards == 0 fails dispatch.
RunResult RunShardedGreedi(RunContext& ctx);

/// Runner behind the `greedi` registry entry: ONE unpartitioned engine
/// over the whole stream + the same merge. The shards=1 parity oracle.
RunResult RunGreediReference(RunContext& ctx);

}  // namespace streamcover

#endif  // STREAMCOVER_SHARD_SHARDED_GREEDI_H_
