// MergeStage — greedy re-cover over the union of shard candidates.
//
// The second half of the RandGreeDI pattern: the shard engines each
// hand over a bounded candidate buffer, and the merge runs an
// in-memory lazy greedy (the offline/greedy.cc idiom) over the union,
// re-covering the full universe with the PR-5 word kernels
// (CountUncovered / MarkCovered over one LiveMask). Candidates are
// deduplicated by set id at insertion — shards produced by a
// partitioner are disjoint by construction, but the stage is the seam
// future candidate producers (overlapping samplers, retries) also feed,
// so duplicates are dropped here and counted rather than assumed away.
//
// Determinism: candidates are stored in insertion order and ties in the
// greedy heap break toward the earliest-inserted candidate, so the
// merged cover is a pure function of the candidate sequence.

#ifndef STREAMCOVER_SHARD_MERGE_STAGE_H_
#define STREAMCOVER_SHARD_MERGE_STAGE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "setsystem/cover.h"
#include "stream/space_tracker.h"
#include "util/bitset.h"
#include "util/cover_kernels.h"

namespace streamcover {

struct MergeStageOptions {
  KernelPolicy kernel = KernelPolicy::kWord;
  /// epsilon-Partial target, same semantics as RunOptions: the merge
  /// stops once 1 - coverage_fraction of U may stay uncovered.
  double coverage_fraction = 1.0;
};

struct MergeOutcome {
  Cover cover;            ///< picks, in greedy order
  uint64_t covered = 0;   ///< elements of U the picks cover
  bool success = false;   ///< covered its coverage_fraction target
};

class MergeStage {
 public:
  MergeStage(uint32_t num_elements, uint32_t num_sets,
             MergeStageOptions options);

  /// Records one candidate. A repeated id is dropped (not re-stored)
  /// and counted in duplicates_dropped(). Elements must be the sorted
  /// unique span the stream layer guarantees.
  void AddCandidate(uint32_t id, std::span<const uint32_t> elems);

  /// Lazy greedy over everything added so far. Call once.
  MergeOutcome Merge();

  uint64_t candidates() const { return ids_.size(); }
  uint64_t duplicates_dropped() const { return duplicates_dropped_; }
  uint64_t space_words() const { return tracker_.peak_words(); }

 private:
  std::span<const uint32_t> CandidateElems(size_t i) const {
    return std::span<const uint32_t>(elems_).subspan(
        offsets_[i], offsets_[i + 1] - offsets_[i]);
  }

  const uint32_t num_elements_;
  const MergeStageOptions options_;

  DynamicBitset seen_ids_;
  uint64_t duplicates_dropped_ = 0;

  // Candidate CSR, insertion order.
  std::vector<uint32_t> ids_;
  std::vector<size_t> offsets_{0};
  std::vector<uint32_t> elems_;

  SpaceTracker tracker_;
};

}  // namespace streamcover

#endif  // STREAMCOVER_SHARD_MERGE_STAGE_H_
