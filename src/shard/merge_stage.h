// MergeStage — greedy re-cover over the union of shard candidates.
//
// The second half of the RandGreeDI pattern: the shard engines each
// hand over a bounded candidate buffer, and the merge runs an
// in-memory exact greedy over the union, re-covering the full universe.
// Candidates are deduplicated by set id at insertion — shards produced
// by a partitioner are disjoint by construction, but the stage is the
// seam future candidate producers (overlapping samplers, retries) also
// feed, so duplicates are dropped here and counted rather than assumed
// away.
//
// Representation: candidates above the dense-storage threshold
// (ShouldStoreDense) live as bitset rows in a BitsetCSR and run the
// fused dense kernels; the rest stay in a sparse CSR on the PR-5 word
// kernels. Either way the stored footprint and the per-query work are
// the smaller of the two forms.
//
// Gain maintenance (MergeStageOptions::gain):
//   * kTransposed (default) — output-sensitive: an element→candidates
//     TransposedIndex is built over the union (one count + one fill
//     sweep), a GainTracker keeps every candidate's residual gain
//     exact by decrementing along the picked set's newly covered
//     elements, and a lazy-deletion max-heap pops candidates whose
//     cached claim matches the tracked gain. A stale root is re-keyed
//     in place (one sift-down) instead of popped and re-pushed, and a
//     root whose claim is still current is accepted directly — the
//     pop-and-reuse fast path. Total maintenance is nnz(candidates):
//     each (element, candidate) pair is touched at most once.
//   * kRescan — the A/B baseline: every unpicked candidate's gain is
//     recomputed from the mask each round (rounds × candidates kernel
//     calls). Same covers, byte for byte; only the work differs.
//
// Both modes pick the exact greedy argmax with earliest-inserted-wins
// tie-breaking, so the merged cover is a pure function of the candidate
// sequence — identical across modes, kernels, shard sources, and
// thread counts. (The heap mode's accept rule "claim == tracked gain"
// guarantees this: claims are only stale upward, so a current-claim
// root majorizes every other candidate's gain, and the packed key's
// complement-index low half resolves ties toward the earliest insert.)
//
// Counters: `sets_touched` counts candidate-gain evaluations (heap
// inspections in kTransposed, per-round recomputes in kRescan);
// `gain_updates` counts the tracker's O(1) decrements (0 in kRescan).
// The pair is what bench_hotpath's gain stage and the sweep report
// surface to make output-sensitivity observable.

#ifndef STREAMCOVER_SHARD_MERGE_STAGE_H_
#define STREAMCOVER_SHARD_MERGE_STAGE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "setsystem/cover.h"
#include "setsystem/transposed_index.h"
#include "stream/space_tracker.h"
#include "util/bitset.h"
#include "util/cover_kernels.h"

namespace streamcover {

/// How MergeStage keeps candidate gains current between picks.
enum class GainMaintenance : uint8_t {
  kTransposed,  ///< element→candidates index + exact decremental gains
  kRescan,      ///< recompute every candidate per round (A/B baseline)
};

struct MergeStageOptions {
  KernelPolicy kernel = KernelPolicy::kWord;
  /// epsilon-Partial target, same semantics as RunOptions: the merge
  /// stops once 1 - coverage_fraction of U may stay uncovered.
  double coverage_fraction = 1.0;
  GainMaintenance gain = GainMaintenance::kTransposed;
};

/// Work accounting for one Merge() call (see header comment).
struct MergeCounters {
  uint64_t rounds = 0;        ///< picks performed
  uint64_t sets_touched = 0;  ///< candidate-gain evaluations
  uint64_t gain_updates = 0;  ///< tracker decrements (kTransposed only)
};

struct MergeOutcome {
  Cover cover;            ///< picks, in greedy order
  uint64_t covered = 0;   ///< elements of U the picks cover
  bool success = false;   ///< covered its coverage_fraction target
};

class MergeStage {
 public:
  MergeStage(uint32_t num_elements, uint32_t num_sets,
             MergeStageOptions options);

  /// Records one candidate. A repeated id is dropped (not re-stored)
  /// and counted in duplicates_dropped(). Elements must be the sorted
  /// unique span the stream layer guarantees.
  void AddCandidate(uint32_t id, std::span<const uint32_t> elems);

  /// Exact greedy over everything added so far. Call once.
  MergeOutcome Merge();

  uint64_t candidates() const { return ids_.size(); }
  uint64_t duplicates_dropped() const { return duplicates_dropped_; }
  uint64_t dense_candidates() const { return dense_.rows(); }
  uint64_t space_words() const { return tracker_.peak_words(); }
  const MergeCounters& counters() const { return counters_; }

 private:
  static constexpr uint32_t kSparse = UINT32_MAX;

  bool IsDense(size_t i) const { return dense_row_[i] != kSparse; }
  std::span<const uint32_t> SparseElems(size_t i) const {
    return std::span<const uint32_t>(elems_).subspan(
        offsets_[i], offsets_[i + 1] - offsets_[i]);
  }

  /// Residual gain of candidate `i` against `mask`, via the matching
  /// representation's kernel.
  uint64_t GainOf(size_t i, const DynamicBitset& mask) const;

  /// Appends candidate i's still-uncovered elements to `newly`, clears
  /// them from `mask`, and returns the realized gain.
  uint64_t PickInto(size_t i, DynamicBitset& mask,
                    std::vector<uint32_t>& newly) const;

  MergeOutcome MergeTransposed(uint64_t required);
  MergeOutcome MergeRescan(uint64_t required);

  const uint32_t num_elements_;
  const MergeStageOptions options_;

  DynamicBitset seen_ids_;
  uint64_t duplicates_dropped_ = 0;

  // Candidate storage, insertion order: candidate i is either sparse
  // (elems_[offsets_[i], offsets_[i+1]), dense_row_[i] == kSparse) or
  // a dense bitset row (dense_.Row(dense_row_[i])). sizes_[i] is the
  // element count either way.
  std::vector<uint32_t> ids_;
  std::vector<uint32_t> sizes_;
  std::vector<uint32_t> dense_row_;
  std::vector<size_t> offsets_{0};
  std::vector<uint32_t> elems_;
  BitsetCSR dense_;

  MergeCounters counters_;
  SpaceTracker tracker_;
};

}  // namespace streamcover

#endif  // STREAMCOVER_SHARD_MERGE_STAGE_H_
