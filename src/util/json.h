// Minimal JSON document model for machine-readable reports.
//
// RunReport (core/run_plan.h) and the bench --json flags serialize
// through this value type; tests parse the emitted text back to verify
// round-trips. Deliberately small: doubles for all numbers, no
// comments, no trailing commas — RFC 8259. BMP text passes through as
// raw UTF-8; characters beyond the BMP are emitted as \uXXXX surrogate
// pairs (and surrogate-pair escapes parse back to UTF-8), so emitted
// documents survive strict ASCII-only consumers too.

#ifndef STREAMCOVER_UTIL_JSON_H_
#define STREAMCOVER_UTIL_JSON_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace streamcover {

/// A JSON value: null, bool, number, string, array, or object. Object
/// keys keep insertion order so emitted reports are stable and diffable.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}                // NOLINT
  JsonValue(double d) : type_(Type::kNumber), number_(d) {}          // NOLINT
  JsonValue(int v) : JsonValue(static_cast<double>(v)) {}            // NOLINT
  JsonValue(int64_t v) : JsonValue(static_cast<double>(v)) {}        // NOLINT
  JsonValue(uint64_t v) : JsonValue(static_cast<double>(v)) {}       // NOLINT
  JsonValue(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT
  JsonValue(const char* s) : JsonValue(std::string(s)) {}            // NOLINT

  static JsonValue Array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; defaults returned on type mismatch (reports are
  /// best-effort readers, not validators).
  bool AsBool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double AsDouble(double fallback = 0.0) const {
    return is_number() ? number_ : fallback;
  }
  const std::string& AsString() const { return string_; }

  /// Array access.
  size_t size() const {
    return is_array() ? array_.size() : (is_object() ? object_.size() : 0);
  }
  void Append(JsonValue v) {
    type_ = Type::kArray;
    array_.push_back(std::move(v));
  }
  const JsonValue& operator[](size_t i) const { return array_[i]; }
  const std::vector<JsonValue>& items() const { return array_; }

  /// Object access. Set() keeps first-insertion key order.
  void Set(std::string key, JsonValue v);
  /// Member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
  /// Member lookup with a shared null fallback (never dangles).
  const JsonValue& At(std::string_view key) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return object_;
  }

  /// Serializes the value. indent > 0 pretty-prints with that many
  /// spaces per level; indent == 0 emits compact single-line JSON.
  std::string Dump(int indent = 2) const;

  /// Parses `text`; std::nullopt + *error (position + reason) on
  /// malformed input. Trailing non-whitespace after the value is an
  /// error.
  static std::optional<JsonValue> Parse(std::string_view text,
                                        std::string* error = nullptr);

 private:
  void DumpTo(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

}  // namespace streamcover

#endif  // STREAMCOVER_UTIL_JSON_H_
