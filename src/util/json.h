// Minimal JSON document model for machine-readable reports.
//
// RunReport (core/run_plan.h) and the bench --json flags serialize
// through this value type; tests parse the emitted text back to verify
// round-trips. Deliberately small: numbers are doubles with an exact
// int64/uint64 side-channel for integer-constructed values (counters
// past 2^53 keep their digits), no comments, no trailing commas —
// RFC 8259. BMP text passes through as
// raw UTF-8; characters beyond the BMP are emitted as \uXXXX surrogate
// pairs (and surrogate-pair escapes parse back to UTF-8), so emitted
// documents survive strict ASCII-only consumers too.

#ifndef STREAMCOVER_UTIL_JSON_H_
#define STREAMCOVER_UTIL_JSON_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace streamcover {

/// A JSON value: null, bool, number, string, array, or object. Object
/// keys keep insertion order so emitted reports are stable and diffable.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}                // NOLINT
  JsonValue(double d) : type_(Type::kNumber), number_(d) {}          // NOLINT
  JsonValue(int v) : JsonValue(static_cast<int64_t>(v)) {}           // NOLINT
  // Integers keep their exact value alongside the double mirror:
  // multi-GB nnz/space counters exceed 2^53, where the double alone
  // would silently round (the bug FormatNumber used to amplify into
  // scientific notation). Dump emits the exact decimal digits.
  JsonValue(int64_t v)                                               // NOLINT
      : type_(Type::kNumber),
        number_kind_(NumberKind::kInt64),
        number_(static_cast<double>(v)),
        int_(v) {}
  JsonValue(uint64_t v)                                              // NOLINT
      : type_(Type::kNumber),
        number_kind_(NumberKind::kUint64),
        number_(static_cast<double>(v)),
        uint_(v) {}
  JsonValue(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT
  JsonValue(const char* s) : JsonValue(std::string(s)) {}            // NOLINT

  static JsonValue Array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; defaults returned on type mismatch (reports are
  /// best-effort readers, not validators).
  bool AsBool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double AsDouble(double fallback = 0.0) const {
    return is_number() ? number_ : fallback;
  }
  /// Exact value for numbers carried as integers (integer-constructed
  /// or parsed from an undotted, unexponented token); doubles are
  /// truncated toward zero. Out-of-range values saturate.
  int64_t AsInt64(int64_t fallback = 0) const;
  uint64_t AsUint64(uint64_t fallback = 0) const;
  const std::string& AsString() const { return string_; }

  /// Array access.
  size_t size() const {
    return is_array() ? array_.size() : (is_object() ? object_.size() : 0);
  }
  void Append(JsonValue v) {
    type_ = Type::kArray;
    array_.push_back(std::move(v));
  }
  const JsonValue& operator[](size_t i) const { return array_[i]; }
  const std::vector<JsonValue>& items() const { return array_; }

  /// Object access. Set() keeps first-insertion key order.
  void Set(std::string key, JsonValue v);
  /// Member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
  /// Member lookup with a shared null fallback (never dangles).
  const JsonValue& At(std::string_view key) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return object_;
  }

  /// Serializes the value. indent > 0 pretty-prints with that many
  /// spaces per level; indent == 0 emits compact single-line JSON.
  std::string Dump(int indent = 2) const;

  /// Parses `text`; std::nullopt + *error (position + reason) on
  /// malformed input. Trailing non-whitespace after the value is an
  /// error.
  static std::optional<JsonValue> Parse(std::string_view text,
                                        std::string* error = nullptr);

 private:
  /// How a kNumber was produced. The double mirror (number_) always
  /// holds the nearest double; the integer payload is authoritative for
  /// the integer kinds so Dump can reproduce exact digits past 2^53.
  enum class NumberKind { kDouble, kInt64, kUint64 };

  void DumpTo(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  NumberKind number_kind_ = NumberKind::kDouble;
  double number_ = 0.0;
  int64_t int_ = 0;
  uint64_t uint_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

}  // namespace streamcover

#endif  // STREAMCOVER_UTIL_JSON_H_
