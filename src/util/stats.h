// Small numeric summaries used by benches and tests.

#ifndef STREAMCOVER_UTIL_STATS_H_
#define STREAMCOVER_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace streamcover {

/// Accumulates a stream of doubles; O(1) memory (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Returns the q-quantile (0 <= q <= 1) of `values` by linear
/// interpolation between order statistics. Empty input returns 0.
double Quantile(std::vector<double> values, double q);

/// Least-squares slope of log(y) against log(x): the empirical growth
/// exponent of y ~ x^slope. Ignores non-positive pairs. Used by benches to
/// verify space/approximation scaling laws. Returns 0 when fewer than two
/// usable points remain.
double LogLogSlope(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace streamcover

#endif  // STREAMCOVER_UTIL_STATS_H_
