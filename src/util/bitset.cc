#include "util/bitset.h"

#include "util/check.h"

namespace streamcover {

DynamicBitset::DynamicBitset(size_t size, bool value)
    : size_(size), words_((size + 63) / 64, value ? ~0ULL : 0ULL) {
  if (value && size_ % 64 != 0 && !words_.empty()) {
    words_.back() &= (1ULL << (size_ % 64)) - 1;
  }
}

bool DynamicBitset::Test(size_t i) const {
  SC_DCHECK_LT(i, size_);
  return (words_[i / 64] >> (i % 64)) & 1ULL;
}

void DynamicBitset::Set(size_t i) {
  SC_DCHECK_LT(i, size_);
  words_[i / 64] |= 1ULL << (i % 64);
}

void DynamicBitset::Reset(size_t i) {
  SC_DCHECK_LT(i, size_);
  words_[i / 64] &= ~(1ULL << (i % 64));
}

void DynamicBitset::SetAll() {
  for (auto& w : words_) w = ~0ULL;
  if (size_ % 64 != 0 && !words_.empty()) {
    words_.back() &= (1ULL << (size_ % 64)) - 1;
  }
}

void DynamicBitset::ResetAll() {
  for (auto& w : words_) w = 0ULL;
}

size_t DynamicBitset::Count() const {
  size_t c = 0;
  for (uint64_t w : words_) c += static_cast<size_t>(__builtin_popcountll(w));
  return c;
}

bool DynamicBitset::Any() const {
  for (uint64_t w : words_) {
    if (w != 0) return true;
  }
  return false;
}

size_t DynamicBitset::FindFirst() const {
  for (size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return w * 64 + static_cast<size_t>(__builtin_ctzll(words_[w]));
    }
  }
  return size_;
}

size_t DynamicBitset::FindNext(size_t i) const {
  if (i + 1 >= size_) return size_;
  size_t start = i + 1;
  size_t w = start / 64;
  uint64_t word = words_[w] & (~0ULL << (start % 64));
  while (true) {
    if (word != 0) {
      return w * 64 + static_cast<size_t>(__builtin_ctzll(word));
    }
    if (++w == words_.size()) return size_;
    word = words_[w];
  }
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  SC_CHECK_EQ(size_, other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  SC_CHECK_EQ(size_, other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::AndNot(const DynamicBitset& other) {
  SC_CHECK_EQ(size_, other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  return *this;
}

size_t DynamicBitset::AndNotCountWords(const DynamicBitset& other) const {
  SC_CHECK_EQ(size_, other.size_);
  size_t c = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    c += static_cast<size_t>(
        __builtin_popcountll(words_[i] & ~other.words_[i]));
  }
  return c;
}

void DynamicBitset::OrInto(DynamicBitset& dst) const {
  SC_CHECK_EQ(size_, dst.size_);
  for (size_t i = 0; i < words_.size(); ++i) dst.words_[i] |= words_[i];
}

bool DynamicBitset::operator==(const DynamicBitset& other) const {
  return size_ == other.size_ && words_ == other.words_;
}

std::vector<uint32_t> DynamicBitset::ToVector() const {
  std::vector<uint32_t> out;
  out.reserve(Count());
  ForEach([&out](uint32_t i) { out.push_back(i); });
  return out;
}

}  // namespace streamcover
