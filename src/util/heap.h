// Flat binary max-heap helpers shared by the lazy-deletion greedy
// loops (offline/greedy.cc, shard/merge_stage.cc).
//
// The loops keep a std::make_heap/pop_heap-layout vector of packed
// (gain, tie-break) keys. When the root's cached gain turns out stale,
// the pop-and-reuse idiom re-keys heap[0] in place and restores the
// heap with ONE sift-down — instead of pop_heap + pop_back + push_back
// + push_heap, which walks two root-to-leaf paths and a leaf-to-root
// path for the same net effect.

#ifndef STREAMCOVER_UTIL_HEAP_H_
#define STREAMCOVER_UTIL_HEAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace streamcover {

/// Restores the max-heap property of `heap` after heap[0] was replaced
/// with a smaller key. Layout-compatible with std::make_heap /
/// std::pop_heap (children of i at 2i+1, 2i+2). `heap` must be
/// non-empty.
inline void SiftDownRoot(std::vector<uint64_t>& heap) {
  const size_t n = heap.size();
  const uint64_t value = heap[0];
  size_t i = 0;
  while (true) {
    size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && heap[child] < heap[child + 1]) ++child;
    if (heap[child] <= value) break;
    heap[i] = heap[child];
    i = child;
  }
  heap[i] = value;
}

}  // namespace streamcover

#endif  // STREAMCOVER_UTIL_HEAP_H_
