#include "util/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cinttypes>

namespace streamcover {
namespace {

const JsonValue& NullValue() {
  static const JsonValue* null = new JsonValue();
  return *null;
}

void EscapeString(const std::string& s, std::string& out) {
  out += '"';
  for (size_t i = 0; i < s.size(); ++i) {
    const unsigned char c = static_cast<unsigned char>(s[i]);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else if (c >= 0xF0 && c <= 0xF4 && i + 3 < s.size() &&
                   (static_cast<unsigned char>(s[i + 1]) & 0xC0) == 0x80 &&
                   (static_cast<unsigned char>(s[i + 2]) & 0xC0) == 0x80 &&
                   (static_cast<unsigned char>(s[i + 3]) & 0xC0) == 0x80) {
          // A 4-byte UTF-8 sequence is a code point beyond the BMP,
          // which \uXXXX can only express as a UTF-16 surrogate pair
          // (RFC 8259 §7). BMP text still passes through as raw UTF-8.
          unsigned code = (static_cast<unsigned>(c & 0x07) << 18) |
                          (static_cast<unsigned>(s[i + 1]) & 0x3F) << 12 |
                          (static_cast<unsigned>(s[i + 2]) & 0x3F) << 6 |
                          (static_cast<unsigned>(s[i + 3]) & 0x3F);
          if (code >= 0x10000 && code <= 0x10FFFF) {
            code -= 0x10000;
            char buf[16];
            std::snprintf(buf, sizeof(buf), "\\u%04x\\u%04x",
                          0xD800 + (code >> 10), 0xDC00 + (code & 0x3FF));
            out += buf;
            i += 3;
          } else {
            out += static_cast<char>(c);  // overlong/out-of-range: raw
          }
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
}

void FormatNumber(double d, std::string& out) {
  if (!std::isfinite(d)) {
    out += "null";  // JSON has no Inf/NaN
    return;
  }
  // Integers (the common case for counts) print without an exponent or
  // trailing zeros, up to the last double whose integer value is exact
  // (2^53 — past that the value wasn't the "same integer" to begin
  // with, and exact-integer callers go through the int64/uint64
  // constructors anyway); everything else gets round-trippable %.17g.
  if (d == std::floor(d) && std::fabs(d) <= 9007199254740992.0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", d);
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out += buf;
}

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<JsonValue> Run() {
    SkipWhitespace();
    std::optional<JsonValue> value = ParseValue(0);
    if (!value) return std::nullopt;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      Fail("trailing characters after JSON value");
      return std::nullopt;
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void Fail(const std::string& reason) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = "json parse error at offset " + std::to_string(pos_) + ": " +
                reason;
    }
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  std::optional<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) {
      Fail("nesting too deep");
      return std::nullopt;
    }
    if (pos_ >= text_.size()) {
      Fail("unexpected end of input");
      return std::nullopt;
    }
    switch (text_[pos_]) {
      case 'n':
        if (ConsumeLiteral("null")) return JsonValue();
        break;
      case 't':
        if (ConsumeLiteral("true")) return JsonValue(true);
        break;
      case 'f':
        if (ConsumeLiteral("false")) return JsonValue(false);
        break;
      case '"':
        return ParseString();
      case '[':
        return ParseArray(depth);
      case '{':
        return ParseObject(depth);
      default:
        return ParseNumber();
    }
    Fail("invalid literal");
    return std::nullopt;
  }

  std::optional<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      Fail("expected a value");
      return std::nullopt;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      Fail("malformed number '" + token + "'");
      return std::nullopt;
    }
    // An undotted, unexponented token is an integer literal: keep its
    // exact value when it fits, so counters past 2^53 round-trip
    // through parse → dump with their digits intact.
    if (token.find_first_of(".eE") == std::string::npos) {
      errno = 0;
      if (token[0] == '-') {
        const long long v = std::strtoll(token.c_str(), &end, 10);
        if (errno != ERANGE && end != nullptr && *end == '\0') {
          return JsonValue(static_cast<int64_t>(v));
        }
      } else {
        const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
        if (errno != ERANGE && end != nullptr && *end == '\0') {
          return JsonValue(static_cast<uint64_t>(v));
        }
      }
      // Out of 64-bit range: the double approximation is the best we
      // can represent.
    }
    return JsonValue(d);
  }

  std::optional<JsonValue> ParseString() {
    std::optional<std::string> s = ParseRawString();
    if (!s) return std::nullopt;
    return JsonValue(std::move(*s));
  }

  /// Reads 4 hex digits at `at` without consuming; false on truncation
  /// or a non-hex digit.
  bool PeekHex4(size_t at, unsigned* code) const {
    if (at + 4 > text_.size()) return false;
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[at + static_cast<size_t>(i)];
      value <<= 4;
      if (h >= '0' && h <= '9') value |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') value |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') value |= static_cast<unsigned>(h - 'A' + 10);
      else return false;
    }
    *code = value;
    return true;
  }

  std::optional<std::string> ParseRawString() {
    if (!Consume('"')) {
      Fail("expected '\"'");
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          if (!PeekHex4(pos_, &code)) {
            Fail(pos_ + 4 > text_.size() ? "truncated \\u escape"
                                         : "bad hex digit in \\u escape");
            return std::nullopt;
          }
          pos_ += 4;
          // A high surrogate followed by \uDC00-\uDFFF is one code
          // point beyond the BMP (RFC 8259 §7) — the pair the emitter
          // writes for 4-byte UTF-8 input. A lone surrogate falls
          // through to the legacy byte-for-byte 3-byte encoding.
          if (code >= 0xD800 && code <= 0xDBFF && pos_ + 6 <= text_.size() &&
              text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
            unsigned low = 0;
            if (PeekHex4(pos_ + 2, &low) && low >= 0xDC00 && low <= 0xDFFF) {
              pos_ += 6;
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            }
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else if (code < 0x10000) {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xF0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          Fail("unknown escape");
          return std::nullopt;
      }
    }
    Fail("unterminated string");
    return std::nullopt;
  }

  std::optional<JsonValue> ParseArray(int depth) {
    Consume('[');
    JsonValue out = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return out;
    while (true) {
      SkipWhitespace();
      std::optional<JsonValue> item = ParseValue(depth + 1);
      if (!item) return std::nullopt;
      out.Append(std::move(*item));
      SkipWhitespace();
      if (Consume(']')) return out;
      if (!Consume(',')) {
        Fail("expected ',' or ']' in array");
        return std::nullopt;
      }
    }
  }

  std::optional<JsonValue> ParseObject(int depth) {
    Consume('{');
    JsonValue out = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return out;
    while (true) {
      SkipWhitespace();
      std::optional<std::string> key = ParseRawString();
      if (!key) return std::nullopt;
      SkipWhitespace();
      if (!Consume(':')) {
        Fail("expected ':' after object key");
        return std::nullopt;
      }
      SkipWhitespace();
      std::optional<JsonValue> value = ParseValue(depth + 1);
      if (!value) return std::nullopt;
      out.Set(std::move(*key), std::move(*value));
      SkipWhitespace();
      if (Consume('}')) return out;
      if (!Consume(',')) {
        Fail("expected ',' or '}' in object");
        return std::nullopt;
      }
    }
  }

  std::string_view text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

void JsonValue::Set(std::string key, JsonValue v) {
  type_ = Type::kObject;
  for (auto& [existing, value] : object_) {
    if (existing == key) {
      value = std::move(v);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(v));
}

int64_t JsonValue::AsInt64(int64_t fallback) const {
  if (!is_number()) return fallback;
  switch (number_kind_) {
    case NumberKind::kInt64:
      return int_;
    case NumberKind::kUint64:
      return uint_ <= static_cast<uint64_t>(INT64_MAX)
                 ? static_cast<int64_t>(uint_)
                 : INT64_MAX;
    case NumberKind::kDouble:
      break;
  }
  if (!std::isfinite(number_)) return fallback;
  if (number_ >= 9223372036854775808.0) return INT64_MAX;
  if (number_ <= -9223372036854775808.0) return INT64_MIN;
  return static_cast<int64_t>(number_);
}

uint64_t JsonValue::AsUint64(uint64_t fallback) const {
  if (!is_number()) return fallback;
  switch (number_kind_) {
    case NumberKind::kInt64:
      return int_ >= 0 ? static_cast<uint64_t>(int_) : 0;
    case NumberKind::kUint64:
      return uint_;
    case NumberKind::kDouble:
      break;
  }
  if (!std::isfinite(number_) || number_ <= 0.0) {
    return std::isfinite(number_) ? 0 : fallback;
  }
  if (number_ >= 18446744073709551616.0) return UINT64_MAX;
  return static_cast<uint64_t>(number_);
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [existing, value] : object_) {
    if (existing == key) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::At(std::string_view key) const {
  const JsonValue* found = Find(key);
  return found != nullptr ? *found : NullValue();
}

void JsonValue::DumpTo(std::string& out, int indent, int depth) const {
  const std::string pad =
      indent > 0 ? std::string(static_cast<size_t>(indent) * (depth + 1), ' ')
                 : std::string();
  const std::string close_pad =
      indent > 0 ? std::string(static_cast<size_t>(indent) * depth, ' ')
                 : std::string();
  const char* newline = indent > 0 ? "\n" : "";
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber: {
      // Integer-carried numbers print their exact decimal digits; only
      // genuine doubles go through the float formatter.
      char buf[32];
      switch (number_kind_) {
        case NumberKind::kInt64:
          std::snprintf(buf, sizeof(buf), "%" PRId64, int_);
          out += buf;
          break;
        case NumberKind::kUint64:
          std::snprintf(buf, sizeof(buf), "%" PRIu64, uint_);
          out += buf;
          break;
        case NumberKind::kDouble:
          FormatNumber(number_, out);
          break;
      }
      break;
    }
    case Type::kString:
      EscapeString(string_, out);
      break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += newline;
      for (size_t i = 0; i < array_.size(); ++i) {
        out += pad;
        array_[i].DumpTo(out, indent, depth + 1);
        if (i + 1 < array_.size()) out += ',';
        out += newline;
      }
      out += close_pad;
      out += ']';
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += newline;
      for (size_t i = 0; i < object_.size(); ++i) {
        out += pad;
        EscapeString(object_[i].first, out);
        out += indent > 0 ? ": " : ":";
        object_[i].second.DumpTo(out, indent, depth + 1);
        if (i + 1 < object_.size()) out += ',';
        out += newline;
      }
      out += close_pad;
      out += '}';
      break;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(out, indent, 0);
  return out;
}

std::optional<JsonValue> JsonValue::Parse(std::string_view text,
                                          std::string* error) {
  std::string scratch;
  if (error != nullptr) error->clear();  // Fail() keeps the first message
  Parser parser(text, error != nullptr ? error : &scratch);
  return parser.Run();
}

}  // namespace streamcover
