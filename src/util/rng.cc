#include "util/rng.h"

#include <unordered_set>

#include "util/check.h"

namespace streamcover {
namespace {

inline uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  SC_CHECK_GT(bound, 0u);
  // Lemire's method: multiply-shift with rejection on the low word.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  SC_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

std::vector<uint32_t> Rng::SampleWithoutReplacement(uint32_t n, uint32_t k) {
  std::vector<uint32_t> out;
  out.reserve(k);
  SampleWithoutReplacementInto(n, k, out);
  return out;
}

void Rng::SampleWithoutReplacementInto(uint32_t n, uint32_t k,
                                       std::vector<uint32_t>& out) {
  SC_CHECK_LE(k, n);
  // Robert Floyd's algorithm: k iterations, expected O(k) hash ops.
  std::unordered_set<uint32_t> chosen;
  chosen.reserve(k * 2);
  for (uint32_t j = n - k; j < n; ++j) {
    uint32_t t = static_cast<uint32_t>(Uniform(j + 1));
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
}

Rng Rng::Fork() { return Rng(Next() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace streamcover
